package bitcolor

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bitcolor/internal/obs"
)

// Pipeline composes the full coloring flow — Preprocess → Color →
// Improve → Verify — behind one call, with per-stage wall-clock timings
// and automatic un-permutation of colors back to the caller's original
// vertex IDs. It is the entry point a service layer calls: one ctx
// cancels or deadlines the whole flow, and a partial result with the
// stages completed so far comes back even on error. An observer
// attached to ctx (WithObserver) receives one span per stage plus the
// engine's own span tree and per-stage metric families. Loading the
// input graph is deliberately outside the pipeline — use
// OpenGraphFileContext under the same ctx and the load shows up next to
// the stage spans as "graph/load" with its own metric families.
type Pipeline struct {
	// SkipPreprocess runs the coloring on g as-is. By default the
	// pipeline applies DBG reordering + edge sorting first (what the
	// engines are tuned for) and maps the colors back afterwards.
	SkipPreprocess bool
	// PreprocessWorkers bounds the preprocessing parallelism
	// (<=0: GOMAXPROCS).
	PreprocessWorkers int
	// Color selects and configures the engine (registry dispatch).
	Color ColorOptions
	// Improve optionally post-processes the coloring; the zero value
	// skips the stage entirely.
	Improve ImproveOptions
}

// StageTiming is one pipeline stage's wall-clock measurement.
type StageTiming struct {
	// Name is "preprocess", "color", "improve" or "verify".
	Name string
	// Duration is the stage's wall time. For a cancelled stage it is the
	// time spent until the cancellation was noticed.
	Duration time.Duration
	// Cancelled marks a stage that was cut short by ctx cancellation or
	// deadline instead of completing.
	Cancelled bool
}

// PipelineResult is a pipeline run's outcome.
type PipelineResult struct {
	// Result holds the coloring indexed by the ORIGINAL vertex IDs of
	// the input graph (the preprocessing permutation is undone).
	Result *Result
	// Stats is the engine's run statistics (registry contract).
	Stats RunStats
	// Stages lists the stages in execution order with their wall-clock
	// times. On error it covers the stages that finished PLUS the
	// in-flight stage, marked Cancelled when ctx cut it short — so
	// partial-progress reports account for all time spent.
	Stages []StageTiming
	// Total is the summed stage wall time.
	Total time.Duration
}

// StageDuration returns the named stage's wall time (0 if it did not
// run).
func (r *PipelineResult) StageDuration(name string) time.Duration {
	for _, s := range r.Stages {
		if s.Name == name {
			return s.Duration
		}
	}
	return 0
}

// Run executes the pipeline on g under ctx. On error (including
// cancellation) it returns the error together with a non-nil
// PipelineResult carrying the stages that ran — the in-flight stage's
// elapsed time included, marked cancelled — and any statistics
// collected so far, so callers can report partial progress; Result is
// only set when the run finished.
func (p Pipeline) Run(ctx context.Context, g *Graph) (*PipelineResult, error) {
	o := obs.FromContext(ctx)
	root := o.StartSpan("pipeline").
		Attr("vertices", int64(g.NumVertices())).
		Attr("edges", g.NumEdges()).
		Attr("engine", p.Color.Engine.String())
	defer root.End()

	pr := &PipelineResult{}
	// stage records a finished or cut-short stage: the timing lands in
	// pr.Stages either way, the span carries cancelled=true when ctx
	// ended the stage early, and the observer's per-stage families
	// update.
	stage := func(name string, start time.Time, sp *obs.Span, err error) {
		d := time.Since(start)
		cancelled := err != nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
		pr.Stages = append(pr.Stages, StageTiming{Name: name, Duration: d, Cancelled: cancelled})
		pr.Total += d
		if cancelled {
			sp.Attr("cancelled", true)
		}
		if err != nil {
			sp.Attr("error", err.Error())
		}
		sp.End()
		o.RecordStage(name, d, cancelled)
	}

	colored := g
	var perm []VertexID
	if !p.SkipPreprocess {
		if err := ctx.Err(); err != nil {
			return pr, err
		}
		sp := root.Child("preprocess")
		start := time.Now()
		prepared, newID, err := PreprocessWithPermutation(g, WithPreprocessParallelism(p.PreprocessWorkers))
		stage("preprocess", start, sp, err)
		if err != nil {
			return pr, fmt.Errorf("bitcolor: pipeline preprocess: %w", err)
		}
		colored, perm = prepared, newID
	}

	sp := root.Child("color")
	start := time.Now()
	res, st, err := ColorContext(ctx, colored, p.Color)
	pr.Stats = st
	stage("color", start, sp, err)
	if err != nil {
		return pr, err
	}

	if p.Improve != (ImproveOptions{}) {
		sp = root.Child("improve")
		start = time.Now()
		res, err = ImproveContext(ctx, colored, res, p.Improve)
		stage("improve", start, sp, err)
		if err != nil {
			return pr, err
		}
	}

	// Un-permute: colors were assigned on the reordered graph, where the
	// original vertex old sits at index perm[old].
	if perm != nil {
		orig := make([]uint16, len(res.Colors))
		for old, newID := range perm {
			orig[old] = res.Colors[newID]
		}
		res = &Result{Colors: orig, NumColors: res.NumColors, Stats: res.Stats}
	}

	// Verify against the ORIGINAL graph — this also proves the
	// un-permutation is consistent, since a misapplied permutation would
	// break properness on g.
	sp = root.Child("verify")
	start = time.Now()
	err = Verify(g, res.Colors)
	stage("verify", start, sp, err)
	if err != nil {
		return pr, fmt.Errorf("bitcolor: pipeline produced an invalid coloring: %w", err)
	}

	pr.Result = res
	return pr, nil
}
