package bitcolor

import (
	"context"
	"fmt"
	"time"
)

// Pipeline composes the full coloring flow — Preprocess → Color →
// Improve → Verify — behind one call, with per-stage wall-clock timings
// and automatic un-permutation of colors back to the caller's original
// vertex IDs. It is the entry point a service layer calls: one ctx
// cancels or deadlines the whole flow, and a partial result with the
// stages completed so far comes back even on error.
type Pipeline struct {
	// SkipPreprocess runs the coloring on g as-is. By default the
	// pipeline applies DBG reordering + edge sorting first (what the
	// engines are tuned for) and maps the colors back afterwards.
	SkipPreprocess bool
	// PreprocessWorkers bounds the preprocessing parallelism
	// (<=0: GOMAXPROCS).
	PreprocessWorkers int
	// Color selects and configures the engine (registry dispatch).
	Color ColorOptions
	// Improve optionally post-processes the coloring; the zero value
	// skips the stage entirely.
	Improve ImproveOptions
}

// StageTiming is one pipeline stage's wall-clock measurement.
type StageTiming struct {
	// Name is "preprocess", "color", "improve" or "verify".
	Name string
	// Duration is the stage's wall time.
	Duration time.Duration
}

// PipelineResult is a pipeline run's outcome.
type PipelineResult struct {
	// Result holds the coloring indexed by the ORIGINAL vertex IDs of
	// the input graph (the preprocessing permutation is undone).
	Result *Result
	// Stats is the engine's run statistics (registry contract).
	Stats RunStats
	// Stages lists the completed stages in execution order with their
	// wall-clock times; on error it covers the stages that finished.
	Stages []StageTiming
	// Total is the summed stage wall time.
	Total time.Duration
}

// StageDuration returns the named stage's wall time (0 if it did not
// run).
func (r *PipelineResult) StageDuration(name string) time.Duration {
	for _, s := range r.Stages {
		if s.Name == name {
			return s.Duration
		}
	}
	return 0
}

// Run executes the pipeline on g under ctx. On error (including
// cancellation) it returns the error together with a non-nil
// PipelineResult carrying the stages that completed and any statistics
// collected so far, so callers can report partial progress; Result is
// only set when the run finished.
func (p Pipeline) Run(ctx context.Context, g *Graph) (*PipelineResult, error) {
	pr := &PipelineResult{}
	stage := func(name string, start time.Time) {
		d := time.Since(start)
		pr.Stages = append(pr.Stages, StageTiming{Name: name, Duration: d})
		pr.Total += d
	}

	colored := g
	var perm []VertexID
	if !p.SkipPreprocess {
		if err := ctx.Err(); err != nil {
			return pr, err
		}
		start := time.Now()
		prepared, newID, err := PreprocessWithPermutation(g, WithPreprocessParallelism(p.PreprocessWorkers))
		if err != nil {
			return pr, fmt.Errorf("bitcolor: pipeline preprocess: %w", err)
		}
		stage("preprocess", start)
		colored, perm = prepared, newID
	}

	start := time.Now()
	res, st, err := ColorContext(ctx, colored, p.Color)
	pr.Stats = st
	if err != nil {
		return pr, err
	}
	stage("color", start)

	if p.Improve != (ImproveOptions{}) {
		start = time.Now()
		res, err = ImproveContext(ctx, colored, res, p.Improve)
		if err != nil {
			return pr, err
		}
		stage("improve", start)
	}

	// Un-permute: colors were assigned on the reordered graph, where the
	// original vertex old sits at index perm[old].
	if perm != nil {
		orig := make([]uint16, len(res.Colors))
		for old, newID := range perm {
			orig[old] = res.Colors[newID]
		}
		res = &Result{Colors: orig, NumColors: res.NumColors, Stats: res.Stats}
	}

	// Verify against the ORIGINAL graph — this also proves the
	// un-permutation is consistent, since a misapplied permutation would
	// break properness on g.
	start = time.Now()
	if err := Verify(g, res.Colors); err != nil {
		return pr, fmt.Errorf("bitcolor: pipeline produced an invalid coloring: %w", err)
	}
	stage("verify", start)

	pr.Result = res
	return pr, nil
}
