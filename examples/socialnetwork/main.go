// Social-network analysis workload: color a heavy-tailed community graph
// to partition users into interference-free groups (the paper's
// motivating application, §1), comparing algorithm quality and the
// accelerator's ablation ladder on the skewed degree distribution that
// drives the high-degree vertex cache.
package main

import (
	"fmt"
	"log"

	"bitcolor"
	"bitcolor/internal/engine"
	"bitcolor/internal/graph"
)

func main() {
	// com-LiveJournal-like RMAT stand-in: heavy-tailed, community
	// structured.
	g, err := bitcolor.Generate("CL", 7)
	if err != nil {
		log.Fatal(err)
	}
	stats := graph.ComputeStats(g)
	fmt.Printf("social graph: %s\n", stats)

	prepared, err := bitcolor.Preprocess(g)
	if err != nil {
		log.Fatal(err)
	}

	// Quality comparison across algorithm families. Fewer colors means
	// fewer scheduling rounds for any group-by-color application.
	fmt.Println("\nalgorithm quality (fewer colors = better):")
	for _, e := range []bitcolor.Engine{
		bitcolor.EngineBitwise,        // greedy family (the paper's)
		bitcolor.EngineDSATUR,         // quality heuristic
		bitcolor.EngineSmallestLast,   // degeneracy order
		bitcolor.EngineJonesPlassmann, // parallel IS family (GPU baseline)
		bitcolor.EngineLubyMIS,        // MIS-per-color family (§2.4)
	} {
		res, err := bitcolor.Color(prepared, bitcolor.ColorOptions{Engine: e, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15v %4d colors\n", e, res.NumColors)
	}

	// The accelerator ablation on this skewed graph: each optimization's
	// contribution (a single-dataset Fig 11).
	fmt.Println("\naccelerator ablation (single BWPE, cycles):")
	steps := []struct {
		name string
		opts engine.Options
	}{
		{"baseline       ", engine.Options{}},
		{"+ HDV cache    ", engine.Options{HDC: true}},
		{"+ bit-wise     ", engine.Options{HDC: true, BWC: true}},
		{"+ read merge   ", engine.Options{HDC: true, BWC: true, MGR: true}},
		{"+ pruning (all)", engine.AllOptions()},
	}
	var base int64
	for _, s := range steps {
		cfg := bitcolor.DefaultSimConfig(1)
		cfg.Options = s.opts
		cfg.CacheVertices = prepared.NumVertices() / 8 // LiveJournal-scale residency
		res, err := bitcolor.Simulate(prepared, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.TotalCycles
		}
		fmt.Printf("  %s %12d cycles  (%.2fx)\n",
			s.name, res.TotalCycles, float64(base)/float64(res.TotalCycles))
	}

	// Group sizes under the accelerator coloring: the application-side
	// view (each color class is a set of mutually non-adjacent users that
	// can be processed together).
	cfg := bitcolor.DefaultSimConfig(16)
	cfg.CacheVertices = prepared.NumVertices() / 8
	res, err := bitcolor.Simulate(prepared, cfg)
	if err != nil {
		log.Fatal(err)
	}
	classes := map[uint16]int{}
	for _, c := range res.Colors {
		classes[c]++
	}
	largest, smallest := 0, g.NumVertices()
	for _, n := range classes {
		if n > largest {
			largest = n
		}
		if n < smallest {
			smallest = n
		}
	}
	fmt.Printf("\nfinal schedule: %d independent groups (largest %d users, smallest %d), %d cycles at P16\n",
		len(classes), largest, smallest, res.TotalCycles)
}
