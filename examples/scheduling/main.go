// Resource-allocation workload (§1's register allocation / exam
// timetabling family): build an interval-conflict graph — tasks are
// intervals, edges join overlapping intervals — and color it so that
// same-colored tasks can share one resource. Interval graphs are
// perfect, so the optimal color count equals the largest clique (the
// maximum overlap depth), which gives this example an exact optimum to
// check the greedy family against.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"bitcolor"
)

type interval struct {
	start, end int
}

func main() {
	// Synthesize 20K tasks with random spans over a day of 100K ticks.
	const (
		nTasks  = 20000
		horizon = 100000
	)
	rng := rand.New(rand.NewSource(5))
	tasks := make([]interval, nTasks)
	for i := range tasks {
		s := rng.Intn(horizon - 100)
		tasks[i] = interval{start: s, end: s + 20 + rng.Intn(400)}
	}

	// Conflict edges via a sweep line: O(n log n + overlaps).
	edges := buildConflictEdges(tasks)
	g, err := bitcolor.NewGraph(nTasks, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interval-conflict graph: %d tasks, %d conflicts\n",
		g.NumVertices(), g.UndirectedEdgeCount())

	// The exact optimum for an interval graph: maximum overlap depth.
	depth := maxOverlapDepth(tasks)
	fmt.Printf("maximum overlap depth (optimal resource count): %d\n", depth)

	prepared, err := bitcolor.Preprocess(g)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range []bitcolor.Engine{
		bitcolor.EngineBitwise,
		bitcolor.EngineDSATUR,
		bitcolor.EngineSmallestLast,
	} {
		res, err := bitcolor.Color(prepared, bitcolor.ColorOptions{Engine: e, MaxColors: 4096})
		if err != nil {
			log.Fatal(err)
		}
		gap := float64(res.NumColors-depth) / float64(depth) * 100
		fmt.Printf("  %-13v %4d resources (%.1f%% above optimal)\n", e, res.NumColors, gap)
	}

	// The accelerator handles this graph too — conflict graphs from
	// scheduling have high clique overlap, stressing the conflict table.
	cfg := bitcolor.DefaultSimConfig(16)
	cfg.MaxColors = 4096
	cfg.CacheVertices = prepared.NumVertices()
	sim, err := bitcolor.Simulate(prepared, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accelerator: %d resources in %d cycles, %d conflicts deferred between engines\n",
		sim.NumColors, sim.TotalCycles, sim.Aggregate.EdgesDeferred)
}

// buildConflictEdges returns an edge for every pair of overlapping
// intervals, found with a start-sorted active set.
func buildConflictEdges(tasks []interval) []bitcolor.Edge {
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return tasks[order[a]].start < tasks[order[b]].start })
	var edges []bitcolor.Edge
	// active holds indices whose end > current start, kept as a slice
	// (overlap depth is small relative to n).
	var active []int
	for _, i := range order {
		t := tasks[i]
		keep := active[:0]
		for _, j := range active {
			if tasks[j].end > t.start {
				keep = append(keep, j)
				edges = append(edges, bitcolor.Edge{U: bitcolor.VertexID(i), V: bitcolor.VertexID(j)})
			}
		}
		active = append(keep, i)
	}
	return edges
}

// maxOverlapDepth computes the maximum number of simultaneously active
// intervals.
func maxOverlapDepth(tasks []interval) int {
	type event struct {
		at    int
		delta int
	}
	events := make([]event, 0, 2*len(tasks))
	for _, t := range tasks {
		events = append(events, event{t.start, +1}, event{t.end, -1})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		return events[a].delta < events[b].delta // close before open at ties
	})
	depth, max := 0, 0
	for _, e := range events {
		depth += e.delta
		if depth > max {
			max = depth
		}
	}
	return max
}
