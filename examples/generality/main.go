// Generality (paper §2.4): BitColor's memory-access techniques — the
// high-degree vertex cache, DRAM read merging and the multi-port cache —
// are not coloring-specific. This example maps two other computations
// onto the identical simulated substrate and compares:
//
//  1. greedy coloring with the data conflict table (the paper's design);
//  2. Jones–Plassmann coloring (the MIS family the paper argues against);
//  3. level-synchronous BFS (a different algorithm entirely, same
//     per-vertex-state memory behaviour).
package main

import (
	"fmt"
	"log"

	"bitcolor"
)

func main() {
	g, err := bitcolor.Generate("CL", 21) // heavy-tailed social stand-in
	if err != nil {
		log.Fatal(err)
	}
	prepared, err := bitcolor.Preprocess(g)
	if err != nil {
		log.Fatal(err)
	}
	cfg := bitcolor.DefaultSimConfig(8)
	cfg.CacheVertices = prepared.NumVertices() / 8
	fmt.Printf("substrate: 8 bit-wise engines, %d-vertex HVC, 4 DDR channels\n",
		cfg.CacheVertices)

	// 1. The paper's design: greedy pipeline + conflict table.
	greedy, err := bitcolor.Simulate(prepared, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngreedy pipeline:   %9d cycles, %d colors, %.1f%% cache hits\n",
		greedy.TotalCycles, greedy.NumColors, 100*greedy.CacheHitRate)

	// 2. The MIS family on the same hardware: synchronous rounds re-scan
	// the frontier; the conflict table's fine-grained deferral wins.
	jp, err := bitcolor.SimulateJonesPlassmann(prepared, cfg, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jones-plassmann:   %9d cycles, %d colors, %d rounds (%.1fx slower)\n",
		jp.TotalCycles, jp.NumColors, jp.Rounds,
		float64(jp.TotalCycles)/float64(greedy.TotalCycles))

	// 3. A different algorithm entirely: BFS reuses the cache and read
	// merging for per-vertex levels instead of colors.
	bfs, err := bitcolor.SimulateBFS(prepared, cfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	reached := 0
	for _, l := range bfs.Levels {
		if l >= 0 {
			reached++
		}
	}
	fmt.Printf("bfs (levels):      %9d cycles, depth %d, %d/%d vertices reached\n",
		bfs.TotalCycles, bfs.Depth, reached, prepared.NumVertices())

	// The cache works identically for BFS: compare with it disabled.
	noCache := cfg
	noCache.Options.HDC = false
	bfs2, err := bitcolor.SimulateBFS(prepared, noCache, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bfs without HVC:   %9d cycles (%.2fx slower), %d vs %d DRAM reads\n",
		bfs2.TotalCycles, float64(bfs2.TotalCycles)/float64(bfs.TotalCycles),
		bfs2.ColorDRAM.Reads, bfs.ColorDRAM.Reads)
}
