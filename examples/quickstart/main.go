// Quickstart: generate a graph, preprocess it, color it three ways —
// software basic greedy, software bit-wise greedy, and the simulated
// BitColor accelerator — and check the results agree.
package main

import (
	"fmt"
	"log"

	"bitcolor"
)

func main() {
	// A gemsec-Deezer-like social network stand-in (~24K vertices).
	g, err := bitcolor.Generate("GD", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d undirected edges\n",
		g.NumVertices(), g.UndirectedEdgeCount())

	// BitColor's preprocessing: degree-based-grouping reorder + edge sort.
	prepared, err := bitcolor.Preprocess(g)
	if err != nil {
		log.Fatal(err)
	}

	// Software: the paper's Algorithm 1.
	basic, err := bitcolor.Color(prepared, bitcolor.ColorOptions{Engine: bitcolor.EngineGreedy})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("basic greedy:   %d colors\n", basic.NumColors)

	// Software: the paper's Algorithm 2 (bit-wise, with pruning).
	bw, err := bitcolor.Color(prepared, bitcolor.ColorOptions{Engine: bitcolor.EngineBitwise})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bit-wise greedy: %d colors (Stage 1 in O(1))\n", bw.NumColors)

	// Hardware: the full accelerator at 8 engines.
	cfg := bitcolor.DefaultSimConfig(8)
	cfg.CacheVertices = prepared.NumVertices() // graph fits the 512K cache
	sim, err := bitcolor.Simulate(prepared, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accelerator:    %d colors in %d cycles (%.2f MCV/s at 200 MHz)\n",
		sim.NumColors, sim.TotalCycles, sim.MCVps)

	// All three agree vertex by vertex: the hardware implements the exact
	// greedy semantics.
	for v := range basic.Colors {
		if basic.Colors[v] != bw.Colors[v] || bw.Colors[v] != sim.Colors[v] {
			log.Fatalf("vertex %d: results disagree", v)
		}
	}
	fmt.Println("all three colorings are identical ✓")
}
