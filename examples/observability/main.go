// Observability: attach a run-scoped Observer to a pipeline run, scrape
// the live Prometheus endpoint mid-run, watch the run registry's
// /debug/runs view of an IN-FLIGHT run (live progress + an on-demand
// trace pull), correlate structured logs by run ID, and export the span
// tree as a Chrome trace — the whole telemetry surface in one program.
//
//	go run ./examples/observability
//
// The trace lands in bitcolor-trace.json: load it into chrome://tracing
// or https://ui.perfetto.dev to see the pipeline → engine → round
// hierarchy as nested slices.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"bitcolor"
)

// watchLiveRun polls /debug/runs while the coloring below executes and
// prints the first few live-progress snapshots it catches, then pulls
// the in-flight run's Chrome trace straight off the registry — the
// introspection a colord operator gets for free on any observed run.
func watchLiveRun(base, runID string, done <-chan struct{}) {
	var lastVertices int64 = -1
	printed := 0
	var tracePulled bool
	for {
		select {
		case <-done:
			return
		default:
		}
		resp, err := http.Get(base + "/debug/runs")
		if err != nil {
			return
		}
		var payload struct {
			Live []bitcolor.LiveRun `json:"live"`
		}
		err = json.NewDecoder(resp.Body).Decode(&payload)
		resp.Body.Close()
		if err != nil {
			return
		}
		for _, lr := range payload.Live {
			if lr.RunID != runID {
				continue
			}
			if lr.Progress.Vertices > lastVertices && printed < 5 {
				fmt.Printf("  live: run %s engine=%s state=%s round=%d vertices=%d lanes=%d\n",
					lr.ID, lr.Engine, lr.Progress.State, lr.Progress.Round,
					lr.Progress.Vertices, len(lr.Progress.Lanes))
				lastVertices = lr.Progress.Vertices
				printed++
			}
			if !tracePulled && lr.Progress.Vertices > 0 {
				// The trace of a run that is STILL RUNNING: spans closed so
				// far, served on demand.
				resp, err := http.Get(base + "/debug/runs/" + lr.ID + "/trace")
				if err == nil {
					n, _ := io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					fmt.Printf("  pulled in-flight trace of %s: %d bytes\n", lr.ID, n)
					tracePulled = true
				}
			}
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func main() {
	// An Observer scopes one logical run: it collects spans, folds the
	// engines' per-worker counters into Prometheus-style families, and
	// stamps every log record with the run ID.
	o := bitcolor.NewObserver(
		bitcolor.WithRunID("observability-example"),
		bitcolor.WithLogHandler(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo})),
	)

	// Expose it over HTTP while the run is in flight. ":0" picks a free
	// port; a real deployment passes ":9090" (the CLIs' -listen flag).
	srv, err := bitcolor.ServeObserver("127.0.0.1:0", o, false)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("serving /metrics, /debug/vars and /debug/runs on http://%s\n", srv.Addr)

	// The largest stand-in (~262K vertices) so the engine runs long
	// enough for the live scrapes below to catch it mid-flight.
	g, err := bitcolor.Generate("CF", 1)
	if err != nil {
		log.Fatal(err)
	}

	// Watch the run registry WHILE the run executes: every observed
	// engine invocation auto-registers in /debug/runs with live progress
	// read from the workers' counter lanes.
	watchDone := make(chan struct{})
	watchStopped := make(chan struct{})
	go func() {
		defer close(watchStopped)
		watchLiveRun("http://"+srv.Addr, o.RunID(), watchDone)
	}()

	// WithObserver threads o through the context; the pipeline and the
	// engine registry's decorator pick it up from there — no signature
	// changes anywhere in between.
	ctx := bitcolor.WithObserver(context.Background(), o)
	pipe := bitcolor.Pipeline{
		Color: bitcolor.ColorOptions{Engine: bitcolor.EngineParallelBitwise},
	}
	pr, err := pipe.Run(ctx, g)
	close(watchDone)
	<-watchStopped
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("colored with %d colors in %d round(s), %v total\n",
		pr.Result.NumColors, pr.Stats.Rounds, pr.Total.Round(10_000))

	// The finished run is now in the flight recorder (the last 64
	// completed runs, newest first) — same data as /debug/runs "recent".
	for _, s := range bitcolor.RecentRuns() {
		if s.RunID == o.RunID() {
			fmt.Printf("flight recorder: %s %s status=%s colors=%d rounds=%d %.1fms\n",
				s.ID, s.Engine, s.Status, s.Colors, s.Rounds, s.DurationMS)
			break
		}
	}

	// Scrape the endpoint the way Prometheus would. Counters persist for
	// the observer's lifetime, so the scrape reflects the finished run.
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nselected scrape lines:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "bitcolor_engine_runs_total") ||
			strings.HasPrefix(line, "bitcolor_rounds_total") ||
			strings.HasPrefix(line, "bitcolor_gather_hot_reads_total") ||
			strings.HasPrefix(line, "bitcolor_gather_pruned_tail_total") ||
			strings.HasPrefix(line, "bitcolor_stage_duration_seconds") && !strings.HasPrefix(line, "#") {
			fmt.Println(" ", line)
		}
	}

	// Export the span tree as Chrome trace_event JSON.
	const tracePath = "bitcolor-trace.json"
	if err := o.WriteTraceFile(tracePath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s — open it in chrome://tracing or ui.perfetto.dev\n", tracePath)
	fmt.Printf("spans recorded: %d total, %d engine round(s)\n",
		len(o.Spans()), o.SpanCount("round"))
}
