// Observability: attach a run-scoped Observer to a pipeline run, scrape
// the live Prometheus endpoint mid-run, correlate structured logs by
// run ID, and export the span tree as a Chrome trace — the whole
// telemetry surface in one program.
//
//	go run ./examples/observability
//
// The trace lands in bitcolor-trace.json: load it into chrome://tracing
// or https://ui.perfetto.dev to see the pipeline → engine → round
// hierarchy as nested slices.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"os"
	"strings"

	"bitcolor"
)

func main() {
	// An Observer scopes one logical run: it collects spans, folds the
	// engines' per-worker counters into Prometheus-style families, and
	// stamps every log record with the run ID.
	o := bitcolor.NewObserver(
		bitcolor.WithRunID("observability-example"),
		bitcolor.WithLogHandler(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo})),
	)

	// Expose it over HTTP while the run is in flight. ":0" picks a free
	// port; a real deployment passes ":9090" (the CLIs' -listen flag).
	srv, err := bitcolor.ServeObserver("127.0.0.1:0", o, false)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("serving /metrics and /debug/vars on http://%s\n", srv.Addr)

	// A gemsec-Deezer-like social network stand-in (~24K vertices).
	g, err := bitcolor.Generate("GD", 1)
	if err != nil {
		log.Fatal(err)
	}

	// WithObserver threads o through the context; the pipeline and the
	// engine registry's decorator pick it up from there — no signature
	// changes anywhere in between.
	ctx := bitcolor.WithObserver(context.Background(), o)
	pipe := bitcolor.Pipeline{
		Color: bitcolor.ColorOptions{Engine: bitcolor.EngineParallelBitwise},
	}
	pr, err := pipe.Run(ctx, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("colored with %d colors in %d round(s), %v total\n",
		pr.Result.NumColors, pr.Stats.Rounds, pr.Total.Round(10_000))

	// Scrape the endpoint the way Prometheus would. Counters persist for
	// the observer's lifetime, so the scrape reflects the finished run.
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nselected scrape lines:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "bitcolor_engine_runs_total") ||
			strings.HasPrefix(line, "bitcolor_rounds_total") ||
			strings.HasPrefix(line, "bitcolor_gather_hot_reads_total") ||
			strings.HasPrefix(line, "bitcolor_gather_pruned_tail_total") ||
			strings.HasPrefix(line, "bitcolor_stage_duration_seconds") && !strings.HasPrefix(line, "#") {
			fmt.Println(" ", line)
		}
	}

	// Export the span tree as Chrome trace_event JSON.
	const tracePath = "bitcolor-trace.json"
	if err := o.WriteTraceFile(tracePath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s — open it in chrome://tracing or ui.perfetto.dev\n", tracePath)
	fmt.Printf("spans recorded: %d total, %d engine round(s)\n",
		len(o.Spans()), o.SpanCount("round"))
}
