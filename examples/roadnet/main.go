// Road-network workload (traffic scheduling, §1): color a near-planar
// bounded-degree road graph so that intersections of the same color can
// be re-timed concurrently. Road networks are the paper's low-skew
// extreme: almost no degree variance, tiny chromatic number, and memory
// behaviour dominated by pruning and DRAM read merging rather than by
// the high-degree cache.
package main

import (
	"fmt"
	"log"

	"bitcolor"
	"bitcolor/internal/engine"
	"bitcolor/internal/graph"
	"bitcolor/internal/reorder"
)

func main() {
	g, err := bitcolor.Generate("RC", 3) // roadNet-CA stand-in
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road graph: %s\n", graph.ComputeStats(g))

	prepared, err := bitcolor.Preprocess(g)
	if err != nil {
		log.Fatal(err)
	}

	// Road networks color with very few colors (paper Table 4: 5).
	res, err := bitcolor.Color(prepared, bitcolor.ColorOptions{Engine: bitcolor.EngineBitwise})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy colors: %d (planar-like graphs need very few)\n", res.NumColors)

	// Pruning and merging are the optimizations that matter here: with
	// bounded degree and strong index locality, half the edges prune away
	// and consecutive DRAM reads share blocks.
	run := func(opts engine.Options, label string) *bitcolor.SimResult {
		cfg := bitcolor.DefaultSimConfig(1)
		cfg.Options = opts
		cfg.CacheVertices = prepared.NumVertices() / 4 // roadNet-CA-scale residency
		r, err := bitcolor.Simulate(prepared, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s %10d cycles, %7d DRAM reads, %6d merged\n",
			label, r.TotalCycles, r.ColorDRAM.Reads, r.Aggregate.MergedReads)
		return r
	}
	fmt.Println("\noptimization impact on a single engine:")
	all := engine.AllOptions()
	noMGR := all
	noMGR.MGR = false
	noPUV := all
	noPUV.PUV = false
	run(engine.Options{HDC: true, BWC: true}, "no merge, no pruning")
	run(noPUV, "merge only")
	run(noMGR, "pruning only")
	full := run(all, "full BitColor")

	fmt.Printf("\npruned %d of %d directed edges (%.1f%%)\n",
		full.Aggregate.EdgesPruned, full.Aggregate.EdgesTotal,
		100*float64(full.Aggregate.EdgesPruned)/float64(full.Aggregate.EdgesTotal))

	// Edge sorting is what enables both MGR and tail pruning: show the
	// cost of skipping it.
	shuffled := prepared.Clone()
	reorder.ShuffleEdges(shuffled, 99)
	cfg := bitcolor.DefaultSimConfig(1)
	cfg.CacheVertices = prepared.NumVertices() / 4
	r, err := bitcolor.Simulate(shuffled, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without edge sorting: %d cycles (%.2fx slower), %d DRAM reads\n",
		r.TotalCycles, float64(r.TotalCycles)/float64(full.TotalCycles), r.ColorDRAM.Reads)

	// The color classes are the traffic-engineering output: each class
	// is a set of intersections with no shared road segment.
	classes := map[uint16]int{}
	for _, c := range full.Colors {
		classes[c]++
	}
	fmt.Printf("\n%d re-timing waves cover %d intersections\n", len(classes), g.NumVertices())
}
