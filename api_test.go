package bitcolor

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bitcolor/internal/graph"
)

// graphWriteDIMACS adapts the internal writer for the API test.
func graphWriteDIMACS(w io.Writer, g *Graph) error {
	return graph.WriteDIMACS(w, g, "api test")
}

func TestGenerateAndColorAllEngines(t *testing.T) {
	g, err := Generate("RC", 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Preprocess(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Engine{
		EngineGreedy, EngineBitwise, EngineDSATUR, EngineWelshPowell,
		EngineSmallestLast, EngineJonesPlassmann, EngineLubyMIS,
	} {
		res, err := Color(h, ColorOptions{Engine: e, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if res.NumColors <= 0 {
			t.Fatalf("%v: no colors", e)
		}
	}
}

func TestGreedyAndBitwiseAgree(t *testing.T) {
	g, err := Generate("CD", 2)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := Preprocess(g)
	a, err := Color(h, ColorOptions{Engine: EngineGreedy})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Color(h, ColorOptions{Engine: EngineBitwise})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatalf("vertex %d: greedy %d bitwise %d", v, a.Colors[v], b.Colors[v])
		}
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	g, err := Generate("GD", 3)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := Preprocess(g)
	cfg := DefaultSimConfig(8)
	cfg.CacheVertices = 2048
	res, err := Simulate(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles <= 0 || res.MCVps <= 0 {
		t.Fatalf("timing missing: %+v", res.Breakdown())
	}
}

func TestPreprocessWithPermutation(t *testing.T) {
	g, err := NewGraph(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 1, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	h, newID, err := PreprocessWithPermutation(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(newID) != 4 {
		t.Fatalf("permutation length %d", len(newID))
	}
	// Vertex 1 has the highest degree → index 0 after DBG.
	if newID[1] != 0 {
		t.Fatalf("hub relabeled to %d, want 0", newID[1])
	}
	if h.Degree(0) != 3 {
		t.Fatalf("reordered hub degree %d", h.Degree(0))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g, err := Generate("EF", 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bcsr")
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed the graph")
	}
}

// TestParseEngineRoundTrip iterates every declared Engine constant: each
// must have a real name (not the Engine(%d) fallback) and parse back to
// itself, so a future engine cannot be added without being reachable
// from the CLIs.
func TestParseEngineRoundTrip(t *testing.T) {
	all := Engines()
	// Engines are consecutive iota constants starting at EngineGreedy;
	// Engines() must cover the full range with no gaps or duplicates.
	seen := map[Engine]bool{}
	for _, e := range all {
		if seen[e] {
			t.Fatalf("Engines() lists %v twice", e)
		}
		seen[e] = true
		if int(e) < 0 || int(e) >= len(all) {
			t.Fatalf("engine %v outside the iota range [0,%d)", e, len(all))
		}
	}
	for _, e := range all {
		name := e.String()
		if strings.HasPrefix(name, "Engine(") {
			t.Fatalf("engine %d has no String name", int(e))
		}
		got, err := ParseEngine(name)
		if err != nil || got != e {
			t.Fatalf("ParseEngine(%s) = %v, %v", name, got, err)
		}
	}
	// One past the last declared engine must not be nameable or parseable:
	// catches an engine added to the iota block but not to Engines().
	next := Engine(len(all))
	if !strings.HasPrefix(next.String(), "Engine(") {
		t.Fatalf("Engine(%d) has a name %q but is not listed in Engines()", len(all), next.String())
	}
	if _, err := ParseEngine("quantum"); err == nil {
		t.Fatal("bogus engine accepted")
	}
}

func TestDatasets(t *testing.T) {
	ds := Datasets()
	if len(ds) != 10 {
		t.Fatalf("datasets = %v", ds)
	}
	if _, err := Generate("nope", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestEstimateResources(t *testing.T) {
	u, err := EstimateResources(16)
	if err != nil {
		t.Fatal(err)
	}
	if !u.FitsU200() {
		t.Fatal("P16 should fit")
	}
	if _, err := EstimateResources(5); err == nil {
		t.Fatal("P=5 accepted")
	}
}

func TestColorRejectsBadOptions(t *testing.T) {
	g, _ := NewGraph(3, []Edge{{U: 0, V: 1}})
	if _, err := Color(g, ColorOptions{Engine: Engine(99)}); err == nil {
		t.Fatal("bogus engine accepted")
	}
}

func TestEngineRLF(t *testing.T) {
	// EF is the smallest dataset; RLF's per-class scans are quadratic.
	g, err := Generate("EF", 6)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := Preprocess(g)
	res, err := Color(h, ColorOptions{Engine: EngineRLF})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumColors <= 0 {
		t.Fatal("RLF produced no colors")
	}
}

func TestImprovePipeline(t *testing.T) {
	g, err := Generate("CD", 4)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := Preprocess(g)
	initial, err := Color(h, ColorOptions{Engine: EngineBitwise})
	if err != nil {
		t.Fatal(err)
	}
	improved, err := Improve(h, initial, ImproveOptions{
		IteratedRounds: 6, KempePasses: 2, Equitable: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if improved.NumColors > initial.NumColors {
		t.Fatalf("Improve went from %d to %d colors", initial.NumColors, improved.NumColors)
	}
	if err := Verify(h, improved.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestImproveRejectsInvalidInitial(t *testing.T) {
	g, _ := NewGraph(2, []Edge{{U: 0, V: 1}})
	bad := &Result{Colors: []uint16{1, 1}, NumColors: 1}
	if _, err := Improve(g, bad, ImproveOptions{}); err == nil {
		t.Fatal("invalid initial coloring accepted")
	}
}

func TestSimulateBFSAndJP(t *testing.T) {
	g, err := Generate("EF", 8)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := Preprocess(g)
	cfg := DefaultSimConfig(4)
	cfg.CacheVertices = h.NumVertices()
	bfs, err := SimulateBFS(h, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bfs.Depth <= 0 || bfs.TotalCycles <= 0 {
		t.Fatalf("BFS result %+v", bfs.Depth)
	}
	jp, err := SimulateJonesPlassmann(h, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h, jp.Colors); err != nil {
		t.Fatal(err)
	}
	greedy, err := Simulate(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if jp.TotalCycles <= greedy.TotalCycles {
		t.Fatalf("JP on substrate (%d) not slower than greedy pipeline (%d)",
			jp.TotalCycles, greedy.TotalCycles)
	}
}

func TestEngineSpeculative(t *testing.T) {
	g, err := Generate("GD", 10)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := Preprocess(g)
	res, err := Color(h, ColorOptions{Engine: EngineSpeculative, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h, res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestEngineParallelBitwise(t *testing.T) {
	g, err := Generate("GD", 10)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := Preprocess(g)
	res, st, err := ColorParallel(h, ColorOptions{Engine: EngineParallelBitwise, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h, res.Colors); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 4 || st.Rounds < 1 {
		t.Fatalf("stats: %v", st)
	}
	// Color must accept the engine too (stats dropped).
	if _, err := Color(h, ColorOptions{Engine: EngineParallelBitwise, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	// ColorParallel rejects sequential engines.
	if _, _, err := ColorParallel(h, ColorOptions{Engine: EngineBitwise}); err == nil {
		t.Fatal("sequential engine accepted by ColorParallel")
	}
}

func TestLoadDIMACSAndImproveWithTabu(t *testing.T) {
	g, err := Generate("EF", 11)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through DIMACS.
	path := filepath.Join(t.TempDir(), "g.col")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphWriteDIMACS(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g2, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() {
		t.Fatal("DIMACS round trip changed vertex count")
	}
	initial, err := Color(g2, ColorOptions{Engine: EngineBitwise})
	if err != nil {
		t.Fatal(err)
	}
	improved, err := Improve(g2, initial, ImproveOptions{TabuIters: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if improved.NumColors > initial.NumColors {
		t.Fatal("tabu made it worse")
	}
}

func TestDynamicAPI(t *testing.T) {
	d := NewDynamic(16)
	a, b := d.AddVertex(), d.AddVertex()
	if err := d.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	if d.Color(a) == d.Color(b) {
		t.Fatal("adjacent same color")
	}
}
