// Command analyze characterizes a graph the way the paper's §3 does:
// degree structure, neighborhood overlap ratio (Fig 3b), color-read reuse
// distances, hot-vertex read share and block locality — the measurements
// that motivate each of BitColor's optimizations.
//
// Usage:
//
//	analyze -dataset CL
//	analyze -input graph.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"bitcolor"
	"bitcolor/internal/graph"
	"bitcolor/internal/mem"
	"bitcolor/internal/obs"
	"bitcolor/internal/reorder"
	"bitcolor/internal/trace"
)

func main() {
	var (
		input      = flag.String("input", "", "graph file (edge list or .bcsr)")
		dataset    = flag.String("dataset", "", "synthetic dataset abbreviation")
		seed       = flag.Int64("seed", 1, "generator seed")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the analysis to this file")
	)
	flag.Parse()
	stopProf, err := obs.StartCPUProfile(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	err = run(os.Stdout, *input, *dataset, *seed)
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run(out *os.File, input, dataset string, seed int64) error {
	var (
		g   *bitcolor.Graph
		err error
	)
	switch {
	case input != "":
		g, err = bitcolor.LoadGraph(input)
	case dataset != "":
		g, err = bitcolor.Generate(dataset, seed)
	default:
		return fmt.Errorf("need -input FILE or -dataset ABBREV")
	}
	if err != nil {
		return err
	}

	stats := graph.ComputeStats(g)
	fmt.Fprintf(out, "graph: %s\n", stats)
	labels, comps := graph.ConnectedComponents(g)
	_ = labels
	_, degeneracy := graph.KCore(g)
	fmt.Fprintf(out, "components: %d, degeneracy: %d (greedy needs <= %d colors in smallest-last order)\n",
		comps, degeneracy, degeneracy+1)

	prepared, _ := reorder.DBG(g)
	fmt.Fprintf(out, "\nafter DBG reordering (the accelerator's view):\n")

	// §3.1.2 / Fig 3(b): why recency caching fails.
	series, err := trace.OverlapSeries(prepared, []int{1, 4, 16})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  neighborhood overlap (iv=1/4/16): %.2f%% / %.2f%% / %.2f%% (paper avg: 4.96%%)\n",
		100*series[0], 100*series[1], 100*series[2])
	hist := trace.MeasureReuse(prepared)
	window := int64(prepared.NumVertices()) / 8
	fmt.Fprintf(out, "  cold reads: %.1f%%; short-reuse (window %d): %.1f%% of reuses\n",
		100*float64(hist.Cold)/float64(max64(hist.Total, 1)), window,
		100*hist.ShortReuseFraction(window))

	// §3.2.2: why degree caching works.
	hot := trace.HotVertexReadShare(prepared, 1.0/8)
	fmt.Fprintf(out, "  top-1/8 vertices absorb %.1f%% of color reads (HDC capture)\n", 100*hot)

	// §3.2.2(2): why edge sorting + read merge works.
	reuse := trace.BlockReuse(prepared, mem.ColorsPerBlock)
	fmt.Fprintf(out, "  consecutive reads sharing a %d-color DRAM block: %.1f%% (MGR capture)\n",
		mem.ColorsPerBlock, 100*reuse)

	// §3.2.2(3): why pruning works (exactly half the directed edges point
	// up in index order on a simple symmetric graph).
	fmt.Fprintf(out, "  prunable neighbor visits (index above source): 50.0%% by construction\n")

	// Spread: how far apart consecutive color reads land.
	fmt.Fprintf(out, "  access spread (mean |Δindex| / n): %.4f (0=sequential, ~0.33=uniform random)\n",
		trace.AccessSpread(prepared))
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
