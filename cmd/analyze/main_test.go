package main

import (
	"os"
	"path/filepath"
	"testing"

	"bitcolor"
)

func TestRunDataset(t *testing.T) {
	if err := run(os.Stdout, "", "EF", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunFile(t *testing.T) {
	g, err := bitcolor.Generate("EF", 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bcsr")
	if err := bitcolor.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	if err := run(os.Stdout, path, "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(os.Stdout, "", "", 1); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := run(os.Stdout, "/nope", "", 1); err == nil {
		t.Fatal("missing file accepted")
	}
}
