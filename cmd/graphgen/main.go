// Command graphgen emits the synthetic stand-in datasets (or custom
// generator output) as SNAP edge lists or binary CSR files.
//
// Usage:
//
//	graphgen -dataset CL -out cl.bcsr
//	graphgen -dataset all -dir ./data
//	graphgen -rmat 16 -edgefactor 8 -out big.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bitcolor"
	"bitcolor/internal/gen"
	"bitcolor/internal/graph"
	"bitcolor/internal/obs"
)

func main() {
	var (
		dataset    = flag.String("dataset", "", "dataset abbreviation, or 'all'")
		out        = flag.String("out", "", "output file (.bcsr binary, anything else edge list)")
		dir        = flag.String("dir", ".", "output directory for -dataset all")
		seed       = flag.Int64("seed", 1, "generator seed")
		rmat       = flag.Int("rmat", 0, "generate an RMAT graph of this scale instead of a named dataset")
		edgeFactor = flag.Int("edgefactor", 8, "RMAT edges per vertex")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the generation to this file")
	)
	flag.Parse()
	stopProf, err := obs.StartCPUProfile(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	err = run(*dataset, *out, *dir, *seed, *rmat, *edgeFactor)
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(dataset, out, dir string, seed int64, rmat, edgeFactor int) error {
	if rmat > 0 {
		if out == "" {
			return fmt.Errorf("-rmat needs -out")
		}
		g, err := gen.RMAT(rmat, edgeFactor, 0.57, 0.19, 0.19, seed)
		if err != nil {
			return err
		}
		return write(out, g)
	}
	if dataset == "" {
		return fmt.Errorf("need -dataset ABBREV|all (abbreviations: %v)", bitcolor.Datasets())
	}
	if dataset == "all" {
		for _, d := range gen.Registry() {
			g, err := d.Build(seed)
			if err != nil {
				return fmt.Errorf("%s: %w", d.Abbrev, err)
			}
			path := filepath.Join(dir, strings.ToLower(d.Abbrev)+".bcsr")
			if err := write(path, g); err != nil {
				return err
			}
			fmt.Printf("%s (%s): %d vertices, %d edges -> %s\n",
				d.Abbrev, d.Name, g.NumVertices(), g.UndirectedEdgeCount(), path)
		}
		return nil
	}
	g, err := bitcolor.Generate(dataset, seed)
	if err != nil {
		return err
	}
	if out == "" {
		out = strings.ToLower(dataset) + ".bcsr"
	}
	if err := write(out, g); err != nil {
		return err
	}
	fmt.Printf("%s: %d vertices, %d edges -> %s\n",
		dataset, g.NumVertices(), g.UndirectedEdgeCount(), out)
	return nil
}

func write(path string, g *graph.CSR) error {
	if strings.HasSuffix(path, ".bcsr") {
		return graph.SaveBinaryFile(path, g)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := graph.WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
