package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bitcolor"
)

func TestRunNamedDataset(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ef.bcsr")
	if err := run("EF", out, dir, 1, 0, 8); err != nil {
		t.Fatal(err)
	}
	g, err := bitcolor.LoadGraph(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("empty graph written")
	}
}

func TestRunEdgeListOutput(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ef.txt")
	if err := run("EF", out, dir, 1, 0, 8); err != nil {
		t.Fatal(err)
	}
	g, err := bitcolor.LoadGraph(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges written")
	}
}

func TestRunRMAT(t *testing.T) {
	out := filepath.Join(t.TempDir(), "rmat.bcsr")
	if err := run("", out, ".", 3, 8, 6); err != nil {
		t.Fatal(err)
	}
	g, err := bitcolor.LoadGraph(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 256 {
		t.Fatalf("rmat scale 8 vertices = %d", g.NumVertices())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", ".", 1, 0, 8); err == nil {
		t.Fatal("missing dataset accepted")
	}
	if err := run("", "", ".", 1, 5, 8); err == nil {
		t.Fatal("rmat without out accepted")
	}
	if err := run("XX", "x.bcsr", ".", 1, 0, 8); err == nil {
		t.Fatal("bogus dataset accepted")
	}
}

func TestMainPackageCompiles(t *testing.T) {
	// Guards against accidentally breaking the flag wiring; main itself
	// is exercised via `go build`.
	if os.Getenv("NEVER_SET") == "1" {
		main()
	}
}

func TestRunAllDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("builds all ten full-size datasets")
	}
	dir := t.TempDir()
	if err := run("all", "", dir, 1, 0, 8); err != nil {
		t.Fatal(err)
	}
	for _, abbrev := range bitcolor.Datasets() {
		path := filepath.Join(dir, strings.ToLower(abbrev)+".bcsr")
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("%s not written: %v", abbrev, err)
		}
	}
}

func TestWriteErrorPropagates(t *testing.T) {
	if err := run("EF", "/nonexistent-dir/x.bcsr", ".", 1, 0, 8); err == nil {
		t.Fatal("unwritable path accepted")
	}
}
