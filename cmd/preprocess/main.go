// Command preprocess applies BitColor's preprocessing — degree-based
// grouping (DBG) reordering and per-vertex edge sorting — to a graph and
// reports the Table 2 style timings (reordering vs coloring) plus a
// per-stage breakdown (load / build / sort / DBG) of the pipeline.
//
// Usage:
//
//	preprocess -input graph.txt -out graph-dbg.bcsr
//	preprocess -input graph.txt -out graph-dbg.bcsr -obin-v2
//	preprocess -input old.bcsr -convert -obin-v2 -out new.bcsr
//	preprocess -input graph.txt -out graph-dbg.bcsr -obin-v3 -shards 8
//	preprocess -input old.bcsr -convert -obin-v3 -shards 4 -out new.bcsr
//	preprocess -dataset CO -time
//	preprocess -input graph.txt -parallel 8
//
// -obin-v2 writes -out in the mmap-ready BCSR v2 format instead of v1;
// -obin-v3 writes the shard-major BCSR v3 format, partitioning into
// -shards parts with the -partition strategy and persisting the
// assignment for the out-of-core engine's partition cache. -convert
// skips the preprocessing entirely and just rewrites the input graph,
// which together give v1 → v2 → v3 format conversions.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bitcolor"
	"bitcolor/internal/coloring"
	"bitcolor/internal/graph"
	"bitcolor/internal/obs"
	"bitcolor/internal/reorder"
)

func main() {
	var (
		input      = flag.String("input", "", "graph file (edge list, .col or .bcsr)")
		dataset    = flag.String("dataset", "", "synthetic dataset abbreviation")
		out        = flag.String("out", "", "write the reordered graph here (.bcsr)")
		outV2      = flag.Bool("obin-v2", false, "write -out in the mmap-ready BCSR v2 format (default: v1)")
		outV3      = flag.Bool("obin-v3", false, "write -out in the shard-major BCSR v3 format (persisted partition for out-of-core coloring)")
		shards     = flag.Int("shards", 4, "partition count persisted by -obin-v3")
		strategy   = flag.String("partition", bitcolor.PartitionRanges, "partition strategy persisted by -obin-v3: ranges|labelprop")
		convert    = flag.Bool("convert", false, "skip preprocessing and write the input graph to -out unchanged (format conversion)")
		seed       = flag.Int64("seed", 1, "generator seed")
		showTime   = flag.Bool("time", false, "report reordering vs coloring wall time (Table 2)")
		parallel   = flag.Int("parallel", 0, "preprocessing workers (<=0: GOMAXPROCS)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the preprocessing to this file")
	)
	flag.Parse()
	stopProf, err := obs.StartCPUProfile(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "preprocess:", err)
		os.Exit(1)
	}
	err = run(*input, *dataset, *out, *seed, *showTime, *parallel,
		saveConfig{v2: *outV2, v3: *outV3, shards: *shards, strategy: *strategy}, *convert)
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "preprocess:", err)
		os.Exit(1)
	}
}

// isEdgeListPath reports whether the CLI treats path as a text edge list
// (everything that is not the binary or DIMACS format).
func isEdgeListPath(path string) bool {
	return !strings.HasSuffix(path, ".bcsr") && !strings.HasSuffix(path, ".col")
}

// saveConfig selects the output binary format (v1 default; v3 carries
// its partition parameters).
type saveConfig struct {
	v2, v3   bool
	shards   int
	strategy string
}

// saveGraph writes g to path in the selected binary format and reports
// what it wrote.
func saveGraph(path string, g *bitcolor.Graph, cfg saveConfig) error {
	switch {
	case cfg.v3 && cfg.v2:
		return fmt.Errorf("-obin-v2 and -obin-v3 are mutually exclusive")
	case cfg.v3:
		start := time.Now()
		if err := bitcolor.SaveGraphV3(path, g, cfg.shards, cfg.strategy); err != nil {
			return err
		}
		fmt.Printf("wrote %s (bcsr v3, %d shards, %s partition, %v)\n",
			path, cfg.shards, cfg.strategy, time.Since(start).Round(time.Microsecond))
		return nil
	case cfg.v2:
		if err := graph.SaveBinaryV2File(path, g); err != nil {
			return err
		}
		fmt.Printf("wrote %s (bcsr v2)\n", path)
		return nil
	default:
		if err := graph.SaveBinaryFile(path, g); err != nil {
			return err
		}
		fmt.Printf("wrote %s (bcsr v1)\n", path)
		return nil
	}
}

func run(input, dataset, out string, seed int64, showTime bool, parallel int, save saveConfig, convert bool) error {
	// Stage 1+2: load (parse text / read binary / generate) and build
	// (CSR construction). Text edge lists split the two so the parallel
	// builder's share is visible; the other sources build internally.
	var (
		g         *bitcolor.Graph
		err       error
		loadTime  time.Duration
		buildTime time.Duration
	)
	start := time.Now()
	switch {
	case input != "" && isEdgeListPath(input):
		f, ferr := os.Open(input)
		if ferr != nil {
			return ferr
		}
		n, edges, _, perr := graph.ReadEdges(f)
		f.Close()
		if perr != nil {
			return perr
		}
		loadTime = time.Since(start)
		start = time.Now()
		g, err = graph.FromEdgeListParallel(n, edges, parallel)
		buildTime = time.Since(start)
	case input != "":
		g, err = bitcolor.LoadGraph(input)
		loadTime = time.Since(start)
	case dataset != "":
		g, err = bitcolor.Generate(dataset, seed)
		loadTime = time.Since(start)
	default:
		return fmt.Errorf("need -input FILE or -dataset ABBREV")
	}
	if err != nil {
		return err
	}

	// Conversion mode: rewrite the loaded graph as-is (typically a v1
	// .bcsr into the mmap-ready v2 layout) and stop.
	if convert {
		if out == "" {
			return fmt.Errorf("-convert needs -out FILE")
		}
		fmt.Printf("loaded %d vertices, %d edges in %v\n",
			g.NumVertices(), g.UndirectedEdgeCount(), loadTime.Round(time.Microsecond))
		return saveGraph(out, g, save)
	}

	// Stage 3: per-vertex edge sorting (a no-op when the source already
	// guarantees it — the check is part of the stage).
	start = time.Now()
	if !g.EdgesSorted() {
		g.SortEdgesParallel(parallel)
	}
	sortTime := time.Since(start)

	// Stage 4: DBG reordering (degree sort + parallel relabel).
	start = time.Now()
	prepared, perm := reorder.DBGParallel(g, parallel)
	dbgTime := time.Since(start)
	if err := perm.Validate(); err != nil {
		return fmt.Errorf("internal: %w", err)
	}
	total := loadTime + buildTime + sortTime + dbgTime
	fmt.Printf("reordered %d vertices, %d edges in %v\n",
		prepared.NumVertices(), prepared.UndirectedEdgeCount(), dbgTime.Round(time.Microsecond))
	fmt.Printf("degree-descending: %v, edges sorted: %v\n",
		reorder.IsDegreeDescending(prepared), prepared.EdgesSorted())
	fmt.Printf("pipeline: load %v, build %v, sort %v, dbg %v (total %v)\n",
		loadTime.Round(time.Microsecond), buildTime.Round(time.Microsecond),
		sortTime.Round(time.Microsecond), dbgTime.Round(time.Microsecond),
		total.Round(time.Microsecond))

	if showTime {
		start = time.Now()
		res, err := coloring.Greedy(context.Background(), prepared, coloring.MaxColorsDefault)
		if err != nil {
			return err
		}
		colorTime := time.Since(start)
		fmt.Printf("basic greedy coloring: %v (%d colors)\n",
			colorTime.Round(time.Microsecond), res.NumColors)
		fmt.Printf("reorder/coloring ratio: %.1f%% (paper: reordering cost is small)\n",
			100*float64(dbgTime)/float64(colorTime))
	}

	if out != "" {
		return saveGraph(out, prepared, save)
	}
	return nil
}
