// Command preprocess applies BitColor's preprocessing — degree-based
// grouping (DBG) reordering and per-vertex edge sorting — to a graph and
// reports the Table 2 style timings (reordering vs coloring) plus a
// per-stage breakdown (load / build / sort / DBG) of the pipeline.
//
// Usage:
//
//	preprocess -input graph.txt -out graph-dbg.bcsr
//	preprocess -input graph.txt -out graph-dbg.bcsr -obin-v2
//	preprocess -input old.bcsr -convert -obin-v2 -out new.bcsr
//	preprocess -dataset CO -time
//	preprocess -input graph.txt -parallel 8
//
// -obin-v2 writes -out in the mmap-ready BCSR v2 format instead of v1;
// -convert skips the preprocessing entirely and just rewrites the input
// graph, which together give a v1 → v2 format conversion.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bitcolor"
	"bitcolor/internal/coloring"
	"bitcolor/internal/graph"
	"bitcolor/internal/obs"
	"bitcolor/internal/reorder"
)

func main() {
	var (
		input      = flag.String("input", "", "graph file (edge list, .col or .bcsr)")
		dataset    = flag.String("dataset", "", "synthetic dataset abbreviation")
		out        = flag.String("out", "", "write the reordered graph here (.bcsr)")
		outV2      = flag.Bool("obin-v2", false, "write -out in the mmap-ready BCSR v2 format (default: v1)")
		convert    = flag.Bool("convert", false, "skip preprocessing and write the input graph to -out unchanged (format conversion)")
		seed       = flag.Int64("seed", 1, "generator seed")
		showTime   = flag.Bool("time", false, "report reordering vs coloring wall time (Table 2)")
		parallel   = flag.Int("parallel", 0, "preprocessing workers (<=0: GOMAXPROCS)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the preprocessing to this file")
	)
	flag.Parse()
	stopProf, err := obs.StartCPUProfile(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "preprocess:", err)
		os.Exit(1)
	}
	err = run(*input, *dataset, *out, *seed, *showTime, *parallel, *outV2, *convert)
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "preprocess:", err)
		os.Exit(1)
	}
}

// isEdgeListPath reports whether the CLI treats path as a text edge list
// (everything that is not the binary or DIMACS format).
func isEdgeListPath(path string) bool {
	return !strings.HasSuffix(path, ".bcsr") && !strings.HasSuffix(path, ".col")
}

// saveGraph writes g to path in the selected binary format and reports
// what it wrote.
func saveGraph(path string, g *bitcolor.Graph, v2 bool) error {
	format := "bcsr v1"
	save := graph.SaveBinaryFile
	if v2 {
		format = "bcsr v2"
		save = graph.SaveBinaryV2File
	}
	if err := save(path, g); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s)\n", path, format)
	return nil
}

func run(input, dataset, out string, seed int64, showTime bool, parallel int, outV2, convert bool) error {
	// Stage 1+2: load (parse text / read binary / generate) and build
	// (CSR construction). Text edge lists split the two so the parallel
	// builder's share is visible; the other sources build internally.
	var (
		g         *bitcolor.Graph
		err       error
		loadTime  time.Duration
		buildTime time.Duration
	)
	start := time.Now()
	switch {
	case input != "" && isEdgeListPath(input):
		f, ferr := os.Open(input)
		if ferr != nil {
			return ferr
		}
		n, edges, _, perr := graph.ReadEdges(f)
		f.Close()
		if perr != nil {
			return perr
		}
		loadTime = time.Since(start)
		start = time.Now()
		g, err = graph.FromEdgeListParallel(n, edges, parallel)
		buildTime = time.Since(start)
	case input != "":
		g, err = bitcolor.LoadGraph(input)
		loadTime = time.Since(start)
	case dataset != "":
		g, err = bitcolor.Generate(dataset, seed)
		loadTime = time.Since(start)
	default:
		return fmt.Errorf("need -input FILE or -dataset ABBREV")
	}
	if err != nil {
		return err
	}

	// Conversion mode: rewrite the loaded graph as-is (typically a v1
	// .bcsr into the mmap-ready v2 layout) and stop.
	if convert {
		if out == "" {
			return fmt.Errorf("-convert needs -out FILE")
		}
		fmt.Printf("loaded %d vertices, %d edges in %v\n",
			g.NumVertices(), g.UndirectedEdgeCount(), loadTime.Round(time.Microsecond))
		return saveGraph(out, g, outV2)
	}

	// Stage 3: per-vertex edge sorting (a no-op when the source already
	// guarantees it — the check is part of the stage).
	start = time.Now()
	if !g.EdgesSorted() {
		g.SortEdgesParallel(parallel)
	}
	sortTime := time.Since(start)

	// Stage 4: DBG reordering (degree sort + parallel relabel).
	start = time.Now()
	prepared, perm := reorder.DBGParallel(g, parallel)
	dbgTime := time.Since(start)
	if err := perm.Validate(); err != nil {
		return fmt.Errorf("internal: %w", err)
	}
	total := loadTime + buildTime + sortTime + dbgTime
	fmt.Printf("reordered %d vertices, %d edges in %v\n",
		prepared.NumVertices(), prepared.UndirectedEdgeCount(), dbgTime.Round(time.Microsecond))
	fmt.Printf("degree-descending: %v, edges sorted: %v\n",
		reorder.IsDegreeDescending(prepared), prepared.EdgesSorted())
	fmt.Printf("pipeline: load %v, build %v, sort %v, dbg %v (total %v)\n",
		loadTime.Round(time.Microsecond), buildTime.Round(time.Microsecond),
		sortTime.Round(time.Microsecond), dbgTime.Round(time.Microsecond),
		total.Round(time.Microsecond))

	if showTime {
		start = time.Now()
		res, err := coloring.Greedy(context.Background(), prepared, coloring.MaxColorsDefault)
		if err != nil {
			return err
		}
		colorTime := time.Since(start)
		fmt.Printf("basic greedy coloring: %v (%d colors)\n",
			colorTime.Round(time.Microsecond), res.NumColors)
		fmt.Printf("reorder/coloring ratio: %.1f%% (paper: reordering cost is small)\n",
			100*float64(dbgTime)/float64(colorTime))
	}

	if out != "" {
		return saveGraph(out, prepared, outV2)
	}
	return nil
}
