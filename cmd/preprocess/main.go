// Command preprocess applies BitColor's preprocessing — degree-based
// grouping (DBG) reordering and per-vertex edge sorting — to a graph and
// reports the Table 2 style timings (reordering vs coloring).
//
// Usage:
//
//	preprocess -input graph.txt -out graph-dbg.bcsr
//	preprocess -dataset CO -time
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bitcolor"
	"bitcolor/internal/coloring"
	"bitcolor/internal/graph"
	"bitcolor/internal/reorder"
)

func main() {
	var (
		input    = flag.String("input", "", "graph file (edge list or .bcsr)")
		dataset  = flag.String("dataset", "", "synthetic dataset abbreviation")
		out      = flag.String("out", "", "write the reordered graph here (.bcsr)")
		seed     = flag.Int64("seed", 1, "generator seed")
		showTime = flag.Bool("time", false, "report reordering vs coloring wall time (Table 2)")
	)
	flag.Parse()
	if err := run(*input, *dataset, *out, *seed, *showTime); err != nil {
		fmt.Fprintln(os.Stderr, "preprocess:", err)
		os.Exit(1)
	}
}

func run(input, dataset, out string, seed int64, showTime bool) error {
	var (
		g   *bitcolor.Graph
		err error
	)
	switch {
	case input != "":
		g, err = bitcolor.LoadGraph(input)
	case dataset != "":
		g, err = bitcolor.Generate(dataset, seed)
	default:
		return fmt.Errorf("need -input FILE or -dataset ABBREV")
	}
	if err != nil {
		return err
	}

	start := time.Now()
	prepared, perm := reorder.DBG(g)
	reorderTime := time.Since(start)
	if err := perm.Validate(); err != nil {
		return fmt.Errorf("internal: %w", err)
	}
	fmt.Printf("reordered %d vertices, %d edges in %v\n",
		prepared.NumVertices(), prepared.UndirectedEdgeCount(), reorderTime.Round(time.Microsecond))
	fmt.Printf("degree-descending: %v, edges sorted: %v\n",
		reorder.IsDegreeDescending(prepared), prepared.EdgesSorted())

	if showTime {
		start = time.Now()
		res, err := coloring.Greedy(prepared, coloring.MaxColorsDefault)
		if err != nil {
			return err
		}
		colorTime := time.Since(start)
		fmt.Printf("basic greedy coloring: %v (%d colors)\n",
			colorTime.Round(time.Microsecond), res.NumColors)
		fmt.Printf("reorder/coloring ratio: %.1f%% (paper: reordering cost is small)\n",
			100*float64(reorderTime)/float64(colorTime))
	}

	if out != "" {
		if err := graph.SaveBinaryFile(out, prepared); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}
