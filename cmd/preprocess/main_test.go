package main

import (
	"os"
	"path/filepath"
	"testing"

	"bitcolor"
	"bitcolor/internal/graph"
)

func TestRunDatasetWithTiming(t *testing.T) {
	if err := run("", "EF", "", 1, true, 0, saveConfig{}, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "dbg.bcsr")
	if err := run("", "EF", out, 1, false, 2, saveConfig{}, false); err != nil {
		t.Fatal(err)
	}
	g, err := bitcolor.LoadGraph(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("empty output")
	}
	// The written graph must carry the DBG invariant.
	for v := 1; v < g.NumVertices(); v++ {
		if g.Degree(bitcolor.VertexID(v)) > g.Degree(bitcolor.VertexID(v-1)) {
			t.Fatal("output not degree-descending")
		}
	}
}

func TestRunFromFile(t *testing.T) {
	g, err := bitcolor.Generate("EF", 2)
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(t.TempDir(), "in.bcsr")
	if err := bitcolor.SaveGraph(in, g); err != nil {
		t.Fatal(err)
	}
	if err := run(in, "", "", 1, false, 0, saveConfig{}, false); err != nil {
		t.Fatal(err)
	}
}

// A text edge list goes through the split parse + parallel-build path;
// the written output must match the dataset path's result.
func TestRunFromEdgeListText(t *testing.T) {
	g, err := bitcolor.Generate("EF", 3)
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(t.TempDir(), "in.txt")
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "dbg.bcsr")
	if err := run(in, "", out, 1, false, 4, saveConfig{}, false); err != nil {
		t.Fatal(err)
	}
	got, err := bitcolor.LoadGraph(out)
	if err != nil {
		t.Fatal(err)
	}
	// The text format only names non-isolated vertices, so compare edge
	// counts (exact) and vertex counts as an upper bound.
	if got.NumEdges() != g.NumEdges() || got.NumVertices() > g.NumVertices() || got.NumVertices() == 0 {
		t.Fatalf("round trip changed the graph: %d/%d vs %d/%d vertices/edges",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
}

// TestRunWritesV2Output checks -obin-v2 produces a BCSR v2 file that
// loads back (via the sniffing loader) with the DBG invariant intact.
func TestRunWritesV2Output(t *testing.T) {
	out := filepath.Join(t.TempDir(), "dbg.bcsr")
	if err := run("", "EF", out, 1, false, 2, saveConfig{v2: true}, false); err != nil {
		t.Fatal(err)
	}
	if format, err := graph.SniffFormat(out); err != nil || format != graph.FormatBCSR2 {
		t.Fatalf("sniff: %v %v, want %s", format, err, graph.FormatBCSR2)
	}
	g, err := bitcolor.LoadGraph(out)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < g.NumVertices(); v++ {
		if g.Degree(bitcolor.VertexID(v)) > g.Degree(bitcolor.VertexID(v-1)) {
			t.Fatal("output not degree-descending")
		}
	}
}

// TestRunConvertV1ToV2 drives the pure conversion path: a v1 .bcsr in,
// an identical graph out in v2 layout, no reordering applied.
func TestRunConvertV1ToV2(t *testing.T) {
	g, err := bitcolor.Generate("EF", 5)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bcsr")
	if err := bitcolor.SaveGraph(in, g); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.bcsr")
	if err := run(in, "", out, 1, false, 0, saveConfig{v2: true}, true); err != nil {
		t.Fatal(err)
	}
	got, err := bitcolor.LoadGraph(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("conversion changed the graph: %d/%d vs %d/%d",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		a, b := g.Neighbors(bitcolor.VertexID(v)), got.Neighbors(bitcolor.VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d: degree %d vs %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d: adjacency differs", v)
			}
		}
	}
	// -convert without -out must refuse rather than silently discard.
	if err := run(in, "", "", 1, false, 0, saveConfig{v2: true}, true); err == nil {
		t.Fatal("-convert without -out accepted")
	}
}

// TestRunConvertV1ToV3 drives the v3 conversion path: a v1 .bcsr in, a
// shard-major v3 file out carrying the requested partition shape, same
// graph back through the sniffing loader.
func TestRunConvertV1ToV3(t *testing.T) {
	g, err := bitcolor.Generate("EF", 6)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bcsr")
	if err := bitcolor.SaveGraph(in, g); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.bcsr")
	cfg := saveConfig{v3: true, shards: 2, strategy: bitcolor.PartitionLabelProp}
	if err := run(in, "", out, 1, false, 0, cfg, true); err != nil {
		t.Fatal(err)
	}
	if format, err := graph.SniffFormat(out); err != nil || format != graph.FormatBCSR3 {
		t.Fatalf("sniff: %v %v, want %s", format, err, graph.FormatBCSR3)
	}
	h, err := bitcolor.OpenGraphFile(out)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.NumShards() != 2 || h.PartitionStrategy() != bitcolor.PartitionLabelProp {
		t.Fatalf("shards=%d strategy=%q", h.NumShards(), h.PartitionStrategy())
	}
	if got := h.Graph(); got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("conversion changed the graph: %d/%d vs %d/%d",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	// The two -obin flags are mutually exclusive.
	if err := run(in, "", out, 1, false, 0, saveConfig{v2: true, v3: true}, true); err == nil {
		t.Fatal("-obin-v2 with -obin-v3 accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "", 1, false, 0, saveConfig{}, false); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := run("/nope.txt", "", "", 1, false, 0, saveConfig{}, false); err == nil {
		t.Fatal("missing file accepted")
	}
}
