package main

import (
	"path/filepath"
	"testing"

	"bitcolor"
)

func TestRunDatasetWithTiming(t *testing.T) {
	if err := run("", "EF", "", 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "dbg.bcsr")
	if err := run("", "EF", out, 1, false); err != nil {
		t.Fatal(err)
	}
	g, err := bitcolor.LoadGraph(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("empty output")
	}
	// The written graph must carry the DBG invariant.
	for v := 1; v < g.NumVertices(); v++ {
		if g.Degree(bitcolor.VertexID(v)) > g.Degree(bitcolor.VertexID(v-1)) {
			t.Fatal("output not degree-descending")
		}
	}
}

func TestRunFromFile(t *testing.T) {
	g, err := bitcolor.Generate("EF", 2)
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(t.TempDir(), "in.bcsr")
	if err := bitcolor.SaveGraph(in, g); err != nil {
		t.Fatal(err)
	}
	if err := run(in, "", "", 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "", 1, false); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := run("/nope.txt", "", "", 1, false); err == nil {
		t.Fatal("missing file accepted")
	}
}
