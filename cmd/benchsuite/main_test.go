package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"bitcolor/internal/experiments"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run("fig14", true, "", 1, false, "", obsConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithDatasetFilter(t *testing.T) {
	if err := run("table4", true, "EF,RC", 1, false, "", obsConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run("fig14", true, "", 1, true, "", obsConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLocalityEmitsJSON(t *testing.T) {
	dir := t.TempDir()
	if err := run("locality", true, "EF,RC", 1, false, dir, obsConfig{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_locality.json"))
	if err != nil {
		t.Fatal(err)
	}
	var file experiments.BenchFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if file.SchemaVersion != experiments.BenchSchemaVersion {
		t.Fatalf("schema_version = %d, want %d", file.SchemaVersion, experiments.BenchSchemaVersion)
	}
	if file.Exp != "locality" {
		t.Fatalf("exp = %q, want locality", file.Exp)
	}
	// 2 datasets × 2×2 ablation arms.
	if len(file.Records) != 8 {
		t.Fatalf("got %d records, want 8", len(file.Records))
	}
	for _, r := range file.Records {
		if r.Exp != "locality" || r.Engine != "parallelbitwise" ||
			r.Workers <= 0 || r.Colors <= 0 || r.WallNanos <= 0 || r.NsPerEdge <= 0 {
			t.Fatalf("implausible record: %+v", r)
		}
	}
	// The emission must land atomically: no temp file may survive the
	// rename.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "BENCH_locality.json" {
			t.Fatalf("unexpected leftover file %q in JSON dir", e.Name())
		}
	}
}

// TestRunWithObservability exercises the -listen/-trace-out wiring
// end to end: the suite's engine runs must flow their telemetry through
// the observer attached to Context.BaseCtx, and the resulting Chrome
// trace must be valid JSON with events.
func TestRunWithObservability(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	oc := obsConfig{listen: "127.0.0.1:0", traceOut: trace}
	if err := run("locality", true, "EF", 1, false, "", oc); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var engineSpans int
	for _, ev := range tf.TraceEvents {
		if name, _ := ev["name"].(string); name == "engine/parallelbitwise" {
			engineSpans++
		}
	}
	if engineSpans == 0 {
		t.Fatalf("no engine/parallelbitwise spans in trace (%d events) — BaseCtx observer not reaching the registry decorator", len(tf.TraceEvents))
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nonsense", true, "", 1, false, "", obsConfig{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run("fig14", true, "ZZ", 1, false, "", obsConfig{}); err == nil {
		t.Fatal("empty dataset filter accepted")
	}
}
