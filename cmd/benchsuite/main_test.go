package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"bitcolor/internal/experiments"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run("fig14", true, "", 1, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithDatasetFilter(t *testing.T) {
	if err := run("table4", true, "EF,RC", 1, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run("fig14", true, "", 1, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunLocalityEmitsJSON(t *testing.T) {
	dir := t.TempDir()
	if err := run("locality", true, "EF,RC", 1, false, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_locality.json"))
	if err != nil {
		t.Fatal(err)
	}
	var recs []experiments.BenchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatal(err)
	}
	// 2 datasets × 2×2 ablation arms.
	if len(recs) != 8 {
		t.Fatalf("got %d records, want 8", len(recs))
	}
	for _, r := range recs {
		if r.Exp != "locality" || r.Engine != "parallelbitwise" ||
			r.Workers <= 0 || r.Colors <= 0 || r.WallNanos <= 0 || r.NsPerEdge <= 0 {
			t.Fatalf("implausible record: %+v", r)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nonsense", true, "", 1, false, ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run("fig14", true, "ZZ", 1, false, ""); err == nil {
		t.Fatal("empty dataset filter accepted")
	}
}
