package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run("fig14", true, "", 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithDatasetFilter(t *testing.T) {
	if err := run("table4", true, "EF,RC", 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run("fig14", true, "", 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nonsense", true, "", 1, false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run("fig14", true, "ZZ", 1, false); err == nil {
		t.Fatal("empty dataset filter accepted")
	}
}
