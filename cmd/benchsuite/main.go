// Command benchsuite regenerates the paper's evaluation: every table and
// figure of §5, printed as aligned text tables with the paper's reported
// values in the titles for comparison.
//
// Usage:
//
//	benchsuite                 # full scaled datasets, every experiment
//	benchsuite -exp fig12      # one experiment
//	benchsuite -small          # fast reduced datasets
//	benchsuite -datasets EF,GD # restrict datasets
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bitcolor/internal/experiments"
	"bitcolor/internal/gen"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: "+strings.Join(experiments.Names(), " | ")+" | all")
		small    = flag.Bool("small", false, "use the reduced test-size datasets")
		datasets = flag.String("datasets", "", "comma-separated dataset abbreviations (default: all ten)")
		seed     = flag.Int64("seed", 1, "generator seed")
		csv      = flag.Bool("csv", false, "emit tables as CSV")
		jsonDir  = flag.String("json", "", "directory for machine-readable BENCH_<exp>.json records")
	)
	flag.Parse()
	if err := run(*exp, *small, *datasets, *seed, *csv, *jsonDir); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
}

func run(exp string, small bool, datasets string, seed int64, csv bool, jsonDir string) error {
	ctx := experiments.NewContext(os.Stdout)
	if small {
		ctx = experiments.NewSmallContext(os.Stdout)
	}
	ctx.Seed = seed
	ctx.CSV = csv
	ctx.JSONDir = jsonDir
	if datasets != "" {
		keep := map[string]bool{}
		for _, a := range strings.Split(datasets, ",") {
			keep[strings.TrimSpace(strings.ToUpper(a))] = true
		}
		var filtered []gen.Dataset
		for _, d := range ctx.Datasets {
			if keep[d.Abbrev] {
				filtered = append(filtered, d)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("no datasets match %q", datasets)
		}
		ctx.Datasets = filtered
	}

	start := time.Now()
	defer func() {
		fmt.Printf("\ntotal suite time: %v\n", time.Since(start).Round(time.Millisecond))
	}()

	if exp == "all" {
		return experiments.RunAll(ctx)
	}
	runner, ok := experiments.RunnerRegistry()[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q (have: %s)", exp, strings.Join(experiments.Names(), ", "))
	}
	return runner(ctx)
}
