// Command benchsuite regenerates the paper's evaluation: every table and
// figure of §5, printed as aligned text tables with the paper's reported
// values in the titles for comparison.
//
// Usage:
//
//	benchsuite                 # full scaled datasets, every experiment
//	benchsuite -exp fig12      # one experiment
//	benchsuite -small          # fast reduced datasets
//	benchsuite -datasets EF,GD # restrict datasets
//	benchsuite -listen :9090   # live Prometheus /metrics while running
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bitcolor/internal/experiments"
	"bitcolor/internal/gen"
	"bitcolor/internal/obs"
)

// obsConfig carries the observability flags shared with cmd/bitcolor:
// a metrics/expvar endpoint, CPU+heap profile capture, and a Chrome
// trace of the whole suite's engine-run span tree.
type obsConfig struct {
	listen   string
	pprofDir string
	traceOut string
}

func (c obsConfig) observing() bool { return c.listen != "" || c.traceOut != "" }

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: "+strings.Join(experiments.Names(), " | ")+" | all")
		small    = flag.Bool("small", false, "use the reduced test-size datasets")
		datasets = flag.String("datasets", "", "comma-separated dataset abbreviations (default: all ten)")
		seed     = flag.Int64("seed", 1, "generator seed")
		csv      = flag.Bool("csv", false, "emit tables as CSV")
		jsonDir  = flag.String("json", "", "directory for machine-readable BENCH_<exp>.json records")
		oc       obsConfig
	)
	flag.StringVar(&oc.listen, "listen", "", "serve Prometheus /metrics and expvar /debug/vars on this address (e.g. :9090) while the suite runs")
	flag.StringVar(&oc.pprofDir, "pprof", "", "write cpu.pprof and heap.pprof for the suite into this directory, and mount /debug/pprof on -listen")
	flag.StringVar(&oc.traceOut, "trace-out", "", "write the suite's engine-run span tree as Chrome trace_event JSON to this file")
	flag.Parse()
	if err := run(*exp, *small, *datasets, *seed, *csv, *jsonDir, oc); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
}

func run(exp string, small bool, datasets string, seed int64, csv bool, jsonDir string, oc obsConfig) error {
	ctx := experiments.NewContext(os.Stdout)
	if small {
		ctx = experiments.NewSmallContext(os.Stdout)
	}
	ctx.Seed = seed
	ctx.CSV = csv
	ctx.JSONDir = jsonDir
	if oc.observing() {
		o := obs.New()
		ctx.BaseCtx = obs.NewContext(context.Background(), o)
		if oc.listen != "" {
			srv, err := obs.Serve(oc.listen, o, oc.pprofDir != "")
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Printf("observability endpoint on http://%s (run %s)\n", srv.Addr, o.RunID())
		}
		if oc.traceOut != "" {
			defer func() {
				if err := o.WriteTraceFile(oc.traceOut); err != nil {
					fmt.Fprintln(os.Stderr, "benchsuite: trace:", err)
				} else {
					fmt.Printf("trace written to %s\n", oc.traceOut)
				}
			}()
		}
	}
	if oc.pprofDir != "" {
		if err := os.MkdirAll(oc.pprofDir, 0o755); err != nil {
			return err
		}
		stopCPU, err := obs.StartCPUProfile(filepath.Join(oc.pprofDir, "cpu.pprof"))
		if err != nil {
			return err
		}
		defer func() {
			if err := stopCPU(); err != nil {
				fmt.Fprintln(os.Stderr, "benchsuite: pprof:", err)
			}
			if err := obs.WriteHeapProfile(filepath.Join(oc.pprofDir, "heap.pprof")); err != nil {
				fmt.Fprintln(os.Stderr, "benchsuite: pprof:", err)
			}
		}()
	}
	if datasets != "" {
		keep := map[string]bool{}
		for _, a := range strings.Split(datasets, ",") {
			keep[strings.TrimSpace(strings.ToUpper(a))] = true
		}
		var filtered []gen.Dataset
		for _, d := range ctx.Datasets {
			if keep[d.Abbrev] {
				filtered = append(filtered, d)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("no datasets match %q", datasets)
		}
		ctx.Datasets = filtered
	}

	start := time.Now()
	defer func() {
		fmt.Printf("\ntotal suite time: %v\n", time.Since(start).Round(time.Millisecond))
	}()

	if exp == "all" {
		return experiments.RunAll(ctx)
	}
	runner, ok := experiments.RunnerRegistry()[exp]
	if !ok {
		var sb strings.Builder
		fmt.Fprintf(&sb, "unknown experiment %q; available experiments:\n", exp)
		desc := experiments.Descriptions()
		names := experiments.Names()
		width := 0
		for _, n := range names {
			if len(n) > width {
				width = len(n)
			}
		}
		for _, n := range names {
			fmt.Fprintf(&sb, "  %-*s  %s\n", width, n, desc[n])
		}
		fmt.Fprintf(&sb, "  %-*s  %s", width, "all", "every experiment, in paper order")
		return fmt.Errorf("%s", sb.String())
	}
	return runner(ctx)
}
