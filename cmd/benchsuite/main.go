// Command benchsuite regenerates the paper's evaluation: every table and
// figure of §5, printed as aligned text tables with the paper's reported
// values in the titles for comparison.
//
// Usage:
//
//	benchsuite                 # full scaled datasets, every experiment
//	benchsuite -exp fig12      # one experiment
//	benchsuite -small          # fast reduced datasets
//	benchsuite -datasets EF,GD # restrict datasets
//	benchsuite -listen :9090   # live Prometheus /metrics while running
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bitcolor/internal/experiments"
	"bitcolor/internal/gen"
	"bitcolor/internal/obs"
)

// obsConfig carries the observability flags shared with cmd/bitcolor:
// a metrics/expvar endpoint, CPU+heap profile capture, a Chrome trace
// of the whole suite's engine-run span tree, a structured run log, and
// the slow-run watchdog knobs.
type obsConfig struct {
	listen   string
	pprofDir string
	traceOut string
	runlog   string

	wdInterval     time.Duration
	wdDeadlineFrac float64
	wdStall        time.Duration
}

func (c obsConfig) observing() bool {
	return c.listen != "" || c.traceOut != "" || c.runlog != ""
}

func (c obsConfig) watchdogOn() bool { return c.wdDeadlineFrac > 0 || c.wdStall > 0 }

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: "+strings.Join(experiments.Names(), " | ")+" | all")
		small    = flag.Bool("small", false, "use the reduced test-size datasets")
		datasets = flag.String("datasets", "", "comma-separated dataset abbreviations (default: all ten)")
		seed     = flag.Int64("seed", 1, "generator seed")
		csv      = flag.Bool("csv", false, "emit tables as CSV")
		jsonDir  = flag.String("json", "", "directory for machine-readable BENCH_<exp>.json records")
		oc       obsConfig
	)
	flag.StringVar(&oc.listen, "listen", "", "serve Prometheus /metrics and expvar /debug/vars on this address (e.g. :9090) while the suite runs")
	flag.StringVar(&oc.pprofDir, "pprof", "", "write cpu.pprof and heap.pprof for the suite into this directory, and mount /debug/pprof on -listen")
	flag.StringVar(&oc.traceOut, "trace-out", "", "write the suite's engine-run span tree as Chrome trace_event JSON to this file")
	flag.StringVar(&oc.runlog, "runlog", "", "append the suite's structured JSON log records (run_id-stamped slog) to this file (\"-\" = stderr)")
	flag.DurationVar(&oc.wdInterval, "watchdog-interval", 500*time.Millisecond, "slow-run watchdog scan interval (active when -watchdog-deadline-frac or -watchdog-stall is set)")
	flag.Float64Var(&oc.wdDeadlineFrac, "watchdog-deadline-frac", 0, "warn through the run log when an engine run has consumed this fraction of its deadline budget (0 = off)")
	flag.DurationVar(&oc.wdStall, "watchdog-stall", 0, "warn through the run log when an engine run's vertex progress stalls for this long (0 = off)")
	flag.Parse()
	if err := run(*exp, *small, *datasets, *seed, *csv, *jsonDir, oc); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
}

func run(exp string, small bool, datasets string, seed int64, csv bool, jsonDir string, oc obsConfig) error {
	ctx := experiments.NewContext(os.Stdout)
	if small {
		ctx = experiments.NewSmallContext(os.Stdout)
	}
	ctx.Seed = seed
	ctx.CSV = csv
	ctx.JSONDir = jsonDir
	if oc.observing() {
		var oopts []obs.Option
		if oc.runlog != "" {
			w, closeLog, err := openRunLog(oc.runlog)
			if err != nil {
				return err
			}
			defer closeLog()
			oopts = append(oopts, obs.WithLogHandler(slog.NewJSONHandler(w, nil)))
		}
		o := obs.New(oopts...)
		ctx.BaseCtx = obs.NewContext(context.Background(), o)
		if oc.listen != "" {
			srv, err := obs.Serve(oc.listen, o, oc.pprofDir != "")
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Printf("observability endpoint on http://%s (run %s)\n", srv.Addr, o.RunID())
		}
		if oc.traceOut != "" {
			defer func() {
				if err := o.WriteTraceFile(oc.traceOut); err != nil {
					fmt.Fprintln(os.Stderr, "benchsuite: trace:", err)
				} else {
					fmt.Printf("trace written to %s\n", oc.traceOut)
				}
			}()
		}
	}
	if oc.watchdogOn() {
		stopWD := obs.Runs().StartWatchdog(obs.WatchdogConfig{
			Interval:         oc.wdInterval,
			DeadlineFraction: oc.wdDeadlineFrac,
			Stall:            oc.wdStall,
		})
		defer stopWD()
	}
	if oc.pprofDir != "" {
		if err := os.MkdirAll(oc.pprofDir, 0o755); err != nil {
			return err
		}
		stopCPU, err := obs.StartCPUProfile(filepath.Join(oc.pprofDir, "cpu.pprof"))
		if err != nil {
			return err
		}
		defer func() {
			if err := stopCPU(); err != nil {
				fmt.Fprintln(os.Stderr, "benchsuite: pprof:", err)
			}
			if err := obs.WriteHeapProfile(filepath.Join(oc.pprofDir, "heap.pprof")); err != nil {
				fmt.Fprintln(os.Stderr, "benchsuite: pprof:", err)
			}
		}()
	}
	if datasets != "" {
		keep := map[string]bool{}
		for _, a := range strings.Split(datasets, ",") {
			keep[strings.TrimSpace(strings.ToUpper(a))] = true
		}
		var filtered []gen.Dataset
		for _, d := range ctx.Datasets {
			if keep[d.Abbrev] {
				filtered = append(filtered, d)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("no datasets match %q", datasets)
		}
		ctx.Datasets = filtered
	}

	start := time.Now()
	defer func() {
		fmt.Printf("\ntotal suite time: %v\n", time.Since(start).Round(time.Millisecond))
	}()

	if exp == "all" {
		return experiments.RunAll(ctx)
	}
	return runOne(ctx, exp)
}

// openRunLog opens the structured-log sink: stderr for "-", otherwise
// the file in append mode so repeated suite invocations accumulate one
// run_id-separable log stream.
func openRunLog(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stderr, func() error { return nil }, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func runOne(ctx *experiments.Context, exp string) error {
	runner, ok := experiments.RunnerRegistry()[exp]
	if !ok {
		var sb strings.Builder
		fmt.Fprintf(&sb, "unknown experiment %q; available experiments:\n", exp)
		desc := experiments.Descriptions()
		names := experiments.Names()
		width := 0
		for _, n := range names {
			if len(n) > width {
				width = len(n)
			}
		}
		for _, n := range names {
			fmt.Fprintf(&sb, "  %-*s  %s\n", width, n, desc[n])
		}
		fmt.Fprintf(&sb, "  %-*s  %s", width, "all", "every experiment, in paper order")
		return fmt.Errorf("%s", sb.String())
	}
	return runner(ctx)
}
