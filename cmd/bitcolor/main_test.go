package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bitcolor"
)

// cfg builds a runConfig with the defaults the flag set would apply.
func cfg(mut func(*runConfig)) runConfig {
	c := runConfig{
		engine:    "bitwise",
		maxColors: 1024,
		seed:      1,
		workers:   4,
	}
	if mut != nil {
		mut(&c)
	}
	return c
}

func TestRunSoftwareEngine(t *testing.T) {
	c := cfg(func(c *runConfig) { c.dataset = "EF"; c.verbose = true })
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelEngines(t *testing.T) {
	c := cfg(func(c *runConfig) { c.dataset = "EF"; c.engine = "parallelbitwise" })
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	c = cfg(func(c *runConfig) { c.dataset = "EF"; c.engine = "speculative"; c.workers = 2 })
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
}

func TestRunAcceleratorEngine(t *testing.T) {
	c := cfg(func(c *runConfig) { c.dataset = "EF"; c.engine = "accelerator"; c.parallelism = 4 })
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	// Explicit cache size.
	c = cfg(func(c *runConfig) {
		c.dataset = "EF"
		c.engine = "accelerator"
		c.parallelism = 2
		c.cacheSize = 512
	})
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromFile(t *testing.T) {
	g, err := bitcolor.Generate("EF", 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bcsr")
	if err := bitcolor.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	c := cfg(func(c *runConfig) { c.input = path; c.engine = "greedy" })
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
}

// TestRunFromV2File colors straight off a mapped BCSR v2 input — the
// zero-copy load path — including with preprocessing disabled, where
// the engine reads the page cache directly.
func TestRunFromV2File(t *testing.T) {
	g, err := bitcolor.Generate("EF", 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bcsr")
	if err := bitcolor.SaveGraphV2(path, g); err != nil {
		t.Fatal(err)
	}
	c := cfg(func(c *runConfig) { c.input = path; c.verbose = true })
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	c = cfg(func(c *runConfig) { c.input = path; c.engine = "dct"; c.noPrep = true })
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoPreprocess(t *testing.T) {
	c := cfg(func(c *runConfig) { c.dataset = "EF"; c.engine = "dsatur"; c.noPrep = true })
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
}

func TestRunTimeline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tl.csv")
	c := cfg(func(c *runConfig) {
		c.dataset = "EF"
		c.engine = "accelerator"
		c.parallelism = 2
		c.cacheSize = 512
		c.timeline = path
	})
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "pe,vertex,start,end") {
		t.Fatal("timeline CSV malformed")
	}
}

func TestRunColorsOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "colors.txt")
	c := cfg(func(c *runConfig) { c.dataset = "EF"; c.colorsOut = path })
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "0 ") {
		t.Fatalf("colors file malformed: %q", string(data[:10]))
	}
}

// TestRunCancelPartialStats exercises the Ctrl-C / -timeout path: a
// pre-cancelled context must abort the software run with ctx.Err()
// instead of completing or crashing.
func TestRunCancelPartialStats(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := cfg(func(c *runConfig) { c.dataset = "EF"; c.engine = "parallelbitwise" })
	err := run(ctx, c)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRunTimeoutExpired drives the -timeout wiring end to end with a
// deadline that has already passed.
func TestRunTimeoutExpired(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	c := cfg(func(c *runConfig) { c.dataset = "EF"; c.engine = "greedy" })
	err := run(ctx, c)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	bg := context.Background()
	if err := run(bg, cfg(func(c *runConfig) { c.dataset = "" })); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := run(bg, cfg(func(c *runConfig) { c.input = "x.txt"; c.dataset = "EF" })); err == nil {
		t.Fatal("both input and dataset accepted")
	}
	if err := run(bg, cfg(func(c *runConfig) { c.dataset = "EF"; c.engine = "quantum" })); err == nil {
		t.Fatal("bogus engine accepted")
	}
	if err := run(bg, cfg(func(c *runConfig) { c.dataset = "XX" })); err == nil {
		t.Fatal("bogus dataset accepted")
	}
	if err := run(bg, cfg(func(c *runConfig) { c.input = "/nonexistent/file.txt" })); err == nil {
		t.Fatal("missing file accepted")
	}
}
