package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bitcolor"
)

func TestRunSoftwareEngine(t *testing.T) {
	if err := run("", "EF", "bitwise", 0, 4, 0, 1024, 1, false, true, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelEngines(t *testing.T) {
	if err := run("", "EF", "parallelbitwise", 0, 4, 0, 1024, 1, false, false, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run("", "EF", "speculative", 0, 2, 0, 1024, 1, false, false, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunAcceleratorEngine(t *testing.T) {
	if err := run("", "EF", "accelerator", 4, 4, 0, 1024, 1, false, false, "", ""); err != nil {
		t.Fatal(err)
	}
	// Explicit cache size.
	if err := run("", "EF", "accelerator", 2, 4, 512, 1024, 1, false, false, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromFile(t *testing.T) {
	g, err := bitcolor.Generate("EF", 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bcsr")
	if err := bitcolor.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", "greedy", 0, 4, 0, 1024, 1, false, false, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoPreprocess(t *testing.T) {
	if err := run("", "EF", "dsatur", 0, 4, 0, 1024, 1, true, false, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunTimeline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tl.csv")
	if err := run("", "EF", "accelerator", 2, 4, 512, 1024, 1, false, false, path, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "pe,vertex,start,end") {
		t.Fatal("timeline CSV malformed")
	}
}

func TestRunColorsOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "colors.txt")
	if err := run("", "EF", "bitwise", 0, 4, 0, 1024, 1, false, false, "", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "0 ") {
		t.Fatalf("colors file malformed: %q", string(data[:10]))
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "bitwise", 0, 4, 0, 1024, 1, false, false, "", ""); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := run("x.txt", "EF", "bitwise", 0, 4, 0, 1024, 1, false, false, "", ""); err == nil {
		t.Fatal("both input and dataset accepted")
	}
	if err := run("", "EF", "quantum", 0, 4, 0, 1024, 1, false, false, "", ""); err == nil {
		t.Fatal("bogus engine accepted")
	}
	if err := run("", "XX", "bitwise", 0, 4, 0, 1024, 1, false, false, "", ""); err == nil {
		t.Fatal("bogus dataset accepted")
	}
	if err := run("/nonexistent/file.txt", "", "bitwise", 0, 4, 0, 1024, 1, false, false, "", ""); err == nil {
		t.Fatal("missing file accepted")
	}
}
