// Command bitcolor colors a graph with a chosen engine: either a
// software algorithm or the simulated BitColor accelerator.
//
// Usage:
//
//	bitcolor -dataset GD -engine bitwise
//	bitcolor -input graph.txt -engine accelerator -parallelism 16
//	bitcolor -input graph.bcsr -engine dsatur -maxcolors 256
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"bitcolor"
)

func main() {
	var (
		input       = flag.String("input", "", "graph file (SNAP edge list, or .bcsr binary)")
		dataset     = flag.String("dataset", "", "synthetic dataset abbreviation (EF, GD, CD, CA, CL, RC, RP, RT, CO, CF)")
		engineName  = flag.String("engine", "bitwise", "engine: greedy | bitwise | dsatur | welshpowell | smallestlast | jonesplassmann | lubymis | rlf | speculative | parallelbitwise | accelerator")
		parallelism = flag.Int("parallelism", 16, "BWPE count for the accelerator engine (power of two)")
		workers     = flag.Int("workers", 0, "goroutines for the host-parallel engines (jonesplassmann, speculative, parallelbitwise; 0 = GOMAXPROCS)")
		cacheSize   = flag.Int("cache", 0, "HVC capacity in vertices (0 = auto-scale to ~1/8 of the graph; paper hardware: 512K)")
		maxColors   = flag.Int("maxcolors", bitcolor.MaxColorsDefault, "palette size")
		seed        = flag.Int64("seed", 1, "seed for generators and randomized engines")
		noPrep      = flag.Bool("no-preprocess", false, "skip DBG reordering + edge sorting")
		timeline    = flag.String("timeline", "", "write the accelerator's per-vertex task timeline to this CSV file")
		colorsOut   = flag.String("colors", "", "write the final coloring (vertex color per line) to this file")
		verbose     = flag.Bool("v", false, "print graph statistics")
	)
	flag.Parse()
	if err := run(*input, *dataset, *engineName, *parallelism, *workers, *cacheSize, *maxColors, *seed, *noPrep, *verbose, *timeline, *colorsOut); err != nil {
		fmt.Fprintln(os.Stderr, "bitcolor:", err)
		os.Exit(1)
	}
}

func run(input, dataset, engineName string, parallelism, workers, cacheSize, maxColors int, seed int64, noPrep, verbose bool, timeline, colorsOut string) error {
	var (
		g   *bitcolor.Graph
		err error
	)
	switch {
	case input != "" && dataset != "":
		return fmt.Errorf("give either -input or -dataset, not both")
	case input != "":
		g, err = bitcolor.LoadGraph(input)
	case dataset != "":
		g, err = bitcolor.Generate(dataset, seed)
	default:
		return fmt.Errorf("need -input FILE or -dataset ABBREV (one of %v)", bitcolor.Datasets())
	}
	if err != nil {
		return err
	}
	if verbose {
		fmt.Printf("graph: %v vertices, %v undirected edges, max degree %d\n",
			g.NumVertices(), g.UndirectedEdgeCount(), g.MaxDegree())
	}
	if !noPrep {
		g, err = bitcolor.Preprocess(g)
		if err != nil {
			return err
		}
	}

	start := time.Now()
	if engineName == "accelerator" {
		cfg := bitcolor.DefaultSimConfig(parallelism)
		cfg.MaxColors = maxColors
		cfg.RecordTimeline = timeline != ""
		switch {
		case cacheSize > 0:
			cfg.CacheVertices = cacheSize
		default:
			// Auto-scale: cover roughly the top eighth of vertices so
			// cache behaviour on scaled graphs matches the paper-scale
			// regime (512K of millions).
			auto := 64
			for auto < g.NumVertices()/8 {
				auto *= 2
			}
			cfg.CacheVertices = auto
		}
		res, err := bitcolor.Simulate(g, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("engine: accelerator (P=%d)\n", parallelism)
		fmt.Printf("colors used: %d\n", res.NumColors)
		fmt.Printf("simulated cycles: %d (%.3f ms at 200 MHz)\n", res.TotalCycles, res.Seconds*1e3)
		fmt.Printf("throughput: %.2f MCV/s (simulated), cache hit rate %.1f%%\n",
			res.MCVps, 100*res.CacheHitRate)
		fmt.Printf("DRAM: %d color reads (%d bursts), %d writes; conflicts deferred: %d\n",
			res.ColorDRAM.Reads, res.ColorDRAM.BurstReads, res.ColorDRAM.Writes,
			res.Aggregate.EdgesDeferred)
		if timeline != "" {
			f, err := os.Create(timeline)
			if err != nil {
				return err
			}
			if err := res.WriteTimelineCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("timeline written to %s (%d spans)\n", timeline, len(res.Timeline))
		}
		fmt.Printf("host wall time: %v\n", time.Since(start).Round(time.Millisecond))
		return writeColors(colorsOut, res.Colors)
	}

	eng, err := bitcolor.ParseEngine(engineName)
	if err != nil {
		return err
	}
	opts := bitcolor.ColorOptions{
		Engine: eng, MaxColors: maxColors, Seed: seed, Workers: workers,
	}
	var res *bitcolor.Result
	if eng == bitcolor.EngineSpeculative || eng == bitcolor.EngineParallelBitwise {
		var st bitcolor.ParallelStats
		res, st, err = bitcolor.ColorParallel(g, opts)
		if err != nil {
			return err
		}
		fmt.Printf("engine: %v (%d workers)\n", eng, st.Workers)
		fmt.Printf("colors used: %d\n", res.NumColors)
		fmt.Printf("rounds: %d, conflicts: %d found / %d repaired, worker imbalance: %.2fx\n",
			st.Rounds, st.ConflictsFound, st.ConflictsRepaired, st.Imbalance())
	} else {
		res, err = bitcolor.Color(g, opts)
		if err != nil {
			return err
		}
		fmt.Printf("engine: %v\n", eng)
		fmt.Printf("colors used: %d\n", res.NumColors)
	}
	fmt.Printf("wall time: %v\n", time.Since(start).Round(time.Microsecond))
	return writeColors(colorsOut, res.Colors)
}

// writeColors emits "vertex color" lines, 0-based vertices on the
// (possibly reordered) processing graph.
func writeColors(path string, colors []uint16) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for v, c := range colors {
		if _, err := fmt.Fprintf(w, "%d %d\n", v, c); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("coloring written to %s\n", path)
	return nil
}
