// Command bitcolor colors a graph with a chosen engine: either a
// software algorithm or the simulated BitColor accelerator.
//
// Usage:
//
//	bitcolor -dataset GD -engine bitwise
//	bitcolor -input graph.txt -engine accelerator -parallelism 16
//	bitcolor -input graph.bcsr -engine dsatur -maxcolors 256
//	bitcolor -dataset CL -engine parallelbitwise -timeout 30s
//	bitcolor -input graph.bcsr -engine sharded -outofcore -resident 2
//
// Software-engine runs are cancellable: Ctrl-C (SIGINT) or -timeout
// aborts the run promptly and prints the stages that completed instead
// of dying mid-flight.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"bitcolor"
	"bitcolor/internal/obs"
)

// startProfiles begins CPU profiling into dir/cpu.pprof and returns a
// stop func that also snapshots dir/heap.pprof. dir == "" makes both a
// no-op.
func startProfiles(dir string) (func() error, error) {
	if dir == "" {
		return func() error { return nil }, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	stopCPU, err := obs.StartCPUProfile(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	return func() error {
		if err := stopCPU(); err != nil {
			return err
		}
		return obs.WriteHeapProfile(filepath.Join(dir, "heap.pprof"))
	}, nil
}

// runConfig carries every CLI knob; flags map onto it 1:1.
type runConfig struct {
	input       string // graph file (SNAP edge list or .bcsr)
	dataset     string // synthetic dataset abbreviation
	engine      string // engine name (registry) or "accelerator"
	parallelism int    // accelerator BWPE count
	workers     int    // host-parallel goroutines
	shards      int    // sharded-engine partition count
	partition   string // sharded-engine partition strategy
	outOfCore   bool   // stream a BCSR v3 input shard by shard
	resident    int    // out-of-core resident-shard bound
	cacheSize   int    // HVC capacity override
	maxColors   int    // palette size
	seed        int64
	noPrep      bool // skip DBG reordering + edge sorting
	verbose     bool
	timeline    string // accelerator timeline CSV path
	colorsOut   string // coloring output path
	listen      string // observability HTTP endpoint address
	pprofDir    string // CPU/heap profile output directory
	traceOut    string // Chrome trace_event JSON output path
	runlog      string // structured JSON run-log path ("-" = stderr)

	wdInterval     time.Duration // watchdog scan interval
	wdDeadlineFrac float64       // watchdog deadline-budget fraction (0 = off)
	wdStall        time.Duration // watchdog progress-stall bound (0 = off)
}

// observing reports whether the run needs a live Observer.
func (c runConfig) observing() bool {
	return c.listen != "" || c.traceOut != "" || c.runlog != ""
}

// watchdogOn reports whether any watchdog condition is armed.
func (c runConfig) watchdogOn() bool { return c.wdDeadlineFrac > 0 || c.wdStall > 0 }

func main() {
	var cfg runConfig
	engineUsage := "engine: " + strings.Join(bitcolor.EngineNames(), " | ") + " | accelerator"
	flag.StringVar(&cfg.input, "input", "", "graph file (SNAP edge list, .col, or .bcsr binary v1/v2 — v2 files are mmap'd zero-copy)")
	flag.StringVar(&cfg.dataset, "dataset", "", "synthetic dataset abbreviation (EF, GD, CD, CA, CL, RC, RP, RT, CO, CF)")
	flag.StringVar(&cfg.engine, "engine", "bitwise", engineUsage)
	flag.IntVar(&cfg.parallelism, "parallelism", 16, "BWPE count for the accelerator engine (power of two)")
	flag.IntVar(&cfg.workers, "workers", 0, "goroutines for the host-parallel engines (jonesplassmann, speculative, parallelbitwise, dct, sharded; 0 = GOMAXPROCS)")
	flag.IntVar(&cfg.shards, "shards", 0, "partition count for the sharded engine (0/1 = single shard, plain DCT)")
	flag.StringVar(&cfg.partition, "partition", "", "partition strategy for the sharded engine: ranges (default) | labelprop")
	flag.BoolVar(&cfg.outOfCore, "outofcore", false, "stream a BCSR v3 -input shard by shard instead of materializing it (sharded engine only)")
	flag.IntVar(&cfg.resident, "resident", 0, "out-of-core resident-shard bound (0 = min(workers, shards))")
	flag.IntVar(&cfg.cacheSize, "cache", 0, "HVC capacity in vertices (0 = auto-scale to ~1/8 of the graph; paper hardware: 512K)")
	flag.IntVar(&cfg.maxColors, "maxcolors", bitcolor.MaxColorsDefault, "palette size")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for generators and randomized engines")
	flag.BoolVar(&cfg.noPrep, "no-preprocess", false, "skip DBG reordering + edge sorting")
	flag.StringVar(&cfg.timeline, "timeline", "", "write the accelerator's per-vertex task timeline to this CSV file")
	flag.StringVar(&cfg.colorsOut, "colors", "", "write the final coloring (vertex color per line) to this file")
	flag.BoolVar(&cfg.verbose, "v", false, "print graph statistics")
	flag.StringVar(&cfg.listen, "listen", "", "serve Prometheus /metrics and expvar /debug/vars on this address (e.g. :9090) for the duration of the run")
	flag.StringVar(&cfg.pprofDir, "pprof", "", "write cpu.pprof and heap.pprof for the run into this directory, and mount /debug/pprof on -listen")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write the run's span tree as Chrome trace_event JSON to this file (open in chrome://tracing or Perfetto)")
	flag.StringVar(&cfg.runlog, "runlog", "", "append the run's structured JSON log records (run_id-stamped slog) to this file (\"-\" = stderr)")
	flag.DurationVar(&cfg.wdInterval, "watchdog-interval", 500*time.Millisecond, "slow-run watchdog scan interval (active when -watchdog-deadline-frac or -watchdog-stall is set)")
	flag.Float64Var(&cfg.wdDeadlineFrac, "watchdog-deadline-frac", 0, "warn through the run log when the run has consumed this fraction of its -timeout budget (0 = off)")
	flag.DurationVar(&cfg.wdStall, "watchdog-stall", 0, "warn through the run log when the run's vertex progress stalls for this long (0 = off)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	flag.Parse()

	// Ctrl-C cancels the in-flight run; the software engines notice at
	// their next context checkpoint and the CLI reports partial progress.
	// A second Ctrl-C kills the process via the restored default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "bitcolor:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg runConfig) error {
	var o *bitcolor.Observer
	if cfg.observing() {
		var oopts []bitcolor.ObserverOption
		if cfg.runlog != "" {
			w, closeLog, err := openRunLog(cfg.runlog)
			if err != nil {
				return err
			}
			defer closeLog()
			oopts = append(oopts, bitcolor.WithLogHandler(slog.NewJSONHandler(w, nil)))
		}
		o = bitcolor.NewObserver(oopts...)
		ctx = bitcolor.WithObserver(ctx, o)
		if cfg.listen != "" {
			srv, err := bitcolor.ServeObserver(cfg.listen, o, cfg.pprofDir != "")
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Printf("observability endpoint on http://%s (run %s)\n", srv.Addr, o.RunID())
		}
		if cfg.traceOut != "" {
			finish := startTraceFlusher(ctx, o, cfg.traceOut)
			defer finish()
		}
	}
	if cfg.watchdogOn() {
		stopWD := bitcolor.StartRunWatchdog(bitcolor.RunWatchdogConfig{
			Interval:         cfg.wdInterval,
			DeadlineFraction: cfg.wdDeadlineFrac,
			Stall:            cfg.wdStall,
		})
		defer stopWD()
	}
	if cfg.outOfCore {
		return runOutOfCore(ctx, cfg)
	}
	var (
		g   *bitcolor.Graph
		err error
	)
	switch {
	case cfg.input != "" && cfg.dataset != "":
		return fmt.Errorf("give either -input or -dataset, not both")
	case cfg.input != "":
		// The handle stays open for the whole run: with -no-preprocess a
		// mapped BCSR v2 input is colored straight out of the page cache,
		// zero-copy.
		h, herr := bitcolor.OpenGraphFileContext(ctx, cfg.input)
		if herr != nil {
			return herr
		}
		defer h.Close()
		g = h.Graph()
		if cfg.verbose {
			fmt.Printf("input format: %s (mapped: %v)\n", h.Format(), h.Mapped())
		}
	case cfg.dataset != "":
		g, err = bitcolor.Generate(cfg.dataset, cfg.seed)
	default:
		return fmt.Errorf("need -input FILE or -dataset ABBREV (one of %v)", bitcolor.Datasets())
	}
	if err != nil {
		return err
	}
	if cfg.verbose {
		fmt.Printf("graph: %v vertices, %v undirected edges, max degree %d\n",
			g.NumVertices(), g.UndirectedEdgeCount(), g.MaxDegree())
	}

	if cfg.engine == "accelerator" {
		return runAccelerator(g, cfg)
	}

	eng, err := bitcolor.ParseEngine(cfg.engine)
	if err != nil {
		return err
	}
	info, _ := eng.Info()
	pipe := bitcolor.Pipeline{
		SkipPreprocess: cfg.noPrep,
		Color: bitcolor.ColorOptions{
			Engine: eng, MaxColors: cfg.maxColors, Seed: cfg.seed, Workers: cfg.workers,
			ShardCount: cfg.shards, PartitionStrategy: cfg.partition,
		},
	}
	stopProf, err := startProfiles(cfg.pprofDir)
	if err != nil {
		return err
	}
	start := time.Now()
	pr, err := pipe.Run(ctx, g)
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		if pr != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			printPartial(pr, err, time.Since(start))
		}
		return err
	}
	if info.Parallel {
		fmt.Printf("engine: %v (%d workers)\n", eng, pr.Stats.Workers)
	} else {
		fmt.Printf("engine: %v\n", eng)
	}
	fmt.Printf("colors used: %d\n", pr.Result.NumColors)
	if pr.Stats.Rounds > 0 {
		fmt.Printf("rounds: %d, conflicts: %d found / %d repaired, worker imbalance: %.2fx\n",
			pr.Stats.Rounds, pr.Stats.ConflictsFound, pr.Stats.ConflictsRepaired, pr.Stats.Imbalance())
	}
	if pr.Stats.Deferred > 0 || pr.Stats.SpinWaits > 0 {
		fmt.Printf("deferred: %d parked / %d replays, ring peak: %d/%d, spin waits: %d\n",
			pr.Stats.Deferred, pr.Stats.DeferRetries, pr.Stats.ForwardRingPeak,
			bitcolor.ForwardRingCap, pr.Stats.SpinWaits)
	}
	if pr.Stats.Shards > 0 {
		fmt.Printf("shards: %d, cut edges: %d, boundary vertices: %d, frontier: %d, cross-shard defers: %d\n",
			pr.Stats.Shards, pr.Stats.CutEdges, pr.Stats.BoundaryVertices,
			pr.Stats.FrontierVertices, pr.Stats.CrossShardDefers)
	}
	for _, s := range pr.Stages {
		fmt.Printf("  %-10s %v\n", s.Name, s.Duration.Round(time.Microsecond))
	}
	fmt.Printf("wall time: %v\n", time.Since(start).Round(time.Microsecond))
	return writeColors(cfg.colorsOut, pr.Result.Colors)
}

// runOutOfCore colors a shard-major BCSR v3 file with the streaming
// executor: shards are mapped and released one residency window at a
// time, so the whole adjacency never sits in memory at once. The graph
// is colored exactly as the preprocessed file laid it out — there is no
// in-memory preprocessing stage to skip or apply.
func runOutOfCore(ctx context.Context, cfg runConfig) error {
	if cfg.input == "" {
		return fmt.Errorf("-outofcore needs -input FILE (a BCSR v3 file from `preprocess -obin-v3`)")
	}
	if cfg.dataset != "" {
		return fmt.Errorf("-outofcore streams from disk; give -input, not -dataset")
	}
	eng, err := bitcolor.ParseEngine(cfg.engine)
	if err != nil {
		return err
	}
	h, err := bitcolor.OpenGraphFileOutOfCoreContext(ctx, cfg.input)
	if err != nil {
		return err
	}
	defer h.Close()
	if cfg.verbose {
		fmt.Printf("input format: %s (%d shards, %s partition)\n",
			h.Format(), h.NumShards(), h.PartitionStrategy())
	}
	stopProf, err := startProfiles(cfg.pprofDir)
	if err != nil {
		return err
	}
	start := time.Now()
	res, st, err := bitcolor.ColorHandleContext(ctx, h, bitcolor.ColorOptions{
		Engine: eng, MaxColors: cfg.maxColors, Seed: cfg.seed, Workers: cfg.workers,
		ShardCount: cfg.shards, PartitionStrategy: cfg.partition,
		OutOfCore: true, MaxResidentShards: cfg.resident,
	})
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	fmt.Printf("engine: %v (%d workers, out-of-core)\n", eng, st.Workers)
	fmt.Printf("colors used: %d\n", res.NumColors)
	fmt.Printf("shards: %d, cut edges: %d, boundary vertices: %d, frontier: %d, cross-shard defers: %d\n",
		st.Shards, st.CutEdges, st.BoundaryVertices, st.FrontierVertices, st.CrossShardDefers)
	fmt.Printf("residency: %d shards mapped at once, peak mapped %.2f MiB\n",
		st.ResidentShards, float64(st.PeakMappedBytes)/(1<<20))
	fmt.Printf("wall time: %v\n", time.Since(start).Round(time.Microsecond))
	return writeColors(cfg.colorsOut, res.Colors)
}

// openRunLog opens the structured-log sink: stderr for "-", otherwise
// the file in append mode so repeated invocations accumulate one
// run_id-separable log stream.
func openRunLog(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stderr, func() error { return nil }, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// startTraceFlusher arranges for the Chrome trace to reach disk no
// matter how the run ends. The returned finish func (deferred by the
// caller) writes the complete trace on the way out; a background
// goroutine additionally flushes a partial trace the moment the context
// is cancelled — stamped with a cancelled=true attribute in the trace's
// otherData — so a run killed before its defers execute (a second
// Ctrl-C lands while the partial-progress report is printing) still
// leaves the stages that did run on disk. WriteTraceFile is atomic
// (temp file + rename), so the final complete write cleanly replaces
// the partial one and readers never observe a torn file.
func startTraceFlusher(ctx context.Context, o *bitcolor.Observer, path string) (finish func()) {
	runDone := make(chan struct{})
	flusherDone := make(chan struct{})
	go func() {
		defer close(flusherDone)
		select {
		case <-runDone:
		case <-ctx.Done():
			o.Annotate("cancelled", true)
			if err := o.WriteTraceFile(path); err != nil {
				fmt.Fprintln(os.Stderr, "bitcolor: trace:", err)
			}
		}
	}()
	return func() {
		close(runDone)
		<-flusherDone // serialize with any in-flight partial write
		if err := o.WriteTraceFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "bitcolor: trace:", err)
		} else {
			fmt.Printf("trace written to %s\n", path)
		}
	}
}

// printPartial reports how far a cancelled or deadlined run got.
func printPartial(pr *bitcolor.PipelineResult, cause error, elapsed time.Duration) {
	reason := "cancelled"
	if errors.Is(cause, context.DeadlineExceeded) {
		reason = "timed out"
	}
	fmt.Printf("%s after %v\n", reason, elapsed.Round(time.Microsecond))
	if len(pr.Stages) == 0 {
		fmt.Println("no stage completed")
	}
	for _, s := range pr.Stages {
		fmt.Printf("  completed %-10s %v\n", s.Name, s.Duration.Round(time.Microsecond))
	}
	if pr.Stats.Workers > 0 {
		fmt.Printf("  partial stats: %v\n", pr.Stats)
	}
}

// runAccelerator drives the discrete-event simulator (not cancellable:
// simulated time, not wall time, dominates and runs are short).
func runAccelerator(g *bitcolor.Graph, cfg runConfig) error {
	var err error
	if !cfg.noPrep {
		g, err = bitcolor.Preprocess(g)
		if err != nil {
			return err
		}
	}
	stopProf, err := startProfiles(cfg.pprofDir)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "bitcolor: pprof:", perr)
		}
	}()
	start := time.Now()
	simCfg := bitcolor.DefaultSimConfig(cfg.parallelism)
	simCfg.MaxColors = cfg.maxColors
	simCfg.RecordTimeline = cfg.timeline != ""
	switch {
	case cfg.cacheSize > 0:
		simCfg.CacheVertices = cfg.cacheSize
	default:
		// Auto-scale: cover roughly the top eighth of vertices so
		// cache behaviour on scaled graphs matches the paper-scale
		// regime (512K of millions).
		auto := 64
		for auto < g.NumVertices()/8 {
			auto *= 2
		}
		simCfg.CacheVertices = auto
	}
	res, err := bitcolor.Simulate(g, simCfg)
	if err != nil {
		return err
	}
	fmt.Printf("engine: accelerator (P=%d)\n", cfg.parallelism)
	fmt.Printf("colors used: %d\n", res.NumColors)
	fmt.Printf("simulated cycles: %d (%.3f ms at 200 MHz)\n", res.TotalCycles, res.Seconds*1e3)
	fmt.Printf("throughput: %.2f MCV/s (simulated), cache hit rate %.1f%%\n",
		res.MCVps, 100*res.CacheHitRate)
	fmt.Printf("DRAM: %d color reads (%d bursts), %d writes; conflicts deferred: %d\n",
		res.ColorDRAM.Reads, res.ColorDRAM.BurstReads, res.ColorDRAM.Writes,
		res.Aggregate.EdgesDeferred)
	if cfg.timeline != "" {
		f, err := os.Create(cfg.timeline)
		if err != nil {
			return err
		}
		if err := res.WriteTimelineCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("timeline written to %s (%d spans)\n", cfg.timeline, len(res.Timeline))
	}
	fmt.Printf("host wall time: %v\n", time.Since(start).Round(time.Millisecond))
	return writeColors(cfg.colorsOut, res.Colors)
}

// writeColors emits "vertex color" lines. Software engines write colors
// for the ORIGINAL vertex IDs (the pipeline undoes the preprocessing
// permutation); the accelerator writes colors on its reordered
// processing graph.
func writeColors(path string, colors []uint16) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for v, c := range colors {
		if _, err := fmt.Fprintf(w, "%d %d\n", v, c); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("coloring written to %s\n", path)
	return nil
}
