// Package bitops provides the bit-level primitives behind BitColor's
// bit-wise processing engines: a dynamic bit set used as the color state
// vector, the one-cycle first-free-color operation
// (^state) & (state + 1), and the Num2Bit / Bit2Num conversion tables that
// the hardware uses to move between 16-bit color numbers and one-hot color
// bit strings (paper §3.2.1, Fig 4).
package bitops

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// BitSet is a growable bit vector. The zero value is an empty set.
//
// In BitColor a BitSet models the color-state register of one bit-wise
// processing engine: bit i set means color i is already used by a colored
// neighbor of the vertex currently being processed.
type BitSet struct {
	words []uint64
}

// NewBitSet returns a BitSet with capacity for at least n bits, all zero.
func NewBitSet(n int) *BitSet {
	if n < 0 {
		n = 0
	}
	return &BitSet{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// grow ensures bit index i is addressable.
func (b *BitSet) grow(i int) {
	need := i/wordBits + 1
	if need <= len(b.words) {
		return
	}
	w := make([]uint64, need)
	copy(w, b.words)
	b.words = w
}

// Set sets bit i to 1.
func (b *BitSet) Set(i int) {
	if i < 0 {
		panic(fmt.Sprintf("bitops: Set negative index %d", i))
	}
	b.grow(i)
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0.
func (b *BitSet) Clear(i int) {
	if i < 0 || i/wordBits >= len(b.words) {
		return
	}
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is 1.
func (b *BitSet) Test(i int) bool {
	if i < 0 || i/wordBits >= len(b.words) {
		return false
	}
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Reset clears every bit while keeping capacity. This models the single-
// cycle register clear between vertices in the BWPE (as opposed to the
// O(colors) flag-array wipe of the basic algorithm).
func (b *BitSet) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// OrWith ors other into b, growing b as needed. This is the Stage-0
// Bit-OR accumulation: Color_state = a1 | a2 | ... | an.
func (b *BitSet) OrWith(other *BitSet) {
	if len(other.words) > len(b.words) {
		b.grow(len(other.words)*wordBits - 1)
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// OrBit sets bit i; it is OrWith with a one-hot operand and is the common
// fast path when the neighbor color arrives as a color number.
func (b *BitSet) OrBit(i int) { b.Set(i) }

// FirstZero returns the index of the lowest zero bit, i.e. the first free
// color under the greedy strategy. It is the software rendering of the
// paper's one-cycle Color_result = (~Color_state) & (Color_state + 1):
// per 64-bit word, ^w & (w+1) isolates the lowest zero bit.
func (b *BitSet) FirstZero() int {
	for i, w := range b.words {
		if w != ^uint64(0) {
			// ^w & (w+1) is one-hot at the lowest zero bit of w.
			isolated := ^w & (w + 1)
			return i*wordBits + bits.TrailingZeros64(isolated)
		}
	}
	return len(b.words) * wordBits
}

// OrColorNum sets the bit for the 1-based color number c; c == ColorNone
// (0, uncolored) contributes nothing. It is the gather hot path's inlined
// form of ColorCodec.Decompress: no table lookup and no growth check, so
// the receiver must be pre-sized (NewBitSet) to hold every color number
// the caller can observe — out-of-range numbers fail the slice bounds
// check rather than growing the set.
func (b *BitSet) OrColorNum(c uint32) {
	if c != 0 {
		b.words[(c-1)/wordBits] |= 1 << ((c - 1) % wordBits)
	}
}

// Count returns the number of set bits.
func (b *BitSet) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Len returns the current bit capacity.
func (b *BitSet) Len() int { return len(b.words) * wordBits }

// Clone returns a deep copy.
func (b *BitSet) Clone() *BitSet {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &BitSet{words: w}
}

// Equal reports whether two bit sets contain the same bits (capacity is
// ignored; trailing zero words compare equal).
func (b *BitSet) Equal(other *BitSet) bool {
	long, short := b.words, other.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if long[i] != w {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// String renders the set as the positions of set bits, e.g. "{0,3,17}".
func (b *BitSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for i, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !first {
				sb.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&sb, "%d", i*wordBits+bit)
			w &= w - 1
		}
	}
	sb.WriteByte('}')
	return sb.String()
}

// FirstFree64 is the raw single-word form of the paper's Stage-1 operation
// for color states that fit in 64 bits: it returns the one-hot isolation of
// the lowest zero bit, exactly (~state) & (state + 1).
func FirstFree64(state uint64) uint64 { return ^state & (state + 1) }

// FirstFreeIndex64 returns the index of the lowest zero bit of state
// (64 if state is all ones).
func FirstFreeIndex64(state uint64) int {
	return bits.TrailingZeros64(FirstFree64(state))
}
