package bitops

import (
	"fmt"
	"math/bits"
)

// The paper stores vertex colors in memory as 16-bit color *numbers*
// (only 10 bits used for the maximum of 1024 colors) and processes them in
// the BWPE as one-hot color *bit strings*. Two converters bridge the
// representations:
//
//   - Num2Bit (decompression): a 1024-entry BRAM look-up table mapping a
//     color number to its one-hot bit string (Table 1). One cycle.
//   - Bit2Num (compression): a logarithm; the paper replaces the
//     too-large LUT / slow loop with three cascaded multiplexer stages
//     exploiting that exactly one bit is set (Fig 4). Three cycles.
//
// ColorCodec models both, including the cycle costs, so the simulator can
// charge the same latencies as the hardware.

// Codec cycle costs from the paper (§3.2.1 and §4.2).
const (
	// DecompressCycles is the Num2Bit BRAM lookup latency.
	DecompressCycles = 1
	// CompressCycles is the latency of the three cascaded multiplexers in
	// the Bit Color Compression scheme (Fig 4).
	CompressCycles = 3
)

// ColorNone is the color number of an uncolored vertex. The paper encodes
// "uncolored" as bit string 0 (e.g. vertex 5 contributes 4'b0000 in Fig 1),
// so color numbers are 1-based: number c corresponds to one-hot bit c-1.
const ColorNone = 0

// ColorCodec converts between 16-bit color numbers and one-hot bit strings
// for up to MaxColors colors. It is the software model of the Num2Bit BRAM
// table plus the cascaded-mux compressor.
type ColorCodec struct {
	maxColors int
	// num2bit[c] is the one-hot word-index/bit pair for color number c.
	// We precompute it to mirror the BRAM LUT (index 0 = uncolored = all
	// zeros).
	num2bit []onehot
}

type onehot struct {
	word int
	mask uint64
}

// NewColorCodec builds a codec for color numbers 1..maxColors.
func NewColorCodec(maxColors int) *ColorCodec {
	if maxColors <= 0 {
		panic(fmt.Sprintf("bitops: NewColorCodec maxColors %d <= 0", maxColors))
	}
	c := &ColorCodec{
		maxColors: maxColors,
		num2bit:   make([]onehot, maxColors+1),
	}
	for n := 1; n <= maxColors; n++ {
		bit := n - 1
		c.num2bit[n] = onehot{word: bit / wordBits, mask: 1 << (uint(bit) % wordBits)}
	}
	return c
}

// MaxColors returns the number of distinct colors the codec supports.
func (c *ColorCodec) MaxColors() int { return c.maxColors }

// Decompress ors the one-hot bit string for color number num into state
// (the Stage-0 Bit-OR) and returns the cycle cost of the operation. An
// uncolored neighbor (num == ColorNone) contributes nothing but still costs
// the lookup cycle, as in hardware.
func (c *ColorCodec) Decompress(num uint16, state *BitSet) int {
	if int(num) > c.maxColors {
		panic(fmt.Sprintf("bitops: color number %d exceeds max %d", num, c.maxColors))
	}
	if num != ColorNone {
		oh := c.num2bit[num]
		state.grow(oh.word*wordBits + wordBits - 1)
		state.words[oh.word] |= oh.mask
	}
	return DecompressCycles
}

// OneHot returns the one-hot bit string of color number num as a fresh
// BitSet. Used by tests and by the data-conflict-table forwarding path,
// where results move between BWPEs in bit form.
func (c *ColorCodec) OneHot(num uint16) *BitSet {
	b := NewBitSet(c.maxColors)
	if num != ColorNone {
		c.Decompress(num, b)
	}
	return b
}

// Compress converts a one-hot color bit string back to its color number,
// modeling the three-stage cascaded multiplexer of Fig 4. It returns the
// color number and the cycle cost. It panics if the input is not one-hot:
// the hardware scheme relies on exactly one set bit.
func (c *ColorCodec) Compress(onehotState *BitSet) (uint16, int) {
	idx := -1
	for i, w := range onehotState.words {
		if w == 0 {
			continue
		}
		if idx != -1 || w&(w-1) != 0 {
			panic("bitops: Compress input is not one-hot")
		}
		idx = i*wordBits + bits.TrailingZeros64(w)
	}
	if idx == -1 {
		panic("bitops: Compress input is zero")
	}
	if idx >= c.maxColors {
		panic(fmt.Sprintf("bitops: one-hot bit %d exceeds max colors %d", idx, c.maxColors))
	}
	return uint16(idx + 1), CompressCycles
}

// FirstFree returns the color number of the first unused color in state and
// the cycle cost of Stage 1 under the bit-wise scheme: one cycle for the
// AND/NOT isolation plus the compression cost. It is the end-to-end model
// of Algorithm 2's Stage 1.
func (c *ColorCodec) FirstFree(state *BitSet) (uint16, int) {
	idx := state.FirstZero()
	if idx >= c.maxColors {
		return 0, 1 // palette exhausted; callers treat 0 as failure
	}
	return uint16(idx + 1), 1 + CompressCycles
}
