package bitops

import (
	"testing"
	"testing/quick"
)

func TestCascadeMatchesFunctionalCompress(t *testing.T) {
	for _, width := range []int{8, 64, 256, 1024} {
		cas := NewCascadedCompressor(width)
		codec := NewColorCodec(width)
		for num := uint16(1); int(num) <= width; num++ {
			oh := codec.OneHot(num)
			got, cycles := cas.Compress(oh)
			if got != num {
				t.Fatalf("width %d: cascade(%d) = %d", width, num, got)
			}
			if cycles != CompressCycles {
				t.Fatalf("cycles = %d", cycles)
			}
		}
	}
}

func TestCascadeStageBitsSumToLog(t *testing.T) {
	cases := map[int][3]int{
		1024: {4, 3, 3}, // 10 bits: the paper's 1024-color configuration
		64:   {2, 2, 2},
		256:  {3, 3, 2},
	}
	for width, want := range cases {
		c := NewCascadedCompressor(width)
		if c.StageBits() != want {
			t.Errorf("width %d: stage bits %v, want %v", width, c.StageBits(), want)
		}
	}
}

func TestCascadeMuxCount(t *testing.T) {
	// 1024 bits, stages 16/8/8: (16-1)*64 + (8-1)*8 + (8-1)*1 = 1023
	// 2:1-mux equivalents — exactly width-1, the information-theoretic
	// floor for a full selection tree.
	c := NewCascadedCompressor(1024)
	if got := c.MuxCount(); got != 1023 {
		t.Fatalf("mux count = %d, want 1023", got)
	}
}

func TestCascadeRejectsBadInput(t *testing.T) {
	c := NewCascadedCompressor(64)
	for name, build := range map[string]func() *BitSet{
		"zero":    func() *BitSet { return NewBitSet(64) },
		"two":     func() *BitSet { b := NewBitSet(64); b.Set(1); b.Set(5); return b },
		"outside": func() *BitSet { b := NewBitSet(128); b.Set(100); return b },
	} {
		b := build()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s input did not panic", name)
				}
			}()
			c.Compress(b)
		}()
	}
}

func TestCascadeRejectsBadWidth(t *testing.T) {
	for _, w := range []int{0, 7, 100, 1 << 20} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d accepted", w)
				}
			}()
			NewCascadedCompressor(w)
		}()
	}
}

// Property: cascade and codec agree for random one-hot positions at the
// paper's width.
func TestCascadeAgreesWithCodecProperty(t *testing.T) {
	cas := NewCascadedCompressor(1024)
	codec := NewColorCodec(1024)
	f := func(raw uint16) bool {
		num := raw%1024 + 1
		oh := codec.OneHot(num)
		a, _ := cas.Compress(oh)
		b, _ := codec.Compress(oh)
		return a == num && b == num
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCascadeCompress(b *testing.B) {
	cas := NewCascadedCompressor(1024)
	codec := NewColorCodec(1024)
	oh := codec.OneHot(777)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got, _ := cas.Compress(oh); got != 777 {
			b.Fatal("wrong")
		}
	}
}
