package bitops

import (
	"fmt"
	"math/bits"
)

// CascadedCompressor is the structural model of the paper's Bit Color
// Compression Scheme (Fig 4): a one-hot color bit string is compressed
// to its color number by three cascaded multiplexer stages instead of a
// logarithm LUT. Each stage selects the non-zero group among its inputs
// and emits the group index bits; the concatenated indices form the
// color number.
//
// For the paper's 1024-bit strings the stages split as
// 1024 → 8×128 → 128 → 8×16 → 16 → 16×1, producing 3 + 3 + 4 = 10 index
// bits in three pipeline cycles. The functional Compress in ColorCodec
// is the behavioural shortcut; this type exists to validate the
// hardware scheme and to account its exact structure (mux counts for
// the resource model).
type CascadedCompressor struct {
	width int // total bits, a power of two >= 64
	// stage group widths: stage1 selects among width/128 groups of 128
	// (generalized below), etc.
	groups [3]int
}

// NewCascadedCompressor builds a compressor for one-hot strings of the
// given width. Width must be a power of two between 8 and 65536.
func NewCascadedCompressor(width int) *CascadedCompressor {
	if width < 8 || width > 65536 || bits.OnesCount(uint(width)) != 1 {
		panic(fmt.Sprintf("bitops: cascade width %d must be a power of two in [8,65536]", width))
	}
	c := &CascadedCompressor{width: width}
	// Split the log2(width) index bits into three near-equal fields,
	// matching Fig 4's three mux stages.
	total := bits.Len(uint(width)) - 1 // log2(width)
	base := total / 3
	rem := total % 3
	for i := 0; i < 3; i++ {
		c.groups[i] = base
		if i < rem {
			c.groups[i]++
		}
	}
	return c
}

// StageBits returns the index bits produced by each of the three stages.
func (c *CascadedCompressor) StageBits() [3]int { return c.groups }

// MuxCount returns the number of 2:1-equivalent multiplexers the cascade
// needs, for the resource model: each stage selecting among 2^k groups of
// w bits costs (2^k - 1) * w two-input muxes.
func (c *CascadedCompressor) MuxCount() int64 {
	var total int64
	w := c.width
	for _, k := range c.groups {
		groupCount := 1 << uint(k)
		groupWidth := w / groupCount
		total += int64(groupCount-1) * int64(groupWidth)
		w = groupWidth
	}
	return total
}

// Compress converts a one-hot bit string to its color number by walking
// the three stages exactly as the hardware does, returning the color
// number (1-based) and the stage cycle count (always CompressCycles).
// It panics on non-one-hot input like ColorCodec.Compress.
func (c *CascadedCompressor) Compress(state *BitSet) (uint16, int) {
	// Materialize the one-hot string into a local word view of exactly
	// `width` bits, verifying one-hotness on the way.
	idx := -1
	for i, w := range state.words {
		if w == 0 {
			continue
		}
		if idx != -1 || w&(w-1) != 0 {
			panic("bitops: cascade input is not one-hot")
		}
		idx = i*wordBits + bits.TrailingZeros64(w)
	}
	if idx == -1 {
		panic("bitops: cascade input is zero")
	}
	if idx >= c.width {
		panic(fmt.Sprintf("bitops: one-hot bit %d exceeds cascade width %d", idx, c.width))
	}
	// Stage walk: at each stage the remaining window is divided into
	// 2^k groups; the group holding the hot bit contributes its index
	// bits (MSB-first fields), and the window narrows to that group.
	number := 0
	lo, hi := 0, c.width
	for _, k := range c.groups {
		groupCount := 1 << uint(k)
		groupWidth := (hi - lo) / groupCount
		group := (idx - lo) / groupWidth
		number = number<<uint(k) | group
		lo += group * groupWidth
		hi = lo + groupWidth
	}
	if hi-lo != 1 || lo != idx {
		panic("bitops: cascade stage walk lost the hot bit")
	}
	return uint16(number + 1), CompressCycles
}
