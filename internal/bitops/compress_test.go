package bitops

import (
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	c := NewColorCodec(1024)
	for num := uint16(1); num <= 1024; num++ {
		oh := c.OneHot(num)
		if oh.Count() != 1 {
			t.Fatalf("OneHot(%d) has %d bits set", num, oh.Count())
		}
		if !oh.Test(int(num) - 1) {
			t.Fatalf("OneHot(%d) bit position wrong: %s", num, oh)
		}
		back, cycles := c.Compress(oh)
		if back != num {
			t.Fatalf("Compress(OneHot(%d)) = %d", num, back)
		}
		if cycles != CompressCycles {
			t.Fatalf("Compress cycles = %d, want %d", cycles, CompressCycles)
		}
	}
}

func TestDecompressUncolored(t *testing.T) {
	c := NewColorCodec(16)
	state := NewBitSet(16)
	cycles := c.Decompress(ColorNone, state)
	if state.Count() != 0 {
		t.Fatal("uncolored neighbor contributed bits")
	}
	if cycles != DecompressCycles {
		t.Fatalf("Decompress cycles = %d, want %d", cycles, DecompressCycles)
	}
}

func TestDecompressAccumulates(t *testing.T) {
	// Reproduces the paper's Fig 1 example: neighbors colored green(1),
	// blue(2), green(1), uncolored → state 0b0011 → first free = red(3).
	c := NewColorCodec(16)
	state := NewBitSet(16)
	for _, n := range []uint16{1, 2, 1, ColorNone} {
		c.Decompress(n, state)
	}
	if state.String() != "{0,1}" {
		t.Fatalf("state = %s, want {0,1}", state)
	}
	got, cycles := c.FirstFree(state)
	if got != 3 {
		t.Fatalf("FirstFree = %d, want 3 (red)", got)
	}
	if cycles != 1+CompressCycles {
		t.Fatalf("FirstFree cycles = %d, want %d", cycles, 1+CompressCycles)
	}
}

func TestFirstFreeEmptyState(t *testing.T) {
	c := NewColorCodec(8)
	got, _ := c.FirstFree(NewBitSet(8))
	if got != 1 {
		t.Fatalf("first color of isolated vertex = %d, want 1", got)
	}
}

func TestFirstFreePaletteExhausted(t *testing.T) {
	c := NewColorCodec(4)
	s := NewBitSet(4)
	for i := 0; i < 4; i++ {
		s.Set(i)
	}
	got, _ := c.FirstFree(s)
	if got != 0 {
		t.Fatalf("exhausted palette FirstFree = %d, want 0", got)
	}
}

func TestCompressRejectsNonOneHot(t *testing.T) {
	c := NewColorCodec(16)
	for _, build := range []func() *BitSet{
		func() *BitSet { return NewBitSet(16) },                                // zero
		func() *BitSet { b := NewBitSet(16); b.Set(0); b.Set(5); return b },    // two bits, one word
		func() *BitSet { b := NewBitSet(128); b.Set(0); b.Set(100); return b }, // two bits, two words
	} {
		b := build()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Compress(%s) did not panic", b)
				}
			}()
			c.Compress(b)
		}()
	}
}

func TestDecompressBeyondMaxPanics(t *testing.T) {
	c := NewColorCodec(8)
	defer func() {
		if recover() == nil {
			t.Fatal("Decompress beyond max did not panic")
		}
	}()
	c.Decompress(9, NewBitSet(8))
}

// Property: for any set of used color numbers, FirstFree returns the
// smallest positive number not in the set (or 0 when saturated).
func TestFirstFreeMatchesNaive(t *testing.T) {
	const maxColors = 64
	c := NewColorCodec(maxColors)
	f := func(used []uint8) bool {
		state := NewBitSet(maxColors)
		inUse := map[uint16]bool{}
		for _, u := range used {
			num := uint16(u%maxColors) + 1
			c.Decompress(num, state)
			inUse[num] = true
		}
		want := uint16(0)
		for n := uint16(1); n <= maxColors; n++ {
			if !inUse[n] {
				want = n
				break
			}
		}
		got, _ := c.FirstFree(state)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkDecompressFirstFree(b *testing.B) {
	c := NewColorCodec(1024)
	state := NewBitSet(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		state.Reset()
		for n := uint16(1); n <= 32; n++ {
			c.Decompress(n, state)
		}
		if got, _ := c.FirstFree(state); got != 33 {
			b.Fatal("wrong color")
		}
	}
}
