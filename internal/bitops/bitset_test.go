package bitops

import (
	"testing"
	"testing/quick"
)

func TestBitSetSetTestClear(t *testing.T) {
	b := NewBitSet(10)
	if b.Test(3) {
		t.Fatal("fresh bitset has bit 3 set")
	}
	b.Set(3)
	if !b.Test(3) {
		t.Fatal("bit 3 not set after Set")
	}
	b.Clear(3)
	if b.Test(3) {
		t.Fatal("bit 3 still set after Clear")
	}
}

func TestBitSetGrowsOnSet(t *testing.T) {
	b := NewBitSet(0)
	b.Set(1000)
	if !b.Test(1000) {
		t.Fatal("bit 1000 not set after growth")
	}
	if b.Test(999) || b.Test(1001) {
		t.Fatal("adjacent bits spuriously set")
	}
}

func TestBitSetTestOutOfRange(t *testing.T) {
	b := NewBitSet(8)
	if b.Test(-1) || b.Test(1<<20) {
		t.Fatal("out-of-range Test must report false")
	}
	b.Clear(1 << 20) // must not panic or grow
	if b.Len() > 64 {
		t.Fatal("Clear grew the set")
	}
}

func TestBitSetSetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(-1) did not panic")
		}
	}()
	NewBitSet(4).Set(-1)
}

func TestFirstZero(t *testing.T) {
	cases := []struct {
		set  []int
		want int
	}{
		{nil, 0},
		{[]int{0}, 1},
		{[]int{0, 1, 2}, 3},
		{[]int{1, 2, 3}, 0},
		{[]int{0, 1, 3}, 2},
	}
	for _, c := range cases {
		b := NewBitSet(8)
		for _, i := range c.set {
			b.Set(i)
		}
		if got := b.FirstZero(); got != c.want {
			t.Errorf("set %v: FirstZero = %d, want %d", c.set, got, c.want)
		}
	}
}

func TestFirstZeroFullWordBoundary(t *testing.T) {
	b := NewBitSet(128)
	for i := 0; i < 64; i++ {
		b.Set(i)
	}
	if got := b.FirstZero(); got != 64 {
		t.Fatalf("FirstZero across word boundary = %d, want 64", got)
	}
	b.Set(64)
	b.Set(65)
	if got := b.FirstZero(); got != 66 {
		t.Fatalf("FirstZero = %d, want 66", got)
	}
}

func TestFirstZeroAllOnes(t *testing.T) {
	b := NewBitSet(64)
	for i := 0; i < 64; i++ {
		b.Set(i)
	}
	if got := b.FirstZero(); got != 64 {
		t.Fatalf("FirstZero on saturated set = %d, want capacity 64", got)
	}
}

func TestOrWith(t *testing.T) {
	a := NewBitSet(8)
	a.Set(1)
	b := NewBitSet(256)
	b.Set(200)
	a.OrWith(b)
	if !a.Test(1) || !a.Test(200) {
		t.Fatal("OrWith lost bits")
	}
	if !b.Test(200) || b.Test(1) {
		t.Fatal("OrWith mutated operand")
	}
}

func TestResetKeepsCapacity(t *testing.T) {
	b := NewBitSet(256)
	b.Set(200)
	n := b.Len()
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("Reset left bits set")
	}
	if b.Len() != n {
		t.Fatal("Reset changed capacity")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := NewBitSet(64)
	a.Set(5)
	c := a.Clone()
	c.Set(6)
	if a.Test(6) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Test(5) {
		t.Fatal("Clone lost bit 5")
	}
}

func TestEqualIgnoresCapacity(t *testing.T) {
	a := NewBitSet(8)
	b := NewBitSet(1024)
	a.Set(3)
	b.Set(3)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("equal sets with different capacity compare unequal")
	}
	b.Set(700)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("unequal sets compare equal")
	}
}

func TestString(t *testing.T) {
	b := NewBitSet(8)
	b.Set(0)
	b.Set(3)
	if got := b.String(); got != "{0,3}" {
		t.Fatalf("String = %q, want {0,3}", got)
	}
	if got := NewBitSet(8).String(); got != "{}" {
		t.Fatalf("empty String = %q, want {}", got)
	}
}

func TestFirstFree64(t *testing.T) {
	cases := []struct {
		state uint64
		want  int
	}{
		{0, 0},
		{0b1, 1},
		{0b11, 2},
		{0b1011, 2},
		{^uint64(0), 64},
		{^uint64(0) >> 1, 63},
	}
	for _, c := range cases {
		if got := FirstFreeIndex64(c.state); got != c.want {
			t.Errorf("FirstFreeIndex64(%b) = %d, want %d", c.state, got, c.want)
		}
		if c.want < 64 {
			if oh := FirstFree64(c.state); oh != 1<<uint(c.want) {
				t.Errorf("FirstFree64(%b) = %b, not one-hot at %d", c.state, oh, c.want)
			}
		}
	}
}

// Property: FirstZero agrees with a naive linear scan.
func TestFirstZeroMatchesNaive(t *testing.T) {
	f := func(words []uint64) bool {
		if len(words) > 8 {
			words = words[:8]
		}
		b := &BitSet{words: append([]uint64(nil), words...)}
		naive := 0
		for naive < len(words)*64 && b.Test(naive) {
			naive++
		}
		return b.FirstZero() == naive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Or of two sets contains exactly the union of their bits.
func TestOrWithIsUnion(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := NewBitSet(0), NewBitSet(0)
		member := map[int]bool{}
		for _, x := range xs {
			a.Set(int(x))
			member[int(x)] = true
		}
		for _, y := range ys {
			b.Set(int(y))
			member[int(y)] = true
		}
		a.OrWith(b)
		for i := range member {
			if !a.Test(i) {
				return false
			}
		}
		return a.Count() == len(member)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFirstZero(b *testing.B) {
	s := NewBitSet(1024)
	for i := 0; i < 777; i++ {
		s.Set(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.FirstZero() != 777 {
			b.Fatal("wrong answer")
		}
	}
}

func BenchmarkNaiveFirstZero(b *testing.B) {
	s := NewBitSet(1024)
	for i := 0; i < 777; i++ {
		s.Set(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j := 0
		for s.Test(j) {
			j++
		}
		if j != 777 {
			b.Fatal("wrong answer")
		}
	}
}
