// Package cpuref models the paper's CPU baseline: the basic greedy
// coloring algorithm (Algorithm 1) running on a Xeon-class core, with a
// per-stage cycle model that reproduces the Fig 3(a) execution-time
// breakdown and the CPU side of the Fig 13 comparison.
//
// The model charges each abstract operation of the three stages a cycle
// cost. Stage 0 color loads dominate through cache misses: the color
// array is accessed at random neighbor indices with almost no reuse
// (Fig 3(b)), so the effective load cost interpolates between an L2 hit
// and a DRAM miss with the working set size. Stage 1 is a flag scan plus
// a flag-array clear (vectorizable). Stage 2 is the color store plus the
// per-vertex loop bookkeeping.
package cpuref

import (
	"context"
	"fmt"
	"time"

	"bitcolor/internal/coloring"
	"bitcolor/internal/graph"
)

// CostModel holds the per-operation cycle charges.
type CostModel struct {
	// FrequencyGHz is the core clock (paper: Xeon Silver 4114 ~2.0 GHz).
	FrequencyGHz float64
	// LoadHitCycles / LoadMissCycles bound the Stage-0 color load cost;
	// the effective cost interpolates with the color-array hit ratio.
	LoadHitCycles, LoadMissCycles float64
	// CacheBytes is the effective last-level cache available to the color
	// array (Xeon 4114: 14 MB L3, shared).
	CacheBytes int64
	// ScanCycles is one flag probe in the Stage-1 scan.
	ScanCycles float64
	// ClearLanes is the SIMD width of the flag clear (flags cleared per
	// cycle).
	ClearLanes float64
	// StoreCycles is the Stage-2 color store.
	StoreCycles float64
	// VertexOverheadCycles is per-vertex loop bookkeeping (offset loads,
	// branches), charged to Stage 2 with the store, matching how the
	// paper's profile attributes the remainder of the loop.
	VertexOverheadCycles float64
	// WorkingSetVertices, when positive, overrides the vertex count used
	// for the cache-residency interpolation. The experiment harness sets
	// it to the *paper-scale* dataset size so per-operation costs match
	// the original SNAP graphs even though the operation counts come
	// from the scaled stand-ins.
	WorkingSetVertices int64
}

// DefaultCostModel approximates the paper's Xeon Silver 4114.
func DefaultCostModel() CostModel {
	return CostModel{
		FrequencyGHz:   2.0,
		LoadHitCycles:  10,
		LoadMissCycles: 250,
		// Effective LLC available to the color array: the 14MB L3 is
		// mostly thrashed by the streaming edge array, leaving a small
		// resident share for color data.
		CacheBytes: 2 << 20,
		ScanCycles: 1,
		// The baseline C code clears the flag array element by element
		// (Algorithm 1 lines 17-19) with modest pipelining.
		ClearLanes: 1.5,
		// Stage 2 carries the color store plus the per-vertex loop
		// bookkeeping: the two offset loads (often cache misses on large
		// graphs), loop-bound computation and branches.
		StoreCycles:          30,
		VertexOverheadCycles: 120,
	}
}

// StageTimes is the Fig 3(a) decomposition in model cycles.
type StageTimes struct {
	Stage0Cycles float64 // neighbor vertices traversal
	Stage1Cycles float64 // color traversal + flag clear
	Stage2Cycles float64 // color update + loop bookkeeping
}

// Total returns the summed cycles.
func (s StageTimes) Total() float64 { return s.Stage0Cycles + s.Stage1Cycles + s.Stage2Cycles }

// Shares returns each stage's fraction of the total.
func (s StageTimes) Shares() (f0, f1, f2 float64) {
	t := s.Total()
	if t == 0 {
		return 0, 0, 0
	}
	return s.Stage0Cycles / t, s.Stage1Cycles / t, s.Stage2Cycles / t
}

// Run executes the basic greedy algorithm, returning the coloring result,
// the modeled stage breakdown, and the modeled wall time.
func Run(g *graph.CSR, maxColors int, m CostModel) (*coloring.Result, StageTimes, time.Duration, error) {
	res, err := coloring.Greedy(context.Background(), g, maxColors)
	if err != nil {
		return nil, StageTimes{}, 0, err
	}
	st := Model(g, res.Stats, maxColors, m)
	return res, st, CyclesToDuration(st.Total(), m), nil
}

// Model converts the operation counts of a greedy run into modeled stage
// cycles.
func Model(g *graph.CSR, ops coloring.OpStats, maxColors int, m CostModel) StageTimes {
	vertices := int64(g.NumVertices())
	if m.WorkingSetVertices > 0 {
		vertices = m.WorkingSetVertices
	}
	loadCost := m.effectiveLoadCycles(vertices)
	return StageTimes{
		Stage0Cycles: float64(ops.Stage0Ops) * loadCost,
		Stage1Cycles: float64(ops.Stage1ScanOps)*m.ScanCycles +
			float64(ops.Stage1ClearOps)/m.ClearLanes,
		Stage2Cycles: float64(ops.Stage2Ops) * (m.StoreCycles + m.VertexOverheadCycles),
	}
}

// effectiveLoadCycles interpolates the Stage-0 load cost with the color
// array's cache residency: arrays that fit in LLC hit almost always;
// larger arrays miss in proportion, and the Fig 3(b) measurement says
// there is almost no reuse to soften the misses.
func (m CostModel) effectiveLoadCycles(vertices int64) float64 {
	arrayBytes := vertices * 2 // 16-bit colors
	hitRatio := 1.0
	if arrayBytes > m.CacheBytes {
		hitRatio = float64(m.CacheBytes) / float64(arrayBytes)
	}
	return hitRatio*m.LoadHitCycles + (1-hitRatio)*m.LoadMissCycles
}

// CyclesToDuration converts model cycles to wall time at the model
// frequency.
func CyclesToDuration(cycles float64, m CostModel) time.Duration {
	if m.FrequencyGHz <= 0 {
		return 0
	}
	return time.Duration(cycles / m.FrequencyGHz * float64(time.Nanosecond))
}

// Throughput returns million colored vertices per second for n vertices
// over d.
func Throughput(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds() / 1e6
}

// MeasureWall runs fn once and returns its wall-clock duration; used by
// the Table 2 preprocessing-vs-coloring measurement, which reports real
// (not modeled) single-thread times.
func MeasureWall(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

func (m CostModel) String() string {
	return fmt.Sprintf("cpu{%.1fGHz load %g..%g clear/%g store %g}",
		m.FrequencyGHz, m.LoadHitCycles, m.LoadMissCycles, m.ClearLanes, m.StoreCycles)
}
