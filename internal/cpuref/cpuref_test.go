package cpuref

import (
	"context"
	"testing"
	"time"

	"bitcolor/internal/coloring"
	"bitcolor/internal/gen"
	"bitcolor/internal/reorder"
)

func TestRunProducesValidColoringAndTimes(t *testing.T) {
	g, err := gen.RMAT(12, 8, 0.57, 0.19, 0.19, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := reorder.DBG(g)
	res, st, dur, err := Run(h, coloring.MaxColorsDefault, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.Verify(h, res.Colors); err != nil {
		t.Fatal(err)
	}
	if st.Total() <= 0 || dur <= 0 {
		t.Fatalf("times missing: %+v, %v", st, dur)
	}
}

// The Fig 3(a) shape: Stage 1 (color traversal) is the dominant stage on
// the basic algorithm, Stage 2 the smallest, and all three are
// substantial.
func TestStageBreakdownShape(t *testing.T) {
	g, err := gen.RMAT(13, 10, 0.57, 0.19, 0.19, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := reorder.DBG(g)
	m := DefaultCostModel()
	// Evaluate per-access costs at a paper-scale working set (a few
	// million vertices), as the experiment harness does.
	m.WorkingSetVertices = 4_000_000
	_, st, _, err := Run(h, coloring.MaxColorsDefault, m)
	if err != nil {
		t.Fatal(err)
	}
	f0, f1, f2 := st.Shares()
	if f0+f1+f2 < 0.999 || f0+f1+f2 > 1.001 {
		t.Fatalf("shares don't sum to 1: %f %f %f", f0, f1, f2)
	}
	if f2 >= f0 || f2 >= f1 {
		t.Fatalf("Stage 2 (%.2f) should be the smallest (f0=%.2f f1=%.2f)", f2, f0, f1)
	}
	if f0 < 0.1 || f1 < 0.1 {
		t.Fatalf("Stage 0/1 implausibly small: %.2f / %.2f", f0, f1)
	}
}

func TestSharesEmpty(t *testing.T) {
	var st StageTimes
	f0, f1, f2 := st.Shares()
	if f0 != 0 || f1 != 0 || f2 != 0 {
		t.Fatal("zero breakdown has nonzero shares")
	}
}

func TestEffectiveLoadCostGrowsWithWorkingSet(t *testing.T) {
	m := DefaultCostModel()
	small := m.effectiveLoadCycles(1000)          // fits LLC
	large := m.effectiveLoadCycles(1_000_000_000) // far exceeds LLC
	if small != m.LoadHitCycles {
		t.Fatalf("small working set cost %f, want pure hit %f", small, m.LoadHitCycles)
	}
	if large <= small || large > m.LoadMissCycles {
		t.Fatalf("large working set cost %f out of (hit, miss]", large)
	}
}

func TestCyclesToDuration(t *testing.T) {
	m := DefaultCostModel() // 2 GHz
	d := CyclesToDuration(2e9, m)
	if d < 999*time.Millisecond || d > 1001*time.Millisecond {
		t.Fatalf("2e9 cycles at 2GHz = %v, want ~1s", d)
	}
	if CyclesToDuration(100, CostModel{}) != 0 {
		t.Fatal("zero frequency should yield zero duration")
	}
}

func TestThroughput(t *testing.T) {
	if v := Throughput(1_000_000, time.Second); v != 1 {
		t.Fatalf("throughput = %f, want 1 MCV/s", v)
	}
	if Throughput(5, 0) != 0 {
		t.Fatal("zero duration throughput != 0")
	}
}

func TestMeasureWall(t *testing.T) {
	d, err := MeasureWall(func() error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil || d < time.Millisecond {
		t.Fatalf("measured %v, %v", d, err)
	}
}

func TestModelChargesAllStages(t *testing.T) {
	g, err := gen.BarabasiAlbert(2000, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coloring.Greedy(context.Background(), g, coloring.MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	st := Model(g, res.Stats, coloring.MaxColorsDefault, DefaultCostModel())
	if st.Stage0Cycles <= 0 || st.Stage1Cycles <= 0 || st.Stage2Cycles <= 0 {
		t.Fatalf("some stage uncharged: %+v", st)
	}
}
