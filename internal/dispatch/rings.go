package dispatch

// RingSet pools forwarding rings for the engines that run more worker
// goroutines than a flat per-worker array anticipates — the sharded
// engine drives shards × workers interior goroutines in phase one and
// reuses the first `workers` rings for the boundary frontier in phase
// two, all against one set. Rings are created lazily on first touch and
// retained across runs (the set lives in the coloring Scratch), so a
// steady-state serving loop builds each ring exactly once.
type RingSet struct {
	rings    []*ForwardRing
	capacity int
}

// NewRingSet builds an empty set whose rings bound at most capacity
// parked vertices each (<=0 selects the ForwardRing default).
func NewRingSet(capacity int) *RingSet {
	if capacity <= 0 {
		capacity = 64
	}
	return &RingSet{capacity: capacity}
}

// Cap returns the per-ring bound.
func (s *RingSet) Cap() int { return s.capacity }

// Len returns how many rings have been materialized.
func (s *RingSet) Len() int { return len(s.rings) }

// Ring returns ring i, creating it (and any gap below it) on first use.
func (s *RingSet) Ring(i int) *ForwardRing {
	for len(s.rings) <= i {
		s.rings = append(s.rings, NewForwardRing(s.capacity))
	}
	return s.rings[i]
}

// ResetAll empties every materialized ring and clears its peak so a
// pooled set can serve a new run.
func (s *RingSet) ResetAll() {
	for _, r := range s.rings {
		r.Reset()
	}
}

// Peak returns the maximum occupancy any ring reached since the last
// ResetAll.
func (s *RingSet) Peak() int {
	peak := 0
	for _, r := range s.rings {
		peak = max(peak, r.Peak())
	}
	return peak
}
