package dispatch

import (
	"math/rand"
	"testing"

	"bitcolor/internal/graph"
	"bitcolor/internal/reorder"
)

func testGraph(t testing.TB, n, m int, seed int64) *graph.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.VertexID(rng.Intn(n)), V: graph.VertexID(rng.Intn(n))}
	}
	g, err := graph.FromEdgeList(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := reorder.DBG(g)
	return h
}

func TestFIFOBasics(t *testing.T) {
	f := NewFIFO(2)
	if _, ok := f.Pop(); ok {
		t.Fatal("pop from empty FIFO succeeded")
	}
	for i := uint32(0); i < 10; i++ {
		f.Push(i) // forces growth past capacity 2
	}
	if f.Len() != 10 {
		t.Fatalf("len = %d", f.Len())
	}
	if v, ok := f.Peek(); !ok || v != 0 {
		t.Fatalf("peek = %d,%v", v, ok)
	}
	for i := uint32(0); i < 10; i++ {
		v, ok := f.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d,%v", i, v, ok)
		}
	}
}

func TestFIFOWrapAround(t *testing.T) {
	f := NewFIFO(4)
	for round := 0; round < 5; round++ {
		for i := uint32(0); i < 3; i++ {
			f.Push(i)
		}
		for i := uint32(0); i < 3; i++ {
			if v, _ := f.Pop(); v != i {
				t.Fatalf("round %d: pop = %d, want %d", round, v, i)
			}
		}
	}
}

func TestDispatcherHDVBinding(t *testing.T) {
	g := testGraph(t, 64, 200, 1)
	const p = 4
	d := New(g, p, 16) // vertices 0..15 are HDVs
	seen := 0
	for !d.Done() {
		task, ok := d.Next()
		if !ok {
			t.Fatal("Next failed before Done")
		}
		if task.HDV {
			if task.PE != int(task.Vertex)%p {
				t.Fatalf("HDV %d on PE %d, want %d (cache pattern)",
					task.Vertex, task.PE, int(task.Vertex)%p)
			}
			if task.Vertex >= 16 {
				t.Fatalf("vertex %d marked HDV with threshold 16", task.Vertex)
			}
		} else if task.Vertex < 16 {
			t.Fatalf("vertex %d marked LDV with threshold 16", task.Vertex)
		}
		d.Complete(task.PE, task.Start+10)
		seen++
	}
	if seen != 64 {
		t.Fatalf("dispatched %d tasks, want 64", seen)
	}
	st := d.Stats()
	if st.HDVTasks != 16 || st.LDVTasks != 48 {
		t.Fatalf("task split %d/%d, want 16/48", st.HDVTasks, st.LDVTasks)
	}
}

func TestDispatcherStrictOrder(t *testing.T) {
	g := testGraph(t, 100, 400, 2)
	d := New(g, 4, 32)
	var lastVertex int64 = -1
	var lastStart int64 = -1
	for !d.Done() {
		task, _ := d.Next()
		if int64(task.Vertex) != lastVertex+1 {
			t.Fatalf("vertex %d issued after %d; order not strict", task.Vertex, lastVertex)
		}
		if task.Start < lastStart {
			t.Fatalf("start %d before previous %d", task.Start, lastStart)
		}
		lastVertex, lastStart = int64(task.Vertex), task.Start
		d.Complete(task.PE, task.Start+int64(5+task.Vertex%7))
	}
}

func TestDispatcherLDVFirstComeFirstServe(t *testing.T) {
	g := testGraph(t, 40, 100, 3)
	const p = 4
	d := New(g, p, 0) // all LDVs
	// Give PE0 a long task, others short: subsequent work avoids PE0.
	t0, _ := d.Next()
	d.Complete(t0.PE, 1000)
	used := map[int]bool{}
	for i := 0; i < p-1; i++ {
		task, _ := d.Next()
		used[task.PE] = true
		d.Complete(task.PE, task.Start+1)
	}
	if used[t0.PE] {
		t.Fatal("busy engine chosen over idle engines")
	}
}

func TestDispatcherInFlight(t *testing.T) {
	g := testGraph(t, 20, 60, 4)
	const p = 2
	d := New(g, p, 0)
	t0, _ := d.Next()
	d.Complete(t0.PE, 100) // busy until 100
	t1, _ := d.Next()
	if t1.PE == t0.PE {
		t.Fatal("second task on busy engine")
	}
	peers := d.InFlight(t1.PE, t1.Start)
	if len(peers) != 1 || peers[0].Vertex != t0.Vertex || peers[0].PEID != t0.PE {
		t.Fatalf("InFlight = %+v, want vertex %d on PE %d", peers, t0.Vertex, t0.PE)
	}
	// After the peer's completion, nothing is in flight.
	if got := d.InFlight(t1.PE, 200); len(got) != 0 {
		t.Fatalf("InFlight at 200 = %+v, want empty", got)
	}
}

func TestDispatcherHDVStall(t *testing.T) {
	g := testGraph(t, 8, 20, 5)
	const p = 2
	d := New(g, p, 8) // all HDVs: strict binding
	t0, _ := d.Next() // vertex 0 → PE 0
	d.Complete(t0.PE, 500)
	t1, _ := d.Next() // vertex 1 → PE 1, starts immediately
	d.Complete(t1.PE, 10)
	t2, _ := d.Next() // vertex 2 → PE 0 again: must wait until 500
	if t2.PE != 0 || t2.Start < 500 {
		t.Fatalf("task %+v, want PE0 start >= 500", t2)
	}
	if d.Stats().StallCycles == 0 {
		t.Fatal("stall not recorded")
	}
}

func TestDispatcherCompleteOutOfRange(t *testing.T) {
	g := testGraph(t, 10, 20, 6)
	d := New(g, 2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("bad PE accepted")
		}
	}()
	d.Complete(7, 0)
}

func TestDispatcherEmptyGraph(t *testing.T) {
	g, _ := graph.FromEdgeList(0, nil)
	d := New(g, 2, 0)
	if !d.Done() {
		t.Fatal("empty graph not done")
	}
	if _, ok := d.Next(); ok {
		t.Fatal("Next on empty graph succeeded")
	}
}

func TestOffsetFetchAccounting(t *testing.T) {
	g := testGraph(t, 100, 300, 7)
	d := New(g, 2, 16)
	st := d.Stats()
	// 101 offsets at 8 per block → 13 blocks.
	if st.OffsetBlocks != 13 {
		t.Fatalf("offset blocks = %d, want 13", st.OffsetBlocks)
	}
	if st.OffsetFetchCycles <= st.OffsetBlocks {
		t.Fatalf("offset fetch cycles %d implausible", st.OffsetFetchCycles)
	}
	empty, _ := graph.FromEdgeList(0, nil)
	if New(empty, 2, 0).Stats().OffsetBlocks != 0 {
		t.Fatal("empty graph fetched offsets")
	}
}
