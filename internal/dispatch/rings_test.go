package dispatch

import "testing"

func TestRingSetLazyCreation(t *testing.T) {
	s := NewRingSet(8)
	if s.Len() != 0 {
		t.Fatalf("fresh set has %d rings", s.Len())
	}
	if s.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", s.Cap())
	}
	// Touching ring 5 materializes the gap below it.
	r5 := s.Ring(5)
	if s.Len() != 6 {
		t.Fatalf("after Ring(5): %d rings, want 6", s.Len())
	}
	if r5.Cap() != 8 {
		t.Fatalf("ring cap %d, want 8", r5.Cap())
	}
	// Repeat access returns the same ring, no growth.
	if s.Ring(5) != r5 || s.Len() != 6 {
		t.Fatal("Ring(5) not stable")
	}
	if s.Ring(2) != s.Ring(2) {
		t.Fatal("Ring(2) not stable")
	}
}

func TestRingSetDefaultCapacity(t *testing.T) {
	for _, c := range []int{0, -3} {
		s := NewRingSet(c)
		if s.Cap() != 64 {
			t.Fatalf("NewRingSet(%d).Cap() = %d, want the 64 default", c, s.Cap())
		}
	}
}

func TestRingSetResetAllAndPeak(t *testing.T) {
	s := NewRingSet(4)
	if s.Peak() != 0 {
		t.Fatalf("empty set peak %d", s.Peak())
	}
	// Fill ring 0 with two entries, ring 2 with three: peak is 3.
	for i := 0; i < 2; i++ {
		if !s.Ring(0).Push(Parked{Vertex: uint32(10 + i), Awaited: uint32(i)}) {
			t.Fatal("push rejected below capacity")
		}
	}
	for i := 0; i < 3; i++ {
		if !s.Ring(2).Push(Parked{Vertex: uint32(20 + i), Awaited: uint32(i)}) {
			t.Fatal("push rejected below capacity")
		}
	}
	if s.Peak() != 3 {
		t.Fatalf("peak %d, want 3", s.Peak())
	}
	if s.Ring(0).Len() != 2 || s.Ring(2).Len() != 3 {
		t.Fatalf("lens %d/%d, want 2/3", s.Ring(0).Len(), s.Ring(2).Len())
	}
	s.ResetAll()
	if s.Peak() != 0 {
		t.Fatalf("peak %d after ResetAll", s.Peak())
	}
	for i := 0; i < s.Len(); i++ {
		if s.Ring(i).Len() != 0 {
			t.Fatalf("ring %d holds %d entries after ResetAll", i, s.Ring(i).Len())
		}
	}
	// The set stays usable after a reset.
	if !s.Ring(1).Push(Parked{Vertex: 5, Awaited: 1}) {
		t.Fatal("push rejected after ResetAll")
	}
	if s.Peak() != 1 {
		t.Fatalf("peak %d after fresh push, want 1", s.Peak())
	}
}

func TestRingSetCapacityBound(t *testing.T) {
	s := NewRingSet(2)
	r := s.Ring(0)
	if !r.Push(Parked{Vertex: 3, Awaited: 1}) || !r.Push(Parked{Vertex: 4, Awaited: 2}) {
		t.Fatal("pushes below capacity rejected")
	}
	if r.Push(Parked{Vertex: 5, Awaited: 1}) {
		t.Fatal("push beyond capacity accepted")
	}
	if r.Peak() != 2 {
		t.Fatalf("peak %d, want the capacity 2", r.Peak())
	}
}
