package dispatch

import (
	"bitcolor/internal/engine"
	"bitcolor/internal/graph"
)

// RelaxedDispatcher implements the paper's Fig 10 semantics literally:
// an idle engine pops its own HDV sub-FIFO if non-empty, otherwise the
// shared LDV FIFO — with no global ordering constraint across engines.
//
// The relaxation can issue vertex v while a smaller-indexed neighbor u
// is still queued (not yet in flight): v then neither reads u's color
// (u is uncolored) nor defers on it (the conflict table only tracks
// in-flight vertices), and u later prunes v as a larger index — so the
// pair can end up with the same color. The strict-order Dispatcher
// avoids this by construction; RelaxedDispatcher exists to measure how
// often the hazard fires and what a repair pass costs (the `relaxed`
// experiment), documenting why this reproduction interprets the paper's
// index-ordered processing as a hard dispatch constraint.
type RelaxedDispatcher struct {
	g         *graph.CSR
	p         int
	threshold uint32

	hdvFIFOs []*FIFO
	ldvFIFO  *FIFO
	pst      []PEState

	issued      int
	lastIssue   int64
	issueCycles int64
	stats       Stats
}

// NewRelaxed builds the relaxed dispatcher.
func NewRelaxed(g *graph.CSR, p int, threshold uint32) *RelaxedDispatcher {
	d := &RelaxedDispatcher{
		g:           g,
		p:           p,
		threshold:   threshold,
		hdvFIFOs:    make([]*FIFO, p),
		ldvFIFO:     NewFIFO(1024),
		pst:         make([]PEState, p),
		issueCycles: IssueCycles(p),
	}
	for i := range d.hdvFIFOs {
		d.hdvFIFOs[i] = NewFIFO(256)
	}
	n := uint32(g.NumVertices())
	for v := uint32(0); v < n; v++ {
		if v < threshold {
			d.hdvFIFOs[int(v)%p].Push(v)
		} else {
			d.ldvFIFO.Push(v)
		}
	}
	return d
}

// Done reports whether every vertex has been issued.
func (d *RelaxedDispatcher) Done() bool { return d.issued >= d.g.NumVertices() }

// Next issues work to the earliest-free engine that has any: its own HDV
// sub-FIFO first, then the shared LDV FIFO. Engines whose sub-FIFO is
// drained and who lose the LDV race stay idle.
func (d *RelaxedDispatcher) Next() (Task, bool) {
	if d.Done() {
		return Task{}, false
	}
	// Candidate engines ordered by availability.
	type cand struct {
		pe     int
		freeAt int64
	}
	order := make([]cand, d.p)
	for i := range order {
		order[i] = cand{pe: i, freeAt: d.pst[i].FreeAt}
	}
	// Selection sort by freeAt (p <= 16).
	for i := 0; i < len(order); i++ {
		best := i
		for j := i + 1; j < len(order); j++ {
			if order[j].freeAt < order[best].freeAt {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	for _, c := range order {
		var (
			v   uint32
			hdv bool
			ok  bool
		)
		if v, ok = d.hdvFIFOs[c.pe].Pop(); ok {
			hdv = true
		} else if v, ok = d.ldvFIFO.Pop(); ok {
			hdv = false
		} else {
			continue
		}
		issueReady := d.lastIssue + d.issueCycles
		start := maxI64(c.freeAt, issueReady)
		if hdv {
			d.stats.HDVTasks++
		} else {
			d.stats.LDVTasks++
		}
		d.pst[c.pe] = PEState{Vertex: v, Running: true, FreeAt: start}
		d.lastIssue = start
		d.issued++
		return Task{PE: c.pe, Vertex: v, Start: start, HDV: hdv}, true
	}
	return Task{}, false
}

// Complete frees the engine's PST row.
func (d *RelaxedDispatcher) Complete(pe int, freeAt int64) {
	d.pst[pe].Running = false
	d.pst[pe].FreeAt = freeAt
}

// InFlight mirrors Dispatcher.InFlight: peers busy past cycle `at`,
// excluding self.
func (d *RelaxedDispatcher) InFlight(self int, at int64) []engine.PeerTask {
	var peers []engine.PeerTask
	for pe := range d.pst {
		if pe == self {
			continue
		}
		if d.pst[pe].FreeAt > at {
			peers = append(peers, engine.PeerTask{PEID: pe, Vertex: d.pst[pe].Vertex})
		}
	}
	return peers
}

// Stats returns dispatcher counters.
func (d *RelaxedDispatcher) Stats() Stats { return d.stats }
