package dispatch

import (
	"testing"

	"bitcolor/internal/graph"
)

func TestRelaxedPopsOwnFIFOFirst(t *testing.T) {
	g := testGraph(t, 16, 40, 11)
	const p = 2
	d := NewRelaxed(g, p, 16) // all HDVs: sub-FIFO per engine
	t0, ok := d.Next()
	if !ok {
		t.Fatal("no first task")
	}
	d.Complete(t0.PE, 1000) // engine busy for a long time
	// The other engine must keep draining its own sub-FIFO (same parity)
	// without waiting for the busy one.
	prev := uint32(0)
	for i := 0; i < 4; i++ {
		task, ok := d.Next()
		if !ok {
			t.Fatal("dispatch stalled")
		}
		if task.PE == t0.PE {
			t.Fatalf("task %d landed on the busy engine", task.Vertex)
		}
		if int(task.Vertex)%p != task.PE {
			t.Fatalf("HDV %d on engine %d breaks the stripe", task.Vertex, task.PE)
		}
		if i > 0 && task.Vertex <= prev {
			t.Fatal("sub-FIFO not FIFO")
		}
		prev = task.Vertex
		d.Complete(task.PE, task.Start+5)
	}
}

func TestRelaxedFallsBackToLDV(t *testing.T) {
	g := testGraph(t, 20, 50, 12)
	const p = 2
	d := NewRelaxed(g, p, 4) // vertices 0..3 HDV, rest LDV
	issued := map[uint32]bool{}
	for !d.Done() {
		task, ok := d.Next()
		if !ok {
			t.Fatal("stalled with work left")
		}
		if issued[task.Vertex] {
			t.Fatalf("vertex %d issued twice", task.Vertex)
		}
		issued[task.Vertex] = true
		if task.HDV && task.Vertex >= 4 {
			t.Fatalf("LDV %d marked HDV", task.Vertex)
		}
		d.Complete(task.PE, task.Start+3)
	}
	if len(issued) != 20 {
		t.Fatalf("issued %d of 20", len(issued))
	}
	st := d.Stats()
	if st.HDVTasks != 4 || st.LDVTasks != 16 {
		t.Fatalf("task split %d/%d", st.HDVTasks, st.LDVTasks)
	}
}

func TestRelaxedCanIssueOutOfOrder(t *testing.T) {
	// The defining difference from the strict dispatcher: with engine 0
	// stuck, engine 1 issues vertices beyond the global head of line.
	g := testGraph(t, 8, 16, 13)
	const p = 2
	d := NewRelaxed(g, p, 8)
	t0, _ := d.Next() // vertex 0 on engine 0
	d.Complete(t0.PE, 10_000)
	t1, _ := d.Next() // vertex 1 on engine 1
	d.Complete(t1.PE, t1.Start+1)
	t2, _ := d.Next()
	if t2.Vertex != 3 {
		t.Fatalf("expected vertex 3 (engine 1's next), got %d", t2.Vertex)
	}
	if t2.Start >= 10_000 {
		t.Fatal("out-of-order issue waited for the stuck engine")
	}
	d.Complete(t2.PE, t2.Start+1)
	peers := d.InFlight(1, t2.Start)
	if len(peers) != 1 || peers[0].Vertex != 0 {
		t.Fatalf("InFlight = %+v, want stuck vertex 0", peers)
	}
}

func TestRelaxedEmptyGraph(t *testing.T) {
	g, _ := graph.FromEdgeList(0, nil)
	d := NewRelaxed(g, 2, 0)
	if !d.Done() {
		t.Fatal("empty not done")
	}
	if _, ok := d.Next(); ok {
		t.Fatal("Next succeeded on empty graph")
	}
}
