// Package dispatch implements BitColor's Task Dispatcher Unit (paper
// §4.6, Fig 10): degree-aware task allocation over per-PE high-degree
// vertex (HDV) FIFOs and a shared low-degree vertex (LDV) FIFO, with a
// PE State Table (PST) recording what every engine is working on.
//
// Allocation rules:
//
//   - HDVs (index < threshold) are bound to PE (v mod P) so the
//     multi-port cache's address bit-selection stays valid (§4.4);
//   - LDVs go to any idle engine, first-come-first-served;
//   - vertices are issued in strictly ascending index order. The paper
//     relies on index order so that every smaller-indexed neighbor of a
//     dispatched vertex is either finished or in flight (and therefore
//     visible to the Data Conflict Table); out-of-order issue could let
//     two adjacent vertices miss each other entirely and produce an
//     invalid coloring, so the dispatcher enforces the order.
package dispatch

import (
	"fmt"

	"bitcolor/internal/engine"
	"bitcolor/internal/graph"
	"bitcolor/internal/mem"
)

// FIFO is a simple ring-buffer vertex queue, the model of the hardware
// FIFOs in the Task Dispatcher Unit.
type FIFO struct {
	buf        []uint32
	head, tail int
	size       int
}

// NewFIFO returns a FIFO with the given capacity.
func NewFIFO(capacity int) *FIFO {
	if capacity <= 0 {
		capacity = 16
	}
	return &FIFO{buf: make([]uint32, capacity)}
}

// Push appends v, growing if full.
func (f *FIFO) Push(v uint32) {
	if f.size == len(f.buf) {
		grown := make([]uint32, 2*len(f.buf))
		for i := 0; i < f.size; i++ {
			grown[i] = f.buf[(f.head+i)%len(f.buf)]
		}
		f.buf = grown
		f.head, f.tail = 0, f.size
	}
	f.buf[f.tail] = v
	f.tail = (f.tail + 1) % len(f.buf)
	f.size++
}

// Pop removes and returns the oldest vertex.
func (f *FIFO) Pop() (uint32, bool) {
	if f.size == 0 {
		return 0, false
	}
	v := f.buf[f.head]
	f.head = (f.head + 1) % len(f.buf)
	f.size--
	return v, true
}

// Peek returns the oldest vertex without removing it.
func (f *FIFO) Peek() (uint32, bool) {
	if f.size == 0 {
		return 0, false
	}
	return f.buf[f.head], true
}

// Len returns the number of queued vertices.
func (f *FIFO) Len() int { return f.size }

// PEState is one PST row: the vertex under processing and the running
// flag (true = BUSY).
type PEState struct {
	Vertex  uint32
	Running bool
	// FreeAt is the simulated cycle the engine becomes idle (the DES
	// companion of the running flag).
	FreeAt int64
}

// Task is one dispatch decision.
type Task struct {
	PE     int
	Vertex uint32
	Start  int64
	HDV    bool
}

// Stats counts dispatcher activity.
type Stats struct {
	HDVTasks, LDVTasks int64
	// StallCycles accumulates time the head-of-line vertex waited for
	// its bound engine (HDV) or for any engine (LDV).
	StallCycles int64
	// OffsetBlocks is the number of 512-bit DRAM blocks the Offset Fetch
	// module streamed to obtain every vertex's (s_e, d_e) pair, and
	// OffsetFetchCycles its sequential-read cost. The stream runs ahead
	// of dispatch (it fills the FIFOs), so it is off the critical path,
	// but it is real DRAM traffic the evaluation accounts.
	OffsetBlocks      int64
	OffsetFetchCycles int64
}

// offsetsPerBlock: edge offsets are 64-bit words, eight per 512-bit
// block; reading offsets[v] and offsets[v+1] for every v is one
// sequential pass over n+1 words.
const offsetsPerBlock = mem.BlockBits / 64

// Dispatcher drives task allocation for P engines over a DBG-reordered
// graph.
type Dispatcher struct {
	g         *graph.CSR
	p         int
	threshold uint32

	hdvFIFOs []*FIFO
	ldvFIFO  *FIFO
	pst      []PEState

	next        uint32 // next vertex index to issue (strict order)
	lastStart   int64
	issueCycles int64
	stats       Stats
}

// IssueCycles returns the dispatcher's per-task issue latency: the
// Offset Fetch (amortized burst read of the offsets array), the FIFO pop,
// the PST update and the conflict-table broadcast, pipelined to a
// constant rate. This single serial resource bounds system throughput at
// one vertex per IssueCycles — 40 MCV/s at the 200 MHz fabric clock —
// and is one of the effects that keep Fig 12's scaling sublinear: short
// (low-degree) tasks cannot fill 16 engines through one dispatcher.
func IssueCycles(p int) int64 {
	return 5
}

// New builds a dispatcher for P engines with the HDV threshold (v_t).
// The Offset Fetch stage pre-fills the FIFOs in index order.
func New(g *graph.CSR, p int, threshold uint32) *Dispatcher {
	if p <= 0 {
		panic(fmt.Sprintf("dispatch: parallelism %d must be positive", p))
	}
	d := &Dispatcher{
		g:           g,
		p:           p,
		threshold:   threshold,
		hdvFIFOs:    make([]*FIFO, p),
		ldvFIFO:     NewFIFO(1024),
		pst:         make([]PEState, p),
		issueCycles: IssueCycles(p),
	}
	for i := range d.hdvFIFOs {
		d.hdvFIFOs[i] = NewFIFO(256)
	}
	n := uint32(g.NumVertices())
	for v := uint32(0); v < n; v++ {
		if v < threshold {
			d.hdvFIFOs[int(v)%p].Push(v)
		} else {
			d.ldvFIFO.Push(v)
		}
	}
	// Offset Fetch: one sequential streaming pass over the offsets array
	// (n+1 64-bit words), at burst rate after the first block.
	if n > 0 {
		blocks := (int64(n) + 1 + offsetsPerBlock - 1) / offsetsPerBlock
		cfg := mem.DefaultDRAMConfig()
		d.stats.OffsetBlocks = blocks
		d.stats.OffsetFetchCycles = cfg.RandomLatency + (blocks-1)*cfg.BurstLatency
	}
	return d
}

// Done reports whether every vertex has been issued.
func (d *Dispatcher) Done() bool { return int(d.next) >= d.g.NumVertices() }

// Next issues the next vertex in strict index order. It returns the task
// with its start time: the cycle at which both the required engine is
// idle and the dispatch order constraint is satisfied.
func (d *Dispatcher) Next() (Task, bool) {
	if d.Done() {
		return Task{}, false
	}
	v := d.next
	var task Task
	if v < d.threshold {
		pe := int(v) % d.p
		got, ok := d.hdvFIFOs[pe].Pop()
		if !ok || got != v {
			panic(fmt.Sprintf("dispatch: HDV FIFO %d out of sync (got %d want %d)", pe, got, v))
		}
		issueReady := d.lastStart + d.issueCycles
		start := maxI64(d.pst[pe].FreeAt, issueReady)
		d.stats.StallCycles += start - issueReady
		d.stats.HDVTasks++
		task = Task{PE: pe, Vertex: v, Start: start, HDV: true}
	} else {
		got, ok := d.ldvFIFO.Pop()
		if !ok || got != v {
			panic(fmt.Sprintf("dispatch: LDV FIFO out of sync (got %d want %d)", got, v))
		}
		// First-come-first-served: the earliest-free engine.
		pe := 0
		for i := 1; i < d.p; i++ {
			if d.pst[i].FreeAt < d.pst[pe].FreeAt {
				pe = i
			}
		}
		issueReady := d.lastStart + d.issueCycles
		start := maxI64(d.pst[pe].FreeAt, issueReady)
		d.stats.StallCycles += start - issueReady
		d.stats.LDVTasks++
		task = Task{PE: pe, Vertex: v, Start: start, HDV: false}
	}
	d.pst[task.PE] = PEState{Vertex: v, Running: true, FreeAt: task.Start}
	d.lastStart = task.Start
	d.next++
	return task, true
}

// Complete is the Complete Unit: the engine reports its finish time,
// freeing the PST row.
func (d *Dispatcher) Complete(pe int, freeAt int64) {
	if pe < 0 || pe >= d.p {
		panic(fmt.Sprintf("dispatch: Complete for PE %d out of range", pe))
	}
	d.pst[pe].Running = false
	d.pst[pe].FreeAt = freeAt
}

// InFlight returns the peer tasks overlapping cycle `at`, excluding PE
// `self` — the data the Task Dispatch Unit sends to configure a BWPE's
// conflict table. The discrete-event simulator completes tasks eagerly,
// so "in flight at cycle `at`" means the engine's busy window extends
// past `at`.
func (d *Dispatcher) InFlight(self int, at int64) []engine.PeerTask {
	var peers []engine.PeerTask
	for pe := range d.pst {
		if pe == self {
			continue
		}
		if d.pst[pe].FreeAt > at {
			peers = append(peers, engine.PeerTask{PEID: pe, Vertex: d.pst[pe].Vertex})
		}
	}
	return peers
}

// PST exposes the state table for tests.
func (d *Dispatcher) PST() []PEState { return d.pst }

// Stats returns dispatcher counters.
func (d *Dispatcher) Stats() Stats { return d.stats }

// Threshold returns v_t.
func (d *Dispatcher) Threshold() uint32 { return d.threshold }

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
