package dispatch

// Host-side owner-computes dispatch: the software rendering of the
// pattern-p per-PE HDV FIFOs (paper §4.6, contribution 7) used by the
// single-pass DCT coloring engine in internal/coloring. The hardware
// dispatcher pins vertex v to PE v % P so the multi-port cache's address
// bit-selection stays valid (§4.4) and pre-fills one FIFO per PE in
// ascending index order; on the host the same schedule needs no queue at
// all — worker w's FIFO *is* the arithmetic sequence w, w+P, w+2P, …,
// walked in place. What does need real storage is the Data Conflict
// Table's defer-and-forward behaviour (§4.3): when a worker reaches a
// vertex whose lower-indexed neighbor is still being colored by another
// worker, it parks the vertex on its ForwardRing keyed by the awaited
// vertex and moves on, draining the ring when the color lands.

import "bitcolor/internal/engine"

// Owner returns the worker that owns vertex v under pattern-p dispatch:
// v mod p, the paper's HDV-to-PE pinning rule. Every worker colors its
// owned vertices in strictly ascending index order, which together with
// the engine.Defers rule makes the single pass deterministic.
func Owner(v uint32, p int) int { return int(v % uint32(p)) }

// Parked is one deferred vertex on a forwarding ring: the vertex whose
// coloring is suspended, the lower-indexed vertex whose color it awaits
// (engine.Defers(Vertex, Awaited) always holds), and an optional
// observer timestamp (monotonic nanoseconds since engine start; 0 when
// no observer is live) for the forwarding-latency histogram.
type Parked struct {
	Vertex   uint32
	Awaited  uint32
	ParkedAt int64
}

// ForwardRing is the host-side Data Conflict Table row storage of one
// worker: a bounded buffer of parked vertices awaiting a peer's color.
// Exactly one goroutine pushes and drains (the owning worker); the
// cross-worker communication happens through the shared color array the
// drain callback reads, not through the ring itself.
//
// The drain deliberately scans the whole ring rather than only its head:
// a replayed vertex can re-park awaiting a *different* neighbor, which
// breaks any ordering a FIFO head-only drain would rely on — an entry at
// the head may await a vertex parked behind it, and head-only draining
// would deadlock. A full scan restores the progress argument: once every
// vertex below some bound m is colored, one pass resolves every entry
// awaiting a vertex below m.
type ForwardRing struct {
	entries []Parked
	cap     int
	peak    int
}

// NewForwardRing builds a ring bounding at most capacity parked vertices
// (<=0 selects a default suited to the engines' scan window).
func NewForwardRing(capacity int) *ForwardRing {
	if capacity <= 0 {
		capacity = 64
	}
	return &ForwardRing{entries: make([]Parked, 0, capacity), cap: capacity}
}

// Reset empties the ring and clears its peak so a pooled ring can serve
// a new run.
func (r *ForwardRing) Reset() {
	r.entries = r.entries[:0]
	r.peak = 0
}

// Len returns the number of parked vertices.
func (r *ForwardRing) Len() int { return len(r.entries) }

// Cap returns the ring's bound.
func (r *ForwardRing) Cap() int { return r.cap }

// Full reports whether another Push would exceed the bound.
func (r *ForwardRing) Full() bool { return len(r.entries) >= r.cap }

// Peak returns the maximum occupancy the ring ever reached.
func (r *ForwardRing) Peak() int { return r.peak }

// Push parks p; it reports false (and parks nothing) when the ring is
// full — the caller falls back to an inline spin wait.
func (r *ForwardRing) Push(p Parked) bool {
	if !engine.Defers(p.Vertex, p.Awaited) {
		// A park that does not follow the lower-index-wins rule could wait
		// on a vertex that waits back; refuse it loudly.
		panic("dispatch: forward ring park violates the DCT priority rule")
	}
	if r.Full() {
		return false
	}
	r.entries = append(r.entries, p)
	if len(r.entries) > r.peak {
		r.peak = len(r.entries)
	}
	return true
}

// Drain replays every parked vertex through resolve until a full pass
// resolves nothing. resolve attempts to color p.Vertex: it returns
// (Parked{}, true) when the vertex was colored, or (reparked, false)
// when it is still blocked — typically the same entry, or one with an
// updated Awaited when the replay got further and hit a different
// pending neighbor (the original ParkedAt is preserved by convention so
// the forwarding latency stays honest). Returns the number of vertices
// resolved.
func (r *ForwardRing) Drain(resolve func(p Parked) (Parked, bool)) int {
	resolved := 0
	for {
		kept := r.entries[:0]
		progress := false
		for _, p := range r.entries {
			if next, ok := resolve(p); ok {
				resolved++
				progress = true
			} else {
				kept = append(kept, next)
			}
		}
		r.entries = kept
		if !progress || len(r.entries) == 0 {
			return resolved
		}
	}
}
