package dispatch

import "testing"

func TestOwner(t *testing.T) {
	cases := []struct {
		v    uint32
		p    int
		want int
	}{
		{0, 1, 0}, {17, 1, 0}, {0, 4, 0}, {1, 4, 1}, {7, 4, 3}, {8, 4, 0}, {1000003, 8, 3},
	}
	for _, c := range cases {
		if got := Owner(c.v, c.p); got != c.want {
			t.Fatalf("Owner(%d, %d) = %d, want %d", c.v, c.p, got, c.want)
		}
	}
	// Pattern-p dispatch partitions: each worker's owned set is exactly
	// the arithmetic sequence w, w+P, w+2P, …
	const p = 5
	for v := uint32(0); v < 100; v++ {
		if w := Owner(v, p); uint32(w) != v%p {
			t.Fatalf("Owner(%d, %d) = %d", v, p, w)
		}
	}
}

func TestForwardRingBoundAndPeak(t *testing.T) {
	r := NewForwardRing(3)
	if r.Cap() != 3 || r.Len() != 0 || r.Full() || r.Peak() != 0 {
		t.Fatalf("fresh ring: len=%d cap=%d full=%v peak=%d", r.Len(), r.Cap(), r.Full(), r.Peak())
	}
	for i := 0; i < 3; i++ {
		if !r.Push(Parked{Vertex: uint32(10 + i), Awaited: uint32(i)}) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if !r.Full() || r.Peak() != 3 {
		t.Fatalf("after 3 pushes: full=%v peak=%d", r.Full(), r.Peak())
	}
	if r.Push(Parked{Vertex: 20, Awaited: 5}) {
		t.Fatal("push accepted on a full ring")
	}
	if r.Len() != 3 {
		t.Fatalf("failed push changed occupancy: %d", r.Len())
	}
	// Drain one, push again: peak stays at the high-water mark.
	r.Drain(func(p Parked) (Parked, bool) { return p, p.Vertex == 10 })
	if r.Len() != 2 || r.Peak() != 3 {
		t.Fatalf("after partial drain: len=%d peak=%d", r.Len(), r.Peak())
	}
}

func TestForwardRingDefaultCapacity(t *testing.T) {
	if got := NewForwardRing(0).Cap(); got != 64 {
		t.Fatalf("default capacity = %d, want 64", got)
	}
}

func TestForwardRingPushPanicsOnRuleViolation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("push awaiting a higher-indexed vertex did not panic")
		}
	}()
	NewForwardRing(4).Push(Parked{Vertex: 3, Awaited: 7})
}

// TestForwardRingDrainWholeScan pins the reason Drain is not head-only:
// entries parked earlier can await vertices that only become resolvable
// after later entries resolve, including chains that re-park with a new
// awaited key mid-drain. One Drain call must ride the whole cascade.
func TestForwardRingDrainWholeScan(t *testing.T) {
	r := NewForwardRing(8)
	// colored[v] simulates the shared color array.
	colored := map[uint32]bool{1: true}
	// 9 awaits 5, 7 awaits 3, 5 awaits 3, 3 awaits 1 (already colored).
	// Head-only FIFO draining would stall on 9 immediately.
	for _, p := range []Parked{{9, 5, 0}, {7, 3, 0}, {5, 3, 0}, {3, 1, 0}} {
		if !r.Push(p) {
			t.Fatalf("push %+v rejected", p)
		}
	}
	// 7 additionally depends on 2 (uncolored, owned elsewhere): on replay
	// it re-parks awaiting 2, exercising the key-update path.
	reparked := false
	resolved := r.Drain(func(p Parked) (Parked, bool) {
		if !colored[p.Awaited] {
			return p, false
		}
		if p.Vertex == 7 && !colored[2] {
			reparked = true
			p.Awaited = 2
			return p, false
		}
		colored[p.Vertex] = true
		return Parked{}, true
	})
	if resolved != 3 {
		t.Fatalf("resolved %d of the chain, want 3 (9→5→3)", resolved)
	}
	if !reparked {
		t.Fatal("vertex 7 never re-parked on its second dependency")
	}
	if r.Len() != 1 || r.entries[0].Vertex != 7 || r.entries[0].Awaited != 2 {
		t.Fatalf("ring after drain: %+v", r.entries)
	}
	// The second dependency lands; the next drain finishes the ring.
	colored[2] = true
	if got := r.Drain(func(p Parked) (Parked, bool) {
		if !colored[p.Awaited] {
			return p, false
		}
		colored[p.Vertex] = true
		return Parked{}, true
	}); got != 1 || r.Len() != 0 {
		t.Fatalf("final drain resolved %d, len %d", got, r.Len())
	}
}

// Drain must terminate (and resolve nothing) when no entry can make
// progress — the caller's spin fallback handles the wait.
func TestForwardRingDrainNoProgress(t *testing.T) {
	r := NewForwardRing(4)
	r.Push(Parked{Vertex: 6, Awaited: 2})
	r.Push(Parked{Vertex: 8, Awaited: 2})
	if got := r.Drain(func(p Parked) (Parked, bool) { return p, false }); got != 0 {
		t.Fatalf("dry drain resolved %d", got)
	}
	if r.Len() != 2 {
		t.Fatalf("dry drain changed occupancy: %d", r.Len())
	}
}
