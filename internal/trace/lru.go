package trace

import (
	"container/list"

	"bitcolor/internal/graph"
)

// LRUHitRate simulates an LRU cache of `capacity` vertex colors over the
// exact color-read stream of an index-order greedy pass and returns its
// hit rate. Comparing it against the degree-threshold cache's hit share
// (HotVertexReadShare at the same capacity, on a DBG-ordered graph) makes
// §3.2.2's design argument quantitative: with almost no short-distance
// reuse (Fig 3b), recency does not predict re-reference — degree does.
func LRUHitRate(g *graph.CSR, capacity int) float64 {
	if capacity <= 0 {
		return 0
	}
	var hits, total int64
	lru := list.New() // front = most recent
	pos := make(map[graph.VertexID]*list.Element, capacity+1)
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			total++
			if el, ok := pos[w]; ok {
				hits++
				lru.MoveToFront(el)
				continue
			}
			pos[w] = lru.PushFront(w)
			if lru.Len() > capacity {
				back := lru.Back()
				lru.Remove(back)
				delete(pos, back.Value.(graph.VertexID))
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
