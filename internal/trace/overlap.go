// Package trace provides memory-access-pattern analyses of coloring
// workloads: the neighborhood overlap ratio measurement behind Fig 3(b)
// and locality statistics of color-array accesses that motivate the
// high-degree vertex cache and DRAM read merging.
package trace

import (
	"fmt"

	"bitcolor/internal/graph"
)

// OverlapRatio measures the average neighborhood overlap ratio of vertices
// processed in index order with the given iteration interval, as defined
// in §3.1.2: for each vertex v, collect the neighbors of the `interval`
// preceding vertices and divide the number of common neighbors by the
// number of neighbors of those statistical vertices.
//
// A low ratio (the paper reports ≤10%, average 4.96%) means consecutive
// vertices share almost no color-array reads, so a conventional cache sees
// almost no temporal locality — the motivation for caching by degree
// rather than by recency.
func OverlapRatio(g *graph.CSR, interval int) (float64, error) {
	if interval < 1 {
		return 0, fmt.Errorf("trace: interval %d < 1", interval)
	}
	n := g.NumVertices()
	if n <= interval {
		return 0, nil
	}
	// lastSeen[w] = most recent vertex index whose window included w as a
	// neighbor, so membership tests are O(1) without clearing a set.
	lastSeen := make([]int, n)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	var sumRatio float64
	samples := 0
	for v := interval; v < n; v++ {
		// Window = neighbors of the `interval` vertices preceding v.
		var windowNeighbors int64
		for u := v - interval; u < v; u++ {
			for _, w := range g.Neighbors(graph.VertexID(u)) {
				windowNeighbors++
				lastSeen[w] = v
			}
		}
		// Walk v's own neighbors against the window marks: the common
		// neighbors are v's reads that the window already loaded.
		var common int64
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			if lastSeen[w] == v {
				common++
			}
		}
		if windowNeighbors > 0 {
			sumRatio += float64(common) / float64(windowNeighbors)
			samples++
		}
	}
	if samples == 0 {
		return 0, nil
	}
	return sumRatio / float64(samples), nil
}

// OverlapSeries computes OverlapRatio for each interval, producing one
// Fig 3(b) series for a dataset.
func OverlapSeries(g *graph.CSR, intervals []int) ([]float64, error) {
	out := make([]float64, len(intervals))
	for i, iv := range intervals {
		r, err := OverlapRatio(g, iv)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// AccessSpread quantifies the randomness of color-array reads during a
// greedy pass (§3.1.2's "random neighbors" observation): the mean absolute
// index distance between consecutive neighbor reads, normalized by the
// vertex count. Near 0 for perfectly local access, approaching ~1/3 for
// uniform random access.
func AccessSpread(g *graph.CSR) float64 {
	n := g.NumVertices()
	if n < 2 {
		return 0
	}
	var sum float64
	var count int64
	prev := int64(-1)
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			if prev >= 0 {
				d := int64(w) - prev
				if d < 0 {
					d = -d
				}
				sum += float64(d)
				count++
			}
			prev = int64(w)
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count) / float64(n)
}

// BlockReuse reports the fraction of consecutive neighbor reads that fall
// in the same DRAM block of blockVertices colors — the quantity DRAM read
// merging (MGR) exploits. Sorted adjacency lists raise it.
func BlockReuse(g *graph.CSR, blockVertices int) float64 {
	if blockVertices <= 0 {
		blockVertices = 32
	}
	var same, total int64
	for v := 0; v < g.NumVertices(); v++ {
		adj := g.Neighbors(graph.VertexID(v))
		for i := 1; i < len(adj); i++ {
			total++
			if int(adj[i])/blockVertices == int(adj[i-1])/blockVertices {
				same++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(same) / float64(total)
}
