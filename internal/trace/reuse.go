package trace

import (
	"bitcolor/internal/graph"
)

// ReuseHistogram buckets the reuse distances of color-array reads during
// an index-order greedy pass: for each read of vertex w, the number of
// *distinct* other vertices read since the previous read of w. Bucket i
// holds distances in [2^i, 2^(i+1)); the final bucket counts cold (first)
// reads. Long reuse distances are why an LRU-style cache fails on this
// workload and the degree-threshold cache (HDC) succeeds.
type ReuseHistogram struct {
	// Buckets[i] counts reuses with distance in [2^i, 2^(i+1)).
	Buckets []int64
	// Cold counts first-ever reads (infinite distance).
	Cold int64
	// Total is the number of reads measured.
	Total int64
}

// maxReuseBuckets bounds the histogram (2^30 distinct intervening reads
// is beyond any on-chip capacity of interest).
const maxReuseBuckets = 30

// MeasureReuse computes the reuse-distance histogram of the neighbor
// reads of an index-order traversal. The distance metric is approximate
// (stack distance approximated by read-count distance, an upper bound),
// which is standard for workload characterization and errs against the
// cache — if even the approximation shows no short-distance mass, no
// real cache geometry can help.
func MeasureReuse(g *graph.CSR) ReuseHistogram {
	h := ReuseHistogram{Buckets: make([]int64, maxReuseBuckets)}
	lastRead := make(map[graph.VertexID]int64)
	var tick int64
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			h.Total++
			if prev, ok := lastRead[w]; ok {
				dist := tick - prev
				b := 0
				for int64(1)<<uint(b+1) <= dist && b < maxReuseBuckets-1 {
					b++
				}
				h.Buckets[b]++
			} else {
				h.Cold++
			}
			lastRead[w] = tick
			tick++
		}
	}
	return h
}

// ShortReuseFraction returns the fraction of (non-cold) reuses with
// distance below `window` reads — the share a recency cache of that
// size could possibly capture.
func (h ReuseHistogram) ShortReuseFraction(window int64) float64 {
	var short, reuses int64
	for b, c := range h.Buckets {
		reuses += c
		if int64(1)<<uint(b+1) <= window {
			short += c
		}
	}
	if reuses == 0 {
		return 0
	}
	return float64(short) / float64(reuses)
}

// HotVertexReadShare returns the fraction of all reads that target the
// `topFraction` highest-degree vertices — the share the degree-threshold
// cache captures by construction on a DBG-ordered graph. Comparing this
// against ShortReuseFraction for the same capacity is the quantitative
// case for HDC over LRU.
func HotVertexReadShare(g *graph.CSR, topFraction float64) float64 {
	n := g.NumVertices()
	if n == 0 || topFraction <= 0 {
		return 0
	}
	threshold := graph.VertexID(float64(n) * topFraction)
	if threshold < 1 {
		threshold = 1
	}
	var hot, total int64
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			total++
			if w < threshold {
				hot++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hot) / float64(total)
}
