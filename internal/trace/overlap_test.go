package trace

import (
	"testing"

	"bitcolor/internal/gen"
	"bitcolor/internal/graph"
	"bitcolor/internal/reorder"
)

func TestOverlapRatioIdenticalNeighborhoods(t *testing.T) {
	// Two vertices sharing all neighbors: complete bipartite K(2,4) with
	// parts {0,1} and {2..5}. Vertex 1's window (interval 1) is vertex 0,
	// whose neighbors are exactly vertex 1's neighbors → ratio 1 at v=1.
	var edges []graph.Edge
	for u := 0; u < 2; u++ {
		for v := 2; v < 6; v++ {
			edges = append(edges, graph.Edge{U: graph.VertexID(u), V: graph.VertexID(v)})
		}
	}
	g, _ := graph.FromEdgeList(6, edges)
	r, err := OverlapRatio(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	// v=1 contributes ratio 1 (4 common / 4 window); v=2..5 contribute
	// 2 common / window sizes. The mean must be well above zero.
	if r < 0.3 {
		t.Fatalf("overlap = %.3f, want high for shared neighborhoods", r)
	}
}

func TestOverlapRatioDisjointNeighborhoods(t *testing.T) {
	// A perfect matching: consecutive vertices share no neighbors.
	var edges []graph.Edge
	for i := 0; i < 50; i += 2 {
		edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID(i + 1)})
	}
	g, _ := graph.FromEdgeList(50, edges)
	r, err := OverlapRatio(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Window of 4 predecessors includes the partner only when the partner
	// precedes v; the common neighbor would be v's partner's... partner's
	// neighbor is v itself, never in v's own list. Ratio must be low.
	if r > 0.3 {
		t.Fatalf("overlap = %.3f, want low for a matching", r)
	}
}

func TestOverlapRatioErrorsAndEdgeCases(t *testing.T) {
	g, _ := graph.FromEdgeList(3, []graph.Edge{{U: 0, V: 1}})
	if _, err := OverlapRatio(g, 0); err == nil {
		t.Fatal("interval 0 accepted")
	}
	r, err := OverlapRatio(g, 10) // interval >= n
	if err != nil || r != 0 {
		t.Fatalf("oversized interval: %v %v", r, err)
	}
}

// The paper's headline measurement: overlap ratios on the datasets are
// small (average 4.96%, most below 10%).
func TestOverlapRatioLowOnPaperDatasets(t *testing.T) {
	intervals := []int{1, 2, 4, 8}
	var sum float64
	var count int
	for _, d := range gen.SmallRegistry() {
		g, err := d.Build(1)
		if err != nil {
			t.Fatalf("%s: %v", d.Abbrev, err)
		}
		h, _ := reorder.DBG(g)
		series, err := OverlapSeries(h, intervals)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range series {
			sum += r
			count++
			if r > 0.5 {
				t.Errorf("%s overlap %.3f implausibly high", d.Abbrev, r)
			}
		}
	}
	avg := sum / float64(count)
	if avg > 0.25 {
		t.Fatalf("average overlap %.3f, paper reports ~0.05 (low)", avg)
	}
}

func TestOverlapSeriesMonotoneSamples(t *testing.T) {
	g, err := gen.RMAT(11, 8, 0.57, 0.19, 0.19, 1)
	if err != nil {
		t.Fatal(err)
	}
	series, err := OverlapSeries(g, []int{1, 2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("series length %d", len(series))
	}
	// Larger windows can only include more potential matches: the ratio's
	// numerator grows with the window, but so does the denominator. We
	// only require values in [0,1].
	for i, r := range series {
		if r < 0 || r > 1 {
			t.Fatalf("series[%d] = %f out of range", i, r)
		}
	}
}

func TestAccessSpread(t *testing.T) {
	// Path graph with sorted adjacency: consecutive reads are near each
	// other → small spread.
	var edges []graph.Edge
	for i := 0; i < 999; i++ {
		edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID(i + 1)})
	}
	path, _ := graph.FromEdgeList(1000, edges)
	spreadPath := AccessSpread(path)
	rmat, err := gen.RMAT(10, 8, 0.57, 0.19, 0.19, 3)
	if err != nil {
		t.Fatal(err)
	}
	spreadRMAT := AccessSpread(rmat)
	if spreadPath >= spreadRMAT {
		t.Fatalf("path spread %.4f >= rmat spread %.4f; expected local << random",
			spreadPath, spreadRMAT)
	}
	if AccessSpread(&graph.CSR{}) != 0 {
		t.Fatal("empty graph spread != 0")
	}
}

func TestBlockReuseSortedVsShuffled(t *testing.T) {
	g, err := gen.RoadGrid(60, 60, 0.05, 0.08, 5)
	if err != nil {
		t.Fatal(err)
	}
	sorted := BlockReuse(g, 32)
	shuffled := g.Clone()
	reorder.ShuffleEdges(shuffled, 9)
	after := BlockReuse(shuffled, 32)
	if sorted <= after {
		t.Fatalf("sorted reuse %.3f <= shuffled reuse %.3f", sorted, after)
	}
	if BlockReuse(g, 0) != BlockReuse(g, 32) {
		t.Fatal("default block size not applied")
	}
}

func TestMeasureReuse(t *testing.T) {
	g, err := gen.RMAT(11, 8, 0.57, 0.19, 0.19, 7)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := reorder.DBG(g)
	hist := MeasureReuse(h)
	if hist.Total != h.NumEdges() {
		t.Fatalf("total reads %d, want %d", hist.Total, h.NumEdges())
	}
	var bucketSum int64
	for _, b := range hist.Buckets {
		bucketSum += b
	}
	if bucketSum+hist.Cold != hist.Total {
		t.Fatalf("histogram does not partition reads: %d + %d != %d",
			bucketSum, hist.Cold, hist.Total)
	}
	if hist.Cold < int64(h.NumVertices())/4 {
		t.Fatalf("cold reads %d implausibly low", hist.Cold)
	}
}

// The quantitative case for HDC over recency caching: on a DBG-ordered
// skewed graph, the top-eighth of vertices absorb far more reads than a
// recency window of the same size could capture.
func TestHDCBeatsRecency(t *testing.T) {
	g, err := gen.RMAT(12, 10, 0.57, 0.19, 0.19, 8)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := reorder.DBG(g)
	hist := MeasureReuse(h)
	window := int64(h.NumVertices()) / 8
	recency := hist.ShortReuseFraction(window) * (1 - float64(hist.Cold)/float64(hist.Total))
	hot := HotVertexReadShare(h, 1.0/8)
	if hot <= recency {
		t.Fatalf("HDC share %.3f not above recency share %.3f", hot, recency)
	}
	if hot < 0.3 {
		t.Fatalf("hot share %.3f shows no skew", hot)
	}
}

func TestHotVertexReadShareBounds(t *testing.T) {
	g, _ := graph.FromEdgeList(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if s := HotVertexReadShare(g, 0); s != 0 {
		t.Fatal("zero fraction not 0")
	}
	if s := HotVertexReadShare(g, 1); s != 1 {
		t.Fatalf("full fraction = %f", s)
	}
	empty, _ := graph.FromEdgeList(0, nil)
	if HotVertexReadShare(empty, 0.5) != 0 {
		t.Fatal("empty graph mishandled")
	}
}

func TestShortReuseFractionEmpty(t *testing.T) {
	var h ReuseHistogram
	h.Buckets = make([]int64, 4)
	if h.ShortReuseFraction(100) != 0 {
		t.Fatal("empty histogram fraction != 0")
	}
}

func TestLRUHitRateBasics(t *testing.T) {
	// Path graph sorted adjacency: every vertex's neighbors were just
	// read (w-1 read at step w-1's list) → high LRU hit rate.
	var edges []graph.Edge
	for i := 0; i < 499; i++ {
		edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID(i + 1)})
	}
	path, _ := graph.FromEdgeList(500, edges)
	if r := LRUHitRate(path, 64); r < 0.4 {
		t.Fatalf("path LRU hit rate %.2f, want high", r)
	}
	if LRUHitRate(path, 0) != 0 {
		t.Fatal("zero capacity hit rate != 0")
	}
	// Full capacity: every non-cold read hits.
	full := LRUHitRate(path, 500)
	hist := MeasureReuse(path)
	wantFull := 1 - float64(hist.Cold)/float64(hist.Total)
	if full < wantFull-1e-9 || full > wantFull+1e-9 {
		t.Fatalf("full-capacity LRU %.4f != 1-cold %.4f", full, wantFull)
	}
}

func TestLRUBelowHDCOnSkewedGraph(t *testing.T) {
	g, err := gen.RMAT(12, 10, 0.57, 0.19, 0.19, 9)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := reorder.DBG(g)
	capVertices := h.NumVertices() / 8
	lru := LRUHitRate(h, capVertices)
	hdc := HotVertexReadShare(h, 1.0/8)
	if hdc <= lru {
		t.Fatalf("HDC %.3f not above LRU %.3f at equal capacity", hdc, lru)
	}
}
