// Package gpusim models the paper's GPU baseline: the Gunrock-based
// parallel graph coloring of Osama et al. (IPDPSW'19) on an NVIDIA
// Titan V. The algorithm is speculative coloring with conflict
// resolution: per round, every still-uncolored vertex tentatively takes
// its first-fit color against committed neighbors; adjacent vertices that
// speculated the same color are resolved by random priority, and losers
// retry next round.
//
// The cost model charges each round:
//
//   - a kernel-launch/synchronization overhead;
//   - edge work for the frontier's adjacency scans, throttled by an
//     effective parallel bandwidth that reflects irregular (uncoalesced)
//     color-array access through a small cache — the weakness §5.3
//     attributes to the GPU ("the cache size is too small to handle the
//     irregular memory access");
//   - vertex work for priority comparison and color selection, which
//     Gunrock performs with a full scan per round (no BWC-style O(1)
//     color determination, no PUV-style pruning).
package gpusim

import (
	"fmt"
	"time"

	"bitcolor/internal/coloring"
	"bitcolor/internal/graph"
)

// CostModel parameterizes the SIMT timing model. The per-operation
// costs are *effective* device-level costs: what one unit of work costs
// after all the parallelism the hardware can extract, folding in warp
// divergence on irregular frontiers, latency-bound uncoalesced color
// reads and atomic contention. They are calibrated so the model's
// aggregate throughput on the paper's datasets lands near the measured
// Gunrock average of ~15 MCV/s on a Titan V (§5.3) — a GPU runs this
// algorithm far below its peak arithmetic rate, which is exactly the
// weakness the paper exploits.
type CostModel struct {
	// ClockGHz is the GPU core clock (Titan V ~1.2 GHz boost).
	ClockGHz float64
	// EdgeCostCycles is the effective device cost of one neighbor check
	// when the color data hits in L2.
	EdgeCostCycles float64
	// EdgeMissFactor multiplies EdgeCostCycles for HBM misses; the miss
	// ratio interpolates with the working set against CacheBytes.
	EdgeMissFactor float64
	// FrontierVertexCycles is the effective device cost of processing
	// one frontier vertex per round (state read, priority compare,
	// winner commit).
	FrontierVertexCycles float64
	// CacheBytes is the L2 capacity servicing the color array (Titan V:
	// 4.5 MB).
	CacheBytes int64
	// KernelLaunch is the per-round host/device overhead.
	KernelLaunch time.Duration
	// WorkingSetVertices, when positive, overrides the vertex count used
	// for the cache interpolation (see cpuref.CostModel for rationale:
	// per-access costs are taken at paper scale while operation counts
	// come from the scaled stand-in graphs).
	WorkingSetVertices int64
}

// DefaultCostModel approximates the paper's Titan V setup.
func DefaultCostModel() CostModel {
	return CostModel{
		ClockGHz: 1.2,
		// ~20 neighbor checks per cycle effective: streaming adjacency
		// reads are coalesced and bandwidth-bound on HBM2.
		EdgeCostCycles: 0.05,
		EdgeMissFactor: 6,
		// Frontier vertex state ops (priority load, tentative-color
		// store, winner commit) are latency-bound and uncoalesced.
		FrontierVertexCycles: 30,
		CacheBytes:           4_500_000,
		// Gunrock runs several kernels per iteration (advance, filter,
		// compute) with host synchronization between rounds.
		KernelLaunch: 15 * time.Microsecond,
	}
}

// Result is a simulated GPU coloring run.
type Result struct {
	// Colors is the final assignment (a proper coloring).
	Colors []uint16
	// NumColors used; independent-set coloring typically uses more than
	// sequential greedy.
	NumColors int
	// Rounds is the number of kernel iterations until all vertices
	// colored.
	Rounds int
	// EdgeWork is the total neighbor checks across rounds — the frontier
	// re-scans that make the GPU baseline do redundant work.
	EdgeWork int64
	// FrontierWork is the total frontier-vertex visits across rounds.
	FrontierWork int64
	// Duration is the modeled wall time.
	Duration time.Duration
}

// Throughput returns MCV/s.
func (r *Result) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(len(r.Colors)) / r.Duration.Seconds() / 1e6
}

// Run simulates Gunrock-style coloring of g. seed fixes the random
// priorities.
func Run(g *graph.CSR, maxColors int, seed int64, m CostModel) (*Result, error) {
	if m.ClockGHz <= 0 || m.EdgeCostCycles <= 0 {
		return nil, fmt.Errorf("gpusim: invalid cost model %+v", m)
	}
	n := g.NumVertices()
	// The functional algorithm: Jones–Plassmann rounds. We re-implement
	// the round loop here (rather than reusing coloring.JonesPlassmann)
	// because the cost model needs the per-round frontier counts.
	res, rounds, edgeWork, frontierWork, err := runRounds(g, maxColors, seed)
	if err != nil {
		return nil, err
	}
	// Edge cost with cache interpolation on the color array working set.
	vertices := int64(n)
	if m.WorkingSetVertices > 0 {
		vertices = m.WorkingSetVertices
	}
	arrayBytes := vertices * 2
	hitRatio := 1.0
	if arrayBytes > m.CacheBytes {
		hitRatio = float64(m.CacheBytes) / float64(arrayBytes)
	}
	edgeCost := m.EdgeCostCycles * (hitRatio + (1-hitRatio)*m.EdgeMissFactor)
	cycles := float64(edgeWork)*edgeCost + float64(frontierWork)*m.FrontierVertexCycles
	dur := time.Duration(cycles/m.ClockGHz)*time.Nanosecond +
		time.Duration(rounds)*m.KernelLaunch
	return &Result{
		Colors:       res.Colors,
		NumColors:    res.NumColors,
		Rounds:       rounds,
		EdgeWork:     edgeWork,
		FrontierWork: frontierWork,
		Duration:     dur,
	}, nil
}

// runRounds executes the speculative color-and-resolve rounds of the
// Gunrock coloring and counts device work: per round, every uncolored
// vertex scans its adjacency twice (first-fit gather + conflict check,
// with early exit on the first losing conflict).
func runRounds(g *graph.CSR, maxColors int, seed int64) (*coloring.Result, int, int64, int64, error) {
	n := g.NumVertices()
	prio := make([]uint64, n)
	s := uint64(seed)*2862933555777941757 + 3037000493
	for i := range prio {
		s = s*2862933555777941757 + 3037000493
		prio[i] = s
	}
	colors := make([]uint16, n)
	tentative := make([]uint16, n)
	remaining := n
	rounds := 0
	var edgeWork, frontierWork int64
	used := make([]uint32, maxColors+1) // stamp-based availability marks
	stamp := uint32(0)
	for remaining > 0 {
		rounds++
		// Speculation pass: first-fit against committed colors only.
		for v := 0; v < n; v++ {
			if colors[v] != 0 {
				continue
			}
			frontierWork++
			adj := g.Neighbors(graph.VertexID(v))
			edgeWork += int64(len(adj))
			stamp++
			for _, u := range adj {
				if c := colors[u]; c != 0 {
					used[c] = stamp
				}
			}
			var pick uint16
			for c := 1; c <= maxColors; c++ {
				if used[c] != stamp {
					pick = uint16(c)
					break
				}
			}
			if pick == 0 {
				return nil, rounds, edgeWork, frontierWork, coloring.ErrPaletteExhausted
			}
			tentative[v] = pick
		}
		// Conflict-resolution pass: adjacent equal speculations resolve
		// by priority; winners commit.
		colored := 0
		for v := 0; v < n; v++ {
			if colors[v] != 0 || tentative[v] == 0 {
				continue
			}
			win := true
			for _, u := range g.Neighbors(graph.VertexID(v)) {
				edgeWork++ // early exit on the first losing conflict
				if colors[u] == 0 && tentative[u] == tentative[v] && u != graph.VertexID(v) {
					if prio[u] > prio[v] || (prio[u] == prio[v] && u > graph.VertexID(v)) {
						win = false
						break
					}
				}
			}
			if win {
				colored++
			} else {
				tentative[v] = 0 // retry next round
			}
		}
		// Commit winners after the full conflict pass (synchronous
		// device semantics).
		for v := 0; v < n; v++ {
			if colors[v] == 0 && tentative[v] != 0 {
				colors[v] = tentative[v]
			}
			tentative[v] = 0
		}
		remaining -= colored
		if colored == 0 && remaining > 0 {
			return nil, rounds, edgeWork, frontierWork, fmt.Errorf("gpusim: no progress at round %d", rounds)
		}
	}
	num := 0
	seen := make(map[uint16]struct{})
	for _, c := range colors {
		if _, ok := seen[c]; !ok {
			seen[c] = struct{}{}
			num++
		}
	}
	return &coloring.Result{Colors: colors, NumColors: num}, rounds, edgeWork, frontierWork, nil
}
