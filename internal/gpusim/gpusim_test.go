package gpusim

import (
	"context"
	"testing"

	"bitcolor/internal/coloring"
	"bitcolor/internal/gen"
	"bitcolor/internal/reorder"
)

func TestRunProducesProperColoring(t *testing.T) {
	g, err := gen.RMAT(12, 8, 0.57, 0.19, 0.19, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, coloring.MaxColorsDefault, 7, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 1 {
		t.Fatalf("rounds = %d, want multiple JP rounds", res.Rounds)
	}
	if res.Duration <= 0 || res.Throughput() <= 0 {
		t.Fatalf("timing missing: %v", res.Duration)
	}
	// The frontier re-scans make edge work exceed the edge count.
	if res.EdgeWork <= g.NumEdges() {
		t.Fatalf("edge work %d <= edges %d; rounds not counted", res.EdgeWork, g.NumEdges())
	}
}

func TestRunDeterministic(t *testing.T) {
	g, err := gen.BarabasiAlbert(3000, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(g, coloring.MaxColorsDefault, 3, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, coloring.MaxColorsDefault, 3, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.NumColors != b.NumColors || a.Duration != b.Duration {
		t.Fatal("same seed produced different results")
	}
}

func TestRunRejectsBadModel(t *testing.T) {
	g, _ := gen.BarabasiAlbert(100, 3, 1)
	if _, err := Run(g, 64, 1, CostModel{}); err == nil {
		t.Fatal("zero model accepted")
	}
}

func TestIndependentSetUsesMoreColorsThanGreedy(t *testing.T) {
	// Not guaranteed per-instance, but overwhelmingly typical on skewed
	// graphs — and the basis of the paper's quality comparison.
	g, err := gen.RMAT(12, 12, 0.57, 0.19, 0.19, 4)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := reorder.DBG(g)
	gpu, err := Run(h, coloring.MaxColorsDefault, 5, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := coloring.Greedy(context.Background(), h, coloring.MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	if gpu.NumColors < greedy.NumColors {
		t.Logf("JP used %d colors vs greedy %d (unusual but legal)", gpu.NumColors, greedy.NumColors)
	}
}

func TestCacheInterpolationSlowsCacheBustingRuns(t *testing.T) {
	g, err := gen.BarabasiAlbert(20000, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	fits := DefaultCostModel()
	fits.CacheBytes = 1 << 30 // whole color array resident
	busts := DefaultCostModel()
	busts.CacheBytes = 1 << 10 // nothing resident
	rFits, err := Run(g, coloring.MaxColorsDefault, 1, fits)
	if err != nil {
		t.Fatal(err)
	}
	rBusts, err := Run(g, coloring.MaxColorsDefault, 1, busts)
	if err != nil {
		t.Fatal(err)
	}
	if rBusts.Duration <= rFits.Duration {
		t.Fatalf("cache-busting run %v not slower than resident run %v; cache model inert",
			rBusts.Duration, rFits.Duration)
	}
}

func BenchmarkGPUSim(b *testing.B) {
	g, err := gen.RMAT(13, 8, 0.57, 0.19, 0.19, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, coloring.MaxColorsDefault, int64(i), DefaultCostModel()); err != nil {
			b.Fatal(err)
		}
	}
}
