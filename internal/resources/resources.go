// Package resources is the analytic FPGA resource and frequency model
// behind Fig 14: LUT, register and BRAM utilization of a BitColor
// instance on the Xilinx Alveo U200 as a function of parallelism, plus
// the achieved clock frequency.
//
// The model is structural: per-engine logic grows linearly with P while
// the all-to-all components — the multi-port cache read crossbar, the
// data-conflict forwarding network and the per-PE conflict tables (P-1
// entries each) — grow with P². That composition reproduces the paper's
// observation that consumption is "nearly linear before P8" and jumps at
// P16, where BitColor lands at ≈51% of registers, ≈48% of LUTs and ≈97%
// of BRAM while holding >200 MHz. The quadratic coefficients are
// calibrated against those reported P16 endpoints.
package resources

import (
	"fmt"
	"math/bits"

	"bitcolor/internal/mem"
)

// U200 device capacities (paper §5.1.1).
const (
	U200LUTs      = 892_000
	U200Registers = 2_364_000
	U200BRAMBits  = mem.U200BRAMBits
)

// Model holds the structural coefficients. All LUT/REG counts are in
// units of one LUT / one register.
type Model struct {
	// Fixed platform cost: shell, dispatcher, offset fetch, writers.
	BaseLUT, BaseREG int64
	// Per-engine cost: one BWPE's pipelines, color loader, ping-pong
	// control, codec.
	PerPELUT, PerPEREG int64
	// Quadratic cost per PE pair: cache read crossbar multiplexers and
	// the conflict forwarding network.
	CrossbarLUT, CrossbarREG int64
	// DCTEntryREG is the register cost of one conflict-table row (vertex
	// id + color bits + flags); each PE holds P-1 rows.
	DCTEntryREG int64
	// CacheVertices is the multi-port cache depth D (colors).
	CacheVertices int64
	// PerPEBufferBits is the edge ping-pong buffer BRAM per engine.
	PerPEBufferBits int64
	// Num2BitBits is the per-engine decompression table BRAM.
	Num2BitBits int64
	// BaseMHz and SlowdownPerPE model the achievable clock.
	BaseMHz, SlowdownPerPE float64
}

// DefaultModel returns coefficients calibrated to the paper's P16
// utilization (≈47.79% LUT, ≈51.09% REG, ≈96.72% BRAM, >200 MHz).
func DefaultModel() Model {
	return Model{
		BaseLUT:     30_000,
		BaseREG:     55_000,
		PerPELUT:    7_500,
		PerPEREG:    16_000,
		CrossbarLUT: 1_070,
		CrossbarREG: 2_600,
		DCTEntryREG: 1_074, // 32b vertex + 1024b color + valid/flag bits
		// A full 512K-color cache replicated for P=16 would need ~103%
		// of the U200's BRAM (16/2 × 512K × 16b = 64 Mb of 63.6 Mb).
		// The deployed instance shrinks the depth slightly to fit, which
		// is how the paper lands at 96.72% BRAM at P16.
		CacheVertices:   470 * 1024,
		PerPEBufferBits: 2 * 16 * mem.BlockBits, // ping+pong of 16 blocks
		Num2BitBits:     64 * 1024,              // compressed Num2Bit ROM
		BaseMHz:         305,
		SlowdownPerPE:   5.5,
	}
}

// Usage is one Fig 14 sample.
type Usage struct {
	Parallelism int
	LUTs        int64
	Registers   int64
	BRAMBits    int64
	// Utilization fractions of the U200.
	LUTFrac, REGFrac, BRAMFrac float64
	FrequencyMHz               float64
	// Breakdown attributes the totals to structural components.
	Breakdown ComponentBreakdown
}

// ComponentBreakdown attributes resources to the design's structures —
// which term dominates at which parallelism explains the Fig 14 knee.
type ComponentBreakdown struct {
	// BaseLUT/REG: shell, dispatcher, writers.
	BaseLUT, BaseREG int64
	// EngineLUT/REG: P × per-BWPE pipelines.
	EngineLUT, EngineREG int64
	// CrossbarLUT/REG: P² read-mux and forwarding network.
	CrossbarLUT, CrossbarREG int64
	// DCTREG: P × (P−1) conflict-table rows.
	DCTREG int64
	// CacheBits / BufferBits: multi-port color cache vs per-engine
	// buffers and tables.
	CacheBits, BufferBits int64
}

// Estimate returns the resource usage of a BitColor instance with P
// engines. P must be a positive power of two.
func (m Model) Estimate(p int) (Usage, error) {
	if p <= 0 || bits.OnesCount(uint(p)) != 1 {
		return Usage{}, fmt.Errorf("resources: parallelism %d must be a positive power of two", p)
	}
	pp := int64(p)
	u := Usage{Parallelism: p}
	u.Breakdown = ComponentBreakdown{
		BaseLUT:     m.BaseLUT,
		BaseREG:     m.BaseREG,
		EngineLUT:   m.PerPELUT * pp,
		EngineREG:   m.PerPEREG * pp,
		CrossbarLUT: m.CrossbarLUT * pp * pp,
		CrossbarREG: m.CrossbarREG * pp * pp,
		DCTREG:      m.DCTEntryREG * pp * (pp - 1),
		CacheBits:   m.cacheBits(pp),
		BufferBits:  (m.PerPEBufferBits + m.Num2BitBits) * pp,
	}
	b := u.Breakdown
	u.LUTs = b.BaseLUT + b.EngineLUT + b.CrossbarLUT
	u.Registers = b.BaseREG + b.EngineREG + b.CrossbarREG + b.DCTREG
	u.BRAMBits = b.CacheBits + b.BufferBits
	u.LUTFrac = float64(u.LUTs) / U200LUTs
	u.REGFrac = float64(u.Registers) / U200Registers
	u.BRAMFrac = float64(u.BRAMBits) / float64(U200BRAMBits)
	u.FrequencyMHz = m.BaseMHz - m.SlowdownPerPE*float64(p)
	return u, nil
}

// cacheBits is the multi-port cache cost from §4.4: P·D/2 color entries
// for P > 1, D for P = 1.
func (m Model) cacheBits(p int64) int64 {
	entries := m.CacheVertices
	if p > 1 {
		entries = p * m.CacheVertices / 2
	}
	return entries * mem.ColorBits
}

// LVTCacheBits returns the BRAM cost the LVT-based design would need at
// the same parallelism (P²·D/4 entries plus the LVT), for the §4.4
// comparison.
func (m Model) LVTCacheBits(p int64) int64 {
	entries := p * p * m.CacheVertices / 4
	if p == 1 {
		entries = m.CacheVertices
	}
	lvtBits := int64(0)
	if p > 1 {
		lvtBits = m.CacheVertices * int64(bits.Len(uint(p-1)))
	}
	return entries*mem.ColorBits + lvtBits
}

// Sweep estimates usage over the paper's parallelism axis {1,2,4,8,16}.
func (m Model) Sweep() ([]Usage, error) {
	var out []Usage
	for _, p := range []int{1, 2, 4, 8, 16} {
		u, err := m.Estimate(p)
		if err != nil {
			return nil, err
		}
		out = append(out, u)
	}
	return out, nil
}

// FitsU200 reports whether the instance fits the device.
func (u Usage) FitsU200() bool {
	return u.LUTFrac <= 1 && u.REGFrac <= 1 && u.BRAMFrac <= 1
}
