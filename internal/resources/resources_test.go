package resources

import "testing"

func TestEstimateP16MatchesPaperEndpoints(t *testing.T) {
	u, err := DefaultModel().Estimate(16)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig 14 at P16: ~51.09% registers, ~47.79% LUTs, ~96.72% BRAM.
	check := func(name string, got, want, tol float64) {
		if got < want-tol || got > want+tol {
			t.Errorf("%s = %.2f%%, want %.2f%%±%.1f", name, got*100, want*100, tol*100)
		}
	}
	check("REG", u.REGFrac, 0.5109, 0.05)
	check("LUT", u.LUTFrac, 0.4779, 0.05)
	check("BRAM", u.BRAMFrac, 0.9672, 0.03)
	if u.FrequencyMHz <= 200 {
		t.Errorf("frequency %.0f MHz, paper reports >200", u.FrequencyMHz)
	}
	if !u.FitsU200() {
		t.Error("P16 instance does not fit the U200")
	}
}

func TestGrowthShape(t *testing.T) {
	sweep, err := DefaultModel().Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 5 {
		t.Fatalf("sweep has %d points", len(sweep))
	}
	// Monotone growth in every resource; frequency monotone decreasing.
	for i := 1; i < len(sweep); i++ {
		if sweep[i].LUTs <= sweep[i-1].LUTs ||
			sweep[i].Registers <= sweep[i-1].Registers ||
			sweep[i].BRAMBits <= sweep[i-1].BRAMBits {
			t.Fatalf("resources not monotone at P=%d", sweep[i].Parallelism)
		}
		if sweep[i].FrequencyMHz >= sweep[i-1].FrequencyMHz {
			t.Fatalf("frequency not decreasing at P=%d", sweep[i].Parallelism)
		}
		if sweep[i].FrequencyMHz <= 200 {
			t.Fatalf("frequency %.0f <= 200 MHz at P=%d", sweep[i].FrequencyMHz, sweep[i].Parallelism)
		}
	}
	// Super-linear jump from P8 to P16: the increment P8→P16 exceeds
	// twice the P4→P8 increment for LUTs and registers ("increases
	// exponentially" in the paper's words).
	dLUT1 := sweep[3].LUTs - sweep[2].LUTs
	dLUT2 := sweep[4].LUTs - sweep[3].LUTs
	if dLUT2 <= 2*dLUT1 {
		t.Errorf("LUT growth not super-linear: P4→P8 %d, P8→P16 %d", dLUT1, dLUT2)
	}
	dREG1 := sweep[3].Registers - sweep[2].Registers
	dREG2 := sweep[4].Registers - sweep[3].Registers
	if dREG2 <= 2*dREG1 {
		t.Errorf("REG growth not super-linear: P4→P8 %d, P8→P16 %d", dREG1, dREG2)
	}
}

func TestEstimateRejectsBadParallelism(t *testing.T) {
	for _, p := range []int{0, -1, 3, 12} {
		if _, err := DefaultModel().Estimate(p); err == nil {
			t.Errorf("P=%d accepted", p)
		}
	}
}

func TestLVTComparison(t *testing.T) {
	m := DefaultModel()
	for _, p := range []int64{2, 4, 8, 16} {
		proposed := m.cacheBits(p)
		lvt := m.LVTCacheBits(p)
		if proposed >= lvt {
			t.Errorf("P=%d: proposed cache %d bits >= LVT %d", p, proposed, lvt)
		}
		// The paper's ratio: proposed is 2/P of the LVT data cost.
		ratio := float64(proposed) / float64(p*p*m.CacheVertices/4*16)
		want := 2.0 / float64(p)
		if ratio < want*0.99 || ratio > want*1.01 {
			t.Errorf("P=%d ratio %.4f, want %.4f", p, ratio, want)
		}
	}
	// At P=16 the LVT design is far beyond the device.
	if float64(m.LVTCacheBits(16)) <= float64(U200BRAMBits) {
		t.Error("LVT cache at P16 should not fit the U200")
	}
	if m.LVTCacheBits(1) != m.cacheBits(1) {
		t.Error("P=1 designs should cost the same")
	}
}

func TestP1Baseline(t *testing.T) {
	u, err := DefaultModel().Estimate(1)
	if err != nil {
		t.Fatal(err)
	}
	if u.BRAMFrac > 0.2 || u.LUTFrac > 0.1 || u.REGFrac > 0.1 {
		t.Fatalf("P1 usage implausibly high: %+v", u)
	}
}

func TestBreakdownSumsToTotals(t *testing.T) {
	for _, p := range []int{1, 4, 16} {
		u, err := DefaultModel().Estimate(p)
		if err != nil {
			t.Fatal(err)
		}
		b := u.Breakdown
		if b.BaseLUT+b.EngineLUT+b.CrossbarLUT != u.LUTs {
			t.Fatalf("P=%d LUT breakdown mismatch", p)
		}
		if b.BaseREG+b.EngineREG+b.CrossbarREG+b.DCTREG != u.Registers {
			t.Fatalf("P=%d REG breakdown mismatch", p)
		}
		if b.CacheBits+b.BufferBits != u.BRAMBits {
			t.Fatalf("P=%d BRAM breakdown mismatch", p)
		}
	}
	// The knee: at P16 the quadratic terms dominate the register budget;
	// at P1 they are negligible.
	u1, _ := DefaultModel().Estimate(1)
	u16, _ := DefaultModel().Estimate(16)
	quad1 := u1.Breakdown.CrossbarREG + u1.Breakdown.DCTREG
	quad16 := u16.Breakdown.CrossbarREG + u16.Breakdown.DCTREG
	if quad1*100 > u1.Registers*10 {
		t.Fatalf("P1 quadratic terms already %d of %d registers", quad1, u1.Registers)
	}
	if quad16*2 < u16.Registers {
		t.Fatalf("P16 quadratic terms %d not dominant in %d", quad16, u16.Registers)
	}
}
