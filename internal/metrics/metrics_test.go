package metrics

import (
	"math"
	"testing"
	"time"
)

func TestMCVps(t *testing.T) {
	if v := MCVps(2_000_000, time.Second); v != 2 {
		t.Fatalf("MCVps = %f, want 2", v)
	}
	if MCVps(5, 0) != 0 {
		t.Fatal("zero duration not handled")
	}
}

func TestKCVpj(t *testing.T) {
	// 1M vertices in 1s at 100W → 10 KCV/J.
	if v := KCVpj(1_000_000, time.Second, 100); math.Abs(v-10) > 1e-9 {
		t.Fatalf("KCVpj = %f, want 10", v)
	}
	if KCVpj(1, time.Second, 0) != 0 || KCVpj(1, 0, 10) != 0 {
		t.Fatal("degenerate inputs not handled")
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(10*time.Second, 2*time.Second); s != 5 {
		t.Fatalf("speedup = %f", s)
	}
	if Speedup(time.Second, 0) != 0 {
		t.Fatal("zero target not handled")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean = %f, want 4", g)
	}
	if g := GeoMean([]float64{3, 0, -1}); math.Abs(g-3) > 1e-9 {
		t.Fatalf("geomean with junk = %f, want 3", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean != 0")
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %f", m)
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean != 0")
	}
}

func TestParallelStats(t *testing.T) {
	s := ParallelStats{
		Workers:           4,
		Rounds:            3,
		ConflictsFound:    12,
		ConflictsRepaired: 9,
		VerticesPerWorker: []int64{100, 100, 100, 100},
	}
	if s.TotalVertices() != 400 {
		t.Fatalf("total = %d", s.TotalVertices())
	}
	if im := s.Imbalance(); math.Abs(im-1) > 1e-9 {
		t.Fatalf("balanced imbalance = %f, want 1", im)
	}
	s.VerticesPerWorker = []int64{300, 50, 25, 25}
	// max 300 over mean 100 → 3.0.
	if im := s.Imbalance(); math.Abs(im-3) > 1e-9 {
		t.Fatalf("skewed imbalance = %f, want 3", im)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
	var zero ParallelStats
	if zero.Imbalance() != 0 || zero.TotalVertices() != 0 {
		t.Fatal("zero stats not handled")
	}
}

func TestImbalanceEdgeCases(t *testing.T) {
	// No per-worker record at all (sequential engines).
	if im := (RunStats{Workers: 0}).Imbalance(); im != 0 {
		t.Fatalf("no-workers imbalance = %f, want 0", im)
	}
	// Per-worker slice present but all zero (engine aborted before any
	// block claim): mean is 0, which must not divide.
	if im := (RunStats{Workers: 2, VerticesPerWorker: []int64{0, 0}}).Imbalance(); im != 0 {
		t.Fatalf("zero-work imbalance = %f, want 0", im)
	}
	// A single worker is by definition perfectly balanced.
	if im := (RunStats{Workers: 1, VerticesPerWorker: []int64{42}}).Imbalance(); math.Abs(im-1) > 1e-9 {
		t.Fatalf("single-worker imbalance = %f, want 1", im)
	}
	// One worker got everything: max/mean == workers.
	if im := (RunStats{Workers: 4, VerticesPerWorker: []int64{80, 0, 0, 0}}).Imbalance(); math.Abs(im-4) > 1e-9 {
		t.Fatalf("one-sided imbalance = %f, want 4", im)
	}
}

func TestMergeRatioEdgeCases(t *testing.T) {
	// No reads at all (gather disabled): both ratios must stay finite.
	var g GatherStats
	if g.MergeRatio() != 0 || g.HotRatio() != 0 {
		t.Fatalf("zero-read ratios = %f/%f, want 0/0", g.MergeRatio(), g.HotRatio())
	}
	// All reads hot: no cold-tier denominator, MergeRatio must be 0 (not
	// NaN), HotRatio exactly 1.
	g = GatherStats{HotReads: 10}
	if g.MergeRatio() != 0 {
		t.Fatalf("hot-only MergeRatio = %f, want 0", g.MergeRatio())
	}
	if g.HotRatio() != 1 {
		t.Fatalf("hot-only HotRatio = %f, want 1", g.HotRatio())
	}
	// One cold load, no merges: 0; all follow-ups merged: 3/4.
	g = GatherStats{ColdBlockLoads: 1}
	if g.MergeRatio() != 0 {
		t.Fatalf("single-load MergeRatio = %f, want 0", g.MergeRatio())
	}
	g = GatherStats{MergedReads: 3, ColdBlockLoads: 1}
	if r := g.MergeRatio(); math.Abs(r-0.75) > 1e-9 {
		t.Fatalf("MergeRatio = %f, want 0.75", r)
	}
	if g.Reads() != 4 {
		t.Fatalf("Reads = %d, want 4", g.Reads())
	}
	if g.String() == "" {
		t.Fatal("empty String")
	}
}

func TestBlocksAndSteals(t *testing.T) {
	// No block telemetry: everything 0.
	var zero RunStats
	if zero.TotalBlocks() != 0 || zero.FairShareBlocks() != 0 || zero.Steals() != 0 {
		t.Fatal("zero stats block accounting not 0")
	}
	// Perfect split: fair share met exactly, no steals.
	s := RunStats{Workers: 4, BlocksPerWorker: []int64{5, 5, 5, 5}}
	if s.TotalBlocks() != 20 {
		t.Fatalf("TotalBlocks = %d, want 20", s.TotalBlocks())
	}
	if s.FairShareBlocks() != 5 {
		t.Fatalf("FairShareBlocks = %d, want 5", s.FairShareBlocks())
	}
	if s.Steals() != 0 {
		t.Fatalf("balanced Steals = %d, want 0", s.Steals())
	}
	// Skewed dynamic dispatch: fair share ceil(20/4)=5, worker 0 claimed
	// 11 → 6 steals, worker 1 claimed 7 → 2 steals.
	s.BlocksPerWorker = []int64{11, 7, 1, 1}
	if s.Steals() != 8 {
		t.Fatalf("skewed Steals = %d, want 8", s.Steals())
	}
	// Non-divisible total: ceil rounds the fair share up.
	s.BlocksPerWorker = []int64{3, 3, 3, 1}
	if s.FairShareBlocks() != 3 {
		t.Fatalf("ceil FairShareBlocks = %d, want 3", s.FairShareBlocks())
	}
	if s.Steals() != 0 {
		t.Fatalf("ceil Steals = %d, want 0", s.Steals())
	}
	// Single worker can never steal from itself.
	s = RunStats{Workers: 1, BlocksPerWorker: []int64{9}}
	if s.FairShareBlocks() != 9 || s.Steals() != 0 {
		t.Fatalf("single-worker fair/steals = %d/%d, want 9/0", s.FairShareBlocks(), s.Steals())
	}
}

func TestNewComparison(t *testing.T) {
	c := NewComparison("EF", 1_000_000, 10*time.Second, time.Second, 200*time.Millisecond)
	if c.SpeedupVsCPU != 50 {
		t.Fatalf("vs CPU = %f", c.SpeedupVsCPU)
	}
	if c.SpeedupVsGPU != 5 {
		t.Fatalf("vs GPU = %f", c.SpeedupVsGPU)
	}
	if c.FPGAMCVps <= c.GPUMCVps || c.GPUMCVps <= c.CPUMCVps {
		t.Fatal("throughput ordering broken")
	}
	// Energy: FPGA wins by both speed and power.
	if c.FPGAKCVpj <= c.GPUKCVpj || c.FPGAKCVpj <= c.CPUKCVpj {
		t.Fatal("energy ordering broken")
	}
	if c.String() == "" {
		t.Fatal("empty String")
	}
}
