package metrics

import (
	"math"
	"testing"
	"time"
)

func TestMCVps(t *testing.T) {
	if v := MCVps(2_000_000, time.Second); v != 2 {
		t.Fatalf("MCVps = %f, want 2", v)
	}
	if MCVps(5, 0) != 0 {
		t.Fatal("zero duration not handled")
	}
}

func TestKCVpj(t *testing.T) {
	// 1M vertices in 1s at 100W → 10 KCV/J.
	if v := KCVpj(1_000_000, time.Second, 100); math.Abs(v-10) > 1e-9 {
		t.Fatalf("KCVpj = %f, want 10", v)
	}
	if KCVpj(1, time.Second, 0) != 0 || KCVpj(1, 0, 10) != 0 {
		t.Fatal("degenerate inputs not handled")
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(10*time.Second, 2*time.Second); s != 5 {
		t.Fatalf("speedup = %f", s)
	}
	if Speedup(time.Second, 0) != 0 {
		t.Fatal("zero target not handled")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean = %f, want 4", g)
	}
	if g := GeoMean([]float64{3, 0, -1}); math.Abs(g-3) > 1e-9 {
		t.Fatalf("geomean with junk = %f, want 3", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean != 0")
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %f", m)
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean != 0")
	}
}

func TestParallelStats(t *testing.T) {
	s := ParallelStats{
		Workers:           4,
		Rounds:            3,
		ConflictsFound:    12,
		ConflictsRepaired: 9,
		VerticesPerWorker: []int64{100, 100, 100, 100},
	}
	if s.TotalVertices() != 400 {
		t.Fatalf("total = %d", s.TotalVertices())
	}
	if im := s.Imbalance(); math.Abs(im-1) > 1e-9 {
		t.Fatalf("balanced imbalance = %f, want 1", im)
	}
	s.VerticesPerWorker = []int64{300, 50, 25, 25}
	// max 300 over mean 100 → 3.0.
	if im := s.Imbalance(); math.Abs(im-3) > 1e-9 {
		t.Fatalf("skewed imbalance = %f, want 3", im)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
	var zero ParallelStats
	if zero.Imbalance() != 0 || zero.TotalVertices() != 0 {
		t.Fatal("zero stats not handled")
	}
}

func TestNewComparison(t *testing.T) {
	c := NewComparison("EF", 1_000_000, 10*time.Second, time.Second, 200*time.Millisecond)
	if c.SpeedupVsCPU != 50 {
		t.Fatalf("vs CPU = %f", c.SpeedupVsCPU)
	}
	if c.SpeedupVsGPU != 5 {
		t.Fatalf("vs GPU = %f", c.SpeedupVsGPU)
	}
	if c.FPGAMCVps <= c.GPUMCVps || c.GPUMCVps <= c.CPUMCVps {
		t.Fatal("throughput ordering broken")
	}
	// Energy: FPGA wins by both speed and power.
	if c.FPGAKCVpj <= c.GPUKCVpj || c.FPGAKCVpj <= c.CPUKCVpj {
		t.Fatal("energy ordering broken")
	}
	if c.String() == "" {
		t.Fatal("empty String")
	}
}
