// Package metrics computes the evaluation metrics of §5.3: MCV/s
// throughput (million colored vertices per second), KCV/J energy
// efficiency (kilo colored vertices per joule) and speedup tables.
package metrics

import (
	"fmt"
	"math"
	"time"
)

// Power draws used for the energy metric, in watts. The paper does not
// publish its power methodology; these are the board-level figures of the
// platforms in §5.1 (Xeon Silver 4114 TDP, Titan V board power, U200
// in-service draw). EXPERIMENTS.md discusses how this choice affects the
// absolute KCV/J values while preserving the paper's ordering
// (FPGA ≫ GPU > CPU).
const (
	CPUPowerWatts  = 85.0
	GPUPowerWatts  = 250.0
	FPGAPowerWatts = 30.0
)

// MCVps returns million colored vertices per second.
func MCVps(vertices int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(vertices) / d.Seconds() / 1e6
}

// KCVpj returns kilo colored vertices per joule at the given power draw.
func KCVpj(vertices int, d time.Duration, watts float64) float64 {
	if d <= 0 || watts <= 0 {
		return 0
	}
	joules := watts * d.Seconds()
	return float64(vertices) / joules / 1e3
}

// Speedup returns base/target (how many times faster target is than
// base).
func Speedup(base, target time.Duration) float64 {
	if target <= 0 {
		return 0
	}
	return float64(base) / float64(target)
}

// GeoMean returns the geometric mean of positive samples; zero and
// negative samples are skipped (matching how the paper averages
// per-dataset speedups).
func GeoMean(xs []float64) float64 {
	prod := 1.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			prod *= x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// Mean returns the arithmetic mean of samples (0 for none).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GatherStats describes the memory-locality behaviour of a blocked
// color-gather run — the software analogue of the accelerator's memory
// counters. HotReads are neighbor colors served by the hot tier (index
// below v_t, the HVC/HDC analog, §3.2.2); MergedReads stayed within the
// worker's last-touched 64-color block (the DRAM read-merging analog,
// MGR); ColdBlockLoads are fresh block fetches; PrunedTail counts sorted
// adjacency entries skipped by uncolored-vertex pruning's tail break
// (PUV).
type GatherStats struct {
	HotReads       int64
	MergedReads    int64
	ColdBlockLoads int64
	PrunedTail     int64
	// AutoDisabled records that the engine switched the gather off on its
	// own because the graph's average degree was below the adaptive
	// threshold (road-network regime: classification overhead beats the
	// locality win). False when the gather ran, was explicitly disabled,
	// or was explicitly forced on.
	AutoDisabled bool
}

// Add accumulates another worker's counters into g.
func (g *GatherStats) Add(o GatherStats) {
	g.HotReads += o.HotReads
	g.MergedReads += o.MergedReads
	g.ColdBlockLoads += o.ColdBlockLoads
	g.PrunedTail += o.PrunedTail
	g.AutoDisabled = g.AutoDisabled || o.AutoDisabled
}

// Reads returns the total number of neighbor color reads classified.
func (g GatherStats) Reads() int64 {
	return g.HotReads + g.MergedReads + g.ColdBlockLoads
}

// MergeRatio returns the fraction of cold-tier reads served by the
// last-loaded block (the read-merging rate); 0 with no cold-tier reads.
func (g GatherStats) MergeRatio() float64 {
	cold := g.MergedReads + g.ColdBlockLoads
	if cold == 0 {
		return 0
	}
	return float64(g.MergedReads) / float64(cold)
}

// HotRatio returns the fraction of all reads served by the hot tier;
// 0 with no reads.
func (g GatherStats) HotRatio() float64 {
	total := g.Reads()
	if total == 0 {
		return 0
	}
	return float64(g.HotReads) / float64(total)
}

func (g GatherStats) String() string {
	return fmt.Sprintf("reads=%d (hot %.1f%%, merged %.1f%% of cold), pruned=%d",
		g.Reads(), 100*g.HotRatio(), 100*g.MergeRatio(), g.PrunedTail)
}

// RunStats is the unified per-run statistics record every registered
// coloring engine fills (the EngineFunc contract in internal/coloring).
// Engines without a subsystem leave its fields zero-valued: sequential
// engines report neither workers nor rounds, the round-based parallel
// engines (Jones–Plassmann, Luby) fill Workers/Rounds only, and the
// speculative host engines additionally fill the conflict, work-split
// and gather counters — the software analogue of the per-PE counters the
// accelerator simulator reports.
type RunStats struct {
	// Workers is the number of goroutines that ran the engine.
	Workers int
	// Rounds counts speculation/detection sweeps until the coloring was
	// conflict-free (1 = the first speculation never conflicted; 0 = the
	// graph was empty).
	Rounds int
	// ConflictsFound counts equal-colored adjacent pairs observed from
	// the losing endpoint during detection.
	ConflictsFound int64
	// ConflictsRepaired counts vertices re-colored to resolve conflicts.
	ConflictsRepaired int64
	// VerticesPerWorker[w] is how many speculation-phase vertices worker
	// w claimed from the shared cursor, summed over all rounds.
	VerticesPerWorker []int64
	// BlocksPerWorker[w] is how many dispatch blocks worker w claimed
	// from the shared cursor across speculation and repair sweeps — the
	// dynamic-dispatch telemetry behind the imbalance and steal numbers.
	BlocksPerWorker []int64
	// Gather aggregates the blocked color-gather's locality counters
	// across workers; zero when the engine ran with the gather disabled.
	Gather GatherStats
	// HotThreshold is the gather's hot-tier boundary v_t (0 = disabled).
	HotThreshold uint32
	// Deferred counts vertices the DCT engine parked on a forwarding ring
	// because a lower-indexed neighbor's color had not been published yet
	// (zero for the speculative engines — they never defer, they repair).
	Deferred int64
	// DeferRetries counts coloring attempts replayed from the forwarding
	// rings; a drained vertex that hits another pending neighbor re-parks,
	// so DeferRetries >= Deferred resolved on the first replay.
	DeferRetries int64
	// SpinWaits counts fallback busy-wait yields the DCT workers took
	// when a forwarding ring was full or a final drain pass resolved
	// nothing.
	SpinWaits int64
	// ForwardRingPeak is the maximum forwarding-ring occupancy any worker
	// reached — how deep the worst wait chain got relative to the bounded
	// ring capacity.
	ForwardRingPeak int
	// Shards is the partition count of a sharded run (0 for the unsharded
	// engines; 1 when the sharded engine degenerated to the plain DCT
	// path). The fields below are filled only when Shards > 0.
	Shards int
	// BoundaryVertices counts vertices with at least one cross-shard
	// neighbor (the undirected rule partition.Assignment.BoundaryVertices
	// and the multi-card simulator use), regardless of edge orientation.
	BoundaryVertices int
	// CutEdges counts undirected edges whose endpoints land in different
	// shards — the partition quality number the boundary phase pays for.
	CutEdges int64
	// CrossShardDefers counts vertices pushed to the boundary frontier
	// because a lower-indexed neighbor lives in another shard (the direct
	// cross-shard cause; structural, so identical across timings).
	CrossShardDefers int64
	// FrontierVertices is the boundary-frontier size the second phase
	// colored: CrossShardDefers plus the in-shard cascade behind them.
	FrontierVertices int
	// ShardVertices[s] counts the vertices shard s colored during the
	// interior phase (frontier vertices are excluded — they are colored
	// in the boundary phase).
	ShardVertices []int64
	// ShardDurations[s] is the wall time of shard s's interior phase (the
	// slowest of its workers).
	ShardDurations []time.Duration
	// ResidentShards is the bounded-residency limit of an out-of-core
	// streamed run (0 for in-core runs): at most this many shard payloads
	// were mapped at once during the interior phase.
	ResidentShards int
	// PeakMappedBytes is the high-water mark of mapped shard-section
	// bytes during an out-of-core streamed run (0 for in-core runs) —
	// the number the bounded-residency invariant is asserted on.
	PeakMappedBytes int64
}

// ParallelStats is the former name of RunStats, kept as an alias for the
// host-parallel engines' original API surface.
type ParallelStats = RunStats

// TotalVertices sums the per-worker speculation counts.
func (s RunStats) TotalVertices() int64 {
	var sum int64
	for _, v := range s.VerticesPerWorker {
		sum += v
	}
	return sum
}

// Imbalance is the max/mean ratio of per-worker vertex counts: 1.0 is a
// perfect split, higher means some workers dragged the tail. Returns 0
// when no work was recorded.
func (s RunStats) Imbalance() float64 {
	total := s.TotalVertices()
	if total == 0 || len(s.VerticesPerWorker) == 0 {
		return 0
	}
	var max int64
	for _, v := range s.VerticesPerWorker {
		if v > max {
			max = v
		}
	}
	mean := float64(total) / float64(len(s.VerticesPerWorker))
	return float64(max) / mean
}

// TotalBlocks sums the per-worker dispatch block claims.
func (s RunStats) TotalBlocks() int64 {
	var sum int64
	for _, b := range s.BlocksPerWorker {
		sum += b
	}
	return sum
}

// FairShareBlocks is the per-worker block count a static split would
// have assigned: ceil(total blocks / workers). 0 when no blocks were
// claimed or no per-worker counts were recorded.
func (s RunStats) FairShareBlocks() int64 {
	total := s.TotalBlocks()
	if total == 0 || len(s.BlocksPerWorker) == 0 {
		return 0
	}
	w := int64(len(s.BlocksPerWorker))
	return (total + w - 1) / w
}

// Steals counts dispatch blocks claimed beyond the static fair share,
// summed over workers — how much work the dynamic cursor moved away
// from a hypothetical static partition. 0 means the dynamic dispatch
// degenerated to the static split.
func (s RunStats) Steals() int64 {
	fair := s.FairShareBlocks()
	var steals int64
	for _, b := range s.BlocksPerWorker {
		if b > fair {
			steals += b - fair
		}
	}
	return steals
}

func (s RunStats) String() string {
	return fmt.Sprintf("workers=%d rounds=%d conflicts=%d/%d repaired, imbalance=%.2f",
		s.Workers, s.Rounds, s.ConflictsFound, s.ConflictsRepaired, s.Imbalance())
}

// Comparison is one row of the Fig 13 table.
type Comparison struct {
	Dataset                       string
	CPUTime, GPUTime, FPGATime    time.Duration
	SpeedupVsCPU, SpeedupVsGPU    float64
	CPUMCVps, GPUMCVps, FPGAMCVps float64
	CPUKCVpj, GPUKCVpj, FPGAKCVpj float64
}

// NewComparison derives all metrics from the three measured times.
func NewComparison(dataset string, vertices int, cpu, gpu, fpga time.Duration) Comparison {
	return Comparison{
		Dataset:      dataset,
		CPUTime:      cpu,
		GPUTime:      gpu,
		FPGATime:     fpga,
		SpeedupVsCPU: Speedup(cpu, fpga),
		SpeedupVsGPU: Speedup(gpu, fpga),
		CPUMCVps:     MCVps(vertices, cpu),
		GPUMCVps:     MCVps(vertices, gpu),
		FPGAMCVps:    MCVps(vertices, fpga),
		CPUKCVpj:     KCVpj(vertices, cpu, CPUPowerWatts),
		GPUKCVpj:     KCVpj(vertices, gpu, GPUPowerWatts),
		FPGAKCVpj:    KCVpj(vertices, fpga, FPGAPowerWatts),
	}
}

func (c Comparison) String() string {
	return fmt.Sprintf("%s: cpu=%v gpu=%v fpga=%v (%.1fx vs cpu, %.2fx vs gpu)",
		c.Dataset, c.CPUTime, c.GPUTime, c.FPGATime, c.SpeedupVsCPU, c.SpeedupVsGPU)
}
