package experiments

import (
	"fmt"
	"time"

	"bitcolor/internal/coloring"
	"bitcolor/internal/cpuref"
	"bitcolor/internal/reorder"
)

// Table2Row is one dataset's preprocessing-vs-coloring wall time on one
// CPU thread (paper Table 2).
type Table2Row struct {
	Dataset  string
	Reorder  time.Duration
	Coloring time.Duration
	RatioPct float64 // reorder / coloring
}

// Table2Result holds all rows.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 measures real single-thread wall time of DBG graph reordering
// against basic greedy coloring, reproducing the paper's claim that "the
// graph reordering cost is small" relative to coloring.
func Table2(ctx *Context) (*Table2Result, error) {
	res := &Table2Result{}
	for _, d := range ctx.Datasets {
		raw, err := d.Build(ctx.Seed)
		if err != nil {
			return nil, fmt.Errorf("building %s: %w", d.Abbrev, err)
		}
		var prepared = raw
		tReorder, err := cpuref.MeasureWall(func() error {
			prepared, _ = reorder.DBG(raw)
			return nil
		})
		if err != nil {
			return nil, err
		}
		// The coloring side runs the literal Algorithm 1 (full flag wipe
		// per vertex), as the paper's C baseline does.
		tColor, err := cpuref.MeasureWall(func() error {
			_, err := coloring.GreedyLiteral(ctx.RunCtx(), prepared, coloring.MaxColorsDefault)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Abbrev, err)
		}
		ratio := 0.0
		if tColor > 0 {
			ratio = 100 * float64(tReorder) / float64(tColor)
		}
		res.Rows = append(res.Rows, Table2Row{
			Dataset: d.Abbrev, Reorder: tReorder, Coloring: tColor, RatioPct: ratio,
		})
	}
	return res, nil
}

// Print writes the Table 2 report.
func (r *Table2Result) Print(ctx *Context) {
	t := Table{
		Title:  "Table 2: preprocessing vs coloring, one CPU thread (reordering should be the small fraction)",
		Header: []string{"Graph", "Reorder (ms)", "Coloring (ms)", "Reorder/Coloring"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Dataset,
			f2(float64(row.Reorder)/float64(time.Millisecond)),
			f2(float64(row.Coloring)/float64(time.Millisecond)),
			f1(row.RatioPct)+"%")
	}
	t.Render(ctx)
}
