package experiments

import (
	"fmt"

	"bitcolor/internal/coloring"
)

// QualityRow is one dataset's color count per algorithm.
type QualityRow struct {
	Dataset string
	// Counts indexed like QualityAlgorithms.
	Counts []int
}

// QualityAlgorithms names the compared engines in column order.
var QualityAlgorithms = []string{"greedy", "dsatur", "smallestlast", "rlf*", "jp", "luby", "speculative", "parbitwise"}

// QualityResult compares color quality across the implemented algorithm
// families — the context for the paper's choice of greedy (§2.2-2.4):
// greedy is competitive with the quality heuristics on these graph
// classes while the parallel IS family pays a color penalty.
type QualityResult struct {
	Rows []QualityRow
}

// rlfVertexBudget bounds the graphs RLF runs on (its class construction
// is quadratic); above the budget the column is skipped.
const rlfVertexBudget = 30000

// Quality colors every dataset with every engine.
func Quality(ctx *Context) (*QualityResult, error) {
	res := &QualityResult{}
	for _, d := range ctx.Datasets {
		_, prepared, err := ctx.BuildPrepared(d)
		if err != nil {
			return nil, err
		}
		row := QualityRow{Dataset: d.Abbrev}
		add := func(r *coloring.Result, err error) error {
			if err != nil {
				return fmt.Errorf("%s: %w", d.Abbrev, err)
			}
			row.Counts = append(row.Counts, r.NumColors)
			return nil
		}
		if err := add(coloring.Greedy(prepared, coloring.MaxColorsDefault)); err != nil {
			return nil, err
		}
		if err := add(coloring.DSATUR(prepared, coloring.MaxColorsDefault)); err != nil {
			return nil, err
		}
		if err := add(coloring.SmallestLast(prepared, coloring.MaxColorsDefault)); err != nil {
			return nil, err
		}
		if prepared.NumVertices() <= rlfVertexBudget {
			if err := add(coloring.RLF(prepared, coloring.MaxColorsDefault)); err != nil {
				return nil, err
			}
		} else {
			row.Counts = append(row.Counts, 0) // skipped
		}
		jp, _, err := coloring.JonesPlassmann(prepared, coloring.MaxColorsDefault, ctx.Seed, 0)
		if err := add(jp, err); err != nil {
			return nil, err
		}
		luby, _, err := coloring.LubyMIS(prepared, coloring.MaxColorsDefault, ctx.Seed)
		if err := add(luby, err); err != nil {
			return nil, err
		}
		spec, _, err := coloring.Speculative(prepared, coloring.MaxColorsDefault, 0)
		if err := add(spec, err); err != nil {
			return nil, err
		}
		par, _, err := coloring.ParallelBitwise(prepared, coloring.MaxColorsDefault, 0)
		if err := add(par, err); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print writes the quality comparison.
func (r *QualityResult) Print(ctx *Context) {
	header := append([]string{"Graph"}, QualityAlgorithms...)
	t := Table{
		Title:  "Algorithm quality: colors used per engine (rlf* skipped above 30K vertices)",
		Header: header,
	}
	for _, row := range r.Rows {
		cells := []string{row.Dataset}
		for _, c := range row.Counts {
			if c == 0 {
				cells = append(cells, "-")
			} else {
				cells = append(cells, fmt.Sprint(c))
			}
		}
		t.AddRow(cells...)
	}
	t.Render(ctx)
}
