package experiments

import (
	"fmt"

	"bitcolor/internal/coloring"
)

// QualityRow is one dataset's color count per algorithm.
type QualityRow struct {
	Dataset string
	// Counts indexed like QualityAlgorithms.
	Counts []int
}

// QualityAlgorithms names the compared engines in column order — every
// registered engine, in registry order, so a newly registered engine
// joins the comparison without touching this file. The trailing "*"
// marks RLF's vertex budget.
var QualityAlgorithms = func() []string {
	names := coloring.EngineNames()
	for i, n := range names {
		if n == "rlf" {
			names[i] = "rlf*"
		}
	}
	return names
}()

// QualityResult compares color quality across the implemented algorithm
// families — the context for the paper's choice of greedy (§2.2-2.4):
// greedy is competitive with the quality heuristics on these graph
// classes while the parallel IS family pays a color penalty.
type QualityResult struct {
	Rows []QualityRow
}

// rlfVertexBudget bounds the graphs RLF runs on (its class construction
// is quadratic); above the budget the column is skipped.
const rlfVertexBudget = 30000

// Quality colors every dataset with every registered engine.
func Quality(ctx *Context) (*QualityResult, error) {
	res := &QualityResult{}
	for _, d := range ctx.Datasets {
		_, prepared, err := ctx.BuildPrepared(d)
		if err != nil {
			return nil, err
		}
		row := QualityRow{Dataset: d.Abbrev}
		for _, eng := range coloring.Engines() {
			if eng.Name == "rlf" && prepared.NumVertices() > rlfVertexBudget {
				row.Counts = append(row.Counts, 0) // skipped
				continue
			}
			opts := coloring.Options{Seed: ctx.Seed}
			r, _, err := eng.Run(ctx.RunCtx(), prepared, opts)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", d.Abbrev, eng.Name, err)
			}
			row.Counts = append(row.Counts, r.NumColors)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// QualityColumn returns the Counts index of a registered engine name
// (-1 if unknown) — the stable way to address a column now that the
// list derives from the registry.
func QualityColumn(name string) int { return coloring.Index(name) }

// Print writes the quality comparison.
func (r *QualityResult) Print(ctx *Context) {
	header := append([]string{"Graph"}, QualityAlgorithms...)
	t := Table{
		Title:  "Algorithm quality: colors used per engine (rlf* skipped above 30K vertices)",
		Header: header,
	}
	for _, row := range r.Rows {
		cells := []string{row.Dataset}
		for _, c := range row.Counts {
			if c == 0 {
				cells = append(cells, "-")
			} else {
				cells = append(cells, fmt.Sprint(c))
			}
		}
		t.AddRow(cells...)
	}
	t.Render(ctx)
}
