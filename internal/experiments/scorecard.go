package experiments

import (
	"fmt"
)

// ScorecardRow is one headline claim: the paper's value, ours, and
// whether the shape criterion holds.
type ScorecardRow struct {
	Claim    string
	Paper    string
	Measured string
	Holds    bool
}

// ScorecardResult is the one-page reproduction summary: every headline
// number of the paper's evaluation recomputed live and checked against
// an explicit shape criterion.
type ScorecardResult struct {
	Rows   []ScorecardRow
	Passed int
}

// Scorecard runs the headline experiments and grades the reproduction.
func Scorecard(ctx *Context) (*ScorecardResult, error) {
	res := &ScorecardResult{}
	add := func(claim, paper, measured string, holds bool) {
		res.Rows = append(res.Rows, ScorecardRow{Claim: claim, Paper: paper, Measured: measured, Holds: holds})
		if holds {
			res.Passed++
		}
	}

	f3a, err := Fig3a(ctx)
	if err != nil {
		return nil, err
	}
	add("Fig 3a: Stage 1 dominates basic greedy",
		"39/47/14%",
		fmt.Sprintf("%.0f/%.0f/%.0f%%", 100*f3a.AvgStage0, 100*f3a.AvgStage1, 100*f3a.AvgStage2),
		f3a.AvgStage1 >= f3a.AvgStage0 && f3a.AvgStage1 >= f3a.AvgStage2)

	f3b, err := Fig3b(ctx)
	if err != nil {
		return nil, err
	}
	add("Fig 3b: neighborhood overlap is low",
		"avg 4.96%, most <10%",
		fmt.Sprintf("avg %.1f%%", 100*f3b.Average),
		f3b.Average < 0.10)

	f11, err := Fig11(ctx)
	if err != nil {
		return nil, err
	}
	add("Fig 11: DRAM access reduction",
		"88.6%", pct(f11.AvgDRAMReduction),
		f11.AvgDRAMReduction > 0.7)
	add("Fig 11: computation reduction",
		"66.9%", pct(f11.AvgComputeReduction),
		f11.AvgComputeReduction > 0.4)
	add("Fig 11: total execution reduction",
		"82.9%", pct(f11.AvgTotalReduction),
		f11.AvgTotalReduction > 0.6)

	f12, err := Fig12(ctx)
	if err != nil {
		return nil, err
	}
	add("Fig 12: P16 speedup sublinear, roughly 4-7x",
		"3.92-7.01x",
		fmt.Sprintf("%.2f-%.2fx avg %.2fx", f12.MinP16, f12.MaxP16, f12.AvgP16),
		f12.MinP16 > 2 && f12.MaxP16 < 16 && f12.AvgP16 > 3 && f12.AvgP16 < 9)

	t4, err := Table4(ctx)
	if err != nil {
		return nil, err
	}
	roadsUnchanged := true
	for _, row := range t4.Rows {
		if (row.Dataset == "RC" || row.Dataset == "RP" || row.Dataset == "RT") &&
			row.Baseline != row.Sorted {
			roadsUnchanged = false
		}
	}
	add("Table 4: preprocessing reduces colors; roads unchanged",
		"-9.3% avg, roads 5->5",
		fmt.Sprintf("%.1f%% avg, roads unchanged=%v", 100*t4.AvgReduction, roadsUnchanged),
		t4.AvgReduction > 0 && roadsUnchanged)

	f13, err := Fig13(ctx)
	if err != nil {
		return nil, err
	}
	add("Fig 13: beats CPU by a large factor",
		"30-97x, avg 54.9x",
		fmt.Sprintf("avg %.1fx", f13.AvgSpeedupCPU),
		f13.AvgSpeedupCPU > 10)
	add("Fig 13: beats GPU by a small factor",
		"1.63-6.69x, avg 2.71x",
		fmt.Sprintf("avg %.2fx", f13.AvgSpeedupGPU),
		f13.AvgSpeedupGPU > 1 && f13.AvgSpeedupGPU < 15)
	add("Fig 13: energy order FPGA >> GPU > CPU",
		"156 / 19 / 12 KCV/J",
		fmt.Sprintf("%.0f / %.0f / %.0f KCV/J", f13.AvgFPGAKCVpj, f13.AvgGPUKCVpj, f13.AvgCPUKCVpj),
		f13.AvgFPGAKCVpj > f13.AvgGPUKCVpj && f13.AvgGPUKCVpj > f13.AvgCPUKCVpj)

	f14, err := Fig14(ctx)
	if err != nil {
		return nil, err
	}
	p16 := f14.Usages[len(f14.Usages)-1]
	add("Fig 14: P16 fits U200, BRAM-bound, >200MHz",
		"51% REG, 48% LUT, 97% BRAM, >200MHz",
		fmt.Sprintf("%.0f%% REG, %.0f%% LUT, %.0f%% BRAM, %.0fMHz",
			100*p16.REGFrac, 100*p16.LUTFrac, 100*p16.BRAMFrac, p16.FrequencyMHz),
		p16.FitsU200() && p16.BRAMFrac > p16.REGFrac && p16.BRAMFrac > p16.LUTFrac &&
			p16.FrequencyMHz > 200)

	ca, err := CacheAblation(ctx)
	if err != nil {
		return nil, err
	}
	last := ca.Rows[len(ca.Rows)-1]
	add("§4.4: proposed cache is 2/P of LVT; LVT won't fit at P16",
		"ratio 0.125 at P16",
		fmt.Sprintf("ratio %.3f, LVT fits=%v", last.Ratio, last.LVTFitsU200),
		last.Ratio < 0.2 && !last.LVTFitsU200)

	return res, nil
}

// Print writes the scorecard.
func (r *ScorecardResult) Print(ctx *Context) {
	t := Table{
		Title:  "Reproduction scorecard: paper claims vs live measurements",
		Header: []string{"Claim", "Paper", "Measured", "Shape holds"},
	}
	for _, row := range r.Rows {
		mark := "yes"
		if !row.Holds {
			mark = "NO"
		}
		t.AddRow(row.Claim, row.Paper, row.Measured, mark)
	}
	t.Render(ctx)
	fmt.Fprintf(ctx.Out, "scorecard: %d/%d claims hold\n", r.Passed, len(r.Rows))
}
