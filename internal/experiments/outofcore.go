package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bitcolor/internal/coloring"
	"bitcolor/internal/graph"
	"bitcolor/internal/metrics"
	"bitcolor/internal/partition"
)

// OutOfCoreRow is one dataset × arm measurement of the disk-to-coloring
// path for the sharded engine: the in-core BCSR v2 baseline (map whole
// file, partition in memory, color) against the shard-major BCSR v3
// streaming executor, cold (partition + write + open + stream) and warm
// (reopen an existing v3 file — the persisted partition is the cache,
// so the partition stage collapses to a hash check).
type OutOfCoreRow struct {
	Dataset string
	// Arm is "bcsr-v2-incore", "bcsr-v3-cold" or "bcsr-v3-warm".
	Arm string
	// Bytes is the on-disk file size of the arm's input file.
	Bytes int64
	// Load is open-to-ready (map/open), Partition the partition build
	// (cold) or persisted-assignment check (warm), Write the one-time v3
	// serialization cost (cold arm only), Color the sharded run itself.
	Load, Partition, Write, Color time.Duration
	// PeakResident is the high-water mark of bytes the color stage held
	// mapped at once: the full adjacency footprint in core, the bounded
	// residency window streamed.
	PeakResident int64
	// ResidentShards is the streaming window (0 for the in-core arm).
	ResidentShards int
	// CacheHit records whether the persisted partition was reused (the
	// file's content hash matched the source graph).
	CacheHit bool
	Colors   int
	Edges    int64
}

// Total is the arm's first-byte-to-coloring wall time.
func (r OutOfCoreRow) Total() time.Duration {
	return r.Load + r.Partition + r.Write + r.Color
}

// OutOfCoreResult compares the streaming executor against the in-core
// sharded engine across datasets.
type OutOfCoreResult struct {
	Rows []OutOfCoreRow
	// GeoStreamRatio is the geomean streamed/in-core color-stage ratio —
	// what the bounded residency window costs in pure coloring time.
	GeoStreamRatio float64
	// GeoWarmRatio is the geomean warm/cold total ratio — what the
	// partition cache saves end to end once the v3 file exists.
	GeoWarmRatio float64
	// GeoResidencyRatio is the geomean streamed/in-core peak-resident
	// ratio — the memory side of the same trade.
	GeoResidencyRatio float64
}

// Fixed arm shape: 4 shards, a 2-shard residency window, W=1 so the
// in-core and streamed color loops are like-for-like on any host.
const (
	outOfCoreShards   = 4
	outOfCoreResident = 2
)

// OutOfCore measures the three disk-to-coloring arms per dataset.
func OutOfCore(ctx *Context) (*OutOfCoreResult, error) {
	sharded, ok := coloring.Lookup("sharded")
	if !ok {
		return nil, fmt.Errorf("outofcore: sharded engine missing from registry")
	}
	dir, err := os.MkdirTemp("", "bitcolor-outofcore-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	res := &OutOfCoreResult{}
	var streamRatios, warmRatios, residentRatios []float64
	for _, d := range ctx.Datasets {
		_, prepared, err := ctx.BuildPrepared(d)
		if err != nil {
			return nil, err
		}
		n := prepared.NumVertices()
		edges := prepared.NumEdges()

		// Arm 1 — in-core baseline: map the v2 file, build the partition
		// in memory, color with the in-core sharded engine. The whole
		// adjacency is resident for the entire color stage.
		v2Path := filepath.Join(dir, d.Abbrev+".v2.bcsr")
		if err := graph.SaveBinaryV2File(v2Path, prepared); err != nil {
			return nil, err
		}
		incore := OutOfCoreRow{Dataset: d.Abbrev, Arm: "bcsr-v2-incore", Edges: edges}
		incore.Bytes = fileSize(v2Path)
		start := time.Now()
		m, err := graph.MapBinaryFile(v2Path)
		incore.Load = time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("%s map v2: %w", d.Abbrev, err)
		}
		g := m.Graph()
		start = time.Now()
		a, err := coloring.BuildPartition(g, outOfCoreShards, coloring.PartitionRanges)
		incore.Partition = time.Since(start)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("%s partition: %w", d.Abbrev, err)
		}
		start = time.Now()
		cres, _, err := sharded.Run(ctx.RunCtx(), g, coloring.Options{
			Workers: 1, Shards: outOfCoreShards, Partition: a,
		})
		incore.Color = time.Since(start)
		if cerr := m.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("%s in-core sharded: %w", d.Abbrev, err)
		}
		incore.Colors = cres.NumColors
		incore.PeakResident = int64(n+1)*8 + edges*4
		res.Rows = append(res.Rows, incore)

		// Arm 2 — v3 cold: partition, serialize the shard-major file,
		// open it and stream. Partition + write are the one-time costs
		// the warm arm amortizes away.
		v3Path := filepath.Join(dir, d.Abbrev+".v3.bcsr")
		cold := OutOfCoreRow{Dataset: d.Abbrev, Arm: "bcsr-v3-cold",
			ResidentShards: outOfCoreResident, Edges: edges}
		start = time.Now()
		ca, err := coloring.BuildPartition(prepared, outOfCoreShards, coloring.PartitionRanges)
		cold.Partition = time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("%s cold partition: %w", d.Abbrev, err)
		}
		code, err := partition.StrategyCode(coloring.PartitionRanges)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		if err := graph.SaveBinaryV3File(v3Path, prepared, ca.Parts, ca.K, code); err != nil {
			return nil, fmt.Errorf("%s write v3: %w", d.Abbrev, err)
		}
		cold.Write = time.Since(start)
		cold.Bytes = fileSize(v3Path)
		if err := streamArm(ctx, sharded, v3Path, n, &cold); err != nil {
			return nil, fmt.Errorf("%s cold stream: %w", d.Abbrev, err)
		}
		// The cold arm just paid for the partition it persisted; only a
		// reopen that skips the partition stage counts as a cache hit.
		cold.CacheHit = false
		res.Rows = append(res.Rows, cold)

		// Arm 3 — v3 warm: the file already exists, so opening it IS the
		// partition cache read; the partition stage is just the content
		// hash comparison that guards reuse.
		warm := OutOfCoreRow{Dataset: d.Abbrev, Arm: "bcsr-v3-warm",
			ResidentShards: outOfCoreResident, Edges: edges, Bytes: cold.Bytes}
		if err := streamArm(ctx, sharded, v3Path, n, &warm); err != nil {
			return nil, fmt.Errorf("%s warm stream: %w", d.Abbrev, err)
		}
		res.Rows = append(res.Rows, warm)

		if incore.Colors != cold.Colors || incore.Colors != warm.Colors {
			return nil, fmt.Errorf("%s: arm colors diverge (%d/%d/%d)",
				d.Abbrev, incore.Colors, cold.Colors, warm.Colors)
		}
		streamRatios = append(streamRatios, float64(warm.Color)/float64(incore.Color))
		warmRatios = append(warmRatios, float64(warm.Total())/float64(cold.Total()))
		residentRatios = append(residentRatios, float64(warm.PeakResident)/float64(incore.PeakResident))
	}
	res.GeoStreamRatio = metrics.GeoMean(streamRatios)
	res.GeoWarmRatio = metrics.GeoMean(warmRatios)
	res.GeoResidencyRatio = metrics.GeoMean(residentRatios)
	return res, nil
}

// streamArm opens path as a sharded file, verifies the persisted
// partition against the open handle (the cache-hit check), streams the
// coloring through the bounded residency window, and fills row's Load /
// Color / PeakResident / Colors / CacheHit.
func streamArm(ctx *Context, sharded coloring.EngineInfo, path string, n int, row *OutOfCoreRow) error {
	start := time.Now()
	sf, err := graph.OpenShardedFile(path)
	row.Load = time.Since(start)
	if err != nil {
		return err
	}
	defer sf.Close()
	row.CacheHit = len(sf.Parts()) == n && sf.Shards() == outOfCoreShards
	// The streaming executor needs only the vertex count from the CSR
	// argument; the adjacency comes from the residency window.
	skeleton := &graph.CSR{Offsets: make([]int64, n+1)}
	start = time.Now()
	cres, cst, err := sharded.Run(ctx.RunCtx(), skeleton, coloring.Options{
		Workers: 1, OutOfCore: true, ShardFile: sf,
		MaxResidentShards: outOfCoreResident,
	})
	row.Color = time.Since(start)
	if err != nil {
		return err
	}
	row.Colors = cres.NumColors
	row.PeakResident = cst.PeakMappedBytes
	return nil
}

// fileSize returns the on-disk size, 0 when unreadable.
func fileSize(path string) int64 {
	if st, err := os.Stat(path); err == nil {
		return st.Size()
	}
	return 0
}

// Print writes the out-of-core comparison table.
func (r *OutOfCoreResult) Print(ctx *Context) {
	t := Table{
		Title: "Out-of-core streaming: in-core BCSR v2 vs shard-major BCSR v3 (sharded, 4 shards, residency 2, W=1)",
		Header: []string{"Graph", "Arm", "bytes", "load_ms", "part_ms", "write_ms",
			"color_ms", "total_ms", "peak_MiB", "hit"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Arm, fmt.Sprint(row.Bytes),
			fmt.Sprintf("%.3f", row.Load.Seconds()*1e3),
			fmt.Sprintf("%.3f", row.Partition.Seconds()*1e3),
			fmt.Sprintf("%.3f", row.Write.Seconds()*1e3),
			fmt.Sprintf("%.3f", row.Color.Seconds()*1e3),
			fmt.Sprintf("%.3f", row.Total().Seconds()*1e3),
			fmt.Sprintf("%.2f", float64(row.PeakResident)/(1<<20)),
			fmt.Sprint(row.CacheHit))
	}
	t.Render(ctx)
	fmt.Fprintf(ctx.Out, "geomean streamed/in-core color ratio: %.2fx (residency window vs whole graph resident)\n",
		r.GeoStreamRatio)
	fmt.Fprintf(ctx.Out, "geomean warm/cold total ratio: %.2fx (partition cache: reopen skips partition + write)\n",
		r.GeoWarmRatio)
	fmt.Fprintf(ctx.Out, "geomean streamed/in-core peak-resident ratio: %.2fx (bounded residency memory footprint)\n",
		r.GeoResidencyRatio)
}

// BenchRecords converts the rows to the machine-readable form, one
// record per dataset × arm, carrying the out-of-core additive fields.
func (r *OutOfCoreResult) BenchRecords() []BenchRecord {
	recs := make([]BenchRecord, 0, len(r.Rows))
	for _, row := range r.Rows {
		total := row.Total()
		recs = append(recs, BenchRecord{
			Dataset: row.Dataset, Engine: "sharded", Variant: row.Arm, Workers: 1,
			Colors: row.Colors, WallNanos: total.Nanoseconds(),
			NsPerEdge:         float64(total.Nanoseconds()) / float64(row.Edges),
			ColorNanos:        row.Color.Nanoseconds(),
			LoadNanos:         row.Load.Nanoseconds(),
			Shards:            outOfCoreShards,
			PartitionNanos:    (row.Partition + row.Write).Nanoseconds(),
			ResidentPeakBytes: row.PeakResident,
			CacheHit:          row.CacheHit,
		})
	}
	return recs
}
