package experiments

import (
	"fmt"

	"bitcolor/internal/trace"
)

// LRURow compares recency caching against degree-threshold caching at
// equal capacity on one dataset.
type LRURow struct {
	Dataset   string
	Capacity  int
	LRUHit    float64
	HDCHit    float64
	Advantage float64 // HDC − LRU in hit-rate points
}

// LRUResult holds the §3.2.2 cache-policy study: at the same capacity,
// which policy captures more color reads?
type LRUResult struct {
	Rows []LRURow
}

// LRUvsHDC measures both policies at the paper-scaled capacity on every
// dataset (DBG-ordered graphs, which is what the accelerator sees).
func LRUvsHDC(ctx *Context) (*LRUResult, error) {
	res := &LRUResult{}
	for _, d := range ctx.Datasets {
		_, prepared, err := ctx.BuildPrepared(d)
		if err != nil {
			return nil, err
		}
		capVertices := ctx.CacheVerticesFor(d, prepared.NumVertices())
		if capVertices > prepared.NumVertices() {
			capVertices = prepared.NumVertices()
		}
		lru := trace.LRUHitRate(prepared, capVertices)
		hdc := trace.HotVertexReadShare(prepared, float64(capVertices)/float64(max(prepared.NumVertices(), 1)))
		res.Rows = append(res.Rows, LRURow{
			Dataset:   d.Abbrev,
			Capacity:  capVertices,
			LRUHit:    lru,
			HDCHit:    hdc,
			Advantage: hdc - lru,
		})
	}
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Print writes the cache-policy table.
func (r *LRUResult) Print(ctx *Context) {
	t := Table{
		Title:  "§3.2.2 cache policy: LRU vs degree-threshold (HDC) hit rate at equal capacity",
		Header: []string{"Graph", "Capacity", "LRU hit", "HDC hit", "HDC advantage"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, fmt.Sprint(row.Capacity),
			pct(row.LRUHit), pct(row.HDCHit), pct(row.Advantage))
	}
	t.Render(ctx)
}
