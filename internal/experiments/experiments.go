// Package experiments contains one driver per table and figure in the
// paper's evaluation (§5), each regenerating the corresponding rows or
// series on the synthetic stand-in datasets (or on real SNAP files when
// provided). DESIGN.md carries the experiment index; EXPERIMENTS.md
// records paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"bitcolor/internal/gen"
	"bitcolor/internal/graph"
	"bitcolor/internal/reorder"
)

// Context carries shared experiment configuration.
type Context struct {
	// Datasets to run on, in report order.
	Datasets []gen.Dataset
	// Seed fixes all generators.
	Seed int64
	// Out receives the printed tables.
	Out io.Writer
	// cacheVertices overrides the HVC capacity for scaled-down runs;
	// <= 0 uses a size proportional to each graph (see CacheVerticesFor).
	CacheVertices int
	// CSV switches table rendering to comma-separated output for
	// machine consumption (benchsuite -csv).
	CSV bool
	// JSONDir, when set, receives machine-readable BENCH_<exp>.json
	// files for the experiments that emit BenchRecords (benchsuite -json).
	JSONDir string
	// BaseCtx is the context the experiments run engines under; nil
	// means context.Background(). benchsuite attaches its -listen /
	// -trace-out observer here, so per-round engine telemetry flows
	// through the registry decorator during a suite run.
	BaseCtx context.Context
}

// RunCtx returns the context engine runs should use.
func (c *Context) RunCtx() context.Context {
	if c.BaseCtx != nil {
		return c.BaseCtx
	}
	return context.Background()
}

// NewContext returns a context over the full scaled registry.
func NewContext(out io.Writer) *Context {
	return &Context{Datasets: gen.Registry(), Seed: 1, Out: out}
}

// NewSmallContext returns a fast context for tests.
func NewSmallContext(out io.Writer) *Context {
	return &Context{Datasets: gen.SmallRegistry(), Seed: 1, Out: out}
}

// CacheVerticesFor returns the HVC capacity to use for a scaled stand-in
// of dataset d with n vertices: the explicit override, or a capacity
// covering the same *fraction* of vertices that the paper's 512K-color
// cache covers of the original dataset. ego-Facebook through com-Amazon
// fit entirely (PaperNodes < 512K → full residency); com-LiveJournal is
// ~13% resident, com-Friendster under 1% — reproducing which datasets
// are cache-bound is essential for the Fig 11 and Fig 12 shapes.
func (c *Context) CacheVerticesFor(d gen.Dataset, n int) int {
	if c.CacheVertices > 0 {
		return c.CacheVertices
	}
	frac := 1.0
	if d.PaperNodes > 512*1024 {
		frac = float64(512*1024) / float64(d.PaperNodes)
	}
	capVertices := int(frac * float64(n))
	if capVertices < 64 {
		capVertices = 64
	}
	if capVertices > n && n > 0 {
		capVertices = n
	}
	return capVertices
}

// BuildPrepared generates dataset d and returns the DBG-reordered,
// edge-sorted graph ready for the accelerator, along with the raw graph.
func (c *Context) BuildPrepared(d gen.Dataset) (raw, prepared *graph.CSR, err error) {
	raw, err = d.Build(c.Seed)
	if err != nil {
		return nil, nil, fmt.Errorf("building %s: %w", d.Abbrev, err)
	}
	prepared, _ = reorder.DBG(raw)
	return raw, prepared, nil
}

// Table is a simple aligned-column report.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table in the context's format.
func (t *Table) Render(ctx *Context) {
	if ctx.CSV {
		t.PrintCSV(ctx.Out)
		return
	}
	t.Print(ctx.Out)
}

// PrintCSV writes the table as CSV with a leading title comment.
func (t *Table) PrintCSV(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	writeCSVRow(w, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		if strings.ContainsAny(cell, ",\"\n") {
			cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
		}
		fmt.Fprint(w, cell)
	}
	fmt.Fprintln(w)
}

// Print writes the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(cell, widths[i]))
		}
		return sb.String()
	}
	fmt.Fprintln(w, line(t.Header))
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f2, f1, f0 format floats at fixed precision; pct formats a fraction as
// a percentage.
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f1(x float64) string  { return fmt.Sprintf("%.1f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
