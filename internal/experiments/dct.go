package experiments

import (
	"fmt"
	"runtime"
	"time"

	"bitcolor/internal/coloring"
	"bitcolor/internal/metrics"
)

// DCTRow is one dataset × worker-count measurement of the single-pass
// DCT engine against the two speculative host engines.
type DCTRow struct {
	Dataset string
	Workers int
	// DCT is the owner-computes single-pass engine; Par the fused
	// bit-wise speculative engine; Spec classic Gebremedhin–Manne.
	DCTTime, ParTime, SpecTime    time.Duration
	DCTStats, ParStats, SpecStats metrics.ParallelStats
	DCTColors, ParColors          int
	SpecColors                    int
	// Deterministic records whether the DCT coloring was byte-identical
	// to the sequential bit-wise greedy on the same (DBG) order — the
	// engine's structural guarantee, re-verified per measurement.
	Deterministic bool
	// Edges is the directed adjacency entry count, for ns/edge records.
	Edges int64
}

// DCTResult is the conflict-handling ablation on the host: what does
// replacing speculate-and-repair with defer-and-forward (the paper's
// Data Conflict Table, §4.3) cost or save at equal worker counts? The
// speculative engines may finish a round faster but pay repair rounds
// and lose determinism; the DCT engine does exactly one pass and always
// reproduces sequential greedy.
type DCTResult struct {
	Rows []DCTRow
	// SpeedupVsPar is the geometric-mean DCT advantage over the fused
	// bit-wise speculative engine at the highest worker count (>1 means
	// DCT is faster).
	SpeedupVsPar float64
	// SpeedupVsSpec is the same against classic GM speculation.
	SpeedupVsSpec float64
}

// DCT measures the three engines across the worker sweep on every
// context dataset, verifying the DCT determinism guarantee as it goes.
func DCT(ctx *Context) (*DCTResult, error) {
	res := &DCTResult{}
	dct, okD := coloring.Lookup("dct")
	par, okP := coloring.Lookup("parallelbitwise")
	spec, okS := coloring.Lookup("speculative")
	if !okD || !okP || !okS {
		return nil, fmt.Errorf("dct: host engines missing from registry")
	}
	sweep := hostParWorkerSweep()
	var vsPar, vsSpec []float64
	for _, d := range ctx.Datasets {
		_, prepared, err := ctx.BuildPrepared(d)
		if err != nil {
			return nil, err
		}
		ref, err := coloring.BitwiseGreedy(ctx.RunCtx(), prepared, coloring.MaxColorsDefault, true)
		if err != nil {
			return nil, fmt.Errorf("%s reference: %w", d.Abbrev, err)
		}
		for i, w := range sweep {
			row := DCTRow{Dataset: d.Abbrev, Workers: w, Edges: prepared.NumEdges()}
			opts := coloring.Options{Workers: w}
			start := time.Now()
			dctRes, dctSt, err := dct.Run(ctx.RunCtx(), prepared, opts)
			if err != nil {
				return nil, fmt.Errorf("%s dct: %w", d.Abbrev, err)
			}
			row.DCTTime = time.Since(start)
			row.DCTStats, row.DCTColors = dctSt, dctRes.NumColors
			row.Deterministic = true
			for v := range ref.Colors {
				if dctRes.Colors[v] != ref.Colors[v] {
					row.Deterministic = false
					break
				}
			}
			if !row.Deterministic {
				return nil, fmt.Errorf("%s w=%d: dct coloring diverged from sequential greedy", d.Abbrev, w)
			}
			start = time.Now()
			parRes, parSt, err := par.Run(ctx.RunCtx(), prepared, opts)
			if err != nil {
				return nil, fmt.Errorf("%s parallelbitwise: %w", d.Abbrev, err)
			}
			row.ParTime = time.Since(start)
			row.ParStats, row.ParColors = parSt, parRes.NumColors
			start = time.Now()
			specRes, specSt, err := spec.Run(ctx.RunCtx(), prepared, opts)
			if err != nil {
				return nil, fmt.Errorf("%s speculative: %w", d.Abbrev, err)
			}
			row.SpecTime = time.Since(start)
			row.SpecStats, row.SpecColors = specSt, specRes.NumColors
			if i == len(sweep)-1 {
				vsPar = append(vsPar, metrics.Speedup(row.ParTime, row.DCTTime))
				vsSpec = append(vsSpec, metrics.Speedup(row.SpecTime, row.DCTTime))
			}
			res.Rows = append(res.Rows, row)
		}
	}
	res.SpeedupVsPar = metrics.GeoMean(vsPar)
	res.SpeedupVsSpec = metrics.GeoMean(vsSpec)
	return res, nil
}

// Print writes the conflict-handling ablation table.
func (r *DCTResult) Print(ctx *Context) {
	t := Table{
		Title: "Conflict handling ablation: single-pass DCT forwarding vs speculate-and-repair (equal workers, DBG order)",
		Header: []string{"Graph", "W", "dct_ms", "bw_ms", "gm_ms", "dct_vs_bw",
			"deferred", "retries", "ring_pk", "bw_repairs", "dct_colors", "bw_colors"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, fmt.Sprint(row.Workers),
			fmt.Sprintf("%.2f", row.DCTTime.Seconds()*1e3),
			fmt.Sprintf("%.2f", row.ParTime.Seconds()*1e3),
			fmt.Sprintf("%.2f", row.SpecTime.Seconds()*1e3),
			fmt.Sprintf("%.2fx", metrics.Speedup(row.ParTime, row.DCTTime)),
			fmt.Sprint(row.DCTStats.Deferred), fmt.Sprint(row.DCTStats.DeferRetries),
			fmt.Sprint(row.DCTStats.ForwardRingPeak),
			fmt.Sprint(row.ParStats.ConflictsRepaired),
			fmt.Sprint(row.DCTColors), fmt.Sprint(row.ParColors))
	}
	t.Render(ctx)
	fmt.Fprintf(ctx.Out,
		"geomean dct speedup at max workers: %.2fx vs parallelbitwise, %.2fx vs speculative; every dct run matched sequential greedy exactly\n",
		r.SpeedupVsPar, r.SpeedupVsSpec)
	if runtime.NumCPU() == 1 {
		fmt.Fprintln(ctx.Out,
			"note: single-CPU host — multi-worker rows time-slice on one core, so they measure forwarding overhead, not parallel speedup; W=1 rows are the like-for-like comparison")
	}
}

// BenchRecords converts the ablation rows to the machine-readable form,
// one record per engine per row.
func (r *DCTResult) BenchRecords() []BenchRecord {
	recs := make([]BenchRecord, 0, 3*len(r.Rows))
	for _, row := range r.Rows {
		edges := float64(row.Edges)
		recs = append(recs,
			BenchRecord{
				Dataset: row.Dataset, Engine: "dct", Workers: row.Workers,
				Colors: row.DCTColors, WallNanos: row.DCTTime.Nanoseconds(),
				NsPerEdge: float64(row.DCTTime.Nanoseconds()) / edges,
			},
			BenchRecord{
				Dataset: row.Dataset, Engine: "parallelbitwise", Workers: row.Workers,
				Colors: row.ParColors, WallNanos: row.ParTime.Nanoseconds(),
				NsPerEdge: float64(row.ParTime.Nanoseconds()) / edges,
			},
			BenchRecord{
				Dataset: row.Dataset, Engine: "speculative", Workers: row.Workers,
				Colors: row.SpecColors, WallNanos: row.SpecTime.Nanoseconds(),
				NsPerEdge: float64(row.SpecTime.Nanoseconds()) / edges,
			})
	}
	return recs
}
