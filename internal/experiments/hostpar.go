package experiments

import (
	"fmt"
	"runtime"
	"time"

	"bitcolor/internal/coloring"
	"bitcolor/internal/metrics"
)

// HostParRow is one dataset × worker-count measurement of the two
// host-parallel engines.
type HostParRow struct {
	Dataset string
	Workers int
	// Spec is classic Gebremedhin–Manne (index order, re-round repair);
	// Par is the fused bit-wise engine (degree-order dynamic dispatch,
	// in-place repair).
	SpecTime, ParTime     time.Duration
	SpecStats, ParStats   metrics.ParallelStats
	SpecColors, ParColors int
	// Edges is the directed adjacency entry count, for ns/edge records.
	Edges int64
}

// HostParResult is the host-side multicore baseline study: how the
// bit-wise speculative engine scales against classic GM speculation.
// This is the CPU number the accelerator's Fig 13 speedups should be
// judged against on modern multicore hosts.
type HostParResult struct {
	Rows []HostParRow
	// AvgSpeedup is the geometric-mean ParTime advantage over SpecTime
	// at the highest worker count.
	AvgSpeedup float64
}

// hostParWorkerSweep is the worker counts measured per dataset.
func hostParWorkerSweep() []int {
	sweep := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		sweep = append(sweep, p)
	}
	return sweep
}

// HostPar measures both host-parallel engines across the worker sweep.
func HostPar(ctx *Context) (*HostParResult, error) {
	res := &HostParResult{}
	var speedups []float64
	sweep := hostParWorkerSweep()
	for _, d := range ctx.Datasets {
		_, prepared, err := ctx.BuildPrepared(d)
		if err != nil {
			return nil, err
		}
		// Both engines resolve through the registry — the same dispatch
		// path the public API and CLIs use.
		spec, okS := coloring.Lookup("speculative")
		par, okP := coloring.Lookup("parallelbitwise")
		if !okS || !okP {
			return nil, fmt.Errorf("hostpar: parallel engines missing from registry")
		}
		for i, w := range sweep {
			row := HostParRow{Dataset: d.Abbrev, Workers: w, Edges: prepared.NumEdges()}
			opts := coloring.Options{Workers: w}
			start := time.Now()
			specRes, specSt, err := spec.Run(ctx.RunCtx(), prepared, opts)
			if err != nil {
				return nil, fmt.Errorf("%s speculative: %w", d.Abbrev, err)
			}
			row.SpecTime = time.Since(start)
			row.SpecStats, row.SpecColors = specSt, specRes.NumColors
			start = time.Now()
			parRes, parSt, err := par.Run(ctx.RunCtx(), prepared, opts)
			if err != nil {
				return nil, fmt.Errorf("%s parallelbitwise: %w", d.Abbrev, err)
			}
			row.ParTime = time.Since(start)
			row.ParStats, row.ParColors = parSt, parRes.NumColors
			if i == len(sweep)-1 {
				speedups = append(speedups, metrics.Speedup(row.SpecTime, row.ParTime))
			}
			res.Rows = append(res.Rows, row)
		}
	}
	res.AvgSpeedup = metrics.GeoMean(speedups)
	return res, nil
}

// Print writes the host-parallel comparison table.
func (r *HostParResult) Print(ctx *Context) {
	t := Table{
		Title: "Host-parallel engines: GM re-round speculation vs fused bit-wise in-place repair (time, rounds, repairs, colors)",
		Header: []string{"Graph", "W", "gm_ms", "bw_ms", "bw_speedup",
			"gm_rounds", "bw_rounds", "gm_repairs", "bw_repairs", "gm_colors", "bw_colors"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, fmt.Sprint(row.Workers),
			fmt.Sprintf("%.2f", row.SpecTime.Seconds()*1e3),
			fmt.Sprintf("%.2f", row.ParTime.Seconds()*1e3),
			fmt.Sprintf("%.2fx", metrics.Speedup(row.SpecTime, row.ParTime)),
			fmt.Sprint(row.SpecStats.Rounds), fmt.Sprint(row.ParStats.Rounds),
			fmt.Sprint(row.SpecStats.ConflictsRepaired), fmt.Sprint(row.ParStats.ConflictsRepaired),
			fmt.Sprint(row.SpecColors), fmt.Sprint(row.ParColors))
	}
	t.Render(ctx)
	fmt.Fprintf(ctx.Out, "geomean bit-wise speedup at max workers: %.2fx\n", r.AvgSpeedup)
}

// BenchRecords converts the comparison rows to the machine-readable
// form, one record per engine per row.
func (r *HostParResult) BenchRecords() []BenchRecord {
	recs := make([]BenchRecord, 0, 2*len(r.Rows))
	for _, row := range r.Rows {
		edges := float64(row.Edges)
		recs = append(recs,
			BenchRecord{
				Dataset: row.Dataset, Engine: "speculative", Workers: row.Workers,
				Colors: row.SpecColors, WallNanos: row.SpecTime.Nanoseconds(),
				NsPerEdge: float64(row.SpecTime.Nanoseconds()) / edges,
			},
			BenchRecord{
				Dataset: row.Dataset, Engine: "parallelbitwise", Workers: row.Workers,
				Colors: row.ParColors, WallNanos: row.ParTime.Nanoseconds(),
				NsPerEdge: float64(row.ParTime.Nanoseconds()) / edges,
			})
	}
	return recs
}
