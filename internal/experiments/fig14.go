package experiments

import (
	"fmt"

	"bitcolor/internal/resources"
)

// Fig14Result is the resource/frequency sweep of Fig 14.
type Fig14Result struct {
	Usages []resources.Usage
}

// Fig14 evaluates the analytic resource model over the parallelism axis.
func Fig14(ctx *Context) (*Fig14Result, error) {
	sweep, err := resources.DefaultModel().Sweep()
	if err != nil {
		return nil, err
	}
	return &Fig14Result{Usages: sweep}, nil
}

// Print writes the Fig 14 table.
func (r *Fig14Result) Print(ctx *Context) {
	t := Table{
		Title:  "Fig 14: resource utilization and frequency by parallelism (paper P16: 51.1% REG, 47.8% LUT, 96.7% BRAM, >200MHz)",
		Header: []string{"P", "LUTs", "LUT%", "Registers", "REG%", "BRAM Mb", "BRAM%", "MHz"},
	}
	for _, u := range r.Usages {
		t.AddRow(
			fmt.Sprint(u.Parallelism),
			fmt.Sprint(u.LUTs), pct(u.LUTFrac),
			fmt.Sprint(u.Registers), pct(u.REGFrac),
			f1(float64(u.BRAMBits)/1e6), pct(u.BRAMFrac),
			f1(u.FrequencyMHz),
		)
	}
	t.Render(ctx)
}

// CacheAblationResult compares the proposed bit-selection multi-port
// cache against the LVT design (§4.4).
type CacheAblationResult struct {
	Rows []CacheAblationRow
}

// CacheAblationRow is one parallelism point.
type CacheAblationRow struct {
	Parallelism      int
	ProposedBits     int64
	LVTBits          int64
	Ratio            float64 // proposed / LVT
	LVTFitsU200      bool
	ProposedFitsU200 bool
}

// CacheAblation evaluates the §4.4 BRAM cost comparison.
func CacheAblation(ctx *Context) (*CacheAblationResult, error) {
	m := resources.DefaultModel()
	res := &CacheAblationResult{}
	for _, p := range []int64{1, 2, 4, 8, 16} {
		u, err := m.Estimate(int(p))
		if err != nil {
			return nil, err
		}
		_ = u
		proposed := m.CacheVertices * 16
		if p > 1 {
			proposed = p * m.CacheVertices / 2 * 16
		}
		lvt := m.LVTCacheBits(p)
		res.Rows = append(res.Rows, CacheAblationRow{
			Parallelism:      int(p),
			ProposedBits:     proposed,
			LVTBits:          lvt,
			Ratio:            float64(proposed) / float64(lvt),
			LVTFitsU200:      lvt <= resources.U200BRAMBits,
			ProposedFitsU200: proposed <= resources.U200BRAMBits,
		})
	}
	return res, nil
}

// Print writes the cache ablation table.
func (r *CacheAblationResult) Print(ctx *Context) {
	t := Table{
		Title:  "§4.4 ablation: multi-port cache BRAM, bit-selection vs LVT (proposed = 2/P of LVT)",
		Header: []string{"P", "Proposed Mb", "LVT Mb", "Ratio", "Proposed fits U200", "LVT fits U200"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.Parallelism),
			f1(float64(row.ProposedBits)/1e6), f1(float64(row.LVTBits)/1e6),
			f2(row.Ratio),
			fmt.Sprint(row.ProposedFitsU200), fmt.Sprint(row.LVTFitsU200))
	}
	t.Render(ctx)
}
