package experiments

import (
	"fmt"

	"bitcolor/internal/graph"
)

// Table3Row describes one dataset: the paper's original size and the
// synthetic stand-in actually used.
type Table3Row struct {
	Abbrev, Name, Category     string
	PaperNodes, PaperEdges     int64
	StandinNodes, StandinEdges int64
	MaxDegree                  int
	Gini                       float64
}

// Table3Result reproduces the dataset inventory (paper Table 3),
// extended with the stand-in sizes and shape statistics so the scaling
// is transparent.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 builds every dataset and reports both scales.
func Table3(ctx *Context) (*Table3Result, error) {
	res := &Table3Result{}
	for _, d := range ctx.Datasets {
		g, err := d.Build(ctx.Seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Abbrev, err)
		}
		s := graph.ComputeStats(g)
		res.Rows = append(res.Rows, Table3Row{
			Abbrev: d.Abbrev, Name: d.Name, Category: d.Category,
			PaperNodes: d.PaperNodes, PaperEdges: d.PaperEdges,
			StandinNodes: int64(g.NumVertices()), StandinEdges: s.UndirectedEdges,
			MaxDegree: s.MaxDegree, Gini: s.GiniDegree,
		})
	}
	return res, nil
}

// Print writes the Table 3 report.
func (r *Table3Result) Print(ctx *Context) {
	t := Table{
		Title: "Table 3: datasets — paper originals and synthetic stand-ins",
		Header: []string{"Abbrev", "Name", "Category", "Paper V", "Paper E",
			"Stand-in V", "Stand-in E", "Max deg", "Gini"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Abbrev, row.Name, row.Category,
			human(row.PaperNodes), human(row.PaperEdges),
			human(row.StandinNodes), human(row.StandinEdges),
			fmt.Sprint(row.MaxDegree), f2(row.Gini))
	}
	t.Render(ctx)
}

// human formats counts with K/M/B suffixes.
func human(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.1fB", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprint(n)
	}
}
