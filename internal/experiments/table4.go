package experiments

import (
	"fmt"

	"bitcolor/internal/coloring"
	"bitcolor/internal/metrics"
)

// Table4Row is one dataset's color count before and after preprocessing.
type Table4Row struct {
	Dataset   string
	Baseline  int // greedy on the raw graph (original vertex order)
	Sorted    int // greedy after DBG reordering + edge sorting
	Reduction float64
}

// Table4Result holds all rows plus the average reduction (paper: 9.3%).
type Table4Result struct {
	Rows         []Table4Row
	AvgReduction float64
}

// Table4 reproduces the color-count comparison. Interpretation note
// (recorded in EXPERIMENTS.md): first-fit greedy's color count is
// independent of the order neighbors appear within an adjacency list, so
// the within-list edge sort cannot change it by itself. What the paper's
// preprocessing actually changes is the coloring *order*: after DBG the
// vertices are colored in descending-degree (Welsh–Powell) order, which
// is the mechanism that lowers color counts on skewed graphs and leaves
// the regular road networks unchanged — exactly the pattern of the
// paper's Table 4 (CO 116→87, road networks 5→5). We therefore compare
// greedy on the raw ordering against greedy after the full preprocessing
// pipeline.
func Table4(ctx *Context) (*Table4Result, error) {
	res := &Table4Result{}
	var reds []float64
	for _, d := range ctx.Datasets {
		raw, prepared, err := ctx.BuildPrepared(d)
		if err != nil {
			return nil, err
		}
		base, err := coloring.BitwiseGreedy(ctx.RunCtx(), raw, coloring.MaxColorsDefault, true)
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", d.Abbrev, err)
		}
		sorted, err := coloring.BitwiseGreedy(ctx.RunCtx(), prepared, coloring.MaxColorsDefault, true)
		if err != nil {
			return nil, fmt.Errorf("%s sorted: %w", d.Abbrev, err)
		}
		red := 0.0
		if base.NumColors > 0 {
			red = 1 - float64(sorted.NumColors)/float64(base.NumColors)
		}
		reds = append(reds, red)
		res.Rows = append(res.Rows, Table4Row{
			Dataset: d.Abbrev, Baseline: base.NumColors, Sorted: sorted.NumColors, Reduction: red,
		})
	}
	res.AvgReduction = metrics.Mean(reds)
	return res, nil
}

// Print writes the Table 4 report.
func (r *Table4Result) Print(ctx *Context) {
	t := Table{
		Title:  "Table 4: color count, raw order (BSL) vs DBG+sorted preprocessing (paper avg reduction 9.3%)",
		Header: []string{"Graph", "BSL", "Sorted", "Reduction"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, fmt.Sprint(row.Baseline), fmt.Sprint(row.Sorted), pct(row.Reduction))
	}
	t.Render(ctx)
	fmt.Fprintf(ctx.Out, "average color reduction: %s\n", pct(r.AvgReduction))
}
