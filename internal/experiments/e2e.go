package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bitcolor/internal/coloring"
	"bitcolor/internal/graph"
	"bitcolor/internal/metrics"
)

// E2ERow is one dataset × on-disk-format measurement of the
// first-byte-to-coloring path: how long from opening the file to a
// finished (deterministic, dct w=1) coloring, split into load /
// validate / color, against the warm pure-color time on the already
// resident graph.
type E2ERow struct {
	Dataset string
	// Format is the on-disk format label ("edgelist", "bcsr-v1",
	// "bcsr-v2"); Mapped records whether the v2 load actually mapped
	// (false on platforms or files that fell back to copying).
	Format string
	Mapped bool
	// Bytes is the on-disk file size.
	Bytes int64
	// Load is open-to-CSR; Validate an explicit structural re-check;
	// Color the first dct w=1 run on the freshly loaded graph.
	Load, Validate, Color time.Duration
	// PureColor is the fastest of several warm runs on the resident
	// graph — the denominator that makes LoadRatio machine-portable.
	PureColor time.Duration
	// LoadRatio is (Load+Validate+Color)/PureColor: 1.0 would mean the
	// load added nothing over coloring a graph already in memory.
	LoadRatio float64
	Colors    int
	Edges     int64
}

// E2EResult is the end-to-end load-path comparison: text edge list vs
// copying binary v1 vs mapped binary v2, per dataset, with geometric
// means per format across datasets.
type E2EResult struct {
	Rows []E2ERow
	// GeoRatio maps format → geomean LoadRatio across datasets.
	GeoRatio map[string]float64
}

// e2eFormats lists the load-path arms in report order.
var e2eFormats = []string{graph.FormatEdgeList, graph.FormatBCSR1, graph.FormatBCSR2}

// E2E measures the first-byte-to-coloring wall time per on-disk format.
// Each dataset is materialized in all three formats in a temp directory,
// then loaded and colored once per format (dct at one worker, so the
// color stage is deterministic and allocation-light); the warm
// pure-color time on the resident graph anchors the ratio.
func E2E(ctx *Context) (*E2EResult, error) {
	dct, ok := coloring.Lookup("dct")
	if !ok {
		return nil, fmt.Errorf("e2e: dct engine missing from registry")
	}
	dir, err := os.MkdirTemp("", "bitcolor-e2e-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	res := &E2EResult{GeoRatio: map[string]float64{}}
	ratios := map[string][]float64{}
	opts := coloring.Options{Workers: 1}
	for _, d := range ctx.Datasets {
		_, prepared, err := ctx.BuildPrepared(d)
		if err != nil {
			return nil, err
		}
		paths := map[string]string{
			graph.FormatEdgeList: filepath.Join(dir, d.Abbrev+".txt"),
			graph.FormatBCSR1:    filepath.Join(dir, d.Abbrev+".v1.bcsr"),
			graph.FormatBCSR2:    filepath.Join(dir, d.Abbrev+".v2.bcsr"),
		}
		f, err := os.Create(paths[graph.FormatEdgeList])
		if err != nil {
			return nil, err
		}
		if err := graph.WriteEdgeList(f, prepared); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		if err := graph.SaveBinaryFile(paths[graph.FormatBCSR1], prepared); err != nil {
			return nil, err
		}
		if err := graph.SaveBinaryV2File(paths[graph.FormatBCSR2], prepared); err != nil {
			return nil, err
		}

		// Warm pure-color reference on the resident graph: best of 3
		// strips scheduler noise, and warms the dct code paths so the
		// per-format cold color isn't paying first-run effects twice.
		pure := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, _, err := dct.Run(ctx.RunCtx(), prepared, opts); err != nil {
				return nil, fmt.Errorf("%s warm dct: %w", d.Abbrev, err)
			}
			if e := time.Since(start); e < pure {
				pure = e
			}
		}

		for _, format := range e2eFormats {
			row := E2ERow{Dataset: d.Abbrev, Format: format, PureColor: pure, Edges: prepared.NumEdges()}
			if st, err := os.Stat(paths[format]); err == nil {
				row.Bytes = st.Size()
			}
			var (
				g      *graph.CSR
				closer interface{ Close() error }
			)
			start := time.Now()
			switch format {
			case graph.FormatEdgeList:
				g, err = graph.LoadEdgeListFile(paths[format])
			case graph.FormatBCSR1:
				g, err = graph.LoadBinaryFile(paths[format])
			case graph.FormatBCSR2:
				var m *graph.MappedCSR
				m, err = graph.MapBinaryFile(paths[format])
				if err == nil {
					g, closer, row.Mapped = m.Graph(), m, m.Mapped()
				}
			}
			row.Load = time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("%s load %s: %w", d.Abbrev, format, err)
			}
			start = time.Now()
			if err := g.Validate(); err != nil {
				return nil, fmt.Errorf("%s validate %s: %w", d.Abbrev, format, err)
			}
			row.Validate = time.Since(start)
			start = time.Now()
			cres, _, err := dct.Run(ctx.RunCtx(), g, opts)
			row.Color = time.Since(start)
			if closer != nil {
				if cerr := closer.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
			if err != nil {
				return nil, fmt.Errorf("%s color %s: %w", d.Abbrev, format, err)
			}
			row.Colors = cres.NumColors
			row.LoadRatio = float64(row.Load+row.Validate+row.Color) / float64(pure)
			ratios[format] = append(ratios[format], row.LoadRatio)
			res.Rows = append(res.Rows, row)
		}
	}
	for format, rs := range ratios {
		res.GeoRatio[format] = metrics.GeoMean(rs)
	}
	return res, nil
}

// Print writes the end-to-end load-path table.
func (r *E2EResult) Print(ctx *Context) {
	t := Table{
		Title: "End-to-end load path: first byte to finished coloring (dct w=1) per on-disk format",
		Header: []string{"Graph", "Format", "mapped", "bytes", "load_ms", "validate_ms",
			"color_ms", "pure_ms", "ratio"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Format, fmt.Sprint(row.Mapped), fmt.Sprint(row.Bytes),
			fmt.Sprintf("%.3f", row.Load.Seconds()*1e3),
			fmt.Sprintf("%.3f", row.Validate.Seconds()*1e3),
			fmt.Sprintf("%.3f", row.Color.Seconds()*1e3),
			fmt.Sprintf("%.3f", row.PureColor.Seconds()*1e3),
			fmt.Sprintf("%.2fx", row.LoadRatio))
	}
	t.Render(ctx)
	for _, format := range e2eFormats {
		if geo, ok := r.GeoRatio[format]; ok {
			fmt.Fprintf(ctx.Out, "geomean load ratio %-9s %.2fx (1.0 = load added nothing over a resident graph)\n",
				format+":", geo)
		}
	}
}

// BenchRecords converts the rows to the machine-readable form, one
// record per dataset × format, carrying the stage breakdown in the
// additive e2e fields.
func (r *E2EResult) BenchRecords() []BenchRecord {
	recs := make([]BenchRecord, 0, len(r.Rows))
	for _, row := range r.Rows {
		variant := row.Format
		if row.Mapped {
			variant += "-mapped"
		}
		total := row.Load + row.Validate + row.Color
		recs = append(recs, BenchRecord{
			Dataset: row.Dataset, Engine: "dct", Variant: variant, Workers: 1,
			Colors: row.Colors, WallNanos: total.Nanoseconds(),
			NsPerEdge:     float64(total.Nanoseconds()) / float64(row.Edges),
			LoadNanos:     row.Load.Nanoseconds(),
			ValidateNanos: row.Validate.Nanoseconds(),
			ColorNanos:    row.Color.Nanoseconds(),
			LoadRatio:     row.LoadRatio,
		})
	}
	return recs
}
