package experiments

import (
	"fmt"

	"bitcolor/internal/metrics"
	"bitcolor/internal/sim"
)

// Fig12Parallelisms is the parallelism axis of Fig 12.
var Fig12Parallelisms = []int{1, 2, 4, 8, 16}

// Fig12Row is one dataset's speedup series over P=1.
type Fig12Row struct {
	Dataset  string
	Cycles   []int64
	Speedups []float64 // vs P=1, aligned with Fig12Parallelisms
}

// Fig12Result holds all rows plus the P16 speedup range (paper:
// 3.92×–7.01× at 16 BWPEs).
type Fig12Result struct {
	Parallelisms           []int
	Rows                   []Fig12Row
	MinP16, MaxP16, AvgP16 float64
}

// Fig12 measures BitColor's scaling with the number of BWPEs.
func Fig12(ctx *Context) (*Fig12Result, error) {
	res := &Fig12Result{Parallelisms: Fig12Parallelisms}
	var p16s []float64
	for _, d := range ctx.Datasets {
		_, prepared, err := ctx.BuildPrepared(d)
		if err != nil {
			return nil, err
		}
		row := Fig12Row{Dataset: d.Abbrev}
		for _, p := range Fig12Parallelisms {
			cfg := sim.DefaultConfig(p)
			cfg.CacheVertices = ctx.CacheVerticesFor(d, prepared.NumVertices())
			r, err := sim.Run(prepared, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s P=%d: %w", d.Abbrev, p, err)
			}
			row.Cycles = append(row.Cycles, r.TotalCycles)
		}
		base := float64(row.Cycles[0])
		for _, c := range row.Cycles {
			row.Speedups = append(row.Speedups, base/float64(c))
		}
		p16 := row.Speedups[len(row.Speedups)-1]
		p16s = append(p16s, p16)
		if res.MinP16 == 0 || p16 < res.MinP16 {
			res.MinP16 = p16
		}
		if p16 > res.MaxP16 {
			res.MaxP16 = p16
		}
		res.Rows = append(res.Rows, row)
	}
	res.AvgP16 = metrics.Mean(p16s)
	return res, nil
}

// Print writes the Fig 12 table.
func (r *Fig12Result) Print(ctx *Context) {
	header := []string{"Graph"}
	for _, p := range r.Parallelisms {
		header = append(header, fmt.Sprintf("P%d", p))
	}
	t := Table{
		Title:  "Fig 12: speedup over one BWPE by parallelism (paper P16: 3.92x-7.01x)",
		Header: header,
	}
	for _, row := range r.Rows {
		cells := []string{row.Dataset}
		for _, s := range row.Speedups {
			cells = append(cells, f2(s))
		}
		t.AddRow(cells...)
	}
	t.Render(ctx)
	fmt.Fprintf(ctx.Out, "P16 speedup: min %.2fx, max %.2fx, avg %.2fx\n",
		r.MinP16, r.MaxP16, r.AvgP16)
}
