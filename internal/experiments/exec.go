package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bitcolor/internal/exec"
)

// The exec experiment measures what the PR-8 refactor cost: the four
// parallel engines used to hand-roll their own atomic cursor and
// go/WaitGroup spawn, and now route through exec.Blocks (shared cursor,
// ctx-stride polling, first-error collection). This micro-benchmark runs
// the same synthetic block workload through both shapes so the dispatch
// overhead is isolated from any coloring kernel, and benchguard pins the
// ratio so the substrate can never quietly grow slower than the inline
// loops it replaced.

// execBenchItems sizes the synthetic workload: 2^21 items at ~4 ops each
// is long enough that per-block dispatch overhead is the measured
// quantity, not goroutine startup.
const execBenchItems = 1 << 21

// execWorkRange is the per-block kernel both arms run: a cheap xorshift
// mix folded into an accumulator, standing in for a speculation loop's
// per-vertex work. The returned checksum keeps the compiler from
// discarding the loop and lets the experiment assert both dispatch
// shapes visited exactly the same items.
func execWorkRange(data []uint64, lo, hi int) uint64 {
	var acc uint64
	for _, x := range data[lo:hi] {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		acc += x
	}
	return acc
}

// execInlineDispatch replicates the pre-refactor engine scaffolding
// verbatim: a private atomic block cursor claimed in DispatchBlock
// chunks by hand-spawned goroutines joined on a WaitGroup.
func execInlineDispatch(workers int, data []uint64) uint64 {
	var cursor atomic.Int64
	var sum atomic.Uint64
	n := int64(len(data))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var acc uint64
			for {
				lo := cursor.Add(exec.DispatchBlock) - exec.DispatchBlock
				if lo >= n {
					break
				}
				hi := lo + exec.DispatchBlock
				if hi > n {
					hi = n
				}
				acc += execWorkRange(data, int(lo), int(hi))
			}
			sum.Add(acc)
		}()
	}
	wg.Wait()
	return sum.Load()
}

// execBlocksDispatch runs the identical workload through the shared
// substrate the engines now use.
func execBlocksDispatch(ctx *Context, workers int, data []uint64) (uint64, error) {
	var cur exec.BlockCursor
	cur.Reset(len(data))
	// One padded slot per worker so the accumulators don't false-share.
	sums := make([]uint64, workers*8)
	err := exec.Blocks(ctx.RunCtx(), workers, &cur, func(w, lo, hi int) error {
		sums[w*8] += execWorkRange(data, lo, hi)
		return nil
	})
	if err != nil {
		return 0, err
	}
	var total uint64
	for w := 0; w < workers; w++ {
		total += sums[w*8]
	}
	return total, nil
}

// ExecRow is one worker-count measurement of both dispatch shapes.
type ExecRow struct {
	Workers    int
	InlineTime time.Duration
	ExecTime   time.Duration
	// Ratio is ExecTime/InlineTime — >1 means the substrate is slower.
	Ratio float64
}

// ExecResult is the dispatch-overhead study.
type ExecResult struct {
	Items int
	Rows  []ExecRow
}

// ExecDispatch measures exec.Blocks against the pre-refactor inline
// cursor loop on the synthetic workload at 1, 2 and 4 workers.
func ExecDispatch(ctx *Context) (*ExecResult, error) {
	data := make([]uint64, execBenchItems)
	for i := range data {
		// Deterministic non-trivial fill (splitmix-style increment).
		data[i] = uint64(i)*0x9e3779b97f4a7c15 + uint64(ctx.Seed)
	}
	res := &ExecResult{Items: len(data)}
	best := func(f func() (uint64, error)) (time.Duration, uint64, error) {
		var (
			bestD time.Duration
			sum   uint64
		)
		for i := 0; i < 3; i++ {
			start := time.Now()
			s, err := f()
			d := time.Since(start)
			if err != nil {
				return 0, 0, err
			}
			if i == 0 || d < bestD {
				bestD = d
			}
			sum = s
		}
		return bestD, sum, nil
	}
	for _, w := range []int{1, 2, 4} {
		inlineD, inlineSum, err := best(func() (uint64, error) {
			return execInlineDispatch(w, data), nil
		})
		if err != nil {
			return nil, err
		}
		execD, execSum, err := best(func() (uint64, error) {
			return execBlocksDispatch(ctx, w, data)
		})
		if err != nil {
			return nil, err
		}
		if inlineSum != execSum {
			return nil, fmt.Errorf("exec: w=%d checksum mismatch: inline %#x vs exec.Blocks %#x", w, inlineSum, execSum)
		}
		res.Rows = append(res.Rows, ExecRow{
			Workers:    w,
			InlineTime: inlineD,
			ExecTime:   execD,
			Ratio:      float64(execD) / float64(inlineD),
		})
	}
	return res, nil
}

// Print writes the dispatch-overhead table.
func (r *ExecResult) Print(ctx *Context) {
	t := Table{
		Title:  fmt.Sprintf("exec.Blocks dispatch overhead vs pre-refactor inline cursor loop (%d items, best of 3)", r.Items),
		Header: []string{"W", "inline_ms", "exec_ms", "exec/inline"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.Workers),
			fmt.Sprintf("%.3f", row.InlineTime.Seconds()*1e3),
			fmt.Sprintf("%.3f", row.ExecTime.Seconds()*1e3),
			f2(row.Ratio))
	}
	t.Render(ctx)
}

// BenchRecords converts the rows to machine-readable form, one record
// per dispatch shape per worker count. The synthetic workload has no
// dataset or edges; NsPerEdge carries ns per item instead.
func (r *ExecResult) BenchRecords() []BenchRecord {
	recs := make([]BenchRecord, 0, 2*len(r.Rows))
	for _, row := range r.Rows {
		items := float64(r.Items)
		recs = append(recs,
			BenchRecord{
				Dataset: "synthetic", Engine: "inline", Workers: row.Workers,
				WallNanos: row.InlineTime.Nanoseconds(),
				NsPerEdge: float64(row.InlineTime.Nanoseconds()) / items,
			},
			BenchRecord{
				Dataset: "synthetic", Engine: "execblocks", Workers: row.Workers,
				WallNanos: row.ExecTime.Nanoseconds(),
				NsPerEdge: float64(row.ExecTime.Nanoseconds()) / items,
			})
	}
	return recs
}
