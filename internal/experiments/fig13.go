package experiments

import (
	"fmt"
	"time"

	"bitcolor/internal/coloring"
	"bitcolor/internal/cpuref"
	"bitcolor/internal/gpusim"
	"bitcolor/internal/metrics"
	"bitcolor/internal/sim"
)

// Fig13Result holds the CPU/GPU/FPGA comparison (paper Fig 13 + the
// throughput and energy numbers of §5.3: 54.9× over CPU, 2.71× over GPU;
// 0.88 / 15.3 / 41.6 MCV/s; 12 / 19 / 156 KCV/J).
type Fig13Result struct {
	Rows []metrics.Comparison
	// Averages across datasets.
	AvgSpeedupCPU, AvgSpeedupGPU           float64
	AvgCPUMCVps, AvgGPUMCVps, AvgFPGAMCVps float64
	AvgCPUKCVpj, AvgGPUKCVpj, AvgFPGAKCVpj float64
}

// Fig13Parallelism is the accelerator configuration used for the
// comparison (the paper's largest instance).
const Fig13Parallelism = 16

// Fig13 runs the three platforms on every dataset.
func Fig13(ctx *Context) (*Fig13Result, error) {
	res := &Fig13Result{}
	var sCPU, sGPU []float64
	var mCPU, mGPU, mFPGA, eCPU, eGPU, eFPGA []float64
	for _, d := range ctx.Datasets {
		_, prepared, err := ctx.BuildPrepared(d)
		if err != nil {
			return nil, err
		}
		n := prepared.NumVertices()

		// CPU: basic greedy under the Xeon cost model, with per-access
		// costs taken at the paper-scale working set.
		cpuModel := cpuref.DefaultCostModel()
		cpuModel.WorkingSetVertices = d.PaperNodes
		_, _, cpuTime, err := cpuref.Run(prepared, coloring.MaxColorsDefault, cpuModel)
		if err != nil {
			return nil, fmt.Errorf("%s cpu: %w", d.Abbrev, err)
		}

		// GPU: Gunrock-style independent-set coloring under the Titan V
		// cost model, same working-set convention.
		gpuModel := gpusim.DefaultCostModel()
		gpuModel.WorkingSetVertices = d.PaperNodes
		gpu, err := gpusim.Run(prepared, coloring.MaxColorsDefault, ctx.Seed, gpuModel)
		if err != nil {
			return nil, fmt.Errorf("%s gpu: %w", d.Abbrev, err)
		}

		// FPGA: the full BitColor instance.
		cfg := sim.DefaultConfig(Fig13Parallelism)
		cfg.CacheVertices = ctx.CacheVerticesFor(d, n)
		fpga, err := sim.Run(prepared, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s fpga: %w", d.Abbrev, err)
		}
		fpgaTime := time.Duration(fpga.Seconds * float64(time.Second))

		row := metrics.NewComparison(d.Abbrev, n, cpuTime, gpu.Duration, fpgaTime)
		res.Rows = append(res.Rows, row)
		sCPU = append(sCPU, row.SpeedupVsCPU)
		sGPU = append(sGPU, row.SpeedupVsGPU)
		mCPU = append(mCPU, row.CPUMCVps)
		mGPU = append(mGPU, row.GPUMCVps)
		mFPGA = append(mFPGA, row.FPGAMCVps)
		eCPU = append(eCPU, row.CPUKCVpj)
		eGPU = append(eGPU, row.GPUKCVpj)
		eFPGA = append(eFPGA, row.FPGAKCVpj)
	}
	res.AvgSpeedupCPU = metrics.Mean(sCPU)
	res.AvgSpeedupGPU = metrics.Mean(sGPU)
	res.AvgCPUMCVps = metrics.Mean(mCPU)
	res.AvgGPUMCVps = metrics.Mean(mGPU)
	res.AvgFPGAMCVps = metrics.Mean(mFPGA)
	res.AvgCPUKCVpj = metrics.Mean(eCPU)
	res.AvgGPUKCVpj = metrics.Mean(eGPU)
	res.AvgFPGAKCVpj = metrics.Mean(eFPGA)
	return res, nil
}

// Print writes the Fig 13 tables.
func (r *Fig13Result) Print(ctx *Context) {
	t := Table{
		Title:  "Fig 13: BitColor speedup over CPU and GPU (paper avg: 54.9x CPU, 2.71x GPU)",
		Header: []string{"Graph", "CPU time", "GPU time", "FPGA time", "vs CPU", "vs GPU"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Dataset,
			row.CPUTime.Round(time.Microsecond).String(),
			row.GPUTime.Round(time.Microsecond).String(),
			row.FPGATime.Round(time.Microsecond).String(),
			f1(row.SpeedupVsCPU)+"x", f2(row.SpeedupVsGPU)+"x")
	}
	t.AddRow("AVG", "", "", "", f1(r.AvgSpeedupCPU)+"x", f2(r.AvgSpeedupGPU)+"x")
	t.Render(ctx)

	t2 := Table{
		Title:  "§5.3 throughput and energy (paper: 0.88/15.3/41.6 MCV/s; 12/19/156 KCV/J)",
		Header: []string{"Metric", "CPU", "GPU", "BitColor"},
	}
	t2.AddRow("MCV/s", f2(r.AvgCPUMCVps), f2(r.AvgGPUMCVps), f2(r.AvgFPGAMCVps))
	t2.AddRow("KCV/J", f1(r.AvgCPUKCVpj), f1(r.AvgGPUKCVpj), f1(r.AvgFPGAKCVpj))
	t2.Render(ctx)
}
