package experiments

import (
	"fmt"

	"bitcolor/internal/sim"
)

// MultiCardRow is one (dataset, cards) scale-out measurement.
type MultiCardRow struct {
	Dataset          string
	Cards            int
	BoundaryFraction float64
	InteriorCycles   int64
	BoundaryCycles   int64
	TotalCycles      int64
	Speedup          float64 // vs 1 card
}

// MultiCardResult is the scale-out extension study: partition the graph
// over K simulated boards, color interiors in parallel and the boundary
// sequentially. Index-local graphs scale; DBG-reordered power-law graphs
// drown in boundary work — the quantitative limit of naive multi-board
// BitColor.
type MultiCardResult struct {
	Rows []MultiCardRow
}

// MultiCard sweeps K ∈ {1,2,4} per dataset at P=4 per card. The
// partition is taken on the *raw* vertex layout (road networks keep
// their spatial locality; a deployment would DBG-reorder within each
// part), because partition quality — not degree order — is what the
// scale-out study measures.
func MultiCard(ctx *Context) (*MultiCardResult, error) {
	res := &MultiCardResult{}
	for _, d := range ctx.Datasets {
		prepared, err := d.Build(ctx.Seed)
		if err != nil {
			return nil, fmt.Errorf("building %s: %w", d.Abbrev, err)
		}
		prepared.SortEdges()
		cfg := sim.DefaultConfig(4)
		cfg.CacheVertices = ctx.CacheVerticesFor(d, prepared.NumVertices())
		var base int64
		for _, cards := range []int{1, 2, 4} {
			r, err := sim.RunMultiCard(prepared, cfg, cards)
			if err != nil {
				return nil, fmt.Errorf("%s cards=%d: %w", d.Abbrev, cards, err)
			}
			if cards == 1 {
				base = r.TotalCycles
			}
			row := MultiCardRow{
				Dataset:        d.Abbrev,
				Cards:          cards,
				InteriorCycles: r.InteriorCycles,
				BoundaryCycles: r.BoundaryCycles,
				TotalCycles:    r.TotalCycles,
			}
			if prepared.NumVertices() > 0 {
				row.BoundaryFraction = float64(r.BoundaryVertices) / float64(prepared.NumVertices())
			}
			if r.TotalCycles > 0 {
				row.Speedup = float64(base) / float64(r.TotalCycles)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Print writes the scale-out table.
func (r *MultiCardResult) Print(ctx *Context) {
	t := Table{
		Title:  "Extension: multi-card scale-out (P=4 per card; interior parallel, boundary sequential)",
		Header: []string{"Graph", "Cards", "Boundary", "Interior cyc", "Boundary cyc", "Total", "Speedup"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, fmt.Sprint(row.Cards), pct(row.BoundaryFraction),
			fmt.Sprint(row.InteriorCycles), fmt.Sprint(row.BoundaryCycles),
			fmt.Sprint(row.TotalCycles), f2(row.Speedup)+"x")
	}
	t.Render(ctx)
}
