package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func smallCtx() (*Context, *bytes.Buffer) {
	var buf bytes.Buffer
	ctx := NewSmallContext(&buf)
	// Keep test runtime down: four datasets spanning the categories.
	keep := map[string]bool{"EF": true, "CD": true, "RC": true, "CL": true}
	var ds = ctx.Datasets[:0]
	for _, d := range ctx.Datasets {
		if keep[d.Abbrev] {
			ds = append(ds, d)
		}
	}
	ctx.Datasets = ds
	return ctx, &buf
}

func TestFig3a(t *testing.T) {
	ctx, buf := smallCtx()
	r, err := Fig3a(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(ctx.Datasets) {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		sum := row.Stage0 + row.Stage1 + row.Stage2
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("%s shares sum %.3f", row.Dataset, sum)
		}
	}
	// Fig 3(a) headline: Stage 1 dominates on average, Stage 2 smallest.
	if r.AvgStage1 < r.AvgStage2 || r.AvgStage2 > r.AvgStage0 {
		t.Fatalf("breakdown shape off: %.2f/%.2f/%.2f", r.AvgStage0, r.AvgStage1, r.AvgStage2)
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "Fig 3(a)") {
		t.Fatal("print missing title")
	}
}

func TestFig3b(t *testing.T) {
	ctx, buf := smallCtx()
	r, err := Fig3b(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Low overlap is the paper's observation (avg 4.96%); synthetic
	// graphs should stay well under 25%.
	if r.Average > 0.25 {
		t.Fatalf("average overlap %.3f implausibly high", r.Average)
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "overlap") {
		t.Fatal("print missing content")
	}
}

func TestTable2(t *testing.T) {
	ctx, buf := smallCtx()
	r, err := Table2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Coloring <= 0 {
			t.Fatalf("%s: no coloring time", row.Dataset)
		}
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatal("print missing title")
	}
}

func TestFig11(t *testing.T) {
	ctx, buf := smallCtx()
	r, err := Fig11(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if len(row.Cells) != len(Fig11Steps) {
			t.Fatalf("%s has %d cells", row.Dataset, len(row.Cells))
		}
		// BSL is normalized to 1; the final step must be below 1.
		if row.Cells[0].TotalNorm != 1 {
			t.Fatalf("%s BSL norm %f", row.Dataset, row.Cells[0].TotalNorm)
		}
		final := row.Cells[len(row.Cells)-1]
		if final.TotalNorm >= 1 {
			t.Fatalf("%s full-opt total norm %.2f not < 1", row.Dataset, final.TotalNorm)
		}
	}
	if r.AvgTotalReduction <= 0.2 {
		t.Fatalf("average total reduction %.2f too small (paper: 0.83)", r.AvgTotalReduction)
	}
	if r.AvgDRAMReduction <= 0.3 {
		t.Fatalf("average DRAM reduction %.2f too small (paper: 0.89)", r.AvgDRAMReduction)
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "Fig 11") {
		t.Fatal("print missing title")
	}
}

func TestFig12(t *testing.T) {
	ctx, buf := smallCtx()
	r, err := Fig12(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Speedups[0] != 1 {
			t.Fatalf("%s P1 speedup %f", row.Dataset, row.Speedups[0])
		}
		last := row.Speedups[len(row.Speedups)-1]
		if last <= 1 {
			t.Fatalf("%s P16 speedup %.2f not > 1", row.Dataset, last)
		}
		if last >= 16 {
			t.Fatalf("%s P16 speedup %.2f superlinear", row.Dataset, last)
		}
	}
	if r.MinP16 <= 1 || r.MaxP16 >= 16 {
		t.Fatalf("P16 range [%.2f, %.2f] out of plausible bounds", r.MinP16, r.MaxP16)
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "Fig 12") {
		t.Fatal("print missing title")
	}
}

func TestTable4(t *testing.T) {
	ctx, buf := smallCtx()
	r, err := Table4(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Baseline <= 0 || row.Sorted <= 0 {
			t.Fatalf("%s zero color counts", row.Dataset)
		}
	}
	// DBG ordering should not *increase* the average color count.
	if r.AvgReduction < -0.05 {
		t.Fatalf("average reduction %.3f negative", r.AvgReduction)
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "Table 4") {
		t.Fatal("print missing title")
	}
}

func TestFig13(t *testing.T) {
	ctx, buf := smallCtx()
	r, err := Fig13(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.SpeedupVsCPU <= 1 {
			t.Fatalf("%s: FPGA not faster than CPU (%.2fx)", row.Dataset, row.SpeedupVsCPU)
		}
	}
	// Paper shape: FPGA beats CPU by a large factor and beats GPU on
	// average; FPGA energy efficiency dominates.
	if r.AvgSpeedupCPU < 5 {
		t.Fatalf("avg CPU speedup %.1fx too small (paper 54.9x)", r.AvgSpeedupCPU)
	}
	if r.AvgSpeedupGPU <= 1 {
		t.Fatalf("avg GPU speedup %.2fx not > 1 (paper 2.71x)", r.AvgSpeedupGPU)
	}
	if r.AvgFPGAKCVpj <= r.AvgGPUKCVpj || r.AvgFPGAKCVpj <= r.AvgCPUKCVpj {
		t.Fatal("energy ordering broken")
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "Fig 13") {
		t.Fatal("print missing title")
	}
}

func TestFig14AndCacheAblation(t *testing.T) {
	ctx, buf := smallCtx()
	r, err := Fig14(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Usages) != 5 {
		t.Fatalf("sweep %d points", len(r.Usages))
	}
	r.Print(ctx)
	a, err := CacheAblation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range a.Rows[1:] {
		if row.Ratio >= 1 {
			t.Fatalf("P=%d proposed/LVT ratio %.2f not < 1", row.Parallelism, row.Ratio)
		}
	}
	if a.Rows[len(a.Rows)-1].LVTFitsU200 {
		t.Fatal("LVT at P16 should not fit")
	}
	a.Print(ctx)
	if !strings.Contains(buf.String(), "Fig 14") {
		t.Fatal("print missing title")
	}
}

func TestLocalityAblation(t *testing.T) {
	ctx, buf := smallCtx()
	ctx.Datasets = ctx.Datasets[:2]
	r, err := Locality(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("got %d rows, want 2 datasets x 4 arms", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Gather {
			if row.Stats.Gather.Reads() == 0 {
				t.Fatalf("%s dbg=%v: gather arm classified no reads", row.Dataset, row.DBG)
			}
			if row.HotCoverage <= 0 || row.HotCoverage > 1 {
				t.Fatalf("%s dbg=%v: implausible hot coverage %f", row.Dataset, row.DBG, row.HotCoverage)
			}
			if row.DBG && row.Stats.Gather.PrunedTail == 0 {
				t.Fatalf("%s: PUV pruned nothing on the DBG arm", row.Dataset)
			}
		} else if row.Stats.Gather.Reads() != 0 {
			t.Fatalf("%s dbg=%v: gather-off arm recorded reads", row.Dataset, row.DBG)
		}
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "Memory-locality ablation") {
		t.Fatal("print missing title")
	}
	recs := r.BenchRecords()
	if len(recs) != len(r.Rows) {
		t.Fatalf("got %d records for %d rows", len(recs), len(r.Rows))
	}
}

func TestExecDispatchExperiment(t *testing.T) {
	ctx, buf := smallCtx()
	r, err := ExecDispatch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 (workers 1, 2, 4)", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Ratio <= 0 || row.InlineTime <= 0 || row.ExecTime <= 0 {
			t.Fatalf("degenerate measurement: %+v", row)
		}
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "dispatch overhead") {
		t.Fatal("print missing title")
	}
	if recs := r.BenchRecords(); len(recs) != 2*len(r.Rows) {
		t.Fatalf("got %d records for %d rows", len(recs), len(r.Rows))
	}
}

func TestOutOfCoreExperiment(t *testing.T) {
	ctx, buf := smallCtx()
	ctx.Datasets = ctx.Datasets[:2]
	r, err := OutOfCore(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2*3 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	colorsBy := map[string]int{}
	for _, row := range r.Rows {
		if row.Colors <= 0 || row.Bytes <= 0 || row.Total() <= 0 || row.PeakResident <= 0 {
			t.Fatalf("%s %s: empty measurement %+v", row.Dataset, row.Arm, row)
		}
		// All three arms run the same deterministic sharded fixpoint.
		if want, seen := colorsBy[row.Dataset]; seen && want != row.Colors {
			t.Fatalf("%s %s: %d colors, other arm got %d", row.Dataset, row.Arm, row.Colors, want)
		}
		colorsBy[row.Dataset] = row.Colors
		switch row.Arm {
		case "bcsr-v2-incore":
			if row.CacheHit || row.ResidentShards != 0 {
				t.Fatalf("in-core arm carries streaming fields: %+v", row)
			}
		case "bcsr-v3-cold":
			if row.CacheHit || row.Partition <= 0 || row.Write <= 0 {
				t.Fatalf("cold arm shape off: %+v", row)
			}
		case "bcsr-v3-warm":
			if !row.CacheHit || row.Partition != 0 || row.Write != 0 {
				t.Fatalf("warm arm shape off: %+v", row)
			}
		default:
			t.Fatalf("unknown arm %q", row.Arm)
		}
	}
	if r.GeoStreamRatio <= 0 || r.GeoWarmRatio <= 0 || r.GeoResidencyRatio <= 0 {
		t.Fatalf("missing geomeans: %+v", r)
	}
	// The streamed arms must actually hold less than the full adjacency.
	if r.GeoResidencyRatio >= 1 {
		t.Fatalf("streamed peak residency %.2fx not below the in-core footprint", r.GeoResidencyRatio)
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "Out-of-core streaming") {
		t.Fatal("print missing title")
	}
	recs := r.BenchRecords()
	if len(recs) != len(r.Rows) {
		t.Fatalf("got %d records for %d rows", len(recs), len(r.Rows))
	}
	for _, rec := range recs {
		if rec.NsPerEdge <= 0 || rec.WallNanos <= 0 || rec.ResidentPeakBytes <= 0 || rec.Shards != outOfCoreShards {
			t.Fatalf("empty measurement in record %+v", rec)
		}
	}
}

func TestRunnerRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{
		"cacheablation", "cachesweep", "conflicts", "dct", "dramsweep",
		"e2e", "exec", "fig11", "fig12", "fig13", "fig14", "fig3a", "fig3b",
		"generality", "hostpar", "locality", "lruvshdc", "multicard",
		"outofcore", "quality", "relaxed", "scorecard", "shard", "table2",
		"table3", "table4",
	}
	desc := Descriptions()
	for _, n := range names {
		if desc[n] == "" {
			t.Errorf("experiment %q has no description for the -exp listing", n)
		}
	}
	if len(desc) != len(names) {
		t.Errorf("Descriptions has %d entries for %d experiments", len(desc), len(names))
	}
	if len(names) != len(want) {
		t.Fatalf("registry has %d experiments: %v", len(names), names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestRunAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	ctx, buf := smallCtx()
	// Even smaller: two datasets for the integrated smoke test.
	ctx.Datasets = ctx.Datasets[:2]
	if err := RunAll(ctx); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig3a", "fig12", "Table 4", "Fig 13", "cacheablation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RunAll output missing %q", want)
		}
	}
}

func TestCacheSweep(t *testing.T) {
	ctx, buf := smallCtx()
	r, err := CacheSweep(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// More cache never hurts, and full residency beats no cache.
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if first.Fraction != 0 || first.TotalNorm != 1 {
		t.Fatalf("baseline row wrong: %+v", first)
	}
	if last.TotalCycles >= first.TotalCycles {
		t.Fatal("full cache not faster than no cache")
	}
	if last.HitRate < 0.99 {
		t.Fatalf("full residency hit rate %.2f", last.HitRate)
	}
	// Degree skew: a 1/16 cache should absorb a disproportionate share.
	for _, row := range r.Rows {
		if row.Fraction == 1.0/16 && row.HitRate < 2*row.Fraction {
			t.Fatalf("1/16 cache hit rate %.2f shows no skew exploitation", row.HitRate)
		}
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "HVC capacity") {
		t.Fatal("print missing")
	}
}

func TestDRAMSweep(t *testing.T) {
	ctx, buf := smallCtx()
	r, err := DRAMSweep(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The optimizations' speedup grows with memory latency.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Speedup <= r.Rows[i-1].Speedup {
			t.Fatalf("speedup not increasing with latency: %+v", r.Rows)
		}
	}
	for _, row := range r.Rows {
		if row.Speedup <= 1 {
			t.Fatalf("full opts slower than BSL at multiplier %.1f", row.Multiplier)
		}
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "DRAM speed-grade") {
		t.Fatal("print missing")
	}
}

func TestConflictAnalysis(t *testing.T) {
	ctx, buf := smallCtx()
	r, err := ConflictAnalysis(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2*len(ctx.Datasets) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Conflicts at P16 should exceed conflicts at P2 on every dataset
	// (a wider in-flight window can only defer more).
	byDataset := map[string]map[int]ConflictRow{}
	for _, row := range r.Rows {
		if byDataset[row.Dataset] == nil {
			byDataset[row.Dataset] = map[int]ConflictRow{}
		}
		byDataset[row.Dataset][row.Parallelism] = row
	}
	for ds, rows := range byDataset {
		if rows[16].EdgesDeferred < rows[2].EdgesDeferred {
			t.Errorf("%s: P16 deferred %d < P2 deferred %d",
				ds, rows[16].EdgesDeferred, rows[2].EdgesDeferred)
		}
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "conflict deferrals") {
		t.Fatal("print missing")
	}
}

func TestGenerality(t *testing.T) {
	ctx, buf := smallCtx()
	ctx.Datasets = ctx.Datasets[:2]
	r, err := Generality(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.SpeedupVsJP <= 1 {
			t.Errorf("%s: greedy not faster than JP on same substrate (%.2fx)",
				row.Dataset, row.SpeedupVsJP)
		}
		if row.JPEdgeOps <= row.GreedyEdgeOps {
			t.Errorf("%s: JP edge ops %d not above greedy %d",
				row.Dataset, row.JPEdgeOps, row.GreedyEdgeOps)
		}
	}
	if r.AvgSpeedup <= 1 {
		t.Fatalf("avg speedup %.2f", r.AvgSpeedup)
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "generality") {
		t.Fatal("print missing")
	}
}

func TestRelaxedExperiment(t *testing.T) {
	ctx, buf := smallCtx()
	ctx.Datasets = ctx.Datasets[:2]
	r, err := Relaxed(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.StrictCycles <= 0 || row.RelaxedCycles <= 0 {
			t.Fatalf("%s: missing cycles", row.Dataset)
		}
		if row.NetRelaxedCycles < row.RelaxedCycles {
			t.Fatalf("%s: repair cost negative", row.Dataset)
		}
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "relaxed") {
		t.Fatal("print missing")
	}
}

func TestQuality(t *testing.T) {
	ctx, buf := smallCtx()
	ctx.Datasets = ctx.Datasets[:2]
	r, err := Quality(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if len(row.Counts) != len(QualityAlgorithms) {
			t.Fatalf("%s: %d counts for %d algorithms", row.Dataset, len(row.Counts), len(QualityAlgorithms))
		}
		// DSATUR never uses dramatically more colors than greedy.
		ds, gr := row.Counts[QualityColumn("dsatur")], row.Counts[QualityColumn("greedy")]
		if ds > gr+3 {
			t.Fatalf("%s: dsatur %d vs greedy %d", row.Dataset, ds, gr)
		}
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "quality") {
		t.Fatal("print missing")
	}
}

func TestHostPar(t *testing.T) {
	ctx, buf := smallCtx()
	ctx.Datasets = ctx.Datasets[:2]
	r, err := HostPar(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sweep := hostParWorkerSweep()
	if len(r.Rows) != 2*len(sweep) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), 2*len(sweep))
	}
	for _, row := range r.Rows {
		if row.SpecColors <= 0 || row.ParColors <= 0 {
			t.Fatalf("%s W%d: colors %d/%d", row.Dataset, row.Workers, row.SpecColors, row.ParColors)
		}
		if row.SpecStats.Rounds < 1 || row.ParStats.Rounds < 1 {
			t.Fatalf("%s W%d: rounds %d/%d", row.Dataset, row.Workers,
				row.SpecStats.Rounds, row.ParStats.Rounds)
		}
		// Single-worker runs never conflict.
		if row.Workers == 1 && (row.SpecStats.ConflictsRepaired != 0 || row.ParStats.ConflictsRepaired != 0) {
			t.Fatalf("%s W1 repaired conflicts", row.Dataset)
		}
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "Host-parallel") {
		t.Fatal("print missing")
	}
}

func TestTable3(t *testing.T) {
	ctx, buf := smallCtx()
	r, err := Table3(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(ctx.Datasets) {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.StandinNodes <= 0 || row.StandinEdges <= 0 {
			t.Fatalf("%s: empty stand-in", row.Abbrev)
		}
		if row.PaperNodes < row.StandinNodes {
			t.Fatalf("%s: stand-in larger than paper original", row.Abbrev)
		}
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "Table 3") {
		t.Fatal("print missing")
	}
}

func TestHuman(t *testing.T) {
	cases := map[int64]string{
		12: "12", 4_100: "4.1K", 1_806_100_000: "1.8B", 34_700_000: "34.7M",
	}
	for n, want := range cases {
		if got := human(n); got != want {
			t.Fatalf("human(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestMultiCardExperiment(t *testing.T) {
	ctx, buf := smallCtx()
	ctx.Datasets = ctx.Datasets[:2]
	r, err := MultiCard(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Cards == 1 {
			if row.Speedup != 1 || row.BoundaryFraction != 0 {
				t.Fatalf("1-card row wrong: %+v", row)
			}
		} else if row.BoundaryFraction <= 0 {
			t.Fatalf("%s cards=%d: zero boundary", row.Dataset, row.Cards)
		}
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "multi-card") {
		t.Fatal("print missing")
	}
}

func TestLRUvsHDC(t *testing.T) {
	ctx, buf := smallCtx()
	r, err := LRUvsHDC(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.LRUHit < 0 || row.LRUHit > 1 || row.HDCHit < 0 || row.HDCHit > 1 {
			t.Fatalf("%s: hit rates out of range: %+v", row.Dataset, row)
		}
	}
	// On the skewed CL stand-in, HDC must beat LRU at equal capacity —
	// the §3.2.2 argument.
	for _, row := range r.Rows {
		if row.Dataset == "CL" && row.Advantage <= 0 {
			t.Fatalf("CL: HDC %.3f not above LRU %.3f", row.HDCHit, row.LRUHit)
		}
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "cache policy") {
		t.Fatal("print missing")
	}
}

func TestScorecard(t *testing.T) {
	ctx, buf := smallCtx()
	r, err := Scorecard(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 10 {
		t.Fatalf("only %d claims graded", len(r.Rows))
	}
	// On the test-size datasets every structural claim must hold.
	for _, row := range r.Rows {
		if !row.Holds {
			t.Errorf("claim failed: %s (paper %s, measured %s)", row.Claim, row.Paper, row.Measured)
		}
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "scorecard") {
		t.Fatal("print missing")
	}
}

func TestDCTExperiment(t *testing.T) {
	ctx, buf := smallCtx()
	ctx.Datasets = ctx.Datasets[:2]
	r, err := DCT(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sweep := hostParWorkerSweep()
	if len(r.Rows) != 2*len(sweep) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), 2*len(sweep))
	}
	for _, row := range r.Rows {
		if !row.Deterministic {
			t.Fatalf("%s W%d: dct diverged from sequential greedy", row.Dataset, row.Workers)
		}
		if row.DCTStats.Rounds != 1 || row.DCTStats.ConflictsRepaired != 0 {
			t.Fatalf("%s W%d: dct not single-pass: %+v", row.Dataset, row.Workers, row.DCTStats)
		}
		if row.DCTColors <= 0 || row.ParColors <= 0 || row.SpecColors <= 0 {
			t.Fatalf("%s W%d: colors %d/%d/%d", row.Dataset, row.Workers,
				row.DCTColors, row.ParColors, row.SpecColors)
		}
		// One worker walks the whole index order itself: nothing to wait on.
		if row.Workers == 1 && row.DCTStats.Deferred != 0 {
			t.Fatalf("%s W1 deferred %d vertices", row.Dataset, row.DCTStats.Deferred)
		}
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "Conflict handling ablation") {
		t.Fatal("print missing title")
	}
	recs := r.BenchRecords()
	if len(recs) != 3*len(r.Rows) {
		t.Fatalf("got %d records for %d rows", len(recs), len(r.Rows))
	}
	for _, rec := range recs {
		if rec.NsPerEdge <= 0 || rec.WallNanos <= 0 {
			t.Fatalf("empty measurement in record %+v", rec)
		}
	}
}

func TestE2EExperiment(t *testing.T) {
	ctx, buf := smallCtx()
	ctx.Datasets = ctx.Datasets[:2]
	r, err := E2E(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2*len(e2eFormats) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), 2*len(e2eFormats))
	}
	colorsBy := map[string]int{}
	for _, row := range r.Rows {
		if row.Colors <= 0 || row.Bytes <= 0 || row.LoadRatio <= 0 {
			t.Fatalf("%s %s: empty measurement %+v", row.Dataset, row.Format, row)
		}
		// The binary formats reproduce the graph byte-exactly, so the
		// deterministic dct coloring must agree between them. (The text
		// edge-list loader relabels vertices in first-seen order — an
		// isomorphic graph with a different coloring order — so it is
		// excluded from the exact check.)
		if row.Format != "edgelist" {
			if want, seen := colorsBy[row.Dataset]; seen && want != row.Colors {
				t.Fatalf("%s %s: %d colors, other binary format got %d",
					row.Dataset, row.Format, row.Colors, want)
			}
			colorsBy[row.Dataset] = row.Colors
		}
		if row.Format == "bcsr-v2" && !row.Mapped {
			t.Errorf("%s: v2 load did not map", row.Dataset)
		}
	}
	for _, format := range e2eFormats {
		if r.GeoRatio[format] <= 0 {
			t.Fatalf("missing geomean for %s", format)
		}
	}
	r.Print(ctx)
	if !strings.Contains(buf.String(), "End-to-end load path") {
		t.Fatal("print missing title")
	}
	recs := r.BenchRecords()
	if len(recs) != len(r.Rows) {
		t.Fatalf("got %d records for %d rows", len(recs), len(r.Rows))
	}
	for _, rec := range recs {
		if rec.LoadNanos <= 0 || rec.ColorNanos <= 0 || rec.LoadRatio <= 0 {
			t.Fatalf("missing e2e breakdown in record %+v", rec)
		}
	}
}
