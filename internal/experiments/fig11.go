package experiments

import (
	"fmt"

	"bitcolor/internal/engine"
	"bitcolor/internal/metrics"
	"bitcolor/internal/sim"
)

// Fig11Steps is the cumulative optimization ladder of Fig 11.
var Fig11Steps = []struct {
	Name string
	Opts engine.Options
}{
	{"BSL", engine.Options{}},
	{"+HDC", engine.Options{HDC: true}},
	{"+BWC", engine.Options{HDC: true, BWC: true}},
	{"+MGR", engine.Options{HDC: true, BWC: true, MGR: true}},
	{"+PUV", engine.AllOptions()},
}

// Fig11Cell is one (dataset, step) measurement, normalized to the
// dataset's BSL run.
type Fig11Cell struct {
	Step         string
	DRAMNorm     float64 // DRAM stall cycles / BSL
	ComputeNorm  float64 // compute cycles / BSL
	TotalNorm    float64 // makespan / BSL
	DRAMAccesses int64
}

// Fig11Row is one dataset's ladder.
type Fig11Row struct {
	Dataset string
	Cells   []Fig11Cell
}

// Fig11Result holds all rows plus the final-step averages (paper:
// 88.63% DRAM-access reduction, 66.89% computation reduction, 82.91%
// total-time reduction vs BSL).
type Fig11Result struct {
	Rows []Fig11Row
	// Avg*Reduction are 1 - normalized value at the final step.
	AvgDRAMReduction, AvgComputeReduction, AvgTotalReduction float64
}

// Fig11 measures each optimization's effect in a single BWPE.
func Fig11(ctx *Context) (*Fig11Result, error) {
	res := &Fig11Result{}
	var dramRed, compRed, totalRed []float64
	for _, d := range ctx.Datasets {
		_, prepared, err := ctx.BuildPrepared(d)
		if err != nil {
			return nil, err
		}
		row := Fig11Row{Dataset: d.Abbrev}
		var baseDRAM, baseCompute, baseTotal float64
		for i, step := range Fig11Steps {
			cfg := sim.DefaultConfig(1)
			cfg.Options = step.Opts
			cfg.CacheVertices = ctx.CacheVerticesFor(d, prepared.NumVertices())
			r, err := sim.Run(prepared, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", d.Abbrev, step.Name, err)
			}
			dram := float64(r.Aggregate.DRAMStallCycles)
			comp := float64(r.Aggregate.ComputeCycles)
			total := float64(r.TotalCycles)
			if i == 0 {
				baseDRAM, baseCompute, baseTotal = dram, comp, total
			}
			cell := Fig11Cell{
				Step:         step.Name,
				DRAMAccesses: r.ColorDRAM.Reads,
			}
			if baseDRAM > 0 {
				cell.DRAMNorm = dram / baseDRAM
			}
			if baseCompute > 0 {
				cell.ComputeNorm = comp / baseCompute
			}
			if baseTotal > 0 {
				cell.TotalNorm = total / baseTotal
			}
			row.Cells = append(row.Cells, cell)
		}
		final := row.Cells[len(row.Cells)-1]
		dramRed = append(dramRed, 1-final.DRAMNorm)
		compRed = append(compRed, 1-final.ComputeNorm)
		totalRed = append(totalRed, 1-final.TotalNorm)
		res.Rows = append(res.Rows, row)
	}
	res.AvgDRAMReduction = metrics.Mean(dramRed)
	res.AvgComputeReduction = metrics.Mean(compRed)
	res.AvgTotalReduction = metrics.Mean(totalRed)
	return res, nil
}

// Print writes the Fig 11 tables (one block per metric).
func (r *Fig11Result) Print(ctx *Context) {
	for _, metric := range []struct {
		name string
		get  func(Fig11Cell) float64
	}{
		{"normalized total time", func(c Fig11Cell) float64 { return c.TotalNorm }},
		{"normalized DRAM stall", func(c Fig11Cell) float64 { return c.DRAMNorm }},
		{"normalized computation", func(c Fig11Cell) float64 { return c.ComputeNorm }},
	} {
		header := []string{"Graph"}
		for _, s := range Fig11Steps {
			header = append(header, s.Name)
		}
		t := Table{
			Title:  "Fig 11: single BWPE, " + metric.name + " (cumulative optimizations)",
			Header: header,
		}
		for _, row := range r.Rows {
			cells := []string{row.Dataset}
			for _, c := range row.Cells {
				cells = append(cells, f2(metric.get(c)))
			}
			t.AddRow(cells...)
		}
		t.Render(ctx)
	}
	fmt.Fprintf(ctx.Out,
		"final-step average reductions: DRAM %s, compute %s, total %s (paper: 88.6%%, 66.9%%, 82.9%%)\n",
		pct(r.AvgDRAMReduction), pct(r.AvgComputeReduction), pct(r.AvgTotalReduction))
}
