package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment and prints its report.
type Runner func(ctx *Context) error

// printer is what every experiment result knows how to do.
type printer interface {
	Print(ctx *Context)
}

// report adapts an experiment function onto the Runner shape: run, then
// print. The post hook (may be nil) runs after printing — used by the
// experiments that also emit machine-readable benchmark records.
func report[T printer](run func(*Context) (T, error), post func(*Context, T) error) Runner {
	return func(ctx *Context) error {
		r, err := run(ctx)
		if err != nil {
			return err
		}
		r.Print(ctx)
		if post != nil {
			return post(ctx, r)
		}
		return nil
	}
}

// Registry maps experiment IDs (as used by `benchsuite -exp`) to runners.
func RunnerRegistry() map[string]Runner {
	return map[string]Runner{
		"fig3a":         report(Fig3a, nil),
		"fig3b":         report(Fig3b, nil),
		"table2":        report(Table2, nil),
		"fig11":         report(Fig11, nil),
		"fig12":         report(Fig12, nil),
		"table4":        report(Table4, nil),
		"fig13":         report(Fig13, nil),
		"fig14":         report(Fig14, nil),
		"cacheablation": report(CacheAblation, nil),
		"cachesweep":    report(CacheSweep, nil),
		"dramsweep":     report(DRAMSweep, nil),
		"conflicts":     report(ConflictAnalysis, nil),
		"generality":    report(Generality, nil),
		"relaxed":       report(Relaxed, nil),
		"table3":        report(Table3, nil),
		"quality":       report(Quality, nil),
		"multicard":     report(MultiCard, nil),
		"lruvshdc":      report(LRUvsHDC, nil),
		"scorecard":     report(Scorecard, nil),
		"hostpar": report(HostPar, func(ctx *Context, r *HostParResult) error {
			return ctx.EmitBench("hostpar", r.BenchRecords())
		}),
		"locality": report(Locality, func(ctx *Context, r *LocalityResult) error {
			return ctx.EmitBench("locality", r.BenchRecords())
		}),
		"dct": report(DCT, func(ctx *Context, r *DCTResult) error {
			return ctx.EmitBench("dct", r.BenchRecords())
		}),
		"shard": report(Shard, func(ctx *Context, r *ShardResult) error {
			return ctx.EmitBench("shard", r.BenchRecords())
		}),
		"e2e": report(E2E, func(ctx *Context, r *E2EResult) error {
			return ctx.EmitBench("e2e", r.BenchRecords())
		}),
		"outofcore": report(OutOfCore, func(ctx *Context, r *OutOfCoreResult) error {
			return ctx.EmitBench("outofcore", r.BenchRecords())
		}),
		"exec": report(ExecDispatch, func(ctx *Context, r *ExecResult) error {
			return ctx.EmitBench("exec", r.BenchRecords())
		}),
	}
}

// Descriptions maps experiment IDs to the one-line summaries benchsuite
// prints when an unknown -exp name is given.
func Descriptions() map[string]string {
	return map[string]string{
		"fig3a":         "greedy Stage 1 cost distribution (Fig 3a)",
		"fig3b":         "bit-wise vs flag-array Stage 1 ops (Fig 3b)",
		"table2":        "preprocessing cost and effect (Table 2)",
		"fig11":         "memory-path locality ablation (Fig 11)",
		"fig12":         "HVC hit rate across datasets (Fig 12)",
		"table4":        "color quality vs baselines (Table 4)",
		"fig13":         "speedup over CPU/GPU baselines (Fig 13)",
		"fig14":         "PE scaling sweep (Fig 14)",
		"cacheablation": "HVC on/off ablation",
		"cachesweep":    "HVC capacity sweep",
		"dramsweep":     "DRAM burst-size sweep",
		"conflicts":     "speculation conflict analysis",
		"generality":    "engine generality across graph families",
		"relaxed":       "relaxed-consistency variants",
		"table3":        "dataset registry statistics (Table 3)",
		"quality":       "color count vs sequential greedy",
		"multicard":     "partitioned multi-card coloring",
		"lruvshdc":      "LRU vs degree-pinned HVC policy",
		"scorecard":     "paper-claims scorecard",
		"hostpar":       "host-parallel engines: GM vs fused bit-wise",
		"locality":      "blocked color-gather locality study",
		"dct":           "single-pass DCT engine study",
		"shard":         "sharded engine partition study",
		"e2e":           "end-to-end load+color breakdown",
		"outofcore":     "out-of-core v3 streaming vs in-core sharded",
		"exec":          "exec.Blocks dispatch overhead vs inline loops",
	}
}

// Names returns the experiment IDs in stable order.
func Names() []string {
	reg := RunnerRegistry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunAll executes every experiment in a stable order.
func RunAll(ctx *Context) error {
	// Report in the paper's order rather than alphabetically.
	order := []string{
		"table3", "fig3a", "fig3b", "table2", "fig11", "fig12", "table4",
		"fig13", "fig14", "cacheablation", "cachesweep", "dramsweep",
		"conflicts", "generality", "relaxed", "quality", "hostpar",
		"locality", "dct", "shard", "e2e", "outofcore", "exec", "multicard",
		"lruvshdc", "scorecard",
	}
	reg := RunnerRegistry()
	for _, name := range order {
		fmt.Fprintf(ctx.Out, "\n######## %s ########\n", name)
		if err := reg[name](ctx); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}
