package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment and prints its report.
type Runner func(ctx *Context) error

// Registry maps experiment IDs (as used by `benchsuite -exp`) to runners.
func RunnerRegistry() map[string]Runner {
	return map[string]Runner{
		"fig3a": func(ctx *Context) error {
			r, err := Fig3a(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
		"fig3b": func(ctx *Context) error {
			r, err := Fig3b(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
		"table2": func(ctx *Context) error {
			r, err := Table2(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
		"fig11": func(ctx *Context) error {
			r, err := Fig11(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
		"fig12": func(ctx *Context) error {
			r, err := Fig12(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
		"table4": func(ctx *Context) error {
			r, err := Table4(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
		"fig13": func(ctx *Context) error {
			r, err := Fig13(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
		"fig14": func(ctx *Context) error {
			r, err := Fig14(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
		"cacheablation": func(ctx *Context) error {
			r, err := CacheAblation(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
		"cachesweep": func(ctx *Context) error {
			r, err := CacheSweep(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
		"dramsweep": func(ctx *Context) error {
			r, err := DRAMSweep(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
		"conflicts": func(ctx *Context) error {
			r, err := ConflictAnalysis(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
		"generality": func(ctx *Context) error {
			r, err := Generality(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
		"relaxed": func(ctx *Context) error {
			r, err := Relaxed(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
		"table3": func(ctx *Context) error {
			r, err := Table3(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
		"hostpar": func(ctx *Context) error {
			r, err := HostPar(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return ctx.EmitBench("hostpar", r.BenchRecords())
		},
		"locality": func(ctx *Context) error {
			r, err := Locality(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return ctx.EmitBench("locality", r.BenchRecords())
		},
		"quality": func(ctx *Context) error {
			r, err := Quality(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
		"multicard": func(ctx *Context) error {
			r, err := MultiCard(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
		"lruvshdc": func(ctx *Context) error {
			r, err := LRUvsHDC(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
		"scorecard": func(ctx *Context) error {
			r, err := Scorecard(ctx)
			if err != nil {
				return err
			}
			r.Print(ctx)
			return nil
		},
	}
}

// Names returns the experiment IDs in stable order.
func Names() []string {
	reg := RunnerRegistry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunAll executes every experiment in a stable order.
func RunAll(ctx *Context) error {
	// Report in the paper's order rather than alphabetically.
	order := []string{
		"table3", "fig3a", "fig3b", "table2", "fig11", "fig12", "table4",
		"fig13", "fig14", "cacheablation", "cachesweep", "dramsweep",
		"conflicts", "generality", "relaxed", "quality", "hostpar",
		"locality", "multicard", "lruvshdc", "scorecard",
	}
	reg := RunnerRegistry()
	for _, name := range order {
		fmt.Fprintf(ctx.Out, "\n######## %s ########\n", name)
		if err := reg[name](ctx); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}
