package experiments

import (
	"fmt"

	"bitcolor/internal/coloring"
	"bitcolor/internal/cpuref"
	"bitcolor/internal/metrics"
	"bitcolor/internal/trace"
)

// Fig3aRow is one dataset's stage breakdown of the basic greedy
// algorithm (paper Fig 3(a): 39.24% / 46.53% / 14.23% averaged).
type Fig3aRow struct {
	Dataset                string
	Stage0, Stage1, Stage2 float64 // fractions of total modeled time
}

// Fig3aResult aggregates the per-dataset breakdowns.
type Fig3aResult struct {
	Rows                            []Fig3aRow
	AvgStage0, AvgStage1, AvgStage2 float64
}

// Fig3a reproduces the execution-time breakdown of the three stages of
// Algorithm 1 on the CPU model.
func Fig3a(ctx *Context) (*Fig3aResult, error) {
	res := &Fig3aResult{}
	var s0, s1, s2 []float64
	for _, d := range ctx.Datasets {
		_, prepared, err := ctx.BuildPrepared(d)
		if err != nil {
			return nil, err
		}
		m := cpuref.DefaultCostModel()
		m.WorkingSetVertices = d.PaperNodes
		_, st, _, err := cpuref.Run(prepared, coloring.MaxColorsDefault, m)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Abbrev, err)
		}
		f0, f1v, f2v := st.Shares()
		res.Rows = append(res.Rows, Fig3aRow{Dataset: d.Abbrev, Stage0: f0, Stage1: f1v, Stage2: f2v})
		s0 = append(s0, f0)
		s1 = append(s1, f1v)
		s2 = append(s2, f2v)
	}
	res.AvgStage0 = metrics.Mean(s0)
	res.AvgStage1 = metrics.Mean(s1)
	res.AvgStage2 = metrics.Mean(s2)
	return res, nil
}

// Print writes the Fig 3(a) table.
func (r *Fig3aResult) Print(ctx *Context) {
	t := Table{
		Title:  "Fig 3(a): stage breakdown of basic greedy (paper avg: 39.2% / 46.5% / 14.2%)",
		Header: []string{"Graph", "Stage0 traversal", "Stage1 color", "Stage2 update"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, pct(row.Stage0), pct(row.Stage1), pct(row.Stage2))
	}
	t.AddRow("AVG", pct(r.AvgStage0), pct(r.AvgStage1), pct(r.AvgStage2))
	t.Render(ctx)
}

// Fig3bIntervals is the iteration-interval axis of Fig 3(b).
var Fig3bIntervals = []int{1, 2, 4, 8, 16, 32}

// Fig3bRow is one dataset's overlap-ratio series.
type Fig3bRow struct {
	Dataset string
	Ratios  []float64
}

// Fig3bResult holds all series plus the global average (paper: 4.96%).
type Fig3bResult struct {
	Intervals []int
	Rows      []Fig3bRow
	Average   float64
}

// Fig3b reproduces the average neighborhood overlap ratio measurement.
func Fig3b(ctx *Context) (*Fig3bResult, error) {
	res := &Fig3bResult{Intervals: Fig3bIntervals}
	var all []float64
	for _, d := range ctx.Datasets {
		_, prepared, err := ctx.BuildPrepared(d)
		if err != nil {
			return nil, err
		}
		series, err := trace.OverlapSeries(prepared, Fig3bIntervals)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Abbrev, err)
		}
		res.Rows = append(res.Rows, Fig3bRow{Dataset: d.Abbrev, Ratios: series})
		all = append(all, series...)
	}
	res.Average = metrics.Mean(all)
	return res, nil
}

// Print writes the Fig 3(b) table.
func (r *Fig3bResult) Print(ctx *Context) {
	header := []string{"Graph"}
	for _, iv := range r.Intervals {
		header = append(header, fmt.Sprintf("iv=%d", iv))
	}
	t := Table{
		Title:  "Fig 3(b): neighborhood overlap ratio by iteration interval (paper avg 4.96%)",
		Header: header,
	}
	for _, row := range r.Rows {
		cells := []string{row.Dataset}
		for _, v := range row.Ratios {
			cells = append(cells, pct(v))
		}
		t.AddRow(cells...)
	}
	t.Render(ctx)
	fmt.Fprintf(ctx.Out, "average overlap: %s\n", pct(r.Average))
}
