package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// BenchRecord is one machine-readable benchmark measurement, the JSON
// counterpart of a report-table row: which experiment and arm produced
// it, the engine and worker count, and the headline numbers (colors,
// wall-clock, normalized ns per directed adjacency entry).
type BenchRecord struct {
	Exp       string  `json:"exp"`
	Dataset   string  `json:"dataset"`
	Engine    string  `json:"engine"`
	Variant   string  `json:"variant,omitempty"`
	Workers   int     `json:"workers"`
	Colors    int     `json:"colors"`
	WallNanos int64   `json:"wall_ns"`
	NsPerEdge float64 `json:"ns_per_edge"`
}

// EmitBench writes recs as BENCH_<exp>.json under the context's JSON
// directory; a no-op when no directory is configured. Records missing an
// Exp tag inherit exp.
func (c *Context) EmitBench(exp string, recs []BenchRecord) error {
	if c.JSONDir == "" || len(recs) == 0 {
		return nil
	}
	for i := range recs {
		if recs[i].Exp == "" {
			recs[i].Exp = exp
		}
	}
	if err := os.MkdirAll(c.JSONDir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(c.JSONDir, "BENCH_"+exp+".json")
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
