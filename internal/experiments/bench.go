package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"

	"bitcolor/internal/obs"
)

// BenchRecord is one machine-readable benchmark measurement, the JSON
// counterpart of a report-table row: which experiment and arm produced
// it, the engine and worker count, and the headline numbers (colors,
// wall-clock, normalized ns per directed adjacency entry).
type BenchRecord struct {
	Exp       string  `json:"exp"`
	Dataset   string  `json:"dataset"`
	Engine    string  `json:"engine"`
	Variant   string  `json:"variant,omitempty"`
	Workers   int     `json:"workers"`
	Colors    int     `json:"colors"`
	WallNanos int64   `json:"wall_ns"`
	NsPerEdge float64 `json:"ns_per_edge"`

	// End-to-end (first-byte-to-coloring) breakdown, filled only by the
	// e2e experiment; additive omitempty fields, so the schema version
	// stays 1 and old readers are unaffected.
	LoadNanos     int64   `json:"load_ns,omitempty"`
	ValidateNanos int64   `json:"validate_ns,omitempty"`
	ColorNanos    int64   `json:"color_ns,omitempty"`
	LoadRatio     float64 `json:"load_ratio,omitempty"`

	// Partitioned-coloring shape, filled only by the shard experiment;
	// additive omitempty fields again, so the schema version stays 1.
	Shards           int   `json:"shards,omitempty"`
	CutEdges         int64 `json:"cut_edges,omitempty"`
	BoundaryVertices int   `json:"boundary_vertices,omitempty"`

	// Out-of-core streaming shape, filled only by the outofcore
	// experiment; additive omitempty fields, schema version stays 1.
	PartitionNanos    int64 `json:"partition_ns,omitempty"`
	ResidentPeakBytes int64 `json:"resident_peak_bytes,omitempty"`
	CacheHit          bool  `json:"partition_cache_hit,omitempty"`
}

// BenchSchemaVersion identifies the BENCH_<exp>.json envelope layout;
// bump it on any incompatible change to BenchFile or BenchRecord.
const BenchSchemaVersion = 1

// BenchFile is the on-disk envelope of one BENCH_<exp>.json emission:
// a schema version so downstream tooling can detect layout changes, the
// VCS revision the binary was built from (when the build recorded one),
// and the records themselves.
type BenchFile struct {
	SchemaVersion int           `json:"schema_version"`
	GitRevision   string        `json:"git_revision,omitempty"`
	Exp           string        `json:"exp"`
	Records       []BenchRecord `json:"records"`
}

// GitRevision returns the vcs.revision the running binary was built
// from (with a "+dirty" suffix for modified trees), or "" when the
// build info carries no VCS stamp (e.g. `go test` binaries). It reads
// the same obs.BuildInfo stamp the bitcolor_build_info family and the
// /debug/runs envelope expose, so a BenchFile always correlates with
// the metrics surface on one revision string.
func GitRevision() string {
	if r := obs.Revision(); r != "unknown" {
		return r
	}
	return ""
}

// EmitBench writes recs as BENCH_<exp>.json under the context's JSON
// directory; a no-op when no directory is configured. Records missing an
// Exp tag inherit exp. The write is atomic — marshal to a temp file in
// the target directory, fsync, rename — so a crashed or interrupted
// suite never leaves a truncated JSON file where a previous good one
// was, and concurrent readers only ever observe complete emissions.
func (c *Context) EmitBench(exp string, recs []BenchRecord) error {
	if c.JSONDir == "" || len(recs) == 0 {
		return nil
	}
	for i := range recs {
		if recs[i].Exp == "" {
			recs[i].Exp = exp
		}
	}
	if err := os.MkdirAll(c.JSONDir, 0o755); err != nil {
		return err
	}
	file := BenchFile{
		SchemaVersion: BenchSchemaVersion,
		GitRevision:   GitRevision(),
		Exp:           exp,
		Records:       recs,
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(c.JSONDir, "BENCH_"+exp+".json"), append(data, '\n'))
}

// writeFileAtomic writes data to path via a same-directory temp file,
// fsync and rename.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() { os.Remove(tmp) }
	if _, err := f.Write(data); err != nil {
		f.Close()
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		cleanup()
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		cleanup()
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		cleanup()
		return err
	}
	return nil
}
