package experiments

import (
	"fmt"
	"runtime"
	"time"

	"bitcolor/internal/coloring"
	"bitcolor/internal/metrics"
)

// ShardRow is one dataset × shard-count × strategy measurement of the
// partitioned sharded engine against the single-shard DCT baseline.
type ShardRow struct {
	Dataset  string
	Shards   int
	Strategy string
	// ShardTime/DCTTime are the sharded run and the plain single-pass DCT
	// run at the same worker count (W=1, the like-for-like arm on a
	// single-CPU host).
	ShardTime, DCTTime   time.Duration
	ShardStats, DCTStats metrics.RunStats
	ShardColors          int
	DCTColors            int
	// Deterministic records whether the sharded coloring was
	// byte-identical to the sequential bit-wise greedy on the same (DBG)
	// order — the engine's structural guarantee, re-verified per row.
	Deterministic bool
	// Edges is the directed adjacency entry count, for ns/edge records.
	Edges int64
}

// ShardResult is the host multi-card ablation: what does partitioning
// the vertex set into shards (the paper's §6 multi-card scheme, run as
// goroutine groups on one host) cost in cut edges and boundary-frontier
// work, and does either partition strategy change the coloring? It never
// does — the sharded engine reproduces sequential greedy at every shard
// count and strategy; only the interior/frontier work split moves.
type ShardResult struct {
	Rows []ShardRow
	// OverheadAtOneShard is the geometric-mean sharded/dct wall-time
	// ratio at shards=1 — the pure dispatch overhead of the sharded entry
	// point, which delegates to the DCT loop (should sit near 1.0).
	OverheadAtOneShard float64
}

// shardSweep is the shard-count sweep; strategies cover both partition
// paths.
var (
	shardSweep      = []int{1, 2, 4}
	shardStrategies = []string{coloring.PartitionRanges, coloring.PartitionLabelProp}
)

// Shard measures the sharded engine across shard counts and partition
// strategies on every context dataset, verifying the determinism
// guarantee as it goes. All runs use W=1 so the comparison against the
// DCT baseline is like-for-like on any host.
func Shard(ctx *Context) (*ShardResult, error) {
	res := &ShardResult{}
	sharded, okS := coloring.Lookup("sharded")
	dct, okD := coloring.Lookup("dct")
	if !okS || !okD {
		return nil, fmt.Errorf("shard: host engines missing from registry")
	}
	var oneShard []float64
	for _, d := range ctx.Datasets {
		_, prepared, err := ctx.BuildPrepared(d)
		if err != nil {
			return nil, err
		}
		ref, err := coloring.BitwiseGreedy(ctx.RunCtx(), prepared, coloring.MaxColorsDefault, true)
		if err != nil {
			return nil, fmt.Errorf("%s reference: %w", d.Abbrev, err)
		}
		start := time.Now()
		dctRes, dctSt, err := dct.Run(ctx.RunCtx(), prepared, coloring.Options{Workers: 1})
		if err != nil {
			return nil, fmt.Errorf("%s dct: %w", d.Abbrev, err)
		}
		dctTime := time.Since(start)
		for _, s := range shardSweep {
			for _, strat := range shardStrategies {
				if s == 1 && strat != coloring.PartitionRanges {
					// shards=1 delegates to the DCT loop before the
					// strategy is consulted; one row is enough.
					continue
				}
				row := ShardRow{
					Dataset: d.Abbrev, Shards: s, Strategy: strat,
					Edges: prepared.NumEdges(), DCTTime: dctTime,
					DCTStats: dctSt, DCTColors: dctRes.NumColors,
				}
				opts := coloring.Options{Workers: 1, Shards: s, PartitionStrategy: strat}
				start = time.Now()
				shRes, shSt, err := sharded.Run(ctx.RunCtx(), prepared, opts)
				if err != nil {
					return nil, fmt.Errorf("%s sharded s=%d %s: %w", d.Abbrev, s, strat, err)
				}
				row.ShardTime = time.Since(start)
				row.ShardStats, row.ShardColors = shSt, shRes.NumColors
				row.Deterministic = true
				for v := range ref.Colors {
					if shRes.Colors[v] != ref.Colors[v] {
						row.Deterministic = false
						break
					}
				}
				if !row.Deterministic {
					return nil, fmt.Errorf("%s s=%d %s: sharded coloring diverged from sequential greedy",
						d.Abbrev, s, strat)
				}
				if s == 1 {
					oneShard = append(oneShard, metrics.Speedup(row.ShardTime, dctTime))
				}
				res.Rows = append(res.Rows, row)
			}
		}
	}
	res.OverheadAtOneShard = metrics.GeoMean(oneShard)
	return res, nil
}

// Print writes the host multi-card ablation table.
func (r *ShardResult) Print(ctx *Context) {
	t := Table{
		Title: "Host multi-card ablation: partitioned sharded engine vs single-pass DCT (W=1, DBG order)",
		Header: []string{"Graph", "S", "strategy", "shard_ms", "dct_ms", "vs_dct",
			"cut_edges", "boundary", "frontier", "cross_defers", "colors"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, fmt.Sprint(row.Shards), row.Strategy,
			fmt.Sprintf("%.2f", row.ShardTime.Seconds()*1e3),
			fmt.Sprintf("%.2f", row.DCTTime.Seconds()*1e3),
			fmt.Sprintf("%.2fx", metrics.Speedup(row.DCTTime, row.ShardTime)),
			fmt.Sprint(row.ShardStats.CutEdges),
			fmt.Sprint(row.ShardStats.BoundaryVertices),
			fmt.Sprint(row.ShardStats.FrontierVertices),
			fmt.Sprint(row.ShardStats.CrossShardDefers),
			fmt.Sprint(row.ShardColors))
	}
	t.Render(ctx)
	fmt.Fprintf(ctx.Out,
		"geomean sharded/dct wall ratio at shards=1: %.2fx; every sharded run matched sequential greedy exactly\n",
		r.OverheadAtOneShard)
	if runtime.NumCPU() == 1 {
		fmt.Fprintln(ctx.Out,
			"note: single-CPU host — shard groups time-slice on one core, so multi-shard rows measure partition + frontier overhead, not multi-card speedup; cut/boundary/frontier columns are the structural (timing-independent) results")
	}
}

// BenchRecords converts the ablation rows to the machine-readable form:
// one sharded record per row plus one dct baseline record per dataset.
func (r *ShardResult) BenchRecords() []BenchRecord {
	recs := make([]BenchRecord, 0, len(r.Rows)+len(r.Rows)/4+1)
	seenBaseline := map[string]bool{}
	for _, row := range r.Rows {
		edges := float64(row.Edges)
		recs = append(recs, BenchRecord{
			Dataset: row.Dataset, Engine: "sharded", Variant: row.Strategy,
			Workers: 1, Shards: row.Shards,
			Colors: row.ShardColors, WallNanos: row.ShardTime.Nanoseconds(),
			NsPerEdge:        float64(row.ShardTime.Nanoseconds()) / edges,
			CutEdges:         row.ShardStats.CutEdges,
			BoundaryVertices: row.ShardStats.BoundaryVertices,
		})
		if !seenBaseline[row.Dataset] {
			seenBaseline[row.Dataset] = true
			recs = append(recs, BenchRecord{
				Dataset: row.Dataset, Engine: "dct", Workers: 1,
				Colors: row.DCTColors, WallNanos: row.DCTTime.Nanoseconds(),
				NsPerEdge: float64(row.DCTTime.Nanoseconds()) / edges,
			})
		}
	}
	return recs
}
