package experiments

import (
	"fmt"

	"bitcolor/internal/engine"
	"bitcolor/internal/gen"
	"bitcolor/internal/sim"
)

// This file holds ablations beyond the paper's own figures, probing the
// design choices DESIGN.md calls out: how large the high-degree cache
// must be, how the optimizations' value scales with memory latency, and
// where the parallel efficiency of Fig 12 goes.

// CacheSweepRow is one cache-capacity point.
type CacheSweepRow struct {
	// Fraction of vertices resident (0 = HDC disabled).
	Fraction    float64
	Capacity    int
	HitRate     float64
	DRAMReads   int64
	TotalCycles int64
	// Normalized to the HDC-off run.
	TotalNorm float64
}

// CacheSweepResult sweeps the HVC capacity on one skewed dataset.
type CacheSweepResult struct {
	Dataset string
	Rows    []CacheSweepRow
}

// CacheSweep measures the sensitivity of the high-degree vertex cache to
// its capacity on a heavy-tailed graph (CL stand-in): because DBG places
// the hottest vertices first, a small resident fraction should capture a
// disproportionate share of reads — the justification for a fixed 1MB
// cache in §3.2.2.
func CacheSweep(ctx *Context) (*CacheSweepResult, error) {
	d, err := gen.ByAbbrev("CL")
	if err != nil {
		return nil, err
	}
	d = pickDataset(ctx, "CL", d)
	_, prepared, err := ctx.BuildPrepared(d)
	if err != nil {
		return nil, err
	}
	n := prepared.NumVertices()
	res := &CacheSweepResult{Dataset: d.Abbrev}
	fractions := []float64{0, 1.0 / 64, 1.0 / 16, 1.0 / 4, 1.0 / 2, 1}
	var base int64
	for _, f := range fractions {
		cfg := sim.DefaultConfig(1)
		capVertices := int(f * float64(n))
		if f == 0 {
			cfg.Options.HDC = false
			capVertices = 0
		} else {
			if capVertices < 1 {
				capVertices = 1
			}
			cfg.CacheVertices = capVertices
		}
		r, err := sim.Run(prepared, cfg)
		if err != nil {
			return nil, fmt.Errorf("fraction %.3f: %w", f, err)
		}
		if base == 0 {
			base = r.TotalCycles
		}
		res.Rows = append(res.Rows, CacheSweepRow{
			Fraction:    f,
			Capacity:    capVertices,
			HitRate:     r.CacheHitRate,
			DRAMReads:   r.ColorDRAM.Reads,
			TotalCycles: r.TotalCycles,
			TotalNorm:   float64(r.TotalCycles) / float64(base),
		})
	}
	return res, nil
}

// pickDataset returns the context's variant of abbrev when present (so
// -small uses the reduced build), falling back to the full registry.
func pickDataset(ctx *Context, abbrev string, fallback gen.Dataset) gen.Dataset {
	for _, d := range ctx.Datasets {
		if d.Abbrev == abbrev {
			return d
		}
	}
	return fallback
}

// Print writes the cache sweep table.
func (r *CacheSweepResult) Print(ctx *Context) {
	t := Table{
		Title:  fmt.Sprintf("Ablation: HVC capacity sweep on %s (single BWPE)", r.Dataset),
		Header: []string{"Resident", "Capacity", "Hit rate", "DRAM reads", "Cycles", "vs no cache"},
	}
	for _, row := range r.Rows {
		label := "off"
		if row.Fraction > 0 {
			label = pct(row.Fraction)
		}
		t.AddRow(label, fmt.Sprint(row.Capacity), pct(row.HitRate),
			fmt.Sprint(row.DRAMReads), fmt.Sprint(row.TotalCycles), f2(row.TotalNorm))
	}
	t.Render(ctx)
}

// DRAMSweepRow is one memory-speed point.
type DRAMSweepRow struct {
	// Multiplier scales all DRAM latencies (random, burst, write) of the
	// default timing: 1 is the default DDR4 grade.
	Multiplier float64
	BSLCycles  int64
	FullCycles int64
	Speedup    float64
}

// DRAMSweepResult sweeps DRAM random latency for baseline vs full
// optimizations.
type DRAMSweepResult struct {
	Dataset string
	Rows    []DRAMSweepRow
}

// DRAMSweep shows that the optimizations' combined win grows as memory
// slows down: the slower the DRAM grade, the more the on-chip cache and
// read pruning matter. Run on the gemsec-Deezer stand-in, which is fully
// cache-resident under the paper's 512K cache — the full design touches
// DRAM only for edge streaming, while the baseline pays DRAM for every
// color read.
func DRAMSweep(ctx *Context) (*DRAMSweepResult, error) {
	d, err := gen.ByAbbrev("GD")
	if err != nil {
		return nil, err
	}
	d = pickDataset(ctx, "GD", d)
	_, prepared, err := ctx.BuildPrepared(d)
	if err != nil {
		return nil, err
	}
	res := &DRAMSweepResult{Dataset: d.Abbrev}
	base := sim.DefaultConfig(1).DRAM
	for _, mult := range []float64{0.5, 1, 2, 4} {
		mk := func(opts engine.Options) (int64, error) {
			cfg := sim.DefaultConfig(1)
			cfg.Options = opts
			cfg.DRAM.RandomLatency = scaleLat(base.RandomLatency, mult)
			cfg.DRAM.BurstLatency = scaleLat(base.BurstLatency, mult)
			cfg.DRAM.WriteLatency = scaleLat(base.WriteLatency, mult)
			cfg.CacheVertices = ctx.CacheVerticesFor(d, prepared.NumVertices())
			r, err := sim.Run(prepared, cfg)
			if err != nil {
				return 0, err
			}
			return r.TotalCycles, nil
		}
		bsl, err := mk(engine.Options{})
		if err != nil {
			return nil, err
		}
		full, err := mk(engine.AllOptions())
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, DRAMSweepRow{
			Multiplier: mult,
			BSLCycles:  bsl,
			FullCycles: full,
			Speedup:    float64(bsl) / float64(full),
		})
	}
	return res, nil
}

// scaleLat scales a latency, clamping at 1 cycle.
func scaleLat(lat int64, mult float64) int64 {
	out := int64(float64(lat) * mult)
	if out < 1 {
		out = 1
	}
	return out
}

// Print writes the DRAM sweep table.
func (r *DRAMSweepResult) Print(ctx *Context) {
	t := Table{
		Title:  fmt.Sprintf("Ablation: DRAM speed-grade sensitivity on %s (BSL vs full optimizations)", r.Dataset),
		Header: []string{"Latency x", "BSL cycles", "Full cycles", "Speedup"},
	}
	for _, row := range r.Rows {
		t.AddRow(f1(row.Multiplier), fmt.Sprint(row.BSLCycles),
			fmt.Sprint(row.FullCycles), f2(row.Speedup)+"x")
	}
	t.Render(ctx)
}

// ConflictRow is one (dataset, parallelism) conflict measurement.
type ConflictRow struct {
	Dataset       string
	Parallelism   int
	EdgesDeferred int64
	DeferredShare float64 // of processed edges
	WaitShare     float64 // conflict wait / total busy cycles
}

// ConflictResult explains Fig 12's sublinearity: how conflict deferrals
// and waits grow with parallelism.
type ConflictResult struct {
	Rows []ConflictRow
}

// ConflictAnalysis measures deferral rates across the parallelism axis.
func ConflictAnalysis(ctx *Context) (*ConflictResult, error) {
	res := &ConflictResult{}
	for _, d := range ctx.Datasets {
		_, prepared, err := ctx.BuildPrepared(d)
		if err != nil {
			return nil, err
		}
		for _, p := range []int{2, 16} {
			cfg := sim.DefaultConfig(p)
			cfg.CacheVertices = ctx.CacheVerticesFor(d, prepared.NumVertices())
			r, err := sim.Run(prepared, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s P=%d: %w", d.Abbrev, p, err)
			}
			processed := r.Aggregate.EdgesTotal - r.Aggregate.EdgesPruned
			row := ConflictRow{
				Dataset:       d.Abbrev,
				Parallelism:   p,
				EdgesDeferred: r.Aggregate.EdgesDeferred,
			}
			if processed > 0 {
				row.DeferredShare = float64(r.Aggregate.EdgesDeferred) / float64(processed)
			}
			if r.Aggregate.BusyCycles > 0 {
				row.WaitShare = float64(r.Aggregate.ConflictWaitCycles) / float64(r.Aggregate.BusyCycles)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Print writes the conflict analysis table.
func (r *ConflictResult) Print(ctx *Context) {
	t := Table{
		Title:  "Ablation: conflict deferrals by parallelism (the Fig 12 sublinearity)",
		Header: []string{"Graph", "P", "Deferred edges", "Share of processed", "Wait share of busy"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, fmt.Sprint(row.Parallelism),
			fmt.Sprint(row.EdgesDeferred), pct(row.DeferredShare), pct(row.WaitShare))
	}
	t.Render(ctx)
}
