package experiments

import (
	"fmt"
	"runtime"
	"time"

	"bitcolor/internal/cache"
	"bitcolor/internal/coloring"
	"bitcolor/internal/metrics"
)

// LocalityRow is one dataset × (DBG on/off) × (gather on/off) arm of the
// memory-locality ablation on the fused bit-wise host engine.
type LocalityRow struct {
	Dataset string
	// DBG marks the arm running on the reordered, edge-sorted graph;
	// Gather marks the blocked color-gather + PUV memory path.
	DBG, Gather bool
	Workers     int
	Time        time.Duration
	NsPerEdge   float64
	Colors      int
	Stats       metrics.ParallelStats
	// HotCoverage is the fraction of directed adjacency entries whose
	// destination sits under the hot-tier threshold v_t (the analytic
	// HDC coverage of this arm's graph).
	HotCoverage float64
}

// LocalityResult is the software rendering of the paper's Fig 11 memory
// ablation: the same engine measured with and without DBG preprocessing
// and with and without the MGR/HDC/PUV-style gather, isolating how much
// of the host speedup is memory layout rather than ALU.
type LocalityResult struct {
	Rows []LocalityRow
	// GatherSpeedup is the geometric-mean time advantage of the gather
	// over the naive path on the DBG-preprocessed arm.
	GatherSpeedup float64
	// DBGSpeedup is the geometric-mean advantage of DBG preprocessing
	// with the gather on.
	DBGSpeedup float64
}

// Locality measures the 2×2 ablation on every context dataset.
func Locality(ctx *Context) (*LocalityResult, error) {
	res := &LocalityResult{}
	eng, ok := coloring.Lookup("parallelbitwise")
	if !ok {
		return nil, fmt.Errorf("locality: parallelbitwise missing from registry")
	}
	workers := runtime.GOMAXPROCS(0)
	var gatherSpeedups, dbgSpeedups []float64
	for _, d := range ctx.Datasets {
		raw, prepared, err := ctx.BuildPrepared(d)
		if err != nil {
			return nil, err
		}
		vt := ctx.CacheVerticesFor(d, raw.NumVertices())
		times := map[[2]bool]time.Duration{}
		for _, dbg := range []bool{false, true} {
			g := raw
			if dbg {
				g = prepared
			}
			for _, gather := range []bool{false, true} {
				row := LocalityRow{Dataset: d.Abbrev, DBG: dbg, Gather: gather, Workers: workers}
				start := time.Now()
				out, st, err := eng.Run(ctx.RunCtx(), g, coloring.Options{
					Workers:       workers,
					DisableGather: !gather,
					// The ablation's gather arm must actually run the gather
					// even on the low-degree road datasets the adaptive
					// heuristic would switch off.
					ForceGather: gather,
					HotVertices: vt,
				})
				if err != nil {
					return nil, fmt.Errorf("%s dbg=%v gather=%v: %w", d.Abbrev, dbg, gather, err)
				}
				row.Time = time.Since(start)
				row.NsPerEdge = float64(row.Time.Nanoseconds()) / float64(g.NumEdges())
				row.Colors = out.NumColors
				row.Stats = st
				if gather {
					row.HotCoverage = cache.CoverageRatio(g.Offsets, g.Edges, st.HotThreshold)
				}
				times[[2]bool{dbg, gather}] = row.Time
				res.Rows = append(res.Rows, row)
			}
		}
		gatherSpeedups = append(gatherSpeedups,
			metrics.Speedup(times[[2]bool{true, false}], times[[2]bool{true, true}]))
		dbgSpeedups = append(dbgSpeedups,
			metrics.Speedup(times[[2]bool{false, true}], times[[2]bool{true, true}]))
	}
	res.GatherSpeedup = metrics.GeoMean(gatherSpeedups)
	res.DBGSpeedup = metrics.GeoMean(dbgSpeedups)
	return res, nil
}

// Print writes the locality ablation table.
func (r *LocalityResult) Print(ctx *Context) {
	t := Table{
		Title: "Memory-locality ablation: parallel bit-wise engine × (DBG, blocked gather) — software MGR/HDC/PUV",
		Header: []string{"Graph", "DBG", "Gather", "W", "ms", "ns/edge", "colors",
			"hot%", "merge%", "pruned", "hdc_cov"},
	}
	for _, row := range r.Rows {
		hot, merge, pruned, cov := "-", "-", "-", "-"
		if row.Gather {
			hot = pct(row.Stats.Gather.HotRatio())
			merge = pct(row.Stats.Gather.MergeRatio())
			pruned = fmt.Sprint(row.Stats.Gather.PrunedTail)
			cov = pct(row.HotCoverage)
		}
		t.AddRow(row.Dataset, onOff(row.DBG), onOff(row.Gather), fmt.Sprint(row.Workers),
			fmt.Sprintf("%.2f", row.Time.Seconds()*1e3), f2(row.NsPerEdge),
			fmt.Sprint(row.Colors), hot, merge, pruned, cov)
	}
	t.Render(ctx)
	fmt.Fprintf(ctx.Out, "geomean gather speedup (DBG graphs): %.2fx; geomean DBG speedup (gather on): %.2fx\n",
		r.GatherSpeedup, r.DBGSpeedup)
}

// BenchRecords converts the ablation rows to the machine-readable form.
func (r *LocalityResult) BenchRecords() []BenchRecord {
	recs := make([]BenchRecord, 0, len(r.Rows))
	for _, row := range r.Rows {
		recs = append(recs, BenchRecord{
			Dataset:   row.Dataset,
			Engine:    "parallelbitwise",
			Variant:   fmt.Sprintf("dbg=%s,gather=%s", onOff(row.DBG), onOff(row.Gather)),
			Workers:   row.Workers,
			Colors:    row.Colors,
			WallNanos: row.Time.Nanoseconds(),
			NsPerEdge: row.NsPerEdge,
		})
	}
	return recs
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
