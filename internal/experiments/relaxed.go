package experiments

import (
	"fmt"

	"bitcolor/internal/sim"
)

// RelaxedRow compares strict-order dispatch against the paper-literal
// relaxed FIFO dispatch on one dataset at P=16.
type RelaxedRow struct {
	Dataset          string
	StrictCycles     int64
	RelaxedCycles    int64
	HazardEdges      int64
	RepairedVertices int
	RepairCycles     int64
	// NetRelaxedCycles includes the repair pass.
	NetRelaxedCycles int64
}

// RelaxedResult holds the dispatch-discipline ablation.
type RelaxedResult struct {
	Rows []RelaxedRow
}

// Relaxed measures the cost/benefit of the strict index-order dispatch
// this reproduction uses: the relaxed mode's makespan can be slightly
// lower (no head-of-line blocking), but any hazard forces a sequential
// repair pass. On DBG-reordered graphs the striped HDV queues keep loads
// balanced and hazards rare — evidence the paper's design implicitly
// depends on the reordering for correctness, not just performance.
func Relaxed(ctx *Context) (*RelaxedResult, error) {
	res := &RelaxedResult{}
	for _, d := range ctx.Datasets {
		_, prepared, err := ctx.BuildPrepared(d)
		if err != nil {
			return nil, err
		}
		cfg := sim.DefaultConfig(16)
		cfg.CacheVertices = ctx.CacheVerticesFor(d, prepared.NumVertices())
		strict, err := sim.Run(prepared, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s strict: %w", d.Abbrev, err)
		}
		relaxed, err := sim.RunRelaxed(prepared, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s relaxed: %w", d.Abbrev, err)
		}
		res.Rows = append(res.Rows, RelaxedRow{
			Dataset:          d.Abbrev,
			StrictCycles:     strict.TotalCycles,
			RelaxedCycles:    relaxed.TotalCycles,
			HazardEdges:      relaxed.HazardEdges,
			RepairedVertices: relaxed.RepairedVertices,
			RepairCycles:     relaxed.RepairCycles,
			NetRelaxedCycles: relaxed.TotalCycles + relaxed.RepairCycles,
		})
	}
	return res, nil
}

// Print writes the dispatch-discipline table.
func (r *RelaxedResult) Print(ctx *Context) {
	t := Table{
		Title:  "Ablation: strict vs relaxed (paper-literal FIFO) dispatch at P16",
		Header: []string{"Graph", "Strict cycles", "Relaxed cycles", "Hazards", "Repairs", "Relaxed+repair"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Dataset,
			fmt.Sprint(row.StrictCycles), fmt.Sprint(row.RelaxedCycles),
			fmt.Sprint(row.HazardEdges), fmt.Sprint(row.RepairedVertices),
			fmt.Sprint(row.NetRelaxedCycles))
	}
	t.Render(ctx)
}
