package experiments

import (
	"fmt"

	"bitcolor/internal/metrics"
	"bitcolor/internal/sim"
)

// GeneralityRow compares the greedy pipeline against Jones–Plassmann on
// the identical accelerator substrate (same engines, cache, channels).
type GeneralityRow struct {
	Dataset       string
	GreedyCycles  int64
	JPCycles      int64
	JPRounds      int
	GreedyColors  int
	JPColors      int
	GreedyEdgeOps int64
	JPEdgeOps     int64
	SpeedupVsJP   float64
}

// GeneralityResult quantifies the paper's §2.4 argument: the greedy
// algorithm with the data conflict table beats the MIS family on the
// same hardware because IS rounds re-scan frontiers.
type GeneralityResult struct {
	Rows       []GeneralityRow
	AvgSpeedup float64
}

// Generality runs both algorithms on the BitColor substrate at P=8.
func Generality(ctx *Context) (*GeneralityResult, error) {
	res := &GeneralityResult{}
	var speedups []float64
	for _, d := range ctx.Datasets {
		_, prepared, err := ctx.BuildPrepared(d)
		if err != nil {
			return nil, err
		}
		cfg := sim.DefaultConfig(8)
		cfg.CacheVertices = ctx.CacheVerticesFor(d, prepared.NumVertices())
		greedy, err := sim.Run(prepared, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s greedy: %w", d.Abbrev, err)
		}
		jp, err := sim.RunJonesPlassmann(prepared, cfg, ctx.Seed)
		if err != nil {
			return nil, fmt.Errorf("%s jp: %w", d.Abbrev, err)
		}
		row := GeneralityRow{
			Dataset:       d.Abbrev,
			GreedyCycles:  greedy.TotalCycles,
			JPCycles:      jp.TotalCycles,
			JPRounds:      jp.Rounds,
			GreedyColors:  greedy.NumColors,
			JPColors:      jp.NumColors,
			GreedyEdgeOps: greedy.Aggregate.EdgesTotal - greedy.Aggregate.EdgesPruned,
			JPEdgeOps:     jp.EdgeWork,
			SpeedupVsJP:   float64(jp.TotalCycles) / float64(greedy.TotalCycles),
		}
		speedups = append(speedups, row.SpeedupVsJP)
		res.Rows = append(res.Rows, row)
	}
	res.AvgSpeedup = metrics.Mean(speedups)
	return res, nil
}

// Print writes the generality table.
func (r *GeneralityResult) Print(ctx *Context) {
	t := Table{
		Title:  "§2.4 generality: greedy pipeline vs Jones-Plassmann on the same substrate (P=8)",
		Header: []string{"Graph", "Greedy cycles", "JP cycles", "JP rounds", "Greedy/JP colors", "Edge ops g/jp", "Greedy speedup"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Dataset,
			fmt.Sprint(row.GreedyCycles), fmt.Sprint(row.JPCycles), fmt.Sprint(row.JPRounds),
			fmt.Sprintf("%d/%d", row.GreedyColors, row.JPColors),
			fmt.Sprintf("%d/%d", row.GreedyEdgeOps, row.JPEdgeOps),
			f2(row.SpeedupVsJP)+"x")
	}
	t.Render(ctx)
	fmt.Fprintf(ctx.Out, "average greedy-over-JP speedup on identical hardware: %.2fx\n", r.AvgSpeedup)
}
