package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolNilGrantsEverything(t *testing.T) {
	var p *Pool
	got, err := p.Acquire(context.Background(), 17)
	if err != nil || got != 17 {
		t.Fatalf("nil pool Acquire = (%d, %v), want (17, nil)", got, err)
	}
	p.Release(17) // must not panic
	if p.Cap() != 0 || p.InUse() != 0 || p.Waiting() != 0 {
		t.Fatalf("nil pool introspection not zero")
	}
}

func TestPoolClampsWantToCap(t *testing.T) {
	p := NewPool(4)
	got, err := p.Acquire(context.Background(), 99)
	if err != nil || got != 4 {
		t.Fatalf("Acquire(99) on cap-4 pool = (%d, %v), want (4, nil)", got, err)
	}
	if p.InUse() != 4 {
		t.Fatalf("InUse = %d", p.InUse())
	}
	p.Release(got)
	got, err = p.Acquire(context.Background(), 0)
	if err != nil || got != 1 {
		t.Fatalf("Acquire(0) = (%d, %v), want (1, nil)", got, err)
	}
	p.Release(got)
	if p.InUse() != 0 {
		t.Fatalf("InUse after releases = %d", p.InUse())
	}
}

func TestPoolFIFOAdmission(t *testing.T) {
	p := NewPool(4)
	first, err := p.Acquire(context.Background(), 4)
	if err != nil || first != 4 {
		t.Fatalf("priming Acquire = (%d, %v)", first, err)
	}

	// Queue a large request, then a small one behind it. FIFO means the
	// small request must NOT sneak past the large head even when enough
	// slots for it alone are free.
	order := make(chan int, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	ready := make(chan struct{}, 2)
	go func() {
		defer wg.Done()
		ready <- struct{}{}
		n, err := p.Acquire(context.Background(), 3)
		if err != nil || n != 3 {
			t.Errorf("large Acquire = (%d, %v)", n, err)
		}
		order <- 3
	}()
	// Wait until the large request is queued before issuing the small one.
	<-ready
	waitFor(t, func() bool { return p.Waiting() == 1 })
	go func() {
		defer wg.Done()
		n, err := p.Acquire(context.Background(), 1)
		if err != nil || n != 1 {
			t.Errorf("small Acquire = (%d, %v)", n, err)
		}
		order <- 1
	}()
	waitFor(t, func() bool { return p.Waiting() == 2 })

	// Free 2 slots: enough for the small request, not the large head —
	// nobody may be admitted.
	p.Release(2)
	time.Sleep(10 * time.Millisecond)
	if got := p.Waiting(); got != 2 {
		t.Fatalf("small request bypassed the FIFO head (waiting=%d)", got)
	}

	// Free one more: the head (3) is admitted; the small request still
	// waits because the head consumed every free slot.
	p.Release(1)
	if a := <-order; a != 3 {
		t.Fatalf("first admission = %d, want 3", a)
	}
	waitFor(t, func() bool { return p.Waiting() == 1 })

	// Free the last held slot: now the small request goes through.
	p.Release(1)
	if b := <-order; b != 1 {
		t.Fatalf("second admission = %d, want 1", b)
	}
	wg.Wait()
	p.Release(4)
	if p.InUse() != 0 || p.Waiting() != 0 {
		t.Fatalf("pool not drained: inUse=%d waiting=%d", p.InUse(), p.Waiting())
	}
}

func TestPoolAcquireCancelWhileWaiting(t *testing.T) {
	p := NewPool(2)
	if _, err := p.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Acquire(ctx, 1)
		done <- err
	}()
	waitFor(t, func() bool { return p.Waiting() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire after cancel = %v", err)
	}
	if p.Waiting() != 0 {
		t.Fatalf("cancelled waiter still queued")
	}
	// The pool must still be fully usable.
	p.Release(2)
	if got, err := p.Acquire(context.Background(), 2); err != nil || got != 2 {
		t.Fatalf("post-cancel Acquire = (%d, %v)", got, err)
	}
	p.Release(2)
}

func TestPoolCancelGrantRaceReturnsSlots(t *testing.T) {
	// Hammer the cancel-vs-grant race: a waiter whose grant lands at the
	// same instant its ctx is cancelled must hand the slots back, never
	// leak them. After every iteration the pool must be empty again.
	p := NewPool(1)
	for i := 0; i < 200; i++ {
		if _, err := p.Acquire(context.Background(), 1); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			if n, err := p.Acquire(ctx, 1); err == nil {
				p.Release(n)
			}
			close(done)
		}()
		waitFor(t, func() bool { return p.Waiting() == 1 })
		go cancel()
		p.Release(1) // may race the cancel — both orders must be safe
		<-done
		waitFor(t, func() bool { return p.InUse() == 0 })
		cancel()
	}
	if got, err := p.Acquire(context.Background(), 1); err != nil || got != 1 {
		t.Fatalf("pool leaked slots: Acquire = (%d, %v)", got, err)
	}
	p.Release(1)
}

func TestPoolUncontendedAcquireZeroAlloc(t *testing.T) {
	p := NewPool(4)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		n, err := p.Acquire(ctx, 2)
		if err != nil {
			t.Fatal(err)
		}
		p.Release(n)
	})
	if allocs != 0 {
		t.Fatalf("uncontended Acquire/Release allocated %.1f times per run", allocs)
	}
}

func TestPoolStressNeverExceedsCap(t *testing.T) {
	const cap = 3
	p := NewPool(cap)
	var inUse, peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				want := 1 + (g+i)%cap
				n, err := p.Acquire(context.Background(), want)
				if err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				cur := inUse.Add(int64(n))
				for {
					old := peak.Load()
					if cur <= old || peak.CompareAndSwap(old, cur) {
						break
					}
				}
				inUse.Add(-int64(n))
				p.Release(n)
			}
		}(g)
	}
	wg.Wait()
	if peak.Load() > cap {
		t.Fatalf("concurrent holds peaked at %d > cap %d", peak.Load(), cap)
	}
	if p.InUse() != 0 || p.Waiting() != 0 {
		t.Fatalf("pool not drained: inUse=%d waiting=%d", p.InUse(), p.Waiting())
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
