package exec

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"bitcolor/internal/dispatch"
	"bitcolor/internal/graph"
	"bitcolor/internal/obs"
)

// chainWorld is a deliberately adversarial kernel for the owner loop: a
// dependency chain v → v-1 → … → 0 where every vertex except 0 must
// wait for its predecessor. With pattern-p dispatch this forces maximal
// parking and cross-worker forwarding; with a tiny ring it forces the
// inline-wait fallback too.
type chainWorld struct {
	done []uint32 // 1 once "colored", atomically published
}

func newChainWorld(n int) *chainWorld { return &chainWorld{done: make([]uint32, n)} }

func (c *chainWorld) attempt(v graph.VertexID) (graph.VertexID, Outcome) {
	if v > 0 && atomic.LoadUint32(&c.done[v-1]) == 0 {
		return v - 1, Deferred
	}
	atomic.StoreUint32(&c.done[uint32(v)], 1)
	return 0, Colored
}

func (c *chainWorld) published(u uint32) bool { return atomic.LoadUint32(&c.done[u]) != 0 }

func (c *chainWorld) loop(ctx context.Context, abort *atomic.Bool, ringCap int, sh *obs.Shard) *OwnerLoop {
	return &OwnerLoop{
		Ctx:       ctx,
		Abort:     abort,
		Ring:      dispatch.NewForwardRing(ringCap),
		Shard:     sh,
		Attempt:   c.attempt,
		Published: c.published,
		FailErr:   errors.New("unused"),
	}
}

func TestOwnerLoopChainDependencyCompletes(t *testing.T) {
	const n = 5000
	for _, workers := range []int{1, 2, 3, 4} {
		c := newChainWorld(n)
		ss := obs.NewShardSet(workers)
		var abort atomic.Bool
		errs := make([]error, workers)
		Go(workers, func(w int) {
			// Ring cap 4 forces both parking and the ring-full inline wait.
			errs[w] = c.loop(context.Background(), &abort, 4, ss.Shard(w)).RunRange(w, workers, n)
		})
		for w, err := range errs {
			if err != nil {
				t.Fatalf("workers=%d: worker %d: %v", workers, w, err)
			}
		}
		for v := 0; v < n; v++ {
			if c.done[v] == 0 {
				t.Fatalf("workers=%d: vertex %d never colored", workers, v)
			}
		}
		// Every park must be replayed at least once.
		if d, r := ss.Total(obs.CtrDeferred), ss.Total(obs.CtrDeferRetries); r < d {
			t.Fatalf("workers=%d: DeferRetries %d < Deferred %d", workers, r, d)
		}
		if workers > 1 && ss.Total(obs.CtrDeferred) == 0 {
			t.Fatalf("workers=%d: chain graph produced no deferrals", workers)
		}
	}
}

func TestOwnerLoopRunListChain(t *testing.T) {
	const n = 2000
	list := make([]graph.VertexID, n)
	for i := range list {
		list[i] = graph.VertexID(i)
	}
	const workers = 3
	c := newChainWorld(n)
	ss := obs.NewShardSet(workers)
	var abort atomic.Bool
	errs := make([]error, workers)
	Go(workers, func(w int) {
		errs[w] = c.loop(context.Background(), &abort, 4, ss.Shard(w)).RunList(list, w, workers)
	})
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for v := 0; v < n; v++ {
		if c.done[v] == 0 {
			t.Fatalf("vertex %d never colored", v)
		}
	}
}

func TestOwnerLoopCancelPreCancelledCtx(t *testing.T) {
	// The poll fires every 64 owned vertices, so the range must be well
	// past that for the cancellation to be observed.
	const n = 4096
	c := newChainWorld(n)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var abort atomic.Bool
	err := c.loop(ctx, &abort, 8, obs.NewShardSet(1).Shard(0)).RunRange(0, 1, n)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !abort.Load() {
		t.Fatal("cancellation did not raise the shared abort flag")
	}
	colored := 0
	for v := range c.done {
		if c.done[v] != 0 {
			colored++
		}
	}
	if colored >= n {
		t.Fatal("cancelled run still colored the whole range")
	}
}

func TestOwnerLoopFailedAbortsPeers(t *testing.T) {
	// Worker 0 fails on its first vertex; peers must stop early with a
	// nil error (the failing worker reports the cause), and the shared
	// abort must be raised.
	const n = 1 << 16
	failErr := errors.New("palette exhausted")
	done := make([]uint32, n)
	var abort atomic.Bool
	ss := obs.NewShardSet(2)
	errs := make([]error, 2)
	Go(2, func(w int) {
		l := &OwnerLoop{
			Ctx:   context.Background(),
			Abort: &abort,
			Ring:  dispatch.NewForwardRing(8),
			Shard: ss.Shard(w),
			Attempt: func(v graph.VertexID) (graph.VertexID, Outcome) {
				if w == 0 {
					return 0, Failed
				}
				// Hold the peer back until the failure has landed, so the
				// test is deterministic on any scheduler: after this gate the
				// peer may color at most one poll stride before stopping.
				for !abort.Load() {
					runtime.Gosched()
				}
				atomic.StoreUint32(&done[uint32(v)], 1)
				return 0, Colored
			},
			Published: func(u uint32) bool { return atomic.LoadUint32(&done[u]) != 0 },
			FailErr:   failErr,
		}
		errs[w] = l.RunRange(w, 2, n)
	})
	if !errors.Is(errs[0], failErr) {
		t.Fatalf("failing worker err = %v", errs[0])
	}
	if errs[1] != nil {
		t.Fatalf("peer err = %v, want nil (abort observed)", errs[1])
	}
	if !abort.Load() {
		t.Fatal("failure did not raise abort")
	}
	colored := 0
	for v := range done {
		if done[v] != 0 {
			colored++
		}
	}
	if colored >= n/2 {
		t.Fatalf("peer colored %d vertices; abort did not stop it early", colored)
	}
}

func TestOwnerLoopHandedSkipsVertex(t *testing.T) {
	// Handed vertices are finished as far as the loop is concerned — no
	// park, no publish requirement.
	const n = 100
	var attempts atomic.Int64
	var abort atomic.Bool
	l := &OwnerLoop{
		Ctx:   context.Background(),
		Abort: &abort,
		Ring:  dispatch.NewForwardRing(8),
		Shard: obs.NewShardSet(1).Shard(0),
		Attempt: func(v graph.VertexID) (graph.VertexID, Outcome) {
			attempts.Add(1)
			return 0, Handed
		},
		Published: func(u uint32) bool { return true },
	}
	if err := l.RunRange(0, 1, n); err != nil {
		t.Fatal(err)
	}
	if attempts.Load() != n {
		t.Fatalf("attempts = %d, want %d (exactly one per handed vertex)", attempts.Load(), n)
	}
}
