// Package exec is the shared parallel-execution substrate under every
// host-parallel coloring engine: the software rendering of the paper's
// dispatcher/PE split. The hardware separates *what* a processing
// engine computes (the bit-wise coloring kernel) from *how* work reaches
// it (per-PE HDV FIFOs fed by the dispatcher); this package is that
// second half for goroutines, so the engines in internal/coloring are
// reduced to their kernels.
//
// Three dispatch policies cover the engines in the tree:
//
//   - BlockCursor + Blocks: a shared atomic cursor handing out
//     fixed-size index blocks to whichever worker is free — the
//     dispatcher popping per-PE FIFOs, used by the speculative engines
//     (ParallelBitwise, Speculative) whose work lists shrink each round.
//
//   - OwnerLoop.RunRange: owner-computes pattern-p dispatch (worker w
//     owns vertices w, w+P, …) with park/replay forwarding through a
//     dispatch.ForwardRing — the DCT engine's schedule.
//
//   - OwnerLoop.RunList: the same owner-computes loop over an explicit
//     vertex list — the sharded engine's per-shard interior lists and
//     its boundary frontier.
//
// All three poll ctx on a stride that stays off the per-edge hot path
// (per block claim, or every 64 owned vertices), count into per-worker
// obs.Shard lanes, and report the lowest-indexed worker's error — the
// exact cancellation and error-selection semantics the engines had when
// each carried its own private copy of this scaffolding.
//
// Pool is the request-granularity layer above: a bounded worker-slot
// pool with FIFO admission that N concurrent ColorContext/Pipeline runs
// share, and the scheduler a multi-tenant coloring service (colord)
// sits on.
package exec

// CtxStrideMask sets how often sequential scan loops poll ctx.Err():
// every 64 Ki iterations. One modular test plus a branch per vertex is
// free next to an adjacency scan, and even degenerate graphs cancel
// within a few hundred microseconds.
const CtxStrideMask = 1<<16 - 1
