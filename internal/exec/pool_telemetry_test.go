package exec

import (
	"context"
	"strings"
	"testing"
	"time"

	"bitcolor/internal/obs"
)

// waitUntil polls cond for up to two seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPoolStatsSnapshot(t *testing.T) {
	p := NewPool(4)
	st := p.Stats()
	if !strings.HasPrefix(st.Name, "pool-") || st.Cap != 4 || st.InUse != 0 || st.QueueDepth != 0 {
		t.Fatalf("fresh stats = %+v", st)
	}
	got, err := p.Acquire(context.Background(), 3)
	if err != nil || got != 3 {
		t.Fatalf("acquire: %d, %v", got, err)
	}
	if st = p.Stats(); st.InUse != 3 {
		t.Fatalf("in-use stats = %+v", st)
	}

	// A blocked acquire surfaces as queue depth.
	done := make(chan struct{})
	go func() {
		defer close(done)
		n, err := p.Acquire(context.Background(), 2)
		if err == nil {
			p.Release(n)
		}
	}()
	waitUntil(t, "queue depth 1", func() bool { return p.Stats().QueueDepth == 1 })
	p.Release(3)
	<-done
	if st = p.Stats(); st.InUse != 0 || st.QueueDepth != 0 {
		t.Fatalf("drained stats = %+v", st)
	}

	var nilPool *Pool
	if st = nilPool.Stats(); st.Name != "unbounded" || st.Cap != 0 {
		t.Fatalf("nil pool stats = %+v", st)
	}
}

func TestPoolPlaneTelemetry(t *testing.T) {
	r := obs.Plane()
	acquires := r.Counter("bitcolor_pool_acquires_total")
	queueWaits := r.Counter("bitcolor_pool_queue_waits_total")
	cancelled := r.Counter("bitcolor_pool_cancelled_waits_total")
	demand := r.Counter("bitcolor_pool_demand_slots_total")
	granted := r.Counter("bitcolor_pool_granted_slots_total")
	shrinks := r.Counter("bitcolor_pool_shrinks_total")

	const tag = "telemetry-test-engine"
	p := NewPool(2)

	// The plane is process-global and cumulative (think -count=2), so
	// every assertion is a delta against this baseline.
	base := map[*obs.Family]int64{}
	for _, f := range []*obs.Family{acquires, queueWaits, cancelled, demand, granted, shrinks} {
		base[f] = f.Value(tag)
	}
	delta := func(f *obs.Family) int64 { return f.Value(tag) - base[f] }

	// Uncontended, demand above cap: counted as one acquire, demand 5,
	// granted 2, one shrink, no queue wait.
	n, err := p.AcquireTagged(context.Background(), 5, tag)
	if err != nil || n != 2 {
		t.Fatalf("acquire: %d, %v", n, err)
	}
	if delta(acquires) != 1 || delta(demand) != 5 || delta(granted) != 2 ||
		delta(shrinks) != 1 || delta(queueWaits) != 0 {
		t.Fatalf("fast-path counters: acquires=%d demand=%d granted=%d shrinks=%d waits=%d",
			delta(acquires), delta(demand), delta(granted),
			delta(shrinks), delta(queueWaits))
	}

	// Contended: the second acquire queues, then is granted on release.
	done := make(chan struct{})
	go func() {
		defer close(done)
		m, err := p.AcquireTagged(context.Background(), 1, tag)
		if err == nil {
			p.Release(m)
		}
	}()
	waitUntil(t, "waiter queued", func() bool { return p.Waiting() == 1 })
	p.Release(2)
	<-done
	if delta(acquires) != 2 || delta(queueWaits) != 1 {
		t.Fatalf("queued-path counters: acquires=%d waits=%d",
			delta(acquires), delta(queueWaits))
	}

	// Cancelled while queued: billed to the cancelled counter, not the
	// acquired one.
	n, err = p.AcquireTagged(context.Background(), 2, tag)
	if err != nil || n != 2 {
		t.Fatalf("refill: %d, %v", n, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := p.AcquireTagged(ctx, 1, tag)
		errc <- err
	}()
	waitUntil(t, "cancellable waiter queued", func() bool { return p.Waiting() == 1 })
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled acquire err = %v", err)
	}
	// acquires stays at 3 (the refill was the third) — the abandoned
	// wait is billed only to the cancelled counter.
	if delta(cancelled) != 1 || delta(acquires) != 3 {
		t.Fatalf("cancel counters: cancelled=%d acquires=%d",
			delta(cancelled), delta(acquires))
	}
	p.Release(2)

	// Gauges track this pool's occupancy under its own label.
	st := p.Stats()
	if got := r.Gauge("bitcolor_pool_cap").GaugeValue(st.Name); got != 2 {
		t.Fatalf("cap gauge = %v", got)
	}
	if got := r.Gauge("bitcolor_pool_in_use").GaugeValue(st.Name); got != 0 {
		t.Fatalf("in-use gauge = %v", got)
	}
}
