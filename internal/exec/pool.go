package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bitcolor/internal/obs"
)

// Pool is a bounded pool of worker slots shared by concurrent engine
// runs: each run acquires as many slots as it will spawn goroutines,
// runs, and releases them. Admission is strictly FIFO — a large request
// at the head is never bypassed by smaller ones behind it, so no
// request starves — which is the backpressure contract a multi-tenant
// coloring service needs at request granularity.
//
// The uncontended Acquire/Release pair is allocation-free (one mutex
// hold each), so a pooled run costs a zero-alloc hot path nothing; a
// waiter is materialized only when the pool is actually contended.
//
// A nil *Pool is valid everywhere and grants every request immediately
// — unbounded, exactly the behavior of a run without a pool.
//
// Every pool feeds the process-wide telemetry plane (obs.Plane):
// cap/in-use/queue-depth gauges per pool and admission counters plus a
// wait histogram per engine tag — the bitcolor_pool_* families. The
// updates ride the mutex the admission path already holds, so the
// uncontended path stays allocation-free.
type Pool struct {
	mu      sync.Mutex
	name    string
	cap     int
	inUse   int
	waiting int
	head    *waiter
	tail    *waiter
}

// waiter is one blocked Acquire in the FIFO queue.
type waiter struct {
	want  int
	ready chan int
	next  *waiter
}

// poolSeq numbers pools for the telemetry "pool" label.
var poolSeq atomic.Int64

// NewPool builds a pool admitting at most maxWorkers concurrently held
// slots (<=0: GOMAXPROCS).
func NewPool(maxWorkers int) *Pool {
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{cap: maxWorkers, name: fmt.Sprintf("pool-%d", poolSeq.Add(1))}
	obs.PoolGauges(p.statusLocked())
	return p
}

// Name returns the pool's telemetry label ("" for a nil pool).
func (p *Pool) Name() string {
	if p == nil {
		return ""
	}
	return p.name
}

// statusLocked snapshots the pool state; callers hold p.mu (or, in
// NewPool, exclusive access).
func (p *Pool) statusLocked() obs.PoolStatus {
	return obs.PoolStatus{Name: p.name, Cap: p.cap, InUse: p.inUse, QueueDepth: p.waiting}
}

// Stats snapshots the pool's instantaneous state. Safe on a nil pool
// (an unbounded pseudo-pool with zero occupancy).
func (p *Pool) Stats() obs.PoolStatus {
	if p == nil {
		return obs.PoolStatus{Name: "unbounded"}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.statusLocked()
}

// Cap returns the pool's slot bound (0 for a nil pool: unbounded).
func (p *Pool) Cap() int {
	if p == nil {
		return 0
	}
	return p.cap
}

// InUse returns the currently held slot count.
func (p *Pool) InUse() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inUse
}

// Waiting returns the number of Acquire calls blocked in the queue.
func (p *Pool) Waiting() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.waiting
}

// Acquire blocks until `want` slots are free (want is clamped to
// [1, Cap], so a request larger than the pool is granted the whole
// pool rather than deadlocking) and returns the granted count. Grants
// are strictly FIFO. On cancellation the request leaves the queue and
// ctx.Err() is returned; a grant that raced the cancellation is
// returned to the pool. A nil pool grants want immediately.
func (p *Pool) Acquire(ctx context.Context, want int) (int, error) {
	return p.AcquireTagged(ctx, want, "")
}

// AcquireTagged is Acquire with a telemetry tag — the engine name the
// admission is billed to in the per-engine bitcolor_pool_* counters.
// The engine dispatch decorator uses it; untagged callers land on the
// "" series.
func (p *Pool) AcquireTagged(ctx context.Context, want int, tag string) (int, error) {
	if want < 1 {
		want = 1
	}
	if p == nil {
		return want, nil
	}
	demand := want
	if want > p.cap {
		want = p.cap
	}
	p.mu.Lock()
	if p.head == nil && p.cap-p.inUse >= want {
		p.inUse += want
		st := p.statusLocked()
		p.mu.Unlock()
		obs.PoolGauges(st)
		obs.PoolAcquired(tag, demand, want, false, 0)
		return want, nil
	}
	w := &waiter{want: want, ready: make(chan int, 1)}
	if p.tail == nil {
		p.head, p.tail = w, w
	} else {
		p.tail.next = w
		p.tail = w
	}
	p.waiting++
	st := p.statusLocked()
	p.mu.Unlock()
	obs.PoolGauges(st)
	queuedAt := time.Now()
	select {
	case granted := <-w.ready:
		obs.PoolAcquired(tag, demand, granted, true, time.Since(queuedAt).Seconds())
		return granted, nil
	case <-ctx.Done():
		if !p.remove(w) {
			// The grant raced the cancellation: it is already committed,
			// so hand the slots back (which wakes the next waiter).
			p.Release(<-w.ready)
		}
		obs.PoolCancelled(tag)
		return 0, ctx.Err()
	}
}

// remove unlinks w from the queue; false means w was already granted.
func (p *Pool) remove(w *waiter) bool {
	p.mu.Lock()
	var prev *waiter
	for cur := p.head; cur != nil; cur = cur.next {
		if cur != w {
			prev = cur
			continue
		}
		if prev == nil {
			p.head = cur.next
		} else {
			prev.next = cur.next
		}
		if p.tail == cur {
			p.tail = prev
		}
		p.waiting--
		st := p.statusLocked()
		p.mu.Unlock()
		obs.PoolGauges(st)
		return true
	}
	p.mu.Unlock()
	return false
}

// Release returns n slots to the pool and wakes queued waiters in FIFO
// order for as long as the head request fits. Safe on a nil pool.
func (p *Pool) Release(n int) {
	if p == nil || n <= 0 {
		return
	}
	p.mu.Lock()
	p.inUse -= n
	if p.inUse < 0 {
		p.mu.Unlock()
		panic("exec: Pool.Release of more slots than acquired")
	}
	for p.head != nil && p.cap-p.inUse >= p.head.want {
		w := p.head
		p.head = w.next
		if p.head == nil {
			p.tail = nil
		}
		p.waiting--
		p.inUse += w.want
		w.ready <- w.want
	}
	st := p.statusLocked()
	p.mu.Unlock()
	obs.PoolGauges(st)
}
