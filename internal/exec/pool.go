package exec

import (
	"context"
	"runtime"
	"sync"
)

// Pool is a bounded pool of worker slots shared by concurrent engine
// runs: each run acquires as many slots as it will spawn goroutines,
// runs, and releases them. Admission is strictly FIFO — a large request
// at the head is never bypassed by smaller ones behind it, so no
// request starves — which is the backpressure contract a multi-tenant
// coloring service needs at request granularity.
//
// The uncontended Acquire/Release pair is allocation-free (one mutex
// hold each), so a pooled run costs a zero-alloc hot path nothing; a
// waiter is materialized only when the pool is actually contended.
//
// A nil *Pool is valid everywhere and grants every request immediately
// — unbounded, exactly the behavior of a run without a pool.
type Pool struct {
	mu    sync.Mutex
	cap   int
	inUse int
	head  *waiter
	tail  *waiter
}

// waiter is one blocked Acquire in the FIFO queue.
type waiter struct {
	want  int
	ready chan int
	next  *waiter
}

// NewPool builds a pool admitting at most maxWorkers concurrently held
// slots (<=0: GOMAXPROCS).
func NewPool(maxWorkers int) *Pool {
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	return &Pool{cap: maxWorkers}
}

// Cap returns the pool's slot bound (0 for a nil pool: unbounded).
func (p *Pool) Cap() int {
	if p == nil {
		return 0
	}
	return p.cap
}

// InUse returns the currently held slot count.
func (p *Pool) InUse() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inUse
}

// Waiting returns the number of Acquire calls blocked in the queue.
func (p *Pool) Waiting() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for w := p.head; w != nil; w = w.next {
		n++
	}
	return n
}

// Acquire blocks until `want` slots are free (want is clamped to
// [1, Cap], so a request larger than the pool is granted the whole
// pool rather than deadlocking) and returns the granted count. Grants
// are strictly FIFO. On cancellation the request leaves the queue and
// ctx.Err() is returned; a grant that raced the cancellation is
// returned to the pool. A nil pool grants want immediately.
func (p *Pool) Acquire(ctx context.Context, want int) (int, error) {
	if want < 1 {
		want = 1
	}
	if p == nil {
		return want, nil
	}
	if want > p.cap {
		want = p.cap
	}
	p.mu.Lock()
	if p.head == nil && p.cap-p.inUse >= want {
		p.inUse += want
		p.mu.Unlock()
		return want, nil
	}
	w := &waiter{want: want, ready: make(chan int, 1)}
	if p.tail == nil {
		p.head, p.tail = w, w
	} else {
		p.tail.next = w
		p.tail = w
	}
	p.mu.Unlock()
	select {
	case granted := <-w.ready:
		return granted, nil
	case <-ctx.Done():
		if !p.remove(w) {
			// The grant raced the cancellation: it is already committed,
			// so hand the slots back (which wakes the next waiter).
			p.Release(<-w.ready)
		}
		return 0, ctx.Err()
	}
}

// remove unlinks w from the queue; false means w was already granted.
func (p *Pool) remove(w *waiter) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	var prev *waiter
	for cur := p.head; cur != nil; cur = cur.next {
		if cur != w {
			prev = cur
			continue
		}
		if prev == nil {
			p.head = cur.next
		} else {
			prev.next = cur.next
		}
		if p.tail == cur {
			p.tail = prev
		}
		return true
	}
	return false
}

// Release returns n slots to the pool and wakes queued waiters in FIFO
// order for as long as the head request fits. Safe on a nil pool.
func (p *Pool) Release(n int) {
	if p == nil || n <= 0 {
		return
	}
	p.mu.Lock()
	p.inUse -= n
	if p.inUse < 0 {
		p.mu.Unlock()
		panic("exec: Pool.Release of more slots than acquired")
	}
	for p.head != nil && p.cap-p.inUse >= p.head.want {
		w := p.head
		p.head = w.next
		if p.head == nil {
			p.tail = nil
		}
		p.inUse += w.want
		w.ready <- w.want
	}
	p.mu.Unlock()
}
