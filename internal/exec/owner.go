package exec

import (
	"context"
	"runtime"
	"sync/atomic"

	"bitcolor/internal/dispatch"
	"bitcolor/internal/graph"
	"bitcolor/internal/obs"
)

// Outcome is the result of one coloring attempt inside an OwnerLoop.
type Outcome int

const (
	// Colored: the vertex's result was published; move on.
	Colored Outcome = iota
	// Deferred: a lower-indexed dependency has not published yet; the
	// loop parks the vertex on the forwarding ring (or waits inline
	// when the ring is full) and replays it when the dependency lands.
	Deferred
	// Handed: the vertex was handed off out of this loop (the sharded
	// engine's frontier mark) — finished as far as this pass cares.
	Handed
	// Failed: a terminal per-vertex failure (palette exhaustion). The
	// loop records FailErr, raises Abort and stops this worker.
	Failed
)

// OwnerLoop drives one worker's owner-computes pass: attempt each owned
// vertex in order, park it on the forwarding ring when a dependency is
// pending, replay parked vertices as dependencies publish, and fall
// back to a yielding inline wait when the ring is full — the DCT
// park/drain/spin machinery the dct and sharded engines share, with the
// engine-specific kernel injected through Attempt/Published.
//
// Exactly one goroutine runs one OwnerLoop. Cancellation is polled
// every 64 owned vertices and inside every spin; a failed or cancelled
// worker raises Abort so no peer spins forever on a result that will
// never arrive, and a worker that observes Abort raised by a peer stops
// with a nil error (the peer reports the cause).
type OwnerLoop struct {
	Ctx   context.Context
	Abort *atomic.Bool
	Ring  *dispatch.ForwardRing
	// Shard is this worker's padded counter lane; the loop counts
	// Deferred, DeferRetries and SpinWaits into it.
	Shard *obs.Shard
	// Attempt tries to finish v now: Colored/Handed on success,
	// (dependency, Deferred) when a lower-indexed vertex must publish
	// first, Failed on palette exhaustion. The engine.Defers rule must
	// hold for every returned dependency (the ring enforces it).
	Attempt func(v graph.VertexID) (graph.VertexID, Outcome)
	// Published reports whether u's result has landed — the wait
	// predicate (shared[u] != 0 for the DCT engines, != mark for the
	// sharded frontier). Must be an atomic read.
	Published func(u uint32) bool
	// FailErr is the error recorded when Attempt reports Failed.
	FailErr error
	// Clock stamps park times (monotonic nanoseconds since engine
	// start); nil — the no-observer case — skips timestamping.
	Clock func() int64
	// OnForward observes a replayed vertex's forwarding latency; nil
	// skips the observation. Called only for parks stamped by Clock.
	OnForward func(parkedAt int64)

	err     error
	resolve func(dispatch.Parked) (dispatch.Parked, bool)
}

// RunRange walks the arithmetic sequence start, start+stride, … below
// limit — worker `start` of `stride` under pattern-p dispatch, whose
// HDV FIFO is the sequence itself. Returns this worker's error (nil
// when a peer aborted the run; the peer reports the cause).
func (l *OwnerLoop) RunRange(start, stride, limit int) error {
	l.begin()
	polled := 0
	for v := start; v < limit; v += stride {
		if polled++; polled&63 == 0 {
			// The poll is also the live-progress checkpoint: refresh the
			// shard's atomic mirrors so a scraper sees mid-run counters
			// (one branch when no run record armed them).
			l.Shard.PublishAll()
			if l.Abort.Load() {
				return l.err
			}
			if err := l.Ctx.Err(); err != nil {
				l.fail(err)
				return l.err
			}
		}
		if !l.step(graph.VertexID(v)) {
			return l.err
		}
		if l.Ring.Len() > 0 {
			l.Ring.Drain(l.resolve)
			if l.err != nil {
				return l.err
			}
		}
	}
	return l.finish()
}

// RunList is RunRange over an explicit vertex list: positions start,
// start+stride, … of list — the sharded engine's per-shard interior
// lists and its boundary frontier.
func (l *OwnerLoop) RunList(list []graph.VertexID, start, stride int) error {
	l.begin()
	polled := 0
	for i := start; i < len(list); i += stride {
		if polled++; polled&63 == 0 {
			l.Shard.PublishAll() // live-progress checkpoint, see RunRange
			if l.Abort.Load() {
				return l.err
			}
			if err := l.Ctx.Err(); err != nil {
				l.fail(err)
				return l.err
			}
		}
		if !l.step(list[i]) {
			return l.err
		}
		if l.Ring.Len() > 0 {
			l.Ring.Drain(l.resolve)
			if l.err != nil {
				return l.err
			}
		}
	}
	return l.finish()
}

// begin clears run state and materializes the resolve callback once per
// run (Drain takes a func value; binding the method per call would
// allocate on every drain).
func (l *OwnerLoop) begin() {
	l.err = nil
	l.resolve = l.resolveOne
}

// step finishes one owned vertex: attempt, park on deferral (inline
// wait when the ring is full), repeat until Colored/Handed. Returns
// false when this worker must stop (failure or abort).
func (l *OwnerLoop) step(v graph.VertexID) bool {
	for {
		awaited, code := l.Attempt(v)
		if code == Colored || code == Handed {
			return true
		}
		if code == Failed {
			l.fail(l.FailErr)
			return false
		}
		var at int64
		if l.Clock != nil {
			at = l.Clock()
		}
		if l.Ring.Push(dispatch.Parked{Vertex: uint32(v), Awaited: uint32(awaited), ParkedAt: at}) {
			// Deferred counts parked vertices only; a ring-full inline
			// wait shows up in SpinWaits instead, keeping DeferRetries >=
			// Deferred (every park is replayed).
			l.Shard.Inc(obs.CtrDeferred)
			return true
		}
		// Ring full: the scan window is exhausted. Wait inline for this
		// vertex's dependency, draining between yields — the dependency
		// chain can run through this worker's own parked entries, so the
		// wait loop must keep replaying them. The globally smallest
		// unfinished vertex is always finishable, so somebody makes
		// progress and the wait is finite.
		for {
			l.Ring.Drain(l.resolve)
			if l.err != nil {
				return false
			}
			if l.Published(uint32(awaited)) {
				break
			}
			if !l.spin() {
				return false
			}
		}
	}
}

// finish drains the ring until it empties, yielding when a pass
// resolves nothing.
func (l *OwnerLoop) finish() error {
	for l.Ring.Len() > 0 {
		if l.Ring.Drain(l.resolve) == 0 {
			if !l.spin() {
				return l.err
			}
		}
		if l.err != nil {
			return l.err
		}
	}
	return l.err
}

// resolveOne replays one parked vertex: not yet if the awaited result
// still hasn't landed, re-park (with an updated key, keeping the
// original park time) if the replay hits another pending dependency,
// otherwise finished.
func (l *OwnerLoop) resolveOne(p dispatch.Parked) (dispatch.Parked, bool) {
	if !l.Published(p.Awaited) {
		return p, false
	}
	l.Shard.Inc(obs.CtrDeferRetries)
	awaited, code := l.Attempt(graph.VertexID(p.Vertex))
	switch code {
	case Deferred:
		p.Awaited = uint32(awaited)
		return p, false
	case Failed:
		l.fail(l.FailErr)
		return dispatch.Parked{}, true // drop; the run is over
	}
	if code == Colored && p.ParkedAt != 0 && l.OnForward != nil {
		l.OnForward(p.ParkedAt)
	}
	return dispatch.Parked{}, true
}

// fail records this worker's terminal error and raises the shared
// abort flag so no peer spins on a result that will never arrive.
func (l *OwnerLoop) fail(err error) {
	l.err = err
	l.Abort.Store(true)
}

// spin is the deadlock-free fallback: yield, re-check abort and
// cancellation, and let the dependency's owner run. Returns false when
// the run is aborting.
func (l *OwnerLoop) spin() bool {
	l.Shard.Inc(obs.CtrSpinWaits)
	if l.Abort.Load() {
		return false
	}
	if err := l.Ctx.Err(); err != nil {
		l.fail(err)
		return false
	}
	runtime.Gosched()
	return true
}
