package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestBlockCursorSingleWorkerCoversRange(t *testing.T) {
	var cur BlockCursor
	for _, n := range []int{0, 1, DispatchBlock - 1, DispatchBlock, DispatchBlock + 1, 5*DispatchBlock + 7} {
		cur.Reset(n)
		covered := 0
		prevHi := 0
		for {
			lo, hi, ok := cur.Next()
			if !ok {
				break
			}
			if lo != prevHi {
				t.Fatalf("n=%d: block [%d,%d) does not continue from %d", n, lo, hi, prevHi)
			}
			if hi-lo > DispatchBlock || hi <= lo {
				t.Fatalf("n=%d: bad block [%d,%d)", n, lo, hi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != n {
			t.Fatalf("n=%d: covered %d indices", n, covered)
		}
		if _, _, ok := cur.Next(); ok {
			t.Fatalf("n=%d: Next after exhaustion claimed a block", n)
		}
	}
}

func TestBlockCursorConcurrentClaimsExactlyOnce(t *testing.T) {
	const n = 10*DispatchBlock + 13
	var cur BlockCursor
	cur.Reset(n)
	hits := make([]int32, n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo, hi, ok := cur.Next()
				if !ok {
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			}
		}()
	}
	wg.Wait()
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d claimed %d times", i, h)
		}
	}
}

func TestBlocksCoversAllIndices(t *testing.T) {
	const n = 7*DispatchBlock + 31
	var cur BlockCursor
	cur.Reset(n)
	hits := make([]int32, n)
	err := Blocks(context.Background(), 4, &cur, func(w, lo, hi int) error {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Blocks: %v", err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestBlocksCancelStopsWorkers(t *testing.T) {
	var cur BlockCursor
	cur.Reset(1 << 20)
	ctx, cancel := context.WithCancel(context.Background())
	var claims atomic.Int64
	err := Blocks(ctx, 4, &cur, func(w, lo, hi int) error {
		if claims.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c := claims.Load(); c >= 1<<20/DispatchBlock {
		t.Fatalf("cancellation did not stop the workers (%d claims)", c)
	}
}

func TestBlocksReportsLowestWorkerError(t *testing.T) {
	// Every worker fails on its first claim, so the lowest worker index
	// must win regardless of completion order. (Cannot key failures to a
	// subset of workers: on a small box one worker can drain the whole
	// cursor before its peers ever claim.)
	workerErrs := []error{
		errors.New("w0"), errors.New("w1"), errors.New("w2"), errors.New("w3"),
	}
	for trial := 0; trial < 50; trial++ {
		var cur BlockCursor
		cur.Reset(64 * DispatchBlock)
		err := Blocks(context.Background(), 4, &cur, func(w, lo, hi int) error {
			return workerErrs[w]
		})
		if !errors.Is(err, workerErrs[0]) {
			t.Fatalf("trial %d: err = %v, want %v", trial, err, workerErrs[0])
		}
	}
}

func TestBlocksErrorStopsOnlyThatWorker(t *testing.T) {
	boom := errors.New("boom")
	var cur BlockCursor
	const n = 32 * DispatchBlock
	cur.Reset(n)
	var covered atomic.Int64
	// Worker 1 holds off until worker 0 has claimed a block and failed,
	// so the split below is deterministic on any scheduler.
	failed := make(chan struct{})
	err := Blocks(context.Background(), 2, &cur, func(w, lo, hi int) error {
		if w == 0 {
			close(failed)
			return boom // worker 0 dies on its first claim
		}
		<-failed
		covered.Add(int64(hi - lo))
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Worker 1 must have drained everything worker 0 abandoned: all blocks
	// except the single one worker 0 claimed before failing.
	if got := covered.Load(); got != n-DispatchBlock {
		t.Fatalf("surviving worker covered %d of %d indices", got, n-DispatchBlock)
	}
}
