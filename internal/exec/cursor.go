package exec

import (
	"context"
	"sync"
	"sync/atomic"
)

// DispatchBlock is the number of indices a worker claims per cursor
// fetch. Small enough that a run of mega-degree vertices spreads across
// workers, large enough that the atomic add amortizes.
const DispatchBlock = 64

// BlockCursor hands out index blocks [lo, hi) over a shared atomic
// cursor — the software analogue of the dispatcher popping per-PE
// FIFOs: whichever engine is free takes the next work unit, so no
// static assignment can strand a slow tail on one worker.
type BlockCursor struct {
	cursor atomic.Int64
	limit  int64
}

// Reset re-arms the cursor for a range of length n.
func (c *BlockCursor) Reset(n int) {
	c.cursor.Store(0)
	c.limit = int64(n)
}

// Next claims the next block; ok is false once the range is exhausted.
func (c *BlockCursor) Next() (lo, hi int, ok bool) {
	start := c.cursor.Add(DispatchBlock) - DispatchBlock
	if start >= c.limit {
		return 0, 0, false
	}
	end := start + DispatchBlock
	if end > c.limit {
		end = c.limit
	}
	return int(start), int(end), true
}

// Go runs fn(w) for every w in [0, workers) on its own goroutine and
// waits for all of them — the bare spawn-and-join shared by every
// parallel engine phase.
func Go(workers int, fn func(w int)) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// Blocks drives `workers` goroutines over the cursor: each repeatedly
// claims a block and runs body(w, lo, hi) on it. Cancellation is polled
// once per claim — after the claim, before the body, so the per-item
// hot path never sees it. A body error stops that worker only; the
// remaining workers drain the cursor (the engines' contract: a palette
// failure on one worker does not truncate its peers' telemetry).
// Returns the lowest-indexed worker's error, matching the order the
// engines used when they scanned their private per-worker error slots.
func Blocks(ctx context.Context, workers int, cur *BlockCursor, body func(w, lo, hi int) error) error {
	var e firstErr
	Go(workers, func(w int) {
		for {
			lo, hi, ok := cur.Next()
			if !ok {
				return
			}
			if err := ctx.Err(); err != nil {
				e.report(w, err)
				return
			}
			if err := body(w, lo, hi); err != nil {
				e.report(w, err)
				return
			}
		}
	})
	return e.err
}

// firstErr keeps the error of the lowest-indexed reporting worker —
// deterministic error selection despite racy completion order.
type firstErr struct {
	mu  sync.Mutex
	w   int
	err error
}

func (e *firstErr) report(w int, err error) {
	e.mu.Lock()
	if e.err == nil || w < e.w {
		e.w, e.err = w, err
	}
	e.mu.Unlock()
}
