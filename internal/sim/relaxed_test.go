package sim

import (
	"context"
	"testing"

	"bitcolor/internal/coloring"
	"bitcolor/internal/graph"
)

func TestRunRelaxedRepairsToProper(t *testing.T) {
	g := prepared(t, 1000, 8000, 51)
	res, err := RunRelaxed(g, smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.Verify(g, res.Colors); err != nil {
		t.Fatalf("repair left conflicts: %v", err)
	}
	if res.TotalCycles <= 0 {
		t.Fatal("no cycles")
	}
	// Repairs happen exactly when hazards exist.
	if (res.HazardEdges > 0) != (res.RepairedVertices > 0) {
		t.Fatalf("hazards %d vs repairs %d inconsistent", res.HazardEdges, res.RepairedVertices)
	}
	if res.RepairedVertices > 0 && res.RepairCycles <= 0 {
		t.Fatal("repairs not costed")
	}
}

// A path graph maximizes the hazard opportunity (every consecutive pair
// adjacent); relaxed dispatch at high P should produce hazards there,
// demonstrating why strict order matters.
func TestRunRelaxedHazardOnChain(t *testing.T) {
	const n = 4000
	edges := make([]graph.Edge, n-1)
	for i := 0; i < n-1; i++ {
		edges[i] = graph.Edge{U: graph.VertexID(i), V: graph.VertexID(i + 1)}
	}
	g, err := graph.FromEdgeList(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(16)
	cfg.CacheVertices = n
	res, err := RunRelaxed(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	t.Logf("chain hazards: %d, repairs: %d", res.HazardEdges, res.RepairedVertices)
}

func TestRunRelaxedP1IsHazardFree(t *testing.T) {
	// One engine is inherently ordered: no hazards possible.
	g := prepared(t, 500, 4000, 52)
	res, err := RunRelaxed(g, smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.HazardEdges != 0 || res.RepairedVertices != 0 {
		t.Fatalf("P1 produced hazards: %+v", res)
	}
	// And equals sequential greedy.
	want, _ := coloring.Greedy(context.Background(), g, coloring.MaxColorsDefault)
	for v := range want.Colors {
		if res.Colors[v] != want.Colors[v] {
			t.Fatalf("vertex %d differs from greedy", v)
		}
	}
}

func TestRunRelaxedRejectsBadConfig(t *testing.T) {
	g := prepared(t, 20, 40, 53)
	if _, err := RunRelaxed(g, smallConfig(3)); err == nil {
		t.Fatal("P=3 accepted")
	}
	cfg := smallConfig(2)
	cfg.MaxColors = 0
	if _, err := RunRelaxed(g, cfg); err == nil {
		t.Fatal("MaxColors=0 accepted")
	}
}

// The concrete hazard scenario: a huge-degree vertex occupies engine 0
// while engine 1 races ahead, issuing a vertex whose smaller-indexed
// neighbor is still queued behind the hub — neither sees the other, and
// both take the same color. This is the out-of-order failure mode the
// strict dispatcher exists to prevent.
func TestRunRelaxedProvokedHazard(t *testing.T) {
	const leaves = 1200
	var edges []graph.Edge
	// Vertex 0: the hub, adjacent to many high-indexed leaves.
	for i := 0; i < leaves; i++ {
		edges = append(edges, graph.Edge{U: 0, V: graph.VertexID(100 + i)})
	}
	// The hazard pair: 2 (engine 0, queued behind the hub) and 3
	// (engine 1, issued early).
	edges = append(edges, graph.Edge{U: 2, V: 3})
	g, err := graph.FromEdgeList(100+leaves, edges)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(2)
	cfg.CacheVertices = g.NumVertices() // all HDV: per-engine sub-FIFOs
	res, err := RunRelaxed(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HazardEdges == 0 {
		t.Fatal("expected a hazard from the provoked imbalance")
	}
	if res.RepairedVertices == 0 {
		t.Fatal("hazard not repaired")
	}
	if err := coloring.Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	// The strict dispatcher handles the same graph without hazards.
	strict, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.Verify(g, strict.Colors); err != nil {
		t.Fatal(err)
	}
}
