package sim

import (
	"fmt"
	"math/bits"

	"bitcolor/internal/cache"
	"bitcolor/internal/engine"
	"bitcolor/internal/graph"
	"bitcolor/internal/mem"
)

// RunBFS maps level-synchronous breadth-first search onto the BitColor
// substrate — the second §2.4 generality demonstration. BFS has the same
// two memory problems as coloring: random reads of per-vertex state
// (here: discovery levels instead of colors) and multi-port read
// pressure when engines share the on-chip store. The HVC caches the
// hottest vertices' levels exactly as it caches colors; the Color Loader
// merges block reads of sorted adjacency; the multi-port cache's write
// discipline holds because engine e only discovers vertices it owns in
// the stripe.
//
// Levels are stored as uint16 (0 = undiscovered, level+1 otherwise), the
// same 16-bit state format as colors, so the block/bank geometry and all
// channel accounting carry over unchanged.

// BFSResult is the outcome of a substrate BFS run.
type BFSResult struct {
	// Levels[v] is the hop distance from the source (-1 if unreachable).
	Levels []int32
	// Depth is the eccentricity of the source.
	Depth int
	// TotalCycles is the simulated makespan.
	TotalCycles int64
	// EdgeWork counts neighbor-state fetches.
	EdgeWork int64
	// ColorDRAM aggregates channel activity (the state array lives where
	// the color array lives).
	ColorDRAM mem.DRAMStats
}

// RunBFS traverses g from source on the configured substrate.
func RunBFS(g *graph.CSR, cfg Config, source graph.VertexID) (*BFSResult, error) {
	if cfg.Parallelism <= 0 || bits.OnesCount(uint(cfg.Parallelism)) != 1 {
		return nil, fmt.Errorf("sim: parallelism %d must be a positive power of two", cfg.Parallelism)
	}
	n := g.NumVertices()
	if int(source) >= n {
		return nil, fmt.Errorf("sim: source %d out of range (n=%d)", source, n)
	}
	p := cfg.Parallelism

	vt := cfg.CacheVertices
	if vt > n {
		vt = n
	}
	if !cfg.Options.HDC {
		vt = 0
	}
	var hvc *cache.HVC
	if vt > 0 {
		hvc = cache.NewHVC(cache.NewBitSelectCache(p, vt), vt)
	}
	phys := cfg.PhysicalChannels
	if phys <= 0 {
		phys = 4
	}
	if phys > p {
		phys = p
	}
	channels := make([]*mem.Channel, phys)
	for i := range channels {
		channels[i] = mem.NewChannel(cfg.DRAM)
	}

	// state[v] = level+1, 0 undiscovered — the 16-bit per-vertex word the
	// substrate moves around.
	state := make([]uint16, n)
	loaders := make([]*engine.ColorLoader, p)
	for i := range loaders {
		loaders[i] = engine.NewColorLoader(channels[i%phys], state, cfg.Options.MGR)
	}

	res := &BFSResult{Levels: make([]int32, n)}
	for i := range res.Levels {
		res.Levels[i] = -1
	}
	state[source] = 1
	res.Levels[source] = 0
	if hvc != nil && hvc.Contains(uint32(source)) {
		hvc.Write(int(source)%p, uint32(source), 1)
	}

	frontier := []graph.VertexID{source}
	var clock int64
	level := int32(0)
	for len(frontier) > 0 {
		engineTime := make([]int64, p)
		var next []graph.VertexID
		for _, v := range frontier {
			e := int(v) % p
			t := clock + engineTime[e]
			t += engine.DefaultStartupCycles
			for _, w := range g.Neighbors(v) {
				res.EdgeWork++
				t++
				var sw uint16
				hit := false
				if hvc != nil {
					sw, hit = hvc.Read(e, w)
				}
				if !hit {
					s2, done := loaders[e].Load(w, t)
					if done > t {
						t = done
					}
					sw = s2
				}
				if sw == 0 && state[w] == 0 {
					// Discover w. Ownership note: w is written by the
					// engine that owns it in the stripe, preserving the
					// multi-port write pattern.
					state[w] = uint16(level + 2)
					res.Levels[w] = level + 1
					we := int(w) % p
					if hvc != nil && hvc.Contains(w) {
						hvc.Write(we, w, state[w])
					} else {
						block, _ := mem.ColorBlock(w)
						channels[we%phys].WriteBlock(block, t)
					}
					next = append(next, w)
				}
			}
			engineTime[e] = t - clock
		}
		slowest := int64(0)
		for _, et := range engineTime {
			if et > slowest {
				slowest = et
			}
		}
		clock += slowest + RoundBarrierCycles
		for i := range loaders {
			loaders[i].Invalidate()
		}
		frontier = next
		if len(next) > 0 {
			level++
		}
	}
	res.Depth = int(level)
	res.TotalCycles = clock
	for _, ch := range channels {
		res.ColorDRAM.Add(ch.Stats())
	}
	return res, nil
}
