// Package sim is the discrete-event simulator of the complete BitColor
// accelerator (paper Fig 6): parallel bit-wise processing engines, the
// multi-port high-degree vertex cache, per-engine logical DRAM channels,
// the Color Loader, the Data Conflict Table and the degree-aware Task
// Dispatcher. It produces the cycle counts, memory-access counts and
// conflict statistics behind Fig 11, Fig 12, Table 4 and Fig 13.
//
// Fidelity notes (see DESIGN.md §5): the simulator advances one virtual
// clock per engine and serializes requests per DRAM channel. Engine
// results are computed eagerly in dispatch order and revealed at their
// simulated completion time, which is sound because the dispatcher issues
// vertices in strict index order and the conflict table defers on every
// in-flight smaller-indexed neighbor.
package sim

import (
	"fmt"
	"io"
	"math/bits"

	"bitcolor/internal/cache"
	"bitcolor/internal/coloring"
	"bitcolor/internal/dispatch"
	"bitcolor/internal/engine"
	"bitcolor/internal/graph"
	"bitcolor/internal/mem"
)

// Config parameterizes an accelerator instance.
type Config struct {
	// Parallelism is the number of BWPEs (P). Must be a power of two;
	// the paper's BRAM budget caps it at 16.
	Parallelism int
	// CacheVertices is the high-degree vertex cache capacity in colors
	// (paper: 512K per 1MB cache).
	CacheVertices int
	// MaxColors bounds the palette (paper: 1024).
	MaxColors int
	// DRAM is the channel timing model.
	DRAM mem.DRAMConfig
	// PhysicalChannels is the number of DDR channels on the card (U200:
	// 4 × 16GB DDR4). Each BWPE has its own *logical* channel (paper
	// §4.1), but logical channels beyond this count share physical
	// bandwidth — the effect that keeps DRAM-bound graphs from scaling
	// linearly to P16.
	PhysicalChannels int
	// Options toggles the four optimizations.
	Options engine.Options
	// FrequencyMHz converts cycles to wall time (paper: >200 MHz; we use
	// 200 for reporting).
	FrequencyMHz float64
	// RecordTimeline keeps a per-vertex task span trace in the result
	// (engine, start, end, conflict wait) for performance debugging;
	// costs memory proportional to the vertex count.
	RecordTimeline bool
}

// DefaultConfig is the paper's configuration at P engines.
func DefaultConfig(parallelism int) Config {
	return Config{
		Parallelism:      parallelism,
		CacheVertices:    cache.DefaultCapacityVertices,
		MaxColors:        coloring.MaxColorsDefault,
		DRAM:             mem.DefaultDRAMConfig(),
		PhysicalChannels: 4,
		Options:          engine.AllOptions(),
		FrequencyMHz:     200,
	}
}

// Result is the outcome of a simulated run.
type Result struct {
	// Colors is the final per-vertex assignment (verified proper).
	Colors []uint16
	// NumColors is the number of distinct colors used.
	NumColors int
	// TotalCycles is the makespan: the last engine's completion cycle.
	TotalCycles int64
	// PerPE holds each engine's totals.
	PerPE []engine.PEStats
	// Aggregate sums PerPE.
	Aggregate engine.PEStats
	// ColorDRAM aggregates the color channels; EdgeDRAM the edge
	// channels.
	ColorDRAM, EdgeDRAM mem.DRAMStats
	// Dispatch holds dispatcher counters.
	Dispatch dispatch.Stats
	// CacheHitRate is hits/(hits+misses) on the HVC (0 when HDC off).
	CacheHitRate float64
	// Seconds is TotalCycles at the configured frequency.
	Seconds float64
	// MCVps is throughput in million colored vertices per second.
	MCVps float64
	// Timeline holds one span per vertex when Config.RecordTimeline is
	// set (dispatch order).
	Timeline []TaskSpan
}

// TaskSpan is one vertex's occupancy of an engine.
type TaskSpan struct {
	PE           int
	Vertex       uint32
	Start, End   int64
	ConflictWait int64
	Deferred     int
}

// WriteTimelineCSV writes the recorded timeline as CSV.
func (r *Result) WriteTimelineCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "pe,vertex,start,end,conflict_wait,deferred_edges"); err != nil {
		return err
	}
	for _, s := range r.Timeline {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d\n",
			s.PE, s.Vertex, s.Start, s.End, s.ConflictWait, s.Deferred); err != nil {
			return err
		}
	}
	return nil
}

// Run simulates coloring g on the configured accelerator. The graph
// should be DBG-reordered (and edge-sorted unless measuring the unsorted
// ablation); Run works on any valid graph but the high-degree cache only
// pays off under the reordering.
func Run(g *graph.CSR, cfg Config) (*Result, error) {
	if cfg.Parallelism <= 0 || bits.OnesCount(uint(cfg.Parallelism)) != 1 {
		return nil, fmt.Errorf("sim: parallelism %d must be a positive power of two", cfg.Parallelism)
	}
	if cfg.MaxColors <= 0 {
		return nil, fmt.Errorf("sim: MaxColors %d must be positive", cfg.MaxColors)
	}
	if cfg.FrequencyMHz <= 0 {
		cfg.FrequencyMHz = 200
	}
	n := g.NumVertices()
	p := cfg.Parallelism

	// The HVC threshold v_t: the cache holds the first CacheVertices
	// colors (the highest-degree vertices after DBG).
	vt := cfg.CacheVertices
	if vt > n {
		vt = n
	}
	if !cfg.Options.HDC {
		vt = 0
	}

	colors := make([]uint16, n)
	var hvc *cache.HVC
	if cfg.Options.HDC && vt > 0 {
		hvc = cache.NewHVC(cache.NewBitSelectCache(p, vt), vt)
	} else {
		cfg.Options.HDC = false
	}

	ecfg := engine.Config{
		Options:       cfg.Options,
		MaxColors:     cfg.MaxColors,
		EdgesPerBlock: mem.BlockBits / 32,
		SortedEdges:   g.EdgesSorted(),
		StartupCycles: engine.DefaultStartupCycles,
	}
	// Logical channels multiplex onto the card's physical DDR channels:
	// color reads and edge streams occupy separate banks within each
	// physical channel (each DDR4 DIMM services both, but the two access
	// streams interleave per channel controller).
	phys := cfg.PhysicalChannels
	if phys <= 0 {
		phys = 4
	}
	if phys > p {
		phys = p
	}
	physColor := make([]*mem.Channel, phys)
	physEdge := make([]*mem.Channel, phys)
	for i := range physColor {
		physColor[i] = mem.NewChannel(cfg.DRAM)
		physEdge[i] = mem.NewChannel(cfg.DRAM)
	}
	pes := make([]*engine.BWPE, p)
	for i := 0; i < p; i++ {
		pes[i] = engine.NewBWPE(i, g, colors, hvc, physColor[i%phys], physEdge[i%phys], p-1, ecfg)
	}

	d := dispatch.New(g, p, uint32(vt))
	lastRep := make([]engine.VertexReport, p)
	var res0Timeline []TaskSpan
	peerResult := func(peID int) (int64, uint16) {
		r := lastRep[peID]
		return r.End, r.Color
	}

	var total int64
	for !d.Done() {
		task, ok := d.Next()
		if !ok {
			return nil, fmt.Errorf("sim: dispatcher stalled with work remaining")
		}
		peers := d.InFlight(task.PE, task.Start)
		rep, err := pes[task.PE].ColorVertex(task.Vertex, task.Start, peers, peerResult)
		if err != nil {
			return nil, err
		}
		d.Complete(task.PE, rep.End)
		lastRep[task.PE] = rep
		if rep.End > total {
			total = rep.End
		}
		if cfg.RecordTimeline {
			res0Timeline = append(res0Timeline, TaskSpan{
				PE: task.PE, Vertex: task.Vertex, Start: rep.Start, End: rep.End,
				ConflictWait: rep.ConflictWaitCycles, Deferred: rep.EdgesDeferred,
			})
		}
	}

	if err := coloring.Verify(g, colors); err != nil {
		return nil, fmt.Errorf("sim: invalid coloring produced: %w", err)
	}

	res := &Result{
		Colors:      colors,
		NumColors:   distinct(colors),
		TotalCycles: total,
		PerPE:       make([]engine.PEStats, p),
		Dispatch:    d.Stats(),
		Timeline:    res0Timeline,
	}
	for i, pe := range pes {
		res.PerPE[i] = pe.Stats()
		res.Aggregate.Merge(res.PerPE[i])
	}
	for i := range physColor {
		res.ColorDRAM.Add(physColor[i].Stats())
		res.EdgeDRAM.Add(physEdge[i].Stats())
	}
	if hvc != nil {
		res.CacheHitRate = hvc.HitRate()
	}
	res.Seconds = float64(total) / (cfg.FrequencyMHz * 1e6)
	if res.Seconds > 0 {
		res.MCVps = float64(n) / res.Seconds / 1e6
	}
	return res, nil
}

// distinct counts the distinct nonzero colors.
func distinct(colors []uint16) int {
	seen := make(map[uint16]struct{})
	for _, c := range colors {
		if c != 0 {
			seen[c] = struct{}{}
		}
	}
	return len(seen)
}

// Breakdown splits a run's makespan into the Fig 11 categories using the
// aggregate engine stats: compute cycles, DRAM stall cycles (color reads)
// and conflict waits, normalized per engine.
type Breakdown struct {
	ComputeCycles  int64
	StartupCycles  int64
	DRAMCycles     int64
	ConflictCycles int64
	TotalCycles    int64
}

// Breakdown returns the run's cycle decomposition.
func (r *Result) Breakdown() Breakdown {
	return Breakdown{
		ComputeCycles:  r.Aggregate.ComputeCycles,
		StartupCycles:  r.Aggregate.StartupCycles,
		DRAMCycles:     r.Aggregate.DRAMStallCycles,
		ConflictCycles: r.Aggregate.ConflictWaitCycles,
		TotalCycles:    r.TotalCycles,
	}
}

// Utilization returns each engine's busy fraction of the makespan and
// the mean across engines. Low utilization at high parallelism points at
// the dispatcher issue rate or engine-binding stalls; high utilization
// with low speedup points at conflict waits and DRAM contention counted
// inside busy windows.
func (r *Result) Utilization() (perPE []float64, mean float64) {
	if r.TotalCycles == 0 {
		return make([]float64, len(r.PerPE)), 0
	}
	perPE = make([]float64, len(r.PerPE))
	var sum float64
	for i, s := range r.PerPE {
		perPE[i] = float64(s.BusyCycles) / float64(r.TotalCycles)
		sum += perPE[i]
	}
	return perPE, sum / float64(len(perPE))
}
