package sim

import (
	"fmt"
	"math/bits"

	"bitcolor/internal/bitops"
	"bitcolor/internal/cache"
	"bitcolor/internal/dispatch"
	"bitcolor/internal/engine"
	"bitcolor/internal/graph"
	"bitcolor/internal/mem"
)

// RunRelaxed simulates the accelerator under the paper's literal Fig 10
// dispatch semantics — each idle engine pops its own HDV sub-FIFO, then
// the shared LDV FIFO, with no global index-order constraint. Out-of-
// order issue can let two adjacent vertices miss each other entirely
// (neither in flight when the other checks), producing color hazards
// that the conflict table cannot see. RunRelaxed measures that hazard
// rate and the cost of the sequential repair pass needed afterwards;
// the result justifies the strict-order dispatcher Run uses (see
// DESIGN.md and the `relaxed` experiment).
type RelaxedResult struct {
	// Colors after repair (proper).
	Colors    []uint16
	NumColors int
	// TotalCycles is the parallel phase makespan (before repair).
	TotalCycles int64
	// HazardEdges counts adjacent same-color pairs the relaxed dispatch
	// produced.
	HazardEdges int64
	// RepairedVertices were recolored by the sequential fix-up pass.
	RepairedVertices int
	// RepairCycles models the fix-up pass cost on one engine.
	RepairCycles int64
}

// RunRelaxed executes the relaxed-dispatch simulation.
func RunRelaxed(g *graph.CSR, cfg Config) (*RelaxedResult, error) {
	if cfg.Parallelism <= 0 || bits.OnesCount(uint(cfg.Parallelism)) != 1 {
		return nil, fmt.Errorf("sim: parallelism %d must be a positive power of two", cfg.Parallelism)
	}
	if cfg.MaxColors <= 0 {
		return nil, fmt.Errorf("sim: MaxColors %d must be positive", cfg.MaxColors)
	}
	n := g.NumVertices()
	p := cfg.Parallelism
	vt := cfg.CacheVertices
	if vt > n {
		vt = n
	}
	if !cfg.Options.HDC {
		vt = 0
	}
	colors := make([]uint16, n)
	var hvc *cache.HVC
	if cfg.Options.HDC && vt > 0 {
		hvc = cache.NewHVC(cache.NewBitSelectCache(p, vt), vt)
	} else {
		cfg.Options.HDC = false
	}
	ecfg := engine.Config{
		Options:       cfg.Options,
		MaxColors:     cfg.MaxColors,
		EdgesPerBlock: mem.BlockBits / 32,
		SortedEdges:   g.EdgesSorted(),
		StartupCycles: engine.DefaultStartupCycles,
	}
	phys := cfg.PhysicalChannels
	if phys <= 0 {
		phys = 4
	}
	if phys > p {
		phys = p
	}
	physColor := make([]*mem.Channel, phys)
	physEdge := make([]*mem.Channel, phys)
	for i := range physColor {
		physColor[i] = mem.NewChannel(cfg.DRAM)
		physEdge[i] = mem.NewChannel(cfg.DRAM)
	}
	pes := make([]*engine.BWPE, p)
	for i := 0; i < p; i++ {
		pes[i] = engine.NewBWPE(i, g, colors, hvc, physColor[i%phys], physEdge[i%phys], p-1, ecfg)
	}

	// Relaxed HDV binding: the sub-FIFO of engine e holds vertices
	// v % p == e, so cache writes stay port-legal even out of order.
	d := dispatch.NewRelaxed(g, p, uint32(vt))
	lastRep := make([]engine.VertexReport, p)
	peerResult := func(peID int) (int64, uint16) {
		r := lastRep[peID]
		return r.End, r.Color
	}
	var total int64
	for !d.Done() {
		task, ok := d.Next()
		if !ok {
			return nil, fmt.Errorf("sim: relaxed dispatcher stalled")
		}
		peers := d.InFlight(task.PE, task.Start)
		rep, err := pes[task.PE].ColorVertex(task.Vertex, task.Start, peers, peerResult)
		if err != nil {
			return nil, err
		}
		d.Complete(task.PE, rep.End)
		lastRep[task.PE] = rep
		if rep.End > total {
			total = rep.End
		}
	}

	res := &RelaxedResult{Colors: colors, TotalCycles: total}
	// Hazard count: adjacent equal colors (each undirected pair once).
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			if graph.VertexID(v) < w && colors[v] == colors[w] && colors[v] != 0 {
				res.HazardEdges++
			}
		}
	}
	// Sequential repair: one ascending pass recoloring any vertex that
	// conflicts with a neighbor, first-fit against all current neighbor
	// colors. A single pass suffices: after step v, v differs from every
	// neighbor's then-current color, and earlier vertices are never
	// touched again.
	codec := bitops.NewColorCodec(cfg.MaxColors)
	state := bitops.NewBitSet(cfg.MaxColors)
	for v := 0; v < n; v++ {
		conflicted := false
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			if colors[w] == colors[v] {
				conflicted = true
				break
			}
		}
		if !conflicted {
			continue
		}
		state.Reset()
		deg := int64(0)
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			codec.Decompress(colors[w], state)
			deg++
		}
		pick, cycles := codec.FirstFree(state)
		if pick == 0 {
			return nil, fmt.Errorf("sim: palette exhausted during repair at vertex %d", v)
		}
		colors[v] = pick
		res.RepairedVertices++
		res.RepairCycles += engine.DefaultStartupCycles + 2*deg + int64(cycles) + 1
	}
	res.NumColors = distinct(colors)
	return res, nil
}
