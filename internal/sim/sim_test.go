package sim

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"bitcolor/internal/coloring"
	"bitcolor/internal/engine"
	"bitcolor/internal/gen"
	"bitcolor/internal/graph"
	"bitcolor/internal/reorder"
)

func prepared(t testing.TB, n, m int, seed int64) *graph.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.VertexID(rng.Intn(n)), V: graph.VertexID(rng.Intn(n))}
	}
	g, err := graph.FromEdgeList(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := reorder.DBG(g)
	return h
}

func smallConfig(p int) Config {
	cfg := DefaultConfig(p)
	cfg.CacheVertices = 256
	return cfg
}

func TestRunProducesProperColoring(t *testing.T) {
	g := prepared(t, 800, 6000, 1)
	for _, p := range []int{1, 2, 4, 8, 16} {
		res, err := Run(g, smallConfig(p))
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if err := coloring.Verify(g, res.Colors); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if res.TotalCycles <= 0 {
			t.Fatalf("P=%d: no cycles", p)
		}
		if res.MCVps <= 0 || res.Seconds <= 0 {
			t.Fatalf("P=%d: missing throughput", p)
		}
	}
}

// At P=1 the accelerator must reproduce sequential greedy exactly.
func TestRunP1MatchesSoftwareGreedy(t *testing.T) {
	g := prepared(t, 500, 4000, 2)
	res, err := Run(g, smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := coloring.Greedy(context.Background(), g, coloring.MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Colors {
		if res.Colors[v] != want.Colors[v] {
			t.Fatalf("vertex %d: sim %d, software %d", v, res.Colors[v], want.Colors[v])
		}
	}
	if res.NumColors != want.NumColors {
		t.Fatalf("NumColors %d vs %d", res.NumColors, want.NumColors)
	}
}

// Parallel runs also match sequential greedy: the conflict scheme defers
// rather than diverges (vertex-order priority).
func TestRunParallelMatchesSequential(t *testing.T) {
	g := prepared(t, 600, 5000, 3)
	want, err := coloring.Greedy(context.Background(), g, coloring.MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 16} {
		res, err := Run(g, smallConfig(p))
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		for v := range want.Colors {
			if res.Colors[v] != want.Colors[v] {
				t.Fatalf("P=%d vertex %d: sim %d, software %d", p, v, res.Colors[v], want.Colors[v])
			}
		}
	}
}

func TestParallelSpeedupShape(t *testing.T) {
	g := prepared(t, 3000, 30000, 4)
	cycles := map[int]int64{}
	for _, p := range []int{1, 2, 4, 8, 16} {
		cfg := smallConfig(p)
		cfg.CacheVertices = 1024
		res, err := Run(g, cfg)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		cycles[p] = res.TotalCycles
	}
	// Speedup grows with P…
	if !(cycles[2] < cycles[1] && cycles[4] < cycles[2] && cycles[8] < cycles[4]) {
		t.Fatalf("no scaling: %v", cycles)
	}
	// …but sublinearly at P=16 (conflicts, paper Fig 12: 3.92–7.01×).
	speedup16 := float64(cycles[1]) / float64(cycles[16])
	if speedup16 >= 16 {
		t.Fatalf("P16 speedup %.1f× not sublinear", speedup16)
	}
	if speedup16 < 1.5 {
		t.Fatalf("P16 speedup %.1f× implausibly low", speedup16)
	}
}

func TestAblationOrdering(t *testing.T) {
	// Cumulative optimizations must monotonically reduce the makespan,
	// mirroring Fig 11.
	g := prepared(t, 1500, 15000, 5)
	opts := []engine.Options{
		{},
		{HDC: true},
		{HDC: true, BWC: true},
		{HDC: true, BWC: true, MGR: true},
		engine.AllOptions(),
	}
	var prev int64 = 1 << 62
	for i, o := range opts {
		cfg := smallConfig(1)
		cfg.CacheVertices = 512
		cfg.Options = o
		res, err := Run(g, cfg)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if res.TotalCycles >= prev {
			t.Fatalf("step %d (%+v) cycles %d >= previous %d", i, o, res.TotalCycles, prev)
		}
		prev = res.TotalCycles
	}
}

func TestConflictsRecorded(t *testing.T) {
	// A dense graph at high parallelism must defer some edges.
	g := prepared(t, 400, 12000, 6)
	res, err := Run(g, smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.EdgesDeferred == 0 {
		t.Fatal("no conflicts on a dense parallel run")
	}
	if res.Aggregate.ConflictWaitCycles == 0 {
		t.Log("conflicts deferred but never waited (peers finished early) — acceptable")
	}
}

func TestCacheHitRateReported(t *testing.T) {
	g := prepared(t, 1000, 8000, 7)
	cfg := smallConfig(4)
	res, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHitRate <= 0 || res.CacheHitRate > 1 {
		t.Fatalf("hit rate %f out of range", res.CacheHitRate)
	}
	cfg.Options.HDC = false
	res2, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHitRate != 0 {
		t.Fatal("HDC-off run reports cache hits")
	}
	if res2.ColorDRAM.Reads <= res.ColorDRAM.Reads {
		t.Fatal("disabling the cache did not increase DRAM reads")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	g := prepared(t, 50, 100, 8)
	cfg := smallConfig(3) // not a power of two
	if _, err := Run(g, cfg); err == nil {
		t.Fatal("P=3 accepted")
	}
	cfg = smallConfig(2)
	cfg.MaxColors = 0
	if _, err := Run(g, cfg); err == nil {
		t.Fatal("MaxColors=0 accepted")
	}
	// Palette too small for a clique.
	var edges []graph.Edge
	for u := 0; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			edges = append(edges, graph.Edge{U: graph.VertexID(u), V: graph.VertexID(v)})
		}
	}
	k10, _ := graph.FromEdgeList(10, edges)
	cfg = smallConfig(1)
	cfg.MaxColors = 5
	if _, err := Run(k10, cfg); err == nil {
		t.Fatal("undersized palette accepted")
	}
}

func TestRunEmptyAndTinyGraphs(t *testing.T) {
	empty, _ := graph.FromEdgeList(0, nil)
	res, err := Run(empty, smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles != 0 || res.NumColors != 0 {
		t.Fatalf("empty run: %+v", res)
	}
	single, _ := graph.FromEdgeList(1, nil)
	res, err = Run(single, smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 1 {
		t.Fatalf("single vertex used %d colors", res.NumColors)
	}
}

func TestEdgeSortingReducesDRAMReads(t *testing.T) {
	g := prepared(t, 2000, 16000, 9)
	sorted := g.Clone()
	shuffled := g.Clone()
	reorder.ShuffleEdges(shuffled, 42)
	cfg := smallConfig(1)
	cfg.CacheVertices = 64
	rs, err := Run(sorted, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ru, err := Run(shuffled, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs.ColorDRAM.Reads >= ru.ColorDRAM.Reads {
		t.Fatalf("sorted reads %d >= shuffled %d; MGR not effective",
			rs.ColorDRAM.Reads, ru.ColorDRAM.Reads)
	}
}

func TestRunOnPaperDatasets(t *testing.T) {
	for _, d := range gen.SmallRegistry() {
		d := d
		t.Run(d.Abbrev, func(t *testing.T) {
			t.Parallel()
			g, err := d.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			h, _ := reorder.DBG(g)
			res, err := Run(h, smallConfig(4))
			if err != nil {
				t.Fatal(err)
			}
			if err := coloring.Verify(h, res.Colors); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBreakdownSumsPlausible(t *testing.T) {
	g := prepared(t, 1000, 8000, 10)
	res, err := Run(g, smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	b := res.Breakdown()
	if b.ComputeCycles <= 0 || b.TotalCycles <= 0 {
		t.Fatalf("breakdown %+v", b)
	}
	if b.DRAMCycles < 0 || b.ConflictCycles < 0 {
		t.Fatalf("negative cycles in %+v", b)
	}
}

func BenchmarkRunP8(b *testing.B) {
	g, err := gen.RMAT(13, 8, 0.57, 0.19, 0.19, 1)
	if err != nil {
		b.Fatal(err)
	}
	h, _ := reorder.DBG(g)
	cfg := DefaultConfig(8)
	cfg.CacheVertices = 4096
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(h, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: at any power-of-two parallelism, the accelerator's coloring
// equals sequential basic greedy on arbitrary random graphs.
func TestSimEqualsGreedyProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%100) + 4
		p := 1 << (pRaw % 5) // 1..16
		rng := rand.New(rand.NewSource(seed))
		edges := make([]graph.Edge, 6*n)
		for i := range edges {
			edges[i] = graph.Edge{U: graph.VertexID(rng.Intn(n)), V: graph.VertexID(rng.Intn(n))}
		}
		g, err := graph.FromEdgeList(n, edges)
		if err != nil {
			return false
		}
		h, _ := reorder.DBG(g)
		cfg := smallConfig(p)
		cfg.CacheVertices = n/2 + 1
		res, err := Run(h, cfg)
		if err != nil {
			return false
		}
		want, err := coloring.Greedy(context.Background(), h, cfg.MaxColors)
		if err != nil {
			return false
		}
		for v := range want.Colors {
			if res.Colors[v] != want.Colors[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSimDeterministic(t *testing.T) {
	g := prepared(t, 700, 5000, 21)
	a, err := Run(g, smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles {
		t.Fatalf("cycles differ: %d vs %d", a.TotalCycles, b.TotalCycles)
	}
	if a.Aggregate != b.Aggregate {
		t.Fatalf("aggregates differ:\n%+v\n%+v", a.Aggregate, b.Aggregate)
	}
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatalf("colors differ at %d", v)
		}
	}
}

// A path graph is the conflict worst case: every vertex is adjacent to
// its predecessor, so at high parallelism nearly every vertex defers.
func TestSimConflictChain(t *testing.T) {
	const n = 2000
	edges := make([]graph.Edge, n-1)
	for i := 0; i < n-1; i++ {
		edges[i] = graph.Edge{U: graph.VertexID(i), V: graph.VertexID(i + 1)}
	}
	g, err := graph.FromEdgeList(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	// No DBG: the path order IS the adjacency chain.
	cfg := smallConfig(16)
	cfg.CacheVertices = n
	res, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 2 {
		t.Fatalf("path colored with %d colors, want 2", res.NumColors)
	}
	if res.Aggregate.EdgesDeferred < int64(n)/2 {
		t.Fatalf("only %d deferred edges on a chain of %d", res.Aggregate.EdgesDeferred, n)
	}
}

func TestUtilization(t *testing.T) {
	g := prepared(t, 1500, 12000, 22)
	res, err := Run(g, smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	perPE, mean := res.Utilization()
	if len(perPE) != 4 {
		t.Fatalf("perPE len %d", len(perPE))
	}
	for i, u := range perPE {
		if u <= 0 || u > 1.000001 {
			t.Fatalf("PE%d utilization %f out of (0,1]", i, u)
		}
	}
	if mean <= 0 || mean > 1 {
		t.Fatalf("mean utilization %f", mean)
	}
	empty := &Result{PerPE: make([]engine.PEStats, 2)}
	if _, m := empty.Utilization(); m != 0 {
		t.Fatal("empty utilization not 0")
	}
}

// Star graph with a hub of huge degree: the hub occupies one engine for a
// long time while the leaves stream through the others; validity and
// stats consistency under extreme imbalance.
func TestSimStarImbalance(t *testing.T) {
	const leaves = 5000
	edges := make([]graph.Edge, leaves)
	for i := 0; i < leaves; i++ {
		edges[i] = graph.Edge{U: 0, V: graph.VertexID(i + 1)}
	}
	g, err := graph.FromEdgeList(leaves+1, edges)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := reorder.DBG(g) // hub becomes vertex 0
	cfg := smallConfig(8)
	cfg.CacheVertices = 1024
	res, err := Run(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 2 {
		t.Fatalf("star colored with %d colors", res.NumColors)
	}
	if res.Aggregate.Vertices != int64(leaves+1) {
		t.Fatalf("vertices processed %d", res.Aggregate.Vertices)
	}
}

func TestTimelineRecording(t *testing.T) {
	g := prepared(t, 300, 2000, 61)
	cfg := smallConfig(4)
	cfg.RecordTimeline = true
	res, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) != g.NumVertices() {
		t.Fatalf("timeline has %d spans, want %d", len(res.Timeline), g.NumVertices())
	}
	var prevStart int64 = -1
	seen := make([]bool, g.NumVertices())
	for _, s := range res.Timeline {
		if s.Start < prevStart {
			t.Fatal("timeline not in dispatch order")
		}
		prevStart = s.Start
		if s.End < s.Start {
			t.Fatalf("span %+v inverted", s)
		}
		if seen[s.Vertex] {
			t.Fatalf("vertex %d appears twice", s.Vertex)
		}
		seen[s.Vertex] = true
	}
	var buf strings.Builder
	if err := res.WriteTimelineCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != g.NumVertices()+1 {
		t.Fatalf("CSV has %d lines", lines)
	}
	// Off by default.
	cfg.RecordTimeline = false
	res2, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Timeline != nil {
		t.Fatal("timeline recorded without opt-in")
	}
}
