package sim

import (
	"testing"

	"bitcolor/internal/graph"
)

func TestRunBFSMatchesSoftwareBFS(t *testing.T) {
	g := prepared(t, 800, 5000, 41)
	want, wantEcc := graph.BFSLevels(g, 0)
	for _, p := range []int{1, 4, 16} {
		cfg := smallConfig(p)
		res, err := RunBFS(g, cfg, 0)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		for v := range want {
			if res.Levels[v] != want[v] {
				t.Fatalf("P=%d vertex %d: level %d, want %d", p, v, res.Levels[v], want[v])
			}
		}
		if res.Depth != wantEcc {
			t.Fatalf("P=%d depth %d, want %d", p, res.Depth, wantEcc)
		}
		if res.TotalCycles <= 0 {
			t.Fatalf("P=%d no cycles", p)
		}
	}
}

func TestRunBFSPath(t *testing.T) {
	const n = 100
	edges := make([]graph.Edge, n-1)
	for i := 0; i < n-1; i++ {
		edges[i] = graph.Edge{U: graph.VertexID(i), V: graph.VertexID(i + 1)}
	}
	g, _ := graph.FromEdgeList(n, edges)
	res, err := RunBFS(g, smallConfig(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != n-1 {
		t.Fatalf("path depth %d, want %d", res.Depth, n-1)
	}
	for v := 0; v < n; v++ {
		if res.Levels[v] != int32(v) {
			t.Fatalf("level[%d] = %d", v, res.Levels[v])
		}
	}
}

func TestRunBFSDisconnected(t *testing.T) {
	g, _ := graph.FromEdgeList(4, []graph.Edge{{U: 0, V: 1}})
	res, err := RunBFS(g, smallConfig(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels[2] != -1 || res.Levels[3] != -1 {
		t.Fatal("unreachable vertices got levels")
	}
	if res.Depth != 1 {
		t.Fatalf("depth %d", res.Depth)
	}
}

func TestRunBFSHDCReducesDRAM(t *testing.T) {
	g := prepared(t, 2000, 16000, 42)
	on := smallConfig(4)
	on.CacheVertices = 1024
	off := on
	off.Options.HDC = false
	rOn, err := RunBFS(g, on, 0)
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := RunBFS(g, off, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rOn.ColorDRAM.Reads >= rOff.ColorDRAM.Reads {
		t.Fatalf("HDC did not reduce BFS DRAM reads: %d >= %d",
			rOn.ColorDRAM.Reads, rOff.ColorDRAM.Reads)
	}
}

func TestRunBFSErrors(t *testing.T) {
	g := prepared(t, 20, 40, 43)
	if _, err := RunBFS(g, smallConfig(3), 0); err == nil {
		t.Fatal("P=3 accepted")
	}
	if _, err := RunBFS(g, smallConfig(2), 999); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}
