package sim

import (
	"fmt"

	"bitcolor/internal/bitops"
	"bitcolor/internal/engine"
	"bitcolor/internal/graph"
	"bitcolor/internal/partition"
)

// Multi-card scale-out: a natural extension of the paper's design to K
// accelerator boards. The graph is partitioned into K contiguous index
// ranges; *interior* vertices (all neighbors inside the same part) are
// colored in parallel — one full BitColor instance per card, no
// cross-card traffic — and the *boundary* vertices (any cross-part
// neighbor) are colored afterwards in a sequential sweep that sees every
// neighbor's committed color.
//
// The scheme is correct by construction: interior vertices of different
// parts are never adjacent, and the boundary sweep observes all of its
// neighbors. The interesting result is the scaling *limit*: index-local
// graphs (road networks) have tiny boundaries and scale, while power-law
// graphs after DBG reordering concentrate hubs in low indices whose
// edges cross every partition — the boundary sweep dominates. The
// `multicard` experiment quantifies exactly that.

// MultiCardResult is the outcome of a partitioned run.
type MultiCardResult struct {
	Colors    []uint16
	NumColors int
	Cards     int
	// BoundaryVertices have at least one cross-part neighbor.
	BoundaryVertices int
	// InteriorCycles is the slowest card's interior phase.
	InteriorCycles int64
	// BoundaryCycles is the sequential sweep.
	BoundaryCycles int64
	// TotalCycles = InteriorCycles + BoundaryCycles.
	TotalCycles int64
}

// RunMultiCard colors g on `cards` simulated BitColor boards partitioned
// by contiguous index ranges; RunMultiCardWith accepts an explicit
// partition (e.g. partition.LabelPropagation).
func RunMultiCard(g *graph.CSR, cfg Config, cards int) (*MultiCardResult, error) {
	if cards < 1 {
		return nil, fmt.Errorf("sim: cards %d < 1", cards)
	}
	a, err := partition.Ranges(g, cards)
	if err != nil {
		return nil, err
	}
	return RunMultiCardWith(g, cfg, a)
}

// RunMultiCardWith colors g on the boards implied by the partition.
func RunMultiCardWith(g *graph.CSR, cfg Config, assignment *partition.Assignment) (*MultiCardResult, error) {
	if assignment == nil {
		return nil, fmt.Errorf("sim: nil partition")
	}
	if err := assignment.Validate(); err != nil {
		return nil, err
	}
	cards := assignment.K
	if cfg.MaxColors <= 0 {
		return nil, fmt.Errorf("sim: MaxColors %d must be positive", cfg.MaxColors)
	}
	n := g.NumVertices()
	if len(assignment.Parts) != n {
		return nil, fmt.Errorf("sim: partition covers %d of %d vertices", len(assignment.Parts), n)
	}
	if cards == 1 {
		res, err := Run(g, cfg)
		if err != nil {
			return nil, err
		}
		return &MultiCardResult{
			Colors: res.Colors, NumColors: res.NumColors, Cards: 1,
			InteriorCycles: res.TotalCycles, TotalCycles: res.TotalCycles,
		}, nil
	}
	part := func(v int) int { return int(assignment.Parts[v]) }
	boundary := make([]bool, n)
	for v := 0; v < n; v++ {
		pv := part(v)
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			if part(int(w)) != pv {
				boundary[v] = true
				break
			}
		}
	}

	colors := make([]uint16, n)
	res := &MultiCardResult{Cards: cards, Colors: colors}

	// Phase 1: per-card interior subgraphs in (simulated) parallel.
	for c := 0; c < cards; c++ {
		var interior []graph.VertexID
		for v := 0; v < n; v++ {
			if part(v) == c && !boundary[v] {
				interior = append(interior, graph.VertexID(v))
			}
		}
		if len(interior) == 0 {
			continue
		}
		sub, oldID := graph.InducedSubgraph(g, interior)
		cardCfg := cfg
		if cardCfg.CacheVertices > sub.NumVertices() {
			cardCfg.CacheVertices = sub.NumVertices()
		}
		r, err := Run(sub, cardCfg)
		if err != nil {
			return nil, fmt.Errorf("card %d: %w", c, err)
		}
		for i, old := range oldID {
			colors[old] = r.Colors[i]
		}
		if r.TotalCycles > res.InteriorCycles {
			res.InteriorCycles = r.TotalCycles
		}
	}

	// Phase 2: sequential boundary sweep on one card (single engine
	// cost model: startup + accumulate per neighbor + bit-wise Stage 1).
	codec := bitops.NewColorCodec(cfg.MaxColors)
	state := bitops.NewBitSet(cfg.MaxColors)
	for v := 0; v < n; v++ {
		if !boundary[v] {
			continue
		}
		res.BoundaryVertices++
		state.Reset()
		deg := int64(0)
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			codec.Decompress(colors[w], state)
			deg++
		}
		pick, cycles := codec.FirstFree(state)
		if pick == 0 {
			return nil, fmt.Errorf("sim: palette exhausted at boundary vertex %d", v)
		}
		colors[v] = pick
		res.BoundaryCycles += engine.DefaultStartupCycles + 2*deg + int64(cycles) + 1
	}
	res.TotalCycles = res.InteriorCycles + res.BoundaryCycles
	res.NumColors = distinct(colors)
	return res, nil
}
