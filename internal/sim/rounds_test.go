package sim

import (
	"testing"

	"bitcolor/internal/coloring"
)

func TestRunJonesPlassmannProper(t *testing.T) {
	g := prepared(t, 600, 5000, 31)
	cfg := smallConfig(8)
	res, err := RunJonesPlassmann(g, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 1 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	if res.TotalCycles <= 0 || res.EdgeWork <= g.NumEdges() {
		t.Fatalf("accounting off: cycles=%d edgework=%d", res.TotalCycles, res.EdgeWork)
	}
}

func TestRunJonesPlassmannDeterministic(t *testing.T) {
	g := prepared(t, 400, 3000, 32)
	a, err := RunJonesPlassmann(g, smallConfig(4), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunJonesPlassmann(g, smallConfig(4), 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles || a.Rounds != b.Rounds {
		t.Fatal("nondeterministic")
	}
}

// The §2.4 claim, quantified: on the identical substrate, the greedy
// pipeline with the conflict table beats the synchronous IS algorithm.
func TestGreedyPipelineBeatsJPOnSameSubstrate(t *testing.T) {
	g := prepared(t, 2000, 20000, 33)
	cfg := smallConfig(8)
	cfg.CacheVertices = 512
	greedy, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	jp, err := RunJonesPlassmann(g, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if jp.TotalCycles <= greedy.TotalCycles {
		t.Fatalf("JP %d cycles <= greedy %d on the same hardware",
			jp.TotalCycles, greedy.TotalCycles)
	}
	// The mechanism: JP re-scans edges across rounds.
	if jp.EdgeWork <= greedy.Aggregate.EdgesTotal {
		t.Fatalf("JP edge work %d not above greedy's %d",
			jp.EdgeWork, greedy.Aggregate.EdgesTotal)
	}
	// And typically needs more colors.
	if jp.NumColors < greedy.NumColors {
		t.Logf("JP used fewer colors (%d vs %d) — unusual but legal",
			jp.NumColors, greedy.NumColors)
	}
}

func TestRunJonesPlassmannRejectsBadConfig(t *testing.T) {
	g := prepared(t, 50, 100, 34)
	cfg := smallConfig(3)
	if _, err := RunJonesPlassmann(g, cfg, 1); err == nil {
		t.Fatal("P=3 accepted")
	}
	cfg = smallConfig(2)
	cfg.MaxColors = 0
	if _, err := RunJonesPlassmann(g, cfg, 1); err == nil {
		t.Fatal("MaxColors=0 accepted")
	}
}

func TestRunJonesPlassmannHDCOff(t *testing.T) {
	g := prepared(t, 300, 2000, 35)
	cfg := smallConfig(2)
	cfg.Options.HDC = false
	res, err := RunJonesPlassmann(g, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.ColorDRAM.Reads == 0 {
		t.Fatal("HDC-off JP did no DRAM reads")
	}
}
