package sim

import (
	"fmt"
	"math/bits"

	"bitcolor/internal/bitops"
	"bitcolor/internal/cache"
	"bitcolor/internal/engine"
	"bitcolor/internal/graph"
	"bitcolor/internal/mem"
)

// This file simulates the §2.4 alternative on BitColor's own substrate:
// independent-set (Jones–Plassmann) coloring mapped onto the same P
// engines, high-degree vertex cache, bit-wise Stage-1 and per-engine DRAM
// channels — but with synchronous rounds instead of the data conflict
// table. Comparing RunJonesPlassmann against Run quantifies the paper's
// argument that the greedy pipeline wins because the MIS family re-scans
// frontiers: the hardware is identical, only the algorithm differs.

// RoundsResult is the outcome of a synchronous-rounds simulation.
type RoundsResult struct {
	Colors      []uint16
	NumColors   int
	Rounds      int
	TotalCycles int64
	// EdgeWork counts neighbor-state fetches summed over rounds —
	// the redundancy the greedy pipeline avoids.
	EdgeWork int64
	// ColorDRAM aggregates the per-engine color channels.
	ColorDRAM mem.DRAMStats
}

// RoundBarrierCycles is the synchronization cost between rounds: drain
// the engines, swap the priority/color state, restart the streams.
const RoundBarrierCycles = 64

// jpVertexSetupCycles is the per-frontier-vertex stream setup: offset
// fetch, ping-pong priming and pipeline fill — the same work the greedy
// engine pays once per vertex (engine.DefaultStartupCycles), which the
// IS algorithm pays once per vertex *per round it stays uncolored*.
const jpVertexSetupCycles = engine.DefaultStartupCycles

// RunJonesPlassmann simulates Jones–Plassmann coloring on the BitColor
// substrate with cfg.Parallelism engines. Priorities derive from seed.
func RunJonesPlassmann(g *graph.CSR, cfg Config, seed int64) (*RoundsResult, error) {
	if cfg.Parallelism <= 0 || bits.OnesCount(uint(cfg.Parallelism)) != 1 {
		return nil, fmt.Errorf("sim: parallelism %d must be a positive power of two", cfg.Parallelism)
	}
	if cfg.MaxColors <= 0 {
		return nil, fmt.Errorf("sim: MaxColors %d must be positive", cfg.MaxColors)
	}
	n := g.NumVertices()
	p := cfg.Parallelism

	vt := cfg.CacheVertices
	if vt > n {
		vt = n
	}
	if !cfg.Options.HDC {
		vt = 0
	}
	var hvc *cache.HVC
	if vt > 0 {
		hvc = cache.NewHVC(cache.NewBitSelectCache(p, vt), vt)
	}

	phys := cfg.PhysicalChannels
	if phys <= 0 {
		phys = 4
	}
	if phys > p {
		phys = p
	}
	channels := make([]*mem.Channel, phys)
	for i := range channels {
		channels[i] = mem.NewChannel(cfg.DRAM)
	}

	colors := make([]uint16, n)
	prio := make([]uint64, n)
	s := uint64(seed)*2862933555777941757 + 3037000493
	for i := range prio {
		s = s*2862933555777941757 + 3037000493
		prio[i] = s
	}
	codec := bitops.NewColorCodec(cfg.MaxColors)
	states := make([]*bitops.BitSet, p)
	for i := range states {
		states[i] = bitops.NewBitSet(cfg.MaxColors)
	}
	// loaders give per-engine MGR block reuse over the shared channels.
	loaders := make([]*engine.ColorLoader, p)
	for i := range loaders {
		loaders[i] = engine.NewColorLoader(channels[i%phys], colors, cfg.Options.MGR)
	}

	res := &RoundsResult{Colors: colors}
	remaining := n
	var clock int64
	winners := make([]uint16, n)
	for remaining > 0 {
		res.Rounds++
		// Engine e processes vertices v with v % p == e, mirroring the
		// HDV stripe of §4.6 so cache writes stay port-legal.
		engineTime := make([]int64, p)
		colored := 0
		for v := 0; v < n; v++ {
			if colors[v] != 0 {
				continue
			}
			e := v % p
			t := clock + engineTime[e]
			t += jpVertexSetupCycles // offset fetch + stream setup
			// Win check: fetch each active neighbor's priority; priority
			// words ride the same state stream as colors, so charge the
			// same fetch path.
			win := true
			adj := g.Neighbors(graph.VertexID(v))
			for _, u := range adj {
				res.EdgeWork++
				t++ // pipeline slot
				if colors[u] == 0 {
					hit := false
					if hvc != nil {
						_, hit = hvc.Read(e, u)
					}
					if !hit {
						_, done := loaders[e].Load(u, t)
						if done > t {
							t = done
						}
					}
					if prio[u] > prio[v] || (prio[u] == prio[v] && u > graph.VertexID(v)) {
						win = false
						break
					}
				}
			}
			if win {
				// Gather colored-neighbor colors and take the bit-wise
				// first fit (the substrate's Stage 1).
				st := states[e]
				st.Reset()
				for _, u := range adj {
					res.EdgeWork++
					t++
					var cu uint16
					hit := false
					if hvc != nil {
						cu, hit = hvc.Read(e, u)
					}
					if !hit {
						c2, done := loaders[e].Load(u, t)
						if done > t {
							t = done
						}
						cu = c2
					}
					codec.Decompress(cu, st)
				}
				pick, cycles := codec.FirstFree(st)
				if pick == 0 {
					return nil, fmt.Errorf("sim: palette exhausted in JP round %d", res.Rounds)
				}
				t += int64(cycles)
				winners[v] = pick
				colored++
			}
			engineTime[e] = t - clock
		}
		// Commit winners; writes go through the HVC write ports (stripe-
		// legal) or posted DRAM writes.
		for v := 0; v < n; v++ {
			if winners[v] == 0 {
				continue
			}
			colors[v] = winners[v]
			winners[v] = 0
			e := v % p
			if hvc != nil && hvc.Contains(uint32(v)) {
				hvc.Write(e, uint32(v), colors[v])
			} else {
				block, _ := mem.ColorBlock(uint32(v))
				channels[e%phys].WriteBlock(block, clock+engineTime[e])
			}
		}
		remaining -= colored
		if colored == 0 && remaining > 0 {
			return nil, fmt.Errorf("sim: JP made no progress at round %d", res.Rounds)
		}
		// Barrier: the slowest engine plus synchronization.
		slowest := int64(0)
		for _, et := range engineTime {
			if et > slowest {
				slowest = et
			}
		}
		clock += slowest + RoundBarrierCycles
		for i := range loaders {
			loaders[i].Invalidate()
		}
	}
	res.TotalCycles = clock
	res.NumColors = distinct(colors)
	for _, ch := range channels {
		res.ColorDRAM.Add(ch.Stats())
	}
	return res, nil
}
