package sim

import (
	"math/rand"
	"testing"

	"bitcolor/internal/coloring"
	"bitcolor/internal/gen"
	"bitcolor/internal/graph"
	"bitcolor/internal/partition"
	"bitcolor/internal/reorder"
)

func TestMultiCardProper(t *testing.T) {
	g := prepared(t, 1200, 9000, 81)
	for _, cards := range []int{1, 2, 4} {
		res, err := RunMultiCard(g, smallConfig(4), cards)
		if err != nil {
			t.Fatalf("cards=%d: %v", cards, err)
		}
		if err := coloring.Verify(g, res.Colors); err != nil {
			t.Fatalf("cards=%d: %v", cards, err)
		}
		if res.TotalCycles <= 0 {
			t.Fatalf("cards=%d: no cycles", cards)
		}
		if cards > 1 && res.BoundaryVertices == 0 {
			t.Fatalf("cards=%d: random graph has no boundary (implausible)", cards)
		}
	}
}

func TestMultiCardSingleCardEqualsRun(t *testing.T) {
	g := prepared(t, 500, 4000, 82)
	mc, err := RunMultiCard(g, smallConfig(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(g, smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if mc.TotalCycles != direct.TotalCycles || mc.NumColors != direct.NumColors {
		t.Fatal("single-card path diverges from Run")
	}
}

// Road networks (index-local) must scale out: small boundary, interior
// phase shrinks with cards.
func TestMultiCardRoadScales(t *testing.T) {
	g, err := gen.RoadGrid(100, 100, 0.05, 0.08, 83)
	if err != nil {
		t.Fatal(err)
	}
	// NOTE: no DBG — row-major order is the index-local layout a real
	// partitioner would feed the cards.
	cfg := smallConfig(4)
	cfg.CacheVertices = 1024
	one, err := RunMultiCard(g, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunMultiCard(g, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.Verify(g, four.Colors); err != nil {
		t.Fatal(err)
	}
	bf := float64(four.BoundaryVertices) / float64(g.NumVertices())
	if bf > 0.1 {
		t.Fatalf("road boundary fraction %.2f implausibly high", bf)
	}
	if four.TotalCycles >= one.TotalCycles {
		t.Fatalf("4 cards (%d cycles) not faster than 1 (%d)", four.TotalCycles, one.TotalCycles)
	}
}

// DBG-reordered power-law graphs concentrate hub edges across every
// partition: the boundary dominates and scale-out stalls — the negative
// result the multicard experiment documents.
func TestMultiCardPowerLawBoundaryHeavy(t *testing.T) {
	raw, err := gen.RMAT(12, 10, 0.57, 0.19, 0.19, 84)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := reorder.DBG(raw)
	res, err := RunMultiCard(g, smallConfig(4), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	bf := float64(res.BoundaryVertices) / float64(g.NumVertices())
	if bf < 0.2 {
		t.Fatalf("power-law boundary fraction %.2f suspiciously low", bf)
	}
}

func TestMultiCardErrors(t *testing.T) {
	g := prepared(t, 20, 40, 85)
	if _, err := RunMultiCard(g, smallConfig(2), 0); err == nil {
		t.Fatal("cards=0 accepted")
	}
	cfg := smallConfig(2)
	cfg.MaxColors = 0
	if _, err := RunMultiCard(g, cfg, 2); err == nil {
		t.Fatal("MaxColors=0 accepted")
	}
}

func TestMultiCardEmptyGraph(t *testing.T) {
	g, _ := graph.FromEdgeList(0, nil)
	res, err := RunMultiCard(g, smallConfig(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles != 0 || res.BoundaryVertices != 0 {
		t.Fatalf("empty multicard: %+v", res)
	}
}

// Label propagation rescues the power-law scale-out: it cuts fewer edges
// than index ranges on a scrambled community graph, shrinking the
// sequential boundary phase.
func TestMultiCardWithLabelPropagation(t *testing.T) {
	blockOrdered, err := gen.Community(8, 150, 5, 1, 91)
	if err != nil {
		t.Fatal(err)
	}
	// Scramble IDs: real inputs don't arrive block-ordered, and the test
	// is that label propagation *recovers* the structure ranges lose.
	rng := rand.New(rand.NewSource(92))
	perm := rng.Perm(blockOrdered.NumVertices())
	var edges []graph.Edge
	for v := 0; v < blockOrdered.NumVertices(); v++ {
		for _, w := range blockOrdered.Neighbors(graph.VertexID(v)) {
			if graph.VertexID(v) < w {
				edges = append(edges, graph.Edge{U: graph.VertexID(perm[v]), V: graph.VertexID(perm[w])})
			}
		}
	}
	raw, err := graph.FromEdgeList(blockOrdered.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(4)
	ranges, err := RunMultiCard(raw, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := partition.LabelPropagation(raw, 4, 10, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	smart, err := RunMultiCardWith(raw, cfg, lp)
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.Verify(raw, smart.Colors); err != nil {
		t.Fatal(err)
	}
	if smart.BoundaryVertices >= ranges.BoundaryVertices {
		t.Fatalf("LP boundary %d >= ranges boundary %d",
			smart.BoundaryVertices, ranges.BoundaryVertices)
	}
}

func TestMultiCardWithErrors(t *testing.T) {
	g := prepared(t, 20, 40, 92)
	if _, err := RunMultiCardWith(g, smallConfig(2), nil); err == nil {
		t.Fatal("nil partition accepted")
	}
	bad := &partition.Assignment{Parts: make([]int32, 5), K: 2}
	if _, err := RunMultiCardWith(g, smallConfig(2), bad); err == nil {
		t.Fatal("short partition accepted")
	}
}
