package sim

import (
	"context"
	"testing"

	"bitcolor/internal/coloring"
	"bitcolor/internal/engine"
	"bitcolor/internal/graph"
	"bitcolor/internal/partition"
)

// The simulator's Data Conflict Table and the host DCT engine implement
// the same discipline — defer on in-flight lower-indexed neighbors,
// resolve in vertex order — through the shared engine.Defers rule. Both
// must therefore land on the sequential-greedy coloring of the same
// graph at any parallelism; a divergence means one side's defer decision
// drifted from the other's.
func TestSimAndHostDCTAgree(t *testing.T) {
	cases := []struct {
		n, m int
		seed int64
	}{
		{400, 3000, 1},
		{900, 12000, 7},
		{1500, 9000, 42},
	}
	for _, c := range cases {
		g := prepared(t, c.n, c.m, c.seed)
		for _, p := range []int{1, 2, 4, 8} {
			simRes, err := Run(g, smallConfig(p))
			if err != nil {
				t.Fatalf("n=%d seed=%d P=%d: sim: %v", c.n, c.seed, p, err)
			}
			hostRes, st, err := coloring.DCTOpts(context.Background(), g,
				coloring.MaxColorsDefault, coloring.Options{Workers: p})
			if err != nil {
				t.Fatalf("n=%d seed=%d P=%d: host: %v", c.n, c.seed, p, err)
			}
			if st.Rounds != 1 || st.ConflictsRepaired != 0 {
				t.Fatalf("n=%d seed=%d P=%d: host DCT not single-pass: %+v", c.n, c.seed, p, st)
			}
			for v := range simRes.Colors {
				if simRes.Colors[v] != hostRes.Colors[v] {
					t.Fatalf("n=%d seed=%d P=%d vertex %d: sim %d, host %d",
						c.n, c.seed, p, v, simRes.Colors[v], hostRes.Colors[v])
				}
			}
			if simRes.NumColors != hostRes.NumColors {
				t.Fatalf("n=%d seed=%d P=%d: sim %d colors, host %d",
					c.n, c.seed, p, simRes.NumColors, hostRes.NumColors)
			}
		}
	}
}

// TestShardedMatchesMultiCardSim cross-checks the host sharded engine
// against the simulator's multi-card scale-out on the *same* partition
// assignments. The two resolve boundary vertices differently (the sim
// colors interiors on induced subgraphs and sweeps the boundary
// sequentially; the host engine keeps global vertex order everywhere),
// so per-vertex colors may differ — but the structural shape must agree
// exactly: identical boundary classification per shard, identical cut,
// and the same color count on these graphs (color-count equality is
// empirical, not guaranteed in general; these cases were chosen to pin
// it so a drift in either scheme's boundary handling shows up).
func TestShardedMatchesMultiCardSim(t *testing.T) {
	cases := []struct {
		n, m int
		seed int64
	}{
		{400, 3000, 1},
		{900, 12000, 7},
		{1500, 9000, 44},
	}
	for _, c := range cases {
		g := prepared(t, c.n, c.m, c.seed)
		for _, k := range []int{2, 4} {
			for _, strat := range []string{coloring.PartitionRanges, coloring.PartitionLabelProp} {
				var (
					a   *partition.Assignment
					err error
				)
				if strat == coloring.PartitionRanges {
					a, err = partition.Ranges(g, k)
				} else {
					// Mirrors the sharded engine's label-propagation
					// parameters (shardLabelPropRounds/Slack).
					a, err = partition.LabelPropagation(g, k, 10, 0.15)
				}
				if err != nil {
					t.Fatal(err)
				}
				simRes, err := RunMultiCardWith(g, smallConfig(4), a)
				if err != nil {
					t.Fatalf("n=%d seed=%d k=%d %s: sim: %v", c.n, c.seed, k, strat, err)
				}
				hostRes, st, err := coloring.ShardedOpts(context.Background(), g,
					coloring.MaxColorsDefault, coloring.Options{Workers: 2, Shards: k, PartitionStrategy: strat})
				if err != nil {
					t.Fatalf("n=%d seed=%d k=%d %s: host: %v", c.n, c.seed, k, strat, err)
				}
				// Boundary classification: sim count, host count, Classify
				// and a brute-force recount from the shared assignment must
				// all agree.
				cl := partition.Classify(g, a)
				perShard := make([]int, k)
				total := 0
				for v := 0; v < g.NumVertices(); v++ {
					for _, w := range g.Neighbors(graph.VertexID(v)) {
						if a.Parts[w] != a.Parts[v] {
							perShard[a.Parts[v]]++
							total++
							break
						}
					}
				}
				if simRes.BoundaryVertices != total || st.BoundaryVertices != total || cl.Boundary != total {
					t.Fatalf("n=%d seed=%d k=%d %s: boundary tallies diverge: sim %d, host %d, classify %d, recount %d",
						c.n, c.seed, k, strat, simRes.BoundaryVertices, st.BoundaryVertices, cl.Boundary, total)
				}
				for p := 0; p < k; p++ {
					if cl.PerShardBoundary[p] != perShard[p] {
						t.Fatalf("n=%d seed=%d k=%d %s: shard %d boundary: classify %d, recount %d",
							c.n, c.seed, k, strat, p, cl.PerShardBoundary[p], perShard[p])
					}
				}
				if st.CutEdges != a.EdgeCut(g) || st.CutEdges != cl.CutEdges {
					t.Fatalf("n=%d seed=%d k=%d %s: cut edges diverge: host %d, EdgeCut %d, classify %d",
						c.n, c.seed, k, strat, st.CutEdges, a.EdgeCut(g), cl.CutEdges)
				}
				if simRes.NumColors != hostRes.NumColors {
					t.Fatalf("n=%d seed=%d k=%d %s: sim %d colors, host %d",
						c.n, c.seed, k, strat, simRes.NumColors, hostRes.NumColors)
				}
				if err := coloring.Verify(g, simRes.Colors); err != nil {
					t.Fatalf("n=%d seed=%d k=%d %s: sim coloring invalid: %v", c.n, c.seed, k, strat, err)
				}
				if err := coloring.Verify(g, hostRes.Colors); err != nil {
					t.Fatalf("n=%d seed=%d k=%d %s: host coloring invalid: %v", c.n, c.seed, k, strat, err)
				}
			}
		}
	}
}

// TestDefersMatchesDCTConfigure pins the helper the simulator's table and
// the host engine share: Configure must retain exactly the peers that
// engine.Defers says the vertex waits on.
func TestDefersMatchesDCTConfigure(t *testing.T) {
	d := engine.NewDCT(4)
	self := uint32(100)
	peers := []engine.PeerTask{
		{PEID: 0, Vertex: 3},
		{PEID: 1, Vertex: 100},
		{PEID: 2, Vertex: 99},
		{PEID: 3, Vertex: 250},
	}
	d.Configure(self, peers)
	rows := d.Rows()
	want := map[int]bool{}
	for _, p := range peers {
		if engine.Defers(self, p.Vertex) {
			want[p.PEID] = true
		}
	}
	if len(rows) != len(want) {
		t.Fatalf("Configure kept %d rows, Defers selects %d", len(rows), len(want))
	}
	for _, r := range rows {
		if !want[r.PEID] {
			t.Fatalf("Configure kept PE%d (vertex %d), which Defers rejects", r.PEID, r.Vertex)
		}
		if !engine.Defers(self, r.Vertex) {
			t.Fatalf("row vertex %d does not satisfy Defers(%d, ...)", r.Vertex, self)
		}
	}
	// The rule itself: strictly lower index wins, no self-wait, and it is
	// asymmetric — two vertices can never wait on each other.
	for _, c := range []struct {
		self, peer uint32
		want       bool
	}{{5, 4, true}, {5, 5, false}, {5, 6, false}, {0, 0, false}, {1, 0, true}} {
		if got := engine.Defers(c.self, c.peer); got != c.want {
			t.Fatalf("Defers(%d, %d) = %v, want %v", c.self, c.peer, got, c.want)
		}
	}
	for a := uint32(0); a < 20; a++ {
		for b := uint32(0); b < 20; b++ {
			if engine.Defers(a, b) && engine.Defers(b, a) {
				t.Fatalf("Defers is symmetric at (%d, %d): wait cycle possible", a, b)
			}
		}
	}
}
