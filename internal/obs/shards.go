package obs

// Per-worker counter shards. The host-parallel engines count everything
// their hot loops touch — vertices and dispatch blocks claimed, gather
// read classifications, conflicts — into one shard per worker. A shard
// is padded out to two cache lines so two workers' counters never share
// a line (the false-sharing trap the previous ad-hoc accumulation into a
// shared []int64 slice stepped on), and increments are plain stores:
// only the owning worker writes its shard, and the fold happens after
// the worker goroutines join.

import "sync/atomic"

// Counter indices within a shard.
const (
	// CtrVertices counts speculation-phase vertices claimed from the
	// shared cursor.
	CtrVertices = iota
	// CtrBlocks counts dispatch blocks claimed from the shared cursor
	// (speculation and repair sweeps).
	CtrBlocks
	// CtrHotReads / CtrMergedReads / CtrColdBlockLoads / CtrPrunedTail
	// are the blocked color-gather's read classification (HDC / MGR /
	// cold / PUV analogs).
	CtrHotReads
	CtrMergedReads
	CtrColdBlockLoads
	CtrPrunedTail
	// CtrConflictsFound / CtrConflictsRepaired are the detection sweep's
	// outcomes.
	CtrConflictsFound
	CtrConflictsRepaired
	// CtrDeferred counts vertices parked on the DCT engine's forwarding
	// ring because a lower-indexed neighbor's color was still pending;
	// CtrDeferRetries counts coloring attempts replayed from the ring
	// (>= CtrDeferred: a drained vertex can re-park on a different
	// neighbor); CtrSpinWaits counts fallback busy-wait yields taken when
	// the ring was full or the final drain found nothing resolvable.
	CtrDeferred
	CtrDeferRetries
	CtrSpinWaits
	// CtrCrossDefers counts vertices the sharded engine pushed to the
	// boundary frontier because a lower-indexed neighbor lives in another
	// shard (the structural cross-shard cause, counted once per vertex).
	CtrCrossDefers

	// NumCounters is the shard width.
	NumCounters
)

// shardBytes is the payload size of a Shard: the plain counters, their
// atomic live mirrors, and the liveOn flag.
const shardBytes = NumCounters*8*2 + 1

// Shard is one worker's private counter block, padded to a cache-line
// multiple so adjacent workers' shards never share a line. The plain
// counters c are owner-only (see package comment); the live mirrors are
// atomic cells the owner refreshes at coarse checkpoints (Publish) so a
// scraper goroutine can read mid-run progress race-free. Mirrors are
// armed per run (liveOn) before the workers spawn; unobserved runs pay
// one predictable branch per checkpoint and no atomics.
type Shard struct {
	c      [NumCounters]int64
	live   [NumCounters]atomic.Int64
	liveOn bool
	_      [(128 - shardBytes%128) % 128]byte
}

// Inc bumps one counter.
func (s *Shard) Inc(id int) { s.c[id]++ }

// Add bumps one counter by delta.
func (s *Shard) Add(id int, delta int64) { s.c[id] += delta }

// Get reads one counter (owner or post-join only).
func (s *Shard) Get(id int) int64 { return s.c[id] }

// Publish refreshes one counter's live mirror from its plain value.
// Owner-only; call at coarse checkpoints (block claims, ctx polls), not
// per element. No-op unless the mirrors are armed.
func (s *Shard) Publish(id int) {
	if s.liveOn {
		s.live[id].Store(s.c[id])
	}
}

// PublishAll refreshes every live mirror. Owner-only; same checkpoint
// discipline as Publish.
func (s *Shard) PublishAll() {
	if !s.liveOn {
		return
	}
	for i := range s.c {
		s.live[i].Store(s.c[i])
	}
}

// Live reads one counter's mirror. Safe from any goroutine at any time;
// the value trails the owner's plain counter by at most one checkpoint
// and never decreases within a run.
func (s *Shard) Live(id int) int64 { return s.live[id].Load() }

// ShardSet is the per-run collection of worker shards.
type ShardSet struct {
	shards []Shard
}

// NewShardSet allocates one padded shard per worker.
func NewShardSet(workers int) *ShardSet {
	return &ShardSet{shards: make([]Shard, workers)}
}

// Shard returns worker w's shard.
func (s *ShardSet) Shard(w int) *Shard { return &s.shards[w] }

// Total folds one counter across workers. Call after the workers join.
func (s *ShardSet) Total(id int) int64 {
	var sum int64
	for w := range s.shards {
		sum += s.shards[w].c[id]
	}
	return sum
}

// Workers returns the number of shards.
func (s *ShardSet) Workers() int { return len(s.shards) }

// Reset zeroes every counter so a pooled ShardSet can serve a new run,
// disarms the live mirrors and clears them. Call only between runs (no
// concurrent shard owners; the run registry detaches readers first).
func (s *ShardSet) Reset() {
	for w := range s.shards {
		sh := &s.shards[w]
		sh.c = [NumCounters]int64{}
		if sh.liveOn {
			sh.liveOn = false
			for i := range sh.live {
				sh.live[i].Store(0)
			}
		}
	}
}

// EnableLive arms every shard's live mirror for the coming run. Call
// before the worker goroutines spawn (goroutine creation publishes the
// flag to the owners).
func (s *ShardSet) EnableLive() {
	for w := range s.shards {
		s.shards[w].liveOn = true
	}
}

// LiveTotal folds one counter's live mirrors across workers. Safe
// mid-run from any goroutine.
func (s *ShardSet) LiveTotal(id int) int64 {
	var sum int64
	for w := range s.shards {
		sum += s.shards[w].live[id].Load()
	}
	return sum
}

// LivePerWorker returns one counter's per-worker live mirrors as a
// fresh slice. Scrape path only — allocates.
func (s *ShardSet) LivePerWorker(id int) []int64 {
	out := make([]int64, len(s.shards))
	for w := range s.shards {
		out[w] = s.shards[w].live[id].Load()
	}
	return out
}

// PerWorker returns one counter's per-worker values as a fresh slice.
func (s *ShardSet) PerWorker(id int) []int64 { return s.PerWorkerInto(id, nil) }

// PerWorkerInto is PerWorker writing into out when it has the capacity
// (allocation-free stat folding for pooled scratch); out == nil or too
// small allocates.
func (s *ShardSet) PerWorkerInto(id int, out []int64) []int64 {
	if cap(out) < len(s.shards) {
		out = make([]int64, len(s.shards))
	}
	out = out[:len(s.shards)]
	for w := range s.shards {
		out[w] = s.shards[w].c[id]
	}
	return out
}
