package obs

// Per-worker counter shards. The host-parallel engines count everything
// their hot loops touch — vertices and dispatch blocks claimed, gather
// read classifications, conflicts — into one shard per worker. A shard
// is padded out to two cache lines so two workers' counters never share
// a line (the false-sharing trap the previous ad-hoc accumulation into a
// shared []int64 slice stepped on), and increments are plain stores:
// only the owning worker writes its shard, and the fold happens after
// the worker goroutines join.

// Counter indices within a shard.
const (
	// CtrVertices counts speculation-phase vertices claimed from the
	// shared cursor.
	CtrVertices = iota
	// CtrBlocks counts dispatch blocks claimed from the shared cursor
	// (speculation and repair sweeps).
	CtrBlocks
	// CtrHotReads / CtrMergedReads / CtrColdBlockLoads / CtrPrunedTail
	// are the blocked color-gather's read classification (HDC / MGR /
	// cold / PUV analogs).
	CtrHotReads
	CtrMergedReads
	CtrColdBlockLoads
	CtrPrunedTail
	// CtrConflictsFound / CtrConflictsRepaired are the detection sweep's
	// outcomes.
	CtrConflictsFound
	CtrConflictsRepaired
	// CtrDeferred counts vertices parked on the DCT engine's forwarding
	// ring because a lower-indexed neighbor's color was still pending;
	// CtrDeferRetries counts coloring attempts replayed from the ring
	// (>= CtrDeferred: a drained vertex can re-park on a different
	// neighbor); CtrSpinWaits counts fallback busy-wait yields taken when
	// the ring was full or the final drain found nothing resolvable.
	CtrDeferred
	CtrDeferRetries
	CtrSpinWaits
	// CtrCrossDefers counts vertices the sharded engine pushed to the
	// boundary frontier because a lower-indexed neighbor lives in another
	// shard (the structural cross-shard cause, counted once per vertex).
	CtrCrossDefers

	// NumCounters is the shard width.
	NumCounters
)

// Shard is one worker's private counter block, padded to 128 bytes so
// adjacent workers' shards never share a cache line.
type Shard struct {
	c [NumCounters]int64
	_ [128 - (NumCounters*8)%128]byte
}

// Inc bumps one counter.
func (s *Shard) Inc(id int) { s.c[id]++ }

// Add bumps one counter by delta.
func (s *Shard) Add(id int, delta int64) { s.c[id] += delta }

// Get reads one counter (owner or post-join only).
func (s *Shard) Get(id int) int64 { return s.c[id] }

// ShardSet is the per-run collection of worker shards.
type ShardSet struct {
	shards []Shard
}

// NewShardSet allocates one padded shard per worker.
func NewShardSet(workers int) *ShardSet {
	return &ShardSet{shards: make([]Shard, workers)}
}

// Shard returns worker w's shard.
func (s *ShardSet) Shard(w int) *Shard { return &s.shards[w] }

// Total folds one counter across workers. Call after the workers join.
func (s *ShardSet) Total(id int) int64 {
	var sum int64
	for w := range s.shards {
		sum += s.shards[w].c[id]
	}
	return sum
}

// Workers returns the number of shards.
func (s *ShardSet) Workers() int { return len(s.shards) }

// Reset zeroes every counter so a pooled ShardSet can serve a new run.
// Call only between runs (no concurrent shard owners).
func (s *ShardSet) Reset() {
	for w := range s.shards {
		s.shards[w].c = [NumCounters]int64{}
	}
}

// PerWorker returns one counter's per-worker values as a fresh slice.
func (s *ShardSet) PerWorker(id int) []int64 { return s.PerWorkerInto(id, nil) }

// PerWorkerInto is PerWorker writing into out when it has the capacity
// (allocation-free stat folding for pooled scratch); out == nil or too
// small allocates.
func (s *ShardSet) PerWorkerInto(id int, out []int64) []int64 {
	if cap(out) < len(s.shards) {
		out = make([]int64, len(s.shards))
	}
	out = out[:len(s.shards)]
	for w := range s.shards {
		out[w] = s.shards[w].c[id]
	}
	return out
}
