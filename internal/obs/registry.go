package obs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bitcolor/internal/metrics"
)

// The run registry is the multi-run introspection plane: every engine
// invocation carrying an Observer registers an in-flight RunRecord
// (engine, graph size, pool negotiation, live progress) and
// deregisters on completion into a bounded flight-recorder ring of
// RunSummary entries. The /debug/runs HTTP surface, the watchdog and
// the service layer all read from here; the engines only ever write
// through nil-safe RunRecord methods, so unobserved runs never touch
// the registry at all.

// DefaultFlightRecorderSize bounds the completed-run ring of the
// process-default registry.
const DefaultFlightRecorderSize = 64

// RunRegistry tracks in-flight runs and keeps the flight-recorder ring
// of the most recent completed ones. All methods are safe for
// concurrent use and nil-safe.
type RunRegistry struct {
	mu      sync.Mutex
	live    []*RunRecord // registration order
	ring    []RunSummary // oldest first, bounded by ringCap
	ringCap int
	seq     int64
}

var defaultRuns = &RunRegistry{ringCap: DefaultFlightRecorderSize}

// Runs returns the process-default run registry — the one the engine
// dispatch decorator registers into and the HTTP surface serves.
func Runs() *RunRegistry { return defaultRuns }

// NewRunRegistry returns an isolated registry (tests; the default
// registry's behavior with a custom ring bound).
func NewRunRegistry(ringCap int) *RunRegistry {
	if ringCap <= 0 {
		ringCap = DefaultFlightRecorderSize
	}
	return &RunRegistry{ringCap: ringCap}
}

// RunRecord is one in-flight run. The immutable identity fields are set
// at registration; everything mutable is either atomic (round) or
// guarded by mu — including the ShardSet attach/detach handshake that
// keeps scrapers off a pooled ShardSet once the run finishes and the
// set can be recycled.
type RunRecord struct {
	reg      *RunRegistry
	id       string
	runID    string
	engine   string
	vertices int64
	edges    int64
	start    time.Time
	deadline time.Time // zero when the run's context had none
	o        *Observer

	round atomic.Int64

	mu        sync.Mutex
	state     string // "queued" | "running"
	demand    int
	granted   int
	queueWait time.Duration
	shards    *ShardSet
	poolStat  func() PoolStatus
	done      bool

	// Watchdog bookkeeping (watchdog goroutine only, under mu).
	wdVertices       int64
	wdChanged        time.Time
	wdWarnedStall    bool
	wdWarnedDeadline bool
}

// Begin registers an in-flight run and returns its record. Returns nil
// (a valid no-op record) when the registry or observer is nil, so the
// dispatch decorator calls it unconditionally once an observer is
// resolved. The context contributes only its deadline (for the
// watchdog's deadline-fraction check).
func (rr *RunRegistry) Begin(ctx context.Context, o *Observer, engine string, vertices, edges int64) *RunRecord {
	if rr == nil || o == nil {
		return nil
	}
	rec := &RunRecord{
		reg:      rr,
		runID:    o.RunID(),
		engine:   engine,
		vertices: vertices,
		edges:    edges,
		start:    time.Now(),
		o:        o,
		state:    "running",
	}
	rec.wdChanged = rec.start
	if dl, ok := ctx.Deadline(); ok {
		rec.deadline = dl
	}
	rr.mu.Lock()
	rr.seq++
	rec.id = fmt.Sprintf("%s.%d", rec.runID, rr.seq)
	rr.live = append(rr.live, rec)
	inflight := len(rr.live)
	rr.mu.Unlock()
	if rr == defaultRuns {
		Plane().Gauge(famRunsInflight).Set("", float64(inflight))
	}
	return rec
}

// ID returns the registry-unique run identifier ("" on nil) — the
// /debug/runs/<id>/trace path segment. Distinct from the observer's
// RunID: one observer can cover several registered runs.
func (r *RunRecord) ID() string {
	if r == nil {
		return ""
	}
	return r.id
}

// Queued marks the record as waiting for pool admission. The dispatch
// decorator calls it before blocking on Acquire, so /debug/runs shows
// backpressured runs in state "queued".
func (r *RunRecord) Queued(demand int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.state = "queued"
	r.demand = demand
	r.mu.Unlock()
}

// Admitted records the pool negotiation outcome and flips the record to
// "running". pool, when non-nil, is sampled by /debug/runs for live
// queue depth alongside this run.
func (r *RunRecord) Admitted(demand, granted int, wait time.Duration, pool func() PoolStatus) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.state = "running"
	r.demand = demand
	r.granted = granted
	r.queueWait = wait
	r.poolStat = pool
	r.mu.Unlock()
}

// AttachShards hands the run's per-worker counter shards to the record
// and arms their live mirrors, making Progress a real mid-run read.
// The engine calls it before spawning workers; nil-safe, so the call
// costs unobserved runs nothing beyond the nil check.
func (r *RunRecord) AttachShards(ss *ShardSet) {
	if r == nil || ss == nil {
		return
	}
	ss.EnableLive()
	r.mu.Lock()
	r.shards = ss
	r.mu.Unlock()
}

// SetRound publishes the run's current speculation/repair round.
// Nil-safe, lock-free; engines call it at sweep boundaries.
func (r *RunRecord) SetRound(n int) {
	if r == nil {
		return
	}
	r.round.Store(int64(n))
}

// LaneProgress is one worker lane's live counters.
type LaneProgress struct {
	Worker   int   `json:"worker"`
	Vertices int64 `json:"vertices"`
	Blocks   int64 `json:"blocks"`
}

// Progress is a point-in-time snapshot of one run's advancement. Every
// field is cumulative within the run, so consecutive snapshots are
// monotonically non-decreasing.
type Progress struct {
	State             string         `json:"state"`
	Round             int64          `json:"round"`
	Vertices          int64          `json:"vertices"`
	Blocks            int64          `json:"blocks"`
	ConflictsFound    int64          `json:"conflicts_found"`
	ConflictsRepaired int64          `json:"conflicts_repaired"`
	Deferred          int64          `json:"deferred"`
	Lanes             []LaneProgress `json:"lanes,omitempty"`
}

// Progress snapshots the run's live counters. Safe from any goroutine
// at any time; after the run finishes it keeps returning the final
// totals (folded from RunStats, never from the recycled ShardSet).
func (r *RunRecord) Progress() Progress {
	if r == nil {
		return Progress{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.progressLocked()
}

// progressLocked reads the live mirrors (or the frozen final snapshot)
// under r.mu — the lock is what keeps the read off a ShardSet that
// Finish has already released for recycling.
func (r *RunRecord) progressLocked() Progress {
	p := Progress{State: r.state, Round: r.round.Load()}
	ss := r.shards
	if ss == nil {
		return p
	}
	p.Lanes = make([]LaneProgress, ss.Workers())
	for w := range p.Lanes {
		sh := ss.Shard(w)
		lane := LaneProgress{Worker: w, Vertices: sh.Live(CtrVertices), Blocks: sh.Live(CtrBlocks)}
		p.Lanes[w] = lane
		p.Vertices += lane.Vertices
		p.Blocks += lane.Blocks
	}
	p.ConflictsFound = ss.LiveTotal(CtrConflictsFound)
	p.ConflictsRepaired = ss.LiveTotal(CtrConflictsRepaired)
	p.Deferred = ss.LiveTotal(CtrDeferred)
	return p
}

// RunSummary is one completed run in the flight-recorder ring.
type RunSummary struct {
	ID                string    `json:"id"`
	RunID             string    `json:"run_id"`
	Engine            string    `json:"engine"`
	Vertices          int64     `json:"vertices"`
	Edges             int64     `json:"edges"`
	Start             time.Time `json:"start"`
	DurationMS        float64   `json:"duration_ms"`
	Status            string    `json:"status"` // ok | cancelled | error
	Error             string    `json:"error,omitempty"`
	Colors            int       `json:"colors"`
	Rounds            int       `json:"rounds"`
	Workers           int       `json:"workers"`
	ConflictsFound    int64     `json:"conflicts_found"`
	ConflictsRepaired int64     `json:"conflicts_repaired"`
	Demand            int       `json:"demand,omitempty"`
	Granted           int       `json:"granted,omitempty"`
	QueueWaitMS       float64   `json:"queue_wait_ms,omitempty"`

	o *Observer
}

// Observer returns the completed run's observer, kept so the trace of a
// recorded run stays pullable after completion.
func (s RunSummary) Observer() *Observer { return s.o }

// Finish deregisters the run into the flight-recorder ring. The final
// progress totals come from the folded RunStats (always >= the last
// live snapshot — the mirrors trail the plain counters) and the
// ShardSet reference is dropped under the lock, so a scraper can never
// read a recycled set. The dispatch decorator calls Finish before
// returning, i.e. strictly before the caller could reuse the Scratch
// that owns the shards.
func (r *RunRecord) Finish(colors int, st metrics.RunStats, runErr error) {
	if r == nil {
		return
	}
	end := time.Now()
	status := "ok"
	if runErr != nil {
		status = "error"
		if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
			status = "cancelled"
		}
	}
	sum := RunSummary{
		ID:                r.id,
		RunID:             r.runID,
		Engine:            r.engine,
		Vertices:          r.vertices,
		Edges:             r.edges,
		Start:             r.start,
		DurationMS:        float64(end.Sub(r.start).Nanoseconds()) / 1e6,
		Status:            status,
		Colors:            colors,
		Rounds:            st.Rounds,
		Workers:           st.Workers,
		ConflictsFound:    st.ConflictsFound,
		ConflictsRepaired: st.ConflictsRepaired,
		o:                 r.o,
	}
	if runErr != nil {
		sum.Error = runErr.Error()
	}
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return
	}
	r.done = true
	r.shards = nil
	r.poolStat = nil
	sum.Demand = r.demand
	sum.Granted = r.granted
	sum.QueueWaitMS = float64(r.queueWait.Nanoseconds()) / 1e6
	r.mu.Unlock()

	rr := r.reg
	rr.mu.Lock()
	for i, rec := range rr.live {
		if rec == r {
			rr.live = append(rr.live[:i], rr.live[i+1:]...)
			break
		}
	}
	rr.ring = append(rr.ring, sum)
	if len(rr.ring) > rr.ringCap {
		rr.ring = rr.ring[len(rr.ring)-rr.ringCap:]
	}
	inflight := len(rr.live)
	rr.mu.Unlock()
	if rr == defaultRuns {
		Plane().Gauge(famRunsInflight).Set("", float64(inflight))
		Plane().Counter(famRunsCompleted).Add(status, 1)
	}
}

// LiveRun is one in-flight run's introspection view — the /debug/runs
// "live" array element.
type LiveRun struct {
	ID          string      `json:"id"`
	RunID       string      `json:"run_id"`
	Engine      string      `json:"engine"`
	Vertices    int64       `json:"vertices"`
	Edges       int64       `json:"edges"`
	Start       time.Time   `json:"start"`
	ElapsedMS   float64     `json:"elapsed_ms"`
	DeadlineMS  float64     `json:"deadline_ms_left,omitempty"`
	Demand      int         `json:"demand,omitempty"`
	Granted     int         `json:"granted,omitempty"`
	QueueWaitMS float64     `json:"queue_wait_ms,omitempty"`
	Progress    Progress    `json:"progress"`
	Pool        *PoolStatus `json:"pool,omitempty"`
}

// LiveRuns snapshots every in-flight run in registration order.
func (rr *RunRegistry) LiveRuns() []LiveRun {
	if rr == nil {
		return nil
	}
	now := time.Now()
	rr.mu.Lock()
	recs := append([]*RunRecord(nil), rr.live...)
	rr.mu.Unlock()
	out := make([]LiveRun, 0, len(recs))
	for _, r := range recs {
		r.mu.Lock()
		lr := LiveRun{
			ID:          r.id,
			RunID:       r.runID,
			Engine:      r.engine,
			Vertices:    r.vertices,
			Edges:       r.edges,
			Start:       r.start,
			ElapsedMS:   float64(now.Sub(r.start).Nanoseconds()) / 1e6,
			Demand:      r.demand,
			Granted:     r.granted,
			QueueWaitMS: float64(r.queueWait.Nanoseconds()) / 1e6,
			Progress:    r.progressLocked(),
		}
		if !r.deadline.IsZero() {
			lr.DeadlineMS = float64(r.deadline.Sub(now).Nanoseconds()) / 1e6
		}
		if r.poolStat != nil {
			st := r.poolStat()
			lr.Pool = &st
		}
		r.mu.Unlock()
		out = append(out, lr)
	}
	return out
}

// Recent returns the flight-recorder ring, most recent first.
func (rr *RunRegistry) Recent() []RunSummary {
	if rr == nil {
		return nil
	}
	rr.mu.Lock()
	defer rr.mu.Unlock()
	out := make([]RunSummary, len(rr.ring))
	for i, s := range rr.ring {
		out[len(rr.ring)-1-i] = s
	}
	return out
}

// Observer resolves a run ID (live or recorded) to its observer — the
// /debug/runs/<id>/trace lookup. Nil when the ID is unknown.
func (rr *RunRegistry) Observer(id string) *Observer {
	if rr == nil {
		return nil
	}
	rr.mu.Lock()
	defer rr.mu.Unlock()
	for _, r := range rr.live {
		if r.id == id {
			return r.o
		}
	}
	for _, s := range rr.ring {
		if s.ID == id {
			return s.o
		}
	}
	return nil
}

// ProgressOf resolves a live run ID to its progress snapshot (false
// when the run is not in flight).
func (rr *RunRegistry) ProgressOf(id string) (Progress, bool) {
	if rr == nil {
		return Progress{}, false
	}
	rr.mu.Lock()
	var rec *RunRecord
	for _, r := range rr.live {
		if r.id == id {
			rec = r
			break
		}
	}
	rr.mu.Unlock()
	if rec == nil {
		return Progress{}, false
	}
	return rec.Progress(), true
}

// WatchdogConfig tunes the slow-run watchdog.
type WatchdogConfig struct {
	// Interval between scans (default 500ms).
	Interval time.Duration
	// DeadlineFraction warns when a deadline-carrying run has consumed
	// more than this fraction of its budget (0 disables; e.g. 0.8).
	DeadlineFraction float64
	// Stall warns when a running run's live vertex count has not moved
	// for at least this long (0 disables).
	Stall time.Duration
}

// StartWatchdog scans the registry's live runs every Interval and logs
// a run_id-stamped warning (through each run's own observer logger)
// when a run crosses the deadline-fraction or progress-stall
// threshold. Each condition warns once per run. Returns a stop func.
func (rr *RunRegistry) StartWatchdog(cfg WatchdogConfig) (stop func()) {
	if rr == nil {
		return func() {}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				rr.mu.Lock()
				recs := append([]*RunRecord(nil), rr.live...)
				rr.mu.Unlock()
				for _, r := range recs {
					r.watchdogCheck(now, cfg)
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// watchdogCheck applies both thresholds to one run.
func (r *RunRecord) watchdogCheck(now time.Time, cfg WatchdogConfig) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return
	}
	p := r.progressLocked()
	state := r.state
	var warnDeadline, warnStall bool
	if cfg.DeadlineFraction > 0 && !r.deadline.IsZero() && !r.wdWarnedDeadline {
		budget := r.deadline.Sub(r.start)
		if budget > 0 && now.Sub(r.start) > time.Duration(float64(budget)*cfg.DeadlineFraction) {
			r.wdWarnedDeadline = true
			warnDeadline = true
		}
	}
	var stalledFor time.Duration
	if cfg.Stall > 0 && state == "running" {
		if p.Vertices != r.wdVertices {
			r.wdVertices = p.Vertices
			r.wdChanged = now
			r.wdWarnedStall = false
		} else if !r.wdWarnedStall && now.Sub(r.wdChanged) >= cfg.Stall {
			r.wdWarnedStall = true
			warnStall = true
			stalledFor = now.Sub(r.wdChanged)
		}
	}
	elapsed := now.Sub(r.start)
	engine, o := r.engine, r.o
	deadline := r.deadline
	r.mu.Unlock()

	if warnDeadline {
		o.Logger().Warn("slow run: deadline budget nearly consumed",
			"engine", engine, "elapsed", elapsed,
			"deadline_in", deadline.Sub(now),
			"vertices", p.Vertices, "round", p.Round, "state", state)
	}
	if warnStall {
		o.Logger().Warn("slow run: progress stalled",
			"engine", engine, "elapsed", elapsed,
			"stalled_for", stalledFor,
			"vertices", p.Vertices, "round", p.Round, "state", state)
	}
}
