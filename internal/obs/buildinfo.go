package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Build identity, read once from the binary's embedded build metadata.
// The same revision string is stamped everywhere a run is identified —
// the bitcolor_build_info family, the /debug/runs JSON envelope and the
// benchsuite BenchFile envelope — so results from different surfaces
// always correlate on one value.

var (
	buildInfoOnce sync.Once
	buildInfoMap  map[string]string
)

// BuildInfo returns the process's build identity: go_version, revision
// (VCS commit, "+dirty" when the working tree was modified, "unknown"
// outside a VCS build), and module_version. The map is computed once
// and shared — treat it as read-only.
func BuildInfo() map[string]string {
	buildInfoOnce.Do(func() {
		m := map[string]string{
			"go_version":     runtime.Version(),
			"revision":       "unknown",
			"module_version": "(devel)",
		}
		if bi, ok := debug.ReadBuildInfo(); ok {
			if bi.Main.Version != "" {
				m["module_version"] = bi.Main.Version
			}
			rev, dirty := "", false
			for _, s := range bi.Settings {
				switch s.Key {
				case "vcs.revision":
					rev = s.Value
				case "vcs.modified":
					dirty = s.Value == "true"
				}
			}
			if rev != "" {
				if dirty {
					rev += "+dirty"
				}
				m["revision"] = rev
			}
		}
		buildInfoMap = m
	})
	return buildInfoMap
}

// Revision returns the VCS revision from BuildInfo ("unknown" outside a
// VCS build). CLI envelopes (benchsuite's BenchFile) use this so their
// stamp matches the metrics exporter's bitcolor_build_info exactly.
func Revision() string { return BuildInfo()["revision"] }
