package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
	"unsafe"

	"bitcolor/internal/metrics"
)

func TestSpanTree(t *testing.T) {
	o := New(WithRunID("test-run"))
	if o.RunID() != "test-run" {
		t.Fatalf("RunID = %q", o.RunID())
	}
	root := o.StartSpan("pipeline")
	child := root.Child("color").Attr("vertices", int64(10))
	worker := child.Child("round").Worker(2)
	worker.End()
	child.End()
	root.End()

	spans := o.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// End order: worker, child, root.
	if spans[0].Name != "round" || spans[1].Name != "color" || spans[2].Name != "pipeline" {
		t.Fatalf("span order = %v %v %v", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if spans[2].Parent != 0 {
		t.Fatalf("root parent = %d, want 0", spans[2].Parent)
	}
	if spans[1].Parent != spans[2].ID {
		t.Fatalf("child parent = %d, want root ID %d", spans[1].Parent, spans[2].ID)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("grandchild parent = %d, want child ID %d", spans[0].Parent, spans[1].ID)
	}
	if spans[0].TID != 3 {
		t.Fatalf("worker lane TID = %d, want 3 (1+w)", spans[0].TID)
	}
	if len(spans[1].Attrs) != 1 || spans[1].Attrs[0].Key != "vertices" {
		t.Fatalf("attrs = %v", spans[1].Attrs)
	}
	for _, s := range spans {
		if s.End < s.Start || s.Duration() < 0 {
			t.Fatalf("non-monotonic span %+v", s)
		}
	}
	if n := o.SpanCount("round"); n != 1 {
		t.Fatalf("SpanCount(round) = %d", n)
	}
	if v := o.Metrics().Counter("bitcolor_spans_total").Value(""); v != 3 {
		t.Fatalf("spans counter = %d, want 3", v)
	}
}

// TestNilSafety pins the overhead contract: every Observer and Span
// method must be a no-op on a nil receiver, so instrumented code pays a
// single branch when no observer is attached.
func TestNilSafety(t *testing.T) {
	var o *Observer
	if o.RunID() != "" || o.Metrics() != nil || o.Spans() != nil || o.SpanCount("x") != 0 {
		t.Fatal("nil observer getters not neutral")
	}
	sp := o.StartSpan("anything")
	if sp != nil {
		t.Fatal("nil observer must produce nil spans")
	}
	// The full chain must be callable on nil without panicking.
	sp.Child("c").Worker(3).Attr("k", 1).End()
	sp.End()
	o.RecordRun("engine", 4, time.Second, metrics.RunStats{}, nil)
	o.RecordStage("color", time.Second, true)
	o.Logger().Info("dropped")
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatalf("nil WriteTrace: %v", err)
	}
	var tf map[string]any
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("nil trace not valid JSON: %v", err)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context yielded an observer")
	}
	o := New()
	ctx := NewContext(context.Background(), o)
	if FromContext(ctx) != o {
		t.Fatal("observer lost in context round trip")
	}
}

func TestShards(t *testing.T) {
	if sz := unsafe.Sizeof(Shard{}); sz%128 != 0 {
		t.Fatalf("Shard size %d is not cache-line padded to 128", sz)
	}
	ss := NewShardSet(3)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := ss.Shard(w)
			for i := 0; i < 1000; i++ {
				sh.Inc(CtrBlocks)
				sh.Add(CtrVertices, 2)
			}
		}(w)
	}
	wg.Wait()
	if got := ss.Total(CtrBlocks); got != 3000 {
		t.Fatalf("Total blocks = %d, want 3000", got)
	}
	if got := ss.Total(CtrVertices); got != 6000 {
		t.Fatalf("Total vertices = %d, want 6000", got)
	}
	pw := ss.PerWorker(CtrBlocks)
	if len(pw) != 3 || pw[0] != 1000 || pw[1] != 1000 || pw[2] != 1000 {
		t.Fatalf("PerWorker = %v", pw)
	}
	if ss.Shard(1).Get(CtrVertices) != 2000 {
		t.Fatalf("Get = %d", ss.Shard(1).Get(CtrVertices))
	}
}

// fullRunStats is a RunStats with every subsystem populated, so a single
// RecordRun touches all engine-side families.
func fullRunStats() metrics.RunStats {
	return metrics.RunStats{
		Workers:           2,
		Rounds:            3,
		ConflictsFound:    7,
		ConflictsRepaired: 5,
		VerticesPerWorker: []int64{60, 40},
		BlocksPerWorker:   []int64{8, 2},
		Gather: metrics.GatherStats{
			HotReads: 10, MergedReads: 20, ColdBlockLoads: 30, PrunedTail: 40,
		},
		HotThreshold: 128,
	}
}

func TestPrometheusExposition(t *testing.T) {
	o := New(WithRunID("prom"))
	o.StartSpan("pipeline").End()
	o.RecordRun("parallelbitwise", 12, 250*time.Millisecond, fullRunStats(), nil)
	o.RecordStage("color", 100*time.Millisecond, false)
	o.RecordStage("verify", 10*time.Millisecond, true)

	var buf bytes.Buffer
	if err := o.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// The ISSUE acceptance bar: a scrape exposes at least 10 metric
	// families, each with HELP and TYPE headers.
	types := strings.Count(out, "# TYPE ")
	helps := strings.Count(out, "# HELP ")
	if types < 10 || helps < 10 {
		t.Fatalf("scrape has %d TYPE / %d HELP lines, want >= 10 each:\n%s", types, helps, out)
	}
	for _, want := range []string{
		`bitcolor_engine_runs_total{engine="parallelbitwise"} 1`,
		`bitcolor_rounds_total{engine="parallelbitwise"} 3`,
		`bitcolor_conflicts_found_total{engine="parallelbitwise"} 7`,
		`bitcolor_worker_vertices_total{worker="0"} 60`,
		`bitcolor_worker_blocks_total{worker="1"} 2`,
		// fair share ceil(10/2)=5; worker 0 claimed 8 → 3 steals.
		`bitcolor_worker_steals_total{worker="0"} 3`,
		`bitcolor_gather_hot_reads_total 10`,
		`bitcolor_gather_pruned_tail_total 40`,
		`bitcolor_stage_cancelled_total{stage="verify"} 1`,
		`bitcolor_engine_duration_seconds_count{engine="parallelbitwise"} 1`,
		`le="0.5"`,
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
	// Histogram sum ≈ 0.25s.
	if !strings.Contains(out, "bitcolor_engine_duration_seconds_sum") {
		t.Fatalf("no histogram sum:\n%s", out)
	}
}

func TestRecordRunError(t *testing.T) {
	o := New()
	o.RecordRun("speculative", 0, time.Millisecond, metrics.RunStats{Rounds: 2}, errors.New("boom"))
	r := o.Metrics()
	if r.Counter("bitcolor_engine_runs_total").Value("speculative") != 1 {
		t.Fatal("errored run not counted as a run")
	}
	if r.Counter("bitcolor_engine_run_errors_total").Value("speculative") != 1 {
		t.Fatal("error not counted")
	}
	if r.Counter("bitcolor_rounds_total").Value("speculative") != 0 {
		t.Fatal("partial stats folded for an errored run")
	}
}

func TestSnapshot(t *testing.T) {
	o := New()
	o.RecordRun("greedy", 9, time.Millisecond, metrics.RunStats{}, nil)
	snap := o.Metrics().Snapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
}

func TestLoggerRunID(t *testing.T) {
	var buf bytes.Buffer
	h := slog.NewJSONHandler(&buf, nil)
	o := New(WithRunID("corr-42"), WithLogHandler(h))
	o.Logger().Info("hello", "k", 1)
	o.RecordStage("color", time.Millisecond, false)

	dec := json.NewDecoder(&buf)
	var n int
	for dec.More() {
		var rec map[string]any
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		if rec["run_id"] != "corr-42" {
			t.Fatalf("record missing run_id: %v", rec)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("got %d log records, want 2", n)
	}
	// Without a handler the logger must swallow records silently.
	New().Logger().Info("dropped")
}
