package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"bitcolor/internal/metrics"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServeScrape(t *testing.T) {
	o := New(WithRunID("http-run"))
	o.RecordRun("parallelbitwise", 8, 50*time.Millisecond, metrics.RunStats{Workers: 2, Rounds: 1}, nil)
	srv, err := Serve("127.0.0.1:0", o, false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(body, `bitcolor_engine_runs_total{engine="parallelbitwise"} 1`) {
		t.Fatalf("scrape missing run counter:\n%s", body)
	}
	if strings.Count(body, "# TYPE ") < 10 {
		t.Fatalf("scrape below 10 families:\n%s", body)
	}

	code, body, _ = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("expvar output not JSON: %v", err)
	}
	var published struct {
		RunID   string         `json:"run_id"`
		Metrics map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal(vars["bitcolor"], &published); err != nil {
		t.Fatalf("no bitcolor expvar: %v", err)
	}
	if published.RunID != "http-run" || len(published.Metrics) == 0 {
		t.Fatalf("expvar snapshot = %+v", published)
	}

	// pprof disabled: the endpoints must not exist.
	if code, _, _ = get(t, base+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without -pprof: status %d, want 404", code)
	}

	// Index page lists the endpoints.
	code, body, _ = get(t, base+"/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}
}

func TestServePprofEnabled(t *testing.T) {
	o := New()
	srv, err := Serve("127.0.0.1:0", o, true)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body, _ := get(t, "http://"+srv.Addr+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: %d %q", code, body)
	}
}

// TestServeObserverSwap pins the expvar single-publication contract: a
// second observer takes over the process-global "bitcolor" name.
func TestServeObserverSwap(t *testing.T) {
	o1 := New(WithRunID("first"))
	srv1, err := Serve("127.0.0.1:0", o1, false)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Close()
	o2 := New(WithRunID("second"))
	srv2, err := Serve("127.0.0.1:0", o2, false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	_, body, _ := get(t, "http://"+srv2.Addr+"/debug/vars")
	if !strings.Contains(body, `"second"`) {
		t.Fatalf("expvar still bound to the first observer:\n%s", body)
	}
}
