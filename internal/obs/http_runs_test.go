package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"bitcolor/internal/metrics"
)

func getWithAccept(t *testing.T, url, accept string) (int, string, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestDebugRunsEndpoint(t *testing.T) {
	o := New(WithRunID("httpruns"))
	srv, err := Serve("127.0.0.1:0", o, false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	// A live run with published lane progress, registered in the default
	// registry — exactly what the engine decorator does.
	rec := Runs().Begin(context.Background(), o, "parallelbitwise", 5000, 20000)
	id := rec.ID()
	ss := NewShardSet(2)
	rec.AttachShards(ss)
	ss.Shard(0).Add(CtrVertices, 123)
	ss.Shard(0).PublishAll()
	rec.SetRound(1)
	sp := o.StartSpan("engine")
	time.Sleep(time.Millisecond)
	sp.End()

	code, body, hdr := getWithAccept(t, base+"/debug/runs", "")
	if code != http.StatusOK {
		t.Fatalf("/debug/runs status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var payload struct {
		Build  map[string]string `json:"build"`
		Live   []LiveRun         `json:"live"`
		Recent []RunSummary      `json:"recent"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/debug/runs not JSON: %v\n%s", err, body)
	}
	if payload.Build["revision"] == "" || payload.Build["go_version"] == "" {
		t.Fatalf("build stamp missing: %+v", payload.Build)
	}
	var found *LiveRun
	for i := range payload.Live {
		if payload.Live[i].ID == id {
			found = &payload.Live[i]
		}
	}
	if found == nil {
		t.Fatalf("live run %s not in payload:\n%s", id, body)
	}
	if found.Progress.Vertices != 123 || found.Progress.Round != 1 {
		t.Fatalf("live progress = %+v", found.Progress)
	}

	// HTML rendering for browsers.
	code, body, hdr = getWithAccept(t, base+"/debug/runs", "text/html,application/xhtml+xml")
	if code != http.StatusOK || !strings.HasPrefix(hdr.Get("Content-Type"), "text/html") {
		t.Fatalf("HTML variant: %d %q", code, hdr.Get("Content-Type"))
	}
	if !strings.Contains(body, "<table") || !strings.Contains(body, id) {
		t.Fatalf("HTML table missing the live run:\n%s", body)
	}

	// On-demand trace of the LIVE run.
	code, body, hdr = getWithAccept(t, base+"/debug/runs/"+id+"/trace", "")
	if code != http.StatusOK {
		t.Fatalf("live trace status %d", code)
	}
	if !strings.Contains(hdr.Get("Content-Disposition"), "trace-"+id) {
		t.Fatalf("trace disposition %q", hdr.Get("Content-Disposition"))
	}
	var tf struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		OtherData   map[string]any    `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(body), &tf); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if tf.OtherData["run_id"] != "httpruns" || len(tf.TraceEvents) == 0 {
		t.Fatalf("trace payload = otherData %+v, %d events", tf.OtherData, len(tf.TraceEvents))
	}

	// After Finish the run moves to "recent" and the trace stays pullable.
	rec.Finish(9, metrics.RunStats{Workers: 2, Rounds: 1}, nil)
	_, body, _ = getWithAccept(t, base+"/debug/runs", "")
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatal(err)
	}
	var summary *RunSummary
	for i := range payload.Recent {
		if payload.Recent[i].ID == id {
			summary = &payload.Recent[i]
		}
	}
	if summary == nil || summary.Status != "ok" || summary.Colors != 9 {
		t.Fatalf("completed run not in recent: %+v\n%s", summary, body)
	}
	if code, _, _ = getWithAccept(t, base+"/debug/runs/"+id+"/trace", ""); code != http.StatusOK {
		t.Fatalf("completed-run trace status %d", code)
	}

	// Unknown and malformed IDs 404.
	for _, p := range []string{"/debug/runs/nope/trace", "/debug/runs/" + id, "/debug/runs/a/b/trace"} {
		if code, _, _ = getWithAccept(t, base+p, ""); code != http.StatusNotFound {
			t.Fatalf("%s status %d, want 404", p, code)
		}
	}

	// The index page advertises the runs endpoint.
	if _, body, _ = getWithAccept(t, base+"/", ""); !strings.Contains(body, "/debug/runs") {
		t.Fatalf("index missing /debug/runs: %q", body)
	}
}
