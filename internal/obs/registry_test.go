package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"log/slog"

	"bitcolor/internal/metrics"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing slog output
// written by the watchdog goroutine while the test reads it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunRegistryLifecycle(t *testing.T) {
	rr := NewRunRegistry(8)
	o := New(WithRunID("life"))
	rec := rr.Begin(context.Background(), o, "parallelbitwise", 1000, 5000)
	if rec == nil || rec.ID() != "life.1" {
		t.Fatalf("record id = %q, want life.1", rec.ID())
	}

	live := rr.LiveRuns()
	if len(live) != 1 || live[0].Engine != "parallelbitwise" || live[0].Vertices != 1000 {
		t.Fatalf("live = %+v", live)
	}
	if live[0].Progress.State != "running" {
		t.Fatalf("initial state = %q", live[0].Progress.State)
	}

	// Pool negotiation states: queued is visible, then admitted.
	rec.Queued(4)
	if p, ok := rr.ProgressOf("life.1"); !ok || p.State != "queued" {
		t.Fatalf("queued progress = %+v ok=%v", p, ok)
	}
	rec.Admitted(4, 2, 3*time.Millisecond, func() PoolStatus {
		return PoolStatus{Name: "p", Cap: 2, InUse: 2, QueueDepth: 1}
	})
	live = rr.LiveRuns()
	if live[0].Demand != 4 || live[0].Granted != 2 || live[0].Progress.State != "running" {
		t.Fatalf("admitted live = %+v", live[0])
	}
	if live[0].Pool == nil || live[0].Pool.QueueDepth != 1 {
		t.Fatalf("pool status = %+v", live[0].Pool)
	}

	rec.Finish(17, metrics.RunStats{Workers: 2, Rounds: 3, ConflictsFound: 5, ConflictsRepaired: 5}, nil)
	if got := rr.LiveRuns(); len(got) != 0 {
		t.Fatalf("still live after Finish: %+v", got)
	}
	recent := rr.Recent()
	if len(recent) != 1 {
		t.Fatalf("recent = %+v", recent)
	}
	s := recent[0]
	if s.ID != "life.1" || s.Status != "ok" || s.Colors != 17 || s.Rounds != 3 ||
		s.Workers != 2 || s.Demand != 4 || s.Granted != 2 || s.QueueWaitMS < 2.9 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Observer() != o {
		t.Fatal("summary lost its observer (trace would 404)")
	}

	// Finish is idempotent: a double call must not duplicate the summary.
	rec.Finish(17, metrics.RunStats{}, nil)
	if got := rr.Recent(); len(got) != 1 {
		t.Fatalf("double Finish duplicated the summary: %d entries", len(got))
	}
}

func TestRunRegistryNilSafety(t *testing.T) {
	var rr *RunRegistry
	var rec *RunRecord
	if rr.Begin(context.Background(), New(), "x", 1, 1) != nil {
		t.Fatal("nil registry Begin != nil")
	}
	if NewRunRegistry(4).Begin(context.Background(), nil, "x", 1, 1) != nil {
		t.Fatal("nil observer Begin != nil")
	}
	// All record methods must be nil-receiver safe (the unobserved path).
	rec.Queued(1)
	rec.Admitted(1, 1, 0, nil)
	rec.AttachShards(NewShardSet(1))
	rec.SetRound(2)
	rec.Finish(0, metrics.RunStats{}, nil)
	if got := rec.Progress(); got.State != "" || got.Vertices != 0 || got.Lanes != nil {
		t.Fatalf("nil record progress = %+v", got)
	}
	if rr.LiveRuns() != nil || rr.Recent() != nil || rr.Observer("x") != nil {
		t.Fatal("nil registry views not empty")
	}
	stop := rr.StartWatchdog(WatchdogConfig{})
	stop()
}

func TestRunRegistryRingBound(t *testing.T) {
	rr := NewRunRegistry(3)
	o := New(WithRunID("ring"))
	for i := 0; i < 5; i++ {
		rec := rr.Begin(context.Background(), o, fmt.Sprintf("e%d", i), 1, 1)
		rec.Finish(1, metrics.RunStats{}, nil)
	}
	recent := rr.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring length = %d, want 3", len(recent))
	}
	// Most recent first; the two oldest runs were evicted.
	for i, want := range []string{"e4", "e3", "e2"} {
		if recent[i].Engine != want {
			t.Fatalf("recent[%d] = %s, want %s", i, recent[i].Engine, want)
		}
	}
	if rr.Observer("ring.1") != nil {
		t.Fatal("evicted run still resolvable")
	}
	if rr.Observer("ring.5") == nil {
		t.Fatal("retained run not resolvable")
	}
}

func TestRunRecordLiveProgress(t *testing.T) {
	rr := NewRunRegistry(4)
	rec := rr.Begin(context.Background(), New(WithRunID("prog")), "dct", 100, 200)
	ss := NewShardSet(2)
	rec.AttachShards(ss)
	rec.SetRound(2)

	// Simulate two worker lanes at a publish checkpoint.
	for w, n := range []int64{30, 12} {
		sh := ss.Shard(w)
		sh.Add(CtrVertices, n)
		sh.Inc(CtrBlocks)
		sh.Add(CtrConflictsFound, 2)
		sh.PublishAll()
	}
	p := rec.Progress()
	if p.Vertices != 42 || p.Blocks != 2 || p.Round != 2 || p.ConflictsFound != 4 {
		t.Fatalf("progress = %+v", p)
	}
	if len(p.Lanes) != 2 || p.Lanes[0].Vertices != 30 || p.Lanes[1].Vertices != 12 {
		t.Fatalf("lanes = %+v", p.Lanes)
	}

	// Unpublished increments stay invisible until the next checkpoint:
	// the mirror trails the plain counter, never the other way round.
	ss.Shard(0).Add(CtrVertices, 1000)
	if got := rec.Progress().Vertices; got != 42 {
		t.Fatalf("unpublished increment leaked into progress: %d", got)
	}

	// Finish detaches the shards: later scrapes must not read the (now
	// recyclable) set even after it is reset and reused.
	rec.Finish(5, metrics.RunStats{Workers: 2}, nil)
	ss.Reset()
	ss.EnableLive()
	ss.Shard(0).Add(CtrVertices, 7)
	ss.Shard(0).PublishAll()
	if got := rec.Progress(); got.Vertices != 0 || len(got.Lanes) != 0 {
		t.Fatalf("finished record read the recycled ShardSet: %+v", got)
	}
}

func TestRunStatusClassification(t *testing.T) {
	rr := NewRunRegistry(8)
	o := New(WithRunID("status"))
	cases := []struct {
		err  error
		want string
	}{
		{nil, "ok"},
		{context.Canceled, "cancelled"},
		{context.DeadlineExceeded, "cancelled"},
		{fmt.Errorf("wrapped: %w", context.Canceled), "cancelled"},
		{errors.New("palette exhausted"), "error"},
	}
	for _, c := range cases {
		rec := rr.Begin(context.Background(), o, "e", 1, 1)
		rec.Finish(0, metrics.RunStats{}, c.err)
	}
	recent := rr.Recent() // most recent first: reverse of cases
	for i, c := range cases {
		got := recent[len(cases)-1-i]
		if got.Status != c.want {
			t.Fatalf("case %d (%v): status %q, want %q", i, c.err, got.Status, c.want)
		}
		if c.err != nil && got.Error == "" {
			t.Fatalf("case %d: error text lost", i)
		}
	}
}

func TestWatchdogStall(t *testing.T) {
	rr := NewRunRegistry(4)
	var logbuf syncBuffer
	o := New(WithRunID("stalled-run"), WithLogHandler(slog.NewJSONHandler(&logbuf, nil)))
	rec := rr.Begin(context.Background(), o, "dct", 100, 200)
	defer rec.Finish(0, metrics.RunStats{}, nil)

	stop := rr.StartWatchdog(WatchdogConfig{Interval: 5 * time.Millisecond, Stall: 20 * time.Millisecond})
	defer stop()

	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(logbuf.String(), "progress stalled") {
		if time.Now().After(deadline) {
			t.Fatalf("no stall warning; log:\n%s", logbuf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	out := logbuf.String()
	if !strings.Contains(out, `"run_id":"stalled-run"`) {
		t.Fatalf("warning not run_id-stamped:\n%s", out)
	}
	// Warn-once: more scan intervals must not repeat the warning.
	time.Sleep(60 * time.Millisecond)
	if n := strings.Count(logbuf.String(), "progress stalled"); n != 1 {
		t.Fatalf("stall warned %d times, want 1", n)
	}
}

func TestWatchdogDeadlineFraction(t *testing.T) {
	rr := NewRunRegistry(4)
	var logbuf syncBuffer
	o := New(WithRunID("deadline-run"), WithLogHandler(slog.NewJSONHandler(&logbuf, nil)))
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	rec := rr.Begin(ctx, o, "speculative", 100, 200)
	defer rec.Finish(0, metrics.RunStats{}, nil)

	stop := rr.StartWatchdog(WatchdogConfig{Interval: 5 * time.Millisecond, DeadlineFraction: 0.25})
	defer stop()

	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(logbuf.String(), "deadline budget") {
		if time.Now().After(deadline) {
			t.Fatalf("no deadline warning; log:\n%s", logbuf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(logbuf.String(), `"run_id":"deadline-run"`) {
		t.Fatalf("warning not run_id-stamped:\n%s", logbuf.String())
	}
}

func TestObserverAnnotateInTrace(t *testing.T) {
	o := New(WithRunID("annotated"))
	o.Annotate("cancelled", true)
	o.Annotate("note", "partial")
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	if tf.OtherData["cancelled"] != true || tf.OtherData["note"] != "partial" ||
		tf.OtherData["run_id"] != "annotated" {
		t.Fatalf("otherData = %+v", tf.OtherData)
	}
	// Nil-safety mirrors the rest of the Observer surface.
	var nilO *Observer
	nilO.Annotate("k", "v")
	if nilO.Annotations() != nil {
		t.Fatal("nil observer annotations != nil")
	}
}

func TestRegisterInfoConstLabels(t *testing.T) {
	r := NewRegistry()
	r.RegisterInfo("test_build_info", "Build identity.", map[string]string{
		"go_version": "go1.22",
		"revision":   "abc123",
	})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `test_build_info{go_version="go1.22",revision="abc123"} 1`) {
		t.Fatalf("info family rendering:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE test_build_info gauge") {
		t.Fatalf("info family missing TYPE line:\n%s", out)
	}
}

func TestPlaneBuildInfo(t *testing.T) {
	bi := BuildInfo()
	for _, k := range []string{"go_version", "revision", "module_version"} {
		if bi[k] == "" {
			t.Fatalf("BuildInfo missing %s: %+v", k, bi)
		}
	}
	var buf bytes.Buffer
	if err := Plane().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "bitcolor_build_info{") || !strings.Contains(out, "go_version=") {
		t.Fatalf("plane scrape missing build info:\n%s", out)
	}
	for _, fam := range []string{
		"bitcolor_runs_inflight", "bitcolor_runs_completed_total",
		"bitcolor_pool_cap", "bitcolor_pool_admission_wait_seconds",
	} {
		if !strings.Contains(out, "# TYPE "+fam) {
			t.Fatalf("plane scrape missing %s:\n%s", fam, out)
		}
	}
}

func TestDefaultRegistryPlaneCounters(t *testing.T) {
	// Runs through the DEFAULT registry move the plane's inflight gauge
	// and completed counter (isolated registries must not).
	o := New(WithRunID("plane-counters"))
	before := Plane().Counter(famRunsCompleted).Value("ok")
	rec := Runs().Begin(context.Background(), o, "greedy", 10, 20)
	rec.Finish(3, metrics.RunStats{}, nil)
	after := Plane().Counter(famRunsCompleted).Value("ok")
	if after != before+1 {
		t.Fatalf("completed counter %d -> %d, want +1", before, after)
	}
	sum := Runs().Recent()
	if len(sum) == 0 || sum[0].Engine != "greedy" {
		t.Fatalf("default flight recorder missing the run: %+v", sum)
	}
}
