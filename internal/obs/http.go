package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// HTTP exposition: one mux serving the Prometheus text format on
// /metrics (run-scoped families followed by the process-wide plane
// families), the expvar JSON dump on /debug/vars, the run-registry
// introspection surface on /debug/runs (+ per-run trace pulls), and
// (opt-in) the net/http/pprof profiler endpoints. The CLIs mount it
// via -listen.

// currentObserver backs the process-wide expvar publication: expvar
// names are global and can only be published once, so the expvar Func
// dereferences this pointer and re-runs just swap it.
var currentObserver atomic.Pointer[Observer]

var publishOnce atomic.Bool

// publishExpvar exposes the observer's registry under the expvar name
// "bitcolor" (idempotent; later observers take over the name).
func publishExpvar(o *Observer) {
	currentObserver.Store(o)
	if publishOnce.CompareAndSwap(false, true) {
		expvar.Publish("bitcolor", expvar.Func(func() any {
			out := map[string]any{
				"build": BuildInfo(),
				"plane": Plane().Snapshot(),
			}
			if cur := currentObserver.Load(); cur != nil {
				out["run_id"] = cur.RunID()
				out["metrics"] = cur.Metrics().Snapshot()
			}
			return out
		}))
	}
}

// Handler returns the observability mux for o: /metrics (Prometheus
// text), /debug/vars (expvar), and with pprofEnabled the full
// /debug/pprof tree.
func Handler(o *Observer, pprofEnabled bool) http.Handler {
	publishExpvar(o)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if cur := currentObserver.Load(); cur != nil {
			if err := cur.Metrics().WritePrometheus(w); err != nil {
				return
			}
		}
		_ = Plane().WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/runs", handleRuns(Runs()))
	mux.HandleFunc("/debug/runs/", handleRunTrace(Runs()))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "bitcolor observability: /metrics /debug/vars /debug/runs")
		if pprofEnabled {
			fmt.Fprintf(w, " /debug/pprof/")
		}
		fmt.Fprintln(w)
	})
	if pprofEnabled {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Server is a started observability endpoint.
type Server struct {
	Addr string // the bound address (resolved, so ":0" works)
	srv  *http.Server
	ln   net.Listener
}

// Serve binds addr and serves Handler(o, pprofEnabled) in a background
// goroutine. Close to stop.
func Serve(addr string, o *Observer, pprofEnabled bool) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: Handler(o, pprofEnabled), ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close shuts the endpoint down.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
