package obs

import (
	"context"
	"log/slog"
)

// runIDHandler decorates an inner slog.Handler so every record carries
// the observer's run ID — the correlation key that ties log lines to the
// trace and the scraped metrics of the same run.
type runIDHandler struct {
	inner slog.Handler
	runID string
}

func (h *runIDHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *runIDHandler) Handle(ctx context.Context, r slog.Record) error {
	r = r.Clone()
	r.AddAttrs(slog.String("run_id", h.runID))
	return h.inner.Handle(ctx, r)
}

func (h *runIDHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &runIDHandler{inner: h.inner.WithAttrs(attrs), runID: h.runID}
}

func (h *runIDHandler) WithGroup(name string) slog.Handler {
	return &runIDHandler{inner: h.inner.WithGroup(name), runID: h.runID}
}

// discardHandler drops everything: the Logger() result for observers
// without a log sink (and for nil observers), so call sites log
// unconditionally.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
