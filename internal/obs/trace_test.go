package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bitcolor/internal/metrics"
)

// chromeTrace mirrors the trace_event JSON object format for decoding.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

func TestWriteTrace(t *testing.T) {
	o := New(WithRunID("trace-run"))
	root := o.StartSpan("pipeline")
	eng := root.Child("engine/parallelbitwise").Attr("vertices", int64(100))
	round := eng.Child("round").Attr("round", int64(1))
	wsp := eng.Child("claim").Worker(0)
	time.Sleep(time.Millisecond)
	wsp.End()
	round.End()
	eng.End()
	root.End()

	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}
	if tr.OtherData["run_id"] != "trace-run" {
		t.Fatalf("otherData = %v", tr.OtherData)
	}
	var complete, meta int
	tids := map[int]bool{}
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.PID != 1 {
				t.Fatalf("pid = %d", ev.PID)
			}
			if ev.TS < 0 || ev.Dur < 0 {
				t.Fatalf("negative timing on %q: ts=%f dur=%f", ev.Name, ev.TS, ev.Dur)
			}
			tids[ev.TID] = true
			if ev.Name == "round" && ev.Args["round"] != float64(1) {
				t.Fatalf("round args = %v", ev.Args)
			}
		case "M":
			meta++
			if ev.Name != "thread_name" {
				t.Fatalf("metadata event %q", ev.Name)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != 4 {
		t.Fatalf("got %d complete events, want 4", complete)
	}
	// Coordinator lane 0 and worker lane 1 → one thread_name each.
	if !tids[0] || !tids[1] || meta != 2 {
		t.Fatalf("lanes %v, %d metadata events", tids, meta)
	}
}

func TestWriteTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	o := New()
	sp := o.StartSpan("engine/greedy")
	o.RecordRun("greedy", 3, time.Millisecond, metrics.RunStats{}, nil)
	sp.End()
	if err := o.WriteTraceFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace file not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("empty trace file")
	}
	// Atomic write: no temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "trace.json" {
		t.Fatalf("unexpected dir contents: %v", entries)
	}
	// Overwrite must also succeed (rename onto an existing file).
	if err := o.WriteTraceFile(path); err != nil {
		t.Fatal(err)
	}
}
