package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric families — counters, gauges and
// histograms, each with at most one label dimension — and renders them
// in the Prometheus text exposition format and as an expvar-compatible
// snapshot. Families are registered once (typically up front, so an
// early scrape already shows them at zero) and series are created on
// first touch of a label value. All operations are safe for concurrent
// use; updates after registration are lock-free on the family map's
// read path.
type Registry struct {
	mu    sync.RWMutex
	fams  map[string]*Family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*Family{}}
}

// Kind distinguishes the family types.
type Kind int

// The metric family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Family is one named metric family. Label is the single label
// dimension ("" for an unlabeled family with exactly one series).
type Family struct {
	Name  string
	Help  string
	Label string
	Kind  Kind

	constLabels string    // pre-rendered `k="v",...` pairs stamped on every series
	buckets     []float64 // histogram upper bounds, ascending

	mu     sync.Mutex
	series map[string]*series
	keys   []string
}

// series is one (family, label value) time series. Counters and
// histogram bucket counts are int64; gauges and histogram sums store
// float64 bits.
type series struct {
	count   atomic.Int64
	gauge   atomic.Uint64 // float64 bits
	sumBits atomic.Uint64 // histogram sum, float64 bits
	buckets []atomic.Int64
}

func (r *Registry) register(name, help, label string, kind Kind, buckets []float64) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		return f
	}
	f := &Family{Name: name, Help: help, Label: label, Kind: kind,
		buckets: buckets, series: map[string]*series{}}
	r.fams[name] = f
	r.order = append(r.order, name)
	return f
}

// RegisterCounter registers (idempotently) a counter family.
func (r *Registry) RegisterCounter(name, help, label string) *Family {
	return r.register(name, help, label, KindCounter, nil)
}

// RegisterGauge registers (idempotently) a gauge family.
func (r *Registry) RegisterGauge(name, help, label string) *Family {
	return r.register(name, help, label, KindGauge, nil)
}

// RegisterHistogram registers (idempotently) a histogram family with the
// given ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) RegisterHistogram(name, help, label string, buckets []float64) *Family {
	return r.register(name, help, label, KindHistogram, buckets)
}

// RegisterInfo registers (idempotently) a Prometheus info-style gauge:
// one series pinned at 1 whose constant labels carry the metadata
// (the `bitcolor_build_info{go_version=...,revision=...} 1` idiom).
// Multi-label, unlike regular families, because the labels are fixed at
// registration and never fan out into series.
func (r *Registry) RegisterInfo(name, help string, labels map[string]string) *Family {
	f := r.register(name, help, "", KindGauge, nil)
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf(`%s=%q`, k, escapeLabel(labels[k]))
	}
	f.constLabels = strings.Join(parts, ",")
	f.Set("", 1)
	return f
}

func (r *Registry) lookup(name string, kind Kind) *Family {
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil || f.Kind != kind {
		panic(fmt.Sprintf("obs: metric family %q not registered as %v", name, kind))
	}
	return f
}

// Counter returns a registered counter family.
func (r *Registry) Counter(name string) *Family { return r.lookup(name, KindCounter) }

// Gauge returns a registered gauge family.
func (r *Registry) Gauge(name string) *Family { return r.lookup(name, KindGauge) }

// Histogram returns a registered histogram family.
func (r *Registry) Histogram(name string) *Family { return r.lookup(name, KindHistogram) }

// at returns (creating if needed) the series for a label value.
func (f *Family) at(labelValue string) *series {
	f.mu.Lock()
	s, ok := f.series[labelValue]
	if !ok {
		s = &series{}
		if f.Kind == KindHistogram {
			s.buckets = make([]atomic.Int64, len(f.buckets)+1) // +Inf last
		}
		f.series[labelValue] = s
		f.keys = append(f.keys, labelValue)
		sort.Strings(f.keys)
	}
	f.mu.Unlock()
	return s
}

// Add increments a counter series.
func (f *Family) Add(labelValue string, delta int64) {
	if delta == 0 {
		// Still materialize the series so the family scrapes at 0.
		f.at(labelValue)
		return
	}
	f.at(labelValue).count.Add(delta)
}

// Value reads a counter series (0 if the label value never appeared).
func (f *Family) Value(labelValue string) int64 {
	f.mu.Lock()
	s := f.series[labelValue]
	f.mu.Unlock()
	if s == nil {
		return 0
	}
	return s.count.Load()
}

// GaugeValue reads a gauge series (0 if the label value never
// appeared).
func (f *Family) GaugeValue(labelValue string) float64 {
	f.mu.Lock()
	s := f.series[labelValue]
	f.mu.Unlock()
	if s == nil {
		return 0
	}
	return math.Float64frombits(s.gauge.Load())
}

// Set stores a gauge series value.
func (f *Family) Set(labelValue string, v float64) {
	f.at(labelValue).gauge.Store(math.Float64bits(v))
}

// Observe records one histogram sample.
func (f *Family) Observe(labelValue string, v float64) {
	s := f.at(labelValue)
	i := sort.SearchFloat64s(f.buckets, v)
	s.buckets[i].Add(1)
	s.count.Add(1)
	for {
		old := s.sumBits.Load()
		if s.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// escapeLabel escapes a label value for the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func (f *Family) labelled(value string, extra string) string {
	var parts []string
	if f.Label != "" {
		parts = append(parts, fmt.Sprintf(`%s=%q`, f.Label, escapeLabel(value)))
	}
	if f.constLabels != "" {
		parts = append(parts, f.constLabels)
	}
	if extra != "" {
		parts = append(parts, extra)
	}
	if len(parts) == 0 {
		return f.Name
	}
	return f.Name + "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families in registration order and series in
// sorted label order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	fams := make([]*Family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.RUnlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.Name, f.Help, f.Name, f.Kind); err != nil {
			return err
		}
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		f.mu.Unlock()
		if len(keys) == 0 && f.Label == "" {
			keys = []string{""} // unlabeled family scrapes at zero
			f.at("")
		}
		for _, k := range keys {
			s := f.at(k)
			var err error
			switch f.Kind {
			case KindCounter:
				_, err = fmt.Fprintf(w, "%s %d\n", f.labelled(k, ""), s.count.Load())
			case KindGauge:
				_, err = fmt.Fprintf(w, "%s %v\n", f.labelled(k, ""), math.Float64frombits(s.gauge.Load()))
			case KindHistogram:
				var cum int64
				for i, ub := range f.buckets {
					cum += s.buckets[i].Load()
					if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
						f.Name, bucketSuffix(f, k, fmt.Sprintf("%v", ub)), cum); err != nil {
						return err
					}
				}
				cum += s.buckets[len(f.buckets)].Load()
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, bucketSuffix(f, k, "+Inf"), cum); err != nil {
					return err
				}
				if _, err = fmt.Fprintf(w, "%s_sum%s %v\n", f.Name, plainSuffix(f, k),
					math.Float64frombits(s.sumBits.Load())); err != nil {
					return err
				}
				_, err = fmt.Fprintf(w, "%s_count%s %d\n", f.Name, plainSuffix(f, k), s.count.Load())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func bucketSuffix(f *Family, labelValue, le string) string {
	if f.Label != "" {
		return fmt.Sprintf(`{%s=%q,le=%q}`, f.Label, escapeLabel(labelValue), le)
	}
	return fmt.Sprintf(`{le=%q}`, le)
}

func plainSuffix(f *Family, labelValue string) string {
	if f.Label != "" {
		return fmt.Sprintf(`{%s=%q}`, f.Label, escapeLabel(labelValue))
	}
	return ""
}

// Snapshot renders the registry as a nested map — the expvar export
// shape: family name → series label value → numeric value (histograms
// export {count, sum}).
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	fams := make([]*Family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.RUnlock()
	out := make(map[string]any, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		f.mu.Unlock()
		vals := make(map[string]any, len(keys))
		for _, k := range keys {
			s := f.at(k)
			name := k
			if name == "" {
				name = "value"
			}
			switch f.Kind {
			case KindCounter:
				vals[name] = s.count.Load()
			case KindGauge:
				vals[name] = math.Float64frombits(s.gauge.Load())
			case KindHistogram:
				vals[name] = map[string]any{
					"count": s.count.Load(),
					"sum":   math.Float64frombits(s.sumBits.Load()),
				}
			}
		}
		out[f.Name] = vals
	}
	return out
}
