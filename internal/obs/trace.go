package obs

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Chrome trace_event export: every finished span becomes one complete
// ("ph":"X") event, so the run loads directly into chrome://tracing or
// https://ui.perfetto.dev and renders the stage → engine → round
// hierarchy as nested slices. Worker-lane spans (Span.Worker) land on
// their own horizontal track via the tid field.

// traceEvent is one trace_event record (the subset we emit).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object format of the trace_event spec.
type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteTrace renders every finished span as Chrome trace_event JSON.
// No-op (but still a valid empty trace) on a nil observer.
func (o *Observer) WriteTrace(w io.Writer) error {
	tf := traceFile{
		TraceEvents:     []traceEvent{},
		DisplayTimeUnit: "ms",
	}
	if o != nil {
		tf.OtherData = map[string]any{"run_id": o.runID}
		for k, v := range o.Annotations() {
			tf.OtherData[k] = v
		}
		spans := o.Spans()
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		tids := map[int]bool{}
		for _, s := range spans {
			ev := traceEvent{
				Name: s.Name,
				Cat:  "bitcolor",
				Ph:   "X",
				TS:   float64(s.Start.Nanoseconds()) / 1e3,
				Dur:  float64(s.Duration().Nanoseconds()) / 1e3,
				PID:  1,
				TID:  s.TID,
			}
			if len(s.Attrs) > 0 {
				ev.Args = make(map[string]any, len(s.Attrs))
				for _, a := range s.Attrs {
					ev.Args[a.Key] = a.Value
				}
			}
			tf.TraceEvents = append(tf.TraceEvents, ev)
			tids[s.TID] = true
		}
		// Thread-name metadata gives the tracks readable labels.
		for tid := range tids {
			name := "coordinator"
			if tid > 0 {
				name = "worker"
			}
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: tid,
				Args: map[string]any{"name": name},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// WriteTraceFile writes the Chrome trace to a file atomically
// (temp + rename), so a crash mid-export never leaves a torn trace.
func (o *Observer) WriteTraceFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "trace-*.json.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := o.WriteTrace(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
