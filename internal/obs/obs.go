// Package obs is the run-scoped observability layer: structured tracing
// spans with monotonic timings and parent linkage, metric families
// (counters, gauges, histograms) built from padded per-worker shards,
// and exporters for the Chrome trace_event format, the Prometheus text
// exposition format, expvar and log/slog.
//
// The design is overhead-gated: everything is nil-safe, so code under
// instrumentation carries a nil *Observer or nil *Span through its hot
// path and pays one predictable branch per call site — no allocation,
// no atomic, no lock. The engines keep their per-worker counters in
// cache-line-padded shards (see shards.go) whether or not an observer
// is attached, and fold them into metrics.RunStats at run end; the
// observer only ever reads the folded result, off the hot path.
package obs

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"bitcolor/internal/metrics"
)

// Observer is one run scope's telemetry sink: it collects spans, owns a
// metric registry, and correlates structured logs under a run ID. All
// methods are safe for concurrent use and safe on a nil receiver (no-ops
// that return nil), so callers thread an optional *Observer without
// branching.
type Observer struct {
	runID  string
	start  time.Time // monotonic anchor; span offsets are Since(start)
	logger *slog.Logger

	mu     sync.Mutex
	spans  []SpanRecord
	notes  map[string]any
	nextID atomic.Int64

	reg *Registry
}

// Option configures New.
type Option func(*Observer)

// WithRunID pins the run identifier (default: derived from the start
// timestamp).
func WithRunID(id string) Option { return func(o *Observer) { o.runID = id } }

// WithLogHandler attaches a structured log sink; every record emitted
// through Logger carries the run ID. Without it, Logger returns a
// no-op logger.
func WithLogHandler(h slog.Handler) Option {
	return func(o *Observer) {
		if h != nil {
			o.logger = slog.New(&runIDHandler{inner: h, runID: o.runID})
		}
	}
}

// New starts a run-scoped observer. The monotonic clock anchor is taken
// here; all span timings are offsets from it.
func New(opts ...Option) *Observer {
	o := &Observer{start: time.Now(), reg: NewRegistry()}
	o.runID = fmt.Sprintf("run-%d", o.start.UnixNano())
	for _, opt := range opts {
		opt(o)
	}
	registerStandardFamilies(o.reg)
	return o
}

// RunID returns the run identifier ("" on nil).
func (o *Observer) RunID() string {
	if o == nil {
		return ""
	}
	return o.runID
}

// Metrics returns the observer's metric registry (nil on nil receiver).
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Logger returns the run-correlated structured logger; on a nil observer
// or one without a log handler it returns a logger that discards
// everything, so call sites never nil-check.
func (o *Observer) Logger() *slog.Logger {
	if o == nil || o.logger == nil {
		return slog.New(discardHandler{})
	}
	return o.logger
}

// Attr is one span attribute. Values are attached lazily — only when the
// span ends, and only when an observer is live — so instrumented code
// builds attributes on the cold path only.
type Attr struct {
	Key   string
	Value any
}

// SpanRecord is one finished span.
type SpanRecord struct {
	// ID and Parent link the span tree; Parent is 0 for roots.
	ID, Parent int64
	// Name identifies the operation ("pipeline/color", "engine/...",
	// "round", ...).
	Name string
	// TID is the trace lane (0 = the coordinating goroutine; workers use
	// 1+w). Chrome's trace viewer renders one horizontal track per TID.
	TID int
	// Start and End are monotonic offsets from the observer's anchor.
	Start, End time.Duration
	// Attrs are the span's key/value annotations.
	Attrs []Attr
}

// Duration is the span's wall time.
func (r SpanRecord) Duration() time.Duration { return r.End - r.Start }

// Span is an in-flight operation. A nil *Span (from a nil observer) is a
// valid no-op: every method returns immediately, so instrumented code
// never branches on the observer being present.
type Span struct {
	o      *Observer
	id     int64
	parent int64
	name   string
	tid    int
	start  time.Duration
	attrs  []Attr
}

// StartSpan opens a root span.
func (o *Observer) StartSpan(name string) *Span { return o.newSpan(name, 0, 0) }

func (o *Observer) newSpan(name string, parent int64, tid int) *Span {
	if o == nil {
		return nil
	}
	return &Span{
		o:      o,
		id:     o.nextID.Add(1),
		parent: parent,
		name:   name,
		tid:    tid,
		start:  time.Since(o.start),
	}
}

// Child opens a sub-span; on a nil span it returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.o.newSpan(name, s.id, s.tid)
}

// Worker assigns the span to a worker lane (trace track 1+w).
func (s *Span) Worker(w int) *Span {
	if s != nil {
		s.tid = 1 + w
	}
	return s
}

// Attr annotates the span; chainable, no-op on nil.
func (s *Span) Attr(key string, value any) *Span {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	return s
}

// End closes the span and records it. No-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		TID:    s.tid,
		Start:  s.start,
		End:    time.Since(s.o.start),
		Attrs:  s.attrs,
	}
	s.o.mu.Lock()
	s.o.spans = append(s.o.spans, rec)
	s.o.mu.Unlock()
	s.o.reg.Counter(famSpans).Add("", 1)
}

// Annotate attaches a run-level key/value annotation, exported in the
// Chrome trace's otherData (e.g. "cancelled": true on a partial trace
// flushed by a SIGINT handler). Nil-safe and concurrent-safe; the last
// write per key wins.
func (o *Observer) Annotate(key string, value any) {
	if o == nil {
		return
	}
	o.mu.Lock()
	if o.notes == nil {
		o.notes = map[string]any{}
	}
	o.notes[key] = value
	o.mu.Unlock()
}

// Annotations returns a copy of the run-level annotations (nil when
// none).
func (o *Observer) Annotations() map[string]any {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.notes) == 0 {
		return nil
	}
	out := make(map[string]any, len(o.notes))
	for k, v := range o.notes {
		out[k] = v
	}
	return out
}

// Spans returns a copy of the finished spans in end order.
func (o *Observer) Spans() []SpanRecord {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]SpanRecord, len(o.spans))
	copy(out, o.spans)
	return out
}

// SpanCount returns how many finished spans carry the given name — the
// test hook for "one round span per RunStats round".
func (o *Observer) SpanCount(name string) int {
	if o == nil {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, s := range o.spans {
		if s.Name == name {
			n++
		}
	}
	return n
}

// ctxKey carries the observer through a context.Context.
type ctxKey struct{}

// NewContext returns ctx carrying o; the engine registry's decorator and
// the pipeline pick it up from there.
func NewContext(ctx context.Context, o *Observer) context.Context {
	return context.WithValue(ctx, ctxKey{}, o)
}

// FromContext extracts the observer (nil when absent).
func FromContext(ctx context.Context) *Observer {
	o, _ := ctx.Value(ctxKey{}).(*Observer)
	return o
}

// Standard metric family names. They are registered up front so a scrape
// before the first run still shows every family.
const (
	famSpans             = "bitcolor_spans_total"
	famRuns              = "bitcolor_engine_runs_total"
	famRunErrors         = "bitcolor_engine_run_errors_total"
	famRounds            = "bitcolor_rounds_total"
	famConflictsFound    = "bitcolor_conflicts_found_total"
	famConflictsRepaired = "bitcolor_conflicts_repaired_total"
	famWorkerVertices    = "bitcolor_worker_vertices_total"
	famWorkerBlocks      = "bitcolor_worker_blocks_total"
	famWorkerSteals      = "bitcolor_worker_steals_total"
	famGatherHot         = "bitcolor_gather_hot_reads_total"
	famGatherMerged      = "bitcolor_gather_merged_reads_total"
	famGatherCold        = "bitcolor_gather_cold_block_loads_total"
	famGatherPruned      = "bitcolor_gather_pruned_tail_total"
	famEngineSeconds     = "bitcolor_engine_duration_seconds"
	famStageSeconds      = "bitcolor_stage_duration_seconds"
	famStageCancelled    = "bitcolor_stage_cancelled_total"
	famLastColors        = "bitcolor_last_run_colors"
	famLastWorkers       = "bitcolor_last_run_workers"
	famLastHotThreshold  = "bitcolor_last_run_hot_threshold"
	famDCTDeferred       = "bitcolor_dct_deferred_total"
	famDCTRetries        = "bitcolor_dct_defer_retries_total"
	famDCTSpinWaits      = "bitcolor_dct_spin_waits_total"
	famDCTRingOccupancy  = "bitcolor_dct_ring_occupancy"
	famDCTForwardWait    = "bitcolor_dct_forward_wait_seconds"
	famShardVertices     = "bitcolor_shard_vertices_total"
	famShardSeconds      = "bitcolor_shard_duration_seconds"
	famShardFrontier     = "bitcolor_shard_frontier_vertices"
	famShardCrossDefers  = "bitcolor_shard_cross_defers_total"
	famGraphLoads        = "bitcolor_graph_loads_total"
	famGraphLoadErrors   = "bitcolor_graph_load_errors_total"
	famGraphLoadSeconds  = "bitcolor_graph_load_duration_seconds"
	famGraphLoadBytes    = "bitcolor_graph_load_bytes_total"
	famShardMapMaps      = "bitcolor_shard_map_maps_total"
	famShardMapUnmaps    = "bitcolor_shard_map_unmaps_total"
	famShardMapResident  = "bitcolor_shard_map_resident_bytes"
	famPartitionCacheHit = "bitcolor_partition_cache_hits_total"
)

// engineDurationBuckets covers 100µs .. ~100s exponentially.
var engineDurationBuckets = []float64{
	1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 10, 60, 100,
}

// forwardWaitBuckets covers the DCT forwarding latency — the time a
// parked vertex waits for its lower-indexed neighbor's color to land.
// Waits are sub-microsecond when the owner is one drain behind and can
// reach milliseconds when a worker stalls on a long chain.
var forwardWaitBuckets = []float64{
	1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1,
}

// graphLoadBuckets covers 10µs (a small mapped file) .. ~30s (a
// GD-scale edge-list parse on cold storage).
var graphLoadBuckets = []float64{
	1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 10, 30,
}

func registerStandardFamilies(r *Registry) {
	r.RegisterCounter(famSpans, "Finished tracing spans.", "")
	r.RegisterCounter(famRuns, "Coloring engine runs started.", "engine")
	r.RegisterCounter(famRunErrors, "Coloring engine runs that returned an error (incl. cancellation).", "engine")
	r.RegisterCounter(famRounds, "Speculation/repair rounds executed.", "engine")
	r.RegisterCounter(famConflictsFound, "Equal-colored adjacent pairs observed during detection.", "engine")
	r.RegisterCounter(famConflictsRepaired, "Vertices re-colored to resolve conflicts.", "engine")
	r.RegisterCounter(famWorkerVertices, "Speculation vertices claimed from the shared cursor, per worker.", "worker")
	r.RegisterCounter(famWorkerBlocks, "Dispatch blocks claimed from the shared cursor, per worker.", "worker")
	r.RegisterCounter(famWorkerSteals, "Blocks claimed beyond the static fair share, per worker.", "worker")
	r.RegisterCounter(famGatherHot, "Neighbor color reads served by the hot tier (HDC analog).", "")
	r.RegisterCounter(famGatherMerged, "Neighbor color reads merged into the last-touched 64-color block (MGR analog).", "")
	r.RegisterCounter(famGatherCold, "Cold 64-color block loads.", "")
	r.RegisterCounter(famGatherPruned, "Sorted adjacency tail entries skipped by uncolored-vertex pruning (PUV analog).", "")
	r.RegisterHistogram(famEngineSeconds, "Engine wall time per run.", "engine", engineDurationBuckets)
	r.RegisterGauge(famStageSeconds, "Last pipeline run's per-stage wall time.", "stage")
	r.RegisterCounter(famStageCancelled, "Pipeline stages cut short by cancellation.", "stage")
	r.RegisterGauge(famLastColors, "Colors used by the last run.", "engine")
	r.RegisterGauge(famLastWorkers, "Worker goroutines of the last run.", "")
	r.RegisterGauge(famLastHotThreshold, "Gather hot-tier threshold v_t of the last run.", "")
	r.RegisterCounter(famDCTDeferred, "Vertices parked on a DCT forwarding ring awaiting a pending neighbor color.", "")
	r.RegisterCounter(famDCTRetries, "Coloring attempts replayed from a DCT forwarding ring.", "")
	r.RegisterCounter(famDCTSpinWaits, "Fallback spin-wait yields taken by the DCT engine (ring full or drain stalled).", "")
	r.RegisterGauge(famDCTRingOccupancy, "Peak forwarding-ring occupancy of the last DCT run (max over workers).", "")
	r.RegisterHistogram(famDCTForwardWait, "Time a parked vertex waited for the awaited color to be forwarded.", "", forwardWaitBuckets)
	r.RegisterCounter(famShardVertices, "Interior vertices colored by the sharded engine, per shard.", "shard")
	r.RegisterGauge(famShardSeconds, "Last sharded run's interior-phase wall time, per shard (slowest worker).", "shard")
	r.RegisterGauge(famShardFrontier, "Boundary-frontier size of the last sharded run.", "")
	r.RegisterCounter(famShardCrossDefers, "Vertices deferred to the boundary frontier because a lower-indexed neighbor lives in another shard.", "")
	r.RegisterCounter(famGraphLoads, "Graph loads completed, by on-disk format.", "format")
	r.RegisterCounter(famGraphLoadErrors, "Graph loads that returned an error, by on-disk format.", "format")
	r.RegisterHistogram(famGraphLoadSeconds, "Graph load wall time (open through validated CSR), by on-disk format.", "format", graphLoadBuckets)
	r.RegisterCounter(famGraphLoadBytes, "On-disk bytes behind completed graph loads, by format.", "format")
	r.RegisterCounter(famShardMapMaps, "BCSR v3 shard/boundary sections mapped by out-of-core runs.", "")
	r.RegisterCounter(famShardMapUnmaps, "BCSR v3 shard/boundary sections retired (MADV_DONTNEED + unmap).", "")
	r.RegisterGauge(famShardMapResident, "Peak mapped shard-section bytes of the last out-of-core run.", "")
	r.RegisterCounter(famPartitionCacheHit, "Sharded runs that reused a BCSR v3 file's persisted partition instead of partitioning, by strategy.", "strategy")
}

// ObserveForwardWait records one DCT forwarding-latency sample: the time
// between parking a vertex on the ring and successfully coloring it after
// the awaited color landed. Nil-safe; the engine calls it only when an
// observer is live (the park timestamp is not even taken otherwise).
func (o *Observer) ObserveForwardWait(seconds float64) {
	if o == nil {
		return
	}
	o.reg.Histogram(famDCTForwardWait).Observe("", seconds)
}

// RecordRun folds one engine run's statistics into the metric families.
// The engine registry's instrumentation decorator calls it once per run,
// after the engine returns — never on the hot path.
func (o *Observer) RecordRun(engine string, colors int, d time.Duration, st metrics.RunStats, runErr error) {
	if o == nil {
		return
	}
	r := o.reg
	r.Counter(famRuns).Add(engine, 1)
	if runErr != nil {
		r.Counter(famRunErrors).Add(engine, 1)
		return
	}
	r.Counter(famRounds).Add(engine, int64(st.Rounds))
	r.Counter(famConflictsFound).Add(engine, st.ConflictsFound)
	r.Counter(famConflictsRepaired).Add(engine, st.ConflictsRepaired)
	for w, v := range st.VerticesPerWorker {
		r.Counter(famWorkerVertices).Add(fmt.Sprint(w), v)
	}
	fair := st.FairShareBlocks()
	for w, b := range st.BlocksPerWorker {
		r.Counter(famWorkerBlocks).Add(fmt.Sprint(w), b)
		if b > fair {
			r.Counter(famWorkerSteals).Add(fmt.Sprint(w), b-fair)
		}
	}
	r.Counter(famGatherHot).Add("", st.Gather.HotReads)
	r.Counter(famGatherMerged).Add("", st.Gather.MergedReads)
	r.Counter(famGatherCold).Add("", st.Gather.ColdBlockLoads)
	r.Counter(famGatherPruned).Add("", st.Gather.PrunedTail)
	r.Counter(famDCTDeferred).Add("", st.Deferred)
	r.Counter(famDCTRetries).Add("", st.DeferRetries)
	r.Counter(famDCTSpinWaits).Add("", st.SpinWaits)
	if st.Deferred > 0 || st.ForwardRingPeak > 0 {
		r.Gauge(famDCTRingOccupancy).Set("", float64(st.ForwardRingPeak))
	}
	if st.Shards > 0 {
		for s, v := range st.ShardVertices {
			r.Counter(famShardVertices).Add(fmt.Sprint(s), v)
		}
		for s, d := range st.ShardDurations {
			r.Gauge(famShardSeconds).Set(fmt.Sprint(s), d.Seconds())
		}
		r.Gauge(famShardFrontier).Set("", float64(st.FrontierVertices))
		r.Counter(famShardCrossDefers).Add("", st.CrossShardDefers)
	}
	r.Histogram(famEngineSeconds).Observe(engine, d.Seconds())
	r.Gauge(famLastColors).Set(engine, float64(colors))
	r.Gauge(famLastWorkers).Set("", float64(st.Workers))
	r.Gauge(famLastHotThreshold).Set("", float64(st.HotThreshold))
	o.Logger().Info("engine run",
		"engine", engine, "colors", colors, "duration", d,
		"rounds", st.Rounds, "workers", st.Workers,
		"conflicts_found", st.ConflictsFound, "conflicts_repaired", st.ConflictsRepaired)
}

// RecordShardMap folds one out-of-core run's shard-mapping activity into
// the metric families: sections mapped and retired during the run, and
// the run's peak mapped bytes (the bounded-residency high-water mark).
func (o *Observer) RecordShardMap(maps, unmaps, peakBytes int64) {
	if o == nil {
		return
	}
	o.reg.Counter(famShardMapMaps).Add("", maps)
	o.reg.Counter(famShardMapUnmaps).Add("", unmaps)
	if peakBytes > 0 {
		o.reg.Gauge(famShardMapResident).Set("", float64(peakBytes))
	}
}

// RecordPartitionCache counts one sharded run that skipped partitioning
// because a BCSR v3 file supplied the assignment (the content-hash
// partition cache hitting).
func (o *Observer) RecordPartitionCache(strategy string) {
	if o == nil {
		return
	}
	o.reg.Counter(famPartitionCacheHit).Add(strategy, 1)
}

// RecordStage folds one pipeline stage timing into the metric families.
func (o *Observer) RecordStage(stage string, d time.Duration, cancelled bool) {
	if o == nil {
		return
	}
	o.reg.Gauge(famStageSeconds).Set(stage, d.Seconds())
	if cancelled {
		o.reg.Counter(famStageCancelled).Add(stage, 1)
	}
	o.Logger().Info("pipeline stage", "stage", stage, "duration", d, "cancelled", cancelled)
}

// RecordGraphLoad folds one graph load into the metric families. format
// is the sniffed on-disk format label ("edgelist", "bcsr-v1", "bcsr-v2",
// "bcsr-v2-mapped", "dimacs"), bytes the file size (<=0 when unknown or
// the load failed before stat).
func (o *Observer) RecordGraphLoad(format string, bytes int64, d time.Duration, err error) {
	if o == nil {
		return
	}
	r := o.reg
	r.Counter(famGraphLoads).Add(format, 1)
	if err != nil {
		r.Counter(famGraphLoadErrors).Add(format, 1)
		o.Logger().Info("graph load failed", "format", format, "duration", d, "error", err)
		return
	}
	r.Histogram(famGraphLoadSeconds).Observe(format, d.Seconds())
	if bytes > 0 {
		r.Counter(famGraphLoadBytes).Add(format, bytes)
	}
	o.Logger().Info("graph load", "format", format, "bytes", bytes, "duration", d)
}
