package obs

import "sync"

// The plane registry is the process-wide (not run-scoped) metric
// surface: pool admission telemetry, the run registry's in-flight and
// completed counts, and the build-info stamp. Run-scoped registries
// reset with every observer; the plane outlives them all and is
// appended to every /metrics scrape and expvar snapshot.

// Plane metric family names.
const (
	famBuildInfo     = "bitcolor_build_info"
	famRunsInflight  = "bitcolor_runs_inflight"
	famRunsCompleted = "bitcolor_runs_completed_total"

	famPoolCap        = "bitcolor_pool_cap"
	famPoolInUse      = "bitcolor_pool_in_use"
	famPoolQueueDepth = "bitcolor_pool_queue_depth"
	famPoolAcquires   = "bitcolor_pool_acquires_total"
	famPoolQueueWaits = "bitcolor_pool_queue_waits_total"
	famPoolCancelled  = "bitcolor_pool_cancelled_waits_total"
	famPoolDemand     = "bitcolor_pool_demand_slots_total"
	famPoolGranted    = "bitcolor_pool_granted_slots_total"
	famPoolShrinks    = "bitcolor_pool_shrinks_total"
	famPoolWait       = "bitcolor_pool_admission_wait_seconds"
)

// admissionWaitBuckets covers an uncontended grant (sub-microsecond,
// recorded only for queued acquires so the floor is scheduler latency)
// through a long backpressure stall.
var admissionWaitBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 10,
}

var (
	planeOnce sync.Once
	planeReg  *Registry
)

// Plane returns the process-global metric registry, creating and
// populating it with the standard plane families on first use.
func Plane() *Registry {
	planeOnce.Do(func() {
		r := NewRegistry()
		r.RegisterInfo(famBuildInfo, "Build identity of this binary (constant 1).", BuildInfo())
		r.RegisterGauge(famRunsInflight, "Coloring runs currently registered as in flight (queued or running).", "")
		r.RegisterCounter(famRunsCompleted, "Coloring runs deregistered into the flight recorder, by final status.", "status")
		r.RegisterGauge(famPoolCap, "Worker-slot bound of each live pool.", "pool")
		r.RegisterGauge(famPoolInUse, "Worker slots currently held, per pool.", "pool")
		r.RegisterGauge(famPoolQueueDepth, "Acquire calls blocked in the FIFO admission queue, per pool.", "pool")
		r.RegisterCounter(famPoolAcquires, "Pool slot acquisitions granted, by engine.", "engine")
		r.RegisterCounter(famPoolQueueWaits, "Acquisitions that had to queue before being granted, by engine.", "engine")
		r.RegisterCounter(famPoolCancelled, "Queued acquisitions abandoned by context cancellation, by engine.", "engine")
		r.RegisterCounter(famPoolDemand, "Worker slots requested by admitted runs (pre-clamp demand), by engine.", "engine")
		r.RegisterCounter(famPoolGranted, "Worker slots actually granted to admitted runs, by engine.", "engine")
		r.RegisterCounter(famPoolShrinks, "Admissions granted fewer slots than demanded (run shrank to fit), by engine.", "engine")
		r.RegisterHistogram(famPoolWait, "Time queued acquisitions spent waiting for admission.", "", admissionWaitBuckets)
		planeReg = r
	})
	return planeReg
}

// PoolStatus is one pool's instantaneous state — the shape both the
// exec.Pool Stats snapshot and the /debug/runs JSON use. Defined here
// (not in exec) because exec already imports obs and the HTTP surface
// lives on this side.
type PoolStatus struct {
	Name       string `json:"name"`
	Cap        int    `json:"cap"`
	InUse      int    `json:"in_use"`
	QueueDepth int    `json:"queue_depth"`
}

// PoolAcquired folds one granted admission into the plane families.
// exec.Pool calls it after every successful Acquire; engine is the
// admission tag ("" for untagged callers).
func PoolAcquired(engine string, demand, granted int, queued bool, waitSeconds float64) {
	r := Plane()
	r.Counter(famPoolAcquires).Add(engine, 1)
	r.Counter(famPoolDemand).Add(engine, int64(demand))
	r.Counter(famPoolGranted).Add(engine, int64(granted))
	if granted < demand {
		r.Counter(famPoolShrinks).Add(engine, 1)
	}
	if queued {
		r.Counter(famPoolQueueWaits).Add(engine, 1)
		r.Histogram(famPoolWait).Observe("", waitSeconds)
	}
}

// PoolCancelled folds one abandoned (context-cancelled) queued
// admission into the plane families.
func PoolCancelled(engine string) {
	Plane().Counter(famPoolCancelled).Add(engine, 1)
}

// PoolGauges refreshes one pool's gauges from a status snapshot.
// exec.Pool calls it whenever slot or queue occupancy changes.
func PoolGauges(s PoolStatus) {
	r := Plane()
	r.Gauge(famPoolCap).Set(s.Name, float64(s.Cap))
	r.Gauge(famPoolInUse).Set(s.Name, float64(s.InUse))
	r.Gauge(famPoolQueueDepth).Set(s.Name, float64(s.QueueDepth))
}
