package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
)

// /debug/runs — the run registry's HTTP surface. JSON by default; a
// minimal HTML table when the client asks for text/html. The trace
// endpoint serves a Chrome trace of a live or completed run on demand.

// runsPayload is the /debug/runs JSON envelope.
type runsPayload struct {
	Build  map[string]string `json:"build"`
	Pools  []PoolStatus      `json:"pools,omitempty"`
	Live   []LiveRun         `json:"live"`
	Recent []RunSummary      `json:"recent"`
}

// runsSnapshot assembles the full introspection payload. Pool statuses
// are collected from the live runs' admission snapshots, deduplicated
// by pool name.
func runsSnapshot(rr *RunRegistry) runsPayload {
	live := rr.LiveRuns()
	var pools []PoolStatus
	seen := map[string]bool{}
	for _, lr := range live {
		if lr.Pool != nil && !seen[lr.Pool.Name] {
			seen[lr.Pool.Name] = true
			pools = append(pools, *lr.Pool)
		}
	}
	return runsPayload{
		Build:  BuildInfo(),
		Pools:  pools,
		Live:   live,
		Recent: rr.Recent(),
	}
}

// handleRuns serves GET /debug/runs.
func handleRuns(rr *RunRegistry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		p := runsSnapshot(rr)
		if strings.Contains(r.Header.Get("Accept"), "text/html") {
			writeRunsHTML(w, p)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p)
	}
}

// writeRunsHTML renders the payload as a minimal two-table page.
func writeRunsHTML(w http.ResponseWriter, p runsPayload) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<!DOCTYPE html><html><head><title>bitcolor runs</title></head><body>")
	fmt.Fprintf(w, "<h1>bitcolor runs</h1><p>revision %s · %s</p>",
		html.EscapeString(p.Build["revision"]), html.EscapeString(p.Build["go_version"]))
	for _, ps := range p.Pools {
		fmt.Fprintf(w, "<p>pool %s: cap %d, in use %d, queue depth %d</p>",
			html.EscapeString(ps.Name), ps.Cap, ps.InUse, ps.QueueDepth)
	}
	fmt.Fprintf(w, "<h2>in flight (%d)</h2><table border=1 cellpadding=4>", len(p.Live))
	fmt.Fprintf(w, "<tr><th>id</th><th>engine</th><th>state</th><th>vertices</th><th>progress</th><th>round</th><th>elapsed ms</th><th>grant</th><th>trace</th></tr>")
	for _, lr := range p.Live {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%.1f</td><td>%d/%d</td><td><a href=\"/debug/runs/%s/trace\">trace</a></td></tr>",
			html.EscapeString(lr.ID), html.EscapeString(lr.Engine),
			html.EscapeString(lr.Progress.State), lr.Vertices,
			lr.Progress.Vertices, lr.Progress.Round, lr.ElapsedMS,
			lr.Granted, lr.Demand, html.EscapeString(lr.ID))
	}
	fmt.Fprintf(w, "</table><h2>recent (%d)</h2><table border=1 cellpadding=4>", len(p.Recent))
	fmt.Fprintf(w, "<tr><th>id</th><th>engine</th><th>status</th><th>colors</th><th>rounds</th><th>duration ms</th><th>trace</th></tr>")
	for _, s := range p.Recent {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%.2f</td><td><a href=\"/debug/runs/%s/trace\">trace</a></td></tr>",
			html.EscapeString(s.ID), html.EscapeString(s.Engine),
			html.EscapeString(s.Status), s.Colors, s.Rounds, s.DurationMS,
			html.EscapeString(s.ID))
	}
	fmt.Fprintf(w, "</table></body></html>\n")
}

// handleRunTrace serves GET /debug/runs/<id>/trace: the Chrome trace of
// a live (spans finished so far) or completed run.
func handleRunTrace(rr *RunRegistry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/debug/runs/")
		id, ok := strings.CutSuffix(rest, "/trace")
		if !ok || id == "" || strings.Contains(id, "/") {
			http.NotFound(w, r)
			return
		}
		o := rr.Observer(id)
		if o == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", "trace-"+id+".json"))
		_ = o.WriteTrace(w)
	}
}
