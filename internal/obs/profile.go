package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// pprof capture helpers shared by the CLIs: a CPU profile bracketed
// around the measured stage and a heap snapshot after it, written next
// to the run's other outputs.

// StartCPUProfile begins writing a CPU profile to path and returns the
// stop function. With an empty path it is a no-op returning a no-op
// stop, so CLIs call it unconditionally.
func StartCPUProfile(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile snapshots the live heap to path (after a GC, so the
// profile reflects retained memory, not garbage).
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
