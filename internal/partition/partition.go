// Package partition provides graph partitioners for the multi-card
// scale-out extension: contiguous index ranges (what a naive deployment
// gets for free) and a balanced label-propagation refinement that
// reduces edge cut — the difference between road networks scaling and
// power-law graphs drowning in boundary work.
package partition

import (
	"fmt"

	"bitcolor/internal/graph"
)

// Strategy names, matching the coloring package's option strings.
const (
	StrategyRanges    = "ranges"
	StrategyLabelProp = "labelprop"
)

// StrategyCode maps a strategy name ("" defaults to ranges) to the
// graph.V3Partition* code a BCSR v3 header persists.
func StrategyCode(name string) (uint32, error) {
	switch name {
	case "", StrategyRanges:
		return graph.V3PartitionRanges, nil
	case StrategyLabelProp:
		return graph.V3PartitionLabelProp, nil
	}
	return 0, fmt.Errorf("partition: unknown strategy %q (have %q, %q)",
		name, StrategyRanges, StrategyLabelProp)
}

// StrategyName maps a persisted V3Partition* code back to its name.
func StrategyName(code uint32) (string, error) {
	switch code {
	case graph.V3PartitionRanges:
		return StrategyRanges, nil
	case graph.V3PartitionLabelProp:
		return StrategyLabelProp, nil
	}
	return "", fmt.Errorf("partition: unknown strategy code %d", code)
}

// Assignment maps each vertex to a part in [0, K).
type Assignment struct {
	Parts []int32
	K     int
}

// FrontierMask returns the sharded engine's frontier mask for this
// assignment (see graph.FrontierMask): the vertices the interior pass
// defers to the bounded second phase.
func (a *Assignment) FrontierMask(g *graph.CSR) []bool {
	return graph.FrontierMask(g, a.Parts)
}

// Validate checks ranges.
func (a *Assignment) Validate() error {
	if a.K <= 0 {
		return fmt.Errorf("partition: K=%d", a.K)
	}
	for v, p := range a.Parts {
		if p < 0 || int(p) >= a.K {
			return fmt.Errorf("partition: vertex %d in part %d of %d", v, p, a.K)
		}
	}
	return nil
}

// EdgeCut returns the number of undirected edges crossing parts.
func (a *Assignment) EdgeCut(g *graph.CSR) int64 {
	var cut int64
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			if graph.VertexID(v) < w && a.Parts[v] != a.Parts[w] {
				cut++
			}
		}
	}
	return cut
}

// BoundaryVertices returns how many vertices have a cross-part neighbor.
func (a *Assignment) BoundaryVertices(g *graph.CSR) int {
	count := 0
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			if a.Parts[v] != a.Parts[w] {
				count++
				break
			}
		}
	}
	return count
}

// Sizes returns the part sizes.
func (a *Assignment) Sizes() []int {
	sizes := make([]int, a.K)
	for _, p := range a.Parts {
		sizes[p]++
	}
	return sizes
}

// Ranges partitions by contiguous index ranges — the zero-cost baseline.
func Ranges(g *graph.CSR, k int) (*Assignment, error) {
	return RangesInto(g, k, nil)
}

// RangesInto is Ranges writing the part vector into parts when it has
// the capacity (nil or too small allocates) — the allocation-free entry
// the sharded engine's pooled scratch uses.
func RangesInto(g *graph.CSR, k int, parts []int32) (*Assignment, error) {
	n := g.NumVertices()
	if k <= 0 {
		return nil, fmt.Errorf("partition: K=%d", k)
	}
	if cap(parts) < n {
		parts = make([]int32, n)
	}
	parts = parts[:n]
	for v := 0; v < n; v++ {
		p := v * k / max(n, 1)
		if p >= k {
			p = k - 1
		}
		parts[v] = int32(p)
	}
	return &Assignment{Parts: parts, K: k}, nil
}

// LabelPropagation refines a range partition with balanced label
// propagation: for `rounds` sweeps, each vertex moves to the part
// holding the plurality of its neighbors, unless the move would push
// that part beyond (1+slack)·n/K vertices. Deterministic (ascending
// sweeps) and O(rounds·E).
func LabelPropagation(g *graph.CSR, k, rounds int, slack float64) (*Assignment, error) {
	return LabelPropagationInto(g, k, rounds, slack, nil)
}

// LabelPropagationInto is LabelPropagation refining a range partition
// written into parts (see RangesInto).
func LabelPropagationInto(g *graph.CSR, k, rounds int, slack float64, parts []int32) (*Assignment, error) {
	a, err := RangesInto(g, k, parts)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if n == 0 || k == 1 {
		return a, nil
	}
	if slack < 0 {
		slack = 0
	}
	limit := int(float64(n)/float64(k)*(1+slack)) + 1
	sizes := a.Sizes()
	counts := make([]int32, k)
	for r := 0; r < rounds; r++ {
		moved := 0
		for v := 0; v < n; v++ {
			adj := g.Neighbors(graph.VertexID(v))
			if len(adj) == 0 {
				continue
			}
			for i := range counts {
				counts[i] = 0
			}
			for _, w := range adj {
				counts[a.Parts[w]]++
			}
			cur := a.Parts[v]
			best := cur
			for p := int32(0); p < int32(k); p++ {
				if p == cur {
					continue
				}
				if counts[p] > counts[best] && sizes[p] < limit {
					best = p
				}
			}
			if best != cur && counts[best] > counts[cur] {
				sizes[cur]--
				sizes[best]++
				a.Parts[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return a, nil
}

// Classification is the one-pass boundary analysis of an assignment: the
// numbers the sharded engine and the multi-card simulator both report,
// computed once instead of via the separate EdgeCut/BoundaryVertices
// sweeps.
type Classification struct {
	// CutEdges counts undirected edges crossing parts (== EdgeCut).
	CutEdges int64
	// Boundary counts vertices with any cross-part neighbor
	// (== BoundaryVertices).
	Boundary int
	// PerShardBoundary[p] counts part p's boundary vertices.
	PerShardBoundary []int
	// PerShardVertices[p] counts part p's vertices (== Sizes).
	PerShardVertices []int
}

// Classify computes the boundary analysis in one adjacency sweep.
func Classify(g *graph.CSR, a *Assignment) Classification {
	c := Classification{
		PerShardBoundary: make([]int, a.K),
		PerShardVertices: make([]int, a.K),
	}
	for v := 0; v < g.NumVertices(); v++ {
		pv := a.Parts[v]
		c.PerShardVertices[pv]++
		cross := false
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			if a.Parts[w] != pv {
				cross = true
				if graph.VertexID(v) < w {
					c.CutEdges++
				}
			}
		}
		if cross {
			c.Boundary++
			c.PerShardBoundary[pv]++
		}
	}
	return c
}

// VertexLists returns, per part, the ascending list of its vertices as
// sub-slices of one backing buffer (buf when it has capacity n, else a
// fresh allocation) — the per-shard subrange views the sharded engine
// iterates without copying the CSR. A counting sort over an already
// index-sorted domain keeps each list ascending.
func (a *Assignment) VertexLists(buf []graph.VertexID) [][]graph.VertexID {
	n := len(a.Parts)
	if cap(buf) < n {
		buf = make([]graph.VertexID, n)
	}
	buf = buf[:n]
	offsets := make([]int, a.K+1)
	for _, p := range a.Parts {
		offsets[p+1]++
	}
	for p := 1; p <= a.K; p++ {
		offsets[p] += offsets[p-1]
	}
	next := make([]int, a.K)
	copy(next, offsets[:a.K])
	for v, p := range a.Parts {
		buf[next[p]] = graph.VertexID(v)
		next[p]++
	}
	lists := make([][]graph.VertexID, a.K)
	for p := 0; p < a.K; p++ {
		lists[p] = buf[offsets[p]:offsets[p+1]]
	}
	return lists
}
