package partition

import (
	"math/rand"
	"testing"

	"bitcolor/internal/gen"
	"bitcolor/internal/graph"
)

func testGraph(t testing.TB, n, m int, seed int64) *graph.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.VertexID(rng.Intn(n)), V: graph.VertexID(rng.Intn(n))}
	}
	g, err := graph.FromEdgeList(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRanges(t *testing.T) {
	g := testGraph(t, 100, 300, 1)
	a, err := Ranges(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes()
	for p, s := range sizes {
		if s != 25 {
			t.Fatalf("part %d size %d, want 25", p, s)
		}
	}
	// Contiguity: parts are monotone in index.
	for v := 1; v < 100; v++ {
		if a.Parts[v] < a.Parts[v-1] {
			t.Fatal("range parts not monotone")
		}
	}
	if _, err := Ranges(g, 0); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestLabelPropagationReducesCut(t *testing.T) {
	// Community graph with scrambled IDs: ranges cut everything, label
	// propagation should rediscover most of the block structure.
	g, err := gen.Community(8, 100, 5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Scramble IDs so ranges don't align with blocks.
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(g.NumVertices())
	var edges []graph.Edge
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			if graph.VertexID(v) < w {
				edges = append(edges, graph.Edge{U: graph.VertexID(perm[v]), V: graph.VertexID(perm[w])})
			}
		}
	}
	scrambled, err := graph.FromEdgeList(g.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Ranges(scrambled, 4)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := LabelPropagation(scrambled, 4, 10, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if err := lp.Validate(); err != nil {
		t.Fatal(err)
	}
	if lp.EdgeCut(scrambled) >= base.EdgeCut(scrambled) {
		t.Fatalf("LP cut %d >= ranges cut %d", lp.EdgeCut(scrambled), base.EdgeCut(scrambled))
	}
	// Balance respected.
	limit := int(float64(scrambled.NumVertices())/4*1.15) + 1
	for p, s := range lp.Sizes() {
		if s > limit {
			t.Fatalf("part %d size %d beyond limit %d", p, s, limit)
		}
	}
}

func TestLabelPropagationK1(t *testing.T) {
	g := testGraph(t, 50, 100, 4)
	a, err := LabelPropagation(g, 1, 5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if a.EdgeCut(g) != 0 || a.BoundaryVertices(g) != 0 {
		t.Fatal("single part has a cut")
	}
}

func TestAssignmentStats(t *testing.T) {
	g, _ := graph.FromEdgeList(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 1, V: 2}})
	a := &Assignment{Parts: []int32{0, 0, 1, 1}, K: 2}
	if a.EdgeCut(g) != 1 {
		t.Fatalf("cut = %d, want 1 (edge 1-2)", a.EdgeCut(g))
	}
	if a.BoundaryVertices(g) != 2 {
		t.Fatalf("boundary = %d, want 2", a.BoundaryVertices(g))
	}
	bad := &Assignment{Parts: []int32{0, 5}, K: 2}
	if bad.Validate() == nil {
		t.Fatal("bad assignment validated")
	}
}
