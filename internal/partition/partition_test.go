package partition

import (
	"math/rand"
	"testing"

	"bitcolor/internal/gen"
	"bitcolor/internal/graph"
)

func testGraph(t testing.TB, n, m int, seed int64) *graph.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.VertexID(rng.Intn(n)), V: graph.VertexID(rng.Intn(n))}
	}
	g, err := graph.FromEdgeList(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRanges(t *testing.T) {
	g := testGraph(t, 100, 300, 1)
	a, err := Ranges(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes()
	for p, s := range sizes {
		if s != 25 {
			t.Fatalf("part %d size %d, want 25", p, s)
		}
	}
	// Contiguity: parts are monotone in index.
	for v := 1; v < 100; v++ {
		if a.Parts[v] < a.Parts[v-1] {
			t.Fatal("range parts not monotone")
		}
	}
	if _, err := Ranges(g, 0); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestLabelPropagationReducesCut(t *testing.T) {
	// Community graph with scrambled IDs: ranges cut everything, label
	// propagation should rediscover most of the block structure.
	g, err := gen.Community(8, 100, 5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Scramble IDs so ranges don't align with blocks.
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(g.NumVertices())
	var edges []graph.Edge
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			if graph.VertexID(v) < w {
				edges = append(edges, graph.Edge{U: graph.VertexID(perm[v]), V: graph.VertexID(perm[w])})
			}
		}
	}
	scrambled, err := graph.FromEdgeList(g.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Ranges(scrambled, 4)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := LabelPropagation(scrambled, 4, 10, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if err := lp.Validate(); err != nil {
		t.Fatal(err)
	}
	if lp.EdgeCut(scrambled) >= base.EdgeCut(scrambled) {
		t.Fatalf("LP cut %d >= ranges cut %d", lp.EdgeCut(scrambled), base.EdgeCut(scrambled))
	}
	// Balance respected.
	limit := int(float64(scrambled.NumVertices())/4*1.15) + 1
	for p, s := range lp.Sizes() {
		if s > limit {
			t.Fatalf("part %d size %d beyond limit %d", p, s, limit)
		}
	}
}

func TestLabelPropagationK1(t *testing.T) {
	g := testGraph(t, 50, 100, 4)
	a, err := LabelPropagation(g, 1, 5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if a.EdgeCut(g) != 0 || a.BoundaryVertices(g) != 0 {
		t.Fatal("single part has a cut")
	}
}

// TestLabelPropagationDeterministic pins the property the sharded
// engine's cross-checks rely on: the same graph and parameters always
// produce the identical Assignment, including when two refinements run
// concurrently over the shared read-only CSR (the concurrent arm gives
// the race detector something to chew on).
func TestLabelPropagationDeterministic(t *testing.T) {
	g := testGraph(t, 800, 6000, 9)
	ref, err := LabelPropagation(g, 4, 10, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*Assignment, 4)
	errs := make([]error, 4)
	done := make(chan int, 4)
	for i := range results {
		go func(i int) {
			results[i], errs[i] = LabelPropagation(g, 4, 10, 0.15)
			done <- i
		}(i)
	}
	for range results {
		<-done
	}
	for i, a := range results {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if a.K != ref.K || len(a.Parts) != len(ref.Parts) {
			t.Fatalf("run %d: shape %d/%d differs from %d/%d", i, a.K, len(a.Parts), ref.K, len(ref.Parts))
		}
		for v := range a.Parts {
			if a.Parts[v] != ref.Parts[v] {
				t.Fatalf("run %d: vertex %d in part %d, reference says %d", i, v, a.Parts[v], ref.Parts[v])
			}
		}
	}
	// A rebuilt identical graph must land on the same assignment too.
	h := testGraph(t, 800, 6000, 9)
	b, err := LabelPropagation(h, 4, 10, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	for v := range b.Parts {
		if b.Parts[v] != ref.Parts[v] {
			t.Fatalf("rebuilt graph: vertex %d in part %d, reference says %d", v, b.Parts[v], ref.Parts[v])
		}
	}
}

// TestRangesInto pins the buffer-reuse contract: a caller buffer with
// capacity is written in place, one without is replaced.
func TestRangesInto(t *testing.T) {
	g := testGraph(t, 100, 300, 1)
	buf := make([]int32, 100)
	a, err := RangesInto(g, 4, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &a.Parts[0] != &buf[0] {
		t.Fatal("RangesInto did not reuse the caller buffer")
	}
	b, err := RangesInto(g, 4, make([]int32, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Parts) != 100 {
		t.Fatalf("undersized buffer: parts len %d", len(b.Parts))
	}
	for v := range a.Parts {
		if a.Parts[v] != b.Parts[v] {
			t.Fatalf("vertex %d: reused %d, fresh %d", v, a.Parts[v], b.Parts[v])
		}
	}
}

// TestVertexLists pins the counting-sort views: every part's list is
// ascending, matches the assignment, shares the caller's backing buffer,
// and together the lists cover each vertex exactly once.
func TestVertexLists(t *testing.T) {
	g := testGraph(t, 500, 2000, 6)
	a, err := LabelPropagation(g, 4, 10, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]graph.VertexID, 500)
	lists := a.VertexLists(buf)
	if len(lists) != a.K {
		t.Fatalf("%d lists for K=%d", len(lists), a.K)
	}
	seen := make([]bool, 500)
	total := 0
	for p, list := range lists {
		for i, v := range list {
			if i > 0 && list[i-1] >= v {
				t.Fatalf("part %d not ascending at %d: %d >= %d", p, i, list[i-1], v)
			}
			if int(a.Parts[v]) != p {
				t.Fatalf("vertex %d listed in part %d but assigned %d", v, p, a.Parts[v])
			}
			if seen[v] {
				t.Fatalf("vertex %d listed twice", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != 500 {
		t.Fatalf("lists cover %d of 500 vertices", total)
	}
	if len(lists[0]) > 0 && &lists[0][0] != &buf[0] {
		t.Fatal("VertexLists did not use the caller buffer")
	}
}

// FuzzAssignmentInvariants cross-checks the assignment statistics
// against Validate on fuzzer-shaped graphs and part vectors: whenever
// Validate accepts the assignment, EdgeCut, BoundaryVertices, Sizes and
// the one-sweep Classify must agree with each other and with basic
// counting bounds.
func FuzzAssignmentInvariants(f *testing.F) {
	f.Add(uint16(50), uint16(200), uint8(4), int64(1), []byte{0, 1, 2, 3})
	f.Add(uint16(1), uint16(0), uint8(1), int64(2), []byte{0})
	f.Add(uint16(120), uint16(500), uint8(7), int64(3), []byte{9, 200, 3})
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint16, kRaw uint8, seed int64, partsRaw []byte) {
		n := int(nRaw)%300 + 1
		m := int(mRaw) % 2000
		k := int(kRaw)%8 + 1
		g := testGraph(t, n, m, seed)
		parts := make([]int32, n)
		for v := range parts {
			if len(partsRaw) > 0 {
				parts[v] = int32(int8(partsRaw[v%len(partsRaw)]))
			}
		}
		a := &Assignment{Parts: parts, K: k}
		if err := a.Validate(); err != nil {
			// Out-of-range parts: the stats functions carry no contract
			// here, nothing further to check.
			return
		}
		cut := a.EdgeCut(g)
		boundary := a.BoundaryVertices(g)
		sizes := a.Sizes()
		cl := Classify(g, a)
		if cut != cl.CutEdges {
			t.Fatalf("EdgeCut %d != Classify %d", cut, cl.CutEdges)
		}
		if boundary != cl.Boundary {
			t.Fatalf("BoundaryVertices %d != Classify %d", boundary, cl.Boundary)
		}
		if len(sizes) != k || len(cl.PerShardVertices) != k || len(cl.PerShardBoundary) != k {
			t.Fatalf("per-part slices sized %d/%d/%d for K=%d",
				len(sizes), len(cl.PerShardVertices), len(cl.PerShardBoundary), k)
		}
		sum, perBoundary := 0, 0
		for p := range sizes {
			if sizes[p] != cl.PerShardVertices[p] {
				t.Fatalf("part %d: Sizes %d != Classify %d", p, sizes[p], cl.PerShardVertices[p])
			}
			if cl.PerShardBoundary[p] > cl.PerShardVertices[p] {
				t.Fatalf("part %d: %d boundary > %d vertices", p, cl.PerShardBoundary[p], cl.PerShardVertices[p])
			}
			sum += sizes[p]
			perBoundary += cl.PerShardBoundary[p]
		}
		if sum != n {
			t.Fatalf("Sizes sum %d != %d vertices", sum, n)
		}
		if perBoundary != boundary {
			t.Fatalf("per-shard boundary sum %d != total %d", perBoundary, boundary)
		}
		if boundary > n {
			t.Fatalf("boundary %d > %d vertices", boundary, n)
		}
		if cut > g.NumEdges()/2 {
			t.Fatalf("cut %d > %d undirected edges", cut, g.NumEdges()/2)
		}
		if k == 1 && (cut != 0 || boundary != 0) {
			t.Fatalf("K=1 with cut %d boundary %d", cut, boundary)
		}
	})
}

func TestAssignmentStats(t *testing.T) {
	g, _ := graph.FromEdgeList(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 1, V: 2}})
	a := &Assignment{Parts: []int32{0, 0, 1, 1}, K: 2}
	if a.EdgeCut(g) != 1 {
		t.Fatalf("cut = %d, want 1 (edge 1-2)", a.EdgeCut(g))
	}
	if a.BoundaryVertices(g) != 2 {
		t.Fatalf("boundary = %d, want 2", a.BoundaryVertices(g))
	}
	bad := &Assignment{Parts: []int32{0, 5}, K: 2}
	if bad.Validate() == nil {
		t.Fatal("bad assignment validated")
	}
}
