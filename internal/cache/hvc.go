package cache

import (
	"fmt"

	"bitcolor/internal/mem"
)

// HVC is the high-degree vertex cache: after DBG reordering, the colors
// of vertices with index < Threshold live on-chip; everything else lives
// in DRAM. Unlike a conventional cache there are no tags, no evictions
// and no misses-by-conflict — the degree threshold statically decides
// residency, which is what makes the design cheap on FPGA (§3.2.2,
// Fig 5(b)).
//
// The backing store is a MultiPort cache so parallel BWPEs can read
// concurrently; with P=1 it degenerates to a single dual-port BRAM.
type HVC struct {
	threshold uint32 // v_t: vertices with index < threshold are cached
	store     MultiPort
	hits      int64
	misses    int64
}

// NewHVC builds a high-degree vertex cache holding colors of vertices
// [0, capacity) using the given multi-port construction. The threshold
// v_t equals the capacity: the paper fills the cache with the
// highest-degree (lowest-index) vertices.
func NewHVC(store MultiPort, capacity int) *HVC {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: HVC capacity %d must be positive", capacity))
	}
	return &HVC{threshold: uint32(capacity), store: store}
}

// Threshold returns v_t, the first vertex index *not* cached.
func (h *HVC) Threshold() uint32 { return h.threshold }

// Contains reports whether v's color is cached on-chip — the BWPE's
// Step-4 comparison v_des < v_t.
func (h *HVC) Contains(v uint32) bool { return v < h.threshold }

// Read returns v's color via read port rp. ok is false on a miss (caller
// must go to DRAM through the Color Loader).
func (h *HVC) Read(rp int, v uint32) (color uint16, ok bool) {
	if !h.Contains(v) {
		h.misses++
		return 0, false
	}
	h.hits++
	return h.store.Read(rp, int(v)), true
}

// Write stores v's color via write port wp; ok is false when v is not
// cache-resident (caller must write DRAM instead).
func (h *HVC) Write(wp int, v uint32, color uint16) bool {
	if !h.Contains(v) {
		return false
	}
	h.store.Write(wp, int(v), color)
	return true
}

// HitRate returns hits / (hits + misses); 0 with no accesses.
func (h *HVC) HitRate() float64 {
	total := h.hits + h.misses
	if total == 0 {
		return 0
	}
	return float64(h.hits) / float64(total)
}

// Hits and Misses expose the raw counters.
func (h *HVC) Hits() int64   { return h.hits }
func (h *HVC) Misses() int64 { return h.misses }

// BRAMBits returns the on-chip cost of the cache.
func (h *HVC) BRAMBits() int64 { return h.store.BRAMBits() }

// ReadLatency returns the store's read latency.
func (h *HVC) ReadLatency() int64 { return h.store.ReadLatency() }

// CoverageRatio returns, for a degree-descending graph with the given
// per-vertex degrees implied by offsets, the fraction of directed edges
// whose destination is cache-resident — an upper bound on the DRAM
// traffic HDC can remove. Used by experiments to relate cache size to the
// Fig 11 DRAM reduction.
func CoverageRatio(offsets []int64, edges []uint32, threshold uint32) float64 {
	if len(edges) == 0 {
		return 0
	}
	var covered int64
	for _, d := range edges {
		if d < threshold {
			covered++
		}
	}
	return float64(covered) / float64(len(edges))
}

// DefaultCapacityVertices is the paper's single-cache capacity (1 MB of
// 16-bit colors = 512K vertices).
const DefaultCapacityVertices = mem.SingleCacheVertices

// HotThreshold returns the hot-tier threshold v_t that the host-side
// blocked color-gather uses for an n-vertex graph: the whole graph when
// it fits in the paper's cache capacity, DefaultCapacityVertices
// otherwise. On a DBG-reordered graph indices below v_t are exactly the
// highest-degree vertices, mirroring HVC residency.
func HotThreshold(n int) uint32 {
	if n < DefaultCapacityVertices {
		return uint32(n)
	}
	return uint32(DefaultCapacityVertices)
}
