package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bitcolor/internal/mem"
)

func TestBitSelectReadWrite(t *testing.T) {
	c := NewBitSelectCache(4, 64)
	// Port wp writes addresses wp, wp+4, wp+8, ... per the schedule.
	for wp := 0; wp < 4; wp++ {
		for k := 0; k < 16; k++ {
			addr := wp + 4*k
			c.Write(wp, addr, uint16(addr+100))
		}
	}
	for rp := 0; rp < 4; rp++ {
		for addr := 0; addr < 64; addr++ {
			if got := c.Read(rp, addr); got != uint16(addr+100) {
				t.Fatalf("Read(rp=%d, %d) = %d, want %d", rp, addr, got, addr+100)
			}
		}
	}
}

func TestBitSelectSchedulingInvariant(t *testing.T) {
	c := NewBitSelectCache(4, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("invariant violation not caught")
		}
	}()
	c.Write(0, 1, 7) // addr%4 = 1 != port 0
}

func TestBitSelectBoundsChecks(t *testing.T) {
	c := NewBitSelectCache(2, 8)
	for _, f := range []func(){
		func() { c.Write(-1, 0, 1) },
		func() { c.Write(2, 0, 1) },
		func() { c.Write(0, 8, 1) },
		func() { c.Read(-1, 0) },
		func() { c.Read(0, -1) },
		func() { c.Read(0, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bounds violation not caught")
				}
			}()
			f()
		}()
	}
}

func TestBitSelectRequiresPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("P=3 accepted")
		}
	}()
	NewBitSelectCache(3, 8)
}

func TestLVTArbitraryWrites(t *testing.T) {
	c := NewLVTCache(4, 32)
	// Any port can write any address; last write wins.
	c.Write(3, 5, 11)
	c.Write(0, 5, 22)
	if got := c.Read(2, 5); got != 22 {
		t.Fatalf("Read = %d, want 22 (last write)", got)
	}
	if c.LastWriter(5) != 0 {
		t.Fatalf("LVT records writer %d, want 0", c.LastWriter(5))
	}
}

// The §4.4 cost claim: the proposed cache is 2/P of the LVT cache's BRAM.
func TestBRAMCostRatio(t *testing.T) {
	const depth = 1 << 16
	for _, p := range []int{2, 4, 8, 16} {
		bs := NewBitSelectCache(p, depth)
		lvt := NewLVTCache(p, depth)
		// Ignore the LVT's own table bits for the ratio check.
		lvtData := int64(p) * int64(p) * int64(depth) / 4 * mem.ColorBits
		ratio := float64(bs.BRAMBits()) / float64(lvtData)
		want := 2.0 / float64(p)
		if ratio < want*0.99 || ratio > want*1.01 {
			t.Errorf("P=%d: cost ratio %.4f, want %.4f (=2/P)", p, ratio, want)
		}
		if lvt.BRAMBits() <= lvtData {
			t.Errorf("P=%d: LVT cost must include the LVT table", p)
		}
		if bs.ReadLatency() >= lvt.ReadLatency() {
			t.Errorf("P=%d: bit-select latency %d not below LVT %d",
				p, bs.ReadLatency(), lvt.ReadLatency())
		}
	}
}

func TestBRAMCostP1NoReplication(t *testing.T) {
	bs := NewBitSelectCache(1, 1024)
	if bs.BRAMBits() != 1024*mem.ColorBits {
		t.Fatalf("P=1 BRAM = %d, want plain D entries", bs.BRAMBits())
	}
}

// Property: under the §4.6 schedule, the bit-select cache behaves exactly
// like a flat array (the LVT cache is the oracle).
func TestBitSelectMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const p, depth = 8, 256
		bs := NewBitSelectCache(p, depth)
		oracle := NewLVTCache(p, depth)
		for i := 0; i < 500; i++ {
			addr := rng.Intn(depth)
			port := addr % p
			val := uint16(rng.Intn(1 << 16))
			bs.Write(port, addr, val)
			oracle.Write(port, addr, val)
		}
		for addr := 0; addr < depth; addr++ {
			if bs.Read(rng.Intn(p), addr) != oracle.Read(0, addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHVCResidency(t *testing.T) {
	h := NewHVC(NewBitSelectCache(1, 100), 100)
	if !h.Contains(0) || !h.Contains(99) || h.Contains(100) {
		t.Fatal("threshold residency wrong")
	}
	if ok := h.Write(0, 42, 7); !ok {
		t.Fatal("resident write failed")
	}
	if ok := h.Write(0, 100, 7); ok {
		t.Fatal("non-resident write accepted")
	}
	c, ok := h.Read(0, 42)
	if !ok || c != 7 {
		t.Fatalf("Read = (%d,%v), want (7,true)", c, ok)
	}
	if _, ok := h.Read(0, 500); ok {
		t.Fatal("non-resident read hit")
	}
	if h.Hits() != 1 || h.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d", h.Hits(), h.Misses())
	}
	if r := h.HitRate(); r != 0.5 {
		t.Fatalf("hit rate = %f", r)
	}
}

func TestHVCHitRateNoAccesses(t *testing.T) {
	h := NewHVC(NewBitSelectCache(1, 10), 10)
	if h.HitRate() != 0 {
		t.Fatal("hit rate without accesses != 0")
	}
}

func TestHVCMultiPortSchedule(t *testing.T) {
	// P=4 engines writing their own vertices i, i+4, i+8...
	const p, capacity = 4, 64
	h := NewHVC(NewBitSelectCache(p, capacity), capacity)
	for pe := 0; pe < p; pe++ {
		for v := pe; v < capacity; v += p {
			if !h.Write(pe, uint32(v), uint16(v+1)) {
				t.Fatalf("write v=%d failed", v)
			}
		}
	}
	for pe := 0; pe < p; pe++ {
		for v := 0; v < capacity; v++ {
			c, ok := h.Read(pe, uint32(v))
			if !ok || c != uint16(v+1) {
				t.Fatalf("pe %d read v=%d = (%d,%v)", pe, v, c, ok)
			}
		}
	}
}

func TestCoverageRatio(t *testing.T) {
	edges := []uint32{0, 1, 2, 10, 11, 12}
	if r := CoverageRatio(nil, edges, 3); r != 0.5 {
		t.Fatalf("coverage = %f, want 0.5", r)
	}
	if r := CoverageRatio(nil, nil, 3); r != 0 {
		t.Fatal("empty coverage != 0")
	}
	if r := CoverageRatio(nil, edges, 100); r != 1 {
		t.Fatalf("full coverage = %f", r)
	}
}

func TestStatsCounting(t *testing.T) {
	c := NewBitSelectCache(2, 8)
	c.Write(0, 0, 1)
	c.Write(1, 1, 2)
	c.Read(0, 0)
	st := c.Stats()
	if st.Writes != 2 || st.Reads != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func BenchmarkBitSelectRead(b *testing.B) {
	c := NewBitSelectCache(8, 1<<16)
	for addr := 0; addr < 1<<16; addr++ {
		c.Write(addr%8, addr, uint16(addr))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Read(i%8, i&(1<<16-1)) != uint16(i&(1<<16-1)) {
			b.Fatal("bad read")
		}
	}
}
