// Package cache implements BitColor's on-chip color storage: the
// high-degree vertex cache (HVC) that keeps hot color data on-chip
// (paper §3.2.2), and the two multi-port cache constructions compared in
// §4.4 — the proposed address-bit-selection design and the Live Value
// Table (LVT) baseline it replaces.
package cache

import (
	"fmt"
	"math/bits"

	"bitcolor/internal/mem"
)

// ReadLatencyCycles is the on-chip read latency of the proposed cache.
const ReadLatencyCycles = 1

// LVTReadLatencyCycles includes the extra LVT indirection read (§4.4:
// "the read operation needs to check LVT, which ... increases read
// latency").
const LVTReadLatencyCycles = 2

// MultiPort is the interface shared by both cache constructions so the
// simulator and the ablation experiments can swap them.
type MultiPort interface {
	// Read returns the value at addr through read port rp.
	Read(rp int, addr int) uint16
	// Write stores val at addr through write port wp.
	Write(wp int, addr int, val uint16)
	// Ports returns (writePorts, readPorts).
	Ports() (int, int)
	// BRAMBits returns the BRAM cost of the construction in bits.
	BRAMBits() int64
	// ReadLatency returns the read latency in cycles.
	ReadLatency() int64
}

// BitSelectCache is the paper's proposed mW/nR cache based on address
// bit-selection. It relies on the scheduling invariant of §4.4/§4.6:
// write port `wp` only ever writes addresses with addr % P == wp, so the
// bank holding an address is identified by the low log2(P) address bits
// (no live-value table needed), and the in-bank address is addr / P.
//
// The functional model stores one logical array per write port (the
// replicated RMs hold identical content per port, so one copy suffices
// functionally); BRAMBits accounts the full hardware replication cost
// P·D/2 from the paper's formula m×n×D/(2P) with m=n=P.
type BitSelectCache struct {
	p     int // parallelism: m = n = P ports
	depth int // D: total addressable entries
	banks [][]uint16
	// valid tracks initialized entries so misuse is caught in tests.
	stats CacheStats
}

// CacheStats counts port activity.
type CacheStats struct {
	Reads, Writes int64
}

// NewBitSelectCache builds a P-write/P-read cache over depth entries.
// P must be a power of two (the address split is a bit selection).
func NewBitSelectCache(p, depth int) *BitSelectCache {
	if p <= 0 || bits.OnesCount(uint(p)) != 1 {
		panic(fmt.Sprintf("cache: parallelism %d must be a positive power of two", p))
	}
	if depth <= 0 {
		panic(fmt.Sprintf("cache: depth %d must be positive", depth))
	}
	banks := make([][]uint16, p)
	per := (depth + p - 1) / p
	for i := range banks {
		banks[i] = make([]uint16, per)
	}
	return &BitSelectCache{p: p, depth: depth, banks: banks}
}

// Write stores val at addr via write port wp. It panics if the §4.6
// scheduling invariant is violated (addr % P != wp): in hardware that
// write would land in the wrong RM and silently corrupt reads, so the
// model makes it loud.
func (c *BitSelectCache) Write(wp int, addr int, val uint16) {
	if wp < 0 || wp >= c.p {
		panic(fmt.Sprintf("cache: write port %d out of range (P=%d)", wp, c.p))
	}
	if addr < 0 || addr >= c.depth {
		panic(fmt.Sprintf("cache: write address %d out of range (D=%d)", addr, c.depth))
	}
	if addr%c.p != wp {
		panic(fmt.Sprintf("cache: scheduling invariant violated: port %d writing addr %d (addr%%P=%d)",
			wp, addr, addr%c.p))
	}
	c.banks[wp][addr/c.p] = val
	c.stats.Writes++
}

// Read returns the value at addr via read port rp. The bank is selected
// by addr % P (the paper's remainder bit-selection), the in-bank address
// by addr / P (the divisor bit-selection).
func (c *BitSelectCache) Read(rp int, addr int) uint16 {
	if rp < 0 || rp >= c.p {
		panic(fmt.Sprintf("cache: read port %d out of range (P=%d)", rp, c.p))
	}
	if addr < 0 || addr >= c.depth {
		panic(fmt.Sprintf("cache: read address %d out of range (D=%d)", addr, c.depth))
	}
	c.stats.Reads++
	return c.banks[addr%c.p][addr/c.p]
}

// Ports returns (P, P).
func (c *BitSelectCache) Ports() (int, int) { return c.p, c.p }

// BRAMBits returns the hardware BRAM cost of the construction:
// m×n×D/(2P) entries with m=n=P gives P·D/2 entries of ColorBits each.
// For P == 1 no replication is needed and the cost is D entries.
func (c *BitSelectCache) BRAMBits() int64 {
	entries := int64(c.depth)
	if c.p > 1 {
		entries = int64(c.p) * int64(c.depth) / 2
	}
	return entries * mem.ColorBits
}

// ReadLatency is one cycle: the bank select is a wire, not a lookup.
func (c *BitSelectCache) ReadLatency() int64 { return ReadLatencyCycles }

// Stats returns port activity counters.
func (c *BitSelectCache) Stats() CacheStats { return c.stats }

// LVTCache is the Live-Value-Table baseline of LaForest & Steffan: writes
// can target any address from any port; an LVT of depth D records which
// write port last wrote each address, and reads consult the LVT to pick
// the bank. Functionally it is an unconstrained multi-port memory; its
// costs are a D-entry LVT, an extra cycle of read latency, and m×n
// replicated banks of the full original size (paper: final size
// m×n×D/4).
type LVTCache struct {
	p     int
	depth int
	data  []uint16
	lvt   []uint8 // last writer port per address (modeled, bounds P<=256)
	stats CacheStats
}

// NewLVTCache builds the LVT-based mW/nR cache with m=n=P.
func NewLVTCache(p, depth int) *LVTCache {
	if p <= 0 || p > 256 {
		panic(fmt.Sprintf("cache: LVT parallelism %d out of range", p))
	}
	if depth <= 0 {
		panic(fmt.Sprintf("cache: depth %d must be positive", depth))
	}
	return &LVTCache{p: p, depth: depth, data: make([]uint16, depth), lvt: make([]uint8, depth)}
}

// Write stores val at addr via any port — no scheduling constraint.
func (c *LVTCache) Write(wp int, addr int, val uint16) {
	if wp < 0 || wp >= c.p {
		panic(fmt.Sprintf("cache: write port %d out of range (P=%d)", wp, c.p))
	}
	if addr < 0 || addr >= c.depth {
		panic(fmt.Sprintf("cache: write address %d out of range (D=%d)", addr, c.depth))
	}
	c.data[addr] = val
	c.lvt[addr] = uint8(wp)
	c.stats.Writes++
}

// Read returns the value at addr; the LVT lookup is implicit in the
// latency.
func (c *LVTCache) Read(rp int, addr int) uint16 {
	if rp < 0 || rp >= c.p {
		panic(fmt.Sprintf("cache: read port %d out of range (P=%d)", rp, c.p))
	}
	if addr < 0 || addr >= c.depth {
		panic(fmt.Sprintf("cache: read address %d out of range (D=%d)", addr, c.depth))
	}
	c.stats.Reads++
	return c.data[addr]
}

// Ports returns (P, P).
func (c *LVTCache) Ports() (int, int) { return c.p, c.p }

// BRAMBits returns the LVT construction's BRAM cost: m×n banks of D/4
// entries each... per the paper's accounting, m×n×D/4 entries of color
// data plus the D-entry LVT of log2(P) bits.
func (c *LVTCache) BRAMBits() int64 {
	m, n := int64(c.p), int64(c.p)
	dataEntries := m * n * int64(c.depth) / 4
	if c.p == 1 {
		dataEntries = int64(c.depth)
	}
	lvtBits := int64(0)
	if c.p > 1 {
		lvtBits = int64(c.depth) * int64(bits.Len(uint(c.p-1)))
	}
	return dataEntries*mem.ColorBits + lvtBits
}

// ReadLatency includes the LVT indirection.
func (c *LVTCache) ReadLatency() int64 { return LVTReadLatencyCycles }

// Stats returns port activity counters.
func (c *LVTCache) Stats() CacheStats { return c.stats }

// LastWriter exposes the LVT content for tests.
func (c *LVTCache) LastWriter(addr int) int { return int(c.lvt[addr]) }

var (
	_ MultiPort = (*BitSelectCache)(nil)
	_ MultiPort = (*LVTCache)(nil)
)
