package reorder

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"bitcolor/internal/graph"
)

func randomCSR(t *testing.T, n, m int, seed int64) *graph.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			U: graph.VertexID(rng.Intn(n)),
			V: graph.VertexID(rng.Intn(n)),
		}
	}
	g, err := graph.FromEdgeList(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// DBGParallel must produce byte-identical graphs and permutations to the
// sequential DBG at every worker count, above and below the parallel
// threshold.
func TestDBGParallelEquivalence(t *testing.T) {
	cases := []struct{ n, m int }{
		{60, 300},     // below parallelApplyMinVertices: sequential fallback
		{1500, 20000}, // parallel relabel active
		{4000, 15000}, // sparse
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 2, 5, 8} {
			t.Run(fmt.Sprintf("n=%d/w=%d", tc.n, workers), func(t *testing.T) {
				g := randomCSR(t, tc.n, tc.m, int64(tc.n+workers))
				wantG, wantP := DBG(g)
				gotG, gotP := DBGParallel(g, workers)
				if !reflect.DeepEqual(wantG.Offsets, gotG.Offsets) {
					t.Fatal("offsets differ from sequential DBG")
				}
				if !reflect.DeepEqual(wantG.Edges, gotG.Edges) {
					t.Fatal("edges differ from sequential DBG")
				}
				if !reflect.DeepEqual(wantP.NewID, gotP.NewID) || !reflect.DeepEqual(wantP.OldID, gotP.OldID) {
					t.Fatal("permutation differs from sequential DBG")
				}
				if err := gotP.Validate(); err != nil {
					t.Fatal(err)
				}
				if !IsDegreeDescending(gotG) {
					t.Fatal("parallel DBG output not degree-descending")
				}
				if !gotG.EdgesSorted() {
					t.Fatal("parallel DBG output not edge-sorted")
				}
			})
		}
	}
}

func TestApplyParallelIdentityPermutation(t *testing.T) {
	g := randomCSR(t, 2000, 12000, 3)
	out := ApplyParallel(g, Identity(g.NumVertices()), 4)
	if !reflect.DeepEqual(g.Offsets, out.Offsets) || !reflect.DeepEqual(g.Edges, out.Edges) {
		t.Fatal("identity relabel changed the graph")
	}
}
