// Package reorder implements BitColor's preprocessing: degree-based
// grouping (DBG) reordering (paper §3.2.2, after Faldu et al.), per-vertex
// ascending edge sorting for DRAM read merging, and permutation utilities.
//
// DBG renames vertices in descending order of degree so that a smaller
// vertex index implies a higher degree. Two BitColor mechanisms rely on
// that invariant:
//
//   - the high-degree vertex cache holds colors of vertices with index
//     below the threshold v_t, so the hottest color data is on-chip;
//   - uncolored-vertex pruning compares neighbor index against the current
//     vertex index to skip not-yet-colored neighbors.
package reorder

import (
	"fmt"

	"bitcolor/internal/graph"
)

// Permutation maps old vertex IDs to new vertex IDs: NewID[old] = new.
type Permutation struct {
	NewID []graph.VertexID
	OldID []graph.VertexID
}

// Identity returns the identity permutation over n vertices.
func Identity(n int) *Permutation {
	p := &Permutation{
		NewID: make([]graph.VertexID, n),
		OldID: make([]graph.VertexID, n),
	}
	for i := 0; i < n; i++ {
		p.NewID[i] = graph.VertexID(i)
		p.OldID[i] = graph.VertexID(i)
	}
	return p
}

// Validate checks that the permutation is a bijection with a consistent
// inverse.
func (p *Permutation) Validate() error {
	n := len(p.NewID)
	if len(p.OldID) != n {
		return fmt.Errorf("reorder: NewID/OldID length mismatch %d vs %d", n, len(p.OldID))
	}
	seen := make([]bool, n)
	for old, nw := range p.NewID {
		if int(nw) >= n {
			return fmt.Errorf("reorder: NewID[%d] = %d out of range", old, nw)
		}
		if seen[nw] {
			return fmt.Errorf("reorder: new ID %d assigned twice", nw)
		}
		seen[nw] = true
		if p.OldID[nw] != graph.VertexID(old) {
			return fmt.Errorf("reorder: inverse mismatch at old %d", old)
		}
	}
	return nil
}

// DegreeDescending computes the DBG permutation: vertices sorted by
// descending degree, ties broken by ascending old ID for determinism.
// Implemented as a counting sort over degrees — O(V + maxDegree) — since
// preprocessing cost is itself an evaluation subject (Table 2).
func DegreeDescending(g *graph.CSR) *Permutation {
	n := g.NumVertices()
	maxDeg := 0
	degs := make([]int, n)
	for v := 0; v < n; v++ {
		degs[v] = g.Degree(graph.VertexID(v))
		if degs[v] > maxDeg {
			maxDeg = degs[v]
		}
	}
	// counts[d] = number of vertices with degree d; prefix from the top
	// gives each degree class its slot range in descending order.
	counts := make([]int, maxDeg+2)
	for _, d := range degs {
		counts[d]++
	}
	start := make([]int, maxDeg+2)
	acc := 0
	for d := maxDeg; d >= 0; d-- {
		start[d] = acc
		acc += counts[d]
	}
	order := make([]graph.VertexID, n)
	for v := 0; v < n; v++ { // ascending v preserves the ID tie-break
		d := degs[v]
		order[start[d]] = graph.VertexID(v)
		start[d]++
	}
	p := &Permutation{
		NewID: make([]graph.VertexID, n),
		OldID: order,
	}
	for nw, old := range order {
		p.NewID[old] = graph.VertexID(nw)
	}
	return p
}

// Apply returns a new graph with vertices renamed through p. Adjacency
// lists of the result are sorted ascending (the paper performs edge
// sorting as part of preprocessing anyway).
func Apply(g *graph.CSR, p *Permutation) *graph.CSR {
	n := g.NumVertices()
	offsets := make([]int64, n+1)
	for old := 0; old < n; old++ {
		offsets[p.NewID[old]+1] = int64(g.Degree(graph.VertexID(old)))
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	edges := make([]graph.VertexID, g.NumEdges())
	for old := 0; old < n; old++ {
		nw := p.NewID[old]
		dst := edges[offsets[nw]:]
		for i, d := range g.Neighbors(graph.VertexID(old)) {
			dst[i] = p.NewID[d]
		}
	}
	out := &graph.CSR{Offsets: offsets, Edges: edges}
	out.SortEdges()
	return out
}

// DBG runs the full degree-based-grouping preprocessing: compute the
// descending-degree permutation, apply it, and return the reordered graph
// together with the permutation (callers need it to translate colors back
// to original IDs).
func DBG(g *graph.CSR) (*graph.CSR, *Permutation) {
	p := DegreeDescending(g)
	return Apply(g, p), p
}

// IsDegreeDescending reports whether vertex degrees are non-increasing in
// index order — the invariant DBG establishes and BitColor's pruning and
// caching rely on.
func IsDegreeDescending(g *graph.CSR) bool {
	for v := 1; v < g.NumVertices(); v++ {
		if g.Degree(graph.VertexID(v)) > g.Degree(graph.VertexID(v-1)) {
			return false
		}
	}
	return true
}

// ShuffleEdges randomizes the order within each adjacency list using a
// deterministic LCG; used by experiments to measure the cost of *not*
// sorting edges (Table 4, Fig 11 MGR ablation).
func ShuffleEdges(g *graph.CSR, seed int64) {
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func(bound int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(bound))
	}
	for v := 0; v < g.NumVertices(); v++ {
		adj := g.Neighbors(graph.VertexID(v))
		for i := len(adj) - 1; i > 0; i-- {
			j := next(i + 1)
			adj[i], adj[j] = adj[j], adj[i]
		}
	}
}

// TranslateColors maps a color assignment on the reordered graph back to
// original vertex IDs: result[old] = colors[NewID[old]].
func TranslateColors(colors []uint16, p *Permutation) []uint16 {
	out := make([]uint16, len(colors))
	for old := range out {
		out[old] = colors[p.NewID[old]]
	}
	return out
}
