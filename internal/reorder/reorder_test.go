package reorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bitcolor/internal/gen"
	"bitcolor/internal/graph"
)

func randomGraph(t testing.TB, n, m int, seed int64) *graph.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.VertexID(rng.Intn(n)), V: graph.VertexID(rng.Intn(n))}
	}
	g, err := graph.FromEdgeList(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIdentity(t *testing.T) {
	p := Identity(5)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	g := randomGraph(t, 5, 8, 1)
	h := Apply(g, p)
	if h.NumEdges() != g.NumEdges() {
		t.Fatal("identity permutation changed edge count")
	}
	for v := 0; v < 5; v++ {
		if h.Degree(graph.VertexID(v)) != g.Degree(graph.VertexID(v)) {
			t.Fatal("identity permutation changed degrees")
		}
	}
}

func TestDegreeDescending(t *testing.T) {
	g := randomGraph(t, 200, 1500, 2)
	p := DegreeDescending(g)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	h := Apply(g, p)
	if !IsDegreeDescending(h) {
		t.Fatal("DBG output degrees not descending")
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if !h.IsUndirected() {
		t.Fatal("DBG output not symmetric")
	}
	if !h.EdgesSorted() {
		t.Fatal("DBG output adjacency not sorted")
	}
}

func TestDBGDeterministicTieBreak(t *testing.T) {
	g := randomGraph(t, 100, 300, 3)
	p1 := DegreeDescending(g)
	p2 := DegreeDescending(g)
	for i := range p1.NewID {
		if p1.NewID[i] != p2.NewID[i] {
			t.Fatal("DBG not deterministic")
		}
	}
}

func TestApplyPreservesAdjacency(t *testing.T) {
	g := randomGraph(t, 50, 200, 4)
	h, p := DBG(g)
	// Edge {u,v} in g iff {NewID[u],NewID[v]} in h.
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(graph.VertexID(u)) {
			if !h.HasEdge(p.NewID[u], p.NewID[v]) {
				t.Fatalf("edge (%d,%d) lost in reorder", u, v)
			}
		}
	}
	if h.NumEdges() != g.NumEdges() {
		t.Fatal("edge count changed")
	}
}

func TestIsDegreeDescendingDetectsViolation(t *testing.T) {
	// Path 0-1-2: degrees 1,2,1 — not descending.
	g, err := graph.FromEdgeList(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if IsDegreeDescending(g) {
		t.Fatal("violation not detected")
	}
	h, _ := DBG(g)
	if !IsDegreeDescending(h) {
		t.Fatal("DBG failed to fix ordering")
	}
}

func TestShuffleEdgesPreservesSetAndBreaksOrder(t *testing.T) {
	g := randomGraph(t, 100, 800, 5)
	before := graph.ComputeStats(g)
	ShuffleEdges(g, 99)
	after := graph.ComputeStats(g)
	if before.DirectedEdges != after.DirectedEdges {
		t.Fatal("shuffle changed edge count")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.EdgesSorted() {
		t.Fatal("shuffle left all adjacency sorted (vanishingly unlikely)")
	}
	if !g.IsUndirected() {
		t.Fatal("shuffle broke symmetry")
	}
}

func TestTranslateColors(t *testing.T) {
	g := randomGraph(t, 20, 60, 6)
	_, p := DBG(g)
	colors := make([]uint16, 20)
	for i := range colors {
		colors[i] = uint16(i + 1)
	}
	back := TranslateColors(colors, p)
	for old := 0; old < 20; old++ {
		if back[old] != colors[p.NewID[old]] {
			t.Fatal("translation wrong")
		}
	}
}

func TestValidateCatchesBadPermutation(t *testing.T) {
	p := Identity(3)
	p.NewID[0] = 1 // duplicate with NewID[1]
	if err := p.Validate(); err == nil {
		t.Fatal("duplicate assignment not caught")
	}
	p = Identity(3)
	p.NewID[0] = 7
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range not caught")
	}
	p = Identity(3)
	p.OldID[0], p.OldID[1] = p.OldID[1], p.OldID[0]
	if err := p.Validate(); err == nil {
		t.Fatal("inverse mismatch not caught")
	}
}

// Property: DBG over random graphs always yields a valid permutation and a
// degree-descending, structurally intact graph.
func TestDBGInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%60) + 2
		g := randomGraph(t, n, 4*n, seed)
		h, p := DBG(g)
		return p.Validate() == nil &&
			h.Validate() == nil &&
			IsDegreeDescending(h) &&
			h.NumEdges() == g.NumEdges() &&
			h.IsUndirected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDBGOnPaperDatasets(t *testing.T) {
	for _, d := range gen.SmallRegistry()[:4] {
		g, err := d.Build(1)
		if err != nil {
			t.Fatalf("%s: %v", d.Abbrev, err)
		}
		h, _ := DBG(g)
		if !IsDegreeDescending(h) {
			t.Fatalf("%s: DBG violated", d.Abbrev)
		}
	}
}

func BenchmarkDBG(b *testing.B) {
	g, err := gen.RMAT(14, 8, 0.57, 0.19, 0.19, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DBG(g)
	}
}
