package reorder

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"bitcolor/internal/graph"
)

// Parallel relabeling. Apply dominates DBG preprocessing cost (it streams
// every edge twice: once to translate, once to sort); both passes
// parallelize cleanly because each source vertex owns a disjoint
// destination range in the output CSR. DBGParallel produces output
// identical to DBG (enforced by equivalence tests): the permutation is
// computed by the same deterministic counting sort, and per-range sorting
// canonicalizes edge order exactly as Apply's global sort does.

// parallelApplyMinVertices gates the parallel path: tiny graphs relabel
// faster sequentially than they spawn goroutines.
const parallelApplyMinVertices = 1 << 10

// relabelBlock is the vertex-range granularity workers claim from the
// shared cursor during the translate+sort pass.
const relabelBlock = 256

// ApplyParallel is Apply using `workers` goroutines (<=0: GOMAXPROCS).
// The returned graph is identical to Apply's on the same inputs.
func ApplyParallel(g *graph.CSR, p *Permutation, workers int) *graph.CSR {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	if workers == 1 || n < parallelApplyMinVertices {
		return Apply(g, p)
	}
	// Degree scatter: every old vertex writes one distinct offsets slot.
	offsets := make([]int64, n+1)
	parallelOldRanges(n, workers, func(lo, hi int) {
		for old := lo; old < hi; old++ {
			offsets[p.NewID[old]+1] = int64(g.Degree(graph.VertexID(old)))
		}
	})
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	// Translate + sort: each old vertex owns the output range of its new
	// ID, so workers claiming blocks of old IDs never write overlapping
	// regions, and sorting the region immediately keeps it cache-hot.
	edges := make([]graph.VertexID, g.NumEdges())
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(relabelBlock)) - relabelBlock
				if lo >= n {
					return
				}
				hi := min(lo+relabelBlock, n)
				for old := lo; old < hi; old++ {
					nw := p.NewID[old]
					dst := edges[offsets[nw]:offsets[nw+1]]
					for i, d := range g.Neighbors(graph.VertexID(old)) {
						dst[i] = p.NewID[d]
					}
					slices.Sort(dst)
				}
			}
		}()
	}
	wg.Wait()
	return &graph.CSR{Offsets: offsets, Edges: edges}
}

// DBGParallel is DBG with the relabel pass parallelized across `workers`
// goroutines (<=0: GOMAXPROCS). It returns the reordered graph and the
// permutation carrying both directions of the renaming (NewID and its
// inverse OldID). Output is identical to DBG's.
func DBGParallel(g *graph.CSR, workers int) (*graph.CSR, *Permutation) {
	p := DegreeDescending(g)
	return ApplyParallel(g, p, workers), p
}

// parallelOldRanges splits [0,n) into one contiguous range per worker.
func parallelOldRanges(n, workers int, fn func(lo, hi int)) {
	per := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		if lo >= n {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, min(lo+per, n))
	}
	wg.Wait()
}
