package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConnectedComponents(t *testing.T) {
	// Two triangles and an isolated vertex: 3 components.
	g, err := FromEdgeList(7, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	labels, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("first triangle split")
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Fatal("second triangle split")
	}
	if labels[0] == labels[3] || labels[6] == labels[0] || labels[6] == labels[3] {
		t.Fatal("components merged")
	}
}

func TestConnectedComponentsEmpty(t *testing.T) {
	g, _ := FromEdgeList(0, nil)
	labels, count := ConnectedComponents(g)
	if count != 0 || len(labels) != 0 {
		t.Fatal("empty graph mishandled")
	}
}

func TestLargestComponent(t *testing.T) {
	g, _ := FromEdgeList(6, []Edge{
		{U: 0, V: 1},
		{U: 2, V: 3}, {U: 3, V: 4}, {U: 2, V: 4},
	})
	lc := LargestComponent(g)
	if len(lc) != 3 {
		t.Fatalf("largest component size = %d, want 3", len(lc))
	}
	want := map[VertexID]bool{2: true, 3: true, 4: true}
	for _, v := range lc {
		if !want[v] {
			t.Fatalf("unexpected member %d", v)
		}
	}
	if LargestComponent(&CSR{}) != nil {
		t.Fatal("empty graph largest component not nil")
	}
}

func TestBFSLevels(t *testing.T) {
	// Path 0-1-2-3 plus disconnected 4.
	g, _ := FromEdgeList(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	levels, ecc := BFSLevels(g, 0)
	wantLevels := []int32{0, 1, 2, 3, -1}
	for v, w := range wantLevels {
		if levels[v] != w {
			t.Fatalf("level[%d] = %d, want %d", v, levels[v], w)
		}
	}
	if ecc != 3 {
		t.Fatalf("ecc = %d, want 3", ecc)
	}
}

func TestKCore(t *testing.T) {
	// Triangle + pendant: triangle is 2-core, pendant is 1-core.
	g, _ := FromEdgeList(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}})
	core, degeneracy := KCore(g)
	if degeneracy != 2 {
		t.Fatalf("degeneracy = %d, want 2", degeneracy)
	}
	if core[0] != 2 || core[1] != 2 || core[2] != 2 {
		t.Fatalf("triangle cores = %v, want 2s", core[:3])
	}
	if core[3] != 1 {
		t.Fatalf("pendant core = %d, want 1", core[3])
	}
}

func TestKCoreClique(t *testing.T) {
	var edges []Edge
	const k = 8
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			edges = append(edges, Edge{U: VertexID(u), V: VertexID(v)})
		}
	}
	g, _ := FromEdgeList(k, edges)
	core, degeneracy := KCore(g)
	if degeneracy != k-1 {
		t.Fatalf("K%d degeneracy = %d, want %d", k, degeneracy, k-1)
	}
	for v, c := range core {
		if c != k-1 {
			t.Fatalf("core[%d] = %d", v, c)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g, _ := FromEdgeList(6, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 0, V: 5},
	})
	sub, old := InducedSubgraph(g, []VertexID{0, 1, 2, 5})
	if sub.NumVertices() != 4 {
		t.Fatalf("sub vertices = %d", sub.NumVertices())
	}
	// Edges inside {0,1,2,5}: (0,1), (1,2), (0,5).
	if sub.UndirectedEdgeCount() != 3 {
		t.Fatalf("sub edges = %d, want 3", sub.UndirectedEdgeCount())
	}
	if len(old) != 4 || old[3] != 5 {
		t.Fatalf("old mapping = %v", old)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: component labels partition the graph, BFS stays within one
// component, and core numbers are bounded by degrees.
func TestAlgoInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%60) + 2
		rng := rand.New(rand.NewSource(seed))
		edges := make([]Edge, 2*n)
		for i := range edges {
			edges[i] = Edge{U: VertexID(rng.Intn(n)), V: VertexID(rng.Intn(n))}
		}
		g, err := FromEdgeList(n, edges)
		if err != nil {
			return false
		}
		labels, count := ConnectedComponents(g)
		if count < 1 || count > n {
			return false
		}
		// Every edge joins same-labeled endpoints.
		for v := 0; v < n; v++ {
			for _, w := range g.Neighbors(VertexID(v)) {
				if labels[v] != labels[w] {
					return false
				}
			}
		}
		levels, _ := BFSLevels(g, 0)
		for v := 0; v < n; v++ {
			reachable := levels[v] >= 0
			sameComp := labels[v] == labels[0]
			if reachable != sameComp {
				return false
			}
		}
		core, degeneracy := KCore(g)
		maxCore := 0
		for v := 0; v < n; v++ {
			if core[v] > g.Degree(VertexID(v)) || core[v] < 0 {
				return false
			}
			if core[v] > maxCore {
				maxCore = core[v]
			}
		}
		return maxCore == degeneracy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Degeneracy+1 bounds the smallest-last greedy color count — ties the
// graph substrate to the coloring package's guarantee.
func TestDegeneracyBoundsColoring(t *testing.T) {
	g := func() *CSR {
		rng := rand.New(rand.NewSource(11))
		edges := make([]Edge, 3000)
		for i := range edges {
			edges[i] = Edge{U: VertexID(rng.Intn(500)), V: VertexID(rng.Intn(500))}
		}
		gg, _ := FromEdgeList(500, edges)
		return gg
	}()
	_, degeneracy := KCore(g)
	if degeneracy <= 0 {
		t.Fatal("degeneracy not computed")
	}
	// (The actual coloring check lives in internal/coloring to avoid an
	// import cycle; here we check the bound is sane vs max degree.)
	if degeneracy > g.MaxDegree() {
		t.Fatalf("degeneracy %d > max degree %d", degeneracy, g.MaxDegree())
	}
}
