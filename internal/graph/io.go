package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// This file provides two interchange formats:
//
//   - SNAP-style whitespace-separated edge lists ("u v" per line, '#'
//     comments), so the real paper datasets can be dropped in when
//     available;
//   - a compact little-endian binary CSR format for fast reload of
//     generated datasets ("BCSR" magic, version, counts, offsets, edges).

// ReadEdgeList parses a SNAP-format undirected edge list. Vertex IDs may
// be sparse; they are densified in first-appearance order. Returns the
// graph and the number of input lines used.
func ReadEdgeList(r io.Reader) (*CSR, int, error) {
	n, edges, lines, err := ReadEdges(r)
	if err != nil {
		return nil, 0, err
	}
	g, err := FromEdgeList(n, edges)
	return g, lines, err
}

// ReadEdges parses a SNAP-format edge list into its densified edge set
// without building the CSR, so callers can time — and parallelize — the
// build separately (FromEdgeListParallel). Returns the vertex count, the
// edges, and the number of input lines used.
func ReadEdges(r io.Reader) (int, []Edge, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	ids := make(map[uint64]VertexID)
	var edges []Edge
	lines := 0
	lookup := func(raw uint64) VertexID {
		if id, ok := ids[raw]; ok {
			return id
		}
		id := VertexID(len(ids))
		ids[raw] = id
		return id
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, nil, 0, fmt.Errorf("graph: malformed edge line %q", line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return 0, nil, 0, fmt.Errorf("graph: bad vertex %q: %v", fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0, nil, 0, fmt.Errorf("graph: bad vertex %q: %v", fields[1], err)
		}
		edges = append(edges, Edge{U: lookup(u), V: lookup(v)})
		lines++
	}
	if err := sc.Err(); err != nil {
		return 0, nil, 0, err
	}
	return len(ids), edges, lines, nil
}

// LoadEdgeListFile reads a SNAP edge-list file from disk.
func LoadEdgeListFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, _, err := ReadEdgeList(f)
	return g, err
}

// WriteEdgeList writes each undirected edge once as "u v" lines.
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < g.NumVertices(); v++ {
		for _, d := range g.Neighbors(VertexID(v)) {
			if VertexID(v) < d {
				if _, err := fmt.Fprintf(bw, "%d %d\n", v, d); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

const (
	binaryMagic   = "BCSR"
	binaryVersion = uint32(1)
)

// WriteBinary serializes the CSR in the compact binary format.
func WriteBinary(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := []uint64{
		uint64(binaryVersion),
		uint64(g.NumVertices()),
		uint64(len(g.Edges)),
	}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, o := range g.Offsets {
		if err := binary.Write(bw, binary.LittleEndian, uint64(o)); err != nil {
			return err
		}
	}
	// Edges written in bulk via a reusable chunk to bound allocation.
	const chunk = 1 << 16
	buf := make([]byte, 0, chunk*4)
	for i, e := range g.Edges {
		buf = binary.LittleEndian.AppendUint32(buf, e)
		if len(buf) == cap(buf) || i == len(g.Edges)-1 {
			if _, err := bw.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	return bw.Flush()
}

// Header sanity caps for ReadBinary. VertexID is 32-bit, so a valid file
// can never name more vertices than fit in one; the edge cap bounds
// directed adjacency entries at 2^33 (32 GiB of payload) — generous for
// any real dataset while rejecting absurd counts up front.
const (
	binaryMaxVertices = uint64(1) << 32
	binaryMaxEdges    = uint64(1) << 33
	binaryReadChunk   = uint64(1) << 16 // entries read (and allocated) per step
)

// ReadBinary deserializes a CSR written by WriteBinary. Corrupt or
// truncated input fails with an explicit error rather than a huge
// allocation: header counts are sanity-capped, the offsets and edge
// arrays grow chunk by chunk as payload actually arrives (a lying header
// hits "truncated" long before exhausting memory), and the final graph
// is structurally validated.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 4+3*8) // magic + version, nv, ne
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("graph: truncated binary header: %w", err)
	}
	if string(hdr[:4]) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", hdr[:4])
	}
	version := binary.LittleEndian.Uint64(hdr[4:])
	nv := binary.LittleEndian.Uint64(hdr[12:])
	ne := binary.LittleEndian.Uint64(hdr[20:])
	if version != uint64(binaryVersion) {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	if nv > binaryMaxVertices {
		return nil, fmt.Errorf("graph: header claims %d vertices (max %d)", nv, binaryMaxVertices)
	}
	if ne > binaryMaxEdges {
		return nil, fmt.Errorf("graph: header claims %d adjacency entries (max %d)", ne, binaryMaxEdges)
	}
	buf := make([]byte, 8*binaryReadChunk)
	offsets := make([]int64, 0, min(nv+1, binaryReadChunk))
	for remaining := nv + 1; remaining > 0; {
		c := min(remaining, binaryReadChunk)
		b := buf[:8*c]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("graph: truncated offsets (%d of %d read): %w",
				len(offsets), nv+1, err)
		}
		for i := uint64(0); i < c; i++ {
			offsets = append(offsets, int64(binary.LittleEndian.Uint64(b[8*i:])))
		}
		remaining -= c
	}
	if last := offsets[nv]; last != int64(ne) {
		return nil, fmt.Errorf("graph: offsets end at %d but header claims %d adjacency entries", last, ne)
	}
	edges := make([]VertexID, 0, min(ne, 2*binaryReadChunk))
	for remaining := ne; remaining > 0; {
		c := min(remaining, 2*binaryReadChunk)
		b := buf[:4*c]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("graph: truncated edges (%d of %d read): %w",
				len(edges), ne, err)
		}
		for i := uint64(0); i < c; i++ {
			edges = append(edges, binary.LittleEndian.Uint32(b[4*i:]))
		}
		remaining -= c
	}
	g := &CSR{Offsets: offsets, Edges: edges}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary payload invalid: %w", err)
	}
	return g, nil
}

// saveAtomic writes via a temp file in the target directory, fsyncs,
// and renames into place, so a crash mid-write never leaves a corrupt
// file at path — the same idiom benchsuite uses for -json emission.
func saveAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// SaveBinaryFile atomically writes the graph to path in binary CSR
// format (temp file + fsync + rename).
func SaveBinaryFile(path string, g *CSR) error {
	return saveAtomic(path, func(w io.Writer) error { return WriteBinary(w, g) })
}

// LoadBinaryFile reads a binary CSR file from disk.
func LoadBinaryFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
