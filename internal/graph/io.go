package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// This file provides two interchange formats:
//
//   - SNAP-style whitespace-separated edge lists ("u v" per line, '#'
//     comments), so the real paper datasets can be dropped in when
//     available;
//   - a compact little-endian binary CSR format for fast reload of
//     generated datasets ("BCSR" magic, version, counts, offsets, edges).

// ReadEdgeList parses a SNAP-format undirected edge list. Vertex IDs may
// be sparse; they are densified in first-appearance order. Returns the
// graph and the number of input lines used.
func ReadEdgeList(r io.Reader) (*CSR, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	ids := make(map[uint64]VertexID)
	var edges []Edge
	lines := 0
	lookup := func(raw uint64) VertexID {
		if id, ok := ids[raw]; ok {
			return id
		}
		id := VertexID(len(ids))
		ids[raw] = id
		return id
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("graph: malformed edge line %q", line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: bad vertex %q: %v", fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: bad vertex %q: %v", fields[1], err)
		}
		edges = append(edges, Edge{U: lookup(u), V: lookup(v)})
		lines++
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	g, err := FromEdgeList(len(ids), edges)
	return g, lines, err
}

// LoadEdgeListFile reads a SNAP edge-list file from disk.
func LoadEdgeListFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, _, err := ReadEdgeList(f)
	return g, err
}

// WriteEdgeList writes each undirected edge once as "u v" lines.
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < g.NumVertices(); v++ {
		for _, d := range g.Neighbors(VertexID(v)) {
			if VertexID(v) < d {
				if _, err := fmt.Fprintf(bw, "%d %d\n", v, d); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

const (
	binaryMagic   = "BCSR"
	binaryVersion = uint32(1)
)

// WriteBinary serializes the CSR in the compact binary format.
func WriteBinary(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := []uint64{
		uint64(binaryVersion),
		uint64(g.NumVertices()),
		uint64(len(g.Edges)),
	}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, o := range g.Offsets {
		if err := binary.Write(bw, binary.LittleEndian, uint64(o)); err != nil {
			return err
		}
	}
	// Edges written in bulk via a reusable chunk to bound allocation.
	const chunk = 1 << 16
	buf := make([]byte, 0, chunk*4)
	for i, e := range g.Edges {
		buf = binary.LittleEndian.AppendUint32(buf, e)
		if len(buf) == cap(buf) || i == len(g.Edges)-1 {
			if _, err := bw.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a CSR written by WriteBinary.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var version, nv, ne uint64
	for _, p := range []*uint64{&version, &nv, &ne} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if uint32(version) != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	g := &CSR{
		Offsets: make([]int64, nv+1),
		Edges:   make([]VertexID, ne),
	}
	for i := range g.Offsets {
		var o uint64
		if err := binary.Read(br, binary.LittleEndian, &o); err != nil {
			return nil, err
		}
		g.Offsets[i] = int64(o)
	}
	raw := make([]byte, 4)
	for i := range g.Edges {
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, err
		}
		g.Edges[i] = binary.LittleEndian.Uint32(raw)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary payload invalid: %w", err)
	}
	return g, nil
}

// SaveBinaryFile writes the graph to path in binary CSR format.
func SaveBinaryFile(path string, g *CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinaryFile reads a binary CSR file from disk.
func LoadBinaryFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
