package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// BCSR v3 is the shard-major successor to v2: the CSR is stored
// partition-first so an out-of-core runner can map one shard's sections
// at a time instead of the whole payload, mirroring GraphScale's
// partition-major layout where each engine streams only its own slice
// plus the boundary data. On-disk layout (header fields always
// little-endian):
//
//	[0:4)    magic "BCSR"
//	[4:12)   version    uint64 = 3
//	[12:16)  flags      uint32 — bit 0: payload byte order (0 = LE,
//	         1 = BE, detection only); bit 1: edges sorted ascending
//	[16:24)  numVertices uint64
//	[24:32)  numEdges    uint64 (directed adjacency entries, global)
//	[32:36)  shards      uint32 — partition count K ≥ 1
//	[36:40)  strategy    uint32 — V3Partition* code of the assignment
//	[40:48)  sourceHash  uint64 — ContentHash of the source CSR (the
//	         partition-cache key)
//	[48:52)  metaSum     uint32 — CRC32-C of the meta section
//	[52:56)  reserved    uint32 = 0
//	[56:64)  headerSum   uint64 — FNV-1a over header bytes [0:56)
//
// The meta section starts at offset 64: parts (numVertices × int32),
// zero-padded to 8 bytes, then cutEdges uint64 + boundary uint64 (the
// partition.Classify totals the sharded engine reports), then the shard
// directory: K records of 10 uint64s {offsetsOff, edgesOff, vmapOff,
// bndOff, nvLocal, neLocal, nBoundary, nbEdges, sumA, sumB} where sumA
// packs CRC32-C(offsets)<<32|CRC32-C(edges) and sumB packs
// CRC32-C(vmap)<<32|CRC32-C(bnd).
//
// Each shard then contributes four 64-byte-aligned sections in order:
//
//	offsets  (nvLocal+1) × int64 — local CSR offsets
//	edges    neLocal × uint32    — full global adjacency of the shard's
//	         vertices, concatenated in vmap order (verbatim from the
//	         source CSR, so the global graph reconstructs exactly)
//	vmap     nvLocal × uint32    — ascending global IDs (local→global)
//	bnd      boundary block, empty when nBoundary == 0, else
//	         [boffsets (nBoundary+1)×int64 | bverts nBoundary×uint32 |
//	          bedges nbEdges×uint32] — per frontier vertex, its u<v
//	         adjacency in source order (exactly the entries the bounded
//	         second phase walks)
//
// Section placement is fully determined by the counts, so a reader
// recomputes the layout and rejects any directory that disagrees — a
// lying directory can never alias sections or leak padding. The bnd
// block's vertex set is the write-time frontier mask, which equals the
// fixpoint of the runtime phase-1 marks at any schedule (a vertex is
// marked iff some lower neighbor is cross-shard or itself marked), so a
// streaming run needs no whole-graph adjacency to resolve the frontier.
const (
	binaryV3Version    = uint64(3)
	binaryV3HeaderSize = 64
	binaryV3Align      = 64
	binaryV3DirRecord  = 80

	binaryV3FlagBigEndian = uint32(1) << 0
	binaryV3FlagSorted    = uint32(1) << 1

	// binaryMaxShards caps the partition count a header may claim.
	binaryMaxShards = uint64(1) << 20
)

// Partition strategy codes persisted in the v3 header. They mirror the
// coloring package's strategy names (partition.StrategyCode maps
// between the two) so a cached assignment is only reused when the same
// strategy is requested.
const (
	V3PartitionRanges    = uint32(0)
	V3PartitionLabelProp = uint32(1)

	v3MaxStrategy = V3PartitionLabelProp
)

// ContentHash fingerprints a CSR as FNV-1a-64 over its stored
// little-endian representation (offsets bytes, then edges bytes) — the
// partition-cache key: a v3 file whose sourceHash matches a graph's
// ContentHash holds a valid assignment for exactly that graph.
func ContentHash(g *CSR) uint64 {
	if hostLittleEndian() {
		return fnv1a(fnv1a(fnvOffset64, offsetsBytes(g)), edgesBytes(g))
	}
	h := fnvOffset64
	var b [8]byte
	for _, o := range g.Offsets {
		binary.LittleEndian.PutUint64(b[:], uint64(o))
		h = fnv1a(h, b[:])
	}
	for _, e := range g.Edges {
		binary.LittleEndian.PutUint32(b[:4], e)
		h = fnv1a(h, b[:4])
	}
	return h
}

// v3Audit computes, in one adjacency sweep, the structural facts v3
// persists: the frontier mask (mask[v] iff some lower neighbor u<v is
// cross-part or itself masked — the schedule-independent fixpoint of
// the sharded engine's phase-1 marks), plus cut edges and boundary
// vertices with partition.Classify semantics.
func v3Audit(g *CSR, parts []int32) (mask []bool, cutEdges int64, boundary int) {
	n := g.NumVertices()
	mask = make([]bool, n)
	for v := 0; v < n; v++ {
		pv := parts[v]
		cross := false
		for _, u := range g.Neighbors(VertexID(v)) {
			if parts[u] != pv {
				cross = true
				if VertexID(v) < u {
					cutEdges++
				}
				if u < VertexID(v) {
					mask[v] = true
				}
			} else if u < VertexID(v) && mask[u] {
				mask[v] = true
			}
		}
		if cross {
			boundary++
		}
	}
	return mask, cutEdges, boundary
}

// FrontierMask returns the frontier mask of an assignment: mask[v]
// reports whether the sharded engine's interior pass defers v to the
// frontier phase (directly cross-shard below, or downstream of a
// deferred lower neighbor in its own shard).
func FrontierMask(g *CSR, parts []int32) []bool {
	mask, _, _ := v3Audit(g, parts)
	return mask
}

// v3HeaderFields holds the parsed and verified v3 header.
type v3HeaderFields struct {
	flags      uint32
	nv, ne     uint64
	shards     uint32
	strategy   uint32
	sourceHash uint64
	metaSum    uint32
}

func (f v3HeaderFields) sorted() bool { return f.flags&binaryV3FlagSorted != 0 }

// v3MetaLen is the meta-section size implied by the header counts alone,
// so a reader can size its read before trusting any directory bytes.
func v3MetaLen(nv uint64, shards uint32) uint64 {
	partsLen := (nv*4 + 7) &^ 7
	return partsLen + 16 + uint64(shards)*binaryV3DirRecord
}

// v3ShardDir is one shard's directory record: section offsets, element
// counts and packed section checksums.
type v3ShardDir struct {
	offsetsOff, edgesOff, vmapOff, bndOff uint64
	nvLocal, neLocal, nBoundary, nbEdges  uint64
	sumA, sumB                            uint64
}

// bndLen is the boundary block's byte length (0 when the shard has no
// frontier vertices — no section at all, not an empty prefix array).
func (d *v3ShardDir) bndLen() uint64 {
	if d.nBoundary == 0 {
		return 0
	}
	return (d.nBoundary+1)*8 + d.nBoundary*4 + d.nbEdges*4
}

func align64(x uint64) uint64 { return (x + binaryV3Align - 1) &^ (binaryV3Align - 1) }

// v3PlaceSections fills the directory's section offsets from its counts
// and returns the total (64-byte padded) file size. Placement is a pure
// function of the counts: readers recompute it and require the stored
// directory to agree byte for byte.
func v3PlaceSections(nv uint64, dir []v3ShardDir) uint64 {
	cur := align64(binaryV3HeaderSize + v3MetaLen(nv, uint32(len(dir))))
	for s := range dir {
		d := &dir[s]
		d.offsetsOff = cur
		d.edgesOff = align64(d.offsetsOff + (d.nvLocal+1)*8)
		d.vmapOff = align64(d.edgesOff + d.neLocal*4)
		d.bndOff = align64(d.vmapOff + d.nvLocal*4)
		cur = align64(d.bndOff + d.bndLen())
	}
	return cur
}

// v3Header assembles and checksums the 64-byte header.
func v3Header(f v3HeaderFields) [binaryV3HeaderSize]byte {
	var hdr [binaryV3HeaderSize]byte
	copy(hdr[0:4], binaryMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], binaryV3Version)
	binary.LittleEndian.PutUint32(hdr[12:16], f.flags)
	binary.LittleEndian.PutUint64(hdr[16:24], f.nv)
	binary.LittleEndian.PutUint64(hdr[24:32], f.ne)
	binary.LittleEndian.PutUint32(hdr[32:36], f.shards)
	binary.LittleEndian.PutUint32(hdr[36:40], f.strategy)
	binary.LittleEndian.PutUint64(hdr[40:48], f.sourceHash)
	binary.LittleEndian.PutUint32(hdr[48:52], f.metaSum)
	binary.LittleEndian.PutUint64(hdr[56:64], fnv1a(fnvOffset64, hdr[:56]))
	return hdr
}

// parseV3Header validates a raw 64-byte v3 header: magic, version,
// header checksum, flag/strategy domain and sanity caps.
func parseV3Header(hdr []byte) (v3HeaderFields, error) {
	var f v3HeaderFields
	if len(hdr) < binaryV3HeaderSize {
		return f, fmt.Errorf("graph: truncated v3 header (%d bytes)", len(hdr))
	}
	hdr = hdr[:binaryV3HeaderSize]
	if string(hdr[:4]) != binaryMagic {
		return f, fmt.Errorf("graph: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint64(hdr[4:12]); v != binaryV3Version {
		return f, fmt.Errorf("graph: unsupported version %d (want %d)", v, binaryV3Version)
	}
	if got, want := fnv1a(fnvOffset64, hdr[:56]), binary.LittleEndian.Uint64(hdr[56:64]); got != want {
		return f, fmt.Errorf("graph: v3 header checksum mismatch (got %#x, want %#x)", got, want)
	}
	f.flags = binary.LittleEndian.Uint32(hdr[12:16])
	f.nv = binary.LittleEndian.Uint64(hdr[16:24])
	f.ne = binary.LittleEndian.Uint64(hdr[24:32])
	f.shards = binary.LittleEndian.Uint32(hdr[32:36])
	f.strategy = binary.LittleEndian.Uint32(hdr[36:40])
	f.sourceHash = binary.LittleEndian.Uint64(hdr[40:48])
	f.metaSum = binary.LittleEndian.Uint32(hdr[48:52])
	if f.flags&^(binaryV3FlagBigEndian|binaryV3FlagSorted) != 0 {
		return f, fmt.Errorf("graph: unknown v3 flags %#x", f.flags)
	}
	if rsv := binary.LittleEndian.Uint32(hdr[52:56]); rsv != 0 {
		return f, fmt.Errorf("graph: v3 reserved header field %#x nonzero", rsv)
	}
	if f.nv > binaryMaxVertices {
		return f, fmt.Errorf("graph: header claims %d vertices (max %d)", f.nv, binaryMaxVertices)
	}
	if f.ne > binaryMaxEdges {
		return f, fmt.Errorf("graph: header claims %d adjacency entries (max %d)", f.ne, binaryMaxEdges)
	}
	if f.shards == 0 || uint64(f.shards) > binaryMaxShards {
		return f, fmt.Errorf("graph: header claims %d shards (want 1..%d)", f.shards, binaryMaxShards)
	}
	if f.strategy > v3MaxStrategy {
		return f, fmt.Errorf("graph: unknown v3 partition strategy code %d", f.strategy)
	}
	return f, nil
}

// v3Meta is the parsed and verified meta section.
type v3Meta struct {
	parts    []int32
	cutEdges uint64
	boundary uint64
	dir      []v3ShardDir
	fileSize uint64
}

// parseV3Meta validates the meta section bytes against the header: CRC,
// part domain, count sums, and — decisively — that the stored directory
// equals the layout recomputed from its own counts.
func parseV3Meta(meta []byte, f v3HeaderFields) (*v3Meta, error) {
	if uint64(len(meta)) != v3MetaLen(f.nv, f.shards) {
		return nil, fmt.Errorf("graph: v3 meta section is %d bytes (layout needs %d)",
			len(meta), v3MetaLen(f.nv, f.shards))
	}
	if got := crc32.Checksum(meta, crcTable); got != f.metaSum {
		return nil, fmt.Errorf("graph: v3 meta checksum mismatch (got %#x, want %#x)", got, f.metaSum)
	}
	m := &v3Meta{parts: make([]int32, f.nv)}
	for i := range m.parts {
		p := int32(binary.LittleEndian.Uint32(meta[4*i:]))
		if p < 0 || uint32(p) >= f.shards {
			return nil, fmt.Errorf("graph: v3 part %d for vertex %d out of range [0,%d)", p, i, f.shards)
		}
		m.parts[i] = p
	}
	pos := (f.nv*4 + 7) &^ 7
	for i := f.nv * 4; i < pos; i++ {
		if meta[i] != 0 {
			return nil, fmt.Errorf("graph: v3 meta padding byte %d nonzero", i)
		}
	}
	m.cutEdges = binary.LittleEndian.Uint64(meta[pos:])
	m.boundary = binary.LittleEndian.Uint64(meta[pos+8:])
	if m.boundary > f.nv {
		return nil, fmt.Errorf("graph: v3 claims %d boundary vertices of %d total", m.boundary, f.nv)
	}
	if m.cutEdges > f.ne {
		return nil, fmt.Errorf("graph: v3 claims %d cut edges with %d adjacency entries", m.cutEdges, f.ne)
	}
	pos += 16
	m.dir = make([]v3ShardDir, f.shards)
	var sumNV, sumNE uint64
	for s := range m.dir {
		rec := meta[pos+uint64(s)*binaryV3DirRecord:]
		d := &m.dir[s]
		d.offsetsOff = binary.LittleEndian.Uint64(rec[0:])
		d.edgesOff = binary.LittleEndian.Uint64(rec[8:])
		d.vmapOff = binary.LittleEndian.Uint64(rec[16:])
		d.bndOff = binary.LittleEndian.Uint64(rec[24:])
		d.nvLocal = binary.LittleEndian.Uint64(rec[32:])
		d.neLocal = binary.LittleEndian.Uint64(rec[40:])
		d.nBoundary = binary.LittleEndian.Uint64(rec[48:])
		d.nbEdges = binary.LittleEndian.Uint64(rec[56:])
		d.sumA = binary.LittleEndian.Uint64(rec[64:])
		d.sumB = binary.LittleEndian.Uint64(rec[72:])
		if d.nvLocal > f.nv || d.neLocal > f.ne || d.nBoundary > d.nvLocal || d.nbEdges > d.neLocal {
			return nil, fmt.Errorf("graph: v3 shard %d directory counts out of range", s)
		}
		sumNV += d.nvLocal
		sumNE += d.neLocal
	}
	if sumNV != f.nv || sumNE != f.ne {
		return nil, fmt.Errorf("graph: v3 shard counts sum to %d vertices / %d entries (header claims %d / %d)",
			sumNV, sumNE, f.nv, f.ne)
	}
	want := append([]v3ShardDir(nil), m.dir...)
	m.fileSize = v3PlaceSections(f.nv, want)
	for s := range want {
		w, d := &want[s], &m.dir[s]
		if w.offsetsOff != d.offsetsOff || w.edgesOff != d.edgesOff ||
			w.vmapOff != d.vmapOff || w.bndOff != d.bndOff {
			return nil, fmt.Errorf("graph: v3 shard %d section offsets inconsistent with counts", s)
		}
	}
	return m, nil
}

// v3VertexLists buckets vertices per shard, ascending within each (a
// counting sort — the same list construction partition.VertexLists
// uses, re-derived here because graph cannot import partition).
func v3VertexLists(parts []int32, k int) [][]VertexID {
	buf := make([]VertexID, len(parts))
	offsets := make([]int, k+1)
	for _, p := range parts {
		offsets[p+1]++
	}
	for p := 1; p <= k; p++ {
		offsets[p] += offsets[p-1]
	}
	next := append([]int(nil), offsets[:k]...)
	for v, p := range parts {
		buf[next[p]] = VertexID(v)
		next[p]++
	}
	lists := make([][]VertexID, k)
	for p := 0; p < k; p++ {
		lists[p] = buf[offsets[p]:offsets[p+1]]
	}
	return lists
}

// v3ShardEncoder builds one shard's four sections as stored bytes,
// reusing its buffers across shards so the writer's peak allocation is
// one (largest) shard rather than the whole payload.
type v3ShardEncoder struct {
	offsets, edges, vmap, bnd []byte
}

func v3Grow(b []byte, n uint64) []byte {
	if uint64(cap(b)) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// encode fills the encoder's buffers with shard d's sections. Every
// byte of each buffer is overwritten, so reuse needs no zeroing.
func (e *v3ShardEncoder) encode(g *CSR, mask []bool, list []VertexID, d *v3ShardDir) {
	e.offsets = v3Grow(e.offsets, (d.nvLocal+1)*8)
	e.edges = v3Grow(e.edges, d.neLocal*4)
	e.vmap = v3Grow(e.vmap, d.nvLocal*4)
	e.bnd = v3Grow(e.bnd, d.bndLen())
	binary.LittleEndian.PutUint64(e.offsets[0:], 0)
	var off int64
	epos := 0
	for i, v := range list {
		binary.LittleEndian.PutUint32(e.vmap[4*i:], uint32(v))
		for _, u := range g.Neighbors(v) {
			binary.LittleEndian.PutUint32(e.edges[epos:], uint32(u))
			epos += 4
		}
		off += g.Offsets[v+1] - g.Offsets[v]
		binary.LittleEndian.PutUint64(e.offsets[8*(i+1):], uint64(off))
	}
	if d.nBoundary == 0 {
		return
	}
	bvertsOff := (d.nBoundary + 1) * 8
	bedgesOff := bvertsOff + d.nBoundary*4
	bi := uint64(0)
	var bcount uint64
	binary.LittleEndian.PutUint64(e.bnd[0:], 0)
	for _, v := range list {
		if !mask[v] {
			continue
		}
		binary.LittleEndian.PutUint32(e.bnd[bvertsOff+4*bi:], uint32(v))
		for _, u := range g.Neighbors(v) {
			if u < v {
				binary.LittleEndian.PutUint32(e.bnd[bedgesOff:], uint32(u))
				bedgesOff += 4
				bcount++
			}
		}
		bi++
		binary.LittleEndian.PutUint64(e.bnd[8*bi:], bcount)
	}
}

// encodeV3Meta renders the meta section (parts, totals, directory).
func encodeV3Meta(parts []int32, cutEdges, boundary uint64, dir []v3ShardDir) []byte {
	nv := uint64(len(parts))
	meta := make([]byte, v3MetaLen(nv, uint32(len(dir))))
	for i, p := range parts {
		binary.LittleEndian.PutUint32(meta[4*i:], uint32(p))
	}
	pos := (nv*4 + 7) &^ 7
	binary.LittleEndian.PutUint64(meta[pos:], cutEdges)
	binary.LittleEndian.PutUint64(meta[pos+8:], boundary)
	pos += 16
	for s := range dir {
		d := &dir[s]
		rec := meta[pos+uint64(s)*binaryV3DirRecord:]
		for i, x := range [...]uint64{d.offsetsOff, d.edgesOff, d.vmapOff, d.bndOff,
			d.nvLocal, d.neLocal, d.nBoundary, d.nbEdges, d.sumA, d.sumB} {
			binary.LittleEndian.PutUint64(rec[8*i:], x)
		}
	}
	return meta
}

// WriteBinaryV3 serializes the CSR plus its partition assignment in the
// shard-major v3 format. parts must assign every vertex to [0,k);
// strategy is the V3Partition* code recorded for cache validation. The
// writer encodes each shard twice (once for checksums, once to emit) so
// its transient memory stays at one shard instead of the whole payload.
func WriteBinaryV3(w io.Writer, g *CSR, parts []int32, k int, strategy uint32) error {
	nv, ne := uint64(g.NumVertices()), uint64(len(g.Edges))
	if k < 1 || uint64(k) > binaryMaxShards {
		return fmt.Errorf("graph: v3 shard count %d out of range [1,%d]", k, binaryMaxShards)
	}
	if uint64(len(parts)) != nv {
		return fmt.Errorf("graph: v3 assignment covers %d of %d vertices", len(parts), nv)
	}
	if strategy > v3MaxStrategy {
		return fmt.Errorf("graph: unknown v3 partition strategy code %d", strategy)
	}
	for v, p := range parts {
		if p < 0 || int(p) >= k {
			return fmt.Errorf("graph: v3 part %d for vertex %d out of range [0,%d)", p, v, k)
		}
	}
	mask, cut, boundary := v3Audit(g, parts)
	lists := v3VertexLists(parts, k)
	dir := make([]v3ShardDir, k)
	for s, list := range lists {
		d := &dir[s]
		d.nvLocal = uint64(len(list))
		for _, v := range list {
			d.neLocal += uint64(g.Offsets[v+1] - g.Offsets[v])
			if mask[v] {
				d.nBoundary++
				for _, u := range g.Neighbors(v) {
					if u < v {
						d.nbEdges++
					}
				}
			}
		}
	}
	v3PlaceSections(nv, dir)
	var enc v3ShardEncoder
	for s := range dir {
		enc.encode(g, mask, lists[s], &dir[s])
		dir[s].sumA = uint64(crc32.Checksum(enc.offsets, crcTable))<<32 |
			uint64(crc32.Checksum(enc.edges, crcTable))
		dir[s].sumB = uint64(crc32.Checksum(enc.vmap, crcTable))<<32 |
			uint64(crc32.Checksum(enc.bnd, crcTable))
	}
	meta := encodeV3Meta(parts, uint64(cut), uint64(boundary), dir)
	f := v3HeaderFields{nv: nv, ne: ne, shards: uint32(k), strategy: strategy,
		sourceHash: ContentHash(g), metaSum: crc32.Checksum(meta, crcTable)}
	if g.EdgesSorted() {
		f.flags |= binaryV3FlagSorted
	}
	hdr := v3Header(f)
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.Write(meta); err != nil {
		return err
	}
	cur := uint64(binaryV3HeaderSize) + uint64(len(meta))
	var zeros [binaryV3Align]byte
	emit := func(off uint64, b []byte) error {
		for cur < off {
			n := min(off-cur, uint64(len(zeros)))
			if _, err := bw.Write(zeros[:n]); err != nil {
				return err
			}
			cur += n
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		cur += uint64(len(b))
		return nil
	}
	for s := range dir {
		d := &dir[s]
		enc.encode(g, mask, lists[s], d)
		if err := emit(d.offsetsOff, enc.offsets); err != nil {
			return err
		}
		if err := emit(d.edgesOff, enc.edges); err != nil {
			return err
		}
		if err := emit(d.vmapOff, enc.vmap); err != nil {
			return err
		}
		if err := emit(d.bndOff, enc.bnd); err != nil {
			return err
		}
	}
	if err := emit(align64(cur), nil); err != nil { // trailing pad
		return err
	}
	return bw.Flush()
}

// SaveBinaryV3File atomically writes the graph and assignment to path
// in v3 format (temp file + fsync + rename, like SaveBinaryV2File).
func SaveBinaryV3File(path string, g *CSR, parts []int32, k int, strategy uint32) error {
	return saveAtomic(path, func(w io.Writer) error { return WriteBinaryV3(w, g, parts, k, strategy) })
}

// V3Meta is the partition metadata a v3 file carries alongside the
// graph — everything the sharded engine otherwise computes at run time.
type V3Meta struct {
	Shards      int
	Strategy    uint32
	SourceHash  uint64
	EdgesSorted bool
	Parts       []int32
	CutEdges    int64
	Boundary    int
}

// readV3Bytes reads exactly n bytes through scratch-sized chunks,
// growing the result with the data so a lying header cannot balloon
// allocation past what the stream actually delivers.
func readV3Bytes(br io.Reader, scratch []byte, n uint64, what string) ([]byte, error) {
	out := make([]byte, 0, min(n, uint64(len(scratch))))
	for remaining := n; remaining > 0; {
		c := min(remaining, uint64(len(scratch)))
		b := scratch[:c]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("graph: truncated v3 %s (%d of %d bytes read): %w",
				what, uint64(len(out)), n, err)
		}
		out = append(out, b...)
		remaining -= c
	}
	return out, nil
}

// decodeV3Shard decodes and structurally validates one shard's main
// sections from their stored bytes: local offsets monotone and
// terminal, edge destinations in range, vmap strictly ascending and
// owned by shard s.
func decodeV3Shard(s int, d *v3ShardDir, nv uint64, parts []int32, offB, edgeB, vmapB []byte) (offsets []int64, edges, vmap []VertexID, err error) {
	offsets = make([]int64, d.nvLocal+1)
	for i := range offsets {
		offsets[i] = int64(binary.LittleEndian.Uint64(offB[8*i:]))
	}
	if offsets[0] != 0 {
		return nil, nil, nil, fmt.Errorf("graph: v3 shard %d offsets start at %d", s, offsets[0])
	}
	for i := uint64(1); i <= d.nvLocal; i++ {
		if offsets[i] < offsets[i-1] {
			return nil, nil, nil, fmt.Errorf("graph: v3 shard %d offsets decrease at %d", s, i)
		}
	}
	if offsets[d.nvLocal] != int64(d.neLocal) {
		return nil, nil, nil, fmt.Errorf("graph: v3 shard %d offsets end at %d (directory claims %d entries)",
			s, offsets[d.nvLocal], d.neLocal)
	}
	edges = make([]VertexID, d.neLocal)
	for i := range edges {
		e := binary.LittleEndian.Uint32(edgeB[4*i:])
		if uint64(e) >= nv {
			return nil, nil, nil, fmt.Errorf("graph: v3 shard %d edge destination %d out of range", s, e)
		}
		edges[i] = e
	}
	vmap = make([]VertexID, d.nvLocal)
	for i := range vmap {
		v := binary.LittleEndian.Uint32(vmapB[4*i:])
		if uint64(v) >= nv || parts[v] != int32(s) {
			return nil, nil, nil, fmt.Errorf("graph: v3 shard %d vmap entry %d not a shard vertex", s, v)
		}
		if i > 0 && v <= uint32(vmap[i-1]) {
			return nil, nil, nil, fmt.Errorf("graph: v3 shard %d vmap not strictly ascending at %d", s, i)
		}
		vmap[i] = v
	}
	return offsets, edges, vmap, nil
}

// decodeV3Bnd decodes and validates one shard's boundary block: prefix
// offsets monotone and terminal, frontier vertices strictly ascending
// and owned by shard s, every stored edge strictly below its vertex.
func decodeV3Bnd(s int, d *v3ShardDir, nv uint64, parts []int32, bndB []byte) (boffsets []int64, bverts, bedges []VertexID, err error) {
	if d.nBoundary == 0 {
		return nil, nil, nil, nil
	}
	boffsets = make([]int64, d.nBoundary+1)
	for i := range boffsets {
		boffsets[i] = int64(binary.LittleEndian.Uint64(bndB[8*i:]))
	}
	if boffsets[0] != 0 || boffsets[d.nBoundary] != int64(d.nbEdges) {
		return nil, nil, nil, fmt.Errorf("graph: v3 shard %d boundary offsets malformed", s)
	}
	bvertsOff := (d.nBoundary + 1) * 8
	bedgesOff := bvertsOff + d.nBoundary*4
	bverts = make([]VertexID, d.nBoundary)
	bedges = make([]VertexID, d.nbEdges)
	for i := range bverts {
		v := binary.LittleEndian.Uint32(bndB[bvertsOff+4*uint64(i):])
		if uint64(v) >= nv || parts[v] != int32(s) {
			return nil, nil, nil, fmt.Errorf("graph: v3 shard %d frontier vertex %d not a shard vertex", s, v)
		}
		if i > 0 && v <= uint32(bverts[i-1]) {
			return nil, nil, nil, fmt.Errorf("graph: v3 shard %d frontier vertices not ascending at %d", s, i)
		}
		bverts[i] = v
		if boffsets[i+1] < boffsets[i] {
			return nil, nil, nil, fmt.Errorf("graph: v3 shard %d boundary offsets decrease at %d", s, i)
		}
		for j := boffsets[i]; j < boffsets[i+1]; j++ {
			u := binary.LittleEndian.Uint32(bndB[bedgesOff+4*uint64(j):])
			if u >= v {
				return nil, nil, nil, fmt.Errorf("graph: v3 shard %d boundary edge %d not below vertex %d", s, u, v)
			}
			bedges[j] = u
		}
	}
	return boffsets, bverts, bedges, nil
}

// ReadBinaryV3 deserializes a v3 stream by copying, reconstructing the
// global CSR from the shard-major sections and returning the persisted
// partition metadata. Every layer is verified: header and meta
// checksums, per-section CRCs, structural invariants, the source
// content hash against the reconstructed graph, and the boundary blocks
// against a recomputed frontier mask — a v3 file that loads here is
// guaranteed to stream correctly.
func ReadBinaryV3(r io.Reader) (*CSR, *V3Meta, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr := make([]byte, binaryV3HeaderSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, nil, fmt.Errorf("graph: truncated v3 header: %w", err)
	}
	f, err := parseV3Header(hdr)
	if err != nil {
		return nil, nil, err
	}
	if f.flags&binaryV3FlagBigEndian != 0 {
		return nil, nil, fmt.Errorf("graph: v3 big-endian payloads not supported (writers emit little-endian only)")
	}
	scratch := make([]byte, 8*binaryReadChunk)
	metaBytes, err := readV3Bytes(br, scratch, v3MetaLen(f.nv, f.shards), "meta section")
	if err != nil {
		return nil, nil, err
	}
	m, err := parseV3Meta(metaBytes, f)
	if err != nil {
		return nil, nil, err
	}
	cur := uint64(binaryV3HeaderSize) + uint64(len(metaBytes))
	section := func(off, n uint64, what string) ([]byte, error) {
		if off < cur {
			return nil, fmt.Errorf("graph: v3 %s offset %d behind stream position %d", what, off, cur)
		}
		if off > cur {
			if _, err := io.CopyN(io.Discard, br, int64(off-cur)); err != nil {
				return nil, fmt.Errorf("graph: truncated v3 padding before %s: %w", what, err)
			}
			cur = off
		}
		b, err := readV3Bytes(br, scratch, n, what)
		if err != nil {
			return nil, err
		}
		cur += n
		return b, nil
	}
	type shardPayload struct {
		offsets  []int64
		edges    []VertexID
		vmap     []VertexID
		boffsets []int64
		bverts   []VertexID
		bedges   []VertexID
	}
	shards := make([]shardPayload, f.shards)
	for s := range shards {
		d := &m.dir[s]
		offB, err := section(d.offsetsOff, (d.nvLocal+1)*8, fmt.Sprintf("shard %d offsets", s))
		if err != nil {
			return nil, nil, err
		}
		edgeB, err := section(d.edgesOff, d.neLocal*4, fmt.Sprintf("shard %d edges", s))
		if err != nil {
			return nil, nil, err
		}
		vmapB, err := section(d.vmapOff, d.nvLocal*4, fmt.Sprintf("shard %d vmap", s))
		if err != nil {
			return nil, nil, err
		}
		bndB, err := section(d.bndOff, d.bndLen(), fmt.Sprintf("shard %d boundary block", s))
		if err != nil {
			return nil, nil, err
		}
		sumA := uint64(crc32.Checksum(offB, crcTable))<<32 | uint64(crc32.Checksum(edgeB, crcTable))
		sumB := uint64(crc32.Checksum(vmapB, crcTable))<<32 | uint64(crc32.Checksum(bndB, crcTable))
		if sumA != d.sumA || sumB != d.sumB {
			return nil, nil, fmt.Errorf("graph: v3 shard %d section checksum mismatch", s)
		}
		sp := &shards[s]
		if sp.offsets, sp.edges, sp.vmap, err = decodeV3Shard(s, d, f.nv, m.parts, offB, edgeB, vmapB); err != nil {
			return nil, nil, err
		}
		if sp.boffsets, sp.bverts, sp.bedges, err = decodeV3Bnd(s, d, f.nv, m.parts, bndB); err != nil {
			return nil, nil, err
		}
	}
	g := &CSR{Offsets: make([]int64, f.nv+1)}
	for s := range shards {
		sp := &shards[s]
		for i, v := range sp.vmap {
			g.Offsets[v+1] = sp.offsets[i+1] - sp.offsets[i]
		}
	}
	for v := uint64(0); v < f.nv; v++ {
		g.Offsets[v+1] += g.Offsets[v]
	}
	g.Edges = make([]VertexID, f.ne)
	for s := range shards {
		sp := &shards[s]
		for i, v := range sp.vmap {
			copy(g.Edges[g.Offsets[v]:g.Offsets[v+1]], sp.edges[sp.offsets[i]:sp.offsets[i+1]])
		}
		sp.offsets, sp.edges = nil, nil // keep only boundary data for the audit
	}
	if err := g.Validate(); err != nil {
		return nil, nil, fmt.Errorf("graph: v3 payload invalid: %w", err)
	}
	if got := ContentHash(g); got != f.sourceHash {
		return nil, nil, fmt.Errorf("graph: v3 source hash mismatch (got %#x, want %#x)", got, f.sourceHash)
	}
	if f.sorted() != g.EdgesSorted() {
		return nil, nil, fmt.Errorf("graph: v3 sorted flag %v disagrees with payload", f.sorted())
	}
	mask, cut, boundary := v3Audit(g, m.parts)
	if uint64(cut) != m.cutEdges || uint64(boundary) != m.boundary {
		return nil, nil, fmt.Errorf("graph: v3 totals (%d cut, %d boundary) disagree with payload (%d, %d)",
			m.cutEdges, m.boundary, cut, boundary)
	}
	for s := range shards {
		sp := &shards[s]
		bi := 0
		for _, v := range sp.vmap {
			if !mask[v] {
				continue
			}
			if bi >= len(sp.bverts) || sp.bverts[bi] != v {
				return nil, nil, fmt.Errorf("graph: v3 shard %d boundary block omits frontier vertex %d", s, v)
			}
			j := sp.boffsets[bi]
			for _, u := range g.Neighbors(v) {
				if u >= v {
					continue
				}
				if j >= sp.boffsets[bi+1] || sp.bedges[j] != u {
					return nil, nil, fmt.Errorf("graph: v3 shard %d boundary adjacency of %d disagrees with payload", s, v)
				}
				j++
			}
			if j != sp.boffsets[bi+1] {
				return nil, nil, fmt.Errorf("graph: v3 shard %d boundary adjacency of %d has extra entries", s, v)
			}
			bi++
		}
		if bi != len(sp.bverts) {
			return nil, nil, fmt.Errorf("graph: v3 shard %d boundary block lists %d extra vertices", s, len(sp.bverts)-bi)
		}
	}
	meta := &V3Meta{
		Shards:      int(f.shards),
		Strategy:    f.strategy,
		SourceHash:  f.sourceHash,
		EdgesSorted: f.sorted(),
		Parts:       m.parts,
		CutEdges:    int64(m.cutEdges),
		Boundary:    int(m.boundary),
	}
	return g, meta, nil
}

// LoadBinaryV3File reads a v3 file from disk by copying (no mmap).
func LoadBinaryV3File(path string) (*CSR, *V3Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadBinaryV3(f)
}
