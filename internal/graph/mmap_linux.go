//go:build linux

package graph

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and privately.
func mmapFile(f *os.File, size int) ([]byte, error) {
	if size == 0 {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_PRIVATE)
}

// munmap releases a mapping created by mmapFile.
func munmap(data []byte) error { return syscall.Munmap(data) }

// mmapRange maps [off, off+n) of f read-only and privately. off need
// not be page-aligned: the mapping starts at the containing page and
// view is sliced to exactly the requested range. mapping is what must
// eventually go to releaseMapping.
func mmapRange(f *os.File, off, n uint64) (mapping, view []byte, err error) {
	page := uint64(os.Getpagesize())
	base := off &^ (page - 1)
	length := off - base + n
	if length == 0 {
		return nil, nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.Fd()), int64(base), int(length),
		syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return data, data[off-base : off-base+n], nil
}

// releaseMapping retires a range mapping: MADV_DONTNEED first so the
// kernel drops the resident pages immediately (the point of bounded
// residency — munmap alone leaves clean page-cache pages around), then
// the unmap. The madvise is advisory and its error ignored.
func releaseMapping(mapping []byte) error {
	syscall.Madvise(mapping, syscall.MADV_DONTNEED)
	return syscall.Munmap(mapping)
}

// adviseMapping hints the kernel about the v2 access pattern: the
// offsets section is scanned sequentially (validation, degree sweeps)
// while the edges section is walked in vertex order but touched at
// neighbor granularity. madvise requires page-aligned starts, so each
// hint is rounded inward to page boundaries; all errors are ignored —
// the hints are purely advisory.
func adviseMapping(data []byte, offStart, offEnd, edgeStart, edgeEnd uint64) {
	page := uint64(os.Getpagesize())
	sub := func(start, end uint64, advice int) {
		start = (start + page - 1) &^ (page - 1) // round up: never hint a neighboring section
		end &^= page - 1                         // round down
		if start >= end || end > uint64(len(data)) {
			return
		}
		syscall.Madvise(data[start:end], advice)
	}
	// The whole file will be needed promptly (checksum already touched
	// it, keep it resident for the coloring pass).
	syscall.Madvise(data, syscall.MADV_WILLNEED)
	sub(offStart, offEnd, syscall.MADV_SEQUENTIAL)
	sub(edgeStart, edgeEnd, syscall.MADV_RANDOM)
}
