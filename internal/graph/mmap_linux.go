//go:build linux

package graph

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and privately.
func mmapFile(f *os.File, size int) ([]byte, error) {
	if size == 0 {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_PRIVATE)
}

// munmap releases a mapping created by mmapFile.
func munmap(data []byte) error { return syscall.Munmap(data) }

// adviseMapping hints the kernel about the v2 access pattern: the
// offsets section is scanned sequentially (validation, degree sweeps)
// while the edges section is walked in vertex order but touched at
// neighbor granularity. madvise requires page-aligned starts, so each
// hint is rounded inward to page boundaries; all errors are ignored —
// the hints are purely advisory.
func adviseMapping(data []byte, offStart, offEnd, edgeStart, edgeEnd uint64) {
	page := uint64(os.Getpagesize())
	sub := func(start, end uint64, advice int) {
		start = (start + page - 1) &^ (page - 1) // round up: never hint a neighboring section
		end &^= page - 1                         // round down
		if start >= end || end > uint64(len(data)) {
			return
		}
		syscall.Madvise(data[start:end], advice)
	}
	// The whole file will be needed promptly (checksum already touched
	// it, keep it resident for the coloring pass).
	syscall.Madvise(data, syscall.MADV_WILLNEED)
	sub(offStart, offEnd, syscall.MADV_SEQUENTIAL)
	sub(edgeStart, edgeEnd, syscall.MADV_RANDOM)
}
