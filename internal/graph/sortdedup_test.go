package graph

import (
	"reflect"
	"testing"
)

// Interplay of SortEdges, EdgesSorted and dedupSorted: dedup assumes
// sorted lists, sorting must make EdgesSorted true, and both passes must
// be idempotent — including on inputs salted with self loops and
// duplicate edges.

func TestSortEdgesIdempotence(t *testing.T) {
	g, err := FromDirectedEdgeList(4, []Edge{
		{0, 3}, {0, 1}, {0, 2}, {2, 1}, {2, 0}, {3, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	g.SortEdges()
	if !g.EdgesSorted() {
		t.Fatal("EdgesSorted false after SortEdges")
	}
	// Idempotence: sorting a sorted graph changes nothing.
	before := g.Clone()
	g.SortEdges()
	graphsEqual(t, before, g, "SortEdges idempotence")
}

func TestDedupSortedRemovesDuplicatesKeepsSelfLoops(t *testing.T) {
	// Directed layout with duplicates of both a normal edge and a self
	// loop: dedup must collapse each run to one entry and must not drop
	// self loops (only FromEdgeList filters those).
	g, err := FromDirectedEdgeList(3, []Edge{
		{0, 1}, {0, 1}, {0, 2}, {1, 1}, {1, 1}, {1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	g.SortEdges()
	g.dedupSorted()
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []VertexID{1, 2}) {
		t.Fatalf("Neighbors(0) = %v, want [1 2]", got)
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []VertexID{0, 1}) {
		t.Fatalf("Neighbors(1) = %v, want [0 1]", got)
	}
	if !g.HasSelfLoops() {
		t.Fatal("dedup dropped the self loop")
	}
	// Idempotence.
	before := g.Clone()
	g.dedupSorted()
	graphsEqual(t, before, g, "dedupSorted idempotence")
}
