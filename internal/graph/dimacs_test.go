package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadDIMACS(t *testing.T) {
	input := `c a triangle plus an isolated vertex
p edge 4 3
e 1 2
e 2 3
e 1 3
`
	g, err := ReadDIMACS(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.UndirectedEdgeCount() != 3 {
		t.Fatalf("parsed %s", g)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(0, 2) {
		t.Fatal("triangle edges missing (1-based conversion wrong?)")
	}
	if g.Degree(3) != 0 {
		t.Fatal("isolated vertex gained edges")
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	for name, input := range map[string]string{
		"no problem line":   "e 1 2\n",
		"bad record":        "x 1 2\n",
		"bad problem":       "p vertex 3 1\n",
		"edge out of range": "p edge 2 1\ne 1 5\n",
		"zero-based edge":   "p edge 2 1\ne 0 1\n",
		"short edge":        "p edge 2 1\ne 1\n",
		"negative vertices": "p edge -3 1\n",
		"empty":             "",
	} {
		if _, err := ReadDIMACS(strings.NewReader(input)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	g, err := Queen(5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g, "queen5_5\ngenerated"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "c queen5_5\nc generated\np edge 25") {
		t.Fatalf("header wrong: %q", buf.String()[:40])
	}
	g2, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed the graph")
	}
}

func TestMycielskiStructure(t *testing.T) {
	// M_2 = K2, M_3 = C5, M_4 = Grötzsch (11 vertices, 20 edges).
	m2, err := Mycielski(2)
	if err != nil || m2.NumVertices() != 2 || m2.UndirectedEdgeCount() != 1 {
		t.Fatalf("M2: %v %v", m2, err)
	}
	m3, err := Mycielski(3)
	if err != nil || m3.NumVertices() != 5 || m3.UndirectedEdgeCount() != 5 {
		t.Fatalf("M3: %v %v", m3, err)
	}
	m4, err := Mycielski(4)
	if err != nil || m4.NumVertices() != 11 || m4.UndirectedEdgeCount() != 20 {
		t.Fatalf("M4 (Grötzsch): %v %v", m4, err)
	}
	// Triangle-free: no vertex pair in a common neighborhood edge.
	if hasTriangle(m4) {
		t.Fatal("Grötzsch graph has a triangle")
	}
	if _, err := Mycielski(1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := Mycielski(99); err == nil {
		t.Fatal("k=99 accepted")
	}
}

func hasTriangle(g *CSR) bool {
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(VertexID(v)) {
			if u <= VertexID(v) {
				continue
			}
			for _, w := range g.Neighbors(u) {
				if w > u && g.HasEdge(VertexID(v), w) {
					return true
				}
			}
		}
	}
	return false
}

func TestQueenStructure(t *testing.T) {
	q5, err := Queen(5)
	if err != nil {
		t.Fatal(err)
	}
	if q5.NumVertices() != 25 {
		t.Fatalf("queen5_5 vertices = %d", q5.NumVertices())
	}
	// Known: queen5_5 has 160 edges.
	if q5.UndirectedEdgeCount() != 160 {
		t.Fatalf("queen5_5 edges = %d, want 160", q5.UndirectedEdgeCount())
	}
	if _, err := Queen(0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestCompleteAndCycle(t *testing.T) {
	k5, err := Complete(5)
	if err != nil || k5.UndirectedEdgeCount() != 10 {
		t.Fatalf("K5: %v %v", k5, err)
	}
	c6, err := Cycle(6)
	if err != nil || c6.UndirectedEdgeCount() != 6 || c6.MaxDegree() != 2 {
		t.Fatalf("C6: %v %v", c6, err)
	}
	if _, err := Cycle(2); err == nil {
		t.Fatal("C2 accepted")
	}
}
