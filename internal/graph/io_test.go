package graph

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	input := `# SNAP-style comment
% matrix-market-style comment
0 1
1 2
2 0

10 11
`
	g, lines, err := ReadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if lines != 4 {
		t.Fatalf("lines = %d, want 4", lines)
	}
	// IDs are densified: 0,1,2,10,11 → 0..4.
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", g.NumVertices())
	}
	if g.UndirectedEdgeCount() != 4 {
		t.Fatalf("edges = %d, want 4", g.UndirectedEdgeCount())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(3, 4) {
		t.Fatal("expected edges missing after densification")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"0\n", "a b\n", "0 b\n"} {
		if _, _, err := ReadEdgeList(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q accepted", bad)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := paperExample(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.UndirectedEdgeCount() != g.UndirectedEdgeCount() {
		t.Fatalf("round trip changed shape: %s vs %s", g, g2)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 500
	edges := make([]Edge, 2000)
	for i := range edges {
		edges[i] = Edge{U: VertexID(rng.Intn(n)), V: VertexID(rng.Intn(n))}
	}
	g, err := FromEdgeList(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Offsets, g2.Offsets) || !reflect.DeepEqual(g.Edges, g2.Edges) {
		t.Fatal("binary round trip changed the graph")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOPE00000000"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated payload.
	g := paperExample(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

// Corrupt headers must fail with a specific, explanatory error — and
// must do so without attempting the allocation the lying counts imply.
func TestBinaryCorruptHeaderErrors(t *testing.T) {
	hdr := func(version, nv, ne uint64) []byte {
		b := []byte(binaryMagic)
		b = binary.LittleEndian.AppendUint64(b, version)
		b = binary.LittleEndian.AppendUint64(b, nv)
		b = binary.LittleEndian.AppendUint64(b, ne)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"short header", []byte("BCSR\x01\x00"), "truncated binary header"},
		{"future version", hdr(99, 1, 0), "unsupported version"},
		{"absurd vertices", hdr(1, 1<<60, 0), "vertices (max"},
		{"absurd edges", hdr(1, 1, 1<<60), "adjacency entries (max"},
		{"missing offsets", hdr(1, 1000, 0), "truncated offsets"},
		{"offsets disagree with ne", append(hdr(1, 0, 5), make([]byte, 8)...),
			"header claims 5 adjacency entries"},
		{"missing edges", append(hdr(1, 0, 4), make([]byte, 8)...), "truncated edges"},
	}
	// The "missing edges" case needs Offsets[0] == ne to get past the
	// consistency check.
	binary.LittleEndian.PutUint64(cases[6].data[len(cases[6].data)-8:], 4)
	for _, tc := range cases {
		_, err := ReadBinary(bytes.NewReader(tc.data))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := paperExample(t)
	path := filepath.Join(t.TempDir(), "g.bcsr")
	if err := SaveBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges, g2.Edges) {
		t.Fatal("file round trip changed edges")
	}
}

func TestLoadEdgeListFileMissing(t *testing.T) {
	if _, err := LoadEdgeListFile(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing file did not error")
	}
}
