package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomEdges returns m random edges over n vertices, including a salting
// of self loops and exact duplicates so dedup paths are exercised.
func randomEdges(n, m int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m+m/8)
	for i := 0; i < m; i++ {
		edges = append(edges, Edge{U: VertexID(rng.Intn(n)), V: VertexID(rng.Intn(n))})
	}
	for i := 0; i < m/16; i++ { // duplicates of existing edges
		edges = append(edges, edges[rng.Intn(len(edges))])
	}
	for i := 0; i < m/32; i++ { // self loops
		v := VertexID(rng.Intn(n))
		edges = append(edges, Edge{U: v, V: v})
	}
	return edges
}

func graphsEqual(t *testing.T, want, got *CSR, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.Offsets, got.Offsets) {
		t.Fatalf("%s: offsets differ: want %v got %v", label, want.Offsets[:min(len(want.Offsets), 20)], got.Offsets[:min(len(got.Offsets), 20)])
	}
	if !reflect.DeepEqual(want.Edges, got.Edges) {
		t.Fatalf("%s: edges differ", label)
	}
}

// The acceptance bar for the parallel builder: byte-identical CSR output
// versus FromEdgeList across random graphs of varying density, at several
// worker counts (including more workers than a 1-CPU box has cores).
func TestFromEdgeListParallelEquivalence(t *testing.T) {
	cases := []struct{ n, m int }{
		{50, 100},     // below the parallel threshold: sequential fallback
		{300, 9000},   // above the edge threshold, below the sort threshold
		{2000, 30000}, // all parallel passes active
		{5000, 12000}, // sparse
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 2, 3, 8} {
			t.Run(fmt.Sprintf("n=%d/m=%d/w=%d", tc.n, tc.m, workers), func(t *testing.T) {
				edges := randomEdges(tc.n, tc.m, int64(tc.n*31+tc.m))
				want, err := FromEdgeList(tc.n, edges)
				if err != nil {
					t.Fatal(err)
				}
				got, err := FromEdgeListParallel(tc.n, edges, workers)
				if err != nil {
					t.Fatal(err)
				}
				graphsEqual(t, want, got, "parallel build")
				if err := got.Validate(); err != nil {
					t.Fatal(err)
				}
				if !got.EdgesSorted() {
					t.Fatal("parallel build output not edge-sorted")
				}
			})
		}
	}
}

func TestFromEdgeListParallelErrors(t *testing.T) {
	if _, err := FromEdgeListParallel(-1, nil, 4); err == nil {
		t.Fatal("negative vertex count accepted")
	}
	// Out-of-range edge must error identically to the sequential builder,
	// reporting the lowest-indexed offending edge.
	edges := randomEdges(1000, 20000, 7)
	edges[123] = Edge{U: 5000, V: 1}
	edges[9000] = Edge{U: 1, V: 9999}
	_, wantErr := FromEdgeList(1000, edges)
	_, gotErr := FromEdgeListParallel(1000, edges, 4)
	if wantErr == nil || gotErr == nil {
		t.Fatalf("out-of-range edge accepted: seq=%v par=%v", wantErr, gotErr)
	}
	if wantErr.Error() != gotErr.Error() {
		t.Fatalf("error mismatch: seq %q, par %q", wantErr, gotErr)
	}
}

func TestSortEdgesParallelEquivalence(t *testing.T) {
	g, err := FromEdgeList(3000, randomEdges(3000, 40000, 11))
	if err != nil {
		t.Fatal(err)
	}
	shuffled := g.Clone()
	// Reverse each adjacency list to unsort it deterministically.
	for v := 0; v < shuffled.NumVertices(); v++ {
		adj := shuffled.Neighbors(VertexID(v))
		for i, j := 0, len(adj)-1; i < j; i, j = i+1, j-1 {
			adj[i], adj[j] = adj[j], adj[i]
		}
	}
	if shuffled.EdgesSorted() {
		t.Fatal("reverse failed to unsort")
	}
	shuffled.SortEdgesParallel(6)
	graphsEqual(t, g, shuffled, "parallel sort")
}

func TestDedupSortedParallelEquivalence(t *testing.T) {
	// Build duplicate-heavy directed layouts and dedup them both ways.
	edges := randomEdges(2000, 25000, 5)
	seq, err := FromDirectedEdgeList(2000, append(edges, edges...))
	if err != nil {
		t.Fatal(err)
	}
	par := seq.Clone()
	seq.SortEdges()
	seq.dedupSorted()
	par.SortEdgesParallel(4)
	par.dedupSortedParallel(4)
	graphsEqual(t, seq, par, "parallel dedup")
	// Idempotence: a second dedup must be a no-op on both.
	again := par.Clone()
	again.dedupSortedParallel(4)
	graphsEqual(t, par, again, "parallel dedup idempotence")
}
