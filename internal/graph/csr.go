// Package graph implements the compressed sparse row (CSR) graph
// representation used throughout BitColor (paper §2.1, Fig 2), plus
// construction, validation, statistics and I/O.
//
// A graph has VERTEX_NUMBER vertices identified by dense uint32 indices.
// Offsets has one entry per vertex plus a terminator: the neighbors of
// vertex v are Edges[Offsets[v]:Offsets[v+1]]. All graphs in the paper are
// undirected; an undirected CSR stores each edge in both directions.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// VertexID is a dense vertex index. The paper uses 32-bit indices (the
// largest dataset, com-Friendster, has 65.6M vertices).
type VertexID = uint32

// CSR is a graph in compressed sparse row format.
type CSR struct {
	// Offsets has length NumVertices+1; Offsets[v] is the index in Edges
	// of the first neighbor of v (the paper's s_e; d_e is Offsets[v+1]).
	Offsets []int64
	// Edges stores destination vertex indices.
	Edges []VertexID

	// backing, when set, owns the storage Offsets/Edges alias (an mmap'd
	// BCSR v2 file) — the graph is valid only until backing is closed.
	// Engines never look at it; it exists so handle types can tell a
	// mapped view from an owned copy.
	backing interface{ Close() error }
}

// Backed reports whether the CSR's payload aliases externally owned
// storage (an open mmap region) rather than process-owned slices.
func (g *CSR) Backed() bool { return g.backing != nil }

// NumVertices returns the number of vertices.
func (g *CSR) NumVertices() int {
	if len(g.Offsets) == 0 {
		return 0
	}
	return len(g.Offsets) - 1
}

// NumEdges returns the number of stored (directed) edges. For an
// undirected graph built by FromEdgeList this is twice the number of
// undirected edges.
func (g *CSR) NumEdges() int64 { return int64(len(g.Edges)) }

// Degree returns the out-degree of v.
func (g *CSR) Degree(v VertexID) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the adjacency slice of v. The slice aliases the CSR
// storage; callers must not modify it unless they own the graph.
func (g *CSR) Neighbors(v VertexID) []VertexID {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// EdgeRange returns the paper's (s_e, d_e) pair for v: the start and end
// indices of v's neighbors in the Edges array.
func (g *CSR) EdgeRange(v VertexID) (se, de int64) {
	return g.Offsets[v], g.Offsets[v+1]
}

// MaxDegree returns the largest vertex degree (0 for an empty graph).
func (g *CSR) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(VertexID(v)); d > max {
			max = d
		}
	}
	return max
}

// HasEdge reports whether u has v in its adjacency list. It uses binary
// search when u's edges are sorted and falls back to a linear scan
// otherwise.
func (g *CSR) HasEdge(u, v VertexID) bool {
	adj := g.Neighbors(u)
	if len(adj) == 0 {
		return false
	}
	if sort.SliceIsSorted(adj, func(i, j int) bool { return adj[i] < adj[j] }) {
		i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
		return i < len(adj) && adj[i] == v
	}
	for _, w := range adj {
		if w == v {
			return true
		}
	}
	return false
}

// Validate checks structural invariants: monotone offsets covering Edges
// exactly, and every destination within range. It returns the first
// violation found.
func (g *CSR) Validate() error {
	n := g.NumVertices()
	if len(g.Offsets) == 0 {
		if len(g.Edges) != 0 {
			return fmt.Errorf("graph: %d edges with empty offsets", len(g.Edges))
		}
		return nil
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("graph: Offsets[0] = %d, want 0", g.Offsets[0])
	}
	for v := 0; v < n; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d (%d > %d)",
				v, g.Offsets[v], g.Offsets[v+1])
		}
	}
	if g.Offsets[n] != int64(len(g.Edges)) {
		return fmt.Errorf("graph: Offsets[%d] = %d, want len(Edges) = %d",
			n, g.Offsets[n], len(g.Edges))
	}
	for i, d := range g.Edges {
		if int(d) >= n {
			return fmt.Errorf("graph: edge %d destination %d out of range (n=%d)", i, d, n)
		}
	}
	return nil
}

// IsUndirected reports whether every stored edge has its reverse present.
// O(E log d); intended for tests and dataset sanity checks.
func (g *CSR) IsUndirected() bool {
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(VertexID(v)) {
			if !g.HasEdge(w, VertexID(v)) {
				return false
			}
		}
	}
	return true
}

// HasSelfLoops reports whether any vertex lists itself as a neighbor.
func (g *CSR) HasSelfLoops() bool {
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(VertexID(v)) {
			if w == VertexID(v) {
				return true
			}
		}
	}
	return false
}

// EdgesSorted reports whether every vertex's adjacency list is in
// ascending destination order — the paper's preprocessing invariant for
// DRAM read merging (§3.2.2) and tail pruning.
func (g *CSR) EdgesSorted() bool {
	for v := 0; v < g.NumVertices(); v++ {
		adj := g.Neighbors(VertexID(v))
		for i := 1; i < len(adj); i++ {
			if adj[i-1] > adj[i] {
				return false
			}
		}
	}
	return true
}

// SortEdges sorts every adjacency list ascending in place.
func (g *CSR) SortEdges() {
	for v := 0; v < g.NumVertices(); v++ {
		slices.Sort(g.Neighbors(VertexID(v)))
	}
}

// Clone returns a deep copy of the graph.
func (g *CSR) Clone() *CSR {
	return &CSR{
		Offsets: append([]int64(nil), g.Offsets...),
		Edges:   append([]VertexID(nil), g.Edges...),
	}
}

// String summarizes the graph for logs.
func (g *CSR) String() string {
	return fmt.Sprintf("CSR{V=%d, E=%d}", g.NumVertices(), g.NumEdges())
}

// Edge is one undirected edge; used by builders and I/O.
type Edge struct {
	U, V VertexID
}

// FromEdgeList builds an undirected CSR over n vertices from an edge list.
// Each undirected edge {u,v} is stored in both adjacency lists. Self loops
// are dropped (a self loop would make coloring infeasible) and duplicate
// edges are removed. Adjacency lists come out sorted ascending.
func FromEdgeList(n int, edges []Edge) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	deg := make([]int64, n)
	for _, e := range edges {
		if int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range n=%d", e.U, e.V, n)
		}
		if e.U == e.V {
			continue
		}
		deg[e.U]++
		deg[e.V]++
	}
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]VertexID, offsets[n])
	fill := make([]int64, n)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		adj[offsets[e.U]+fill[e.U]] = e.V
		fill[e.U]++
		adj[offsets[e.V]+fill[e.V]] = e.U
		fill[e.V]++
	}
	g := &CSR{Offsets: offsets, Edges: adj}
	g.SortEdges()
	g.dedupSorted()
	return g, nil
}

// FromDirectedEdgeList builds a CSR storing each edge exactly as given
// (no reverse edge, no dedup). Used by tests that need precise layouts.
func FromDirectedEdgeList(n int, edges []Edge) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	deg := make([]int64, n)
	for _, e := range edges {
		if int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range n=%d", e.U, e.V, n)
		}
		deg[e.U]++
	}
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]VertexID, offsets[n])
	fill := make([]int64, n)
	for _, e := range edges {
		adj[offsets[e.U]+fill[e.U]] = e.V
		fill[e.U]++
	}
	return &CSR{Offsets: offsets, Edges: adj}, nil
}

// dedupSorted removes duplicate destinations from each (sorted) adjacency
// list, compacting storage.
func (g *CSR) dedupSorted() {
	n := g.NumVertices()
	newOffsets := make([]int64, n+1)
	w := int64(0)
	for v := 0; v < n; v++ {
		newOffsets[v] = w
		adj := g.Neighbors(VertexID(v))
		var prev VertexID
		first := true
		for _, d := range adj {
			if first || d != prev {
				g.Edges[w] = d
				w++
			}
			prev, first = d, false
		}
	}
	newOffsets[n] = w
	g.Offsets = newOffsets
	g.Edges = g.Edges[:w]
}

// UndirectedEdgeCount returns the number of undirected edges (stored
// directed edges / 2) assuming the graph is a symmetric simple graph.
func (g *CSR) UndirectedEdgeCount() int64 { return g.NumEdges() / 2 }

// CollectEdges returns each undirected edge once (u < v). Intended for
// I/O and tests, not hot paths.
func (g *CSR) CollectEdges() []Edge {
	var out []Edge
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(VertexID(v)) {
			if VertexID(v) < w {
				out = append(out, Edge{U: VertexID(v), V: w})
			}
		}
	}
	return out
}
