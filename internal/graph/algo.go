package graph

// Classic traversal/decomposition utilities used by the experiment
// harness (dataset sanity checks) and by downstream applications of the
// coloring library.

// ConnectedComponents labels each vertex with a component ID in [0,k)
// and returns the labels and the component count k. Iterative DFS so
// large components cannot overflow the goroutine stack.
func ConnectedComponents(g *CSR) (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []VertexID
	var comp int32
	for start := 0; start < n; start++ {
		if labels[start] != -1 {
			continue
		}
		stack = append(stack[:0], VertexID(start))
		labels[start] = comp
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(v) {
				if labels[w] == -1 {
					labels[w] = comp
					stack = append(stack, w)
				}
			}
		}
		comp++
	}
	return labels, int(comp)
}

// LargestComponent returns the vertices of the largest connected
// component (ascending order).
func LargestComponent(g *CSR) []VertexID {
	labels, count := ConnectedComponents(g)
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c := 1; c < count; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	out := make([]VertexID, 0, sizes[best])
	for v, l := range labels {
		if int(l) == best {
			out = append(out, VertexID(v))
		}
	}
	return out
}

// BFSLevels returns each vertex's hop distance from source (-1 when
// unreachable) and the eccentricity of the source within its component.
func BFSLevels(g *CSR, source VertexID) (levels []int32, ecc int) {
	n := g.NumVertices()
	levels = make([]int32, n)
	for i := range levels {
		levels[i] = -1
	}
	if int(source) >= n {
		return levels, 0
	}
	queue := []VertexID{source}
	levels[source] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if levels[w] == -1 {
				levels[w] = levels[v] + 1
				if int(levels[w]) > ecc {
					ecc = int(levels[w])
				}
				queue = append(queue, w)
			}
		}
	}
	return levels, ecc
}

// KCore returns each vertex's core number: the largest k such that the
// vertex belongs to a subgraph of minimum degree k. The degeneracy of the
// graph is the maximum core number, and degeneracy+1 upper-bounds the
// greedy chromatic number under smallest-last order.
func KCore(g *CSR) (core []int, degeneracy int) {
	n := g.NumVertices()
	core = make([]int, n)
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(VertexID(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket queue peeling (Matula–Beck).
	buckets := make([][]VertexID, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], VertexID(v))
	}
	removed := make([]bool, n)
	cur := 0
	for peeled := 0; peeled < n; {
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxDeg {
			break
		}
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[v] || deg[v] != cur {
			continue // stale entry
		}
		removed[v] = true
		core[v] = cur
		if cur > degeneracy {
			degeneracy = cur
		}
		peeled++
		for _, w := range g.Neighbors(v) {
			if !removed[w] && deg[w] > cur {
				deg[w]--
				buckets[deg[w]] = append(buckets[deg[w]], w)
				if deg[w] < cur {
					cur = deg[w]
				}
			}
		}
	}
	return core, degeneracy
}

// InducedSubgraph returns the subgraph induced by keep (which must be
// sorted ascending and duplicate-free) with vertices renumbered densely,
// plus the mapping new → old.
func InducedSubgraph(g *CSR, keep []VertexID) (*CSR, []VertexID) {
	newID := make(map[VertexID]VertexID, len(keep))
	for i, v := range keep {
		newID[v] = VertexID(i)
	}
	var edges []Edge
	for i, v := range keep {
		for _, w := range g.Neighbors(v) {
			if j, ok := newID[w]; ok && VertexID(i) < j {
				edges = append(edges, Edge{U: VertexID(i), V: j})
			}
		}
	}
	sub, err := FromEdgeList(len(keep), edges)
	if err != nil {
		// keep was validated by construction; unreachable in practice.
		panic(err)
	}
	old := append([]VertexID(nil), keep...)
	return sub, old
}
