package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// paperExample is the Fig 2 graph of the paper: 6 vertices, edges laid out
// so vertex 4's neighbors are {0,2,3,5} as in the running example.
func paperExample(t testing.TB) *CSR {
	t.Helper()
	g, err := FromEdgeList(6, []Edge{
		{0, 1}, {0, 4}, {1, 2}, {2, 4}, {3, 4}, {4, 5}, {2, 3},
	})
	if err != nil {
		t.Fatalf("building paper example: %v", err)
	}
	return g
}

func TestFromEdgeListBasics(t *testing.T) {
	g := paperExample(t)
	if g.NumVertices() != 6 {
		t.Fatalf("NumVertices = %d, want 6", g.NumVertices())
	}
	if g.UndirectedEdgeCount() != 7 {
		t.Fatalf("UndirectedEdgeCount = %d, want 7", g.UndirectedEdgeCount())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsUndirected() {
		t.Fatal("graph is not symmetric")
	}
	want := []VertexID{0, 2, 3, 5}
	if got := g.Neighbors(4); !reflect.DeepEqual(got, want) {
		t.Fatalf("Neighbors(4) = %v, want %v", got, want)
	}
	if g.Degree(4) != 4 {
		t.Fatalf("Degree(4) = %d, want 4", g.Degree(4))
	}
}

func TestEdgeRange(t *testing.T) {
	g := paperExample(t)
	se, de := g.EdgeRange(4)
	if de-se != 4 {
		t.Fatalf("edge range width = %d, want 4", de-se)
	}
	if se != g.Offsets[4] || de != g.Offsets[5] {
		t.Fatal("EdgeRange disagrees with Offsets")
	}
}

func TestFromEdgeListDropsSelfLoopsAndDuplicates(t *testing.T) {
	g, err := FromEdgeList(3, []Edge{{0, 1}, {1, 0}, {0, 1}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.HasSelfLoops() {
		t.Fatal("self loop survived")
	}
	if g.UndirectedEdgeCount() != 1 {
		t.Fatalf("UndirectedEdgeCount = %d, want 1 after dedup", g.UndirectedEdgeCount())
	}
	if g.Degree(2) != 0 {
		t.Fatalf("Degree(2) = %d, want 0", g.Degree(2))
	}
}

func TestFromEdgeListOutOfRange(t *testing.T) {
	if _, err := FromEdgeList(2, []Edge{{0, 5}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := FromEdgeList(-1, nil); err == nil {
		t.Fatal("negative vertex count accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := FromEdgeList(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph not empty")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() != 0 {
		t.Fatal("empty graph MaxDegree != 0")
	}
}

func TestHasEdge(t *testing.T) {
	g := paperExample(t)
	if !g.HasEdge(4, 0) || !g.HasEdge(0, 4) {
		t.Fatal("existing edge not found")
	}
	if g.HasEdge(0, 3) {
		t.Fatal("phantom edge found")
	}
}

func TestHasEdgeUnsorted(t *testing.T) {
	g, err := FromDirectedEdgeList(5, []Edge{{0, 4}, {0, 2}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 3) || g.HasEdge(0, 1) {
		t.Fatal("HasEdge wrong on unsorted adjacency")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := paperExample(t)
	g.Edges[0] = 99
	if err := g.Validate(); err == nil {
		t.Fatal("out-of-range destination not caught")
	}
	g = paperExample(t)
	g.Offsets[2] = g.Offsets[3] + 5
	if err := g.Validate(); err == nil {
		t.Fatal("non-monotone offsets not caught")
	}
	g = paperExample(t)
	g.Offsets[0] = 1
	if err := g.Validate(); err == nil {
		t.Fatal("nonzero first offset not caught")
	}
	g = paperExample(t)
	g.Offsets[len(g.Offsets)-1]--
	if err := g.Validate(); err == nil {
		t.Fatal("terminator mismatch not caught")
	}
}

func TestSortEdgesAndEdgesSorted(t *testing.T) {
	g, err := FromDirectedEdgeList(5, []Edge{{0, 4}, {0, 2}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgesSorted() {
		t.Fatal("unsorted graph claims sorted")
	}
	g.SortEdges()
	if !g.EdgesSorted() {
		t.Fatal("sorted graph claims unsorted")
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []VertexID{2, 3, 4}) {
		t.Fatalf("Neighbors(0) = %v after sort", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := paperExample(t)
	c := g.Clone()
	c.Edges[0] = 5
	if g.Edges[0] == 5 {
		t.Fatal("Clone shares edge storage")
	}
}

func TestCollectEdgesRoundTrip(t *testing.T) {
	g := paperExample(t)
	edges := g.CollectEdges()
	if int64(len(edges)) != g.UndirectedEdgeCount() {
		t.Fatalf("CollectEdges returned %d, want %d", len(edges), g.UndirectedEdgeCount())
	}
	g2, err := FromEdgeList(g.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Offsets, g2.Offsets) || !reflect.DeepEqual(g.Edges, g2.Edges) {
		t.Fatal("edge-list round trip changed the graph")
	}
}

// Property: FromEdgeList always yields a valid symmetric simple graph.
func TestFromEdgeListInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		m := int(mRaw % 300)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{U: VertexID(rng.Intn(n)), V: VertexID(rng.Intn(n))}
		}
		g, err := FromEdgeList(n, edges)
		if err != nil {
			return false
		}
		return g.Validate() == nil && g.IsUndirected() && !g.HasSelfLoops() && g.EdgesSorted()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	g := paperExample(t)
	s := ComputeStats(g)
	if s.Vertices != 6 || s.UndirectedEdges != 7 {
		t.Fatalf("stats counts wrong: %+v", s)
	}
	if s.MaxDegree != 4 {
		t.Fatalf("MaxDegree = %d, want 4", s.MaxDegree)
	}
	if s.MinDegree < 1 {
		t.Fatalf("MinDegree = %d, want >= 1", s.MinDegree)
	}
	if s.MeanDegree <= 0 {
		t.Fatal("MeanDegree not positive")
	}
	if s.Isolated != 0 {
		t.Fatalf("Isolated = %d, want 0", s.Isolated)
	}
}

func TestStatsEmpty(t *testing.T) {
	g, _ := FromEdgeList(0, nil)
	s := ComputeStats(g)
	if s.Vertices != 0 || s.MinDegree != 0 || s.GiniDegree != 0 {
		t.Fatalf("empty stats wrong: %+v", s)
	}
}

func TestGiniExtremes(t *testing.T) {
	// Regular ring: all degrees equal → Gini ~ 0.
	ring := make([]Edge, 10)
	for i := 0; i < 10; i++ {
		ring[i] = Edge{U: VertexID(i), V: VertexID((i + 1) % 10)}
	}
	g, _ := FromEdgeList(10, ring)
	if s := ComputeStats(g); s.GiniDegree > 0.01 {
		t.Fatalf("ring Gini = %.3f, want ~0", s.GiniDegree)
	}
	// Star: one hub → high Gini.
	star := make([]Edge, 20)
	for i := range star {
		star[i] = Edge{U: 0, V: VertexID(i + 1)}
	}
	h, _ := FromEdgeList(21, star)
	if s := ComputeStats(h); s.GiniDegree < 0.4 {
		t.Fatalf("star Gini = %.3f, want > 0.4", s.GiniDegree)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := paperExample(t)
	h := DegreeHistogram(g)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != g.NumVertices() {
		t.Fatalf("histogram covers %d vertices, want %d", total, g.NumVertices())
	}
}

func BenchmarkFromEdgeList(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 10000
	edges := make([]Edge, 5*n)
	for i := range edges {
		edges[i] = Edge{U: VertexID(rng.Intn(n)), V: VertexID(rng.Intn(n))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromEdgeList(n, edges); err != nil {
			b.Fatal(err)
		}
	}
}
