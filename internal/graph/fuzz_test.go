package graph

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Fuzz targets: the two parsers must never panic and must only return
// structurally valid graphs.

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n5 5\n")
	f.Add("999999999999 0\n")
	f.Add("a b\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		g, _, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser returned invalid graph: %v", err)
		}
		if g.HasSelfLoops() {
			t.Fatal("parser returned self loops")
		}
		if !g.IsUndirected() {
			t.Fatal("parser returned asymmetric graph")
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a valid payload and some corruptions.
	g, _ := FromEdgeList(4, []Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add([]byte("BCSR"))
	f.Add([]byte{})
	// Headers that lie: huge vertex/edge counts over a tiny payload, a
	// version from the future, counts right at the sanity caps, and an
	// offsets array inconsistent with the claimed edge count. None may
	// panic or balloon memory; all must error.
	lying := func(version, nv, ne uint64) []byte {
		b := []byte(binaryMagic)
		b = binary.LittleEndian.AppendUint64(b, version)
		b = binary.LittleEndian.AppendUint64(b, nv)
		b = binary.LittleEndian.AppendUint64(b, ne)
		return b
	}
	f.Add(lying(1, 1<<60, 8))
	f.Add(lying(1, 8, 1<<60))
	f.Add(lying(2, 4, 4))
	f.Add(lying(1, binaryMaxVertices, 0))
	f.Add(append(lying(1, 0, 5), make([]byte, 8)...)) // Offsets[0] = 0 != ne
	f.Add(valid[:len(valid)-9])                       // cut inside the edge payload
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("binary reader returned invalid graph: %v", err)
		}
	})
}

// FuzzReadBinaryV2 exercises the v2 parser (the same code path the
// mmap fallback uses) with both corrupted real images and fabricated
// headers: bad checksums, truncated sections, misaligned section
// offsets, flipped endianness flags, and v1/v2 magic confusion must all
// fail with explicit errors — never a panic or a silent misparse.
func FuzzReadBinaryV2(f *testing.F) {
	g, _ := FromEdgeList(4, []Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	mut := func(edit func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		edit(b)
		return b
	}
	f.Add(valid)
	f.Add(mut(func(b []byte) { b[len(b)-1] ^= 0xff }))                                // payload checksum
	f.Add(mut(func(b []byte) { b[57] ^= 0xff }))                                      // header checksum
	f.Add(mut(func(b []byte) { b[12] ^= byte(binaryV2FlagBigEndian) }))               // flipped endianness flag
	f.Add(mut(func(b []byte) { binary.LittleEndian.PutUint64(b[4:12], 1) }))          // v1 version in v2 image
	f.Add(mut(func(b []byte) { binary.LittleEndian.PutUint64(b[32:40], 72) }))        // misaligned offsets section
	f.Add(mut(func(b []byte) { binary.LittleEndian.PutUint64(b[40:48], 1<<40 | 64) }) /* far-away edges */)
	f.Add(valid[:binaryV2HeaderSize])    // truncated: header only
	f.Add(valid[:binaryV2HeaderSize+8])  // truncated offsets
	f.Add(valid[:len(valid)-3])          // truncated edges
	f.Add(valid[:40])                    // truncated header
	// A v1 image fed to the v2 parser (magic confusion the other way).
	var v1 bytes.Buffer
	if err := WriteBinary(&v1, g); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	// Fabricated header with absurd counts.
	lyingV2 := func(nv, ne uint64) []byte {
		b := make([]byte, binaryV2HeaderSize)
		copy(b[0:4], binaryMagic)
		binary.LittleEndian.PutUint64(b[4:12], binaryV2Version)
		binary.LittleEndian.PutUint64(b[16:24], nv)
		binary.LittleEndian.PutUint64(b[24:32], ne)
		off, eoff := v2Layout(nv)
		binary.LittleEndian.PutUint64(b[32:40], off)
		binary.LittleEndian.PutUint64(b[40:48], eoff)
		binary.LittleEndian.PutUint64(b[56:64], fnv1a(fnvOffset64, b[:56]))
		return b
	}
	f.Add(lyingV2(1<<60, 8))
	f.Add(lyingV2(8, 1<<60))
	f.Add(lyingV2(binaryMaxVertices, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinaryV2(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("v2 reader returned invalid graph: %v", err)
		}
		// Whatever the copying reader accepts, the mapped path must agree
		// on (or cleanly fall back for) when handed the same bytes.
		path := filepath.Join(t.TempDir(), "fuzz.bcsr")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := MapBinaryFile(path)
		if err != nil {
			t.Fatalf("MapBinaryFile rejected bytes ReadBinaryV2 accepted: %v", err)
		}
		defer m.Close()
		mg := m.Graph()
		if mg.NumVertices() != g.NumVertices() || mg.NumEdges() != g.NumEdges() {
			t.Fatalf("mapped view disagrees with copying reader: %s vs %s", mg, g)
		}
	})
}

// FuzzReadBinaryV3 mirrors the v2 fuzz matrix for the shard-major
// format: corrupted real images (header/meta/directory/section bit
// flips, bad strategy codes, flipped flags), truncations at every
// layer, cross-version confusion, and fabricated headers with absurd
// counts must all fail with explicit errors — never a panic, a memory
// balloon, or a silent misparse. Whatever the copying reader accepts,
// the random-access OpenShardedFile path must accept too and agree on
// the shape.
func FuzzReadBinaryV3(f *testing.F) {
	g, _ := FromEdgeList(6, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 4, V: 5}, {U: 0, V: 5}})
	parts := []int32{0, 0, 0, 1, 1, 1}
	var buf bytes.Buffer
	if err := WriteBinaryV3(&buf, g, parts, 2, V3PartitionRanges); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	mut := func(edit func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		edit(b)
		return b
	}
	f.Add(valid)
	f.Add(mut(func(b []byte) { b[57] ^= 0xff }))                                 // header checksum
	f.Add(mut(func(b []byte) { b[12] ^= byte(binaryV3FlagBigEndian) }))          // flipped endianness flag
	f.Add(mut(func(b []byte) { b[13] ^= 0x01 }))                                 // unknown flag bit
	f.Add(mut(func(b []byte) { binary.LittleEndian.PutUint64(b[4:12], 2) }))     // v2 version in v3 image
	f.Add(mut(func(b []byte) { binary.LittleEndian.PutUint32(b[32:36], 0) }))    // zero shards
	f.Add(mut(func(b []byte) { binary.LittleEndian.PutUint32(b[36:40], 99) }))   // unknown strategy
	f.Add(mut(func(b []byte) { b[44] ^= 0xff }))                                 // source hash
	f.Add(mut(func(b []byte) { b[binaryV3HeaderSize+2] ^= 0xff }))               // parts array (meta CRC)
	f.Add(mut(func(b []byte) { b[binaryV3HeaderSize+6*4+16+8] ^= 0xff }))        // directory record
	f.Add(mut(func(b []byte) { b[128+8] ^= 0xff }))                              // section payload
	f.Add(mut(func(b []byte) { b[len(b)-65] ^= 0xff }))                          // last section
	f.Add(valid[:binaryV3HeaderSize])     // truncated: header only
	f.Add(valid[:binaryV3HeaderSize+4])   // truncated parts
	f.Add(valid[:binaryV3HeaderSize+40])  // truncated directory
	f.Add(valid[:len(valid)/2])           // truncated sections
	f.Add(valid[:40])                     // truncated header
	// A v2 image fed to the v3 parser (version confusion the other way).
	var v2 bytes.Buffer
	if err := WriteBinaryV2(&v2, g); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	// Fabricated headers with valid FNV sums and absurd counts: the
	// chunked meta read must hit EOF before any count-sized allocation.
	lyingV3 := func(nv, ne uint64, shards, strategy uint32) []byte {
		b := make([]byte, binaryV3HeaderSize)
		copy(b[0:4], binaryMagic)
		binary.LittleEndian.PutUint64(b[4:12], binaryV3Version)
		binary.LittleEndian.PutUint64(b[16:24], nv)
		binary.LittleEndian.PutUint64(b[24:32], ne)
		binary.LittleEndian.PutUint32(b[32:36], shards)
		binary.LittleEndian.PutUint32(b[36:40], strategy)
		binary.LittleEndian.PutUint64(b[56:64], fnv1a(fnvOffset64, b[:56]))
		return b
	}
	f.Add(lyingV3(1<<60, 8, 2, 0))
	f.Add(lyingV3(8, 1<<60, 2, 0))
	f.Add(lyingV3(binaryMaxVertices, 0, 1<<19, 1))
	f.Add(lyingV3(6, 10, 1<<30, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, meta, err := ReadBinaryV3(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("v3 reader returned invalid graph: %v", err)
		}
		if len(meta.Parts) != g.NumVertices() {
			t.Fatalf("v3 reader returned %d parts for %d vertices", len(meta.Parts), g.NumVertices())
		}
		// Whatever the copying reader accepts, the random-access path
		// must accept too and agree on the shape.
		path := filepath.Join(t.TempDir(), "fuzz.bcsr")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		sf, err := OpenShardedFile(path)
		if err != nil {
			t.Fatalf("OpenShardedFile rejected bytes ReadBinaryV3 accepted: %v", err)
		}
		defer sf.Close()
		if sf.NumVertices() != g.NumVertices() || sf.NumEdges() != g.NumEdges() ||
			sf.Shards() != meta.Shards || sf.SourceHash() != meta.SourceHash {
			t.Fatal("sharded handle disagrees with copying reader")
		}
		for s := 0; s < sf.Shards(); s++ {
			sm, err := sf.MapShard(s)
			if err != nil {
				t.Fatalf("MapShard(%d) rejected a file ReadBinaryV3 accepted: %v", s, err)
			}
			bm, err := sf.MapBoundary(s)
			if err != nil {
				sm.Close()
				t.Fatalf("MapBoundary(%d) rejected a file ReadBinaryV3 accepted: %v", s, err)
			}
			bm.Close()
			sm.Close()
		}
	})
}

// FuzzBinaryRoundTrip builds a graph from fuzzed edge bytes and requires
// the binary encode/decode cycle to reproduce it exactly.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add(uint16(4), []byte{0, 1, 2, 3, 1, 2})
	f.Add(uint16(1), []byte{0, 0})
	f.Add(uint16(200), []byte{7, 7, 3, 9})
	f.Fuzz(func(t *testing.T, n uint16, raw []byte) {
		nv := int(n)
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{U: VertexID(raw[i]), V: VertexID(raw[i+1])})
		}
		g, err := FromEdgeList(nv, edges)
		if err != nil {
			return // out-of-range vertex for this nv: not a round-trip case
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("decode of a freshly encoded graph: %v", err)
		}
		if len(got.Offsets) != len(g.Offsets) || len(got.Edges) != len(g.Edges) {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				len(got.Offsets), len(got.Edges), len(g.Offsets), len(g.Edges))
		}
		for i := range g.Offsets {
			if got.Offsets[i] != g.Offsets[i] {
				t.Fatalf("offset %d: %d != %d", i, got.Offsets[i], g.Offsets[i])
			}
		}
		for i := range g.Edges {
			if got.Edges[i] != g.Edges[i] {
				t.Fatalf("edge %d: %d != %d", i, got.Edges[i], g.Edges[i])
			}
		}
	})
}
