package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets: the two parsers must never panic and must only return
// structurally valid graphs.

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n5 5\n")
	f.Add("999999999999 0\n")
	f.Add("a b\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		g, _, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser returned invalid graph: %v", err)
		}
		if g.HasSelfLoops() {
			t.Fatal("parser returned self loops")
		}
		if !g.IsUndirected() {
			t.Fatal("parser returned asymmetric graph")
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a valid payload and some corruptions.
	g, _ := FromEdgeList(4, []Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add([]byte("BCSR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("binary reader returned invalid graph: %v", err)
		}
	})
}
