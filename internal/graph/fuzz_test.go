package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// Fuzz targets: the two parsers must never panic and must only return
// structurally valid graphs.

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n5 5\n")
	f.Add("999999999999 0\n")
	f.Add("a b\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		g, _, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser returned invalid graph: %v", err)
		}
		if g.HasSelfLoops() {
			t.Fatal("parser returned self loops")
		}
		if !g.IsUndirected() {
			t.Fatal("parser returned asymmetric graph")
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a valid payload and some corruptions.
	g, _ := FromEdgeList(4, []Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add([]byte("BCSR"))
	f.Add([]byte{})
	// Headers that lie: huge vertex/edge counts over a tiny payload, a
	// version from the future, counts right at the sanity caps, and an
	// offsets array inconsistent with the claimed edge count. None may
	// panic or balloon memory; all must error.
	lying := func(version, nv, ne uint64) []byte {
		b := []byte(binaryMagic)
		b = binary.LittleEndian.AppendUint64(b, version)
		b = binary.LittleEndian.AppendUint64(b, nv)
		b = binary.LittleEndian.AppendUint64(b, ne)
		return b
	}
	f.Add(lying(1, 1<<60, 8))
	f.Add(lying(1, 8, 1<<60))
	f.Add(lying(2, 4, 4))
	f.Add(lying(1, binaryMaxVertices, 0))
	f.Add(append(lying(1, 0, 5), make([]byte, 8)...)) // Offsets[0] = 0 != ne
	f.Add(valid[:len(valid)-9])                       // cut inside the edge payload
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("binary reader returned invalid graph: %v", err)
		}
	})
}

// FuzzBinaryRoundTrip builds a graph from fuzzed edge bytes and requires
// the binary encode/decode cycle to reproduce it exactly.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add(uint16(4), []byte{0, 1, 2, 3, 1, 2})
	f.Add(uint16(1), []byte{0, 0})
	f.Add(uint16(200), []byte{7, 7, 3, 9})
	f.Fuzz(func(t *testing.T, n uint16, raw []byte) {
		nv := int(n)
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{U: VertexID(raw[i]), V: VertexID(raw[i+1])})
		}
		g, err := FromEdgeList(nv, edges)
		if err != nil {
			return // out-of-range vertex for this nv: not a round-trip case
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("decode of a freshly encoded graph: %v", err)
		}
		if len(got.Offsets) != len(g.Offsets) || len(got.Edges) != len(g.Edges) {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				len(got.Offsets), len(got.Edges), len(g.Offsets), len(g.Edges))
		}
		for i := range g.Offsets {
			if got.Offsets[i] != g.Offsets[i] {
				t.Fatalf("offset %d: %d != %d", i, got.Offsets[i], g.Offsets[i])
			}
		}
		for i := range g.Edges {
			if got.Edges[i] != g.Edges[i] {
				t.Fatalf("edge %d: %d != %d", i, got.Edges[i], g.Edges[i])
			}
		}
	})
}
