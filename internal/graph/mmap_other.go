//go:build !linux

package graph

import (
	"errors"
	"os"
)

// errMmapUnsupported routes MapBinaryFile to the copying fallback on
// platforms where the mmap fast path is not wired up.
var errMmapUnsupported = errors.New("mmap unsupported on this platform")

func mmapFile(f *os.File, size int) ([]byte, error) { return nil, errMmapUnsupported }

func munmap(data []byte) error { return nil }

func mmapRange(f *os.File, off, n uint64) (mapping, view []byte, err error) {
	return nil, nil, errMmapUnsupported
}

func releaseMapping(mapping []byte) error { return nil }

func adviseMapping(data []byte, offStart, offEnd, edgeStart, edgeEnd uint64) {}
