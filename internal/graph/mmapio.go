package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"
	"unsafe"
)

// BCSR v2 is the mmap-friendly successor to the v1 stream format: the
// payload sections are 64-byte aligned so an mmap'd file can be handed
// to the engines in place (unsafe.Slice over the mapping), mirroring
// BitColor's flat CSR memory layout where offsets and edges live as raw
// contiguous arrays the bit-wise engines stream over. On-disk layout
// (header fields always little-endian regardless of payload order):
//
//	[0:4)    magic "BCSR"
//	[4:12)   version    uint64 = 2
//	[12:16)  flags      uint32 — bit 0: payload byte order (0 = LE, 1 = BE)
//	[16:24)  numVertices uint64
//	[24:32)  numEdges    uint64 (directed adjacency entries)
//	[32:40)  offsetsOff  uint64 — file offset of Offsets, 64-byte aligned
//	[40:48)  edgesOff    uint64 — file offset of Edges, 64-byte aligned
//	[48:56)  payloadSum  uint64 — CRC32-C of Offsets bytes (high 32 bits)
//	         and of Edges bytes (low 32 bits), each as stored
//	[56:64)  headerSum   uint64 — FNV-1a over header bytes [0:56)
//	[64:...) Offsets: (numVertices+1) × 8 bytes, then zero padding to a
//	         64-byte boundary, then Edges: numEdges × 4 bytes.
//
// The header checksum makes any tampered header field (including a
// flipped endianness flag) an explicit error instead of a misparse; the
// payload checksum covers the section bytes as stored, excluding
// padding. It is CRC32-Castagnoli per section rather than a single wide
// hash because mapping verifies it on every open: Castagnoli runs on a
// dedicated instruction on amd64/arm64, so the integrity pass costs a
// fraction of the coloring that follows instead of dominating it.
// Writers always emit little-endian payloads; the big-endian flag
// exists so a foreign-order file is *detected* and routed to the
// copying reader rather than mapped.
const (
	binaryV2Version    = uint64(2)
	binaryV2HeaderSize = 64
	binaryV2Align      = 64

	// binaryV2FlagBigEndian marks a big-endian payload. Such files are
	// never produced by WriteBinaryV2 but are decodable by ReadBinaryV2;
	// the mapped path refuses them and falls back to copying.
	binaryV2FlagBigEndian = uint32(1) << 0
)

const (
	fnvOffset64 = uint64(14695981039346656037)
	fnvPrime64  = uint64(1099511628211)
)

// fnv1a folds b into a running FNV-1a-64 hash.
func fnv1a(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// hostLittleEndian reports whether this machine stores multi-byte
// integers little-endian — the precondition for aliasing the mapped
// little-endian payload directly as []int64 / []uint32.
func hostLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// offsetsBytes views g.Offsets as raw bytes (little-endian hosts only).
func offsetsBytes(g *CSR) []byte {
	if len(g.Offsets) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&g.Offsets[0])), len(g.Offsets)*8)
}

// edgesBytes views g.Edges as raw bytes (little-endian hosts only).
func edgesBytes(g *CSR) []byte {
	if len(g.Edges) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&g.Edges[0])), len(g.Edges)*4)
}

// crcTable is the Castagnoli polynomial table; crc32.Checksum with it
// dispatches to the hardware CRC32C instruction where available.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// v2SectionSum packs the two section checksums into the payloadSum
// field: CRC32-C of the stored Offsets bytes in the high 32 bits, of
// the stored Edges bytes in the low 32.
func v2SectionSum(offsets, edges []byte) uint64 {
	return uint64(crc32.Checksum(offsets, crcTable))<<32 | uint64(crc32.Checksum(edges, crcTable))
}

// v2PayloadSum computes the payload checksum over the sections as
// stored (little-endian). On little-endian hosts the in-memory arrays
// are already the stored representation and are checksummed directly;
// otherwise the sections are encoded chunk by chunk.
func v2PayloadSum(g *CSR) uint64 {
	if hostLittleEndian() {
		return v2SectionSum(offsetsBytes(g), edgesBytes(g))
	}
	var sumOff, sumEdge uint32
	var b [8]byte
	for _, o := range g.Offsets {
		binary.LittleEndian.PutUint64(b[:], uint64(o))
		sumOff = crc32.Update(sumOff, crcTable, b[:])
	}
	for _, e := range g.Edges {
		binary.LittleEndian.PutUint32(b[:4], e)
		sumEdge = crc32.Update(sumEdge, crcTable, b[:4])
	}
	return uint64(sumOff)<<32 | uint64(sumEdge)
}

// v2Layout computes the section offsets for a graph of nv vertices.
func v2Layout(nv uint64) (offsetsOff, edgesOff uint64) {
	offsetsOff = binaryV2HeaderSize
	end := offsetsOff + (nv+1)*8
	edgesOff = (end + binaryV2Align - 1) &^ (binaryV2Align - 1)
	return offsetsOff, edgesOff
}

// v2Header assembles and checksums the 64-byte header.
func v2Header(g *CSR) [binaryV2HeaderSize]byte {
	var hdr [binaryV2HeaderSize]byte
	nv, ne := uint64(g.NumVertices()), uint64(len(g.Edges))
	offsetsOff, edgesOff := v2Layout(nv)
	copy(hdr[0:4], binaryMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], binaryV2Version)
	binary.LittleEndian.PutUint32(hdr[12:16], 0) // flags: LE payload
	binary.LittleEndian.PutUint64(hdr[16:24], nv)
	binary.LittleEndian.PutUint64(hdr[24:32], ne)
	binary.LittleEndian.PutUint64(hdr[32:40], offsetsOff)
	binary.LittleEndian.PutUint64(hdr[40:48], edgesOff)
	binary.LittleEndian.PutUint64(hdr[48:56], v2PayloadSum(g))
	binary.LittleEndian.PutUint64(hdr[56:64], fnv1a(fnvOffset64, hdr[:56]))
	return hdr
}

// WriteBinaryV2 serializes the CSR in the mmap-friendly v2 format.
func WriteBinaryV2(w io.Writer, g *CSR) error {
	hdr := v2Header(g)
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	nv := uint64(g.NumVertices())
	offsetsOff, edgesOff := v2Layout(nv)
	if hostLittleEndian() {
		if _, err := bw.Write(offsetsBytes(g)); err != nil {
			return err
		}
	} else {
		var b [8]byte
		for _, o := range g.Offsets {
			binary.LittleEndian.PutUint64(b[:], uint64(o))
			if _, err := bw.Write(b[:]); err != nil {
				return err
			}
		}
	}
	var pad [binaryV2Align]byte
	if n := edgesOff - (offsetsOff + (nv+1)*8); n > 0 {
		if _, err := bw.Write(pad[:n]); err != nil {
			return err
		}
	}
	if hostLittleEndian() {
		if _, err := bw.Write(edgesBytes(g)); err != nil {
			return err
		}
	} else {
		var b [4]byte
		for _, e := range g.Edges {
			binary.LittleEndian.PutUint32(b[:], e)
			if _, err := bw.Write(b[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// v2Header holds the parsed and verified header fields.
type v2HeaderFields struct {
	flags      uint32
	nv, ne     uint64
	offsetsOff uint64
	edgesOff   uint64
	payloadSum uint64
}

// parseV2Header validates a raw 64-byte header: magic, version, header
// checksum, sanity caps, and section layout consistency.
func parseV2Header(hdr []byte) (v2HeaderFields, error) {
	var f v2HeaderFields
	if len(hdr) < binaryV2HeaderSize {
		return f, fmt.Errorf("graph: truncated v2 header (%d bytes)", len(hdr))
	}
	hdr = hdr[:binaryV2HeaderSize]
	if string(hdr[:4]) != binaryMagic {
		return f, fmt.Errorf("graph: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint64(hdr[4:12]); v != binaryV2Version {
		return f, fmt.Errorf("graph: unsupported version %d (want %d)", v, binaryV2Version)
	}
	if got, want := fnv1a(fnvOffset64, hdr[:56]), binary.LittleEndian.Uint64(hdr[56:64]); got != want {
		return f, fmt.Errorf("graph: v2 header checksum mismatch (got %#x, want %#x)", got, want)
	}
	f.flags = binary.LittleEndian.Uint32(hdr[12:16])
	f.nv = binary.LittleEndian.Uint64(hdr[16:24])
	f.ne = binary.LittleEndian.Uint64(hdr[24:32])
	f.offsetsOff = binary.LittleEndian.Uint64(hdr[32:40])
	f.edgesOff = binary.LittleEndian.Uint64(hdr[40:48])
	f.payloadSum = binary.LittleEndian.Uint64(hdr[48:56])
	if f.flags &^ binaryV2FlagBigEndian != 0 {
		return f, fmt.Errorf("graph: unknown v2 flags %#x", f.flags)
	}
	if f.nv > binaryMaxVertices {
		return f, fmt.Errorf("graph: header claims %d vertices (max %d)", f.nv, binaryMaxVertices)
	}
	if f.ne > binaryMaxEdges {
		return f, fmt.Errorf("graph: header claims %d adjacency entries (max %d)", f.ne, binaryMaxEdges)
	}
	if f.offsetsOff%binaryV2Align != 0 || f.edgesOff%binaryV2Align != 0 {
		return f, fmt.Errorf("graph: v2 section offsets %d/%d not %d-byte aligned",
			f.offsetsOff, f.edgesOff, binaryV2Align)
	}
	wantOffsets, wantEdges := v2Layout(f.nv)
	if f.offsetsOff != wantOffsets || f.edgesOff != wantEdges {
		return f, fmt.Errorf("graph: v2 section offsets %d/%d inconsistent with %d vertices (want %d/%d)",
			f.offsetsOff, f.edgesOff, f.nv, wantOffsets, wantEdges)
	}
	return f, nil
}

// v2FileSize is the expected total file size for parsed header fields.
func (f v2HeaderFields) fileSize() uint64 { return f.edgesOff + f.ne*4 }

// ReadBinaryV2 deserializes a v2 stream by copying — the portable slow
// path the mapped loader falls back to. It decodes either payload byte
// order, verifies both checksums, and structurally validates the graph;
// corrupt or truncated input fails with an explicit error.
func ReadBinaryV2(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr := make([]byte, binaryV2HeaderSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("graph: truncated v2 header: %w", err)
	}
	f, err := parseV2Header(hdr)
	if err != nil {
		return nil, err
	}
	order := binary.ByteOrder(binary.LittleEndian)
	if f.flags&binaryV2FlagBigEndian != 0 {
		order = binary.BigEndian
	}
	var sumOff, sumEdge uint32
	buf := make([]byte, 8*binaryReadChunk)
	offsets := make([]int64, 0, min(f.nv+1, binaryReadChunk))
	for remaining := f.nv + 1; remaining > 0; {
		c := min(remaining, binaryReadChunk)
		b := buf[:8*c]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("graph: truncated v2 offsets (%d of %d read): %w",
				len(offsets), f.nv+1, err)
		}
		sumOff = crc32.Update(sumOff, crcTable, b)
		for i := uint64(0); i < c; i++ {
			offsets = append(offsets, int64(order.Uint64(b[8*i:])))
		}
		remaining -= c
	}
	if last := offsets[f.nv]; last != int64(f.ne) {
		return nil, fmt.Errorf("graph: v2 offsets end at %d but header claims %d adjacency entries", last, f.ne)
	}
	if pad := f.edgesOff - (f.offsetsOff + (f.nv+1)*8); pad > 0 {
		if _, err := io.CopyN(io.Discard, br, int64(pad)); err != nil {
			return nil, fmt.Errorf("graph: truncated v2 section padding: %w", err)
		}
	}
	edges := make([]VertexID, 0, min(f.ne, 2*binaryReadChunk))
	for remaining := f.ne; remaining > 0; {
		c := min(remaining, 2*binaryReadChunk)
		b := buf[:4*c]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("graph: truncated v2 edges (%d of %d read): %w",
				len(edges), f.ne, err)
		}
		sumEdge = crc32.Update(sumEdge, crcTable, b)
		for i := uint64(0); i < c; i++ {
			edges = append(edges, order.Uint32(b[4*i:]))
		}
		remaining -= c
	}
	if sum := uint64(sumOff)<<32 | uint64(sumEdge); sum != f.payloadSum {
		return nil, fmt.Errorf("graph: v2 payload checksum mismatch (got %#x, want %#x)", sum, f.payloadSum)
	}
	g := &CSR{Offsets: offsets, Edges: edges}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: v2 payload invalid: %w", err)
	}
	return g, nil
}

// SaveBinaryV2File atomically writes the graph to path in v2 format
// (temp file + fsync + rename, like SaveBinaryFile).
func SaveBinaryV2File(path string, g *CSR) error {
	return saveAtomic(path, func(w io.Writer) error { return WriteBinaryV2(w, g) })
}

// LoadBinaryV2File reads a v2 file from disk by copying (no mmap).
func LoadBinaryV2File(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinaryV2(f)
}

// closeOnce arbitrates exactly-once teardown for handles whose Close
// releases an mmap: the first caller wins and performs the munmap, every
// later (possibly concurrent) call is a no-op. A plain bool is not
// enough — two goroutines racing Close could both observe it unset and
// issue a second munmap over an address range the kernel may already
// have reused.
type closeOnce struct {
	closed atomic.Bool
}

// first reports whether this call is the one that should tear down.
func (c *closeOnce) first() bool { return !c.closed.Swap(true) }

// done reports whether Close already ran (or is running).
func (c *closeOnce) done() bool { return c.closed.Load() }

// MappedCSR owns a graph whose payload may alias an mmap'd file. Close
// releases the mapping; using the graph after Close is a use-after-free,
// so Graph panics once closed. A MappedCSR whose construction fell back
// to the copying reader behaves identically but holds no mapping
// (Mapped reports false) and Close only bars further use.
type MappedCSR struct {
	g     CSR
	data  []byte // the mmap'd region; nil on the copying fallback
	close closeOnce
}

// Graph returns the graph view. The returned *CSR aliases the mapping
// (when Mapped) and is valid only until Close.
func (m *MappedCSR) Graph() *CSR {
	if m.close.done() {
		panic("graph: MappedCSR used after Close")
	}
	return &m.g
}

// Mapped reports whether the payload aliases an mmap'd region (false
// when construction fell back to the copying reader).
func (m *MappedCSR) Mapped() bool { return m.data != nil }

// Close unmaps the backing region (if any) and invalidates the graph
// view. Idempotent, including under concurrent double-Close: only the
// first caller performs the munmap.
func (m *MappedCSR) Close() error {
	if !m.close.first() {
		return nil
	}
	data := m.data
	m.data = nil
	m.g = CSR{}
	if data != nil {
		return munmap(data)
	}
	return nil
}

// Format names reported by SniffFormat and used as the load-metric
// label throughout the stack.
const (
	FormatEdgeList = "edgelist"
	FormatBCSR1    = "bcsr-v1"
	FormatBCSR2    = "bcsr-v2"
	FormatBCSR3    = "bcsr-v3"
)

// SniffFormat identifies a graph file by content: the BCSR magic plus
// version selects v1 or v2; anything else is treated as a SNAP edge
// list (including files too short to hold a binary header). A BCSR
// magic with an unknown version is an explicit error, not an edge list.
func SniffFormat(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	var hdr [12]byte
	if n, _ := io.ReadFull(f, hdr[:]); n < len(hdr) || string(hdr[:4]) != binaryMagic {
		return FormatEdgeList, nil
	}
	switch v := binary.LittleEndian.Uint64(hdr[4:12]); v {
	case 1:
		return FormatBCSR1, nil
	case binaryV2Version:
		return FormatBCSR2, nil
	case binaryV3Version:
		return FormatBCSR3, nil
	default:
		return "", fmt.Errorf("graph: %s: BCSR magic with unsupported version %d", path, v)
	}
}

// errMmapFallback marks conditions where the file is well-formed but
// cannot be aliased in place on this host; MapBinaryFile then falls
// back to the copying reader instead of failing.
var errMmapFallback = errors.New("graph: mmap fast path unavailable")

// MapBinaryFile opens a BCSR v2 file zero-copy: the file is mmap'd,
// both checksums are verified, and the Offsets/Edges sections are
// aliased in place via unsafe.Slice — no payload copy, no payload
// allocation. On hosts or files where aliasing is impossible (non-Linux
// builds, big-endian payload or host, misaligned mapping) it falls back
// to the copying ReadBinaryV2 path transparently; corrupt input is an
// error on either path, never a fallback. The returned handle must be
// Closed to release the mapping.
func MapBinaryFile(path string) (*MappedCSR, error) {
	m, err := mapBinaryFile(path)
	if err == nil {
		return m, nil
	}
	if !errors.Is(err, errMmapFallback) {
		return nil, err
	}
	g, err := LoadBinaryV2File(path)
	if err != nil {
		return nil, err
	}
	return &MappedCSR{g: *g}, nil
}

// mapBinaryFile is the zero-copy attempt behind MapBinaryFile. It
// returns an error wrapping errMmapFallback for host/layout conditions
// where the copying reader should take over, and a plain error for
// corrupt input.
func mapBinaryFile(path string) (*MappedCSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < binaryV2HeaderSize {
		return nil, fmt.Errorf("graph: v2 file too short (%d bytes)", st.Size())
	}
	// Parse the header from a plain read first so corrupt headers fail
	// identically on every platform, before any mapping exists.
	hdr := make([]byte, binaryV2HeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("graph: truncated v2 header: %w", err)
	}
	fields, err := parseV2Header(hdr)
	if err != nil {
		return nil, err
	}
	if want := fields.fileSize(); uint64(st.Size()) < want {
		return nil, fmt.Errorf("graph: v2 file truncated (%d bytes, layout needs %d)", st.Size(), want)
	}
	if !hostLittleEndian() || fields.flags&binaryV2FlagBigEndian != 0 {
		return nil, fmt.Errorf("%w: payload/host byte order mismatch", errMmapFallback)
	}
	data, err := mmapFile(f, int(st.Size()))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errMmapFallback, err)
	}
	m, err := newMappedCSR(data, fields)
	if err != nil {
		munmap(data)
		return nil, err
	}
	return m, nil
}

// newMappedCSR aliases the parsed sections of an mmap'd (or otherwise
// in-memory) v2 image, verifying the payload checksum and the graph's
// structural invariants so a crafted file can never panic an engine.
func newMappedCSR(data []byte, fields v2HeaderFields) (*MappedCSR, error) {
	offEnd := fields.offsetsOff + (fields.nv+1)*8
	edgeEnd := fields.edgesOff + fields.ne*4
	if uint64(len(data)) < edgeEnd || offEnd > fields.edgesOff {
		return nil, fmt.Errorf("graph: v2 sections exceed file size %d", len(data))
	}
	sum := v2SectionSum(data[fields.offsetsOff:offEnd], data[fields.edgesOff:edgeEnd])
	if sum != fields.payloadSum {
		return nil, fmt.Errorf("graph: v2 payload checksum mismatch (got %#x, want %#x)", sum, fields.payloadSum)
	}
	offPtr := unsafe.Pointer(&data[fields.offsetsOff])
	if uintptr(offPtr)%8 != 0 {
		return nil, fmt.Errorf("%w: mapping not 8-byte aligned", errMmapFallback)
	}
	var g CSR
	g.Offsets = unsafe.Slice((*int64)(offPtr), fields.nv+1)
	if fields.ne > 0 {
		g.Edges = unsafe.Slice((*VertexID)(unsafe.Pointer(&data[fields.edgesOff])), fields.ne)
	} else {
		g.Edges = []VertexID{}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: v2 payload invalid: %w", err)
	}
	// The offset scan is sequential, the edge walks are effectively
	// random from the kernel's viewpoint; hint accordingly (best effort).
	adviseMapping(data, fields.offsetsOff, offEnd, fields.edgesOff, edgeEnd)
	m := &MappedCSR{g: g, data: data}
	m.g.backing = m
	return m, nil
}
