package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DIMACS .col support: the standard interchange format of the graph-
// coloring benchmark community (the instances BitColor's software
// baselines are usually evaluated on). Lines:
//
//	c <comment>
//	p edge <vertices> <edges>
//	e <u> <v>          (1-based endpoints)

// ReadDIMACS parses a DIMACS .col graph.
func ReadDIMACS(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := -1
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch text[0] {
		case 'c':
			continue
		case 'p':
			fields := strings.Fields(text)
			if len(fields) < 4 || fields[1] != "edge" {
				return nil, fmt.Errorf("graph: dimacs line %d: bad problem line %q", line, text)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("graph: dimacs line %d: bad vertex count %q", line, fields[2])
			}
			n = v
		case 'e':
			if n < 0 {
				return nil, fmt.Errorf("graph: dimacs line %d: edge before problem line", line)
			}
			fields := strings.Fields(text)
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: dimacs line %d: bad edge %q", line, text)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || u < 1 || v < 1 || u > n || v > n {
				return nil, fmt.Errorf("graph: dimacs line %d: edge %q out of range", line, text)
			}
			edges = append(edges, Edge{U: VertexID(u - 1), V: VertexID(v - 1)})
		default:
			return nil, fmt.Errorf("graph: dimacs line %d: unknown record %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: dimacs input has no problem line")
	}
	return FromEdgeList(n, edges)
}

// WriteDIMACS writes the graph in DIMACS .col format.
func WriteDIMACS(w io.Writer, g *CSR, comment string) error {
	bw := bufio.NewWriter(w)
	if comment != "" {
		for _, line := range strings.Split(comment, "\n") {
			if _, err := fmt.Fprintf(bw, "c %s\n", line); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(bw, "p edge %d %d\n", g.NumVertices(), g.UndirectedEdgeCount()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(VertexID(v)) {
			if VertexID(v) < u {
				if _, err := fmt.Fprintf(bw, "e %d %d\n", v+1, u+1); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Mycielski returns the k-th Mycielski graph M_k: triangle-free with
// chromatic number exactly k (M_2 = K2, M_3 = C5, M_4 = Grötzsch).
// Vertex counts grow as 3·2^(k-2) − 1, so k ≤ 12 keeps it practical.
func Mycielski(k int) (*CSR, error) {
	if k < 2 || k > 12 {
		return nil, fmt.Errorf("graph: Mycielski k=%d out of [2,12]", k)
	}
	// Start with K2.
	edges := []Edge{{U: 0, V: 1}}
	n := 2
	for step := 3; step <= k; step++ {
		// Mycielskian: for graph (V,E) with |V|=n, add shadow u_i for
		// each v_i plus apex w. Edges: u_i ~ N(v_i), w ~ all u_i.
		shadowBase := n
		apex := 2 * n
		var next []Edge
		next = append(next, edges...)
		for _, e := range edges {
			next = append(next,
				Edge{U: VertexID(shadowBase) + e.U, V: e.V},
				Edge{U: e.U, V: VertexID(shadowBase) + e.V},
			)
		}
		for i := 0; i < n; i++ {
			next = append(next, Edge{U: VertexID(apex), V: VertexID(shadowBase + i)})
		}
		edges = next
		n = 2*n + 1
	}
	return FromEdgeList(n, edges)
}

// Queen returns the n×n queen graph: vertices are board squares, edges
// join squares a queen move apart. Chromatic number is n when n is not
// divisible by 2 or 3 (e.g. queen5_5 has χ=5); a classic DIMACS family.
func Queen(n int) (*CSR, error) {
	if n < 1 || n > 64 {
		return nil, fmt.Errorf("graph: Queen n=%d out of [1,64]", n)
	}
	id := func(r, c int) VertexID { return VertexID(r*n + c) }
	var edges []Edge
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			for r2 := r; r2 < n; r2++ {
				for c2 := 0; c2 < n; c2++ {
					if r2 == r && c2 <= c {
						continue
					}
					sameRow := r2 == r
					sameCol := c2 == c
					sameDiag := r2-r == c2-c || r2-r == c-c2
					if sameRow || sameCol || sameDiag {
						edges = append(edges, Edge{U: id(r, c), V: id(r2, c2)})
					}
				}
			}
		}
	}
	return FromEdgeList(n*n, edges)
}

// Complete returns K_n (chromatic number n).
func Complete(n int) (*CSR, error) {
	if n < 0 || n > 2048 {
		return nil, fmt.Errorf("graph: Complete n=%d out of [0,2048]", n)
	}
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{U: VertexID(u), V: VertexID(v)})
		}
	}
	return FromEdgeList(n, edges)
}

// Cycle returns C_n (chromatic number 2 for even n, 3 for odd n ≥ 3).
func Cycle(n int) (*CSR, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: Cycle n=%d < 3", n)
	}
	edges := make([]Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = Edge{U: VertexID(i), V: VertexID((i + 1) % n)}
	}
	return FromEdgeList(n, edges)
}
