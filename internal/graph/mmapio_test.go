package graph

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// randomV2Graph builds a deterministic random graph for v2 I/O tests.
func randomV2Graph(t *testing.T, n, m int, seed int64) *CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, Edge{U: VertexID(rng.Intn(n)), V: VertexID(rng.Intn(n))})
	}
	g, err := FromEdgeList(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sameCSR(t *testing.T, got, want *CSR, label string) {
	t.Helper()
	if len(got.Offsets) != len(want.Offsets) || len(got.Edges) != len(want.Edges) {
		t.Fatalf("%s: shape %d/%d, want %d/%d", label,
			len(got.Offsets), len(got.Edges), len(want.Offsets), len(want.Edges))
	}
	for i := range want.Offsets {
		if got.Offsets[i] != want.Offsets[i] {
			t.Fatalf("%s: Offsets[%d] = %d, want %d", label, i, got.Offsets[i], want.Offsets[i])
		}
	}
	for i := range want.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("%s: Edges[%d] = %d, want %d", label, i, got.Edges[i], want.Edges[i])
		}
	}
}

func TestBinaryV2RoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *CSR
	}{
		{"empty", &CSR{Offsets: []int64{0}, Edges: []VertexID{}}},
		{"single", randomV2Graph(t, 1, 0, 1)},
		{"small", randomV2Graph(t, 17, 40, 2)},
		{"medium", randomV2Graph(t, 500, 3000, 3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteBinaryV2(&buf, tc.g); err != nil {
				t.Fatal(err)
			}
			got, err := ReadBinaryV2(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			sameCSR(t, got, tc.g, "copying reader")
		})
	}
}

func TestBinaryV2SectionAlignment(t *testing.T) {
	g := randomV2Graph(t, 13, 30, 4)
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, g); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	offsetsOff := binary.LittleEndian.Uint64(b[32:40])
	edgesOff := binary.LittleEndian.Uint64(b[40:48])
	if offsetsOff%binaryV2Align != 0 || edgesOff%binaryV2Align != 0 {
		t.Fatalf("section offsets %d/%d not %d-aligned", offsetsOff, edgesOff, binaryV2Align)
	}
	if want := edgesOff + uint64(len(g.Edges))*4; uint64(len(b)) != want {
		t.Fatalf("file size %d, want %d", len(b), want)
	}
}

func TestMapBinaryFile(t *testing.T) {
	g := randomV2Graph(t, 300, 2000, 5)
	path := filepath.Join(t.TempDir(), "g.bcsr")
	if err := SaveBinaryV2File(path, g); err != nil {
		t.Fatal(err)
	}
	m, err := MapBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if runtime.GOOS == "linux" && !m.Mapped() {
		t.Error("expected the zero-copy mapping on linux")
	}
	mg := m.Graph()
	if !mg.Backed() && m.Mapped() {
		t.Error("mapped graph should report Backed")
	}
	sameCSR(t, mg, g, "mapped view")
	if err := mg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMappedCSRUseAfterClose(t *testing.T) {
	g := randomV2Graph(t, 20, 40, 6)
	path := filepath.Join(t.TempDir(), "g.bcsr")
	if err := SaveBinaryV2File(path, g); err != nil {
		t.Fatal(err)
	}
	m, err := MapBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Graph() after Close did not panic")
		}
	}()
	_ = m.Graph()
}

// corruptV2 returns a valid v2 image and helpers to corrupt it.
func corruptV2(t *testing.T) []byte {
	t.Helper()
	g := randomV2Graph(t, 50, 200, 7)
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// rewriteHeaderSum recomputes the header checksum after a deliberate
// field edit, so the test exercises the *payload* or layout check
// rather than tripping on the header checksum first.
func rewriteHeaderSum(b []byte) {
	binary.LittleEndian.PutUint64(b[56:64], fnv1a(fnvOffset64, b[:56]))
}

func TestBinaryV2CorruptInputs(t *testing.T) {
	valid := corruptV2(t)
	cases := map[string]func([]byte) []byte{
		"flipped payload byte": func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		},
		"bad header checksum": func(b []byte) []byte {
			b[57] ^= 0xff
			return b
		},
		"flipped endianness flag": func(b []byte) []byte {
			// Without fixing the header checksum: tampering must be caught.
			b[12] ^= byte(binaryV2FlagBigEndian)
			return b
		},
		"truncated header":  func(b []byte) []byte { return b[:40] },
		"truncated offsets": func(b []byte) []byte { return b[:binaryV2HeaderSize+8] },
		"truncated edges":   func(b []byte) []byte { return b[:len(b)-3] },
		"misaligned offsets section": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[32:40], 72) // not 64-aligned
			rewriteHeaderSum(b)
			return b
		},
		"inconsistent section layout": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[40:48], binary.LittleEndian.Uint64(b[40:48])+binaryV2Align)
			rewriteHeaderSum(b)
			return b
		},
		"v1 magic confusion": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[4:12], 1) // claims v1 in a v2 image
			rewriteHeaderSum(b)
			return b
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			data := corrupt(append([]byte(nil), valid...))
			if _, err := ReadBinaryV2(bytes.NewReader(data)); err == nil {
				t.Error("ReadBinaryV2 accepted corrupt input")
			}
			path := filepath.Join(t.TempDir(), "bad.bcsr")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if m, err := MapBinaryFile(path); err == nil {
				m.Close()
				t.Error("MapBinaryFile accepted corrupt input")
			}
		})
	}
}

// TestBinaryV2BigEndianPayload verifies a foreign-byte-order file is
// decoded by the copying reader and refused (→ fallback) by the mapper.
func TestBinaryV2BigEndianPayload(t *testing.T) {
	g := randomV2Graph(t, 30, 80, 8)
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, g); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	offsetsOff := binary.LittleEndian.Uint64(b[32:40])
	edgesOff := binary.LittleEndian.Uint64(b[40:48])
	// Byte-swap both sections in place and re-checksum.
	for i := offsetsOff; i < offsetsOff+uint64(len(g.Offsets))*8; i += 8 {
		binary.BigEndian.PutUint64(b[i:], uint64(g.Offsets[(i-offsetsOff)/8]))
	}
	for i := edgesOff; i < edgesOff+uint64(len(g.Edges))*4; i += 4 {
		binary.BigEndian.PutUint32(b[i:], g.Edges[(i-edgesOff)/4])
	}
	binary.LittleEndian.PutUint32(b[12:16], binaryV2FlagBigEndian)
	payloadSum := v2SectionSum(b[offsetsOff:offsetsOff+uint64(len(g.Offsets))*8],
		b[edgesOff:edgesOff+uint64(len(g.Edges))*4])
	binary.LittleEndian.PutUint64(b[48:56], payloadSum)
	rewriteHeaderSum(b)

	got, err := ReadBinaryV2(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("copying reader on BE payload: %v", err)
	}
	sameCSR(t, got, g, "big-endian decode")

	path := filepath.Join(t.TempDir(), "be.bcsr")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := MapBinaryFile(path)
	if err != nil {
		t.Fatalf("MapBinaryFile on BE payload: %v", err)
	}
	defer m.Close()
	if m.Mapped() {
		t.Error("BE payload must not be aliased in place")
	}
	sameCSR(t, m.Graph(), g, "big-endian fallback")
}

func TestSniffFormat(t *testing.T) {
	dir := t.TempDir()
	g := randomV2Graph(t, 10, 20, 9)

	v1 := filepath.Join(dir, "g1.bcsr")
	if err := SaveBinaryFile(v1, g); err != nil {
		t.Fatal(err)
	}
	v2 := filepath.Join(dir, "g2.bcsr")
	if err := SaveBinaryV2File(v2, g); err != nil {
		t.Fatal(err)
	}
	el := filepath.Join(dir, "g.txt")
	f, err := os.Create(el)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	short := filepath.Join(dir, "short")
	if err := os.WriteFile(short, []byte("BCSR"), 0o644); err != nil {
		t.Fatal(err)
	}
	future := filepath.Join(dir, "future.bcsr")
	fb := append([]byte(binaryMagic), make([]byte, 8)...)
	binary.LittleEndian.PutUint64(fb[4:], 99)
	if err := os.WriteFile(future, fb, 0o644); err != nil {
		t.Fatal(err)
	}

	for path, want := range map[string]string{
		v1: FormatBCSR1, v2: FormatBCSR2, el: FormatEdgeList, short: FormatEdgeList,
	} {
		got, err := SniffFormat(path)
		if err != nil {
			t.Errorf("SniffFormat(%s): %v", path, err)
		} else if got != want {
			t.Errorf("SniffFormat(%s) = %q, want %q", path, got, want)
		}
	}
	if _, err := SniffFormat(future); err == nil ||
		!strings.Contains(err.Error(), "unsupported version") {
		t.Errorf("SniffFormat on future version: err = %v, want unsupported-version error", err)
	}
}

// TestSaveAtomicLeavesNoTemp checks the atomic writers rename cleanly
// and a failed write leaves the original file untouched.
func TestSaveAtomicLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	g := randomV2Graph(t, 10, 20, 10)
	path := filepath.Join(dir, "g.bcsr")
	if err := SaveBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A writer that fails must not clobber the existing file.
	if err := saveAtomic(path, func(io.Writer) error { return os.ErrInvalid }); err == nil {
		t.Fatal("saveAtomic with failing writer did not error")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, after) {
		t.Fatal("failed save clobbered the target file")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}
