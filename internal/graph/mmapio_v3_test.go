package graph

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// rangeParts assigns vertices to k contiguous ranges — the shape the
// ranges strategy produces.
func rangeParts(n, k int) []int32 {
	parts := make([]int32, n)
	for v := range parts {
		p := v * k / max(n, 1)
		if p >= k {
			p = k - 1
		}
		parts[v] = int32(p)
	}
	return parts
}

// scatterParts assigns vertices round-robin — maximally non-contiguous,
// exercising the binary-search LocalIndex path.
func scatterParts(n, k int) []int32 {
	parts := make([]int32, n)
	for v := range parts {
		parts[v] = int32(v % k)
	}
	return parts
}

func v3TestGraph(t testing.TB, n, m int, seed int64) *CSR {
	t.Helper()
	g, err := FromEdgeList(n, randomEdges(n, m, seed))
	if err != nil {
		t.Fatalf("FromEdgeList: %v", err)
	}
	return g
}

func writeV3(t testing.TB, g *CSR, parts []int32, k int, strategy uint32) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinaryV3(&buf, g, parts, k, strategy); err != nil {
		t.Fatalf("WriteBinaryV3: %v", err)
	}
	return buf.Bytes()
}

func writeV3File(t testing.TB, g *CSR, parts []int32, k int, strategy uint32) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.bcsr")
	if err := SaveBinaryV3File(path, g, parts, k, strategy); err != nil {
		t.Fatalf("SaveBinaryV3File: %v", err)
	}
	return path
}

func TestBinaryV3RoundTrip(t *testing.T) {
	g := v3TestGraph(t, 500, 3000, 7)
	for _, k := range []int{1, 2, 4, 7} {
		for name, parts := range map[string][]int32{
			"ranges":  rangeParts(g.NumVertices(), k),
			"scatter": scatterParts(g.NumVertices(), k),
		} {
			label := fmt.Sprintf("k=%d/%s", k, name)
			img := writeV3(t, g, parts, k, V3PartitionRanges)
			got, meta, err := ReadBinaryV3(bytes.NewReader(img))
			if err != nil {
				t.Fatalf("%s: ReadBinaryV3: %v", label, err)
			}
			sameCSR(t, got, g, label)
			if meta.Shards != k || meta.Strategy != V3PartitionRanges {
				t.Fatalf("%s: meta = %d shards strategy %d", label, meta.Shards, meta.Strategy)
			}
			if meta.SourceHash != ContentHash(g) {
				t.Fatalf("%s: source hash mismatch", label)
			}
			if meta.EdgesSorted != g.EdgesSorted() {
				t.Fatalf("%s: sorted flag mismatch", label)
			}
			for v, p := range parts {
				if meta.Parts[v] != p {
					t.Fatalf("%s: parts[%d] = %d, want %d", label, v, meta.Parts[v], p)
				}
			}
			_, cut, boundary := v3Audit(g, parts)
			if meta.CutEdges != cut || meta.Boundary != boundary {
				t.Fatalf("%s: totals (%d,%d), want (%d,%d)", label, meta.CutEdges, meta.Boundary, cut, boundary)
			}
		}
	}
}

func TestBinaryV3EmptyGraph(t *testing.T) {
	g, _ := FromEdgeList(0, nil)
	img := writeV3(t, g, nil, 1, V3PartitionRanges)
	got, meta, err := ReadBinaryV3(bytes.NewReader(img))
	if err != nil {
		t.Fatalf("ReadBinaryV3: %v", err)
	}
	if got.NumVertices() != 0 || meta.Shards != 1 {
		t.Fatalf("empty graph round-trip: %d vertices, %d shards", got.NumVertices(), meta.Shards)
	}
}

func TestBinaryV3WriterRejects(t *testing.T) {
	g := v3TestGraph(t, 10, 20, 1)
	var buf bytes.Buffer
	if err := WriteBinaryV3(&buf, g, rangeParts(10, 2), 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if err := WriteBinaryV3(&buf, g, rangeParts(9, 2), 2, 0); err == nil {
		t.Fatal("short parts accepted")
	}
	if err := WriteBinaryV3(&buf, g, []int32{0, 0, 0, 0, 0, 0, 0, 0, 0, 5}, 2, 0); err == nil {
		t.Fatal("out-of-range part accepted")
	}
	if err := WriteBinaryV3(&buf, g, rangeParts(10, 2), 2, 99); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestSniffFormatV3(t *testing.T) {
	g := v3TestGraph(t, 40, 100, 3)
	path := writeV3File(t, g, rangeParts(40, 2), 2, V3PartitionLabelProp)
	format, err := SniffFormat(path)
	if err != nil {
		t.Fatalf("SniffFormat: %v", err)
	}
	if format != FormatBCSR3 {
		t.Fatalf("SniffFormat = %q, want %q", format, FormatBCSR3)
	}
}

// TestBinaryV3ConversionRoundTrip drives the v2 → v3 conversion shape
// preprocess -convert uses: a graph saved as v2, reloaded, repartitioned
// and saved as v3 must reconstruct the identical CSR.
func TestBinaryV3ConversionRoundTrip(t *testing.T) {
	g := v3TestGraph(t, 300, 2400, 5)
	dir := t.TempDir()
	v2Path := filepath.Join(dir, "g.v2.bcsr")
	if err := SaveBinaryV2File(v2Path, g); err != nil {
		t.Fatalf("SaveBinaryV2File: %v", err)
	}
	loaded, err := LoadBinaryV2File(v2Path)
	if err != nil {
		t.Fatalf("LoadBinaryV2File: %v", err)
	}
	v3Path := filepath.Join(dir, "g.v3.bcsr")
	if err := SaveBinaryV3File(v3Path, loaded, rangeParts(300, 4), 4, V3PartitionRanges); err != nil {
		t.Fatalf("SaveBinaryV3File: %v", err)
	}
	back, meta, err := LoadBinaryV3File(v3Path)
	if err != nil {
		t.Fatalf("LoadBinaryV3File: %v", err)
	}
	sameCSR(t, back, g, "v2→v3 conversion")
	if meta.SourceHash != ContentHash(g) {
		t.Fatal("conversion changed the content hash")
	}
}

func TestBinaryV3CorruptionDetected(t *testing.T) {
	g := v3TestGraph(t, 200, 1500, 11)
	img := writeV3(t, g, scatterParts(200, 3), 3, V3PartitionRanges)
	cases := []struct {
		name string
		at   int
	}{
		{"header version byte", 5},
		{"header flags", 12},
		{"header shard count", 32},
		{"meta parts byte", binaryV3HeaderSize + 3},
		{"meta directory byte", binaryV3HeaderSize + 200*4 + 16 + 40},
		{"first section byte", 1156},      // inside shard 0's offsets
		{"last section byte", len(img) - 65}, // past the ≤63-byte trailing pad
	}
	for _, tc := range cases {
		bad := append([]byte(nil), img...)
		bad[tc.at] ^= 0x40
		if _, _, err := ReadBinaryV3(bytes.NewReader(bad)); err == nil {
			t.Errorf("%s: corruption at byte %d accepted", tc.name, tc.at)
		}
	}
	for _, cut := range []int{binaryV3HeaderSize - 1, binaryV3HeaderSize + 10, len(img) / 2, len(img) - 65} {
		if _, _, err := ReadBinaryV3(bytes.NewReader(img[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestOpenShardedFile(t *testing.T) {
	g := v3TestGraph(t, 400, 2600, 13)
	for _, tc := range []struct {
		name  string
		parts []int32
		k     int
	}{
		{"ranges", rangeParts(400, 4), 4},
		{"scatter", scatterParts(400, 4), 4},
	} {
		path := writeV3File(t, g, tc.parts, tc.k, V3PartitionRanges)
		sf, err := OpenShardedFile(path)
		if err != nil {
			t.Fatalf("%s: OpenShardedFile: %v", tc.name, err)
		}
		if sf.NumVertices() != 400 || sf.NumEdges() != g.NumEdges() || sf.Shards() != tc.k {
			t.Fatalf("%s: shape %d/%d/%d", tc.name, sf.NumVertices(), sf.NumEdges(), sf.Shards())
		}
		mask, cut, boundary := v3Audit(g, tc.parts)
		if sf.CutEdges() != cut || sf.Boundary() != boundary {
			t.Fatalf("%s: totals (%d,%d), want (%d,%d)", tc.name, sf.CutEdges(), sf.Boundary(), cut, boundary)
		}
		for s := 0; s < tc.k; s++ {
			sm, err := sf.MapShard(s)
			if err != nil {
				t.Fatalf("%s: MapShard(%d): %v", tc.name, s, err)
			}
			for i, v := range sm.VMap {
				if tc.parts[v] != int32(s) {
					t.Fatalf("%s: shard %d holds foreign vertex %d", tc.name, s, v)
				}
				j, ok := sm.LocalIndex(v)
				if !ok || j != i {
					t.Fatalf("%s: LocalIndex(%d) = %d,%v want %d", tc.name, v, j, ok, i)
				}
				want := g.Neighbors(v)
				got := sm.Neighbors(i)
				if len(got) != len(want) {
					t.Fatalf("%s: shard %d vertex %d degree %d, want %d", tc.name, s, v, len(got), len(want))
				}
				for x := range want {
					if got[x] != want[x] {
						t.Fatalf("%s: shard %d vertex %d adjacency differs at %d", tc.name, s, v, x)
					}
				}
			}
			bm, err := sf.MapBoundary(s)
			if err != nil {
				t.Fatalf("%s: MapBoundary(%d): %v", tc.name, s, err)
			}
			bi := 0
			for _, v := range sm.VMap {
				if !mask[v] {
					if _, ok := bm.Find(v); ok {
						t.Fatalf("%s: non-frontier vertex %d in boundary block", tc.name, v)
					}
					continue
				}
				j, ok := bm.Find(v)
				if !ok || bm.BVerts[j] != v {
					t.Fatalf("%s: frontier vertex %d missing from boundary block", tc.name, v)
				}
				var lower []VertexID
				for _, u := range g.Neighbors(v) {
					if u < v {
						lower = append(lower, u)
					}
				}
				got := bm.Neighbors(j)
				if len(got) != len(lower) {
					t.Fatalf("%s: boundary adjacency of %d has %d entries, want %d", tc.name, v, len(got), len(lower))
				}
				for x := range lower {
					if got[x] != lower[x] {
						t.Fatalf("%s: boundary adjacency of %d differs at %d", tc.name, v, x)
					}
				}
				bi++
			}
			if bi != len(bm.BVerts) {
				t.Fatalf("%s: shard %d boundary block has %d extra vertices", tc.name, s, len(bm.BVerts)-bi)
			}
			if err := bm.Close(); err != nil {
				t.Fatalf("%s: BoundaryMap.Close: %v", tc.name, err)
			}
			if err := sm.Close(); err != nil {
				t.Fatalf("%s: ShardMap.Close: %v", tc.name, err)
			}
		}
		st := sf.Stats()
		if st.Maps == 0 || st.Maps != st.Unmaps {
			t.Fatalf("%s: stats maps=%d unmaps=%d", tc.name, st.Maps, st.Unmaps)
		}
		if st.ResidentBytes != 0 || st.PeakResidentBytes <= 0 {
			t.Fatalf("%s: stats resident=%d peak=%d", tc.name, st.ResidentBytes, st.PeakResidentBytes)
		}
		if err := sf.Close(); err != nil {
			t.Fatalf("%s: Close: %v", tc.name, err)
		}
		if _, err := sf.MapShard(0); err == nil {
			t.Fatalf("%s: MapShard after Close succeeded", tc.name)
		}
	}
}

func TestShardedFileMaterialize(t *testing.T) {
	g := v3TestGraph(t, 250, 1800, 17)
	path := writeV3File(t, g, rangeParts(250, 3), 3, V3PartitionRanges)
	sf, err := OpenShardedFile(path)
	if err != nil {
		t.Fatalf("OpenShardedFile: %v", err)
	}
	defer sf.Close()
	got, err := sf.Materialize()
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	sameCSR(t, got, g, "Materialize")
}

func TestOpenShardedFileRejectsCorruption(t *testing.T) {
	g := v3TestGraph(t, 120, 900, 19)
	path := writeV3File(t, g, rangeParts(120, 2), 2, V3PartitionRanges)
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flip := func(t *testing.T, at int) string {
		bad := append([]byte(nil), img...)
		bad[at] ^= 0x20
		p := filepath.Join(t.TempDir(), "bad.bcsr")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Header and meta corruption fail at open.
	for _, at := range []int{8, binaryV3HeaderSize + 1, binaryV3HeaderSize + 120*4 + 16 + 8} {
		if sf, err := OpenShardedFile(flip(t, at)); err == nil {
			sf.Close()
			t.Errorf("corruption at byte %d accepted at open", at)
		}
	}
	// Section corruption fails at MapShard/MapBoundary time.
	sf, err := OpenShardedFile(flip(t, len(img)-65))
	if err != nil {
		t.Fatalf("open with section corruption: %v", err)
	}
	defer sf.Close()
	failed := false
	for s := 0; s < sf.Shards(); s++ {
		if sm, err := sf.MapShard(s); err != nil {
			failed = true
		} else {
			sm.Close()
		}
		if bm, err := sf.MapBoundary(s); err != nil {
			failed = true
		} else {
			bm.Close()
		}
	}
	if !failed {
		t.Error("section corruption never detected by MapShard/MapBoundary")
	}
	// Truncated file fails at open.
	p := filepath.Join(t.TempDir(), "trunc.bcsr")
	if err := os.WriteFile(p, img[:len(img)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if sf, err := OpenShardedFile(p); err == nil {
		sf.Close()
		t.Error("truncated file accepted at open")
	}
}

// TestMappedCSRConcurrentClose is the regression test for the
// double-Close hazard: racing Closes must never reach a second munmap.
// Run under -race this also proves the arbitration is data-race free.
func TestMappedCSRConcurrentClose(t *testing.T) {
	g := v3TestGraph(t, 100, 600, 23)
	path := filepath.Join(t.TempDir(), "g.bcsr")
	if err := SaveBinaryV2File(path, g); err != nil {
		t.Fatalf("SaveBinaryV2File: %v", err)
	}
	for round := 0; round < 20; round++ {
		m, err := MapBinaryFile(path)
		if err != nil {
			t.Fatalf("MapBinaryFile: %v", err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := m.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
			}()
		}
		wg.Wait()
	}
}

// TestShardMapConcurrentClose proves the hardened close path carries
// over to the v3 shard and boundary maps.
func TestShardMapConcurrentClose(t *testing.T) {
	g := v3TestGraph(t, 200, 1400, 29)
	path := writeV3File(t, g, rangeParts(200, 2), 2, V3PartitionRanges)
	sf, err := OpenShardedFile(path)
	if err != nil {
		t.Fatalf("OpenShardedFile: %v", err)
	}
	defer sf.Close()
	for round := 0; round < 10; round++ {
		sm, err := sf.MapShard(round % 2)
		if err != nil {
			t.Fatalf("MapShard: %v", err)
		}
		bm, err := sf.MapBoundary(round % 2)
		if err != nil {
			t.Fatalf("MapBoundary: %v", err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := sm.Close(); err != nil {
					t.Errorf("ShardMap.Close: %v", err)
				}
				if err := bm.Close(); err != nil {
					t.Errorf("BoundaryMap.Close: %v", err)
				}
			}()
		}
		wg.Wait()
	}
	if st := sf.Stats(); st.ResidentBytes != 0 {
		t.Fatalf("resident bytes %d after all maps closed", st.ResidentBytes)
	}
}
