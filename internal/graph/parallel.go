package graph

// Parallel construction pipeline. The paper treats preprocessing cost as
// a first-class evaluation subject (Table 2); on multicore hosts the
// sequential two-pass CSR build and the per-vertex edge sorting dominate
// end-to-end time for large edge lists, so both are parallelized here.
// Every parallel entry point produces output identical to its sequential
// counterpart (enforced by equivalence tests): counting and filling may
// happen in any order because adjacency lists are canonicalized by the
// sort + dedup passes that follow.

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// Parallelization thresholds: below these sizes the coordination overhead
// outweighs the win and the sequential code runs instead.
const (
	parallelBuildMinEdges   = 1 << 13
	parallelSortMinVertices = 1 << 10
	// vertexBlock is the granularity at which workers claim vertex ranges
	// from the shared cursor during sort/dedup/relabel passes.
	vertexBlock = 512
)

// normWorkers resolves a worker count: <=0 means GOMAXPROCS.
func normWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// FromEdgeListParallel is FromEdgeList built by `workers` goroutines
// (<=0: GOMAXPROCS): per-worker degree counters over edge chunks, a
// prefix sum, an atomic-cursor scatter fill, parallel per-vertex edge
// sorting and a parallel dedup compaction. The result is identical to
// FromEdgeList on the same input, including the error on out-of-range
// edges (the lowest-indexed offending edge is reported).
func FromEdgeListParallel(n int, edges []Edge, workers int) (*CSR, error) {
	workers = normWorkers(workers)
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if workers == 1 || n == 0 || len(edges) < parallelBuildMinEdges {
		return FromEdgeList(n, edges)
	}

	// Pass 1: degree counting. Each worker owns one contiguous edge chunk
	// and a private counter array, so counting is write-contention-free;
	// out-of-range edges are recorded by lowest input index so the error
	// matches the sequential scan order.
	chunk := (len(edges) + workers - 1) / workers
	degs := make([][]int32, workers)
	badIdx := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w * chunk
			hi := min(lo+chunk, len(edges))
			badIdx[w] = -1
			deg := make([]int32, n)
			degs[w] = deg
			for i := lo; i < hi; i++ {
				e := edges[i]
				if int(e.U) >= n || int(e.V) >= n {
					badIdx[w] = i
					return
				}
				if e.U == e.V {
					continue
				}
				deg[e.U]++
				deg[e.V]++
			}
		}(w)
	}
	wg.Wait()
	bad := -1
	for _, i := range badIdx {
		if i >= 0 && (bad < 0 || i < bad) {
			bad = i
		}
	}
	if bad >= 0 {
		e := edges[bad]
		return nil, fmt.Errorf("graph: edge (%d,%d) out of range n=%d", e.U, e.V, n)
	}

	// Reduce the per-worker counters into offsets. Each worker sums a
	// contiguous vertex range across all counter arrays; the prefix sum
	// itself is a cheap O(n) sequential pass.
	offsets := make([]int64, n+1)
	parallelVertexRanges(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			var d int64
			for w := 0; w < workers; w++ {
				d += int64(degs[w][v])
			}
			offsets[v+1] = d
		}
	})
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}

	// Pass 2: scatter fill through per-vertex atomic cursors. Slot order
	// within an adjacency list is scheduling-dependent, which is fine:
	// the sort pass below canonicalizes it.
	adj := make([]VertexID, offsets[n])
	fill := make([]int32, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w * chunk
			hi := min(lo+chunk, len(edges))
			for _, e := range edges[lo:hi] {
				if e.U == e.V {
					continue
				}
				adj[offsets[e.U]+int64(atomic.AddInt32(&fill[e.U], 1))-1] = e.V
				adj[offsets[e.V]+int64(atomic.AddInt32(&fill[e.V], 1))-1] = e.U
			}
		}(w)
	}
	wg.Wait()

	g := &CSR{Offsets: offsets, Edges: adj}
	g.SortEdgesParallel(workers)
	g.dedupSortedParallel(workers)
	return g, nil
}

// SortEdgesParallel sorts every adjacency list ascending in place using
// `workers` goroutines (<=0: GOMAXPROCS) claiming vertex blocks from a
// shared cursor, so a few mega-degree lists cannot strand one worker.
func (g *CSR) SortEdgesParallel(workers int) {
	workers = normWorkers(workers)
	n := g.NumVertices()
	if workers == 1 || n < parallelSortMinVertices {
		g.SortEdges()
		return
	}
	parallelVertexBlocks(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			slices.Sort(g.Neighbors(VertexID(v)))
		}
	})
}

// dedupSortedParallel removes duplicate destinations from each (sorted)
// adjacency list. Unlike the sequential in-place compaction, duplicates
// are counted per vertex in parallel, a prefix sum assigns destination
// ranges, and unique runs are copied into a fresh edge array — the
// destination ranges are disjoint, so the copy pass is race-free.
func (g *CSR) dedupSortedParallel(workers int) {
	workers = normWorkers(workers)
	n := g.NumVertices()
	if workers == 1 || n < parallelSortMinVertices {
		g.dedupSorted()
		return
	}
	uniq := make([]int64, n+1)
	parallelVertexBlocks(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			adj := g.Neighbors(VertexID(v))
			var u int64
			for i, d := range adj {
				if i == 0 || d != adj[i-1] {
					u++
				}
			}
			uniq[v+1] = u
		}
	})
	for v := 0; v < n; v++ {
		uniq[v+1] += uniq[v]
	}
	if uniq[n] == g.Offsets[n] { // no duplicates anywhere: nothing to move
		return
	}
	edges := make([]VertexID, uniq[n])
	parallelVertexBlocks(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			adj := g.Neighbors(VertexID(v))
			w := uniq[v]
			for i, d := range adj {
				if i == 0 || d != adj[i-1] {
					edges[w] = d
					w++
				}
			}
		}
	})
	g.Offsets = uniq
	g.Edges = edges
}

// parallelVertexBlocks runs fn over [0,n) split into vertexBlock-sized
// ranges claimed dynamically from a shared cursor by `workers` goroutines.
func parallelVertexBlocks(n, workers int, fn func(lo, hi int)) {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(vertexBlock)) - vertexBlock
				if lo >= n {
					return
				}
				fn(lo, min(lo+vertexBlock, n))
			}
		}()
	}
	wg.Wait()
}

// parallelVertexRanges runs fn over [0,n) split into one contiguous range
// per worker — for passes whose per-vertex cost is uniform.
func parallelVertexRanges(n, workers int, fn func(lo, hi int)) {
	per := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		if lo >= n {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, min(lo+per, n))
	}
	wg.Wait()
}
