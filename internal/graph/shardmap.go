package graph

import (
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync/atomic"
	"unsafe"
)

// ShardedFile is the random-access handle to a BCSR v3 file: the header
// and meta section (partition assignment, totals, shard directory) are
// read and fully verified at open and stay resident — O(V) for the
// parts array — while shard payloads are mapped on demand via MapShard/
// MapBoundary and retired again, so a streaming run's peak memory is
// bounded by the shards it keeps mapped rather than the whole graph.
// All methods are safe for concurrent use; the residency counters are
// the instrumentation the bounded-residency invariant test asserts on.
type ShardedFile struct {
	f    *os.File
	path string
	hdr  v3HeaderFields
	meta *v3Meta
	cl   closeOnce

	maps          atomic.Int64
	unmaps        atomic.Int64
	residentBytes atomic.Int64
	peakResident  atomic.Int64
}

// ShardMapStats is a snapshot of a handle's mapping activity.
type ShardMapStats struct {
	// Maps / Unmaps count shard-section mappings created and retired
	// (boundary blocks included).
	Maps, Unmaps int64
	// ResidentBytes is the payload currently mapped (or pread-copied on
	// the fallback path); PeakResidentBytes its high-water mark.
	ResidentBytes, PeakResidentBytes int64
}

// OpenShardedFile opens a v3 file for random shard access. The header,
// partition assignment and directory are verified here (checksums,
// domains, layout recomputation); section payloads are verified at each
// MapShard. The handle keeps the file descriptor open until Close.
func OpenShardedFile(path string) (*ShardedFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sf, err := newShardedFile(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return sf, nil
}

func newShardedFile(f *os.File, path string) (*ShardedFile, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < binaryV3HeaderSize {
		return nil, fmt.Errorf("graph: v3 file too short (%d bytes)", st.Size())
	}
	hdr := make([]byte, binaryV3HeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("graph: truncated v3 header: %w", err)
	}
	fields, err := parseV3Header(hdr)
	if err != nil {
		return nil, err
	}
	if fields.flags&binaryV3FlagBigEndian != 0 {
		return nil, fmt.Errorf("graph: v3 big-endian payloads not supported (writers emit little-endian only)")
	}
	metaLen := v3MetaLen(fields.nv, fields.shards)
	// Size-check before allocating: a lying header cannot balloon the
	// meta read past what the file actually holds.
	if uint64(st.Size()) < binaryV3HeaderSize+metaLen {
		return nil, fmt.Errorf("graph: v3 file truncated (%d bytes, meta section needs %d)",
			st.Size(), binaryV3HeaderSize+metaLen)
	}
	metaBytes := make([]byte, metaLen)
	if _, err := f.ReadAt(metaBytes, binaryV3HeaderSize); err != nil {
		return nil, fmt.Errorf("graph: truncated v3 meta section: %w", err)
	}
	m, err := parseV3Meta(metaBytes, fields)
	if err != nil {
		return nil, err
	}
	if uint64(st.Size()) < m.fileSize {
		return nil, fmt.Errorf("graph: v3 file truncated (%d bytes, layout needs %d)", st.Size(), m.fileSize)
	}
	return &ShardedFile{f: f, path: path, hdr: fields, meta: m}, nil
}

// NumVertices returns the global vertex count.
func (sf *ShardedFile) NumVertices() int { return int(sf.hdr.nv) }

// NumEdges returns the global directed adjacency entry count.
func (sf *ShardedFile) NumEdges() int64 { return int64(sf.hdr.ne) }

// Shards returns the partition count K.
func (sf *ShardedFile) Shards() int { return int(sf.hdr.shards) }

// Strategy returns the persisted V3Partition* strategy code.
func (sf *ShardedFile) Strategy() uint32 { return sf.hdr.strategy }

// SourceHash returns the ContentHash of the source CSR — the
// partition-cache key.
func (sf *ShardedFile) SourceHash() uint64 { return sf.hdr.sourceHash }

// EdgesSorted reports whether the source adjacency was sorted ascending
// (recorded at write time; lets the streamed attempt break at u>v
// exactly like the in-core engine).
func (sf *ShardedFile) EdgesSorted() bool { return sf.hdr.sorted() }

// Parts returns the persisted partition assignment. The slice is the
// handle's resident copy — callers must not mutate it.
func (sf *ShardedFile) Parts() []int32 { return sf.meta.parts }

// CutEdges returns the persisted cross-partition undirected edge count
// (partition.Classify semantics).
func (sf *ShardedFile) CutEdges() int64 { return int64(sf.meta.cutEdges) }

// Boundary returns the persisted boundary-vertex count
// (partition.Classify semantics).
func (sf *ShardedFile) Boundary() int { return int(sf.meta.boundary) }

// ShardSize returns shard s's vertex and adjacency-entry counts.
func (sf *ShardedFile) ShardSize(s int) (nv int, ne int64) {
	d := &sf.meta.dir[s]
	return int(d.nvLocal), int64(d.neLocal)
}

// Stats snapshots the mapping counters.
func (sf *ShardedFile) Stats() ShardMapStats {
	return ShardMapStats{
		Maps:              sf.maps.Load(),
		Unmaps:            sf.unmaps.Load(),
		ResidentBytes:     sf.residentBytes.Load(),
		PeakResidentBytes: sf.peakResident.Load(),
	}
}

// Close releases the file descriptor. Shard maps created earlier hold
// their own mappings and stay valid until their own Close; new MapShard
// calls fail. Idempotent, including under concurrent double-Close.
func (sf *ShardedFile) Close() error {
	if !sf.cl.first() {
		return nil
	}
	return sf.f.Close()
}

func (sf *ShardedFile) addResident(n int64) {
	if n == 0 {
		return
	}
	cur := sf.residentBytes.Add(n)
	for {
		peak := sf.peakResident.Load()
		if cur <= peak || sf.peakResident.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// loadRange maps (or, where mmap is unavailable, pread-copies) n bytes
// at off. view is the requested range; mapping is non-nil only when a
// real mmap backs it.
func (sf *ShardedFile) loadRange(off, n uint64) (mapping, view []byte, err error) {
	if hostLittleEndian() {
		if mapping, view, err = mmapRange(sf.f, off, n); err == nil {
			return mapping, view, nil
		}
	}
	view = make([]byte, n)
	if _, err := sf.f.ReadAt(view, int64(off)); err != nil {
		return nil, nil, fmt.Errorf("graph: v3 section read at %d: %w", off, err)
	}
	return nil, view, nil
}

// ShardMap is one shard's mapped main sections: local CSR offsets, the
// full global adjacency of the shard's vertices, and the local→global
// vertex map. The slices alias the mapping (or a pread copy) and are
// valid only until Close.
type ShardMap struct {
	sf      *ShardedFile
	shard   int
	mapping []byte
	bytes   int64
	cl      closeOnce

	// Offsets are local: Edges[Offsets[i]:Offsets[i+1]] is the global
	// adjacency of VMap[i].
	Offsets []int64
	Edges   []VertexID
	VMap    []VertexID

	contig bool // VMap is one contiguous ID range: LocalIndex is O(1)
}

// MapShard maps shard s's offsets+edges+vmap sections (one contiguous
// file range), verifies their CRCs and structural invariants, and
// charges the bytes to the handle's residency counters.
func (sf *ShardedFile) MapShard(s int) (*ShardMap, error) {
	if sf.cl.done() {
		return nil, fmt.Errorf("graph: ShardedFile used after Close")
	}
	if s < 0 || s >= sf.Shards() {
		return nil, fmt.Errorf("graph: shard %d out of range [0,%d)", s, sf.Shards())
	}
	d := &sf.meta.dir[s]
	end := d.vmapOff + d.nvLocal*4
	mapping, view, err := sf.loadRange(d.offsetsOff, end-d.offsetsOff)
	if err != nil {
		return nil, err
	}
	sm := &ShardMap{sf: sf, shard: s, mapping: mapping, bytes: int64(len(view))}
	offB := view[:(d.nvLocal+1)*8]
	edgeB := view[d.edgesOff-d.offsetsOff:][:d.neLocal*4]
	vmapB := view[d.vmapOff-d.offsetsOff:][:d.nvLocal*4]
	if sumA := uint64(crc32.Checksum(offB, crcTable))<<32 | uint64(crc32.Checksum(edgeB, crcTable)); sumA != d.sumA {
		releaseLoad(mapping)
		return nil, fmt.Errorf("graph: v3 shard %d section checksum mismatch", s)
	}
	if sumV := uint32(d.sumB >> 32); crc32.Checksum(vmapB, crcTable) != sumV {
		releaseLoad(mapping)
		return nil, fmt.Errorf("graph: v3 shard %d vmap checksum mismatch", s)
	}
	if mapping != nil {
		// LE host (loadRange only maps there): alias in place.
		sm.Offsets = unsafe.Slice((*int64)(unsafe.Pointer(&offB[0])), d.nvLocal+1)
		if d.neLocal > 0 {
			sm.Edges = unsafe.Slice((*VertexID)(unsafe.Pointer(&edgeB[0])), d.neLocal)
		} else {
			sm.Edges = []VertexID{}
		}
		if d.nvLocal > 0 {
			sm.VMap = unsafe.Slice((*VertexID)(unsafe.Pointer(&vmapB[0])), d.nvLocal)
		} else {
			sm.VMap = []VertexID{}
		}
		if err := validateShardSections(s, sf.hdr.nv, sf.meta.parts, sm.Offsets, sm.Edges, sm.VMap, d); err != nil {
			releaseLoad(mapping)
			return nil, err
		}
	} else {
		var err error
		if sm.Offsets, sm.Edges, sm.VMap, err = decodeV3Shard(s, d, sf.hdr.nv, sf.meta.parts, offB, edgeB, vmapB); err != nil {
			return nil, err
		}
	}
	n := len(sm.VMap)
	sm.contig = n > 0 && int(sm.VMap[n-1]-sm.VMap[0]) == n-1
	sf.maps.Add(1)
	sf.addResident(sm.bytes)
	return sm, nil
}

func releaseLoad(mapping []byte) {
	if mapping != nil {
		releaseMapping(mapping)
	}
}

// validateShardSections checks the invariants decodeV3Shard enforces,
// over already-typed (aliased) sections.
func validateShardSections(s int, nv uint64, parts []int32, offsets []int64, edges, vmap []VertexID, d *v3ShardDir) error {
	if offsets[0] != 0 {
		return fmt.Errorf("graph: v3 shard %d offsets start at %d", s, offsets[0])
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return fmt.Errorf("graph: v3 shard %d offsets decrease at %d", s, i)
		}
	}
	if offsets[len(offsets)-1] != int64(d.neLocal) {
		return fmt.Errorf("graph: v3 shard %d offsets end at %d (directory claims %d entries)",
			s, offsets[len(offsets)-1], d.neLocal)
	}
	for _, e := range edges {
		if uint64(e) >= nv {
			return fmt.Errorf("graph: v3 shard %d edge destination %d out of range", s, e)
		}
	}
	for i, v := range vmap {
		if uint64(v) >= nv || parts[v] != int32(s) {
			return fmt.Errorf("graph: v3 shard %d vmap entry %d not a shard vertex", s, v)
		}
		if i > 0 && v <= vmap[i-1] {
			return fmt.Errorf("graph: v3 shard %d vmap not strictly ascending at %d", s, i)
		}
	}
	return nil
}

// LocalIndex translates a global vertex ID to its local index in this
// shard: O(1) when the shard holds a contiguous ID range (the ranges
// strategy), binary search otherwise.
func (sm *ShardMap) LocalIndex(v VertexID) (int, bool) {
	if len(sm.VMap) == 0 {
		return 0, false
	}
	if sm.contig {
		if v < sm.VMap[0] || v > sm.VMap[len(sm.VMap)-1] {
			return 0, false
		}
		return int(v - sm.VMap[0]), true
	}
	i := sort.Search(len(sm.VMap), func(i int) bool { return sm.VMap[i] >= v })
	if i == len(sm.VMap) || sm.VMap[i] != v {
		return 0, false
	}
	return i, true
}

// Neighbors returns the global adjacency of the vertex at local index i.
func (sm *ShardMap) Neighbors(i int) []VertexID {
	return sm.Edges[sm.Offsets[i]:sm.Offsets[i+1]]
}

// Mapped reports whether a real mmap backs the sections (false on the
// pread-copy fallback).
func (sm *ShardMap) Mapped() bool { return sm.mapping != nil }

// Close retires the shard's sections: MADV_DONTNEED + munmap on the
// mapped path, and in either case the bytes leave the residency
// counters. Idempotent, including under concurrent double-Close.
func (sm *ShardMap) Close() error {
	if !sm.cl.first() {
		return nil
	}
	sm.sf.unmaps.Add(1)
	sm.sf.addResident(-sm.bytes)
	mapping := sm.mapping
	sm.mapping = nil
	sm.Offsets, sm.Edges, sm.VMap = nil, nil, nil
	if mapping != nil {
		return releaseMapping(mapping)
	}
	return nil
}

// BoundaryMap is one shard's mapped boundary block: for each frontier
// vertex (ascending), its u<v adjacency in source order — exactly what
// the bounded second phase walks. A shard with no frontier vertices
// yields an empty map with no backing mapping.
type BoundaryMap struct {
	sf      *ShardedFile
	mapping []byte
	bytes   int64
	cl      closeOnce

	BOffsets []int64
	BVerts   []VertexID
	BEdges   []VertexID
}

// MapBoundary maps shard s's boundary block, verifying its CRC and
// structure, and charges the bytes to the residency counters.
func (sf *ShardedFile) MapBoundary(s int) (*BoundaryMap, error) {
	if sf.cl.done() {
		return nil, fmt.Errorf("graph: ShardedFile used after Close")
	}
	if s < 0 || s >= sf.Shards() {
		return nil, fmt.Errorf("graph: shard %d out of range [0,%d)", s, sf.Shards())
	}
	d := &sf.meta.dir[s]
	bm := &BoundaryMap{sf: sf, BOffsets: []int64{}, BVerts: []VertexID{}, BEdges: []VertexID{}}
	if d.nBoundary == 0 {
		if crc32.Checksum(nil, crcTable) != uint32(d.sumB) {
			return nil, fmt.Errorf("graph: v3 shard %d boundary checksum mismatch", s)
		}
		return bm, nil
	}
	mapping, view, err := sf.loadRange(d.bndOff, d.bndLen())
	if err != nil {
		return nil, err
	}
	bm.mapping, bm.bytes = mapping, int64(len(view))
	if crc32.Checksum(view, crcTable) != uint32(d.sumB) {
		releaseLoad(mapping)
		return nil, fmt.Errorf("graph: v3 shard %d boundary checksum mismatch", s)
	}
	bvertsOff := (d.nBoundary + 1) * 8
	bedgesOff := bvertsOff + d.nBoundary*4
	if mapping != nil {
		bm.BOffsets = unsafe.Slice((*int64)(unsafe.Pointer(&view[0])), d.nBoundary+1)
		bm.BVerts = unsafe.Slice((*VertexID)(unsafe.Pointer(&view[bvertsOff])), d.nBoundary)
		if d.nbEdges > 0 {
			bm.BEdges = unsafe.Slice((*VertexID)(unsafe.Pointer(&view[bedgesOff])), d.nbEdges)
		}
		if err := validateBndSections(s, sf.hdr.nv, sf.meta.parts, bm.BOffsets, bm.BVerts, bm.BEdges, d); err != nil {
			releaseLoad(mapping)
			return nil, err
		}
	} else {
		var err error
		if bm.BOffsets, bm.BVerts, bm.BEdges, err = decodeV3Bnd(s, d, sf.hdr.nv, sf.meta.parts, view); err != nil {
			return nil, err
		}
	}
	sf.maps.Add(1)
	sf.addResident(bm.bytes)
	return bm, nil
}

// validateBndSections checks the invariants decodeV3Bnd enforces, over
// already-typed (aliased) sections.
func validateBndSections(s int, nv uint64, parts []int32, boffsets []int64, bverts, bedges []VertexID, d *v3ShardDir) error {
	if boffsets[0] != 0 || boffsets[len(boffsets)-1] != int64(d.nbEdges) {
		return fmt.Errorf("graph: v3 shard %d boundary offsets malformed", s)
	}
	for i, v := range bverts {
		if uint64(v) >= nv || parts[v] != int32(s) {
			return fmt.Errorf("graph: v3 shard %d frontier vertex %d not a shard vertex", s, v)
		}
		if i > 0 && v <= bverts[i-1] {
			return fmt.Errorf("graph: v3 shard %d frontier vertices not ascending at %d", s, i)
		}
		if boffsets[i+1] < boffsets[i] {
			return fmt.Errorf("graph: v3 shard %d boundary offsets decrease at %d", s, i)
		}
		for _, u := range bedges[boffsets[i]:boffsets[i+1]] {
			if u >= v {
				return fmt.Errorf("graph: v3 shard %d boundary edge %d not below vertex %d", s, u, v)
			}
		}
	}
	return nil
}

// Find locates a frontier vertex's index in BVerts (binary search).
func (bm *BoundaryMap) Find(v VertexID) (int, bool) {
	i := sort.Search(len(bm.BVerts), func(i int) bool { return bm.BVerts[i] >= v })
	if i == len(bm.BVerts) || bm.BVerts[i] != v {
		return 0, false
	}
	return i, true
}

// Neighbors returns the stored u<v adjacency of the frontier vertex at
// index i, in source order.
func (bm *BoundaryMap) Neighbors(i int) []VertexID {
	return bm.BEdges[bm.BOffsets[i]:bm.BOffsets[i+1]]
}

// Close retires the boundary block. Idempotent, including under
// concurrent double-Close.
func (bm *BoundaryMap) Close() error {
	if !bm.cl.first() {
		return nil
	}
	if bm.mapping == nil && bm.bytes == 0 {
		return nil // empty block: nothing was charged
	}
	bm.sf.unmaps.Add(1)
	bm.sf.addResident(-bm.bytes)
	mapping := bm.mapping
	bm.mapping = nil
	bm.BOffsets, bm.BVerts, bm.BEdges = nil, nil, nil
	if mapping != nil {
		return releaseMapping(mapping)
	}
	return nil
}

// Materialize reconstructs the full in-core CSR (and re-verifies the
// whole file through the copying reader) — the eager path OpenGraphFile
// takes so a v3 file also serves the non-streaming engines.
func (sf *ShardedFile) Materialize() (*CSR, error) {
	if sf.cl.done() {
		return nil, fmt.Errorf("graph: ShardedFile used after Close")
	}
	g, meta, err := LoadBinaryV3File(sf.path)
	if err != nil {
		return nil, err
	}
	if meta.SourceHash != sf.hdr.sourceHash {
		return nil, fmt.Errorf("graph: v3 file changed since open (hash %#x, was %#x)",
			meta.SourceHash, sf.hdr.sourceHash)
	}
	return g, nil
}
