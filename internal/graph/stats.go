package graph

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarizes the degree structure of a graph. BitColor's
// optimizations (high-degree caching, pruning) are driven by degree skew,
// so the experiment harness reports these alongside results.
type Stats struct {
	Vertices        int
	DirectedEdges   int64
	UndirectedEdges int64
	MinDegree       int
	MaxDegree       int
	MeanDegree      float64
	MedianDegree    int
	// DegreeP90 and DegreeP99 are the 90th/99th percentile degrees.
	DegreeP90, DegreeP99 int
	// GiniDegree is the Gini coefficient of the degree distribution in
	// [0,1]; near 0 for regular graphs (road networks), near 1 for
	// heavy-tailed social networks.
	GiniDegree float64
	Isolated   int
}

// ComputeStats scans the graph once and returns its degree statistics.
func ComputeStats(g *CSR) Stats {
	n := g.NumVertices()
	s := Stats{
		Vertices:        n,
		DirectedEdges:   g.NumEdges(),
		UndirectedEdges: g.UndirectedEdgeCount(),
		MinDegree:       math.MaxInt,
	}
	if n == 0 {
		s.MinDegree = 0
		return s
	}
	degrees := make([]int, n)
	var sum int64
	for v := 0; v < n; v++ {
		d := g.Degree(VertexID(v))
		degrees[v] = d
		sum += int64(d)
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d == 0 {
			s.Isolated++
		}
	}
	s.MeanDegree = float64(sum) / float64(n)
	sort.Ints(degrees)
	s.MedianDegree = degrees[n/2]
	s.DegreeP90 = degrees[min(n-1, n*90/100)]
	s.DegreeP99 = degrees[min(n-1, n*99/100)]
	s.GiniDegree = gini(degrees, sum)
	return s
}

// gini computes the Gini coefficient of an ascending-sorted sample.
func gini(sorted []int, sum int64) float64 {
	n := len(sorted)
	if n == 0 || sum == 0 {
		return 0
	}
	// G = (2*sum_i i*x_i) / (n*sum) - (n+1)/n with 1-based i over the
	// ascending order.
	var weighted float64
	for i, x := range sorted {
		weighted += float64(i+1) * float64(x)
	}
	return 2*weighted/(float64(n)*float64(sum)) - float64(n+1)/float64(n)
}

// DegreeHistogram returns counts bucketed by power of two: bucket i holds
// vertices with degree in [2^i, 2^(i+1)), bucket 0 also includes degree 0.
func DegreeHistogram(g *CSR) []int {
	var buckets []int
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(VertexID(v))
		b := 0
		for 1<<(b+1) <= d {
			b++
		}
		for len(buckets) <= b {
			buckets = append(buckets, 0)
		}
		buckets[b]++
	}
	return buckets
}

func (s Stats) String() string {
	return fmt.Sprintf("V=%d E=%d deg[min=%d med=%d mean=%.1f p99=%d max=%d] gini=%.2f",
		s.Vertices, s.UndirectedEdges, s.MinDegree, s.MedianDegree, s.MeanDegree,
		s.DegreeP99, s.MaxDegree, s.GiniDegree)
}
