package mem

import "fmt"

// U200 on-chip memory constants (§3.1.2, §5.1.1).
const (
	// U200BRAMBits is the total internal BRAM of the Alveo U200:
	// 1766 blocks × 36 Kb.
	U200BRAMBlocks    = 1766
	U200BRAMBlockBits = 36 * 1024
	U200BRAMBits      = U200BRAMBlocks * U200BRAMBlockBits
	// BRAMPortsPerBlock: FPGA block RAM is dual-ported (the paper's
	// "2W2R" building block).
	BRAMPortsPerBlock = 2
	// SingleCacheBytes is the paper's per-engine cache size: 1 MB holding
	// 512K 16-bit colors.
	SingleCacheBytes    = 1 << 20
	SingleCacheVertices = SingleCacheBytes * 8 / ColorBits // 512K
)

// BRAM models an on-chip RAM bank with single-cycle access and a port
// limit per cycle. It exists to (a) account BRAM bit usage for the
// resource model and (b) enforce the two-port constraint the multi-port
// cache design works around.
type BRAM struct {
	bits  int64
	ports int
	// accesses tracks total reads+writes for utilization reporting.
	reads, writes int64
}

// NewBRAM allocates a logical BRAM of the given size in bits with the
// standard dual-port interface.
func NewBRAM(bits int64) *BRAM {
	if bits <= 0 {
		panic(fmt.Sprintf("mem: BRAM size %d must be positive", bits))
	}
	return &BRAM{bits: bits, ports: BRAMPortsPerBlock}
}

// Bits returns the allocated capacity in bits.
func (b *BRAM) Bits() int64 { return b.bits }

// Blocks returns the number of physical 36Kb BRAM blocks this bank
// occupies on the U200.
func (b *BRAM) Blocks() int {
	return int((b.bits + U200BRAMBlockBits - 1) / U200BRAMBlockBits)
}

// Ports returns the read/write port count (always 2 for a block).
func (b *BRAM) Ports() int { return b.ports }

// Read records a read access; on-chip reads cost one cycle, which callers
// account in their own pipelines.
func (b *BRAM) Read() { b.reads++ }

// Write records a write access.
func (b *BRAM) Write() { b.writes++ }

// Accesses returns (reads, writes).
func (b *BRAM) Accesses() (int64, int64) { return b.reads, b.writes }

// U200Utilization returns the fraction of the U200's BRAM consumed by
// totalBits of allocated capacity.
func U200Utilization(totalBits int64) float64 {
	return float64(totalBits) / float64(U200BRAMBits)
}
