// Package mem models the off-chip DRAM channels and on-chip BRAM of the
// Alveo U200 board at the fidelity the paper's evaluation needs: access
// counts, block granularity, burst behaviour and per-channel serialization
// — the quantities behind Fig 5 and the DRAM-access bars of Fig 11.
package mem

import "fmt"

// Paper constants (§4.1, §4.5, §5.1.1).
const (
	// BlockBits is the DRAM access granularity: 512 bits.
	BlockBits = 512
	// ColorBits is the stored size of one vertex color: 16 bits (only 10
	// used for 1024 colors).
	ColorBits = 16
	// ColorsPerBlock is how many vertex colors one DRAM block holds.
	ColorsPerBlock = BlockBits / ColorBits // 32
)

// DRAM row/bank geometry: a channel has NumBanks banks, each with one
// open row of BlocksPerRow consecutive 512-bit blocks (a 2KB row slice).
// Accesses to an open row cost BurstLatency; row misses cost
// RandomLatency. Rows interleave across banks so independent sequential
// streams (e.g. several BWPEs sharing a physical channel) each keep their
// own row open — the bank-level parallelism real DDR4 provides.
const (
	NumBanks     = 8
	BlocksPerRow = 32
)

// DRAMConfig sets the timing model of one channel.
type DRAMConfig struct {
	// RandomLatency is the cycle cost of a block access that misses the
	// open row of its bank (activate + column access).
	RandomLatency int64
	// BurstLatency is the cycle cost of an open-row hit.
	BurstLatency int64
	// WriteLatency is the cycle cost of a block write.
	WriteLatency int64
}

// DefaultDRAMConfig reflects a DDR4-2400 channel behind an FPGA memory
// controller at the accelerator's 200MHz fabric clock: ~50 fabric cycles
// random access, ~4 cycles streaming continuation.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{RandomLatency: 50, BurstLatency: 4, WriteLatency: 12}
}

// DRAMStats aggregates channel activity.
type DRAMStats struct {
	Reads      int64 // block reads issued
	BurstReads int64 // subset of Reads served as open-row hits
	Writes     int64 // block writes issued
	Cycles     int64 // total channel-busy cycles
	// WaitCycles accumulates queueing delay: time requests spent waiting
	// for the channel controller behind earlier requests. High values at
	// high parallelism flag physical-channel contention.
	WaitCycles int64
}

// Add accumulates other into s.
func (s *DRAMStats) Add(other DRAMStats) {
	s.Reads += other.Reads
	s.BurstReads += other.BurstReads
	s.Writes += other.Writes
	s.Cycles += other.Cycles
	s.WaitCycles += other.WaitCycles
}

// RowHitRate returns BurstReads/Reads (0 with no reads).
func (s DRAMStats) RowHitRate() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.BurstReads) / float64(s.Reads)
}

// Channel is one DRAM channel with per-bank open-row state. Requests on
// a channel serialize (one controller), but each bank keeps its own open
// row, so interleaved sequential streams from several engines sharing a
// physical channel still hit open rows.
type Channel struct {
	cfg     DRAMConfig
	openRow [NumBanks]int64 // open row per bank, -1 = closed
	freeAt  int64           // cycle at which the channel becomes free
	stats   DRAMStats
}

// NewChannel returns a channel with the given timing.
func NewChannel(cfg DRAMConfig) *Channel {
	if cfg.RandomLatency <= 0 || cfg.BurstLatency <= 0 || cfg.WriteLatency <= 0 {
		panic(fmt.Sprintf("mem: non-positive DRAM latencies %+v", cfg))
	}
	c := &Channel{cfg: cfg}
	for i := range c.openRow {
		c.openRow[i] = -1
	}
	return c
}

// rowBank maps a block to its (row, bank).
func rowBank(block int64) (row int64, bank int) {
	row = block / BlocksPerRow
	return row, int(row % NumBanks)
}

// ReadBlock issues a 512-bit read of block at cycle `now` and returns the
// cycle at which data is available. Open-row hits are served at burst
// latency.
func (c *Channel) ReadBlock(block int64, now int64) int64 {
	start := now
	if c.freeAt > start {
		start = c.freeAt
		c.stats.WaitCycles += start - now
	}
	row, bank := rowBank(block)
	lat := c.cfg.RandomLatency
	if c.openRow[bank] == row {
		lat = c.cfg.BurstLatency
		c.stats.BurstReads++
	}
	done := start + lat
	c.freeAt = done
	c.openRow[bank] = row
	c.stats.Reads++
	c.stats.Cycles += lat
	return done
}

// WriteBlock issues a block write at cycle `now` and returns completion.
func (c *Channel) WriteBlock(block int64, now int64) int64 {
	start := now
	if c.freeAt > start {
		start = c.freeAt
		c.stats.WaitCycles += start - now
	}
	done := start + c.cfg.WriteLatency
	c.freeAt = done
	row, bank := rowBank(block)
	c.openRow[bank] = row
	c.stats.Writes++
	c.stats.Cycles += c.cfg.WriteLatency
	return done
}

// Stats returns a copy of the channel's counters.
func (c *Channel) Stats() DRAMStats { return c.stats }

// Reset clears counters and open-row state.
func (c *Channel) Reset() {
	for i := range c.openRow {
		c.openRow[i] = -1
	}
	c.freeAt = 0
	c.stats = DRAMStats{}
}

// ColorBlock returns the DRAM block index holding vertex v's color and
// v's offset within the block (paper §4.5: index = des/32, offset =
// des%32).
func ColorBlock(v uint32) (block int64, offset int) {
	return int64(v) / ColorsPerBlock, int(v) % ColorsPerBlock
}
