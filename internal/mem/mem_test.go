package mem

import (
	"testing"
	"testing/quick"
)

func TestColorBlock(t *testing.T) {
	cases := []struct {
		v      uint32
		block  int64
		offset int
	}{
		{0, 0, 0},
		{31, 0, 31},
		{32, 1, 0},
		{76, 2, 12}, // the paper's §4.5 example vertex 76: block 76/32=2, offset 76%32=12
		{1 << 20, 1 << 15, 0},
	}
	for _, c := range cases {
		b, o := ColorBlock(c.v)
		if b != c.block || o != c.offset {
			t.Errorf("ColorBlock(%d) = (%d,%d), want (%d,%d)", c.v, b, o, c.block, c.offset)
		}
	}
}

func TestChannelRandomVsBurst(t *testing.T) {
	cfg := DRAMConfig{RandomLatency: 100, BurstLatency: 4, WriteLatency: 10}
	ch := NewChannel(cfg)
	done := ch.ReadBlock(5, 0)
	if done != 100 {
		t.Fatalf("first read done at %d, want 100", done)
	}
	done = ch.ReadBlock(6, done) // sequential → burst
	if done != 104 {
		t.Fatalf("burst read done at %d, want 104", done)
	}
	done = ch.ReadBlock(100, done) // jump → random
	if done != 204 {
		t.Fatalf("random read done at %d, want 204", done)
	}
	st := ch.Stats()
	if st.Reads != 3 || st.BurstReads != 1 {
		t.Fatalf("stats %+v, want 3 reads / 1 burst", st)
	}
	if st.Cycles != 204 {
		t.Fatalf("busy cycles %d, want 204", st.Cycles)
	}
}

func TestChannelSerializes(t *testing.T) {
	ch := NewChannel(DRAMConfig{RandomLatency: 50, BurstLatency: 4, WriteLatency: 10})
	// Two requests issued at the same cycle must serialize.
	d1 := ch.ReadBlock(10, 0)
	d2 := ch.ReadBlock(999, 0)
	if d2 <= d1 {
		t.Fatalf("second request done %d <= first %d", d2, d1)
	}
	if d2 != d1+50 {
		t.Fatalf("second request done %d, want %d", d2, d1+50)
	}
}

func TestChannelWrite(t *testing.T) {
	ch := NewChannel(DefaultDRAMConfig())
	done := ch.WriteBlock(3, 7)
	if done != 7+DefaultDRAMConfig().WriteLatency {
		t.Fatalf("write done %d", done)
	}
	if ch.Stats().Writes != 1 {
		t.Fatal("write not counted")
	}
	// A read of block 4 after writing block 3 counts as burst
	// (open-row continuation).
	ch.ReadBlock(4, done)
	if ch.Stats().BurstReads != 1 {
		t.Fatal("post-write sequential read not burst")
	}
}

func TestChannelReset(t *testing.T) {
	ch := NewChannel(DefaultDRAMConfig())
	ch.ReadBlock(1, 0)
	ch.Reset()
	if ch.Stats() != (DRAMStats{}) {
		t.Fatal("reset left stats")
	}
	// Block 2 after reset must be random, not burst.
	ch.ReadBlock(2, 0)
	if ch.Stats().BurstReads != 0 {
		t.Fatal("burst detection survived reset")
	}
}

func TestNewChannelRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config accepted")
		}
	}()
	NewChannel(DRAMConfig{})
}

func TestDRAMStatsAdd(t *testing.T) {
	a := DRAMStats{Reads: 1, BurstReads: 1, Writes: 2, Cycles: 10}
	b := DRAMStats{Reads: 3, Writes: 1, Cycles: 5}
	a.Add(b)
	if a.Reads != 4 || a.BurstReads != 1 || a.Writes != 3 || a.Cycles != 15 {
		t.Fatalf("Add result %+v", a)
	}
}

// Property: completion times on a channel are non-decreasing regardless of
// request pattern, and burst reads never exceed total reads.
func TestChannelMonotone(t *testing.T) {
	f := func(blocks []uint16) bool {
		ch := NewChannel(DefaultDRAMConfig())
		last := int64(0)
		for _, b := range blocks {
			done := ch.ReadBlock(int64(b), last)
			if done < last {
				return false
			}
			last = done
		}
		st := ch.Stats()
		return st.BurstReads <= st.Reads && st.Reads == int64(len(blocks))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBRAMSizing(t *testing.T) {
	b := NewBRAM(SingleCacheBytes * 8)
	if b.Bits() != 1<<23 {
		t.Fatalf("1MB cache bits = %d", b.Bits())
	}
	if b.Blocks() != (1<<23+U200BRAMBlockBits-1)/U200BRAMBlockBits {
		t.Fatalf("block count %d", b.Blocks())
	}
	if b.Ports() != 2 {
		t.Fatal("BRAM not dual-ported")
	}
	b.Read()
	b.Write()
	r, w := b.Accesses()
	if r != 1 || w != 1 {
		t.Fatal("access counters wrong")
	}
}

func TestSingleCacheVertices(t *testing.T) {
	// The paper: "the single cache is 1MB (512K vertices color data)".
	if SingleCacheVertices != 512*1024 {
		t.Fatalf("SingleCacheVertices = %d, want 512K", SingleCacheVertices)
	}
	if ColorsPerBlock != 32 {
		t.Fatalf("ColorsPerBlock = %d, want 32", ColorsPerBlock)
	}
}

func TestU200Utilization(t *testing.T) {
	// Paper §3.1.2: U200 has 7.947MB internal BRAM (1766 × 36Kb).
	mb := float64(U200BRAMBits) / 8 / 1024 / 1024
	if mb < 7.7 || mb > 8.1 {
		t.Fatalf("U200 BRAM = %.3f MB, want ~7.947", mb)
	}
	if u := U200Utilization(U200BRAMBits); u != 1 {
		t.Fatalf("full utilization = %f", u)
	}
	if u := U200Utilization(U200BRAMBits / 2); u != 0.5 {
		t.Fatalf("half utilization = %f", u)
	}
}

func TestNewBRAMRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size BRAM accepted")
		}
	}()
	NewBRAM(0)
}

func TestChannelWaitCycles(t *testing.T) {
	ch := NewChannel(DRAMConfig{RandomLatency: 50, BurstLatency: 4, WriteLatency: 10})
	ch.ReadBlock(0, 0)   // busy until 50
	ch.ReadBlock(999, 0) // queued 50 cycles
	if got := ch.Stats().WaitCycles; got != 50 {
		t.Fatalf("wait cycles = %d, want 50", got)
	}
	// A request issued after the channel frees does not wait.
	ch.ReadBlock(5000, 10_000)
	if got := ch.Stats().WaitCycles; got != 50 {
		t.Fatalf("idle request accrued wait: %d", got)
	}
}

func TestRowHitRate(t *testing.T) {
	var s DRAMStats
	if s.RowHitRate() != 0 {
		t.Fatal("empty hit rate != 0")
	}
	s.Reads, s.BurstReads = 4, 1
	if s.RowHitRate() != 0.25 {
		t.Fatalf("hit rate = %f", s.RowHitRate())
	}
}
