package coloring

import (
	"context"
	"testing"

	"bitcolor/internal/cache"
	"bitcolor/internal/gen"
	"bitcolor/internal/reorder"
)

// The gather is a memory-path change only: with one worker both engines
// must produce identical colorings with the gather on and off.
func TestGatherAblationIdenticalAtOneWorker(t *testing.T) {
	g := randomGraph(t, 600, 6000, 21)
	h, _ := reorder.DBG(g)
	for _, engine := range []string{"parallelbitwise", "speculative"} {
		run := func(disable bool) []uint16 {
			opts := Options{Workers: 1, DisableGather: disable}
			var colors []uint16
			if engine == "parallelbitwise" {
				res, _, err := ParallelBitwiseOpts(context.Background(), h, MaxColorsDefault, opts)
				if err != nil {
					t.Fatal(err)
				}
				colors = res.Colors
			} else {
				res, _, err := SpeculativeOpts(context.Background(), h, MaxColorsDefault, opts)
				if err != nil {
					t.Fatal(err)
				}
				colors = res.Colors
			}
			return colors
		}
		on, off := run(false), run(true)
		for v := range on {
			if on[v] != off[v] {
				t.Fatalf("%s: vertex %d: gather-on %d, gather-off %d", engine, v, on[v], off[v])
			}
		}
	}
}

// On a DBG-reordered, edge-sorted graph the gather must classify every
// speculation read, prune a nonempty sorted tail, and serve sub-threshold
// indices from the hot tier.
func TestGatherStatsOnDBGGraph(t *testing.T) {
	g := randomGraph(t, 2000, 24000, 9)
	h, _ := reorder.DBG(g)
	res, st, err := ParallelBitwiseOpts(context.Background(), h, MaxColorsDefault, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h, res.Colors); err != nil {
		t.Fatal(err)
	}
	if st.HotThreshold != cache.HotThreshold(h.NumVertices()) {
		t.Fatalf("HotThreshold = %d, want %d", st.HotThreshold, cache.HotThreshold(h.NumVertices()))
	}
	gst := st.Gather
	if gst.Reads() == 0 {
		t.Fatal("gather classified no reads")
	}
	if gst.PrunedTail == 0 {
		t.Fatal("PUV pruned nothing on a sorted DBG graph")
	}
	// 2000 vertices fit under the paper's 512K hot capacity: every read
	// must be a hot-tier hit and the ratios must be consistent.
	if gst.HotRatio() != 1.0 || gst.HotReads != gst.Reads() {
		t.Fatalf("expected all-hot reads on a cache-resident graph: %+v", gst)
	}
	// Speculation visits the colored prefix, PUV skips the tail: together
	// they cannot exceed the total directed edge count times the sweeps.
	if gst.Reads()+gst.PrunedTail < h.NumEdges() {
		t.Fatalf("round 1 should touch every directed edge: reads=%d pruned=%d edges=%d",
			gst.Reads(), gst.PrunedTail, h.NumEdges())
	}
}

// Overriding the hot threshold must split reads between tiers and engage
// the last-block merge register on the cold tier.
func TestGatherHotThresholdOverride(t *testing.T) {
	g := randomGraph(t, 3000, 40000, 33)
	h, _ := reorder.DBG(g)
	_, st, err := ParallelBitwiseOpts(context.Background(), h, MaxColorsDefault, Options{Workers: 2, HotVertices: 128})
	if err != nil {
		t.Fatal(err)
	}
	gst := st.Gather
	if st.HotThreshold != 128 {
		t.Fatalf("HotThreshold = %d, want 128", st.HotThreshold)
	}
	if gst.HotReads == 0 {
		t.Fatal("no hot-tier reads with v_t=128 on a DBG graph")
	}
	if gst.MergedReads+gst.ColdBlockLoads == 0 {
		t.Fatal("no cold-tier reads with v_t=128 on a 3000-vertex graph")
	}
	if gst.MergedReads == 0 {
		t.Fatal("sorted adjacency produced no merged block reads")
	}
}

// Disabling the gather must zero the counters and leave the engines on
// the legacy codec path.
func TestGatherDisabledZeroStats(t *testing.T) {
	g := randomGraph(t, 500, 4000, 3)
	res, st, err := ParallelBitwiseOpts(context.Background(), g, MaxColorsDefault, Options{Workers: 4, DisableGather: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if st.Gather.Reads() != 0 || st.Gather.PrunedTail != 0 || st.HotThreshold != 0 {
		t.Fatalf("gather disabled but stats nonzero: %+v vt=%d", st.Gather, st.HotThreshold)
	}
}

// The quality bar must hold with the gather + PUV path at real
// parallelism on every Table 3 stand-in (the default path is exercised by
// TestParallelBitwiseQualityOnTable3; this pins the Speculative engine).
// ForceGather pins the gather on: the road-network stand-ins sit below
// the adaptive average-degree threshold and would otherwise run (and
// assert on) the plain path.
func TestSpeculativeGatherQualityOnTable3(t *testing.T) {
	for _, d := range gen.SmallRegistry() {
		d := d
		t.Run(d.Abbrev, func(t *testing.T) {
			g, err := d.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			h, _ := reorder.DBG(g)
			seq, err := BitwiseGreedy(context.Background(), h, MaxColorsDefault, true)
			if err != nil {
				t.Fatal(err)
			}
			res, st, err := SpeculativeOpts(context.Background(), h, MaxColorsDefault, Options{Workers: 4, ForceGather: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(h, res.Colors); err != nil {
				t.Fatal(err)
			}
			if float64(res.NumColors) > 1.10*float64(seq.NumColors) {
				t.Fatalf("speculative+gather used %d colors, sequential %d (>10%% worse)",
					res.NumColors, seq.NumColors)
			}
			if st.Gather.PrunedTail == 0 {
				t.Fatal("round-1 PUV pruned nothing on a DBG-sorted graph")
			}
		})
	}
}

// Race stress over the gather + PUV path for the Speculative engine
// (ParallelBitwise is covered by TestParallelBitwiseRaceStress).
func TestSpeculativeGatherRaceStress(t *testing.T) {
	g := randomGraph(t, 500, 12000, 77)
	for i := 0; i < 5; i++ {
		res, _, err := SpeculativeOpts(context.Background(), g, MaxColorsDefault, Options{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(g, res.Colors); err != nil {
			t.Fatal(err)
		}
	}
}
