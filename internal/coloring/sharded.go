package coloring

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"bitcolor/internal/exec"
	"bitcolor/internal/graph"
	"bitcolor/internal/metrics"
	"bitcolor/internal/obs"
	"bitcolor/internal/partition"
)

// ShardedColor is the host rendering of the paper's multi-card scale-out:
// the graph is partitioned into `shards` parts (the per-FPGA subgraphs),
// every shard colors its *interior* concurrently with the proven DCT
// owner-computes loop over its own vertex list, and the vertices whose
// coloring depends on another shard — the boundary frontier — are
// resolved in one bounded second phase using the same lower-index-wins
// engine.Defers orientation. Cross-shard edges therefore never force a
// global round barrier: there is exactly one barrier in the whole run,
// between the interior and frontier phases.
//
// Phase one publishes a mark sentinel instead of a color for any vertex
// that cannot be finished shard-locally: a vertex with a lower-indexed
// neighbor in another shard is marked outright (the structural cross
// cause), and a vertex whose lower-indexed in-shard neighbor was marked
// cascades onto the frontier behind it. A vertex is colored in phase one
// only when *every* lower-indexed neighbor already has its final color,
// and phase two colors the frontier in ascending index order under the
// same rule — so the fixpoint is unique and the result is byte-identical
// to sequential greedy at every (shards × workers) combination. Frontier
// membership is structural (cross-shard adjacency plus its in-shard
// cascade), not a race outcome, so RunStats.FrontierVertices and
// CrossShardDefers are deterministic too.
//
// Within phase one, shards are fully independent: a worker never reads a
// cross-shard color (the parts test precedes the load), so the only
// cross-shard communication in the whole engine is the frontier phase
// reading colors the barrier already ordered.
const (
	// PartitionRanges selects contiguous index-range partitioning (the
	// zero-cost default, what a naive multi-card deployment gets).
	PartitionRanges = "ranges"
	// PartitionLabelProp selects the balanced label-propagation
	// refinement, trading a preprocessing sweep for a smaller edge cut.
	PartitionLabelProp = "labelprop"
)

// Label-propagation parameters of the sharded engine: enough sweeps to
// converge on the Table 3 stand-ins, with the balance slack the
// partition tests established.
const (
	shardLabelPropRounds = 10
	shardLabelPropSlack  = 0.15
)

// shardMark is the "deferred to the boundary frontier" sentinel in the
// shared color array. Real colors are uint16 (≤ 65535), so the sentinel
// can never collide; like a real color it is non-zero, so the DCT-style
// "published" checks (shared[u] != 0) treat a mark as progress and no
// phase-one wait can hang on a vertex that went to the frontier.
const shardMark = ^uint32(0)

// BuildPartition builds the sharded engine's partition for a graph
// without running it — the entry the BCSR v3 writer uses so a persisted
// assignment matches what ShardedOpts would have computed for the same
// (shards, strategy). Shards are clamped exactly as ShardedOpts clamps
// them.
func BuildPartition(g *graph.CSR, shards int, strategy string) (*partition.Assignment, error) {
	n := g.NumVertices()
	if shards <= 0 {
		shards = 1
	}
	if n > 0 && shards > n {
		shards = n
	}
	return shardedPartition(g, shards, strategy, nil)
}

// shardedPartition resolves the partition strategy and builds the
// assignment, reusing the Scratch's parts buffer when one backs the run.
func shardedPartition(g *graph.CSR, shards int, strategy string, sc *Scratch) (*partition.Assignment, error) {
	parts := sc.partsBuf(g.NumVertices())
	switch strategy {
	case "", PartitionRanges:
		return partition.RangesInto(g, shards, parts)
	case PartitionLabelProp:
		return partition.LabelPropagationInto(g, shards, shardLabelPropRounds, shardLabelPropSlack, parts)
	}
	return nil, fmt.Errorf("coloring: unknown partition strategy %q (have %q, %q)",
		strategy, PartitionRanges, PartitionLabelProp)
}

// ShardedOpts runs the sharded engine: opts.Shards parts (<=1 degenerates
// to the plain DCT path, so the sharding layer costs the single-shard
// case nothing), opts.Workers goroutines per shard in the interior phase
// and the same worker count over the frontier. Cancellation, palette
// exhaustion and scratch reuse follow the DCT engine's contract.
func ShardedOpts(ctx context.Context, g *graph.CSR, maxColors int, opts Options) (*Result, metrics.ParallelStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, metrics.ParallelStats{}, err
	}
	if opts.OutOfCore && opts.ShardFile != nil {
		return shardedStream(ctx, maxColors, opts)
	}
	n := g.NumVertices()
	workers := resolveWorkers(opts.Workers, n)
	shards := opts.Shards
	if shards <= 0 {
		shards = 1
	}
	if n > 0 && shards > n {
		shards = n
	}
	sc := opts.Scratch
	if !sc.fits("sharded", workers) {
		sc = nil
	}
	if shards <= 1 || n == 0 {
		// One shard has no boundary: the interior phase *is* the whole
		// run, and running it through dctRun keeps the single-shard path
		// exactly as fast (and, at one worker, exactly as allocation-free)
		// as EngineDCT — the benchguard pins this.
		res, st, err := dctRun(ctx, g, maxColors, opts, sc, workers)
		st.Shards = 1
		return res, st, err
	}

	// A precomputed assignment (the BCSR v3 partition-cache path) replaces
	// the partitioning sweep when it matches this run's shape; anything
	// else falls through to partitioning as usual.
	a := opts.Partition
	if a == nil || a.K != shards || len(a.Parts) != n {
		var err error
		a, err = shardedPartition(g, shards, opts.PartitionStrategy, sc)
		if err != nil {
			return nil, metrics.ParallelStats{}, err
		}
	}
	parts := a.Parts
	cl := partition.Classify(g, a)
	lists := a.VertexLists(sc.orderBuf(n))

	flat := shards * workers // interior goroutines, one counter shard each
	ss := sc.shardSet(flat)
	// Arm the live mirrors: the interior and frontier OwnerLoops refresh
	// them at their poll checkpoints, so /debug/runs sees per-lane
	// progress across all shards × workers (nil-safe no-op otherwise).
	opts.Run.AttachShards(ss)
	st := metrics.ParallelStats{
		Workers:          workers,
		Shards:           shards,
		BoundaryVertices: cl.Boundary,
		CutEdges:         cl.CutEdges,
	}
	useGather, gatherAuto := gatherDecision(g, opts)
	shared := sc.sharedBuf(n)
	sorted := g.EdgesSorted()
	rings := sc.ringSet(ForwardRingCap)

	esp := opts.Span
	o := opts.Obs
	var obsStart time.Time
	if o != nil {
		obsStart = time.Now()
	}

	var abort atomic.Bool

	ws := make([]*workerScratch, flat)
	for i := range ws {
		s := sc.workerAt(i, maxColors)
		s.sh = ss.Shard(i)
		s.ga.init(shared, opts.HotVertices, s.sh)
		s.ring = rings.Ring(i)
		ws[i] = s
	}
	if useGather {
		st.HotThreshold = ws[0].ga.vt
	}

	// attemptInterior colors v when every lower-indexed neighbor already
	// has its final color, marks it onto the frontier when a lower
	// neighbor is cross-shard (checked structurally, before any load, so
	// shards never read each other's colors) or in-shard but marked, and
	// defers on the first still-pending in-shard neighbor otherwise. The
	// scan never stops early at a pending or marked neighbor — a later
	// cross-shard neighbor must still win, or CrossShardDefers would
	// depend on timing.
	attemptInterior := func(s *workerScratch, v graph.VertexID, pv int32) (graph.VertexID, exec.Outcome) {
		s.state.Reset()
		adj := g.Neighbors(v)
		var firstPending graph.VertexID
		pending, cascade := false, false
		for i, u := range adj {
			if u > v {
				if !sorted {
					continue
				}
				if useGather {
					s.sh.Add(obs.CtrPrunedTail, int64(len(adj)-i))
				}
				break
			}
			if parts[u] != pv {
				atomic.StoreUint32(&shared[v], shardMark)
				s.sh.Inc(obs.CtrCrossDefers)
				return 0, exec.Handed
			}
			var c uint32
			if useGather {
				c = s.ga.load(u)
			} else {
				c = atomic.LoadUint32(&shared[u])
			}
			switch c {
			case shardMark:
				cascade = true
			case 0:
				if !pending {
					firstPending, pending = u, true
				}
			default:
				s.state.OrColorNum(c)
			}
		}
		if cascade {
			atomic.StoreUint32(&shared[v], shardMark)
			return 0, exec.Handed
		}
		if pending {
			return firstPending, exec.Deferred
		}
		pick, _ := s.codec.FirstFree(s.state)
		if pick == 0 {
			return 0, exec.Failed
		}
		atomic.StoreUint32(&shared[v], uint32(pick))
		s.sh.Inc(obs.CtrVertices)
		return 0, exec.Colored
	}

	// Forwarding-latency instrumentation, wired only under a live
	// observer; both phases share the two closures.
	var (
		clock     func() int64
		onForward func(parkedAt int64)
	)
	if o != nil {
		clock = func() int64 { return int64(time.Since(obsStart)) }
		onForward = func(parkedAt int64) {
			o.ObserveForwardWait(float64(int64(time.Since(obsStart))-parkedAt) / 1e9)
		}
	}

	// Interior phase: shards × workers goroutines; goroutine (s, w) owns
	// positions w, w+P, … of shard s's ascending vertex list — the DCT
	// owner-computes schedule applied per shard. The per-goroutine phase
	// timings land in a pooled buffer (fresh only without a Scratch).
	phaseStart := time.Now()
	flatDur := sc.durBuf(0, flat)
	if flatDur == nil {
		flatDur = make([]time.Duration, flat)
	}
	exec.Go(flat, func(idx int) {
		defer func() { flatDur[idx] = time.Since(phaseStart) }()
		shard, w := idx/workers, idx%workers
		pv := int32(shard)
		s := ws[idx]
		loop := exec.OwnerLoop{
			Ctx:   ctx,
			Abort: &abort,
			Ring:  s.ring,
			Shard: s.sh,
			Attempt: func(v graph.VertexID) (graph.VertexID, exec.Outcome) {
				return attemptInterior(s, v, pv)
			},
			// A mark is progress too: the awaited vertex went to the
			// frontier, and the replay cascades the parked vertex after
			// it instead of waiting forever.
			Published: func(u uint32) bool { return atomic.LoadUint32(&shared[u]) != 0 },
			FailErr:   ErrPaletteExhausted,
			Clock:     clock,
			OnForward: onForward,
		}
		s.err = loop.RunList(lists[shard], w, workers)
	})

	foldStats := func() {
		st.VerticesPerWorker = ss.PerWorkerInto(obs.CtrVertices, sc.perWorkerBuf(0, flat))
		st.Deferred = ss.Total(obs.CtrDeferred)
		st.DeferRetries = ss.Total(obs.CtrDeferRetries)
		st.SpinWaits = ss.Total(obs.CtrSpinWaits)
		st.CrossShardDefers = ss.Total(obs.CtrCrossDefers)
		st.Gather = metrics.GatherStats{
			HotReads:       ss.Total(obs.CtrHotReads),
			MergedReads:    ss.Total(obs.CtrMergedReads),
			ColdBlockLoads: ss.Total(obs.CtrColdBlockLoads),
			PrunedTail:     ss.Total(obs.CtrPrunedTail),
			AutoDisabled:   gatherAuto,
		}
		st.ForwardRingPeak = rings.Peak()
	}

	// Interior vertex counts are folded per shard before the frontier
	// phase reuses the low counter shards. Both exports draw on the
	// pooled arena when a Scratch backs the run (they alias it — see the
	// Scratch doc), so colord-style repeated runs stop churning them.
	st.ShardVertices = sc.perWorkerBuf(2, shards)
	if st.ShardVertices == nil {
		st.ShardVertices = make([]int64, shards)
	} else {
		clear(st.ShardVertices)
	}
	st.ShardDurations = sc.durBuf(1, shards)
	if st.ShardDurations == nil {
		st.ShardDurations = make([]time.Duration, shards)
	}
	for shard := 0; shard < shards; shard++ {
		for w := 0; w < workers; w++ {
			st.ShardVertices[shard] += ss.Shard(shard*workers + w).Get(obs.CtrVertices)
			if d := flatDur[shard*workers+w]; d > st.ShardDurations[shard] {
				st.ShardDurations[shard] = d
			}
		}
	}

	for _, s := range ws {
		if s.err != nil {
			foldStats()
			return nil, st, s.err
		}
	}

	// The barrier: every vertex is now colored or marked. Collect the
	// frontier in ascending index order — membership is structural, so
	// this list (and its size) is identical across timings.
	frontier := sc.pendingBuf(n)[:0]
	for v := range shared {
		if shared[v] == shardMark {
			frontier = append(frontier, graph.VertexID(v))
		}
	}
	st.FrontierVertices = len(frontier)

	// Frontier phase: the DCT loop over the frontier list with the mark
	// standing in for "pending". A zero color is impossible here, so the
	// wait conditions test against the sentinel instead.
	if len(frontier) > 0 {
		fw := min(workers, len(frontier))
		attemptFrontier := func(s *workerScratch, v graph.VertexID) (graph.VertexID, exec.Outcome) {
			s.state.Reset()
			adj := g.Neighbors(v)
			for i, u := range adj {
				if u > v {
					if !sorted {
						continue
					}
					if useGather {
						s.sh.Add(obs.CtrPrunedTail, int64(len(adj)-i))
					}
					break
				}
				var c uint32
				if useGather {
					c = s.ga.load(u)
				} else {
					c = atomic.LoadUint32(&shared[u])
				}
				if c == shardMark {
					return u, exec.Deferred
				}
				s.state.OrColorNum(c)
			}
			pick, _ := s.codec.FirstFree(s.state)
			if pick == 0 {
				return 0, exec.Failed
			}
			atomic.StoreUint32(&shared[v], uint32(pick))
			s.sh.Inc(obs.CtrVertices)
			return 0, exec.Colored
		}
		exec.Go(fw, func(w int) {
			s := ws[w] // reuses the flat scratch + ring, both drained
			loop := exec.OwnerLoop{
				Ctx:   ctx,
				Abort: &abort,
				Ring:  s.ring,
				Shard: s.sh,
				Attempt: func(v graph.VertexID) (graph.VertexID, exec.Outcome) {
					return attemptFrontier(s, v)
				},
				// A zero color is impossible on the frontier, so "published"
				// tests against the mark sentinel instead.
				Published: func(u uint32) bool { return atomic.LoadUint32(&shared[u]) != shardMark },
				FailErr:   ErrPaletteExhausted,
				Clock:     clock,
				OnForward: onForward,
			}
			s.err = loop.RunList(frontier, w, fw)
		})
	}

	foldStats()
	for _, s := range ws {
		if s.err != nil {
			return nil, st, s.err
		}
	}
	st.Rounds = 1
	opts.Run.SetRound(1)
	// One interior pass plus its bounded frontier resolution form the
	// engine's single round, mirroring the DCT round-span convention.
	esp.Child("round").Attr("round", 1).Attr("pending", int64(n)).
		Attr("conflicts_found", int64(0)).Attr("recolored", int64(0)).
		Attr("deferred", st.Deferred).Attr("ring_peak", int64(st.ForwardRingPeak)).
		Attr("shards", int64(shards)).Attr("frontier", int64(st.FrontierVertices)).
		Attr("cross_shard_defers", st.CrossShardDefers).
		Attr("cut_edges", st.CutEdges).End()

	colors := sc.colorsBuf(n)
	for i, c := range shared {
		colors[i] = uint16(c)
	}
	return sc.result(colors, sc.distinctColors(colors), OpStats{}), st, nil
}
