package coloring

import (
	"context"
	"sync/atomic"
	"time"

	"bitcolor/internal/dispatch"
	"bitcolor/internal/exec"
	"bitcolor/internal/graph"
	"bitcolor/internal/metrics"
	"bitcolor/internal/obs"
)

// DCTColor is the host port of the accelerator's conflict-avoidance
// scheme (paper §4.3 + §4.6, contributions 5–7): a single-pass parallel
// engine that never speculates and never repairs. Worker i owns vertices
// i, i+P, i+2P, … (the pattern-p HDV pinning of the hardware dispatcher,
// dispatch.Owner) and colors them in strictly ascending index order;
// colors are published to a shared array with atomic release stores.
// When a vertex's lower-indexed neighbor is owned by a still-behind
// worker and its color has not landed yet, the vertex is parked on the
// worker's bounded forwarding ring (dispatch.ForwardRing — the host
// rendering of the Data Conflict Table) keyed by the awaited vertex, and
// the worker moves on; parked vertices are replayed when the awaited
// color arrives. The engine.Defers rule (lower index wins) orients every
// wait edge at a strictly smaller vertex, so wait chains follow the
// total vertex order and cannot cycle; a fallback spin (when a ring is
// full or a final drain stalls) yields until the awaited color lands.
//
// The payoff is structural: exactly one pass (RunStats.Rounds == 1,
// ConflictsFound == ConflictsRepaired == 0) and a coloring byte-identical
// to sequential greedy in index order — for every worker count, which the
// speculative engines cannot offer.
func DCTColor(ctx context.Context, g *graph.CSR, maxColors int, workers int) (*Result, metrics.ParallelStats, error) {
	return DCTOpts(ctx, g, maxColors, Options{MaxColors: maxColors, Workers: workers})
}

// ForwardRingCap bounds each worker's forwarding ring — the scan window
// of vertices a worker may run ahead of its slowest dependency. Small
// enough that a drain pass stays cheap, large enough that a worker
// rarely blocks inline on path-shaped dependency chains.
const ForwardRingCap = 64

// DCTOpts is DCTColor with the full option set: worker count, the
// blocked color-gather (with the adaptive average-degree heuristic,
// ForceGather/DisableGather overrides) and the hot-tier threshold v_t.
// Neighbor-color loads go through the same gather/PUV path as the
// speculative engines; the uncolored tail above the current vertex is
// never scanned at all, because under the DCT discipline every
// higher-indexed neighbor defers on this vertex, not the other way
// around.
//
// Cancellation is polled every few owned vertices and inside every spin
// wait; a cancelled or failed worker raises a shared abort flag so no
// peer spins forever on a color that will never be published. On
// cancellation the call returns ctx.Err() and no result; all mutable
// state is private to the call.
func DCTOpts(ctx context.Context, g *graph.CSR, maxColors int, opts Options) (*Result, metrics.ParallelStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, metrics.ParallelStats{}, err
	}
	workers := resolveWorkers(opts.Workers, g.NumVertices())
	sc := opts.Scratch
	if !sc.fits("dct", workers) {
		sc = nil
	}
	return dctRun(ctx, g, maxColors, opts, sc, workers)
}

// dctRun is the engine body after option and scratch validation: the
// worker count is already resolved and sc either fits the calling
// engine or is nil. Split out so the sharded engine's degenerate
// one-shard path can reuse the whole machinery under its own Scratch
// key without re-checking it against "dct".
func dctRun(ctx context.Context, g *graph.CSR, maxColors int, opts Options, sc *Scratch, workers int) (*Result, metrics.ParallelStats, error) {
	n := g.NumVertices()
	if workers == 1 && n > 0 {
		// One worker owns every vertex and colors in ascending index
		// order, so a lower-indexed neighbor is always already colored:
		// deferral is impossible and the whole forwarding machinery —
		// goroutines, rings, closures — would only add allocations. The
		// inline pass below is behavior- and telemetry-identical (and is
		// what makes the engine allocation-free on a pooled Scratch).
		return dctSequential(ctx, g, maxColors, opts, sc)
	}
	ss := sc.shardSet(workers)
	// Arm the shards' live mirrors for mid-run /debug/runs progress; the
	// OwnerLoop refreshes them at its 64-vertex poll checkpoint.
	opts.Run.AttachShards(ss)
	st := metrics.ParallelStats{Workers: workers}
	useGather, gatherAuto := gatherDecision(g, opts)
	rings := make([]*dispatch.ForwardRing, workers)
	foldStats := func() {
		st.VerticesPerWorker = ss.PerWorkerInto(obs.CtrVertices, sc.perWorkerBuf(0, workers))
		st.Deferred = ss.Total(obs.CtrDeferred)
		st.DeferRetries = ss.Total(obs.CtrDeferRetries)
		st.SpinWaits = ss.Total(obs.CtrSpinWaits)
		st.Gather = metrics.GatherStats{
			HotReads:       ss.Total(obs.CtrHotReads),
			MergedReads:    ss.Total(obs.CtrMergedReads),
			ColdBlockLoads: ss.Total(obs.CtrColdBlockLoads),
			PrunedTail:     ss.Total(obs.CtrPrunedTail),
			AutoDisabled:   gatherAuto,
		}
		for _, r := range rings {
			if r != nil && r.Peak() > st.ForwardRingPeak {
				st.ForwardRingPeak = r.Peak()
			}
		}
	}
	if n == 0 {
		foldStats()
		return &Result{Colors: nil, NumColors: 0}, st, nil
	}
	esp := opts.Span
	o := opts.Obs
	// The forwarding-latency histogram needs park timestamps; the clock
	// is read only when an observer is live, and only on the (rare)
	// defer path — never per vertex or per edge.
	var obsStart time.Time
	if o != nil {
		obsStart = time.Now()
	}

	// Colors in 32-bit words, written exactly once by the owning worker
	// (atomic release store) and read by peers with acquire loads. 0 is
	// "not yet published" — the same convention the hardware's valid bit
	// encodes.
	shared := sc.sharedBuf(n)
	sorted := g.EdgesSorted()

	// abort lets a failed or cancelled worker unblock every peer's spin
	// loop: a worker that exits early never publishes its remaining
	// colors, and without the flag a peer waiting on one would spin
	// forever.
	var abort atomic.Bool

	ws := make([]*workerScratch, workers)
	for w := range ws {
		s := sc.workerAt(w, maxColors)
		sh := ss.Shard(w)
		s.sh = sh
		s.ga.init(shared, opts.HotVertices, sh)
		s.ensureRing(ForwardRingCap)
		ws[w] = s
		rings[w] = s.ring
	}
	if useGather {
		st.HotThreshold = ws[0].ga.vt
	}

	// attempt colors v if every lower-indexed neighbor has published,
	// reading neighbor colors through the gather (or the naive atomic
	// path). Higher-indexed neighbors are never read: under the DCT
	// discipline they defer on v. On a sorted adjacency list they form
	// the tail and the scan breaks (the PUV break of §3.2.2). Returns
	// the first pending neighbor on deferral.
	attempt := func(s *workerScratch, v graph.VertexID) (graph.VertexID, exec.Outcome) {
		s.state.Reset()
		adj := g.Neighbors(v)
		for i, u := range adj {
			if u > v {
				if !sorted {
					continue
				}
				if useGather {
					s.sh.Add(obs.CtrPrunedTail, int64(len(adj)-i))
				}
				break
			}
			var c uint32
			if useGather {
				c = s.ga.load(u)
			} else {
				c = atomic.LoadUint32(&shared[u])
			}
			if c == 0 {
				return u, exec.Deferred
			}
			s.state.OrColorNum(c)
		}
		pick, _ := s.codec.FirstFree(s.state)
		if pick == 0 {
			return 0, exec.Failed
		}
		atomic.StoreUint32(&shared[v], uint32(pick))
		s.sh.Inc(obs.CtrVertices)
		return 0, exec.Colored
	}

	// The forwarding-latency instrumentation is wired only when an
	// observer is live; with clock == nil the loop never reads the clock
	// and park timestamps stay zero.
	var (
		clock     func() int64
		onForward func(parkedAt int64)
	)
	if o != nil {
		clock = func() int64 { return int64(time.Since(obsStart)) }
		onForward = func(parkedAt int64) {
			o.ObserveForwardWait(float64(int64(time.Since(obsStart))-parkedAt) / 1e9)
		}
	}
	// Owner-computes pass: worker w's HDV FIFO is the arithmetic sequence
	// w, w+P, w+2P, … walked in index order by the shared loop.
	exec.Go(workers, func(w int) {
		s := ws[w]
		loop := exec.OwnerLoop{
			Ctx:   ctx,
			Abort: &abort,
			Ring:  s.ring,
			Shard: s.sh,
			Attempt: func(v graph.VertexID) (graph.VertexID, exec.Outcome) {
				return attempt(s, v)
			},
			Published: func(u uint32) bool { return atomic.LoadUint32(&shared[u]) != 0 },
			FailErr:   ErrPaletteExhausted,
			Clock:     clock,
			OnForward: onForward,
		}
		s.err = loop.RunRange(w, workers, n)
	})
	foldStats()
	for _, s := range ws {
		if s.err != nil {
			return nil, st, s.err
		}
	}
	st.Rounds = 1
	opts.Run.SetRound(1)
	// The single pass is the engine's one round; the span keeps the
	// round-record count equal to RunStats.Rounds across all engines.
	esp.Child("round").Attr("round", 1).Attr("pending", int64(n)).
		Attr("conflicts_found", int64(0)).Attr("recolored", int64(0)).
		Attr("deferred", st.Deferred).Attr("ring_peak", int64(st.ForwardRingPeak)).End()

	colors := sc.colorsBuf(n)
	for i, c := range shared {
		colors[i] = uint16(c)
	}
	return sc.result(colors, sc.distinctColors(colors), OpStats{}), st, nil
}

// dctSequential is the one-worker fast path of DCTOpts: the same owned
// pass (ascending index order, gather/PUV reads, identical counters and
// round span) with no goroutines, rings or escaping closures. On a
// fitting Scratch the entire run — including the returned Result — is
// allocation-free in steady state.
func dctSequential(ctx context.Context, g *graph.CSR, maxColors int, opts Options, sc *Scratch) (*Result, metrics.ParallelStats, error) {
	n := g.NumVertices()
	ss := sc.shardSet(1)
	opts.Run.AttachShards(ss)
	st := metrics.ParallelStats{Workers: 1}
	useGather, gatherAuto := gatherDecision(g, opts)
	shared := sc.sharedBuf(n)
	sorted := g.EdgesSorted()
	s := sc.workerAt(0, maxColors)
	sh := ss.Shard(0)
	s.sh = sh
	s.ga.init(shared, opts.HotVertices, sh)
	fold := func() {
		st.VerticesPerWorker = ss.PerWorkerInto(obs.CtrVertices, sc.perWorkerBuf(0, 1))
		st.Gather = metrics.GatherStats{
			HotReads:       ss.Total(obs.CtrHotReads),
			MergedReads:    ss.Total(obs.CtrMergedReads),
			ColdBlockLoads: ss.Total(obs.CtrColdBlockLoads),
			PrunedTail:     ss.Total(obs.CtrPrunedTail),
			AutoDisabled:   gatherAuto,
		}
	}
	if useGather {
		st.HotThreshold = s.ga.vt
	}
	for v := 0; v < n; v++ {
		if v&ctxStrideMask == 0 {
			sh.PublishAll() // live-progress checkpoint at the poll stride
			if err := ctx.Err(); err != nil {
				fold()
				return nil, st, err
			}
		}
		s.state.Reset()
		adj := g.Neighbors(graph.VertexID(v))
		for i, u := range adj {
			if int(u) > v {
				// The higher-indexed tail defers on v under the DCT rule
				// and is never read; on a sorted list it prunes as a break.
				if !sorted {
					continue
				}
				if useGather {
					sh.Add(obs.CtrPrunedTail, int64(len(adj)-i))
				}
				break
			}
			var c uint32
			if useGather {
				c = s.ga.load(u)
			} else {
				c = shared[u]
			}
			s.state.OrColorNum(c)
		}
		pick, _ := s.codec.FirstFree(s.state)
		if pick == 0 {
			fold()
			return nil, st, ErrPaletteExhausted
		}
		shared[v] = uint32(pick)
		sh.Inc(obs.CtrVertices)
	}
	fold()
	st.Rounds = 1
	opts.Run.SetRound(1)
	// Guarded rather than relying on nil-safe span methods: boxing the
	// Attr values would allocate even when the span is nil.
	if esp := opts.Span; esp != nil {
		esp.Child("round").Attr("round", 1).Attr("pending", int64(n)).
			Attr("conflicts_found", int64(0)).Attr("recolored", int64(0)).
			Attr("deferred", int64(0)).Attr("ring_peak", int64(0)).End()
	}
	colors := sc.colorsBuf(n)
	for i, c := range shared {
		colors[i] = uint16(c)
	}
	return sc.result(colors, sc.distinctColors(colors), OpStats{}), st, nil
}
