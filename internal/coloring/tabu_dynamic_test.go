package coloring

import (
	"context"
	"math/rand"
	"testing"

	"bitcolor/internal/graph"
)

func TestTabuColFindsProperColoring(t *testing.T) {
	g := randomGraph(t, 200, 1200, 71)
	greedy, err := Greedy(context.Background(), g, MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	// TabuCol at greedy's k must succeed comfortably.
	res, ok := TabuCol(g, greedy.NumColors, 1, 50_000)
	if !ok {
		t.Fatal("TabuCol failed at greedy's color count")
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.NumColors > greedy.NumColors {
		t.Fatalf("TabuCol used %d > k %d", res.NumColors, greedy.NumColors)
	}
}

func TestTabuColInfeasibleK(t *testing.T) {
	g, _ := graph.Complete(6) // chi = 6
	if _, ok := TabuCol(g, 5, 1, 20_000); ok {
		t.Fatal("TabuCol 5-colored K6")
	}
	if res, ok := TabuCol(g, 6, 1, 50_000); !ok || Verify(g, res.Colors) != nil {
		t.Fatal("TabuCol failed to 6-color K6")
	}
}

func TestTabuColDegenerateInputs(t *testing.T) {
	g, _ := graph.FromEdgeList(3, nil)
	if res, ok := TabuCol(g, 1, 1, 100); !ok || res.NumColors != 1 {
		t.Fatal("edgeless 1-coloring failed")
	}
	if _, ok := TabuCol(g, 0, 1, 100); ok {
		t.Fatal("k=0 accepted")
	}
}

func TestTabuColReduceImproves(t *testing.T) {
	// C8 greedy in adversarial order can use 3; tabu reduces to 2.
	g, err := graph.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	order := []graph.VertexID{0, 2, 4, 6, 1, 3, 5, 7}
	bad, err := GreedyOrdered(context.Background(), g, order, 8)
	if err != nil {
		t.Fatal(err)
	}
	improved := TabuColReduce(g, bad, 3, 20_000)
	if err := Verify(g, improved.Colors); err != nil {
		t.Fatal(err)
	}
	if improved.NumColors != 2 {
		t.Fatalf("TabuColReduce left %d colors on C8, want 2", improved.NumColors)
	}
}

func TestTabuColReduceNeverWorse(t *testing.T) {
	g := randomGraph(t, 150, 900, 72)
	initial, _ := Greedy(context.Background(), g, MaxColorsDefault)
	out := TabuColReduce(g, initial, 9, 5_000)
	if out.NumColors > initial.NumColors {
		t.Fatalf("reduce went from %d to %d", initial.NumColors, out.NumColors)
	}
	if err := Verify(g, out.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicColoringIncremental(t *testing.T) {
	d := NewDynamicColoring(64)
	const n = 200
	for i := 0; i < n; i++ {
		d.AddVertex()
	}
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < 1500; i++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		if err := d.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
		if i%100 == 0 {
			if err := d.Verify(); err != nil {
				t.Fatalf("after %d edges: %v", i, err)
			}
		}
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	if d.Recolorings == 0 {
		t.Fatal("no repairs on a dense stream (implausible)")
	}
	// Snapshot interoperates with the batch path.
	g, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, d.Colors()); err != nil {
		t.Fatal(err)
	}
	// Online quality: within a small factor of batch greedy.
	batch, err := Greedy(context.Background(), g, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumColorsInUse() > 3*batch.NumColors {
		t.Fatalf("online used %d colors vs batch %d", d.NumColorsInUse(), batch.NumColors)
	}
}

func TestDynamicColoringErrors(t *testing.T) {
	d := NewDynamicColoring(4)
	a := d.AddVertex()
	b := d.AddVertex()
	if err := d.AddEdge(a, a); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := d.AddEdge(a, 99); err == nil {
		t.Fatal("unknown vertex accepted")
	}
	if err := d.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	// Duplicate ignored, no extra repair.
	before := d.Recolorings
	if err := d.AddEdge(b, a); err != nil {
		t.Fatal(err)
	}
	if d.Recolorings != before {
		t.Fatal("duplicate edge triggered a repair")
	}
}

func TestDynamicColoringPaletteExhaustion(t *testing.T) {
	d := NewDynamicColoring(2)
	v0, v1, v2 := d.AddVertex(), d.AddVertex(), d.AddVertex()
	if err := d.AddEdge(v0, v1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(v1, v2); err != nil {
		t.Fatal(err)
	}
	// Closing the triangle needs a third color.
	if err := d.AddEdge(v0, v2); err == nil {
		t.Fatal("triangle fit in 2 colors")
	}
}

func BenchmarkDynamicColoring(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 5000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDynamicColoring(256)
		for j := 0; j < n; j++ {
			d.AddVertex()
		}
		for j := 0; j < 4*n; j++ {
			u := graph.VertexID(rng.Intn(n))
			v := graph.VertexID(rng.Intn(n))
			if u != v {
				if err := d.AddEdge(u, v); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}
