package coloring

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"bitcolor/internal/gen"
	"bitcolor/internal/graph"
	"bitcolor/internal/reorder"
)

func TestRLFProper(t *testing.T) {
	g := randomGraph(t, 300, 2500, 1)
	res, err := RLF(context.Background(), g, MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestRLFTriangleAndBipartite(t *testing.T) {
	tri, _ := graph.FromEdgeList(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	res, err := RLF(context.Background(), tri, 8)
	if err != nil || res.NumColors != 3 {
		t.Fatalf("RLF triangle: %d colors, %v", res.NumColors, err)
	}
	var edges []graph.Edge
	for u := 0; u < 4; u++ {
		for v := 4; v < 8; v++ {
			edges = append(edges, graph.Edge{U: graph.VertexID(u), V: graph.VertexID(v)})
		}
	}
	bip, _ := graph.FromEdgeList(8, edges)
	res, err = RLF(context.Background(), bip, 8)
	if err != nil || res.NumColors != 2 {
		t.Fatalf("RLF K(4,4): %d colors, %v", res.NumColors, err)
	}
}

func TestRLFQualityVsGreedy(t *testing.T) {
	// RLF should match or beat first-fit greedy on skewed graphs (not a
	// theorem, but reliable at this scale; a regression here signals a
	// broken class construction).
	g, err := gen.RMAT(11, 8, 0.57, 0.19, 0.19, 3)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := reorder.DBG(g)
	greedy, err := Greedy(context.Background(), h, MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	rlf, err := RLF(context.Background(), h, MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	if rlf.NumColors > greedy.NumColors {
		t.Fatalf("RLF %d colors > greedy %d", rlf.NumColors, greedy.NumColors)
	}
}

func TestRLFPaletteExhausted(t *testing.T) {
	tri, _ := graph.FromEdgeList(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	if _, err := RLF(context.Background(), tri, 2); err == nil {
		t.Fatal("undersized palette accepted")
	}
}

func TestRLFEdgeless(t *testing.T) {
	g, _ := graph.FromEdgeList(5, nil)
	res, err := RLF(context.Background(), g, 4)
	if err != nil || res.NumColors != 1 {
		t.Fatalf("edgeless RLF: %d colors, %v", res.NumColors, err)
	}
}

func TestIteratedGreedyNeverWorse(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(t, 200, 1800, seed)
		initial, err := Greedy(context.Background(), g, MaxColorsDefault)
		if err != nil {
			t.Fatal(err)
		}
		improved, err := IteratedGreedy(context.Background(), g, initial, 9, seed, MaxColorsDefault)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(g, improved.Colors); err != nil {
			t.Fatal(err)
		}
		if improved.NumColors > initial.NumColors {
			t.Fatalf("seed %d: iterated greedy went from %d to %d colors",
				seed, initial.NumColors, improved.NumColors)
		}
	}
}

func TestIteratedGreedyZeroRounds(t *testing.T) {
	g := randomGraph(t, 50, 200, 1)
	initial, _ := Greedy(context.Background(), g, MaxColorsDefault)
	same, err := IteratedGreedy(context.Background(), g, initial, 0, 1, MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	if same.NumColors != initial.NumColors {
		t.Fatal("zero rounds changed the result")
	}
}

func TestKempeReduceProperAndNotWorse(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(t, 150, 900, seed)
		// A deliberately bad initial coloring: reverse order greedy.
		order := make([]graph.VertexID, g.NumVertices())
		for i := range order {
			order[i] = graph.VertexID(g.NumVertices() - 1 - i)
		}
		initial, err := GreedyOrdered(context.Background(), g, order, MaxColorsDefault)
		if err != nil {
			t.Fatal(err)
		}
		improved := KempeReduce(g, initial)
		if err := Verify(g, improved.Colors); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if improved.NumColors > initial.NumColors {
			t.Fatalf("seed %d: Kempe increased colors %d -> %d",
				seed, initial.NumColors, improved.NumColors)
		}
	}
}

func TestKempeReduceEliminatesRemovableColor(t *testing.T) {
	// Path 0-1-2 colored 1,2,3: color 3 is removable (vertex 2 can take
	// color 1).
	g, _ := graph.FromEdgeList(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	bad := &Result{Colors: []uint16{1, 2, 3}, NumColors: 3}
	improved := KempeReduce(g, bad)
	if improved.NumColors != 2 {
		t.Fatalf("Kempe left %d colors on a path, want 2", improved.NumColors)
	}
	if err := Verify(g, improved.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestEquitableBalances(t *testing.T) {
	// Sparse random graph: plenty of room to rebalance.
	g := randomGraph(t, 400, 600, 2)
	initial, err := Greedy(context.Background(), g, MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	balanced := Equitable(g, initial, 1)
	if err := Verify(g, balanced.Colors); err != nil {
		t.Fatal(err)
	}
	if balanced.NumColors > initial.NumColors {
		t.Fatal("Equitable increased the color count")
	}
	spread := func(r *Result) int {
		sizes := map[uint16]int{}
		for _, c := range r.Colors {
			sizes[c]++
		}
		max, min := 0, len(r.Colors)
		for _, s := range sizes {
			if s > max {
				max = s
			}
			if s < min {
				min = s
			}
		}
		return max - min
	}
	if spread(balanced) > spread(initial) {
		t.Fatalf("Equitable widened the class-size spread: %d -> %d",
			spread(initial), spread(balanced))
	}
}

func TestEquitableDegenerateInputs(t *testing.T) {
	g, _ := graph.FromEdgeList(0, nil)
	res := Equitable(g, &Result{Colors: nil}, 1)
	if len(res.Colors) != 0 {
		t.Fatal("empty graph mishandled")
	}
	h, _ := graph.FromEdgeList(3, nil)
	one, _ := Greedy(context.Background(), h, 4)
	if out := Equitable(h, one, 0); Verify(h, out.Colors) != nil {
		t.Fatal("single-class graph broken")
	}
}

// Property: the improvement pipeline (greedy → iterated greedy → Kempe →
// equitable) keeps colorings proper and never increases the count.
func TestImprovementPipelineInvariant(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%60) + 5
		rng := rand.New(rand.NewSource(seed))
		edges := make([]graph.Edge, 4*n)
		for i := range edges {
			edges[i] = graph.Edge{U: graph.VertexID(rng.Intn(n)), V: graph.VertexID(rng.Intn(n))}
		}
		g, err := graph.FromEdgeList(n, edges)
		if err != nil {
			return false
		}
		initial, err := Greedy(context.Background(), g, n+1)
		if err != nil {
			return false
		}
		ig, err := IteratedGreedy(context.Background(), g, initial, 3, seed, n+1)
		if err != nil || Verify(g, ig.Colors) != nil || ig.NumColors > initial.NumColors {
			return false
		}
		kempe := KempeReduce(g, ig)
		if Verify(g, kempe.Colors) != nil || kempe.NumColors > ig.NumColors {
			return false
		}
		eq := Equitable(g, kempe, 1)
		return Verify(g, eq.Colors) == nil && eq.NumColors <= kempe.NumColors
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRLF(b *testing.B) {
	g, _ := gen.RMAT(11, 8, 0.57, 0.19, 0.19, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RLF(context.Background(), g, MaxColorsDefault); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIteratedGreedy(b *testing.B) {
	g, _ := gen.RMAT(12, 8, 0.57, 0.19, 0.19, 1)
	initial, _ := Greedy(context.Background(), g, MaxColorsDefault)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := IteratedGreedy(context.Background(), g, initial, 5, int64(i), MaxColorsDefault); err != nil {
			b.Fatal(err)
		}
	}
}
