package coloring

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"bitcolor/internal/gen"
	"bitcolor/internal/graph"
	"bitcolor/internal/reorder"
)

// shardedSweep is the acceptance grid: every (shards × workers)
// combination the issue pins, under both partition strategies.
var (
	shardedShardSweep  = []int{1, 2, 4}
	shardedWorkerSweep = []int{1, 2, 4}
	shardedStrategies  = []string{PartitionRanges, PartitionLabelProp}
)

// TestShardedMatchesGreedyEverySweepPoint pins the tentpole acceptance
// criterion: the sharded engine's coloring is byte-identical to
// sequential greedy for every shard count, worker count and partition
// strategy, on random, path and DBG-reordered graphs — with exactly one
// interior round and one bounded frontier phase (Rounds == 1, zero
// conflicts).
func TestShardedMatchesGreedyEverySweepPoint(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"random": randomGraph(t, 2000, 24000, 9),
		"path":   pathGraph(t, 5000),
	}
	dbg, _ := reorder.DBG(randomGraph(t, 1500, 18000, 4))
	graphs["dbg"] = dbg
	for name, g := range graphs {
		ref, err := Greedy(context.Background(), g, MaxColorsDefault)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range shardedShardSweep {
			for _, w := range shardedWorkerSweep {
				for _, strat := range shardedStrategies {
					opts := Options{Workers: w, Shards: s, PartitionStrategy: strat}
					res, st, err := ShardedOpts(context.Background(), g, MaxColorsDefault, opts)
					if err != nil {
						t.Fatalf("%s s=%d w=%d %s: %v", name, s, w, strat, err)
					}
					if err := Verify(g, res.Colors); err != nil {
						t.Fatalf("%s s=%d w=%d %s: %v", name, s, w, strat, err)
					}
					if st.Rounds != 1 || st.ConflictsFound != 0 || st.ConflictsRepaired != 0 {
						t.Fatalf("%s s=%d w=%d %s: not a single clean pass: rounds=%d conflicts=%d/%d",
							name, s, w, strat, st.Rounds, st.ConflictsFound, st.ConflictsRepaired)
					}
					if st.Shards != s {
						t.Fatalf("%s s=%d w=%d %s: Shards = %d", name, s, w, strat, st.Shards)
					}
					for v := range ref.Colors {
						if res.Colors[v] != ref.Colors[v] {
							t.Fatalf("%s s=%d w=%d %s: vertex %d: sharded %d, greedy %d",
								name, s, w, strat, v, res.Colors[v], ref.Colors[v])
						}
					}
					if st.TotalVertices() != int64(g.NumVertices()) {
						t.Fatalf("%s s=%d w=%d %s: colored %d of %d vertices",
							name, s, w, strat, st.TotalVertices(), g.NumVertices())
					}
				}
			}
		}
	}
}

// TestShardedQualityOnTable3 runs the engine across every Table 3
// stand-in at real shard and worker parallelism: always one round,
// always exactly the sequential greedy coloring of the DBG order.
func TestShardedQualityOnTable3(t *testing.T) {
	for _, d := range gen.SmallRegistry() {
		d := d
		t.Run(d.Abbrev, func(t *testing.T) {
			g, err := d.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			h, _ := reorder.DBG(g)
			seq, err := BitwiseGreedy(context.Background(), h, MaxColorsDefault, true)
			if err != nil {
				t.Fatal(err)
			}
			for _, strat := range shardedStrategies {
				res, st, err := ShardedOpts(context.Background(), h, MaxColorsDefault,
					Options{Workers: 4, Shards: 4, PartitionStrategy: strat})
				if err != nil {
					t.Fatalf("%s: %v", strat, err)
				}
				if st.Rounds != 1 {
					t.Fatalf("%s: rounds = %d", strat, st.Rounds)
				}
				for v := range seq.Colors {
					if res.Colors[v] != seq.Colors[v] {
						t.Fatalf("%s: vertex %d: sharded %d, sequential %d",
							strat, v, res.Colors[v], seq.Colors[v])
					}
				}
			}
		})
	}
}

// TestShardedStatsDeterminism pins the structural guarantee on the
// statistics: at a fixed (shards, strategy) the frontier size, cut
// edges, boundary count and cross-shard defer total are identical
// across worker counts — they are properties of the partition, not of
// goroutine timing — and the interior-vertex shard counts plus the
// frontier always account for the whole graph.
func TestShardedStatsDeterminism(t *testing.T) {
	g := randomGraph(t, 1500, 9000, 3)
	for _, s := range []int{2, 4} {
		for _, strat := range shardedStrategies {
			type probe struct {
				frontier, boundary int
				cut, cross         int64
			}
			var want probe
			for i, w := range shardedWorkerSweep {
				_, st, err := ShardedOpts(context.Background(), g, MaxColorsDefault,
					Options{Workers: w, Shards: s, PartitionStrategy: strat})
				if err != nil {
					t.Fatal(err)
				}
				got := probe{st.FrontierVertices, st.BoundaryVertices, st.CutEdges, st.CrossShardDefers}
				if i == 0 {
					want = got
				} else if got != want {
					t.Fatalf("s=%d %s w=%d: stats %+v differ from w=%d's %+v",
						s, strat, w, got, shardedWorkerSweep[0], want)
				}
				if len(st.ShardVertices) != s || len(st.ShardDurations) != s {
					t.Fatalf("s=%d %s w=%d: per-shard slices sized %d/%d",
						s, strat, w, len(st.ShardVertices), len(st.ShardDurations))
				}
				var interior int64
				for _, v := range st.ShardVertices {
					interior += v
				}
				if interior+int64(st.FrontierVertices) != int64(g.NumVertices()) {
					t.Fatalf("s=%d %s w=%d: interior %d + frontier %d != %d vertices",
						s, strat, w, interior, st.FrontierVertices, g.NumVertices())
				}
			}
		}
	}
}

// TestShardedSingleShardDelegates: shards <= 1 (and the unset default)
// must take the plain DCT path and still report Shards = 1 with no
// partition statistics.
func TestShardedSingleShardDelegates(t *testing.T) {
	g := randomGraph(t, 800, 6400, 5)
	for _, shards := range []int{0, 1} {
		_, st, err := ShardedOpts(context.Background(), g, MaxColorsDefault, Options{Workers: 2, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if st.Shards != 1 {
			t.Fatalf("Shards = %d, want 1", st.Shards)
		}
		if st.FrontierVertices != 0 || st.CutEdges != 0 || st.BoundaryVertices != 0 || st.CrossShardDefers != 0 {
			t.Fatalf("single-shard run reported partition stats: %+v", st)
		}
	}
}

// TestShardedUnknownStrategy pins the error path: an unrecognized
// partition strategy fails up front, before any goroutine starts.
func TestShardedUnknownStrategy(t *testing.T) {
	g := randomGraph(t, 100, 400, 1)
	res, _, err := ShardedOpts(context.Background(), g, MaxColorsDefault,
		Options{Workers: 2, Shards: 2, PartitionStrategy: "metis"})
	if err == nil || !strings.Contains(err.Error(), "unknown partition strategy") {
		t.Fatalf("want unknown-strategy error, got %v", err)
	}
	if res != nil {
		t.Fatal("result returned alongside strategy error")
	}
}

// TestShardedCancelBeforeRun: a context cancelled before the call must
// return immediately with ctx.Err() and no result.
func TestShardedCancelBeforeRun(t *testing.T) {
	g := randomGraph(t, 200, 800, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := ShardedOpts(ctx, g, MaxColorsDefault, Options{Workers: 2, Shards: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatal("result returned alongside cancellation")
	}
}

// TestShardedCancelMidPass cancels a multi-shard run shortly after start
// on a graph big enough that it cannot finish first: the engine must
// notice at a polling checkpoint — including workers parked in frontier
// spin waits — and return ctx.Err() with no result.
func TestShardedCancelMidPass(t *testing.T) {
	g := pathGraph(t, 2_000_000)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, _, err := ShardedOpts(ctx, g, MaxColorsDefault, Options{Workers: 2, Shards: 4})
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		if o.err == nil {
			t.Log("run finished before cancellation took effect")
			return
		}
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", o.err)
		}
		if o.res != nil {
			t.Fatal("result returned alongside cancellation")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("engine did not return after cancellation")
	}
}

// TestShardedPaletteExhausted: an 80-clique needs 80 colors; with a
// 64-color palette the failure surfaces in the frontier phase (the
// higher shard's vertices all defer on the lower shard), and every
// worker must stop and agree on ErrPaletteExhausted rather than hang.
func TestShardedPaletteExhausted(t *testing.T) {
	const n = 80
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID(j)})
		}
	}
	g, err := graph.FromEdgeList(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{1, 2, 4} {
		for _, w := range []int{1, 4} {
			res, _, err := ShardedOpts(context.Background(), g, 64,
				Options{MaxColors: 64, Workers: w, Shards: s, ForceGather: true})
			if !errors.Is(err, ErrPaletteExhausted) {
				t.Fatalf("s=%d w=%d: want ErrPaletteExhausted, got %v", s, w, err)
			}
			if res != nil {
				t.Fatalf("s=%d w=%d: result returned alongside palette exhaustion", s, w)
			}
		}
	}
}

// TestShardedEmptyGraph pins the degenerate case (delegates to the DCT
// path, which handles n == 0).
func TestShardedEmptyGraph(t *testing.T) {
	g, err := graph.FromEdgeList(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := ShardedOpts(context.Background(), g, MaxColorsDefault, Options{Workers: 4, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 0 || st.Rounds != 0 {
		t.Fatalf("empty graph: colors=%d rounds=%d", res.NumColors, st.Rounds)
	}
}

// TestShardedScratchReuse runs the engine repeatedly through one Scratch
// across changing shard counts and strategies: the pooled buffers must
// resize correctly and never leak one run's state into the next.
func TestShardedScratchReuse(t *testing.T) {
	g := randomGraph(t, 1200, 9600, 11)
	ref, err := Greedy(context.Background(), g, MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	sc := AcquireScratch("sharded", 2, g.NumVertices())
	defer sc.Release()
	for i := 0; i < 3; i++ {
		for _, s := range shardedShardSweep {
			for _, strat := range shardedStrategies {
				res, _, err := ShardedOpts(context.Background(), g, MaxColorsDefault,
					Options{Workers: 2, Shards: s, PartitionStrategy: strat, Scratch: sc})
				if err != nil {
					t.Fatalf("iter %d s=%d %s: %v", i, s, strat, err)
				}
				// The result is backed by the Scratch, so it is checked
				// before the next run reuses the buffers.
				for v := range ref.Colors {
					if res.Colors[v] != ref.Colors[v] {
						t.Fatalf("iter %d s=%d %s: vertex %d: sharded %d, greedy %d",
							i, s, strat, v, res.Colors[v], ref.Colors[v])
					}
				}
			}
		}
	}
}
