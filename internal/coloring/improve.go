package coloring

import (
	"context"
	"math/rand"

	"bitcolor/internal/bitops"
	"bitcolor/internal/graph"
)

// This file implements post-processing improvements over an initial
// coloring: iterated greedy re-coloring (Culberson) and Kempe-chain
// color elimination, plus an equitable rebalancing pass. They extend the
// repository beyond the paper's greedy core into the quality/extension
// space the paper's related work points at.

// IteratedGreedy improves a coloring by re-running first-fit greedy with
// vertex orders that cannot increase the color count: color classes are
// revisited as blocks (Culberson's theorem guarantees monotonicity when
// every class is processed contiguously). rounds bounds the iterations;
// the permutation of class order is randomized by seed ("reverse" and
// "largest-first" class orders are mixed in).
func IteratedGreedy(ctx context.Context, g *graph.CSR, initial *Result, rounds int, seed int64, maxColors int) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	best := &Result{
		Colors:    append([]uint16(nil), initial.Colors...),
		NumColors: initial.NumColors,
	}
	if n == 0 || rounds <= 0 {
		return best, nil
	}
	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Group vertices by color class.
		classes := make([][]graph.VertexID, best.NumColors+1)
		for v := 0; v < n; v++ {
			c := best.Colors[v]
			classes[c] = append(classes[c], graph.VertexID(v))
		}
		classOrder := make([]int, 0, best.NumColors)
		for c := 1; c <= best.NumColors; c++ {
			if len(classes[c]) > 0 {
				classOrder = append(classOrder, c)
			}
		}
		switch round % 3 {
		case 0: // reverse class order
			for i, j := 0, len(classOrder)-1; i < j; i, j = i+1, j-1 {
				classOrder[i], classOrder[j] = classOrder[j], classOrder[i]
			}
		case 1: // largest class first
			sortClassesBySize(classOrder, classes, true)
		default: // random class order
			rng.Shuffle(len(classOrder), func(i, j int) {
				classOrder[i], classOrder[j] = classOrder[j], classOrder[i]
			})
		}
		order := make([]graph.VertexID, 0, n)
		for _, c := range classOrder {
			order = append(order, classes[c]...)
		}
		res, err := GreedyOrdered(ctx, g, order, maxColors)
		if err != nil {
			return nil, err
		}
		if res.NumColors <= best.NumColors {
			best = res
		}
	}
	return best, nil
}

func sortClassesBySize(order []int, classes [][]graph.VertexID, descending bool) {
	// insertion sort: class counts are small.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := len(classes[order[j-1]]), len(classes[order[j]])
			if (descending && b > a) || (!descending && b < a) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
}

// KempeReduce tries to eliminate the highest color class via Kempe-chain
// interchanges: for every vertex of the top class, look for a pair of
// lower colors (a,b) such that swapping the (a,b)-connected component
// around the vertex frees color a for it. Returns the improved result
// (possibly unchanged). One full pass; callers can iterate.
func KempeReduce(g *graph.CSR, initial *Result) *Result {
	n := g.NumVertices()
	colors := append([]uint16(nil), initial.Colors...)
	top := MaxColor(colors)
	if top <= 1 {
		return &Result{Colors: colors, NumColors: countColors(colors)}
	}
	changed := false
	for v := 0; v < n; v++ {
		if colors[v] != top {
			continue
		}
		if recolorViaKempe(g, colors, graph.VertexID(v), top) {
			changed = true
		}
	}
	_ = changed
	return &Result{Colors: colors, NumColors: countColors(colors)}
}

// recolorViaKempe attempts to recolor v (currently `top`) with some color
// a < top by swapping an (a,b) Kempe chain. Returns true on success.
func recolorViaKempe(g *graph.CSR, colors []uint16, v graph.VertexID, top uint16) bool {
	// Colors used by v's neighbors.
	used := bitops.NewBitSet(int(top) + 1)
	for _, u := range g.Neighbors(v) {
		if colors[u] != 0 {
			used.Set(int(colors[u]))
		}
	}
	// A free color below top recolors v directly.
	for a := uint16(1); a < top; a++ {
		if !used.Test(int(a)) {
			colors[v] = a
			return true
		}
	}
	// Try swapping: pick colors a != b below top; if the (a,b) chain
	// containing all a-colored neighbors of v does not reach a b-colored
	// neighbor of v... the classical condition: swap the chain from each
	// a-neighbor; if no chain connects an a-neighbor to a b-neighbor, all
	// a-neighbors become b and a frees up for v.
	for a := uint16(1); a < top; a++ {
		for b := uint16(1); b < top; b++ {
			if a == b {
				continue
			}
			if tryChainSwap(g, colors, v, a, b) {
				colors[v] = a
				return true
			}
		}
	}
	return false
}

// tryChainSwap checks whether swapping a/b on the chains rooted at v's
// a-colored neighbors frees color a at v, and performs the swap if so.
func tryChainSwap(g *graph.CSR, colors []uint16, v graph.VertexID, a, b uint16) bool {
	// Collect the (a,b) component(s) reachable from v's a-neighbors.
	var stack []graph.VertexID
	inComp := map[graph.VertexID]bool{}
	for _, u := range g.Neighbors(v) {
		if colors[u] == a && !inComp[u] {
			inComp[u] = true
			stack = append(stack, u)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range g.Neighbors(x) {
			if y == v {
				continue
			}
			if (colors[y] == a || colors[y] == b) && !inComp[y] {
				inComp[y] = true
				stack = append(stack, y)
			}
		}
	}
	// If the component contains a b-colored neighbor of v, swapping would
	// put color a next to v again — no gain.
	for _, u := range g.Neighbors(v) {
		if colors[u] == b && inComp[u] {
			return false
		}
	}
	// Swap a <-> b inside the component.
	for x := range inComp {
		switch colors[x] {
		case a:
			colors[x] = b
		case b:
			colors[x] = a
		}
	}
	return true
}

// Equitable rebalances a proper coloring so class sizes differ by at most
// `slack` where possible, by moving vertices from oversized classes to
// any legal undersized class. It never increases the color count and
// keeps the coloring proper. Useful for the scheduling applications in
// the paper's introduction, where color classes map to resource batches.
func Equitable(g *graph.CSR, initial *Result, slack int) *Result {
	n := g.NumVertices()
	colors := append([]uint16(nil), initial.Colors...)
	k := int(MaxColor(colors))
	if k <= 1 || n == 0 {
		return &Result{Colors: colors, NumColors: countColors(colors)}
	}
	if slack < 1 {
		slack = 1
	}
	sizes := make([]int, k+1)
	for _, c := range colors {
		sizes[c]++
	}
	target := (n + k - 1) / k
	moved := true
	for iter := 0; moved && iter < 4; iter++ {
		moved = false
		for v := 0; v < n; v++ {
			c := int(colors[v])
			if sizes[c] <= target+slack {
				continue
			}
			// Legal destination classes for v.
			adjacent := make([]bool, k+1)
			for _, u := range g.Neighbors(graph.VertexID(v)) {
				adjacent[colors[u]] = true
			}
			for d := 1; d <= k; d++ {
				if d == c || adjacent[d] || sizes[d] >= target {
					continue
				}
				colors[v] = uint16(d)
				sizes[c]--
				sizes[d]++
				moved = true
				break
			}
		}
	}
	return &Result{Colors: colors, NumColors: countColors(colors)}
}
