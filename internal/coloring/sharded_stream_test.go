package coloring

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"bitcolor/internal/gen"
	"bitcolor/internal/graph"
	"bitcolor/internal/partition"
	"bitcolor/internal/reorder"
)

// writeV3ForTest persists g as a BCSR v3 file partitioned the way
// ShardedOpts would partition it, and returns the path.
func writeV3ForTest(t *testing.T, g *graph.CSR, shards int, strategy string) string {
	t.Helper()
	a, err := BuildPartition(g, shards, strategy)
	if err != nil {
		t.Fatal(err)
	}
	code, err := partition.StrategyCode(strategy)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bcsr3")
	if err := graph.SaveBinaryV3File(path, g, a.Parts, a.K, code); err != nil {
		t.Fatal(err)
	}
	return path
}

// openV3ForTest opens a freshly written v3 file and registers cleanup.
func openV3ForTest(t *testing.T, g *graph.CSR, shards int, strategy string) *graph.ShardedFile {
	t.Helper()
	sf, err := graph.OpenShardedFile(writeV3ForTest(t, g, shards, strategy))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sf.Close() })
	return sf
}

// skeletonFor returns the offsets-only stand-in CSR an out-of-core run
// receives: passing it (instead of g) proves the streamed executor
// reads adjacency exclusively through the shard file.
func skeletonFor(sf *graph.ShardedFile) *graph.CSR {
	return &graph.CSR{Offsets: make([]int64, sf.NumVertices()+1)}
}

// TestStreamedMatchesShardedEverySweepPoint pins the tentpole acceptance
// criterion: the out-of-core executor's coloring is byte-identical to
// the in-core sharded engine — and hence to sequential greedy — at
// every (shards × workers × residency × strategy) grid point, on
// random, path and DBG-reordered graphs, while the partition-derived
// statistics agree with the in-core run exactly.
func TestStreamedMatchesShardedEverySweepPoint(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"random": randomGraph(t, 2000, 24000, 9),
		"path":   pathGraph(t, 5000),
	}
	dbg, _ := reorder.DBG(randomGraph(t, 1500, 18000, 4))
	graphs["dbg"] = dbg
	for name, g := range graphs {
		for _, s := range shardedShardSweep {
			for _, strat := range shardedStrategies {
				sf := openV3ForTest(t, g, s, strat)
				skel := skeletonFor(sf)
				for _, w := range shardedWorkerSweep {
					ref, ist, err := ShardedOpts(context.Background(), g, MaxColorsDefault,
						Options{Workers: w, Shards: s, PartitionStrategy: strat})
					if err != nil {
						t.Fatal(err)
					}
					for _, r := range []int{1, 2} {
						res, st, err := ShardedOpts(context.Background(), skel, MaxColorsDefault,
							Options{Workers: w, OutOfCore: true, MaxResidentShards: r, ShardFile: sf})
						if err != nil {
							t.Fatalf("%s s=%d w=%d r=%d %s: %v", name, s, w, r, strat, err)
						}
						for v := range ref.Colors {
							if res.Colors[v] != ref.Colors[v] {
								t.Fatalf("%s s=%d w=%d r=%d %s: vertex %d: streamed %d, in-core %d",
									name, s, w, r, strat, v, res.Colors[v], ref.Colors[v])
							}
						}
						if err := VerifySharded(sf, res.Colors); err != nil {
							t.Fatalf("%s s=%d w=%d r=%d %s: %v", name, s, w, r, strat, err)
						}
						if st.Rounds != 1 || st.Shards != s || st.Workers != ist.Workers {
							t.Fatalf("%s s=%d w=%d r=%d %s: rounds=%d shards=%d workers=%d",
								name, s, w, r, strat, st.Rounds, st.Shards, st.Workers)
						}
						if st.FrontierVertices != ist.FrontierVertices ||
							st.CutEdges != ist.CutEdges ||
							st.BoundaryVertices != ist.BoundaryVertices ||
							st.CrossShardDefers != ist.CrossShardDefers {
							t.Fatalf("%s s=%d w=%d r=%d %s: partition stats diverge: streamed %d/%d/%d/%d, in-core %d/%d/%d/%d",
								name, s, w, r, strat,
								st.FrontierVertices, st.CutEdges, st.BoundaryVertices, st.CrossShardDefers,
								ist.FrontierVertices, ist.CutEdges, ist.BoundaryVertices, ist.CrossShardDefers)
						}
						if st.TotalVertices() != int64(g.NumVertices()) {
							t.Fatalf("%s s=%d w=%d r=%d %s: colored %d of %d",
								name, s, w, r, strat, st.TotalVertices(), g.NumVertices())
						}
						want := r
						if want > s {
							want = s
						}
						if st.ResidentShards != want || st.PeakMappedBytes <= 0 {
							t.Fatalf("%s s=%d w=%d r=%d %s: resident=%d peak=%d",
								name, s, w, r, strat, st.ResidentShards, st.PeakMappedBytes)
						}
					}
				}
				if got := sf.Stats(); got.Maps != got.Unmaps || got.ResidentBytes != 0 {
					t.Fatalf("%s s=%d %s: leaked mappings: %+v", name, s, strat, got)
				}
			}
		}
	}
}

// TestStreamedTable3StandIns runs the out-of-core executor across every
// Table 3 stand-in at real shard and residency parallelism: always the
// sequential greedy coloring of the DBG order.
func TestStreamedTable3StandIns(t *testing.T) {
	for _, d := range gen.SmallRegistry() {
		d := d
		t.Run(d.Abbrev, func(t *testing.T) {
			g, err := d.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			h, _ := reorder.DBG(g)
			seq, err := BitwiseGreedy(context.Background(), h, MaxColorsDefault, true)
			if err != nil {
				t.Fatal(err)
			}
			for _, strat := range shardedStrategies {
				sf := openV3ForTest(t, h, 4, strat)
				res, st, err := ShardedOpts(context.Background(), skeletonFor(sf), MaxColorsDefault,
					Options{Workers: 4, OutOfCore: true, MaxResidentShards: 2, ShardFile: sf})
				if err != nil {
					t.Fatalf("%s: %v", strat, err)
				}
				if st.Rounds != 1 {
					t.Fatalf("%s: rounds = %d", strat, st.Rounds)
				}
				for v := range seq.Colors {
					if res.Colors[v] != seq.Colors[v] {
						t.Fatalf("%s: vertex %d: streamed %d, sequential %d",
							strat, v, res.Colors[v], seq.Colors[v])
					}
				}
			}
		})
	}
}

// streamShardPayload mirrors the v3 section layout: one shard's mapped
// main-section footprint, inter-section alignment included.
func streamShardPayload(nvLocal int, neLocal int64) int64 {
	align := func(x int64) int64 { return (x + 63) &^ 63 }
	edgesOff := align(int64(nvLocal+1) * 8)
	vmapOff := align(edgesOff + neLocal*4)
	return vmapOff + int64(nvLocal)*4
}

// TestStreamedBoundedResidency pins the out-of-core invariant on a
// 4-shard graph: with MaxResidentShards=1 the peak mapped bytes stay
// below the full CSR footprint and within one (largest) shard payload
// plus the boundary blocks — the graph never resides in memory whole.
func TestStreamedBoundedResidency(t *testing.T) {
	g := randomGraph(t, 4000, 48000, 21)
	const shards = 4
	sf := openV3ForTest(t, g, shards, PartitionRanges)
	_, st, err := ShardedOpts(context.Background(), skeletonFor(sf), MaxColorsDefault,
		Options{Workers: 2, OutOfCore: true, MaxResidentShards: 1, ShardFile: sf})
	if err != nil {
		t.Fatal(err)
	}
	fullCSR := int64(g.NumVertices()+1)*8 + g.NumEdges()*4
	if st.PeakMappedBytes <= 0 || st.PeakMappedBytes >= fullCSR {
		t.Fatalf("peak mapped %d bytes not below the %d-byte full CSR", st.PeakMappedBytes, fullCSR)
	}
	var maxShard int64
	for s := 0; s < shards; s++ {
		nv, ne := sf.ShardSize(s)
		if p := streamShardPayload(nv, ne); p > maxShard {
			maxShard = p
		}
	}
	// Boundary-block footprint from the frontier mask: offsets, vertex
	// list and the u<v adjacency of every frontier vertex.
	mask := graph.FrontierMask(g, sf.Parts())
	var bndBytes int64
	perShardB := make([]int64, shards)
	for v, m := range mask {
		if !m {
			continue
		}
		perShardB[sf.Parts()[v]]++
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			if u < graph.VertexID(v) {
				bndBytes += 4
			}
		}
	}
	for _, nb := range perShardB {
		if nb > 0 {
			bndBytes += (nb+1)*8 + nb*4
		}
	}
	if limit := maxShard + bndBytes; st.PeakMappedBytes > limit {
		t.Fatalf("peak mapped %d bytes exceeds one shard payload + boundary blocks (%d)",
			st.PeakMappedBytes, limit)
	}
	if got := sf.Stats(); got.ResidentBytes != 0 {
		t.Fatalf("resident bytes %d after run", got.ResidentBytes)
	}
}

// TestStreamedScratchReuse runs the streamed executor repeatedly through
// one Scratch, interleaved with in-core runs, across residency limits:
// pooled buffers must never leak one run's state into the next.
func TestStreamedScratchReuse(t *testing.T) {
	g := randomGraph(t, 1200, 9600, 11)
	ref, err := Greedy(context.Background(), g, MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	sf := openV3ForTest(t, g, 4, PartitionRanges)
	skel := skeletonFor(sf)
	sc := AcquireScratch("sharded", 2, g.NumVertices())
	defer sc.Release()
	for i := 0; i < 3; i++ {
		for _, r := range []int{1, 2, 4} {
			res, _, err := ShardedOpts(context.Background(), skel, MaxColorsDefault,
				Options{Workers: 2, OutOfCore: true, MaxResidentShards: r, ShardFile: sf, Scratch: sc})
			if err != nil {
				t.Fatalf("iter %d r=%d: %v", i, r, err)
			}
			for v := range ref.Colors {
				if res.Colors[v] != ref.Colors[v] {
					t.Fatalf("iter %d r=%d: vertex %d: streamed %d, greedy %d",
						i, r, v, res.Colors[v], ref.Colors[v])
				}
			}
		}
		if res, _, err := ShardedOpts(context.Background(), g, MaxColorsDefault,
			Options{Workers: 2, Shards: 4, Scratch: sc}); err != nil {
			t.Fatalf("iter %d in-core: %v", i, err)
		} else {
			for v := range ref.Colors {
				if res.Colors[v] != ref.Colors[v] {
					t.Fatalf("iter %d in-core: vertex %d differs", i, v)
				}
			}
		}
	}
}

// TestStreamedPartitionReuse pins the cached-partition fast path of the
// in-core engine: a precomputed assignment matching the run's shape is
// used verbatim (identical colors and partition stats), while a
// mismatched one is ignored rather than trusted.
func TestStreamedPartitionReuse(t *testing.T) {
	g := randomGraph(t, 1500, 12000, 7)
	a, err := BuildPartition(g, 4, PartitionLabelProp)
	if err != nil {
		t.Fatal(err)
	}
	ref, ist, err := ShardedOpts(context.Background(), g, MaxColorsDefault,
		Options{Workers: 2, Shards: 4, PartitionStrategy: PartitionLabelProp})
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := ShardedOpts(context.Background(), g, MaxColorsDefault,
		Options{Workers: 2, Shards: 4, Partition: a})
	if err != nil {
		t.Fatal(err)
	}
	if st.CutEdges != ist.CutEdges || st.FrontierVertices != ist.FrontierVertices {
		t.Fatalf("cached partition not used: cut %d vs %d, frontier %d vs %d",
			st.CutEdges, ist.CutEdges, st.FrontierVertices, ist.FrontierVertices)
	}
	for v := range ref.Colors {
		if res.Colors[v] != ref.Colors[v] {
			t.Fatalf("vertex %d: cached-partition %d, fresh %d", v, res.Colors[v], ref.Colors[v])
		}
	}
	// A K-mismatched assignment must be ignored (run still succeeds and
	// reports the stats of a freshly built 2-shard partition).
	_, st2, err := ShardedOpts(context.Background(), g, MaxColorsDefault,
		Options{Workers: 2, Shards: 2, Partition: a})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Shards != 2 {
		t.Fatalf("mismatched cached partition changed the run: %+v", st2)
	}
}

// TestStreamedPaletteExhausted: the 80-clique under a 64-color palette
// must fail with ErrPaletteExhausted out of core too — the failure
// surfaces in the frontier phase, and every worker stops.
func TestStreamedPaletteExhausted(t *testing.T) {
	const n = 80
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID(j)})
		}
	}
	g, err := graph.FromEdgeList(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	sf := openV3ForTest(t, g, 2, PartitionRanges)
	for _, w := range []int{1, 4} {
		res, _, err := ShardedOpts(context.Background(), skeletonFor(sf), 64,
			Options{MaxColors: 64, Workers: w, OutOfCore: true, MaxResidentShards: 2, ShardFile: sf})
		if !errors.Is(err, ErrPaletteExhausted) {
			t.Fatalf("w=%d: want ErrPaletteExhausted, got %v", w, err)
		}
		if res != nil {
			t.Fatalf("w=%d: result returned alongside palette exhaustion", w)
		}
	}
	if got := sf.Stats(); got.ResidentBytes != 0 {
		t.Fatalf("resident bytes %d after failed run", got.ResidentBytes)
	}
}

// TestStreamedCancel covers both cancellation points: before the call
// (immediate ctx.Err) and mid-pass on a graph too big to finish first
// (the runner loop and OwnerLoop checkpoints must both notice).
func TestStreamedCancel(t *testing.T) {
	small := openV3ForTest(t, randomGraph(t, 200, 800, 2), 2, PartitionRanges)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := ShardedOpts(ctx, skeletonFor(small), MaxColorsDefault,
		Options{Workers: 2, OutOfCore: true, ShardFile: small})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatal("result returned alongside cancellation")
	}

	big := openV3ForTest(t, pathGraph(t, 1_000_000), 4, PartitionRanges)
	ctx, cancel = context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, _, err := ShardedOpts(ctx, skeletonFor(big), MaxColorsDefault,
			Options{Workers: 2, OutOfCore: true, MaxResidentShards: 1, ShardFile: big})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("streamed engine did not return after cancellation")
	}
}

// TestStreamedEmptyAndSingleShard pins the degenerate shapes: an empty
// graph and a one-shard file both stream to the correct (trivial or
// greedy-identical) coloring without a frontier phase.
func TestStreamedEmptyAndSingleShard(t *testing.T) {
	empty, err := graph.FromEdgeList(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sfe := openV3ForTest(t, empty, 1, PartitionRanges)
	res, st, err := ShardedOpts(context.Background(), skeletonFor(sfe), MaxColorsDefault,
		Options{Workers: 4, OutOfCore: true, ShardFile: sfe})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 0 || st.FrontierVertices != 0 {
		t.Fatalf("empty graph: colors=%d frontier=%d", res.NumColors, st.FrontierVertices)
	}

	g := randomGraph(t, 800, 6400, 5)
	ref, err := Greedy(context.Background(), g, MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	sf1 := openV3ForTest(t, g, 1, PartitionRanges)
	res, st, err = ShardedOpts(context.Background(), skeletonFor(sf1), MaxColorsDefault,
		Options{Workers: 2, OutOfCore: true, ShardFile: sf1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 1 || st.FrontierVertices != 0 || st.CutEdges != 0 {
		t.Fatalf("single-shard stream: %+v", st)
	}
	for v := range ref.Colors {
		if res.Colors[v] != ref.Colors[v] {
			t.Fatalf("vertex %d: streamed %d, greedy %d", v, res.Colors[v], ref.Colors[v])
		}
	}
}

// TestVerifySharded pins the streamed verifier: it accepts a proper
// coloring and rejects a conflicted, uncolored or mis-sized one.
func TestVerifySharded(t *testing.T) {
	g := randomGraph(t, 600, 4800, 13)
	sf := openV3ForTest(t, g, 3, PartitionRanges)
	res, _, err := ShardedOpts(context.Background(), g, MaxColorsDefault, Options{Workers: 2, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	colors := append([]uint16(nil), res.Colors...)
	if err := VerifySharded(sf, colors); err != nil {
		t.Fatal(err)
	}
	if err := VerifySharded(sf, colors[:10]); err == nil {
		t.Fatal("mis-sized colors accepted")
	}
	// Force a conflict on the first edge.
	var u, v graph.VertexID = 0, 0
	for x := 0; x < g.NumVertices(); x++ {
		if adj := g.Neighbors(graph.VertexID(x)); len(adj) > 0 {
			u, v = graph.VertexID(x), adj[0]
			break
		}
	}
	if u != v {
		bad := append([]uint16(nil), colors...)
		bad[u] = bad[v]
		if err := VerifySharded(sf, bad); err == nil {
			t.Fatal("conflicting coloring accepted")
		}
		bad[u] = 0
		if err := VerifySharded(sf, bad); err == nil {
			t.Fatal("uncolored vertex accepted")
		}
	}
	if got := sf.Stats(); got.ResidentBytes != 0 {
		t.Fatalf("verifier leaked %d resident bytes", got.ResidentBytes)
	}
}
