package coloring

import (
	"sync/atomic"

	"bitcolor/internal/cache"
	"bitcolor/internal/exec"
	"bitcolor/internal/graph"
	"bitcolor/internal/obs"
	"bitcolor/internal/partition"
)

// The blocked color-gather is the host-side analog of the paper's memory
// system (§3.2.2). The accelerator wins as much from its memory path as
// from the bit-wise ALU: sorted adjacency lets the Color Loader merge
// neighbor color reads that fall in the same DRAM burst (MGR), the
// high-degree color cache serves vertices below v_t on-chip (HDC), and
// uncolored-vertex pruning skips the sorted adjacency tail of
// not-yet-colored neighbors (PUV). In software the same three mechanisms
// map to: walking sorted adjacency in 64-color blocks so consecutive
// reads hit the same cache lines, a per-worker last-block register that
// classifies repeat-block reads as merged, a hot tier boundary v_t
// (reusing the HVC sizing from internal/cache) under which reads count
// as cache hits, and an early break at the first neighbor index greater
// than the current vertex. The counters feed metrics.GatherStats so the
// locality ablation can relate the software numbers to Fig 11.

// colorBlockShift sizes a gather block at 64 colors: 64 x 16-bit paper
// colors is one 128-byte DRAM burst, and with this repo's 32-bit shared
// color words it spans two adjacent 128-byte cache lines.
const colorBlockShift = 6

// Options is the engine-independent option set of the EngineFunc registry
// contract. Every registered engine reads MaxColors; the randomized
// engines read Seed; the parallel engines read Workers; the host-parallel
// speculative engines additionally read the gather fields. Engines ignore
// options that do not apply to them.
type Options struct {
	// MaxColors bounds the palette (<=0: MaxColorsDefault).
	MaxColors int
	// Seed feeds the randomized engines (Jones–Plassmann, Luby).
	Seed int64
	// Workers bounds the goroutine count (<=0: GOMAXPROCS).
	Workers int
	// DisableGather switches off the blocked color-gather and PUV tail
	// pruning, restoring the naive per-neighbor random-access path — the
	// baseline arm of the locality ablation.
	DisableGather bool
	// ForceGather keeps the blocked color-gather on even when the
	// adaptive heuristic would switch it off (average degree below
	// adaptiveGatherMinDegree). Ignored when DisableGather is set.
	ForceGather bool
	// HotVertices overrides the hot-tier threshold v_t (0: automatic via
	// cache.HotThreshold).
	HotVertices int
	// Shards is the sharded engine's partition count (<=1: a single
	// shard, which degenerates to the plain DCT path). Other engines
	// ignore it.
	Shards int
	// PartitionStrategy selects how the sharded engine partitions the
	// graph: "" or "ranges" for contiguous index ranges,
	// "labelprop" for the balanced label-propagation refinement.
	PartitionStrategy string
	// Partition, when set, is a precomputed assignment the sharded
	// engine uses instead of partitioning — the cache path a BCSR v3
	// file feeds. It is honored only when its K equals the effective
	// shard count and it covers the graph; otherwise the engine
	// partitions as usual.
	Partition *partition.Assignment
	// OutOfCore routes the sharded engine to the bounded-residency
	// streaming executor; requires ShardFile. Other engines ignore it.
	OutOfCore bool
	// MaxResidentShards bounds how many shard payloads the streaming
	// executor keeps mapped at once (<=0: 1; clamped to the file's shard
	// count).
	MaxResidentShards int
	// ShardFile is the open BCSR v3 handle an out-of-core run streams
	// from. The graph argument of such a run is a skeleton (offsets
	// only) used for admission accounting; all payload reads go through
	// the handle.
	ShardFile *graph.ShardedFile
	// Obs is the optional run-scoped observability sink. The registry's
	// instrumentation decorator fills it (from the caller or the
	// context); a nil observer is the zero-overhead default.
	Obs *obs.Observer
	// Span is the enclosing engine span (set by the instrumentation
	// decorator alongside Obs); the speculative engines hang their
	// per-round spans off it. All span methods are nil-safe.
	Span *obs.Span
	// Scratch, when it matches the run (engine name and effective worker
	// count), supplies pooled buffers and per-worker state so repeated
	// runs allocate nothing in steady state. A mismatched or nil Scratch
	// is ignored and the engine allocates as before.
	Scratch *Scratch
	// Pool, when set, is the shared bounded worker pool this run admits
	// through: the registry's admission decorator acquires the engine's
	// worker demand before running (FIFO, blocking) and releases it
	// after, shrinking Workers when the pool granted less. Nil runs
	// unbounded, exactly as before the pool existed.
	Pool *exec.Pool
	// Run is this invocation's record in the live run registry (set by
	// the admission decorator when an observer is present, nil
	// otherwise). Engines attach their counter ShardSet to it before
	// spawning workers and publish the current round at sweep
	// boundaries; every method is nil-safe, so unobserved runs pay only
	// nil checks.
	Run *obs.RunRecord
}

// maxColors resolves the palette bound, applying the default.
func (o Options) maxColors() int {
	if o.MaxColors <= 0 {
		return MaxColorsDefault
	}
	return o.MaxColors
}

// adaptiveGatherMinDegree is the average-degree floor (directed
// adjacency entries per vertex) below which the gather hurts more than
// it helps: on road-network-shaped graphs (degree ~2–4) almost every
// 64-color block load serves a single neighbor, so the per-read
// classification overhead exceeds the locality and PUV savings — the
// honest regression the PR 2 locality ablation recorded on RT/RP.
const adaptiveGatherMinDegree = 8

// gatherDecision resolves whether a run uses the blocked color-gather:
// an explicit DisableGather always wins, an explicit ForceGather bypasses
// the heuristic, and otherwise the gather switches itself off on graphs
// whose average degree is below adaptiveGatherMinDegree. autoDisabled
// reports the heuristic (not an explicit option) made the off decision,
// for metrics.GatherStats.AutoDisabled.
func gatherDecision(g *graph.CSR, opts Options) (enabled, autoDisabled bool) {
	if opts.DisableGather {
		return false, false
	}
	if opts.ForceGather {
		return true, false
	}
	n := g.NumVertices()
	if n > 0 && g.NumEdges() < int64(n)*adaptiveGatherMinDegree {
		return false, true
	}
	return true, false
}

// gather is one worker's locality-aware view of the shared color array.
// It is not safe for concurrent use; every worker owns one. Read
// classifications land in the worker's padded counter shard (obs.Shard),
// which the engine folds into metrics.RunStats after the workers join.
type gather struct {
	shared    []uint32
	vt        uint32 // hot-tier threshold v_t
	lastBlock int64  // last cold-tier 64-color block touched
	sh        *obs.Shard
}

// init (re)points a gather at the live color array, counting into shard
// sh. hotVertices <= 0 selects the automatic HVC-derived threshold.
// Value-initialization keeps the gather embeddable in pooled per-worker
// scratch without a per-run allocation.
func (ga *gather) init(shared []uint32, hotVertices int, sh *obs.Shard) {
	vt := uint32(hotVertices)
	if hotVertices <= 0 {
		vt = cache.HotThreshold(len(shared))
	} else if hotVertices > len(shared) {
		vt = uint32(len(shared))
	}
	*ga = gather{shared: shared, vt: vt, lastBlock: -1, sh: sh}
}

// newGather is init on a fresh heap gather, for engines without pooled
// per-worker scratch.
func newGather(shared []uint32, hotVertices int, sh *obs.Shard) *gather {
	ga := new(gather)
	ga.init(shared, hotVertices, sh)
	return ga
}

// load returns u's live color and classifies the access as hot-tier,
// merged-within-block, or a cold block load. Small enough to inline into
// the engines' per-neighbor loops.
func (ga *gather) load(u graph.VertexID) uint32 {
	c := atomic.LoadUint32(&ga.shared[u])
	if u < ga.vt {
		ga.sh.Inc(obs.CtrHotReads)
	} else if b := int64(u >> colorBlockShift); b == ga.lastBlock {
		ga.sh.Inc(obs.CtrMergedReads)
	} else {
		ga.lastBlock = b
		ga.sh.Inc(obs.CtrColdBlockLoads)
	}
	return c
}
