package coloring

import (
	"context"

	"bitcolor/internal/bitops"
	"bitcolor/internal/graph"
)

// Greedy runs the paper's Algorithm 1, the basic greedy coloring, over
// vertices in index order, with a flag-array color scan. maxColors bounds
// the palette (use MaxColorsDefault for the paper's configuration).
// Cancellation via ctx is polled every ctxStride vertices.
//
// The returned OpStats separates the three stages so the Fig 3(a)
// breakdown can be reproduced: Stage 0 neighbor traversal, Stage 1 color
// traversal + flag clearing, Stage 2 color update.
func Greedy(ctx context.Context, g *graph.CSR, maxColors int) (*Result, error) {
	n := g.NumVertices()
	colors := make([]uint16, n)
	// color_flag[COLOR_NUMBER]: allocated once. Algorithm 1's clear loop
	// (lines 17-19) wipes the whole flag array after every vertex; the
	// operation count reflects that faithfully — it is what makes Stage 1
	// the dominant stage in the paper's Fig 3(a) profile — while the
	// implementation only touches flags that were actually set so the
	// reference stays usable on large runs.
	flags := make([]bool, maxColors+1)
	var st OpStats
	for v := 0; v < n; v++ {
		if v&ctxStrideMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Stage 0: neighbor vertices traversal.
		highest := 0
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			st.Stage0Ops++
			cw := colors[w]
			flags[cw] = true
			if int(cw) > highest {
				highest = int(cw)
			}
		}
		// Stage 1: color traversal — linear scan for the first unused
		// color. flags[0] is the "uncolored" slot and never blocks a
		// color, so the scan starts at 1.
		result := 0
		for c := 1; c <= maxColors; c++ {
			st.Stage1ScanOps++
			if !flags[c] {
				result = c
				break
			}
		}
		if result == 0 {
			return nil, ErrPaletteExhausted
		}
		// Clear loop: Algorithm 1 wipes the whole flag array.
		st.Stage1ClearOps += int64(maxColors)
		for c := 0; c <= highest; c++ {
			flags[c] = false
		}
		flags[0] = false
		// Stage 2: color update.
		st.Stage2Ops++
		colors[v] = uint16(result)
	}
	return &Result{Colors: colors, NumColors: countColors(colors), Stats: st}, nil
}

// GreedyLiteral is Algorithm 1 exactly as printed: the Stage-1 clear loop
// physically wipes the whole COLOR_NUMBER flag array after every vertex.
// Greedy (above) counts those operations but clears lazily; this variant
// exists for wall-clock measurements (Table 2) where the baseline's real
// cost matters, and as the reference the optimized variants are checked
// against.
func GreedyLiteral(ctx context.Context, g *graph.CSR, maxColors int) (*Result, error) {
	n := g.NumVertices()
	colors := make([]uint16, n)
	flags := make([]bool, maxColors+1)
	var st OpStats
	for v := 0; v < n; v++ {
		if v&ctxStrideMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			st.Stage0Ops++
			flags[colors[w]] = true
		}
		result := 0
		for c := 1; c <= maxColors; c++ {
			st.Stage1ScanOps++
			if !flags[c] {
				result = c
				break
			}
		}
		if result == 0 {
			return nil, ErrPaletteExhausted
		}
		for c := 0; c <= maxColors; c++ {
			st.Stage1ClearOps++
			flags[c] = false
		}
		st.Stage2Ops++
		colors[v] = uint16(result)
	}
	return &Result{Colors: colors, NumColors: countColors(colors), Stats: st}, nil
}

// BitwiseGreedy runs the paper's Algorithm 2: identical vertex order and
// greedy choice, but the color state is a bit vector, the first free color
// is found with (^state)&(state+1) in constant time, and the state clears
// in one operation.
//
// Prune enables uncolored-vertex pruning (§3.2.2): neighbors with an index
// greater than the current vertex cannot be colored yet and are skipped.
// Pruning never changes the result, only the work done — a property the
// tests assert.
func BitwiseGreedy(ctx context.Context, g *graph.CSR, maxColors int, prune bool) (*Result, error) {
	return BitwiseGreedyScratch(ctx, g, maxColors, prune, nil)
}

// BitwiseGreedyScratch is BitwiseGreedy drawing its color buffer, bit
// set and codec from sc, so repeated runs on a cached graph allocate
// nothing. A nil (or non-fitting) sc restores BitwiseGreedy's behavior
// exactly; the colors are identical either way.
func BitwiseGreedyScratch(ctx context.Context, g *graph.CSR, maxColors int, prune bool, sc *Scratch) (*Result, error) {
	if !sc.fits("bitwise", 1) {
		sc = nil
	}
	n := g.NumVertices()
	colors := sc.colorsBuf(n)
	wsc := sc.workerAt(0, maxColors)
	codec, state := wsc.codec, wsc.state
	var st OpStats
	for v := 0; v < n; v++ {
		if v&ctxStrideMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Stage 0: neighbor traversal with Bit-OR accumulation.
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			if prune && int(w) > v {
				st.PrunedNeighbors++
				continue
			}
			st.Stage0Ops++
			codec.Decompress(colors[w], state)
		}
		// Stage 1: single bit-wise operation.
		st.Stage1ScanOps++
		result, _ := codec.FirstFree(state)
		if result == 0 {
			return nil, ErrPaletteExhausted
		}
		st.Stage1ClearOps++ // one-cycle register reset
		state.Reset()
		// Stage 2: color update.
		st.Stage2Ops++
		colors[v] = result
	}
	return sc.result(colors, sc.distinctColors(colors), st), nil
}

// GreedyOrdered colors vertices in the given order with the bit-wise
// first-fit rule. Unlike BitwiseGreedy it cannot prune by index (order is
// arbitrary), so it checks all neighbors. Used by Welsh–Powell and by
// experiments that decouple coloring order from vertex numbering.
func GreedyOrdered(ctx context.Context, g *graph.CSR, order []graph.VertexID, maxColors int) (*Result, error) {
	n := g.NumVertices()
	colors := make([]uint16, n)
	codec := bitops.NewColorCodec(maxColors)
	state := bitops.NewBitSet(maxColors)
	var st OpStats
	for i, v := range order {
		if i&ctxStrideMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for _, w := range g.Neighbors(v) {
			st.Stage0Ops++
			codec.Decompress(colors[w], state)
		}
		st.Stage1ScanOps++
		result, _ := codec.FirstFree(state)
		if result == 0 {
			return nil, ErrPaletteExhausted
		}
		st.Stage1ClearOps++
		state.Reset()
		st.Stage2Ops++
		colors[v] = result
	}
	return &Result{Colors: colors, NumColors: countColors(colors), Stats: st}, nil
}
