package coloring

import (
	"context"
	"math/rand"
	"runtime"
	"sync"

	"bitcolor/internal/bitops"
	"bitcolor/internal/exec"
	"bitcolor/internal/graph"
)

// This file implements the Maximal-Independent-Set family the paper
// discusses in §2.4 and the Jones–Plassmann algorithm that underlies the
// Gunrock GPU baseline of §5.3. Both avoid the greedy algorithm's
// sequential dependency by coloring an independent set per round.

// JonesPlassmann colors the graph with the Jones–Plassmann algorithm:
// every vertex gets a random priority; in each round, vertices whose
// priority beats all uncolored neighbors color themselves with the first
// fit, in parallel. workers <= 0 uses GOMAXPROCS. Cancellation is polled
// at round boundaries: a cancelled ctx finishes the in-flight round (the
// synchronous schedule keeps state consistent) and then returns ctx.Err().
func JonesPlassmann(ctx context.Context, g *graph.CSR, maxColors int, seed int64, workers int) (*Result, int, error) {
	n := g.NumVertices()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rng := rand.New(rand.NewSource(seed))
	prio := make([]uint64, n)
	for i := range prio {
		prio[i] = rng.Uint64()
	}
	colors := make([]uint16, n)
	remaining := n
	rounds := 0
	// Per-round winners are computed against the colors array from the
	// previous round, then committed — a synchronous parallel schedule.
	winners := make([]uint16, n)
	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return nil, rounds, err
		}
		rounds++
		chunk := (n + workers - 1) / workers
		var colored int64
		var mu sync.Mutex
		failed := false
		exec.Go(workers, func(w int) {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				return
			}
			state := bitops.NewBitSet(maxColors)
			codec := bitops.NewColorCodec(maxColors)
			local := int64(0)
			for v := lo; v < hi; v++ {
				if colors[v] != 0 {
					continue
				}
				win := true
				for _, u := range g.Neighbors(graph.VertexID(v)) {
					if colors[u] == 0 {
						pu, pv := prio[u], prio[v]
						if pu > pv || (pu == pv && u > graph.VertexID(v)) {
							win = false
							break
						}
					}
				}
				if !win {
					winners[v] = 0
					continue
				}
				state.Reset()
				for _, u := range g.Neighbors(graph.VertexID(v)) {
					codec.Decompress(colors[u], state)
				}
				c, _ := codec.FirstFree(state)
				if c == 0 {
					mu.Lock()
					failed = true
					mu.Unlock()
					return
				}
				winners[v] = c
				local++
			}
			mu.Lock()
			colored += local
			mu.Unlock()
		})
		if failed {
			return nil, rounds, ErrPaletteExhausted
		}
		for v := 0; v < n; v++ {
			if winners[v] != 0 {
				colors[v] = winners[v]
				winners[v] = 0
			}
		}
		remaining -= int(colored)
		if colored == 0 && remaining > 0 {
			// Cannot happen: the max-priority uncolored vertex always wins.
			panic("coloring: Jones-Plassmann made no progress")
		}
	}
	return &Result{Colors: colors, NumColors: countColors(colors)}, rounds, nil
}

// LubyMIS colors the graph by repeatedly extracting a maximal independent
// set with Luby's randomized algorithm and assigning it the next color.
// This is the MIS-based family of §2.4: rounds are parallel but the color
// count equals the number of MIS extractions, typically higher than
// greedy. Returns the result and the number of MIS rounds (total inner
// iterations across all colors). Cancellation is polled once per MIS
// round.
func LubyMIS(ctx context.Context, g *graph.CSR, maxColors int, seed int64) (*Result, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(seed))
	colors := make([]uint16, n)
	active := make([]bool, n) // uncolored and not removed this extraction
	remaining := n
	totalRounds := 0
	for color := uint16(1); remaining > 0; color++ {
		if int(color) > maxColors {
			return nil, totalRounds, ErrPaletteExhausted
		}
		// Start a fresh extraction over all uncolored vertices.
		live := 0
		for v := 0; v < n; v++ {
			active[v] = colors[v] == 0
			if active[v] {
				live++
			}
		}
		inMIS := make([]bool, n)
		prio := make([]uint64, n)
		for live > 0 {
			if err := ctx.Err(); err != nil {
				return nil, totalRounds, err
			}
			totalRounds++
			for v := 0; v < n; v++ {
				if active[v] {
					prio[v] = rng.Uint64()
				}
			}
			// A vertex joins the MIS if it is a local priority maximum
			// among active neighbors.
			joined := []graph.VertexID{}
			for v := 0; v < n; v++ {
				if !active[v] {
					continue
				}
				maxLocal := true
				for _, u := range g.Neighbors(graph.VertexID(v)) {
					if active[u] && (prio[u] > prio[v] || (prio[u] == prio[v] && u > graph.VertexID(v))) {
						maxLocal = false
						break
					}
				}
				if maxLocal {
					joined = append(joined, graph.VertexID(v))
				}
			}
			for _, v := range joined {
				inMIS[v] = true
				active[v] = false
				live--
				for _, u := range g.Neighbors(v) {
					if active[u] {
						active[u] = false
						live--
					}
				}
			}
		}
		for v := 0; v < n; v++ {
			if inMIS[v] {
				colors[v] = color
				remaining--
			}
		}
	}
	return &Result{Colors: colors, NumColors: countColors(colors)}, totalRounds, nil
}
