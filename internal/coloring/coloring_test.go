package coloring

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"bitcolor/internal/gen"
	"bitcolor/internal/graph"
	"bitcolor/internal/reorder"
)

func randomGraph(t testing.TB, n, m int, seed int64) *graph.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.VertexID(rng.Intn(n)), V: graph.VertexID(rng.Intn(n))}
	}
	g, err := graph.FromEdgeList(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func paperExample(t testing.TB) *graph.CSR {
	t.Helper()
	g, err := graph.FromEdgeList(6, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 4}, {U: 1, V: 2}, {U: 2, V: 4},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 2, V: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGreedyPaperExample(t *testing.T) {
	g := paperExample(t)
	res, err := Greedy(context.Background(), g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	// Sequential first-fit: v0=1, v1=2, v2=1(not adj to 0? 2 adj to 1,4,3) ...
	// Key paper fact: when vertex 4 is colored, neighbors 0,2,3 have colors
	// {1,3,2} or similar and 5 is uncolored; vertex 4's color differs from
	// all of them.
	for _, w := range g.Neighbors(4) {
		if res.Colors[w] == res.Colors[4] {
			t.Fatalf("vertex 4 shares color with neighbor %d", w)
		}
	}
	if res.Colors[0] != 1 {
		t.Fatalf("first vertex color = %d, want 1 (first fit)", res.Colors[0])
	}
}

func TestGreedyTriangle(t *testing.T) {
	g, _ := graph.FromEdgeList(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	res, err := Greedy(context.Background(), g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 3 {
		t.Fatalf("triangle colored with %d colors, want 3", res.NumColors)
	}
}

func TestGreedyBipartite(t *testing.T) {
	// Complete bipartite K(3,3) with parts {0,1,2} and {3,4,5}: index-order
	// greedy uses exactly 2 colors.
	var edges []graph.Edge
	for u := 0; u < 3; u++ {
		for v := 3; v < 6; v++ {
			edges = append(edges, graph.Edge{U: graph.VertexID(u), V: graph.VertexID(v)})
		}
	}
	g, _ := graph.FromEdgeList(6, edges)
	res, err := Greedy(context.Background(), g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 2 {
		t.Fatalf("K(3,3) colored with %d colors, want 2", res.NumColors)
	}
}

func TestGreedyPaletteExhausted(t *testing.T) {
	g, _ := graph.FromEdgeList(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	_, err := Greedy(context.Background(), g, 2)
	if !errors.Is(err, ErrPaletteExhausted) {
		t.Fatalf("err = %v, want palette exhausted", err)
	}
	_, err = BitwiseGreedy(context.Background(), g, 2, false)
	if !errors.Is(err, ErrPaletteExhausted) {
		t.Fatalf("bitwise err = %v, want palette exhausted", err)
	}
}

func TestGreedyStatsBreakdown(t *testing.T) {
	g := paperExample(t)
	res, err := Greedy(context.Background(), g, 16)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Stage0Ops != g.NumEdges() {
		t.Fatalf("Stage0Ops = %d, want %d (one per directed edge)", st.Stage0Ops, g.NumEdges())
	}
	if st.Stage2Ops != int64(g.NumVertices()) {
		t.Fatalf("Stage2Ops = %d, want %d", st.Stage2Ops, g.NumVertices())
	}
	if st.Stage1ScanOps < int64(g.NumVertices()) {
		t.Fatalf("Stage1ScanOps = %d, want >= one per vertex", st.Stage1ScanOps)
	}
	if st.Stage1ClearOps <= 0 {
		t.Fatal("Stage1ClearOps not tracked")
	}
}

// The paper's central algorithmic claim: Algorithm 2 computes the same
// coloring as Algorithm 1 with O(1) Stage 1.
func TestBitwiseMatchesBasicGreedy(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(t, 300, 2500, seed)
		basic, err := Greedy(context.Background(), g, MaxColorsDefault)
		if err != nil {
			t.Fatal(err)
		}
		for _, prune := range []bool{false, true} {
			bw, err := BitwiseGreedy(context.Background(), g, MaxColorsDefault, prune)
			if err != nil {
				t.Fatal(err)
			}
			for v := range basic.Colors {
				if basic.Colors[v] != bw.Colors[v] {
					t.Fatalf("seed %d prune %v: vertex %d basic %d bitwise %d",
						seed, prune, v, basic.Colors[v], bw.Colors[v])
				}
			}
		}
	}
}

func TestBitwiseStage1IsConstant(t *testing.T) {
	g := randomGraph(t, 500, 6000, 1)
	res, err := BitwiseGreedy(context.Background(), g, MaxColorsDefault, false)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(g.NumVertices())
	if res.Stats.Stage1ScanOps != n || res.Stats.Stage1ClearOps != n {
		t.Fatalf("bitwise Stage1 ops = %d+%d, want %d+%d (O(1) per vertex)",
			res.Stats.Stage1ScanOps, res.Stats.Stage1ClearOps, n, n)
	}
	basic, err := Greedy(context.Background(), g, MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	if basic.Stats.Stage1Ops() <= res.Stats.Stage1Ops() {
		t.Fatalf("basic Stage1 ops %d not larger than bitwise %d",
			basic.Stats.Stage1Ops(), res.Stats.Stage1Ops())
	}
}

func TestPruningSkipsExactlyHigherNeighbors(t *testing.T) {
	g := randomGraph(t, 200, 1200, 2)
	// In a symmetric graph exactly half the directed edges point to a
	// higher index (no self loops).
	res, err := BitwiseGreedy(context.Background(), g, MaxColorsDefault, true)
	if err != nil {
		t.Fatal(err)
	}
	want := g.NumEdges() / 2
	if res.Stats.PrunedNeighbors != want {
		t.Fatalf("pruned %d neighbors, want %d", res.Stats.PrunedNeighbors, want)
	}
	if res.Stats.Stage0Ops != g.NumEdges()-want {
		t.Fatalf("Stage0Ops %d + pruned %d != edges %d",
			res.Stats.Stage0Ops, res.Stats.PrunedNeighbors, g.NumEdges())
	}
}

func TestGreedyOrderedCustomOrder(t *testing.T) {
	g := randomGraph(t, 100, 500, 3)
	order := make([]graph.VertexID, 100)
	for i := range order {
		order[i] = graph.VertexID(99 - i)
	}
	res, err := GreedyOrdered(context.Background(), g, order, MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestWelshPowell(t *testing.T) {
	g := randomGraph(t, 300, 3000, 4)
	res, err := WelshPowell(context.Background(), g, MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
}

// Welsh–Powell on a DBG-reordered graph equals index-order greedy.
func TestWelshPowellEqualsDBGGreedy(t *testing.T) {
	g := randomGraph(t, 200, 1500, 5)
	h, _ := reorder.DBG(g)
	wp, err := WelshPowell(context.Background(), h, MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := BitwiseGreedy(context.Background(), h, MaxColorsDefault, true)
	if err != nil {
		t.Fatal(err)
	}
	if wp.NumColors != bw.NumColors {
		t.Fatalf("WP on DBG graph used %d colors, index greedy %d", wp.NumColors, bw.NumColors)
	}
}

func TestDSATUR(t *testing.T) {
	g := randomGraph(t, 300, 3000, 6)
	res, err := DSATUR(context.Background(), g, MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	// DSATUR should not be worse than naive greedy by much; sanity bound.
	basic, _ := Greedy(context.Background(), g, MaxColorsDefault)
	if res.NumColors > basic.NumColors+2 {
		t.Fatalf("DSATUR used %d colors vs greedy %d", res.NumColors, basic.NumColors)
	}
}

func TestDSATURTriangleExact(t *testing.T) {
	g, _ := graph.FromEdgeList(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	res, err := DSATUR(context.Background(), g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 3 {
		t.Fatalf("DSATUR triangle = %d colors", res.NumColors)
	}
}

func TestSmallestLast(t *testing.T) {
	g := randomGraph(t, 300, 2500, 7)
	order := SmallestLastOrder(g)
	if len(order) != g.NumVertices() {
		t.Fatalf("order covers %d vertices, want %d", len(order), g.NumVertices())
	}
	seen := make([]bool, g.NumVertices())
	for _, v := range order {
		if seen[v] {
			t.Fatalf("vertex %d appears twice in smallest-last order", v)
		}
		seen[v] = true
	}
	res, err := SmallestLast(context.Background(), g, MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestJonesPlassmann(t *testing.T) {
	g := randomGraph(t, 500, 4000, 8)
	res, rounds, err := JonesPlassmann(context.Background(), g, MaxColorsDefault, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if rounds <= 0 {
		t.Fatal("rounds not counted")
	}
}

func TestJonesPlassmannSingleWorkerMatchesParallelValidity(t *testing.T) {
	g := randomGraph(t, 200, 1500, 9)
	r1, _, err := JonesPlassmann(context.Background(), g, MaxColorsDefault, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	r8, _, err := JonesPlassmann(context.Background(), g, MaxColorsDefault, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, r1.Colors); err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, r8.Colors); err != nil {
		t.Fatal(err)
	}
	// Same priorities → same result regardless of worker count.
	for v := range r1.Colors {
		if r1.Colors[v] != r8.Colors[v] {
			t.Fatalf("JP nondeterministic across worker counts at vertex %d", v)
		}
	}
}

func TestLubyMIS(t *testing.T) {
	g := randomGraph(t, 300, 2000, 10)
	res, rounds, err := LubyMIS(context.Background(), g, MaxColorsDefault, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if rounds <= 0 {
		t.Fatal("rounds not counted")
	}
}

func TestBacktrackingExact(t *testing.T) {
	// Odd cycle C5: chromatic number 3.
	var edges []graph.Edge
	for i := 0; i < 5; i++ {
		edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID((i + 1) % 5)})
	}
	g, _ := graph.FromEdgeList(5, edges)
	if _, ok, err := Backtracking(g, 2); err != nil || ok {
		t.Fatalf("C5 2-colorable: ok=%v err=%v", ok, err)
	}
	res, ok, err := Backtracking(g, 3)
	if err != nil || !ok {
		t.Fatalf("C5 not 3-colored: ok=%v err=%v", ok, err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	chi, err := ChromaticNumber(g)
	if err != nil || chi != 3 {
		t.Fatalf("chi(C5) = %d (%v), want 3", chi, err)
	}
}

func TestBacktrackingPetersen(t *testing.T) {
	// Petersen graph: chromatic number 3.
	outer := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	inner := [][2]int{{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}}
	spokes := [][2]int{{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}}
	var edges []graph.Edge
	for _, set := range [][][2]int{outer, inner, spokes} {
		for _, e := range set {
			edges = append(edges, graph.Edge{U: graph.VertexID(e[0]), V: graph.VertexID(e[1])})
		}
	}
	g, _ := graph.FromEdgeList(10, edges)
	chi, err := ChromaticNumber(g)
	if err != nil {
		t.Fatal(err)
	}
	if chi != 3 {
		t.Fatalf("chi(Petersen) = %d, want 3", chi)
	}
}

func TestBacktrackingTooLarge(t *testing.T) {
	g := randomGraph(t, 100, 200, 12)
	if _, _, err := Backtracking(g, 3); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestChromaticNumberEmptyAndEdgeless(t *testing.T) {
	g, _ := graph.FromEdgeList(0, nil)
	if chi, err := ChromaticNumber(g); err != nil || chi != 0 {
		t.Fatalf("chi(empty) = %d (%v)", chi, err)
	}
	h, _ := graph.FromEdgeList(5, nil)
	if chi, err := ChromaticNumber(h); err != nil || chi != 1 {
		t.Fatalf("chi(edgeless) = %d (%v)", chi, err)
	}
}

func TestVerifyDetectsViolations(t *testing.T) {
	g := paperExample(t)
	res, _ := Greedy(context.Background(), g, 16)
	bad := append([]uint16(nil), res.Colors...)
	bad[0] = bad[1]
	if err := Verify(g, bad); err == nil {
		t.Fatal("conflict not detected")
	}
	bad = append([]uint16(nil), res.Colors...)
	bad[3] = 0
	if err := Verify(g, bad); err == nil {
		t.Fatal("uncolored vertex not detected")
	}
	if err := Verify(g, res.Colors[:3]); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

// Property: every algorithm yields a proper coloring on random graphs, and
// greedy's color count is bounded by max degree + 1.
func TestAllAlgorithmsProper(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%80) + 5
		g := randomGraph(t, n, 5*n, seed)
		maxDeg := g.MaxDegree()
		basic, err := Greedy(context.Background(), g, n+1)
		if err != nil || Verify(g, basic.Colors) != nil {
			return false
		}
		if basic.NumColors > maxDeg+1 {
			return false
		}
		bw, err := BitwiseGreedy(context.Background(), g, n+1, true)
		if err != nil || Verify(g, bw.Colors) != nil {
			return false
		}
		ds, err := DSATUR(context.Background(), g, n+1)
		if err != nil || Verify(g, ds.Colors) != nil {
			return false
		}
		jp, _, err := JonesPlassmann(context.Background(), g, n+1, seed, 2)
		if err != nil || Verify(g, jp.Colors) != nil {
			return false
		}
		lb, _, err := LubyMIS(context.Background(), g, n+1, seed)
		if err != nil || Verify(g, lb.Colors) != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyOnPaperDatasets(t *testing.T) {
	for _, d := range gen.SmallRegistry() {
		d := d
		t.Run(d.Abbrev, func(t *testing.T) {
			t.Parallel()
			g, err := d.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			h, _ := reorder.DBG(g)
			res, err := BitwiseGreedy(context.Background(), h, MaxColorsDefault, true)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(h, res.Colors); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func BenchmarkGreedyBasic(b *testing.B) {
	g, _ := gen.RMAT(14, 8, 0.57, 0.19, 0.19, 1)
	h, _ := reorder.DBG(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(context.Background(), h, MaxColorsDefault); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyBitwise(b *testing.B) {
	g, _ := gen.RMAT(14, 8, 0.57, 0.19, 0.19, 1)
	h, _ := reorder.DBG(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BitwiseGreedy(context.Background(), h, MaxColorsDefault, true); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSpeculativeProper(t *testing.T) {
	g := randomGraph(t, 800, 8000, 13)
	res, rounds, err := Speculative(context.Background(), g, MaxColorsDefault, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if rounds < 1 {
		t.Fatalf("rounds = %d", rounds)
	}
}

func TestSpeculativeSingleWorkerEqualsGreedy(t *testing.T) {
	g := randomGraph(t, 300, 2000, 14)
	res, rounds, err := Speculative(context.Background(), g, MaxColorsDefault, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 1 {
		t.Fatalf("single worker needed %d rounds", rounds)
	}
	want, _ := Greedy(context.Background(), g, MaxColorsDefault)
	for v := range want.Colors {
		if res.Colors[v] != want.Colors[v] {
			t.Fatalf("vertex %d: speculative %d greedy %d", v, res.Colors[v], want.Colors[v])
		}
	}
}

func TestSpeculativeStats(t *testing.T) {
	g := randomGraph(t, 800, 8000, 13)
	res, st, err := SpeculativeStats(context.Background(), g, MaxColorsDefault, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 8 || len(st.VerticesPerWorker) != 8 {
		t.Fatalf("worker stats: %+v", st)
	}
	// Round 1 claims every vertex; re-rounds claim the re-queued ones.
	if st.TotalVertices() < int64(g.NumVertices()) {
		t.Fatalf("claimed %d < %d vertices", st.TotalVertices(), g.NumVertices())
	}
	if st.TotalVertices() != int64(g.NumVertices())+st.ConflictsRepaired {
		t.Fatalf("claims %d != vertices %d + repairs %d",
			st.TotalVertices(), g.NumVertices(), st.ConflictsRepaired)
	}
}

func TestSpeculativePaletteExhausted(t *testing.T) {
	tri, _ := graph.FromEdgeList(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	if _, _, err := Speculative(context.Background(), tri, 2, 2); !errors.Is(err, ErrPaletteExhausted) {
		t.Fatalf("err = %v", err)
	}
}

func TestSpeculativeEmptyGraph(t *testing.T) {
	g, _ := graph.FromEdgeList(0, nil)
	res, rounds, err := Speculative(context.Background(), g, 4, 4)
	if err != nil || rounds != 0 || len(res.Colors) != 0 {
		t.Fatalf("empty: %v %d", err, rounds)
	}
}

// Generators with known chromatic numbers anchor the whole suite: the
// exact solver must hit them, and every heuristic must stay above them.
func TestKnownChromaticNumbers(t *testing.T) {
	cases := []struct {
		name string
		g    func() (*graph.CSR, error)
		chi  int
	}{
		{"K7", func() (*graph.CSR, error) { return graph.Complete(7) }, 7},
		{"C7", func() (*graph.CSR, error) { return graph.Cycle(7) }, 3},
		{"C8", func() (*graph.CSR, error) { return graph.Cycle(8) }, 2},
		{"Mycielski4 (Grötzsch)", func() (*graph.CSR, error) { return graph.Mycielski(4) }, 4},
		{"Mycielski5", func() (*graph.CSR, error) { return graph.Mycielski(5) }, 5},
		{"queen5_5", func() (*graph.CSR, error) { return graph.Queen(5) }, 5},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			g, err := c.g()
			if err != nil {
				t.Fatal(err)
			}
			chi, err := ChromaticNumber(g)
			if err != nil {
				t.Fatal(err)
			}
			if chi != c.chi {
				t.Fatalf("chi = %d, want %d", chi, c.chi)
			}
			// Every heuristic must use at least chi colors and stay proper.
			for name, run := range map[string]func() (*Result, error){
				"greedy": func() (*Result, error) { return Greedy(context.Background(), g, 64) },
				"dsatur": func() (*Result, error) { return DSATUR(context.Background(), g, 64) },
				"rlf":    func() (*Result, error) { return RLF(context.Background(), g, 64) },
			} {
				res, err := run()
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if res.NumColors < c.chi {
					t.Fatalf("%s used %d colors, below chi %d (impossible)", name, res.NumColors, c.chi)
				}
				if err := Verify(g, res.Colors); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
		})
	}
}

// GreedyLiteral and Greedy must produce identical colorings; only their
// clear-loop implementation differs.
func TestGreedyLiteralEqualsGreedy(t *testing.T) {
	g := randomGraph(t, 400, 3500, 15)
	a, err := Greedy(context.Background(), g, MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GreedyLiteral(context.Background(), g, MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatalf("vertex %d: %d vs %d", v, a.Colors[v], b.Colors[v])
		}
	}
	// The literal variant counts the full flag wipe.
	if b.Stats.Stage1ClearOps != int64(g.NumVertices())*int64(MaxColorsDefault+1) &&
		b.Stats.Stage1ClearOps != int64(g.NumVertices())*int64(MaxColorsDefault) {
		t.Fatalf("literal clear ops = %d", b.Stats.Stage1ClearOps)
	}
	if _, err := GreedyLiteral(context.Background(), g, 2); err == nil {
		t.Fatal("undersized palette accepted")
	}
}
