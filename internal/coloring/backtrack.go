package coloring

import (
	"context"
	"fmt"
	"math/bits"

	"bitcolor/internal/graph"
)

// Backtracking implements the exact exponential-time coloring of §2.4:
// find a proper coloring with at most k colors, or report that none
// exists. Exposed for small graphs only — it guards against accidental
// use on large inputs.
//
// The search orders vertices by descending degree and prunes with
// forward-checking on neighbor color masks.

// MaxBacktrackVertices bounds the graph size Backtracking accepts.
const MaxBacktrackVertices = 64

// ErrTooLarge is returned when the input exceeds MaxBacktrackVertices.
var ErrTooLarge = fmt.Errorf("coloring: graph too large for exact backtracking (max %d vertices)", MaxBacktrackVertices)

// Backtracking returns a proper k-coloring if one exists, or ok=false if
// the graph is not k-colorable.
func Backtracking(g *graph.CSR, k int) (res *Result, ok bool, err error) {
	n := g.NumVertices()
	if n > MaxBacktrackVertices {
		return nil, false, ErrTooLarge
	}
	if k <= 0 {
		return nil, false, fmt.Errorf("coloring: k=%d must be positive", k)
	}
	if k > 64 {
		k = 64 // color masks are single words; more than 64 never needed at this size
	}
	order := SmallestLastOrder(g)
	colors := make([]uint16, n)
	// used[v] is the bit mask of colors used by v's colored neighbors.
	used := make([]uint64, n)
	var assign func(i int) bool
	assign = func(i int) bool {
		if i == len(order) {
			return true
		}
		v := order[i]
		avail := ^used[v] & (uint64(1)<<uint(k) - 1)
		for avail != 0 {
			bit := avail & (-avail)
			c := bits.TrailingZeros64(bit)
			colors[v] = uint16(c + 1)
			var touched []graph.VertexID
			feasible := true
			for _, w := range g.Neighbors(v) {
				if colors[w] == 0 {
					if used[w]&bit == 0 {
						used[w] |= bit
						touched = append(touched, w)
						// Forward check: dead neighbor with no colors left.
						if ^used[w]&(uint64(1)<<uint(k)-1) == 0 {
							feasible = false
						}
					}
				}
			}
			if feasible && assign(i+1) {
				return true
			}
			for _, w := range touched {
				// Only clear if no other colored neighbor holds bit.
				holds := false
				for _, x := range g.Neighbors(w) {
					if colors[x] == uint16(c+1) && x != v {
						holds = true
						break
					}
				}
				if !holds {
					used[w] &^= bit
				}
			}
			colors[v] = 0
			avail &^= bit
		}
		return false
	}
	if !assign(0) {
		return nil, false, nil
	}
	return &Result{Colors: colors, NumColors: countColors(colors)}, true, nil
}

// ChromaticNumber computes the exact chromatic number by binary-searching
// k with Backtracking. Small graphs only.
func ChromaticNumber(g *graph.CSR) (int, error) {
	n := g.NumVertices()
	if n == 0 {
		return 0, nil
	}
	if n > MaxBacktrackVertices {
		return 0, ErrTooLarge
	}
	// Upper bound from greedy on degeneracy order; lower bound 1.
	res, err := SmallestLast(context.Background(), g, n+1)
	if err != nil {
		return 0, err
	}
	hi := res.NumColors
	lo := 1
	if g.NumEdges() > 0 {
		lo = 2
	}
	best := hi
	for lo <= hi {
		k := (lo + hi) / 2
		_, ok, err := Backtracking(g, k)
		if err != nil {
			return 0, err
		}
		if ok {
			best = k
			hi = k - 1
		} else {
			lo = k + 1
		}
	}
	return best, nil
}
