package coloring

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"bitcolor/internal/exec"
	"bitcolor/internal/graph"
	"bitcolor/internal/metrics"
	"bitcolor/internal/obs"
)

// The out-of-core executor is ShardedOpts with the whole-graph CSR
// replaced by a BCSR v3 handle: the partition, boundary totals and
// per-shard sections come from the file, and at most MaxResidentShards
// shard payloads are mapped at any moment. The only whole-graph arrays
// a streamed run holds are the parts vector (resident in the handle
// since open), the shared color array, and the pooled frontier/colors
// buffers — all O(V); the O(E) adjacency streams through the residency
// window. The coloring fixpoint is the same as the in-core engine's
// (phase one colors a vertex only when every lower-indexed neighbor has
// its final color, marks the structural frontier, and phase two
// resolves the frontier under lower-index-wins), so the result is
// byte-identical to the in-core sharded engine — and to sequential
// greedy — at every (shards × residency × workers) combination.

// streamResidency resolves the bounded-residency limit: <=0 means one
// shard at a time, and the limit never exceeds the file's shard count.
func streamResidency(opts Options) int {
	r := opts.MaxResidentShards
	if r <= 0 {
		r = 1
	}
	if opts.ShardFile != nil {
		if k := opts.ShardFile.Shards(); k > 0 && r > k {
			r = k
		}
	}
	return r
}

// shardedStream runs the sharded engine out of core against
// opts.ShardFile. Phase one pulls shards through a window of
// streamResidency concurrent mappings (each colored by opts.Workers
// goroutines over the shard's own vertex list, exactly the in-core
// owner-computes schedule); retired shards are MADV_DONTNEED'd and
// unmapped before the next one maps. Phase two maps only the boundary
// blocks — the frontier vertices' u<v adjacency — so the frontier
// resolution is bounded by the cut, not the graph.
func shardedStream(ctx context.Context, maxColors int, opts Options) (*Result, metrics.ParallelStats, error) {
	sf := opts.ShardFile
	n := sf.NumVertices()
	workers := resolveWorkers(opts.Workers, n)
	shards := sf.Shards()
	resident := streamResidency(opts)
	parts := sf.Parts()
	if len(parts) != n {
		return nil, metrics.ParallelStats{}, fmt.Errorf("coloring: v3 partition covers %d of %d vertices", len(parts), n)
	}
	sc := opts.Scratch
	if !sc.fits("sharded", workers) {
		sc = nil
	}

	// One counter shard, scratch and forwarding ring per (shard, worker)
	// lane, exactly as in-core — the stats fold and /debug/runs mirrors
	// are shape-identical across the two executors.
	flat := shards * workers
	ss := sc.shardSet(flat)
	opts.Run.AttachShards(ss)
	st := metrics.ParallelStats{
		Workers:          workers,
		Shards:           shards,
		BoundaryVertices: sf.Boundary(),
		CutEdges:         sf.CutEdges(),
		ResidentShards:   resident,
	}
	shared := sc.sharedBuf(n)
	sorted := sf.EdgesSorted()
	rings := sc.ringSet(ForwardRingCap)

	esp := opts.Span
	o := opts.Obs
	var obsStart time.Time
	if o != nil {
		obsStart = time.Now()
	}

	var abort atomic.Bool

	ws := make([]*workerScratch, flat)
	for i := range ws {
		s := sc.workerAt(i, maxColors)
		s.sh = ss.Shard(i)
		s.ring = rings.Ring(i)
		ws[i] = s
	}

	var (
		clock     func() int64
		onForward func(parkedAt int64)
	)
	if o != nil {
		clock = func() int64 { return int64(time.Since(obsStart)) }
		onForward = func(parkedAt int64) {
			o.ObserveForwardWait(float64(int64(time.Since(obsStart))-parkedAt) / 1e9)
		}
	}

	// attemptInterior is the in-core interior attempt reading adjacency
	// through the shard mapping instead of the CSR (and without the
	// blocked gather, which is a read-caching layer, not a semantic one).
	// The scan still never stops early at a pending or marked neighbor —
	// a later cross-shard neighbor must win, or CrossShardDefers would
	// depend on timing.
	attemptInterior := func(s *workerScratch, sm *graph.ShardMap, pv int32, v graph.VertexID) (graph.VertexID, exec.Outcome) {
		s.state.Reset()
		li, _ := sm.LocalIndex(v) // v comes from sm.VMap, so it resolves
		adj := sm.Neighbors(li)
		var firstPending graph.VertexID
		pending, cascade := false, false
		for _, u := range adj {
			if u > v {
				if !sorted {
					continue
				}
				break
			}
			if parts[u] != pv {
				atomic.StoreUint32(&shared[v], shardMark)
				s.sh.Inc(obs.CtrCrossDefers)
				return 0, exec.Handed
			}
			switch c := atomic.LoadUint32(&shared[u]); c {
			case shardMark:
				cascade = true
			case 0:
				if !pending {
					firstPending, pending = u, true
				}
			default:
				s.state.OrColorNum(c)
			}
		}
		if cascade {
			atomic.StoreUint32(&shared[v], shardMark)
			return 0, exec.Handed
		}
		if pending {
			return firstPending, exec.Deferred
		}
		pick, _ := s.codec.FirstFree(s.state)
		if pick == 0 {
			return 0, exec.Failed
		}
		atomic.StoreUint32(&shared[v], uint32(pick))
		s.sh.Inc(obs.CtrVertices)
		return 0, exec.Colored
	}

	// Interior phase: `resident` runner goroutines pull shard indices
	// from a shared cursor; each maps its shard, colors it with the full
	// worker complement, and retires the mapping before claiming the
	// next. The runner count — not the shard count — bounds concurrent
	// mappings, which is the whole residency invariant.
	flatDur := sc.durBuf(0, flat)
	if flatDur == nil {
		flatDur = make([]time.Duration, flat)
	}
	var nextShard atomic.Int64
	mapErrs := make([]error, resident)
	exec.Go(resident, func(runner int) {
		for {
			if abort.Load() || ctx.Err() != nil {
				return
			}
			shard := int(nextShard.Add(1)) - 1
			if shard >= shards {
				return
			}
			sm, err := sf.MapShard(shard)
			if err != nil {
				mapErrs[runner] = err
				abort.Store(true)
				return
			}
			pv := int32(shard)
			shardStart := time.Now()
			exec.Go(workers, func(w int) {
				idx := shard*workers + w
				defer func() { flatDur[idx] = time.Since(shardStart) }()
				s := ws[idx]
				loop := exec.OwnerLoop{
					Ctx:   ctx,
					Abort: &abort,
					Ring:  s.ring,
					Shard: s.sh,
					Attempt: func(v graph.VertexID) (graph.VertexID, exec.Outcome) {
						return attemptInterior(s, sm, pv, v)
					},
					// A mark is progress too: the awaited vertex went to
					// the frontier, and the replay cascades the parked
					// vertex after it instead of waiting forever.
					Published: func(u uint32) bool { return atomic.LoadUint32(&shared[u]) != 0 },
					FailErr:   ErrPaletteExhausted,
					Clock:     clock,
					OnForward: onForward,
				}
				s.err = loop.RunList(sm.VMap, w, workers)
			})
			sm.Close()
		}
	})

	foldStats := func() {
		st.VerticesPerWorker = ss.PerWorkerInto(obs.CtrVertices, sc.perWorkerBuf(0, flat))
		st.Deferred = ss.Total(obs.CtrDeferred)
		st.DeferRetries = ss.Total(obs.CtrDeferRetries)
		st.SpinWaits = ss.Total(obs.CtrSpinWaits)
		st.CrossShardDefers = ss.Total(obs.CtrCrossDefers)
		st.ForwardRingPeak = rings.Peak()
		st.PeakMappedBytes = sf.Stats().PeakResidentBytes
	}

	st.ShardVertices = sc.perWorkerBuf(2, shards)
	if st.ShardVertices == nil {
		st.ShardVertices = make([]int64, shards)
	} else {
		clear(st.ShardVertices)
	}
	st.ShardDurations = sc.durBuf(1, shards)
	if st.ShardDurations == nil {
		st.ShardDurations = make([]time.Duration, shards)
	}
	for shard := 0; shard < shards; shard++ {
		for w := 0; w < workers; w++ {
			st.ShardVertices[shard] += ss.Shard(shard*workers + w).Get(obs.CtrVertices)
			if d := flatDur[shard*workers+w]; d > st.ShardDurations[shard] {
				st.ShardDurations[shard] = d
			}
		}
	}

	for _, err := range mapErrs {
		if err != nil {
			foldStats()
			return nil, st, err
		}
	}
	for _, s := range ws {
		if s.err != nil {
			foldStats()
			return nil, st, s.err
		}
	}
	if err := ctx.Err(); err != nil {
		foldStats()
		return nil, st, err
	}

	// The barrier: every vertex is now colored or marked. Collect the
	// frontier in ascending index order — membership is structural, so
	// this list (and its size) is identical across timings and matches
	// the persisted boundary blocks exactly.
	frontier := sc.pendingBuf(n)[:0]
	for v := range shared {
		if shared[v] == shardMark {
			frontier = append(frontier, graph.VertexID(v))
		}
	}
	st.FrontierVertices = len(frontier)

	// Frontier phase: the boundary blocks hold each frontier vertex's
	// u<v adjacency — the exact subsequence the in-core attempt walks —
	// so resolving the frontier maps only the cut, never a full shard.
	if len(frontier) > 0 {
		bms := make([]*graph.BoundaryMap, shards)
		closeBms := func() {
			for _, bm := range bms {
				if bm != nil {
					bm.Close()
				}
			}
		}
		for k := 0; k < shards; k++ {
			bm, err := sf.MapBoundary(k)
			if err != nil {
				closeBms()
				foldStats()
				return nil, st, err
			}
			bms[k] = bm
		}
		// Every runtime frontier vertex must appear in its shard's
		// persisted boundary block; a CRC-consistent file that lies about
		// the frontier is caught here rather than by a nil adjacency.
		for _, v := range frontier {
			if _, ok := bms[parts[v]].Find(v); !ok {
				closeBms()
				foldStats()
				return nil, st, fmt.Errorf("coloring: v3 boundary block of shard %d is missing frontier vertex %d (corrupt file)", parts[v], v)
			}
		}
		fw := min(workers, len(frontier))
		attemptFrontier := func(s *workerScratch, v graph.VertexID) (graph.VertexID, exec.Outcome) {
			s.state.Reset()
			bm := bms[parts[v]]
			i, _ := bm.Find(v) // prechecked above
			for _, u := range bm.Neighbors(i) {
				c := atomic.LoadUint32(&shared[u])
				if c == shardMark {
					return u, exec.Deferred
				}
				s.state.OrColorNum(c)
			}
			pick, _ := s.codec.FirstFree(s.state)
			if pick == 0 {
				return 0, exec.Failed
			}
			atomic.StoreUint32(&shared[v], uint32(pick))
			s.sh.Inc(obs.CtrVertices)
			return 0, exec.Colored
		}
		exec.Go(fw, func(w int) {
			s := ws[w] // reuses the flat scratch + ring, both drained
			loop := exec.OwnerLoop{
				Ctx:   ctx,
				Abort: &abort,
				Ring:  s.ring,
				Shard: s.sh,
				Attempt: func(v graph.VertexID) (graph.VertexID, exec.Outcome) {
					return attemptFrontier(s, v)
				},
				// A zero color is impossible on the frontier, so
				// "published" tests against the mark sentinel instead.
				Published: func(u uint32) bool { return atomic.LoadUint32(&shared[u]) != shardMark },
				FailErr:   ErrPaletteExhausted,
				Clock:     clock,
				OnForward: onForward,
			}
			s.err = loop.RunList(frontier, w, fw)
		})
		closeBms()
	}

	foldStats()
	for _, s := range ws {
		if s.err != nil {
			return nil, st, s.err
		}
	}
	st.Rounds = 1
	opts.Run.SetRound(1)
	esp.Child("round").Attr("round", 1).Attr("pending", int64(n)).
		Attr("conflicts_found", int64(0)).Attr("recolored", int64(0)).
		Attr("deferred", st.Deferred).Attr("ring_peak", int64(st.ForwardRingPeak)).
		Attr("shards", int64(shards)).Attr("frontier", int64(st.FrontierVertices)).
		Attr("cross_shard_defers", st.CrossShardDefers).
		Attr("cut_edges", st.CutEdges).
		Attr("resident_shards", int64(resident)).End()

	colors := sc.colorsBuf(n)
	for i, c := range shared {
		colors[i] = uint16(c)
	}
	return sc.result(colors, sc.distinctColors(colors), OpStats{}), st, nil
}

// VerifySharded is Verify streamed through a BCSR v3 handle: every
// vertex colored, no adjacent pair sharing a color, checked one shard
// mapping at a time (each shard's section holds the full global
// adjacency of its vertices, so the sweep covers every directed entry
// without materializing the CSR).
func VerifySharded(sf *graph.ShardedFile, colors []uint16) error {
	n := sf.NumVertices()
	if len(colors) != n {
		return fmt.Errorf("coloring: %d colors for %d vertices", len(colors), n)
	}
	for shard := 0; shard < sf.Shards(); shard++ {
		sm, err := sf.MapShard(shard)
		if err != nil {
			return err
		}
		for i, v := range sm.VMap {
			cv := colors[v]
			if cv == 0 {
				sm.Close()
				return fmt.Errorf("coloring: vertex %d uncolored", v)
			}
			for _, w := range sm.Neighbors(i) {
				if colors[w] == cv {
					sm.Close()
					return fmt.Errorf("coloring: adjacent vertices %d and %d share color %d", v, w, cv)
				}
			}
		}
		if err := sm.Close(); err != nil {
			return err
		}
	}
	return nil
}
