package coloring

import (
	"fmt"

	"bitcolor/internal/bitops"
	"bitcolor/internal/graph"
)

// DynamicColoring maintains a proper coloring of a growing graph:
// vertices and edges arrive online and the structure repairs locally.
// This extends the library past the paper's static-batch setting into
// the streaming use the introduction's applications (scheduling,
// resource allocation) actually face. Edge insertion recolors the
// higher-degree endpoint only when the new edge creates a conflict,
// first-fit against its current neighborhood.
type DynamicColoring struct {
	adj       [][]graph.VertexID
	colors    []uint16
	maxColors int
	codec     *bitops.ColorCodec
	state     *bitops.BitSet
	// Recolorings counts repair operations for instrumentation.
	Recolorings int64
}

// NewDynamicColoring starts an empty dynamic coloring with the given
// palette bound.
func NewDynamicColoring(maxColors int) *DynamicColoring {
	if maxColors <= 0 {
		maxColors = MaxColorsDefault
	}
	return &DynamicColoring{
		maxColors: maxColors,
		codec:     bitops.NewColorCodec(maxColors),
		state:     bitops.NewBitSet(maxColors),
	}
}

// AddVertex appends a new isolated vertex and returns its ID. It takes
// color 1 (no neighbors yet).
func (d *DynamicColoring) AddVertex() graph.VertexID {
	v := graph.VertexID(len(d.adj))
	d.adj = append(d.adj, nil)
	d.colors = append(d.colors, 1)
	return v
}

// NumVertices returns the current vertex count.
func (d *DynamicColoring) NumVertices() int { return len(d.adj) }

// Color returns v's current color.
func (d *DynamicColoring) Color(v graph.VertexID) uint16 { return d.colors[v] }

// Colors returns a copy of the full assignment.
func (d *DynamicColoring) Colors() []uint16 {
	return append([]uint16(nil), d.colors...)
}

// AddEdge inserts the undirected edge {u,v}, repairing the coloring if
// the endpoints currently share a color. Self loops and unknown vertices
// are rejected; duplicate edges are ignored.
func (d *DynamicColoring) AddEdge(u, v graph.VertexID) error {
	n := graph.VertexID(len(d.adj))
	if u >= n || v >= n {
		return fmt.Errorf("coloring: edge (%d,%d) beyond %d vertices", u, v, n)
	}
	if u == v {
		return fmt.Errorf("coloring: self loop on %d", u)
	}
	for _, w := range d.adj[u] {
		if w == v {
			return nil // duplicate
		}
	}
	d.adj[u] = append(d.adj[u], v)
	d.adj[v] = append(d.adj[v], u)
	if d.colors[u] != d.colors[v] {
		return nil
	}
	// Conflict: recolor the endpoint with the smaller neighborhood (the
	// cheaper repair; ties pick v).
	target := v
	if len(d.adj[u]) < len(d.adj[v]) {
		target = u
	}
	return d.recolor(target)
}

// recolor assigns target the first color unused in its neighborhood.
func (d *DynamicColoring) recolor(target graph.VertexID) error {
	d.state.Reset()
	for _, w := range d.adj[target] {
		d.codec.Decompress(d.colors[w], d.state)
	}
	pick, _ := d.codec.FirstFree(d.state)
	if pick == 0 {
		return ErrPaletteExhausted
	}
	d.colors[target] = pick
	d.Recolorings++
	return nil
}

// Verify checks the maintained invariant.
func (d *DynamicColoring) Verify() error {
	for v := range d.adj {
		if d.colors[v] == 0 {
			return fmt.Errorf("coloring: dynamic vertex %d uncolored", v)
		}
		for _, w := range d.adj[v] {
			if d.colors[w] == d.colors[v] {
				return fmt.Errorf("coloring: dynamic conflict %d-%d on color %d", v, w, d.colors[v])
			}
		}
	}
	return nil
}

// Snapshot materializes the current graph as a CSR (for interoperating
// with the batch algorithms and the accelerator).
func (d *DynamicColoring) Snapshot() (*graph.CSR, error) {
	var edges []graph.Edge
	for v := range d.adj {
		for _, w := range d.adj[v] {
			if graph.VertexID(v) < w {
				edges = append(edges, graph.Edge{U: graph.VertexID(v), V: w})
			}
		}
	}
	return graph.FromEdgeList(len(d.adj), edges)
}

// NumColorsInUse returns the distinct colors currently used.
func (d *DynamicColoring) NumColorsInUse() int { return countColors(d.colors) }
