// Package coloring implements the software graph-coloring algorithms the
// paper builds on and compares against: the basic greedy algorithm
// (Algorithm 1), the bit-wise greedy algorithm (Algorithm 2), and the
// alternative families discussed in §2.4 — Maximal-Independent-Set based
// coloring (Luby/Jones–Plassmann) and exact backtracking — plus the
// classical Welsh–Powell and DSATUR heuristics as additional baselines.
//
// Colors are 16-bit numbers; 0 means "uncolored" and usable colors are
// 1..MaxColors, matching the hardware encoding in internal/bitops.
package coloring

import (
	"fmt"

	"bitcolor/internal/exec"
	"bitcolor/internal/graph"
)

// MaxColorsDefault is the paper's configured palette size (§5.1.1).
const MaxColorsDefault = 1024

// ctxStrideMask sets how often the sequential engines poll ctx.Err():
// every 64K vertices (indices where v&mask == 0, so a pre-cancelled
// context is caught before the first vertex). One atomic load per 2^16
// vertices is unmeasurable next to the per-vertex work; the parallel
// engines poll at block-claim and round boundaries instead. The stride
// is shared with internal/exec so every scan loop in the tree — engine
// or substrate — cancels on the same cadence.
const ctxStrideMask = exec.CtxStrideMask

// Result is the output of a coloring run.
type Result struct {
	// Colors[v] is the 1-based color of vertex v; 0 means uncolored.
	Colors []uint16
	// NumColors is the number of distinct colors used.
	NumColors int
	// Stats holds algorithm-specific operation counts for the
	// performance-model experiments (zero for algorithms that don't
	// track them).
	Stats OpStats
}

// OpStats counts the abstract operations of the three-stage greedy loop,
// used to reproduce Fig 3(a)'s stage breakdown and the CPU cost model.
// One "op" is one loop iteration of Algorithm 1/2 — a neighbor color
// load, a color-flag probe, a flag clear, or a color store.
type OpStats struct {
	// Stage0Ops counts neighbor color loads (one per traversed edge).
	Stage0Ops int64
	// Stage1ScanOps counts color-flag probes while searching the first
	// free color (Algorithm 1 lines 12-16).
	Stage1ScanOps int64
	// Stage1ClearOps counts flag-array clear iterations (Algorithm 1
	// lines 17-19). The bit-wise algorithm clears in O(1) and records
	// one op per vertex.
	Stage1ClearOps int64
	// Stage2Ops counts color stores (one per vertex).
	Stage2Ops int64
	// PrunedNeighbors counts neighbor visits skipped by uncolored-vertex
	// pruning, when enabled.
	PrunedNeighbors int64
}

// Total returns the total operation count across stages.
func (s OpStats) Total() int64 {
	return s.Stage0Ops + s.Stage1ScanOps + s.Stage1ClearOps + s.Stage2Ops
}

// Stage1Ops returns the combined Stage-1 cost (scan + clear).
func (s OpStats) Stage1Ops() int64 { return s.Stage1ScanOps + s.Stage1ClearOps }

// countColors returns the number of distinct nonzero colors.
func countColors(colors []uint16) int {
	seen := make(map[uint16]struct{})
	for _, c := range colors {
		if c != 0 {
			seen[c] = struct{}{}
		}
	}
	return len(seen)
}

// MaxColor returns the largest color number used (0 if none).
func MaxColor(colors []uint16) uint16 {
	var max uint16
	for _, c := range colors {
		if c > max {
			max = c
		}
	}
	return max
}

// Verify checks that the assignment is a proper coloring: every vertex is
// colored and no two adjacent vertices share a color. It returns the
// first violation found.
func Verify(g *graph.CSR, colors []uint16) error {
	n := g.NumVertices()
	if len(colors) != n {
		return fmt.Errorf("coloring: %d colors for %d vertices", len(colors), n)
	}
	for v := 0; v < n; v++ {
		cv := colors[v]
		if cv == 0 {
			return fmt.Errorf("coloring: vertex %d uncolored", v)
		}
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			if colors[w] == cv {
				return fmt.Errorf("coloring: adjacent vertices %d and %d share color %d", v, w, cv)
			}
		}
	}
	return nil
}

// ErrPaletteExhausted is returned when a graph needs more colors than the
// configured palette provides.
var ErrPaletteExhausted = fmt.Errorf("coloring: palette exhausted (need more than the configured max colors)")
