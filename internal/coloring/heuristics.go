package coloring

import (
	"container/heap"
	"context"
	"sort"

	"bitcolor/internal/bitops"
	"bitcolor/internal/graph"
)

// WelshPowell colors vertices in descending degree order with first-fit.
// With DBG-reordered graphs this coincides with index order, which is why
// the paper's reordering tends to reduce color counts.
func WelshPowell(ctx context.Context, g *graph.CSR, maxColors int) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	order := make([]graph.VertexID, n)
	for i := range order {
		order[i] = graph.VertexID(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return g.Degree(order[i]) > g.Degree(order[j])
	})
	return GreedyOrdered(ctx, g, order, maxColors)
}

// satEntry is a priority-queue element for DSATUR.
type satEntry struct {
	v      graph.VertexID
	sat    int // saturation degree: number of distinct neighbor colors
	degree int
	index  int // heap index
	stale  bool
}

type satHeap []*satEntry

func (h satHeap) Len() int { return len(h) }
func (h satHeap) Less(i, j int) bool {
	if h[i].sat != h[j].sat {
		return h[i].sat > h[j].sat
	}
	if h[i].degree != h[j].degree {
		return h[i].degree > h[j].degree
	}
	return h[i].v < h[j].v
}
func (h satHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *satHeap) Push(x any) {
	e := x.(*satEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *satHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// DSATUR implements Brélaz's saturation-degree heuristic: repeatedly
// color the uncolored vertex with the most distinctly-colored neighbors.
// Usually uses fewer colors than first-fit at higher cost; it is the
// quality baseline the greedy family is compared against.
func DSATUR(ctx context.Context, g *graph.CSR, maxColors int) (*Result, error) {
	n := g.NumVertices()
	colors := make([]uint16, n)
	codec := bitops.NewColorCodec(maxColors)
	neighborColors := make([]*bitops.BitSet, n)
	h := make(satHeap, 0, n)
	entries := make([]*satEntry, n)
	for v := 0; v < n; v++ {
		neighborColors[v] = bitops.NewBitSet(64)
		entries[v] = &satEntry{v: graph.VertexID(v), degree: g.Degree(graph.VertexID(v))}
	}
	for _, e := range entries {
		heap.Push(&h, e)
	}
	colored := 0
	for colored < n {
		if colored&ctxStrideMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		e := heap.Pop(&h).(*satEntry)
		if e.stale {
			continue
		}
		v := e.v
		result, _ := codec.FirstFree(neighborColors[v])
		if result == 0 {
			return nil, ErrPaletteExhausted
		}
		colors[v] = result
		colored++
		// Update neighbor saturations via lazy reinsertion.
		for _, w := range g.Neighbors(v) {
			if colors[w] != 0 {
				continue
			}
			nc := neighborColors[w]
			if !nc.Test(int(result) - 1) {
				nc.Set(int(result) - 1)
				old := entries[w]
				old.stale = true
				repl := &satEntry{v: w, sat: nc.Count(), degree: old.degree}
				entries[w] = repl
				heap.Push(&h, repl)
			}
		}
	}
	return &Result{Colors: colors, NumColors: countColors(colors)}, nil
}

// SmallestLastOrder computes the smallest-last (degeneracy) ordering; an
// additional high-quality ordering for ablation experiments.
func SmallestLastOrder(g *graph.CSR) []graph.VertexID {
	order, _ := smallestLastOrder(context.Background(), g)
	return order
}

// smallestLastOrder is SmallestLastOrder with cancellation, polled every
// ctxStride removals.
func smallestLastOrder(ctx context.Context, g *graph.CSR) ([]graph.VertexID, error) {
	n := g.NumVertices()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(graph.VertexID(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]graph.VertexID, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], graph.VertexID(v))
	}
	removed := make([]bool, n)
	order := make([]graph.VertexID, 0, n)
	cur := 0
	for len(order) < n {
		if len(order)&ctxStrideMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxDeg {
			break
		}
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[v] || deg[v] != cur {
			continue // stale bucket entry
		}
		removed[v] = true
		order = append(order, v)
		for _, w := range g.Neighbors(v) {
			if !removed[w] {
				deg[w]--
				buckets[deg[w]] = append(buckets[deg[w]], w)
				if deg[w] < cur {
					cur = deg[w]
				}
			}
		}
	}
	// Smallest-last colors in reverse removal order.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}

// SmallestLast colors with the degeneracy ordering; uses at most
// degeneracy+1 colors.
func SmallestLast(ctx context.Context, g *graph.CSR, maxColors int) (*Result, error) {
	order, err := smallestLastOrder(ctx, g)
	if err != nil {
		return nil, err
	}
	return GreedyOrdered(ctx, g, order, maxColors)
}
