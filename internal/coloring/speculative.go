package coloring

import (
	"context"
	"runtime"
	"sync/atomic"

	"bitcolor/internal/exec"
	"bitcolor/internal/graph"
	"bitcolor/internal/metrics"
	"bitcolor/internal/obs"
)

// Speculative implements Gebremedhin–Manne parallel coloring on the host
// CPU: workers first-fit color pending vertices concurrently while
// reading neighbor colors without synchronization; a detection pass finds
// adjacent equal pairs; the lower-priority vertex of each pair is
// re-queued for the next speculation round. Rounds repeat until
// conflict-free. This is the standard shared-memory algorithm the FPGA
// design competes with on multicore hosts, complementing the
// single-thread Algorithm 1 baseline. ParallelBitwise is the faster
// formulation (bit-wise Stage 1, in-place repair); Speculative keeps the
// classic re-round semantics as the literature baseline.
//
// Work is distributed by the same shared atomic block cursor as
// ParallelBitwise (exec.BlockCursor) rather than a static per-worker
// chunk split, so a few mega-degree vertices cannot serialize a whole
// round's tail. All buffers (pending/next queues, per-worker color-state
// scratch) are allocated once — or drawn from Options.Scratch — and
// reused across rounds; the per-vertex loop is allocation-free.
//
// Returns the result and the number of rounds (1 = no conflicts ever).
func Speculative(ctx context.Context, g *graph.CSR, maxColors int, workers int) (*Result, int, error) {
	res, st, err := SpeculativeStats(ctx, g, maxColors, workers)
	return res, st.Rounds, err
}

// SpeculativeStats is Speculative returning the full parallel-run
// statistics (rounds, conflicts found/re-queued, vertices per worker).
func SpeculativeStats(ctx context.Context, g *graph.CSR, maxColors int, workers int) (*Result, metrics.ParallelStats, error) {
	return SpeculativeOpts(ctx, g, maxColors, Options{MaxColors: maxColors, Workers: workers})
}

// SpeculativeOpts is Speculative with the full option set. With the
// gather enabled (the default) neighbor colors stream through the blocked
// color-gather, and on edge-sorted graphs the first speculation round
// applies PUV tail-skipping: round 1 colors vertices in ascending index
// order, so a neighbor with a higher index is still uncolored in the
// single-worker schedule and almost always uncolored under parallelism —
// the scan breaks at the first one, and any racing exception surfaces as
// a conflict the detection pass repairs. Later rounds re-color sparse
// pending sets against stable neighbors and must see every neighbor, so
// the prune stays off there.
//
// Cancellation is polled at block-claim granularity inside the
// speculation workers (one ctx.Err() per exec.DispatchBlock vertices —
// off the per-edge hot path) and between rounds. On cancellation the
// engine returns ctx.Err() with no result; all intermediate state is
// private to the call, so nothing shared is poisoned.
func SpeculativeOpts(ctx context.Context, g *graph.CSR, maxColors int, opts Options) (*Result, metrics.ParallelStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, metrics.ParallelStats{}, err
	}
	n := g.NumVertices()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n && n > 0 {
		workers = n
	}
	sc := opts.Scratch
	if !sc.fits("speculative", workers) {
		sc = nil
	}
	// Per-worker hot-path counters live in cache-line-padded shards; the
	// fold into RunStats happens after the worker goroutines join.
	// Handing them to the run record arms their atomic live mirrors so
	// /debug/runs can read mid-run progress (nil-safe no-op otherwise).
	ss := sc.shardSet(workers)
	opts.Run.AttachShards(ss)
	st := metrics.ParallelStats{Workers: workers}
	useGather, gatherAuto := gatherDecision(g, opts)
	foldStats := func() {
		st.VerticesPerWorker = ss.PerWorkerInto(obs.CtrVertices, sc.perWorkerBuf(0, workers))
		st.BlocksPerWorker = ss.PerWorkerInto(obs.CtrBlocks, sc.perWorkerBuf(1, workers))
		st.Gather = metrics.GatherStats{
			HotReads:       ss.Total(obs.CtrHotReads),
			MergedReads:    ss.Total(obs.CtrMergedReads),
			ColdBlockLoads: ss.Total(obs.CtrColdBlockLoads),
			PrunedTail:     ss.Total(obs.CtrPrunedTail),
			AutoDisabled:   gatherAuto,
		}
	}
	if n == 0 {
		foldStats()
		return &Result{Colors: nil, NumColors: 0}, st, nil
	}
	// esp is the enclosing engine span (nil without an observer); spans
	// are touched only at round boundaries, never in the per-edge loops.
	esp := opts.Span
	puv := useGather && g.EdgesSorted()
	// Shared state uses 32-bit words with atomic access: the algorithm
	// is speculative by design (workers read neighbors mid-flight), and
	// atomics keep that well-defined under the Go memory model.
	shared := sc.sharedBuf(n)
	// Round 1 colors everything; later rounds only the conflicted set.
	// pending and next swap roles each round; both are sized once.
	pending := sc.pendingBuf(n)
	for i := range pending {
		pending[i] = graph.VertexID(i)
	}
	next := sc.orderBuf(n)[:0]
	// Per-worker scratch (one color-state BitSet + codec + gather view
	// each), pooled across runs when a Scratch backs the call.
	ws := make([]*workerScratch, workers)
	for w := range ws {
		s := sc.workerAt(w, maxColors)
		sh := ss.Shard(w)
		s.sh = sh
		s.ga.init(shared, opts.HotVertices, sh)
		ws[w] = s
	}
	if useGather {
		st.HotThreshold = ws[0].ga.vt
	}
	var cur exec.BlockCursor
	for len(pending) > 0 {
		st.Rounds++
		opts.Run.SetRound(st.Rounds)
		if st.Rounds > n+1 {
			// Each round permanently finalizes at least the highest-
			// priority pending vertex, so this cannot trigger; it guards
			// the loop against future regressions.
			panic("coloring: speculative coloring failed to converge")
		}
		// Round telemetry: snapshot/delta work runs only with a live
		// observer; rounds under a nil observer skip it entirely.
		var (
			rsp             *obs.Span
			blocksBefore    []int64
			conflictsBefore int64
		)
		if esp != nil {
			blocksBefore = ss.PerWorker(obs.CtrBlocks)
			conflictsBefore = st.ConflictsFound
			rsp = esp.Child("round").Attr("round", int64(st.Rounds)).
				Attr("pending", int64(len(pending)))
		}
		// Speculation: workers pull blocks of the pending set from the
		// shared cursor, racing on neighbor reads.
		puvRound := puv && st.Rounds == 1
		cur.Reset(len(pending))
		roundErr := exec.Blocks(ctx, workers, &cur, func(w, lo, hi int) error {
			s := ws[w]
			s.sh.Inc(obs.CtrBlocks)
			s.sh.Add(obs.CtrVertices, int64(hi-lo))
			for _, v := range pending[lo:hi] {
				s.state.Reset()
				adj := g.Neighbors(v)
				switch {
				case puvRound:
					// Round 1, sorted adjacency: break at the start
					// of the still-uncolored tail (PUV).
					for i, u := range adj {
						if u > v {
							s.sh.Add(obs.CtrPrunedTail, int64(len(adj)-i))
							break
						}
						s.state.OrColorNum(s.ga.load(u))
					}
				case useGather:
					for _, u := range adj {
						s.state.OrColorNum(s.ga.load(u))
					}
				default:
					for _, u := range adj {
						s.codec.Decompress(uint16(atomic.LoadUint32(&shared[u])), s.state)
					}
				}
				pick, _ := s.codec.FirstFree(s.state)
				if pick == 0 {
					return ErrPaletteExhausted
				}
				atomic.StoreUint32(&shared[v], uint32(pick))
			}
			s.sh.PublishAll() // live-progress checkpoint, once per block
			return nil
		})
		// endRound closes the round span with this round's outcomes and
		// dispatch split; abort marks a cancelled round.
		endRound := func(abort bool) {
			if rsp == nil {
				return
			}
			claims := ss.PerWorker(obs.CtrBlocks)
			var total, steals int64
			for w := range claims {
				claims[w] -= blocksBefore[w]
				total += claims[w]
			}
			fair := (total + int64(workers) - 1) / int64(workers)
			for _, b := range claims {
				if b > fair {
					steals += b - fair
				}
			}
			rsp.Attr("conflicts_found", st.ConflictsFound-conflictsBefore).
				Attr("blocks_per_worker", claims).
				Attr("steals", steals)
			if abort {
				rsp.Attr("cancelled", true)
			} else {
				rsp.Attr("recolored", int64(len(next)))
			}
			rsp.End()
		}
		if roundErr != nil {
			endRound(true)
			foldStats()
			return nil, st, roundErr
		}
		// Detection: the smaller-indexed endpoint of an equal-colored
		// edge keeps its color, the larger re-queues. pending holds each
		// vertex at most once, so appending losers in iteration order
		// cannot duplicate.
		next = next[:0]
		for i, v := range pending {
			if i&ctxStrideMask == 0 {
				if err := ctx.Err(); err != nil {
					endRound(true)
					foldStats()
					return nil, st, err
				}
			}
			for _, u := range g.Neighbors(v) {
				if shared[u] == shared[v] && u < v {
					next = append(next, v)
					st.ConflictsFound++
					break
				}
			}
		}
		st.ConflictsRepaired += int64(len(next))
		endRound(false)
		pending, next = next, pending
		// Deterministic round composition despite racy block claims:
		// order does not affect the next speculation's outcome
		// distribution, but sorting keeps runs reproducible for tests.
		sortVertexIDs(pending)
	}
	foldStats()
	colors := sc.colorsBuf(n)
	for i, c := range shared {
		colors[i] = uint16(c)
	}
	return sc.result(colors, sc.distinctColors(colors), OpStats{}), st, nil
}

// sortVertexIDs is a small insertion/shell sort to avoid pulling sort
// for a hot-loop-free path.
func sortVertexIDs(a []graph.VertexID) {
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			for j := i; j >= gap && a[j-gap] > a[j]; j -= gap {
				a[j-gap], a[j] = a[j], a[j-gap]
			}
		}
	}
}
